#include "media/gop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using espread::media::FrameType;
using espread::media::GopPattern;

TEST(GopPattern, ParsesValidPattern) {
    const GopPattern g = GopPattern::parse("IBBPBB");
    EXPECT_EQ(g.size(), 6u);
    EXPECT_EQ(g.type_at(0), FrameType::kI);
    EXPECT_EQ(g.type_at(1), FrameType::kB);
    EXPECT_EQ(g.type_at(3), FrameType::kP);
    EXPECT_EQ(g.to_string(), "IBBPBB");
}

TEST(GopPattern, CountsFrameClasses) {
    const GopPattern g = GopPattern::parse("IBBPBBPBBPBB");
    EXPECT_EQ(g.anchor_count(), 4u);
    EXPECT_EQ(g.p_count(), 3u);
    EXPECT_EQ(g.b_count(), 8u);
    EXPECT_EQ(g.anchor_positions(), (std::vector<std::size_t>{0, 3, 6, 9}));
}

TEST(GopPattern, ParseRejectsMalformedPatterns) {
    EXPECT_THROW(GopPattern::parse(""), std::invalid_argument);
    EXPECT_THROW(GopPattern::parse("BBI"), std::invalid_argument);
    EXPECT_THROW(GopPattern::parse("PBB"), std::invalid_argument);
    EXPECT_THROW(GopPattern::parse("IBBX"), std::invalid_argument);
    EXPECT_THROW(GopPattern::parse("IBBIPBB"), std::invalid_argument);
}

TEST(GopPattern, TypeAtRangeChecked) {
    const GopPattern g = GopPattern::parse("IBB");
    EXPECT_THROW(g.type_at(3), std::out_of_range);
}

TEST(GopPattern, StandardTwelveAndFifteen) {
    EXPECT_EQ(GopPattern::standard(12).to_string(), "IBBPBBPBBPBB");
    EXPECT_EQ(GopPattern::standard(15).to_string(), "IBBPBBPBBPBBPBB");
    EXPECT_EQ(GopPattern::standard(3).to_string(), "IBB");
    EXPECT_EQ(GopPattern::standard(1).to_string(), "I");
}

TEST(GopPattern, StandardRejectsOddSizes) {
    EXPECT_THROW(GopPattern::standard(0), std::invalid_argument);
    EXPECT_THROW(GopPattern::standard(4), std::invalid_argument);
    EXPECT_THROW(GopPattern::standard(14), std::invalid_argument);
}

TEST(GopPattern, Equality) {
    EXPECT_EQ(GopPattern::standard(12), GopPattern::parse("IBBPBBPBBPBB"));
    EXPECT_NE(GopPattern::standard(12), GopPattern::standard(15));
}

TEST(FrameTypeChar, AllTags) {
    EXPECT_EQ(espread::media::frame_type_char(FrameType::kI), 'I');
    EXPECT_EQ(espread::media::frame_type_char(FrameType::kP), 'P');
    EXPECT_EQ(espread::media::frame_type_char(FrameType::kB), 'B');
    EXPECT_EQ(espread::media::frame_type_char(FrameType::kIndependent), 'J');
}

}  // namespace
