// Tests for the parallel Monte-Carlo experiment engine (exp::ThreadPool,
// exp::MonteCarloRunner) and the bit-packed loss-mask fast paths it
// multiplies: results must be byte-identical across thread counts, and the
// BitMask metrics must agree exactly with the vector<bool> references.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "core/cpo.hpp"
#include "core/metrics.hpp"
#include "core/permutation.hpp"
#include "core/spreader.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "exp/thread_pool.hpp"
#include "sim/rng.hpp"

namespace {

using espread::BitMask;
using espread::LossMask;
using espread::Permutation;
using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::RunnerOptions;
using espread::exp::ThreadPool;
using espread::exp::TrialSummary;
using espread::proto::SessionConfig;
using espread::proto::StreamKind;

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i) {
        pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

// ---- seed derivation -----------------------------------------------------

TEST(DeriveSeed, IsDeterministicAndIndexSensitive) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t s = espread::sim::derive_seed(42, i);
        EXPECT_EQ(s, espread::sim::derive_seed(42, i));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);  // no collisions across trial indices
    EXPECT_NE(espread::sim::derive_seed(1, 0), espread::sim::derive_seed(2, 0));
}

// ---- MonteCarloRunner ----------------------------------------------------

SessionConfig small_config() {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;  // dependency-free: fast sessions
    cfg.stream.ldus_per_window = 24;
    cfg.num_windows = 6;
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.seed = 42;
    return cfg;
}

RunnerOptions runner_opts(std::size_t trials, std::size_t threads) {
    RunnerOptions opts;
    opts.trials = trials;
    opts.threads = threads;
    return opts;
}

void expect_stats_identical(const espread::sim::RunningStats& a,
                            const espread::sim::RunningStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(MonteCarloRunner, SummaryIsBitIdenticalAcrossThreadCounts) {
    const SessionConfig cfg = small_config();
    constexpr std::size_t kTrials = 12;

    MonteCarloRunner single(runner_opts(kTrials, 1));
    const std::size_t many_threads =
        std::max<std::size_t>(4, ThreadPool::hardware_threads());
    MonteCarloRunner parallel(runner_opts(kTrials, many_threads));
    ASSERT_GT(parallel.threads(), 1u);

    const TrialSummary a = single.run(cfg);
    const TrialSummary b = parallel.run(cfg);

    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.total_windows, b.total_windows);
    expect_stats_identical(a.clf_mean, b.clf_mean);
    expect_stats_identical(a.clf_dev, b.clf_dev);
    expect_stats_identical(a.window_clf, b.window_clf);
    expect_stats_identical(a.alf, b.alf);
    expect_stats_identical(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.clf_histogram.bins(), b.clf_histogram.bins());

    // The JSON rendering (minus the timing fields) is the byte-level
    // contract benches persist; spot-check one stats object end to end.
    JsonWriter ja, jb;
    espread::exp::append_stats(ja, a.window_clf);
    espread::exp::append_stats(jb, b.window_clf);
    EXPECT_EQ(ja.str(), jb.str());
}

TEST(MonteCarloRunner, MergedMetricsAreBitIdenticalAcrossThreadCounts) {
    SessionConfig cfg = small_config();
    cfg.collect_metrics = true;
    constexpr std::size_t kTrials = 12;

    MonteCarloRunner single(runner_opts(kTrials, 1));
    MonteCarloRunner parallel(
        runner_opts(kTrials,
                    std::max<std::size_t>(4, ThreadPool::hardware_threads())));

    const TrialSummary a = single.run(cfg);
    const TrialSummary b = parallel.run(cfg);

    ASSERT_FALSE(a.metrics.empty());
    JsonWriter ja, jb;
    espread::obs::append_metrics(ja, a.metrics);
    espread::obs::append_metrics(jb, b.metrics);
    EXPECT_EQ(ja.str(), jb.str());

    // Sanity on the merged registry: one window_clf sample per window.
    const auto* clf = a.metrics.find_histogram("window_clf");
    ASSERT_NE(clf, nullptr);
    EXPECT_EQ(clf->total(), a.total_windows);
}

// D2 regression (drive-by audit of the obs/exp merge paths): a registry's
// serialization must not depend on the order keys were inserted or
// registries were merged in.  std::map keeps this true by construction; a
// switch to a hash-ordered container would flip the key order here (and
// is also flagged statically by espread_lint rule D2).
TEST(MonteCarloRunner, MetricsSerializationIndependentOfInsertionAndMergeOrder) {
    using espread::obs::MetricsRegistry;
    const std::vector<std::string> names = {"zeta", "alpha", "mid", "beta10",
                                            "beta2"};
    MetricsRegistry fwd, rev;
    for (std::size_t i = 0; i < names.size(); ++i) {
        fwd.add_counter(names[i], i + 1);
        fwd.histogram(names[i]).add(static_cast<std::int64_t>(i));
    }
    for (std::size_t i = names.size(); i-- > 0;) {
        rev.add_counter(names[i], i + 1);
        rev.histogram(names[i]).add(static_cast<std::int64_t>(i));
    }

    MetricsRegistry ab, ba;
    ab.merge(fwd);
    ab.merge(rev);
    ba.merge(rev);
    ba.merge(fwd);

    JsonWriter ja, jb;
    espread::obs::append_metrics(ja, ab);
    espread::obs::append_metrics(jb, ba);
    EXPECT_EQ(ja.str(), jb.str());

    // Iteration (and therefore merge and serialization) order is the
    // sorted key order, independent of insertion history.
    std::string prev;
    for (const auto& [key, value] : ab.counters()) {
        EXPECT_LT(prev, key);
        prev = key;
    }
    EXPECT_EQ(ab.counter("zeta"), 2u);  // delta 1 from each source registry
}

TEST(MonteCarloRunner, MetricsOmittedWhenNotCollected) {
    MonteCarloRunner runner(runner_opts(2, 1));
    const TrialSummary s = runner.run(small_config());
    EXPECT_TRUE(s.metrics.empty());
    JsonWriter j;
    espread::exp::append_summary(j, s);
    EXPECT_EQ(j.str().find("\"metrics\""), std::string::npos);
}

TEST(MonteCarloRunner, RepeatedRunsAreIdentical) {
    MonteCarloRunner runner(runner_opts(8, 0));
    const TrialSummary a = runner.run(small_config());
    const TrialSummary b = runner.run(small_config());
    expect_stats_identical(a.window_clf, b.window_clf);
    expect_stats_identical(a.alf, b.alf);
}

TEST(MonteCarloRunner, TrialsSeeDifferentChannelRealizations) {
    MonteCarloRunner runner(runner_opts(8, 2));
    const TrialSummary s = runner.run(small_config());
    EXPECT_EQ(s.trials, 8u);
    EXPECT_EQ(s.total_windows, 8u * 6u);
    EXPECT_EQ(s.window_clf.count(), 8u * 6u);
    // Independent Gilbert realizations: per-trial ALF must not be constant.
    EXPECT_GT(s.alf.max(), s.alf.min());
}

TEST(MonteCarloRunner, CountsWindowsAndHistogramConsistently) {
    MonteCarloRunner runner(runner_opts(4, 2));
    const TrialSummary s = runner.run(small_config());
    EXPECT_EQ(s.clf_histogram.total(), s.total_windows);
    EXPECT_EQ(s.window_clf.count(), s.total_windows);
}

TEST(MonteCarloRunner, ValidatesTemplateConfig) {
    MonteCarloRunner runner(runner_opts(2, 1));
    SessionConfig cfg = small_config();
    cfg.num_windows = 0;
    EXPECT_THROW(runner.run(cfg), std::invalid_argument);
}

TEST(ParseRunnerArgs, ParsesTrialsAndThreads) {
    const char* argv_c[] = {"bench", "--trials=64", "--threads=3"};
    const auto opts = espread::exp::parse_runner_args(
        3, const_cast<char**>(argv_c), runner_opts(32, 0));
    EXPECT_EQ(opts.trials, 64u);
    EXPECT_EQ(opts.threads, 3u);
    EXPECT_TRUE(opts.out_path.empty());
    EXPECT_TRUE(opts.trace_path.empty());
}

TEST(ParseRunnerArgs, IgnoresMalformedFlags) {
    const char* argv_c[] = {"bench", "--trials=abc", "--threads"};
    const auto opts = espread::exp::parse_runner_args(
        3, const_cast<char**>(argv_c), runner_opts(32, 2));
    EXPECT_EQ(opts.trials, 32u);
    EXPECT_EQ(opts.threads, 2u);
}

TEST(ParseRunnerArgs, ParsesOutAndTracePaths) {
    const char* argv_c[] = {"bench", "--out=results.json", "--trace=t.json",
                            "--out="};
    const auto opts =
        espread::exp::parse_runner_args(4, const_cast<char**>(argv_c));
    EXPECT_EQ(opts.out_path, "results.json");  // empty value is ignored
    EXPECT_EQ(opts.trace_path, "t.json");
}

TEST(WriteSessionTrace, MatchesTrialZeroRealization) {
    const std::string path =
        ::testing::TempDir() + "/espread_runner_trace.json";
    espread::exp::write_session_trace(small_config(), path);
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"PacketSent\""), std::string::npos);
}

// ---- BitMask vs vector<bool> references ----------------------------------

LossMask random_mask(espread::sim::Rng& rng, std::size_t n, double loss_p) {
    LossMask m(n);
    for (std::size_t i = 0; i < n; ++i) m[i] = !rng.bernoulli(loss_p);
    return m;
}

void expect_metrics_match(const LossMask& reference) {
    const BitMask packed = BitMask::from_mask(reference);
    ASSERT_EQ(packed.size(), reference.size());
    EXPECT_EQ(espread::aggregate_loss_count(packed),
              espread::aggregate_loss_count(reference));
    EXPECT_EQ(espread::consecutive_loss(packed),
              espread::consecutive_loss(reference));
    EXPECT_EQ(espread::loss_runs(packed), espread::loss_runs(reference));
    const auto a = espread::measure_continuity(packed);
    const auto b = espread::measure_continuity(reference);
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.unit_losses, b.unit_losses);
    EXPECT_EQ(a.clf, b.clf);
    EXPECT_DOUBLE_EQ(a.alf, b.alf);
}

TEST(BitMask, RoundTripsThroughLossMask) {
    espread::sim::Rng rng{7};
    for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 200u}) {
        const LossMask m = random_mask(rng, n, 0.3);
        EXPECT_EQ(BitMask::from_mask(m).to_mask(), m);
    }
}

TEST(BitMask, MetricsMatchReferenceOnRandomMasks) {
    espread::sim::Rng rng{2024};
    for (const double loss_p : {0.05, 0.3, 0.7, 0.95}) {
        for (std::size_t n = 0; n <= 192; ++n) {
            expect_metrics_match(random_mask(rng, n, loss_p));
        }
    }
}

TEST(BitMask, WordBoundaryRuns) {
    // Runs straddling bits 63/64/65 are where carry bugs live.
    for (const std::size_t start : {60u, 62u, 63u, 64u, 65u}) {
        for (const std::size_t len : {1u, 2u, 3u, 4u, 64u, 65u, 130u}) {
            LossMask m(256, true);
            for (std::size_t i = start; i < std::min<std::size_t>(start + len, 256); ++i) {
                m[i] = false;
            }
            expect_metrics_match(m);
        }
    }
}

TEST(BitMask, AllLostAndAllDelivered) {
    for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
        expect_metrics_match(LossMask(n, false));
        expect_metrics_match(LossMask(n, true));
        const BitMask all_lost(n, false);
        EXPECT_EQ(espread::consecutive_loss(all_lost), n);
        EXPECT_EQ(espread::aggregate_loss_count(all_lost), n);
        const BitMask all_ok(n, true);
        EXPECT_EQ(espread::consecutive_loss(all_ok), 0u);
        EXPECT_EQ(espread::aggregate_loss_count(all_ok), 0u);
    }
}

TEST(BitMask, SetAndTest) {
    BitMask m(130, true);
    m.set(0, false);
    m.set(64, false);
    m.set(129, false);
    EXPECT_FALSE(m.test(0));
    EXPECT_FALSE(m.test(64));
    EXPECT_FALSE(m.test(129));
    EXPECT_TRUE(m.test(1));
    EXPECT_EQ(espread::aggregate_loss_count(m), 3u);
    m.set(64, true);
    EXPECT_TRUE(m.test(64));
    EXPECT_EQ(espread::aggregate_loss_count(m), 2u);
}

TEST(ContinuityMeter, BitMaskWindowsMatchLossMaskWindows) {
    espread::sim::Rng rng{11};
    espread::ContinuityMeter a;
    espread::ContinuityMeter b;
    for (int w = 0; w < 20; ++w) {
        const LossMask m = random_mask(rng, 96, 0.2);
        a.add_window(m);
        b.add_window(BitMask::from_mask(m));
    }
    EXPECT_EQ(a.total().slots, b.total().slots);
    EXPECT_EQ(a.total().unit_losses, b.total().unit_losses);
    EXPECT_EQ(a.total().clf, b.total().clf);
    EXPECT_DOUBLE_EQ(a.total().alf, b.total().alf);
}

// ---- scratch-buffer permutation paths ------------------------------------

TEST(Permutation, ApplyIntoMatchesApply) {
    espread::sim::Rng rng{5};
    const Permutation p =
        espread::calculate_permutation(96, 17).perm;
    std::vector<int> items(96);
    for (std::size_t i = 0; i < items.size(); ++i) {
        items[i] = static_cast<int>(rng.next_u64() & 0xFFFF);
    }
    std::vector<int> scratch;
    p.apply_into(items, scratch);
    EXPECT_EQ(scratch, p.apply(items));
    p.unapply_into(items, scratch);
    EXPECT_EQ(scratch, p.unapply(items));
    // Round trip through the scratch paths restores the original.
    std::vector<int> tx, back;
    p.apply_into(items, tx);
    p.unapply_into(tx, back);
    EXPECT_EQ(back, items);
}

TEST(Permutation, MoveApplyMatchesCopyApply) {
    const Permutation p = espread::calculate_permutation(24, 7).perm;
    std::vector<std::string> items;
    for (int i = 0; i < 24; ++i) items.push_back("frame-" + std::to_string(i));
    const auto copied = p.apply(items);
    auto moved = p.apply(std::move(items));
    EXPECT_EQ(moved, copied);
}

TEST(ErrorSpreader, UnspreadIntoMatchesUnspread) {
    espread::ErrorSpreader spreader{96};
    spreader.on_feedback(9);
    (void)spreader.begin_window();
    espread::sim::Rng rng{3};
    LossMask rx(96);
    for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = !rng.bernoulli(0.25);
    LossMask scratch;
    spreader.unspread_into(rx, scratch);
    EXPECT_EQ(scratch, spreader.unspread(rx));
}

// ---- JSON writer ----------------------------------------------------------

TEST(JsonWriter, EmitsWellFormedNestedStructure) {
    JsonWriter j;
    j.begin_object();
    j.key("name").value("fig8");
    j.key("trials").value(std::uint64_t{32});
    j.key("alf").value(0.25);
    j.key("ok").value(true);
    j.key("panels").begin_array();
    j.begin_object().key("p_bad").value(0.6).end_object();
    j.begin_object().key("p_bad").value(0.7).end_object();
    j.end_array();
    j.end_object();
    EXPECT_EQ(j.str(),
              "{\"name\":\"fig8\",\"trials\":32,\"alf\":0.25,\"ok\":true,"
              "\"panels\":[{\"p_bad\":0.59999999999999998},"
              "{\"p_bad\":0.69999999999999996}]}");
}

TEST(JsonWriter, EscapesStrings) {
    JsonWriter j;
    j.value("a\"b\\c\nd");
    EXPECT_EQ(j.str(), "\"a\\\"b\\\\c\\nd\"");
}

}  // namespace
