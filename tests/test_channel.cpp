#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/fragment.hpp"

namespace {

using espread::net::Channel;
using espread::net::FaultChannel;
using espread::net::GilbertParams;
using espread::net::ImpairmentConfig;
using espread::net::LinkConfig;
using espread::sim::EventQueue;
using espread::sim::from_millis;
using espread::sim::from_seconds;
using espread::sim::Rng;
using espread::sim::SimTime;

constexpr GilbertParams kLossless{1.0, 0.0};

TEST(Channel, DeliveryTimeIsSerializationPlusPropagation) {
    EventQueue q;
    // 1000 bits at 1 Mb/s = 1 ms serialization; 11.5 ms propagation.
    Channel<int> ch{q, LinkConfig{1e6, from_millis(11.5)}, kLossless, Rng{1}};
    SimTime arrival = -1;
    ch.set_receiver([&](int) { arrival = q.now(); });
    ch.send(7, 1000);
    q.run();
    EXPECT_EQ(arrival, from_millis(12.5));
}

TEST(Channel, BackToBackMessagesSerialize) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    std::vector<SimTime> arrivals;
    std::vector<int> payloads;
    ch.set_receiver([&](int v) {
        arrivals.push_back(q.now());
        payloads.push_back(v);
    });
    ch.send(1, 1000);
    ch.send(2, 1000);
    ch.send(3, 1000);
    q.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(arrivals[0], from_millis(1));
    EXPECT_EQ(arrivals[1], from_millis(2));
    EXPECT_EQ(arrivals[2], from_millis(3));
}

TEST(Channel, LinkFreesUpOverTime) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    ch.set_receiver([](int) {});
    EXPECT_EQ(ch.next_free_time(), 0);
    ch.send(1, 2000);
    EXPECT_EQ(ch.next_free_time(), from_millis(2));
    EXPECT_EQ(ch.serialization_time(1000), from_millis(1));
    q.run();
}

TEST(Channel, AllPacketsDroppedWhenAlwaysBad) {
    EventQueue q;
    // p_good = 0 and p_bad = 1: everything after the first packet dies.
    Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.0, 1.0}, Rng{1}};
    int received = 0;
    ch.set_receiver([&](int) { ++received; });
    for (int i = 0; i < 10; ++i) ch.send(i, 100);
    q.run();
    EXPECT_EQ(received, 1);  // initial GOOD state admits the first packet
    EXPECT_EQ(ch.stats().sent, 10u);
    EXPECT_EQ(ch.stats().delivered, 1u);
    EXPECT_EQ(ch.stats().dropped, 9u);
    EXPECT_EQ(ch.stats().bits_sent, 1000u);
    // The 9 drops form one (still open) loss run of length 9.
    const auto runs = ch.stats().loss_runs;
    EXPECT_EQ(runs.total(), 1u);
    ASSERT_EQ(runs.bins().size(), 1u);
    EXPECT_EQ(runs.bins().begin()->first, 9);
    EXPECT_EQ(runs.bins().begin()->second, 1u);
}

TEST(Channel, LosslessChannelHasNoLossRuns) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    ch.set_receiver([](int) {});
    for (int i = 0; i < 20; ++i) ch.send(i, 100);
    q.run();
    EXPECT_EQ(ch.stats().loss_runs.total(), 0u);
}

TEST(Channel, LossRunLengthsSumToDroppedPackets) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5}, Rng{7}};
    ch.set_receiver([](int) {});
    for (int i = 0; i < 500; ++i) ch.send(i, 100);
    q.run();
    const auto s = ch.stats();
    ASSERT_GT(s.dropped, 0u);
    ASSERT_LT(s.dropped, s.sent);
    // Every dropped packet belongs to exactly one run, so the lengths
    // weighted by their counts must add up to the drop total.
    std::size_t in_runs = 0;
    for (const auto& [len, count] : s.loss_runs.bins()) {
        ASSERT_GE(len, 1);
        in_runs += static_cast<std::size_t>(len) * count;
    }
    EXPECT_EQ(in_runs, s.dropped);
    EXPECT_LE(s.loss_runs.total(), s.dropped);
}

TEST(Channel, LossyDeliveryIsDeterministicPerSeed) {
    auto run = [](std::uint64_t seed) {
        EventQueue q;
        Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5}, Rng{seed}};
        std::vector<int> got;
        ch.set_receiver([&](int v) { got.push_back(v); });
        for (int i = 0; i < 200; ++i) ch.send(i, 500);
        q.run();
        return got;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Channel, MoveOnlyPayloadsSupported) {
    EventQueue q;
    Channel<std::unique_ptr<std::string>> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    std::string got;
    ch.set_receiver([&](std::unique_ptr<std::string> s) { got = *s; });
    ch.send(std::make_unique<std::string>("hello"), 64);
    q.run();
    EXPECT_EQ(got, "hello");
}

TEST(Channel, RejectsBadLinkConfig) {
    EventQueue q;
    EXPECT_THROW((Channel<int>{q, LinkConfig{0.0, 0}, kLossless, Rng{1}}),
                 std::invalid_argument);
    EXPECT_THROW((Channel<int>{q, LinkConfig{1e6, -5}, kLossless, Rng{1}}),
                 std::invalid_argument);
}

// ---- FaultChannel ---------------------------------------------------------

/// delivered + dropped + corrupt_rejected == sent + duplicated, and the
/// loss-run histogram still sums to dropped: the reconciliation contract
/// every impaired run must satisfy once the queue has drained.
void expect_reconciled(const espread::net::ChannelStats& s,
                       std::size_t received) {
    EXPECT_EQ(s.delivered, received);
    EXPECT_EQ(s.delivered + s.dropped + s.corrupt_rejected,
              s.sent + s.duplicated);
    EXPECT_LE(s.forced_dropped, s.dropped);
    std::size_t in_runs = 0;
    for (const auto& [len, count] : s.loss_runs.bins()) {
        in_runs += static_cast<std::size_t>(len) * count;
    }
    EXPECT_EQ(in_runs, s.dropped);
}

TEST(FaultChannel, InactiveConfigMatchesBareChannelExactly) {
    auto run = [](auto& ch, EventQueue& q) {
        std::vector<std::pair<SimTime, int>> got;
        ch.set_receiver([&](int v) { got.emplace_back(q.now(), v); });
        for (int i = 0; i < 300; ++i) ch.send(i, 700);
        q.run();
        return got;
    };
    EventQueue q1;
    Channel<int> bare{q1, LinkConfig{1e6, from_millis(3)},
                      GilbertParams{0.9, 0.5}, Rng{42}};
    EventQueue q2;
    FaultChannel<int> faulty{q2, LinkConfig{1e6, from_millis(3)},
                             GilbertParams{0.9, 0.5}, Rng{42}};
    faulty.set_impairments(ImpairmentConfig{}, Rng{7});  // inactive
    EXPECT_FALSE(faulty.impaired());
    const auto a = run(bare, q1);
    const auto b = run(faulty, q2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(bare.stats().dropped, faulty.stats().dropped);
}

TEST(FaultChannel, FullMixReconciles) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, from_millis(3)},
                         GilbertParams{0.9, 0.5}, Rng{11}};
    ImpairmentConfig cfg;
    cfg.reorder_rate = 0.2;
    cfg.duplicate_rate = 0.15;
    cfg.corrupt_rate = 0.2;
    cfg.jitter_rate = 0.3;
    cfg.bursts.push_back({50, 7});
    cfg.blackouts.push_back({from_millis(200), from_millis(230)});
    // Corrupter: half detected (reject), half survives mutated.
    ch.set_impairments(cfg, Rng{99}, [](const int& v, Rng& r) {
        return r.bernoulli(0.5) ? std::optional<int>(v ^ 1) : std::nullopt;
    });
    std::size_t received = 0;
    ch.set_receiver([&](int) { ++received; });
    for (int i = 0; i < 500; ++i) ch.send(i, 700);
    q.run();
    const auto s = ch.stats();
    EXPECT_EQ(s.sent, 500u);
    EXPECT_GT(s.duplicated, 0u);
    EXPECT_GT(s.corrupt_rejected, 0u);
    EXPECT_GT(s.reordered, 0u);
    EXPECT_GE(s.forced_dropped, 7u);  // the scripted burst at minimum
    expect_reconciled(s, received);
}

TEST(FaultChannel, SidebandSendsReconcileWithTheLedger) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, from_millis(3)},
                         GilbertParams{0.9, 0.5}, Rng{12}};
    ImpairmentConfig cfg;
    cfg.reorder_rate = 0.2;
    cfg.duplicate_rate = 0.15;
    cfg.corrupt_rate = 0.2;
    cfg.blackouts.push_back({from_millis(100), from_millis(140)});
    ch.set_impairments(cfg, Rng{98}, [](const int& v, Rng& r) {
        return r.bernoulli(0.5) ? std::optional<int>(v ^ 1) : std::nullopt;
    });
    std::size_t received = 0;
    ch.set_receiver([&](int) { ++received; });
    // Interleave media sends with side-band repair/retransmission sends;
    // every third message rides the side band.
    std::size_t sideband = 0, sideband_bits = 0;
    for (int i = 0; i < 300; ++i) {
        if (i % 3 == 2) {
            ch.send_sideband(i, 900);
            ++sideband;
            sideband_bits += 900;
        } else {
            ch.send(i, 700);
        }
    }
    q.run();
    const auto s = ch.stats();
    // Side-band traffic is a broken-out subset of the same ledger: it is
    // included in sent/bits_sent, so the reconciliation invariant covers
    // it — no packet class escapes the accounting.
    EXPECT_EQ(s.sent, 300u);
    EXPECT_EQ(s.sideband_sent, sideband);
    EXPECT_EQ(s.sideband_bits, sideband_bits);
    EXPECT_LE(s.sideband_sent, s.sent);
    EXPECT_LE(s.sideband_bits, s.bits_sent);
    expect_reconciled(s, received);
}

TEST(FaultChannel, ReorderDisplacementIsBounded) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig cfg;
    cfg.reorder_rate = 0.5;
    cfg.reorder_max_displacement = 3;
    ch.set_impairments(cfg, Rng{5});
    std::vector<int> order;
    ch.set_receiver([&](int v) { order.push_back(v); });
    constexpr int kN = 200;
    for (int i = 0; i < kN; ++i) ch.send(i, 1000);
    q.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
    // With back-to-back equal-size lossless sends, a displaced packet moves
    // at most reorder_max_displacement positions in either direction.
    bool any_displaced = false;
    for (int pos = 0; pos < kN; ++pos) {
        EXPECT_LE(std::abs(order[pos] - pos), 3) << "at position " << pos;
        if (order[pos] != pos) any_displaced = true;
    }
    EXPECT_TRUE(any_displaced);
    // Every packet still arrives exactly once.
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < kN; ++i) EXPECT_EQ(sorted[i], i);
    expect_reconciled(ch.stats(), order.size());
}

TEST(FaultChannel, DuplicatesDeliverTwiceAndCount) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig cfg;
    cfg.duplicate_rate = 1.0;
    cfg.duplicate_delay = from_millis(2);
    ch.set_impairments(cfg, Rng{3});
    std::vector<int> got;
    ch.set_receiver([&](int v) { got.push_back(v); });
    for (int i = 0; i < 10; ++i) ch.send(i, 1000);
    q.run();
    const auto s = ch.stats();
    EXPECT_EQ(s.sent, 10u);
    EXPECT_EQ(s.duplicated, 10u);
    EXPECT_EQ(s.delivered, 20u);
    // Each value arrives exactly twice, the copy after the original.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(std::count(got.begin(), got.end(), i), 2);
    }
    expect_reconciled(s, got.size());
}

TEST(FaultChannel, BlackoutKillsExactlyTheInterval) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig cfg;
    // Packets are 1 ms each, back to back: packet i departs at i ms.
    cfg.blackouts.push_back({from_millis(5), from_millis(10)});
    ch.set_impairments(cfg, Rng{3});
    std::vector<int> got;
    ch.set_receiver([&](int v) { got.push_back(v); });
    for (int i = 0; i < 20; ++i) ch.send(i, 1000);
    q.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 10, 11, 12, 13, 14, 15,
                                     16, 17, 18, 19}));
    const auto s = ch.stats();
    EXPECT_EQ(s.forced_dropped, 5u);
    EXPECT_EQ(s.dropped, 5u);
    // The five scripted drops form one loss run.
    ASSERT_EQ(s.loss_runs.bins().size(), 1u);
    EXPECT_EQ(s.loss_runs.bins().begin()->first, 5);
    expect_reconciled(s, got.size());
}

TEST(FaultChannel, ForcedBurstDropsBydIndex) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig cfg;
    cfg.bursts.push_back({3, 4});  // sends 3,4,5,6
    ch.set_impairments(cfg, Rng{3});
    std::vector<int> got;
    ch.set_receiver([&](int v) { got.push_back(v); });
    for (int i = 0; i < 10; ++i) ch.send(i, 1000);
    q.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 7, 8, 9}));
    EXPECT_EQ(ch.stats().forced_dropped, 4u);
    expect_reconciled(ch.stats(), got.size());
}

TEST(FaultChannel, CorruptWithoutCorrupterRejectsOutright) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig cfg;
    cfg.corrupt_rate = 1.0;
    ch.set_impairments(cfg, Rng{3});  // no corrupter installed
    std::size_t received = 0;
    ch.set_receiver([&](int) { ++received; });
    for (int i = 0; i < 8; ++i) ch.send(i, 1000);
    q.run();
    EXPECT_EQ(received, 0u);
    EXPECT_EQ(ch.stats().corrupt_rejected, 8u);
    expect_reconciled(ch.stats(), received);
}

TEST(FaultChannel, ImpairedRunIsDeterministicPerSeed) {
    auto run = [](std::uint64_t fault_seed) {
        EventQueue q;
        FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5},
                             Rng{5}};
        ImpairmentConfig cfg;
        cfg.reorder_rate = 0.3;
        cfg.duplicate_rate = 0.2;
        cfg.jitter_rate = 0.4;
        ch.set_impairments(cfg, Rng{fault_seed});
        std::vector<std::pair<SimTime, int>> got;
        ch.set_receiver([&](int v) { got.emplace_back(q.now(), v); });
        for (int i = 0; i < 200; ++i) ch.send(i, 500);
        q.run();
        return got;
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}

TEST(FaultChannel, GilbertStreamUnchangedByFaultLayer) {
    // Enabling impairments must not shift the link's loss process: the same
    // send indices are Gilbert-dropped with and without faults.
    auto gilbert_drops = [](bool impaired) {
        EventQueue q;
        FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5},
                             Rng{21}};
        if (impaired) {
            ImpairmentConfig cfg;
            cfg.duplicate_rate = 0.5;
            cfg.jitter_rate = 0.5;
            ch.set_impairments(cfg, Rng{77});
        }
        std::vector<int> dropped;
        ch.set_receiver([](int) {});
        for (int i = 0; i < 300; ++i) {
            if (!ch.send(i, 500)) dropped.push_back(i);
        }
        q.run();
        return dropped;
    };
    EXPECT_EQ(gilbert_drops(false), gilbert_drops(true));
}

TEST(FaultChannel, ValidateRejectsBadConfigs) {
    EventQueue q;
    FaultChannel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{1.0, 0.0},
                         Rng{1}};
    ImpairmentConfig bad_rate;
    bad_rate.duplicate_rate = 1.5;
    EXPECT_THROW(ch.set_impairments(bad_rate, Rng{1}), std::invalid_argument);
    ImpairmentConfig bad_disp;
    bad_disp.reorder_rate = 0.1;
    bad_disp.reorder_max_displacement = 0;
    EXPECT_THROW(ch.set_impairments(bad_disp, Rng{1}), std::invalid_argument);
    ImpairmentConfig bad_blackout;
    bad_blackout.blackouts.push_back({from_millis(10), from_millis(5)});
    EXPECT_THROW(ch.set_impairments(bad_blackout, Rng{1}),
                 std::invalid_argument);
    ImpairmentConfig inactive;
    inactive.blackouts.push_back({from_millis(5), from_millis(5)});  // empty
    ch.set_impairments(inactive, Rng{1});
    EXPECT_FALSE(ch.impaired());
}

TEST(Fragment, ExactDivision) {
    EXPECT_EQ(espread::net::packet_count(32768, 16384), 2u);
    EXPECT_EQ(espread::net::fragment_sizes(32768, 16384),
              (std::vector<std::size_t>{16384, 16384}));
}

TEST(Fragment, RemainderGoesLast) {
    EXPECT_EQ(espread::net::fragment_sizes(20000, 16384),
              (std::vector<std::size_t>{16384, 3616}));
    EXPECT_EQ(espread::net::packet_count(20000, 16384), 2u);
}

TEST(Fragment, SmallFrameSinglePacket) {
    EXPECT_EQ(espread::net::fragment_sizes(100, 16384),
              (std::vector<std::size_t>{100}));
}

TEST(Fragment, ZeroSizeFrameStillNeedsAPacket) {
    EXPECT_EQ(espread::net::packet_count(0, 16384), 1u);
    EXPECT_EQ(espread::net::fragment_sizes(0, 16384),
              (std::vector<std::size_t>{1}));
}

TEST(Fragment, ZeroMtuThrows) {
    EXPECT_THROW(espread::net::packet_count(100, 0), std::invalid_argument);
}

}  // namespace
