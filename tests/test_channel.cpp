#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fragment.hpp"

namespace {

using espread::net::Channel;
using espread::net::GilbertParams;
using espread::net::LinkConfig;
using espread::sim::EventQueue;
using espread::sim::from_millis;
using espread::sim::from_seconds;
using espread::sim::Rng;
using espread::sim::SimTime;

constexpr GilbertParams kLossless{1.0, 0.0};

TEST(Channel, DeliveryTimeIsSerializationPlusPropagation) {
    EventQueue q;
    // 1000 bits at 1 Mb/s = 1 ms serialization; 11.5 ms propagation.
    Channel<int> ch{q, LinkConfig{1e6, from_millis(11.5)}, kLossless, Rng{1}};
    SimTime arrival = -1;
    ch.set_receiver([&](int) { arrival = q.now(); });
    ch.send(7, 1000);
    q.run();
    EXPECT_EQ(arrival, from_millis(12.5));
}

TEST(Channel, BackToBackMessagesSerialize) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    std::vector<SimTime> arrivals;
    std::vector<int> payloads;
    ch.set_receiver([&](int v) {
        arrivals.push_back(q.now());
        payloads.push_back(v);
    });
    ch.send(1, 1000);
    ch.send(2, 1000);
    ch.send(3, 1000);
    q.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(arrivals[0], from_millis(1));
    EXPECT_EQ(arrivals[1], from_millis(2));
    EXPECT_EQ(arrivals[2], from_millis(3));
}

TEST(Channel, LinkFreesUpOverTime) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    ch.set_receiver([](int) {});
    EXPECT_EQ(ch.next_free_time(), 0);
    ch.send(1, 2000);
    EXPECT_EQ(ch.next_free_time(), from_millis(2));
    EXPECT_EQ(ch.serialization_time(1000), from_millis(1));
    q.run();
}

TEST(Channel, AllPacketsDroppedWhenAlwaysBad) {
    EventQueue q;
    // p_good = 0 and p_bad = 1: everything after the first packet dies.
    Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.0, 1.0}, Rng{1}};
    int received = 0;
    ch.set_receiver([&](int) { ++received; });
    for (int i = 0; i < 10; ++i) ch.send(i, 100);
    q.run();
    EXPECT_EQ(received, 1);  // initial GOOD state admits the first packet
    EXPECT_EQ(ch.stats().sent, 10u);
    EXPECT_EQ(ch.stats().delivered, 1u);
    EXPECT_EQ(ch.stats().dropped, 9u);
    EXPECT_EQ(ch.stats().bits_sent, 1000u);
    // The 9 drops form one (still open) loss run of length 9.
    const auto runs = ch.stats().loss_runs;
    EXPECT_EQ(runs.total(), 1u);
    ASSERT_EQ(runs.bins().size(), 1u);
    EXPECT_EQ(runs.bins().begin()->first, 9);
    EXPECT_EQ(runs.bins().begin()->second, 1u);
}

TEST(Channel, LosslessChannelHasNoLossRuns) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    ch.set_receiver([](int) {});
    for (int i = 0; i < 20; ++i) ch.send(i, 100);
    q.run();
    EXPECT_EQ(ch.stats().loss_runs.total(), 0u);
}

TEST(Channel, LossRunLengthsSumToDroppedPackets) {
    EventQueue q;
    Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5}, Rng{7}};
    ch.set_receiver([](int) {});
    for (int i = 0; i < 500; ++i) ch.send(i, 100);
    q.run();
    const auto s = ch.stats();
    ASSERT_GT(s.dropped, 0u);
    ASSERT_LT(s.dropped, s.sent);
    // Every dropped packet belongs to exactly one run, so the lengths
    // weighted by their counts must add up to the drop total.
    std::size_t in_runs = 0;
    for (const auto& [len, count] : s.loss_runs.bins()) {
        ASSERT_GE(len, 1);
        in_runs += static_cast<std::size_t>(len) * count;
    }
    EXPECT_EQ(in_runs, s.dropped);
    EXPECT_LE(s.loss_runs.total(), s.dropped);
}

TEST(Channel, LossyDeliveryIsDeterministicPerSeed) {
    auto run = [](std::uint64_t seed) {
        EventQueue q;
        Channel<int> ch{q, LinkConfig{1e6, 0}, GilbertParams{0.9, 0.5}, Rng{seed}};
        std::vector<int> got;
        ch.set_receiver([&](int v) { got.push_back(v); });
        for (int i = 0; i < 200; ++i) ch.send(i, 500);
        q.run();
        return got;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Channel, MoveOnlyPayloadsSupported) {
    EventQueue q;
    Channel<std::unique_ptr<std::string>> ch{q, LinkConfig{1e6, 0}, kLossless, Rng{1}};
    std::string got;
    ch.set_receiver([&](std::unique_ptr<std::string> s) { got = *s; });
    ch.send(std::make_unique<std::string>("hello"), 64);
    q.run();
    EXPECT_EQ(got, "hello");
}

TEST(Channel, RejectsBadLinkConfig) {
    EventQueue q;
    EXPECT_THROW((Channel<int>{q, LinkConfig{0.0, 0}, kLossless, Rng{1}}),
                 std::invalid_argument);
    EXPECT_THROW((Channel<int>{q, LinkConfig{1e6, -5}, kLossless, Rng{1}}),
                 std::invalid_argument);
}

TEST(Fragment, ExactDivision) {
    EXPECT_EQ(espread::net::packet_count(32768, 16384), 2u);
    EXPECT_EQ(espread::net::fragment_sizes(32768, 16384),
              (std::vector<std::size_t>{16384, 16384}));
}

TEST(Fragment, RemainderGoesLast) {
    EXPECT_EQ(espread::net::fragment_sizes(20000, 16384),
              (std::vector<std::size_t>{16384, 3616}));
    EXPECT_EQ(espread::net::packet_count(20000, 16384), 2u);
}

TEST(Fragment, SmallFrameSinglePacket) {
    EXPECT_EQ(espread::net::fragment_sizes(100, 16384),
              (std::vector<std::size_t>{100}));
}

TEST(Fragment, ZeroSizeFrameStillNeedsAPacket) {
    EXPECT_EQ(espread::net::packet_count(0, 16384), 1u);
    EXPECT_EQ(espread::net::fragment_sizes(0, 16384),
              (std::vector<std::size_t>{1}));
}

TEST(Fragment, ZeroMtuThrows) {
    EXPECT_THROW(espread::net::packet_count(100, 0), std::invalid_argument);
}

}  // namespace
