// Adaptation-governor tests (protocol/governor.hpp).
//
// Covers the supervision contract end to end: config validation, the
// window-sequenced ACK admission check, the outlier guard (one ACK can
// move the published bound by at most max_step), the missed-deadline
// watchdog with its Degraded -> Fallback -> Recovering -> Normal ladder,
// exponential-backoff re-arming, and the session-level wiring — including
// the zero-cost-off contract: a disabled governor keeps the session
// byte-identical to the pre-governor pinned baseline.
#include "protocol/governor.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "core/estimator.hpp"
#include "obs/trace.hpp"
#include "protocol/report.hpp"
#include "protocol/session.hpp"

namespace {

using espread::BurstEstimator;
using espread::obs::EventType;
using espread::obs::TraceEvent;
using espread::obs::TraceRecorder;
using espread::proto::AckRejectReason;
using espread::proto::AdaptationGovernor;
using espread::proto::GovernorConfig;
using espread::proto::GovernorState;
using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;

GovernorConfig test_config() {
    GovernorConfig g;
    g.enabled = true;
    g.miss_budget = 2;
    g.max_step = 16;  // window-sized: the guard never engages
    g.hysteresis_windows = 1;
    g.recovery_windows = 3;
    return g;
}

std::vector<TraceEvent> events_of(const TraceRecorder& rec, EventType type) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : rec.events()) {
        if (e.type == type) out.push_back(e);
    }
    return out;
}

TEST(GovernorConfig, ValidateRejectsBadThresholds) {
    EXPECT_NO_THROW(test_config().validate());
    GovernorConfig g = test_config();
    g.hysteresis_windows = 0;
    EXPECT_THROW(g.validate(), std::invalid_argument);
    g = test_config();
    g.max_step = 0;
    EXPECT_THROW(g.validate(), std::invalid_argument);
    g = test_config();
    g.recovery_windows = 0;
    EXPECT_THROW(g.validate(), std::invalid_argument);
    g = test_config();
    g.outage_decay = -0.1;
    EXPECT_THROW(g.validate(), std::invalid_argument);
    g = test_config();
    g.outage_decay = 1.5;
    EXPECT_THROW(g.validate(), std::invalid_argument);
    g = test_config();
    g.max_rearm_windows = g.recovery_windows - 1;
    EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(GovernorConfig, SessionValidationEnforcesPrerequisites) {
    SessionConfig cfg;
    cfg.governor = test_config();
    EXPECT_NO_THROW(cfg.validate());

    SessionConfig pinned = cfg;
    pinned.pinned_bound = 3;
    EXPECT_THROW(pinned.validate(), std::invalid_argument);

    SessionConfig nonadaptive = cfg;
    nonadaptive.adaptive = false;
    EXPECT_THROW(nonadaptive.validate(), std::invalid_argument);

    SessionConfig sliding = cfg;
    sliding.estimator = espread::proto::EstimatorKind::kSlidingMax;
    EXPECT_THROW(sliding.validate(), std::invalid_argument);
}

TEST(Governor, AckAdmissionRejectsDuplicateStaleFuture) {
    BurstEstimator est(16);
    AdaptationGovernor gov(test_config(), est);
    TraceRecorder rec;
    gov.set_trace(&rec);

    gov.on_window_start(0);
    // Nothing has been transmitted past window 0 yet: every window index is
    // implausible (a window's ACK departs only after the next one starts).
    EXPECT_EQ(gov.admit_ack(0, 1), AckRejectReason::kFuture);

    gov.on_window_start(1);
    gov.on_window_start(2);
    EXPECT_EQ(gov.admit_ack(1, 2), std::nullopt);
    EXPECT_EQ(gov.admit_ack(1, 3), AckRejectReason::kDuplicate);
    EXPECT_EQ(gov.admit_ack(0, 4), AckRejectReason::kStale);
    EXPECT_EQ(gov.admit_ack(2, 5), AckRejectReason::kFuture);
    EXPECT_EQ(gov.admit_ack(7, 6), AckRejectReason::kFuture);

    EXPECT_EQ(gov.report().acks_rejected_duplicate, 1u);
    EXPECT_EQ(gov.report().acks_rejected_stale, 1u);
    EXPECT_EQ(gov.report().acks_rejected_future, 3u);
    EXPECT_EQ(gov.report().acks_rejected(), 5u);
    EXPECT_EQ(events_of(rec, EventType::kGovernorAckReject).size(), 5u);

    // After close_stream the final window's own ACK is admissible: it can
    // only arrive once the window-start clock has stopped.
    gov.close_stream();
    EXPECT_EQ(gov.admit_ack(2, 7), std::nullopt);
    EXPECT_EQ(gov.admit_ack(3, 8), AckRejectReason::kFuture);
}

TEST(Governor, OutlierGuardBoundsSingleAckStep) {
    // alpha = 1 (pure tracking) maximizes the estimator's eagerness: without
    // the guard one ACK would jump the bound straight to the observation.
    BurstEstimator est(16, 1.0);
    GovernorConfig cfg = test_config();
    cfg.max_step = 2;
    AdaptationGovernor gov(cfg, est);
    TraceRecorder rec;
    gov.set_trace(&rec);

    gov.on_window_start(0);
    gov.on_window_start(1);

    const std::array<std::size_t, 6> hostile = {16, 0, 16, 16, 0, 12};
    std::size_t window = 2;
    std::size_t published = gov.governed_bound();
    EXPECT_EQ(published, 8u);
    for (std::size_t obs : hostile) {
        ASSERT_EQ(gov.admit_ack(window - 2, window), std::nullopt);
        gov.on_observation(obs);
        const std::size_t next = gov.on_window_start(window++);
        const std::size_t moved =
            next > published ? next - published : published - next;
        EXPECT_LE(moved, cfg.max_step)
            << "observation " << obs << " moved the bound by " << moved;
        published = next;
    }
    // All but the final observation (12, within max_step of bound 10) engage
    // the guard.
    EXPECT_EQ(gov.report().observations_clamped, 5u);
    EXPECT_FALSE(events_of(rec, EventType::kGovernorClamp).empty());
}

TEST(Governor, WatchdogWalksFallbackAndRecovery) {
    BurstEstimator est(16, 0.5);
    AdaptationGovernor gov(test_config(), est);

    // Healthy feedback through window 6: ACK(k-2) arrives during window k-1.
    std::size_t k = 0;
    gov.on_window_start(k++);  // window 0: prior
    gov.on_window_start(k++);  // window 1: no feedback possible yet
    EXPECT_EQ(gov.state(), GovernorState::kNormal);
    for (; k <= 6; ++k) {
        ASSERT_EQ(gov.admit_ack(k - 2, k), std::nullopt);
        gov.on_observation(3);
        gov.on_window_start(k);
        EXPECT_EQ(gov.state(), GovernorState::kNormal) << "window " << k;
    }

    // Total feedback blackout: windows 7..11 start without a fresh ACK.
    gov.on_window_start(7);  // miss 1
    EXPECT_EQ(gov.state(), GovernorState::kDegraded);
    EXPECT_EQ(gov.missed_windows(), 1u);
    gov.on_window_start(8);  // miss 2 == budget
    EXPECT_EQ(gov.state(), GovernorState::kDegraded);
    gov.on_window_start(9);  // miss 3 > budget: hard fallback
    EXPECT_EQ(gov.state(), GovernorState::kFallback);
    EXPECT_EQ(gov.governed_bound(), 8u) << "fallback must pin ceil(n/2)";
    EXPECT_EQ(est.estimate(), 8.0) << "fallback must reset the estimator";
    gov.on_window_start(10);
    gov.on_window_start(11);
    EXPECT_EQ(gov.state(), GovernorState::kFallback);

    // Feedback returns during window 11; staged recovery takes
    // recovery_windows = 3 clean windows before Normal.
    ASSERT_EQ(gov.admit_ack(10, 100), std::nullopt);
    gov.on_observation(3);
    gov.on_window_start(12);
    EXPECT_EQ(gov.state(), GovernorState::kRecovering);
    for (std::size_t w = 13; w <= 14; ++w) {
        ASSERT_EQ(gov.admit_ack(w - 2, 100 + w), std::nullopt);
        gov.on_observation(3);
        gov.on_window_start(w);
        EXPECT_EQ(gov.state(), GovernorState::kRecovering) << "window " << w;
    }
    ASSERT_EQ(gov.admit_ack(13, 200), std::nullopt);
    gov.on_observation(3);
    gov.on_window_start(15);
    EXPECT_EQ(gov.state(), GovernorState::kNormal);

    EXPECT_EQ(gov.report().fallbacks, 1u);
    EXPECT_EQ(gov.report().recoveries, 1u);
    EXPECT_EQ(gov.report().transitions, 4u);  // N->D->F->R->N
    EXPECT_EQ(gov.report().windows_in_state[0] +
                  gov.report().windows_in_state[1] +
                  gov.report().windows_in_state[2] +
                  gov.report().windows_in_state[3],
              16u);
}

TEST(Governor, OutageMidRecoveryDoublesRearmStreak) {
    BurstEstimator est(16, 0.5);
    GovernorConfig cfg = test_config();
    cfg.miss_budget = 1;
    cfg.recovery_windows = 2;
    cfg.max_rearm_windows = 8;
    AdaptationGovernor gov(cfg, est);

    auto ack = [&](std::size_t window, std::uint64_t seq) {
        ASSERT_EQ(gov.admit_ack(window, seq), std::nullopt);
        gov.on_observation(3);
    };

    gov.on_window_start(0);
    gov.on_window_start(1);
    gov.on_window_start(2);  // miss 1
    gov.on_window_start(3);  // miss 2 > budget: Fallback
    ASSERT_EQ(gov.state(), GovernorState::kFallback);
    ack(2, 1);
    gov.on_window_start(4);  // Recovering, needs 2 clean windows
    ASSERT_EQ(gov.state(), GovernorState::kRecovering);
    gov.on_window_start(5);  // flap: a miss mid-recovery doubles the streak
    ASSERT_EQ(gov.state(), GovernorState::kDegraded);
    gov.on_window_start(6);  // second consecutive miss: Fallback again
    ASSERT_EQ(gov.state(), GovernorState::kFallback);
    ack(5, 2);
    gov.on_window_start(7);  // Recovering with a doubled 4-window streak
    ASSERT_EQ(gov.state(), GovernorState::kRecovering);
    for (std::size_t w = 8; w <= 10; ++w) {
        ack(w - 2, w);
        gov.on_window_start(w);
        ASSERT_EQ(gov.state(), GovernorState::kRecovering)
            << "rearm must now take 4 windows, not 2 (window " << w << ")";
    }
    ack(9, 20);
    gov.on_window_start(11);
    EXPECT_EQ(gov.state(), GovernorState::kNormal);
    EXPECT_EQ(gov.report().fallbacks, 2u);
    EXPECT_EQ(gov.report().recoveries, 2u);
}

TEST(Governor, HysteresisHoldsPublishedBoundUntilStreak) {
    BurstEstimator est(16, 1.0);  // raw bound == latest observation
    GovernorConfig cfg = test_config();
    cfg.hysteresis_windows = 2;
    AdaptationGovernor gov(cfg, est);

    gov.on_window_start(0);
    gov.on_window_start(1);
    ASSERT_EQ(gov.governed_bound(), 8u);

    // One window at a new raw bound: published must not follow yet.
    ASSERT_EQ(gov.admit_ack(0, 1), std::nullopt);
    gov.on_observation(4);
    EXPECT_EQ(gov.on_window_start(2), 8u);
    // Second consecutive window at the same raw bound: published follows.
    ASSERT_EQ(gov.admit_ack(1, 2), std::nullopt);
    gov.on_observation(4);
    EXPECT_EQ(gov.on_window_start(3), 4u);
}

// --- Session-level wiring -------------------------------------------------

SessionConfig governed_config() {
    SessionConfig cfg;  // paper defaults: Jurassic Park, W=2, Gilbert(.92,.6)
    cfg.num_windows = 26;
    cfg.seed = 1;
    cfg.feedback_loss = {1.0, 0.0};  // lossless ACK path outside the blackout
    cfg.governor = test_config();
    return cfg;
}

TEST(GovernedSession, RidesFeedbackBlackoutThroughFallbackAndRecovery) {
    SessionConfig cfg = governed_config();
    cfg.blackout_feedback_windows(10, 15);  // kills ACKs of windows 10..15
    cfg.collect_metrics = true;
    TraceRecorder rec;
    cfg.trace = &rec;
    const SessionResult r = run_session(cfg);

    // ACK(9) is the last to arrive (during window 10); the first miss is
    // charged at the start of window 12, Fallback lands at window
    // 12 + miss_budget = 14 — within miss_budget + 1 windows of the first
    // missed deadline.  ACK(16) is the first survivor (arrives during
    // window 17), so Recovering starts at 18 and, after the 3-window
    // re-arm streak, Normal returns at 21.
    const auto state_of = [&](std::size_t w) { return r.windows[w].governor_state; };
    for (std::size_t w = 0; w <= 11; ++w) {
        EXPECT_EQ(state_of(w), GovernorState::kNormal) << "window " << w;
    }
    EXPECT_EQ(state_of(12), GovernorState::kDegraded);
    EXPECT_EQ(state_of(13), GovernorState::kDegraded);
    for (std::size_t w = 14; w <= 17; ++w) {
        EXPECT_EQ(state_of(w), GovernorState::kFallback) << "window " << w;
        EXPECT_EQ(r.windows[w].bound_used, 8u)
            << "fallback must run on the prior ceil(n/2) (window " << w << ")";
    }
    for (std::size_t w = 18; w <= 20; ++w) {
        EXPECT_EQ(state_of(w), GovernorState::kRecovering) << "window " << w;
    }
    for (std::size_t w = 21; w < 26; ++w) {
        EXPECT_EQ(state_of(w), GovernorState::kNormal) << "window " << w;
    }

    EXPECT_EQ(r.governor.fallbacks, 1u);
    EXPECT_EQ(r.governor.recoveries, 1u);
    EXPECT_EQ(r.governor.transitions, 4u);
    EXPECT_EQ(r.governor.windows_in_state[0], 17u);
    EXPECT_EQ(r.governor.windows_in_state[1], 2u);
    EXPECT_EQ(r.governor.windows_in_state[2], 4u);
    EXPECT_EQ(r.governor.windows_in_state[3], 3u);

    // Dwell accounting: the ladder visits Normal twice (the initial visit
    // plus the post-recovery return) and every other state once, so the
    // visit counts satisfy sum(state_entries) == transitions + 1.
    EXPECT_EQ(r.governor.state_entries[0], 2u);
    EXPECT_EQ(r.governor.state_entries[1], 1u);
    EXPECT_EQ(r.governor.state_entries[2], 1u);
    EXPECT_EQ(r.governor.state_entries[3], 1u);
    EXPECT_EQ(r.governor.state_entries[0] + r.governor.state_entries[1] +
                  r.governor.state_entries[2] + r.governor.state_entries[3],
              r.governor.transitions + 1);
    // Longest single visit per state: Normal's first stretch (windows
    // 0..11) beats its final one; the others equal their only visit.
    EXPECT_EQ(r.governor.longest_dwell[0], 12u);
    EXPECT_EQ(r.governor.longest_dwell[1], 2u);
    EXPECT_EQ(r.governor.longest_dwell[2], 4u);
    EXPECT_EQ(r.governor.longest_dwell[3], 3u);

    // Every transition is visible as a trace event, in order.
    const std::vector<TraceEvent> ev = events_of(rec, EventType::kGovernorState);
    ASSERT_EQ(ev.size(), 4u);
    const std::array<GovernorState, 4> want = {
        GovernorState::kDegraded, GovernorState::kFallback,
        GovernorState::kRecovering, GovernorState::kNormal};
    const std::array<std::size_t, 4> at = {12, 14, 18, 21};
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(static_cast<GovernorState>(ev[i].arg), want[i]);
        EXPECT_EQ(ev[i].window, at[i]);
    }

    // ...and as registry counters.
    EXPECT_EQ(r.metrics.counter("governor_windows_normal"), 17u);
    EXPECT_EQ(r.metrics.counter("governor_windows_degraded"), 2u);
    EXPECT_EQ(r.metrics.counter("governor_windows_fallback"), 4u);
    EXPECT_EQ(r.metrics.counter("governor_windows_recovering"), 3u);
    EXPECT_EQ(r.metrics.counter("governor_fallbacks"), 1u);
    EXPECT_EQ(r.metrics.counter("governor_recoveries"), 1u);
    EXPECT_EQ(r.metrics.counter("governor_transitions"), 4u);
    EXPECT_EQ(r.metrics.counter("governor_entries_normal"), 2u);
    EXPECT_EQ(r.metrics.counter("governor_entries_fallback"), 1u);
    EXPECT_EQ(r.metrics.counter("governor_longest_dwell_normal"), 12u);
    EXPECT_EQ(r.metrics.counter("governor_longest_dwell_recovering"), 3u);
    const auto* bounds = r.metrics.find_histogram("governor_bound");
    ASSERT_NE(bounds, nullptr);
    EXPECT_EQ(bounds->total(), 26u);

    // The governed summary names the governor; see the disabled test below
    // for the inverse.
    EXPECT_NE(espread::proto::summarize(r).find("governor"), std::string::npos);
}

TEST(GovernedSession, CleanNetworkStaysNormalAndMatchesUngoverned) {
    // With a window-sized max_step and hysteresis 1 the governor is
    // transparent on a clean network: same bounds as an ungoverned session,
    // all windows Normal, nothing rejected or clamped.
    SessionConfig cfg = governed_config();
    cfg.data_loss = {1.0, 0.0};
    const SessionResult governed = run_session(cfg);

    SessionConfig plain = cfg;
    plain.governor = espread::proto::GovernorConfig{};
    const SessionResult ungoverned = run_session(plain);

    ASSERT_EQ(governed.windows.size(), ungoverned.windows.size());
    for (std::size_t w = 0; w < governed.windows.size(); ++w) {
        EXPECT_EQ(governed.windows[w].bound_used, ungoverned.windows[w].bound_used)
            << "window " << w;
        EXPECT_EQ(governed.windows[w].clf, ungoverned.windows[w].clf);
        EXPECT_EQ(governed.windows[w].governor_state, GovernorState::kNormal);
    }
    EXPECT_EQ(governed.governor.transitions, 0u);
    EXPECT_EQ(governed.governor.acks_rejected(), 0u);
    EXPECT_EQ(governed.governor.observations_clamped, 0u);
}

TEST(GovernedSession, DisabledGovernorIsByteIdenticalToSeedBaseline) {
    // Golden pin of the pre-governor baseline (default config, 20 windows,
    // seed 1, captured from the commit that introduced the governor): the
    // default-disabled governor must not perturb a single window.
    SessionConfig cfg;
    cfg.num_windows = 20;
    cfg.seed = 1;
    cfg.collect_metrics = true;
    const SessionResult r = run_session(cfg);

    const std::array<std::size_t, 20> golden_bound = {8, 8, 6, 5, 5, 5, 5, 3, 3, 3,
                                                      3, 2, 2, 2, 2, 3, 3, 4, 4, 3};
    const std::array<std::size_t, 20> golden_clf = {2, 1, 1, 2, 1, 1, 1, 1, 2, 1,
                                                    1, 1, 1, 2, 2, 2, 1, 1, 1, 1};
    ASSERT_EQ(r.windows.size(), 20u);
    for (std::size_t w = 0; w < 20; ++w) {
        EXPECT_EQ(r.windows[w].bound_used, golden_bound[w]) << "window " << w;
        EXPECT_EQ(r.windows[w].clf, golden_clf[w]) << "window " << w;
        EXPECT_EQ(r.windows[w].governor_state, GovernorState::kNormal);
    }
    EXPECT_EQ(r.acks_sent, 20u);
    EXPECT_EQ(r.acks_applied, 19u);

    // Zero-cost-off: no governor accounting leaks into the report, the
    // registry or the summary when the governor is disabled.
    EXPECT_EQ(r.governor.transitions, 0u);
    EXPECT_EQ(r.governor.windows_in_state[0], 0u);
    for (const auto& [name, value] : r.metrics.counters()) {
        EXPECT_EQ(name.find("governor"), std::string::npos) << name;
        (void)value;
    }
    EXPECT_EQ(r.metrics.find_histogram("governor_bound"), nullptr);
    EXPECT_EQ(r.metrics.find_histogram("governor_state"), nullptr);
    EXPECT_EQ(espread::proto::summarize(r).find("governor"), std::string::npos);
}

}  // namespace
