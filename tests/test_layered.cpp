#include "poset/layered.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/burst.hpp"

namespace {

using espread::poset::build_layered_plan;
using espread::poset::Element;
using espread::poset::layer_members;
using espread::poset::LayeredPlan;
using espread::poset::Poset;

// Same two-GOP MPEG-like fixture as test_poset.cpp.
Poset mpeg_like() {
    Poset p{7};
    p.add_dependency(1, 0);
    p.add_dependency(1, 2);
    p.add_dependency(2, 0);
    p.add_dependency(3, 2);
    p.add_dependency(3, 4);
    p.add_dependency(5, 4);
    p.add_dependency(5, 6);
    p.add_dependency(6, 4);
    return p;
}

TEST(LayerMembers, AnchorsByHeightThenNonAnchors) {
    const auto layers = layer_members(mpeg_like());
    ASSERT_EQ(layers.size(), 3u);
    EXPECT_EQ(layers[0], (std::vector<Element>{0, 4}));  // I frames
    EXPECT_EQ(layers[1], (std::vector<Element>{2, 6}));  // P frames
    EXPECT_EQ(layers[2], (std::vector<Element>{1, 3, 5}));  // B frames
}

TEST(LayerMembers, LayerCountEqualsLongestChain) {
    const Poset p = mpeg_like();
    EXPECT_EQ(layer_members(p).size(), p.longest_chain_length());
}

TEST(LayerMembers, EachLayerIsAnAntichain) {
    const Poset p = mpeg_like();
    for (const auto& layer : layer_members(p)) {
        EXPECT_TRUE(p.is_antichain(layer));
    }
}

TEST(LayerMembers, DependencyFreeStreamIsOneLayer) {
    // MJPEG: the whole window is a single non-critical layer (the paper's
    // "protocol simplifies to just a scrambling of frames").
    const Poset p{6};
    const auto layers = layer_members(p);
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0].size(), 6u);
}

TEST(LayerMembers, EmptyPoset) {
    EXPECT_TRUE(layer_members(Poset{0}).empty());
}

TEST(LayeredPlan, CriticalityFollowsAnchors) {
    const LayeredPlan plan = build_layered_plan(mpeg_like(), 2);
    ASSERT_EQ(plan.layers.size(), 3u);
    EXPECT_TRUE(plan.layers[0].critical);
    EXPECT_TRUE(plan.layers[1].critical);
    EXPECT_FALSE(plan.layers[2].critical);
    EXPECT_EQ(plan.num_critical(), 2u);
}

TEST(LayeredPlan, BoundsPerLayerClass) {
    const LayeredPlan plan = build_layered_plan(mpeg_like(), 2);
    EXPECT_EQ(plan.layers[0].bound, 1u);  // ceil(2/2): fixed critical bound
    EXPECT_EQ(plan.layers[1].bound, 1u);
    EXPECT_EQ(plan.layers[2].bound, 2u);  // adaptive bound, fits layer size 3
    const LayeredPlan big = build_layered_plan(mpeg_like(), 50);
    EXPECT_EQ(big.layers[2].bound, 3u);  // clamped to layer size
}

TEST(LayeredPlan, PermutationsMatchLayerSizes) {
    const LayeredPlan plan = build_layered_plan(mpeg_like(), 2);
    for (const auto& layer : plan.layers) {
        EXPECT_EQ(layer.perm.size(), layer.members.size());
        EXPECT_EQ(layer.clf_guarantee,
                  espread::worst_case_clf(layer.perm, layer.bound));
    }
}

TEST(LayeredPlan, FlattenedIsALinearExtension) {
    const Poset p = mpeg_like();
    const LayeredPlan plan = build_layered_plan(p, 2);
    const std::vector<Element> order = plan.flattened();
    EXPECT_TRUE(p.is_linear_extension(order));
}

TEST(LayeredPlan, TransmissionAppliesWithinLayerPermutation) {
    const LayeredPlan plan = build_layered_plan(mpeg_like(), 2);
    for (const auto& layer : plan.layers) {
        const auto tx = layer.transmission();
        ASSERT_EQ(tx.size(), layer.members.size());
        // Same multiset, permuted per layer.perm.
        auto sorted = tx;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, layer.members);
        for (std::size_t i = 0; i < tx.size(); ++i) {
            EXPECT_EQ(tx[i], layer.members[layer.perm[i]]);
        }
    }
}

TEST(LayeredPlan, LargerBufferMoreGopsStillLayersCorrectly) {
    // 4 GOPs of I,P,B: I_k = 3k, P_k = 3k+1 (needs I_k), B_k = 3k+2 (needs
    // I_k and P_k).
    Poset p{12};
    for (std::size_t k = 0; k < 4; ++k) {
        p.add_dependency(3 * k + 1, 3 * k);
        p.add_dependency(3 * k + 2, 3 * k);
        p.add_dependency(3 * k + 2, 3 * k + 1);
    }
    const LayeredPlan plan = build_layered_plan(p, 3);
    ASSERT_EQ(plan.layers.size(), 3u);
    EXPECT_EQ(plan.layers[0].members, (std::vector<Element>{0, 3, 6, 9}));
    EXPECT_EQ(plan.layers[1].members, (std::vector<Element>{1, 4, 7, 10}));
    EXPECT_EQ(plan.layers[2].members, (std::vector<Element>{2, 5, 8, 11}));
    EXPECT_TRUE(p.is_linear_extension(plan.flattened()));
}

}  // namespace
