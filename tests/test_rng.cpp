#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using espread::sim::Rng;

TEST(Rng, SameSeedSameSequence) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsUsable) {
    Rng r{0};
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 100; ++i) vals.insert(r.next_u64());
    EXPECT_GT(vals.size(), 95u) << "degenerate state from zero seed";
}

TEST(Rng, UniformInUnitInterval) {
    Rng r{7};
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
    Rng r{8};
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeExactly) {
    Rng r{9};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.uniform_int(10, 15);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 15u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng r{10};
    EXPECT_EQ(r.uniform_int(4, 4), 4u);
}

TEST(Rng, BernoulliExtremes) {
    Rng r{11};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-0.5));
        EXPECT_TRUE(r.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency) {
    Rng r{12};
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
    Rng r{13};
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double v = r.exponential(2.5);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / kN, 2.5, 0.1);
}

TEST(Rng, NormalMoments) {
    Rng r{14};
    double sum = 0.0;
    double sq = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double v = r.normal(3.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / kN;
    const double var = sq / kN - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalIsExpOfNormal) {
    Rng r{15};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_GT(r.lognormal(0.0, 1.0), 0.0);
    }
}

TEST(Rng, GeometricMean) {
    Rng r{16};
    double sum = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) {
        sum += static_cast<double>(r.geometric(0.25));
    }
    // mean failures before success = (1-p)/p = 3
    EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, GeometricCertainSuccess) {
    Rng r{17};
    EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
    Rng parent{42};
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
    Rng p1{42};
    Rng p2{42};
    Rng a = p1.split(7);
    Rng b = p2.split(7);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

}  // namespace
