// Cross-cutting protocol invariants, swept over schemes, stream kinds and
// seeds with parameterized tests (conservation laws that must hold no
// matter how the network behaves).
#include <gtest/gtest.h>

#include <tuple>

#include "protocol/session.hpp"

namespace {

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::StreamKind;

class SessionSweep
    : public ::testing::TestWithParam<std::tuple<Scheme, int, double>> {};

SessionConfig sweep_config(Scheme scheme, int seed, double p_bad) {
    SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.data_loss = {0.92, p_bad};
    cfg.feedback_loss = {0.92, p_bad};
    cfg.num_windows = 15;
    return cfg;
}

TEST_P(SessionSweep, ConservationAndSanity) {
    const auto [scheme, seed, p_bad] = GetParam();
    const SessionConfig cfg = sweep_config(scheme, seed, p_bad);
    const SessionResult r = run_session(cfg);

    ASSERT_EQ(r.windows.size(), cfg.num_windows);
    const std::size_t n = cfg.window_ldus();
    EXPECT_EQ(r.total.slots, cfg.num_windows * n);

    // Channel accounting: every packet either delivered or dropped.
    EXPECT_EQ(r.data_channel.sent,
              r.data_channel.delivered + r.data_channel.dropped);
    EXPECT_EQ(r.feedback_channel.sent,
              r.feedback_channel.delivered + r.feedback_channel.dropped);

    // Exactly one ACK per window; applied <= sent.
    EXPECT_EQ(r.acks_sent, cfg.num_windows);
    EXPECT_LE(r.acks_applied, r.acks_sent);

    std::size_t lost_sum = 0;
    for (const auto& w : r.windows) {
        // Per-window CLF cannot exceed the window, losses bound CLF.
        EXPECT_LE(w.clf, n);
        EXPECT_LE(w.clf, w.lost_ldus);
        EXPECT_LE(w.lost_ldus, n);
        EXPECT_LE(w.undecodable, w.lost_ldus);
        EXPECT_LE(w.sender_dropped, n);
        EXPECT_GE(w.bound_used, 1u);
        lost_sum += w.lost_ldus;
        // ALF consistency within the window.
        EXPECT_NEAR(w.alf, static_cast<double>(w.lost_ldus) / static_cast<double>(n),
                    1e-12);
    }
    EXPECT_EQ(lost_sum, r.total.unit_losses);

    // Determinism: identical configs give identical outcomes.
    const SessionResult again = run_session(cfg);
    for (std::size_t k = 0; k < r.windows.size(); ++k) {
        ASSERT_EQ(r.windows[k].clf, again.windows[k].clf);
        ASSERT_EQ(r.windows[k].lost_ldus, again.windows[k].lost_ldus);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mpeg, SessionSweep,
    ::testing::Combine(::testing::Values(Scheme::kInOrder,
                                         Scheme::kLayeredNoScramble,
                                         Scheme::kLayeredIbo,
                                         Scheme::kLayeredSpread),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.6, 0.9)));

class StreamKindSweep
    : public ::testing::TestWithParam<std::tuple<StreamKind, int>> {};

TEST_P(StreamKindSweep, AllStreamKindsSatisfyInvariants) {
    const auto [kind, seed] = GetParam();
    SessionConfig cfg;
    cfg.stream.kind = kind;
    cfg.stream.ldus_per_window = 20;
    cfg.stream.frame_rate = 30.0;
    cfg.stream.mjpeg_mean_bits = 16000.0;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.num_windows = 12;
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.total.slots, cfg.num_windows * cfg.window_ldus());
    for (const auto& w : r.windows) {
        EXPECT_LE(w.clf, cfg.window_ldus());
        if (kind != StreamKind::kMpeg) {
            EXPECT_EQ(w.undecodable, 0u);  // no dependencies to violate
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StreamKindSweep,
    ::testing::Combine(::testing::Values(StreamKind::kMpeg, StreamKind::kMjpeg,
                                         StreamKind::kAudio),
                       ::testing::Values(1, 7)));

// The headline monotonicity: under every bursty network in the sweep, the
// scrambled scheme's mean CLF (averaged over seeds) is no worse than the
// unscrambled baseline's.
TEST(SessionProperty, SpreadNeverWorseOnAverageAcrossSeeds) {
    for (const double p_bad : {0.5, 0.6, 0.7}) {
        double spread = 0.0;
        double plain = 0.0;
        for (int seed = 1; seed <= 4; ++seed) {
            plain += run_session(sweep_config(Scheme::kInOrder, seed, p_bad))
                         .clf_stats()
                         .mean();
            spread +=
                run_session(sweep_config(Scheme::kLayeredSpread, seed, p_bad))
                    .clf_stats()
                    .mean();
        }
        EXPECT_LE(spread, plain + 0.05) << "p_bad=" << p_bad;
    }
}

}  // namespace
