#include "core/burst.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/interleaver.hpp"
#include "core/permutation.hpp"

namespace {

using espread::burst_clf;
using espread::burst_loss_mask;
using espread::cyclic_stride_order;
using espread::lower_bound_clf;
using espread::Permutation;
using espread::worst_case_clf;
using espread::worst_case_clf_straddling;

TEST(Burst, LossMaskMarksPermutedTargets) {
    const Permutation p({2, 0, 1});
    const auto mask = burst_loss_mask(p, 0, 2);  // slots 0,1 carry 2,0
    EXPECT_EQ(mask, (espread::LossMask{false, true, false}));
}

TEST(Burst, BurstIsClippedToWindow) {
    const Permutation p = Permutation::identity(4);
    const auto mask = burst_loss_mask(p, 3, 10);
    EXPECT_EQ(mask, (espread::LossMask{true, true, true, false}));
    const auto past = burst_loss_mask(p, 10, 3);
    EXPECT_EQ(past, (espread::LossMask{true, true, true, true}));
}

TEST(Burst, ZeroLengthBurstLosesNothing) {
    const Permutation p = Permutation::identity(4);
    EXPECT_EQ(burst_clf(p, 1, 0), 0u);
    EXPECT_EQ(worst_case_clf(p, 0), 0u);
}

// Paper Table 1: 17 in-order frames, one burst of 7 -> CLF 7; the stride-5
// cyclic permutation spreads the same burst so no two lost frames are
// adjacent in playback order.
TEST(Burst, Table1InOrderVersusPermuted) {
    const Permutation in_order = Permutation::identity(17);
    EXPECT_EQ(worst_case_clf(in_order, 7), 7u);

    const Permutation permuted = cyclic_stride_order(17, 5, 0);
    // Adjacent playback frames are 7 transmission slots apart (5*7 = 35 = 2*17+1),
    // so any burst of <= 7 yields CLF 1.
    EXPECT_EQ(worst_case_clf(permuted, 7), 1u);
    EXPECT_EQ(worst_case_clf(permuted, 6), 1u);
    // One slot longer and adjacent frames can both be lost.
    EXPECT_GE(worst_case_clf(permuted, 8), 2u);
}

TEST(Burst, WorstCaseIsMonotoneInBurstLength) {
    const Permutation p = cyclic_stride_order(17, 5, 0);
    std::size_t prev = 0;
    for (std::size_t b = 0; b <= 17; ++b) {
        const std::size_t w = worst_case_clf(p, b);
        EXPECT_GE(w, prev) << "b=" << b;
        prev = w;
    }
    EXPECT_EQ(prev, 17u);  // b == n loses the whole window
}

TEST(Burst, IdentityWorstCaseEqualsBurstLength) {
    for (std::size_t n : {1u, 5u, 12u}) {
        const Permutation p = Permutation::identity(n);
        for (std::size_t b = 0; b <= n; ++b) {
            EXPECT_EQ(worst_case_clf(p, b), b) << "n=" << n << " b=" << b;
        }
    }
}

TEST(Burst, EmptyWindow) {
    const Permutation p{std::vector<std::size_t>{}};
    EXPECT_EQ(worst_case_clf(p, 3), 0u);
}

TEST(Burst, StraddlingNeverExceedsAligned) {
    for (std::size_t stride : {3u, 5u, 7u}) {
        const Permutation p = cyclic_stride_order(17, stride, 0);
        for (std::size_t b = 1; b <= 17; ++b) {
            EXPECT_LE(worst_case_clf_straddling(p, b), worst_case_clf(p, b));
        }
    }
}

TEST(Burst, LowerBoundKnownValues) {
    EXPECT_EQ(lower_bound_clf(4, 3), 2u);   // any 3 of 4 slots has a pair
    EXPECT_EQ(lower_bound_clf(5, 4), 2u);   // packing bound (true optimum is 3)
    EXPECT_EQ(lower_bound_clf(17, 7), 1u);
    EXPECT_EQ(lower_bound_clf(10, 10), 10u);
    EXPECT_EQ(lower_bound_clf(10, 12), 10u);
    EXPECT_EQ(lower_bound_clf(10, 0), 0u);
    EXPECT_EQ(lower_bound_clf(0, 3), 0u);
}

TEST(Burst, LowerBoundIsOneUpToHalfWindow) {
    for (std::size_t n = 1; n <= 40; ++n) {
        for (std::size_t b = 1; b <= (n + 1) / 2; ++b) {
            EXPECT_EQ(lower_bound_clf(n, b), 1u) << "n=" << n << " b=" << b;
        }
        if (n >= 2) {
            EXPECT_GE(lower_bound_clf(n, (n + 1) / 2 + 1), 2u) << "n=" << n;
        }
    }
}

// The packing bound is valid: no permutation can beat it (checked by brute
// force over all permutations for tiny n).
TEST(Burst, LowerBoundIsSoundForTinyWindows) {
    for (std::size_t n = 1; n <= 6; ++n) {
        for (std::size_t b = 1; b <= n; ++b) {
            std::vector<std::size_t> image(n);
            for (std::size_t i = 0; i < n; ++i) image[i] = i;
            std::size_t best = n;
            do {
                best = std::min(best, worst_case_clf(Permutation{image}, b));
            } while (std::next_permutation(image.begin(), image.end()));
            EXPECT_GE(best, lower_bound_clf(n, b)) << "n=" << n << " b=" << b;
        }
    }
}

}  // namespace
