// libFuzzer entry point for the streaming-FEC arm (built only with
// -DESPREAD_LIBFUZZER=ON; requires clang's -fsanitize=fuzzer).
//
//   cmake -B build -S . -DESPREAD_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ \
//         -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined"
//   ./build/tests/fuzz_fec -max_len=512 corpus/
//
// Checks the same invariants as tests/test_fec_fuzz.cpp: decode_repair
// never crashes or reads out of bounds, any accepted record re-encodes to
// exactly itself (canonical codec), and the RlcDecoder — driven by an
// input-derived call sequence — keeps a monotone rank with its rank-only
// twin taking identical decode decisions.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fec/rlc.hpp"
#include "protocol/codec.hpp"

namespace {

/// Pulls little-endian integers off the fuzz input (zero once exhausted).
struct ByteReader {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos = 0;

    std::uint64_t u64() {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v = (v << 8) |
                (pos < size ? static_cast<std::uint64_t>(data[pos++]) : 0);
        }
        return v;
    }
    std::uint8_t u8() { return pos < size ? data[pos++] : 0; }
    bool done() const { return pos >= size; }
};

void drive_decoders(const std::uint8_t* data, std::size_t size) {
    ByteReader in{data, size};
    const std::size_t window = 1 + in.u8() % 32;
    constexpr std::size_t kSym = 8;
    espread::fec::RlcDecoder full(window, kSym);
    espread::fec::RlcDecoder rank_only(window, 0);
    std::uint8_t payload[kSym];
    double t = 0.0;
    std::size_t last_rank = 0;
    while (!in.done()) {
        t += 0.125;
        const std::uint8_t op = in.u8();
        std::memset(payload, op, sizeof(payload));
        if (op % 3 != 0) {
            const std::uint64_t idx = in.u64() % (64ull * window);
            full.add_source(idx, payload, kSym, t);
            rank_only.add_source(idx, nullptr, 0, t);
        } else {
            const std::uint64_t base = in.u64();
            const std::size_t count = in.u8();
            const std::uint64_t cseed = in.u64();
            full.add_repair(base, count, cseed, payload, kSym, t);
            rank_only.add_repair(base, count, cseed, nullptr, 0, t);
        }
        if (full.rank() < last_rank) std::abort();
        last_rank = full.rank();
        if (full.rank() != rank_only.rank()) std::abort();
        if (full.decoded().size() != rank_only.decoded().size()) std::abort();
        if (full.symbols_lost() != rank_only.symbols_lost()) std::abort();
    }
    full.close(t);
    rank_only.close(t);
    if (full.in_order_log().size() != rank_only.in_order_log().size()) {
        std::abort();
    }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::vector<std::uint8_t> bytes(data, data + size);
    if (const auto r = espread::proto::decode_repair(bytes)) {
        if (espread::proto::encode(*r) != bytes) std::abort();
    }
    drive_decoders(data, size);
    return 0;
}
