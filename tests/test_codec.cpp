#include "protocol/codec.hpp"

#include <gtest/gtest.h>

#include "protocol/receiver.hpp"
#include "sim/rng.hpp"

namespace {

using espread::proto::data_packet_header_bytes;
using espread::proto::DataPacket;
using espread::proto::decode_data;
using espread::proto::decode_feedback;
using espread::proto::decode_trailer;
using espread::proto::encode;
using espread::proto::Feedback;
using espread::proto::peek_type;
using espread::proto::WindowTrailer;
using espread::proto::WireType;

DataPacket sample_packet() {
    DataPacket p;
    p.seq = 0x05060708ULL;  // data headers carry seq as 32-bit on the wire
    p.window = 42;
    p.layer = 4;
    p.tx_pos = 13;
    p.frame_index = 1009;
    p.fragment = 2;
    p.num_fragments = 7;
    p.size_bits = 16384;
    p.retransmission = true;
    p.parity = false;
    p.fec_group = 99;
    return p;
}

TEST(Codec, DataPacketRoundTrip) {
    const DataPacket p = sample_packet();
    const auto bytes = encode(p);
    EXPECT_EQ(bytes.size(), data_packet_header_bytes());
    const auto q = decode_data(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->seq, p.seq);
    EXPECT_EQ(q->window, p.window);
    EXPECT_EQ(q->layer, p.layer);
    EXPECT_EQ(q->tx_pos, p.tx_pos);
    EXPECT_EQ(q->frame_index, p.frame_index);
    EXPECT_EQ(q->fragment, p.fragment);
    EXPECT_EQ(q->num_fragments, p.num_fragments);
    EXPECT_EQ(q->size_bits, p.size_bits);
    EXPECT_EQ(q->retransmission, p.retransmission);
    EXPECT_EQ(q->parity, p.parity);
    EXPECT_EQ(q->fec_group, p.fec_group);
}

TEST(Codec, HeaderFitsTheBudgetedHeaderBits) {
    // session.cpp charges 256 header bits per packet on the wire; the
    // real encoding must fit that budget.
    EXPECT_LE(data_packet_header_bytes() * 8, 256u);
}

TEST(Codec, RepairPacketRoundTrip) {
    espread::proto::RepairPacket rp;
    rp.seq = 0x0A0B0C0DULL;  // repair headers carry seq as 32-bit on the wire
    rp.window = 17;
    rp.base = 0x01020304ULL;
    rp.count = 96;
    rp.cseed = 0x1122334455667788ULL;
    rp.size_bits = 16384;
    const auto bytes = encode(rp);
    EXPECT_EQ(bytes.size(), espread::proto::repair_packet_header_bytes());
    const auto q = espread::proto::decode_repair(bytes);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->seq, rp.seq);
    EXPECT_EQ(q->window, rp.window);
    EXPECT_EQ(q->base, rp.base);
    EXPECT_EQ(q->count, rp.count);
    EXPECT_EQ(q->cseed, rp.cseed);
    EXPECT_EQ(q->size_bits, rp.size_bits);
    EXPECT_EQ(peek_type(bytes), WireType::kRepair);
    // Other decoders must refuse the record.
    EXPECT_FALSE(decode_data(bytes).has_value());
    EXPECT_FALSE(decode_trailer(bytes).has_value());
}

TEST(Codec, RepairHeaderFitsTheBudgetedHeaderBits) {
    EXPECT_LE(espread::proto::repair_packet_header_bytes() * 8, 256u);
}

TEST(Codec, TrailerRoundTrip) {
    WindowTrailer t;
    t.seq = 77;
    t.window = 5;
    t.layer_sent = {2, 2, 2, 2, 16};
    const auto bytes = encode(t);
    const auto u = decode_trailer(bytes);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->seq, t.seq);
    EXPECT_EQ(u->window, t.window);
    EXPECT_EQ(u->layer_sent, t.layer_sent);
}

TEST(Codec, FeedbackRoundTrip) {
    Feedback f;
    f.seq = 123456;
    f.window = 9;
    f.layer_max_burst = {0, 1, 0, 2, 5};
    f.layer_lost = {0, 1, 0, 3, 8};
    const auto bytes = encode(f);
    const auto g = decode_feedback(bytes);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->seq, f.seq);
    EXPECT_EQ(g->window, f.window);
    EXPECT_EQ(g->layer_max_burst, f.layer_max_burst);
    EXPECT_EQ(g->layer_lost, f.layer_lost);
}

TEST(Codec, PeekTypeDispatches) {
    EXPECT_EQ(peek_type(encode(sample_packet())), WireType::kData);
    EXPECT_EQ(peek_type(encode(WindowTrailer{})), WireType::kTrailer);
    EXPECT_EQ(peek_type(encode(Feedback{})), WireType::kFeedback);
    EXPECT_EQ(peek_type({}), std::nullopt);
    EXPECT_EQ(peek_type({0xFF}), std::nullopt);
}

TEST(Codec, RejectsTruncatedInput) {
    auto bytes = encode(sample_packet());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::vector<std::uint8_t> shorter(bytes.begin(),
                                                bytes.begin() + cut);
        EXPECT_EQ(decode_data(shorter), std::nullopt) << "cut=" << cut;
    }
}

TEST(Codec, RejectsTrailingGarbage) {
    auto bytes = encode(sample_packet());
    bytes.push_back(0);
    EXPECT_EQ(decode_data(bytes), std::nullopt);
}

TEST(Codec, RejectsWrongTag) {
    auto bytes = encode(sample_packet());
    EXPECT_EQ(decode_trailer(bytes), std::nullopt);
    EXPECT_EQ(decode_feedback(bytes), std::nullopt);
}

TEST(Codec, SeqTruncatesBeyond32BitsByDesign) {
    DataPacket p = sample_packet();
    p.seq = 0x1'0000'0001ULL;
    const auto q = decode_data(encode(p));
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->seq, 1u);  // wraps modulo 2^32, like any wire counter
}

TEST(Codec, RejectsInconsistentFragmentFields) {
    DataPacket p = sample_packet();
    p.fragment = 7;       // == num_fragments: out of range
    p.num_fragments = 7;
    EXPECT_EQ(decode_data(encode(p)), std::nullopt);
}

TEST(Codec, TrailerWithTruncatedLayerArrayRejected) {
    WindowTrailer t;
    t.seq = 1;
    t.window = 0;
    t.layer_sent = {1, 2, 3};
    auto bytes = encode(t);
    bytes.pop_back();
    EXPECT_EQ(decode_trailer(bytes), std::nullopt);
}

TEST(Codec, FuzzedBytesNeverCrashDecoders) {
    // Random mutations of valid records and fully random buffers must
    // either decode to a value or return nullopt — never read out of
    // bounds (would trip ASAN/valgrind) or throw.
    espread::sim::Rng rng{2024};
    const auto valid = encode(sample_packet());
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes = valid;
        const std::size_t flips = 1 + rng.uniform_int(0, 4);
        for (std::size_t i = 0; i < flips; ++i) {
            bytes[rng.uniform_int(0, bytes.size() - 1)] ^=
                static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        }
        EXPECT_NO_THROW({
            (void)decode_data(bytes);
            (void)decode_trailer(bytes);
            (void)decode_feedback(bytes);
        });
    }
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.uniform_int(0, 64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        EXPECT_NO_THROW({
            (void)decode_data(bytes);
            (void)decode_trailer(bytes);
            (void)decode_feedback(bytes);
        });
    }
}

TEST(Codec, BitflippedHeaderEitherRejectsOrStaysInBounds) {
    // Single-bit flips in the structural fields (counts) must not make the
    // decoder claim more layers than bytes present.
    WindowTrailer t;
    t.seq = 1;
    t.window = 2;
    t.layer_sent = {5, 5};
    auto bytes = encode(t);
    // Flip every bit of the layer-count byte (offset 1 + 8 + 4 = 13).
    for (int bit = 0; bit < 8; ++bit) {
        auto mutated = bytes;
        mutated[13] ^= static_cast<std::uint8_t>(1 << bit);
        const auto decoded = decode_trailer(mutated);
        if (decoded.has_value()) {
            EXPECT_EQ(decoded->layer_sent.size(), 2u);  // only the same count fits
        }
    }
}

TEST(Codec, EncodedPathDrivesReceiverIdentically) {
    // End-to-end: a window's packets pushed through encode/decode must
    // leave the client in exactly the state the in-memory path produces —
    // i.e. the codec is a faithful transport for the protocol.
    using espread::proto::Receiver;
    using espread::proto::WindowOutcome;

    const std::vector<std::vector<std::size_t>> prereqs(6);
    Receiver direct{6, {6}, prereqs};
    Receiver via_wire{6, {6}, prereqs};

    espread::sim::Rng rng{77};
    for (std::size_t f = 0; f < 6; ++f) {
        if (f == 2) continue;  // one frame lost entirely
        DataPacket p;
        p.seq = f;
        p.window = 0;
        p.layer = 0;
        p.tx_pos = (f * 5) % 6;  // scrambled positions
        p.frame_index = f;
        p.fragment = 0;
        p.num_fragments = 1;
        p.size_bits = 1000 + f;
        direct.on_packet(p, 10);
        const auto decoded = decode_data(encode(p));
        ASSERT_TRUE(decoded.has_value());
        via_wire.on_packet(*decoded, 10);
    }
    WindowTrailer t;
    t.seq = 99;
    t.window = 0;
    t.layer_sent = {6};
    direct.on_trailer(t);
    const auto decoded_t = decode_trailer(encode(t));
    ASSERT_TRUE(decoded_t.has_value());
    via_wire.on_trailer(*decoded_t);

    const WindowOutcome a = direct.finalize(0);
    const WindowOutcome b = via_wire.finalize(0);
    EXPECT_EQ(a.playback, b.playback);
    EXPECT_EQ(a.layer_max_burst, b.layer_max_burst);
    EXPECT_EQ(a.layer_lost, b.layer_lost);
    EXPECT_EQ(a.frames_received, b.frames_received);
}

TEST(Codec, EmptyLayerVectorsRoundTrip) {
    const auto t = decode_trailer(encode(WindowTrailer{}));
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->layer_sent.empty());
    const auto f = decode_feedback(encode(Feedback{}));
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(f->layer_max_burst.empty());
}

}  // namespace
