// Fixture: D5 — ownership / include hygiene in a library target (src/).
// Line numbers are asserted exactly by test_lint.cpp.
#include <iostream>  // line 3: D5 — iostream in a library target

namespace espread::media {

struct Frame {
    unsigned bits = 0;
};

Frame* make_frame() {
    return new Frame{};  // line 12: D5 — raw new
}

void drop_frame(Frame* f) {
    delete f;  // line 16: D5 — raw delete
    std::cout << "dropped\n";
}

}  // namespace espread::media
