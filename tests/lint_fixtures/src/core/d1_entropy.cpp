// Fixture: D1 — nondeterministic entropy source in simulation code.
// The fixture tree mirrors the repo layout so path-scoped rules apply the
// same way they do on the real tree.  Line numbers are asserted exactly by
// test_lint.cpp; append new cases at the end only.
#include <random>

namespace espread {

unsigned long entropy_seed() {
    std::random_device rd;  // line 10: D1
    return rd();
}

}  // namespace espread
