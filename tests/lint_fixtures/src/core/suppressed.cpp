// Fixture: valid suppressions — every seeded violation carries an allow
// comment with a reason, so the file must lint clean.  Both placement
// forms are exercised: trailing comment and comment-only line.
#include <ctime>

namespace espread {

long stamp_log_header() {
    return time(nullptr);  // espread-lint: allow(D1) log header timestamp, never reaches a seed
}

enum class Mode { kA, kB };

int mode_rank(Mode m, int other) {
    switch (m) {
        case Mode::kA: return 1;
        case Mode::kB: return 2;
    }
    // espread-lint: allow(D1) demonstrates the next-line placement form
    return other + static_cast<int>(time(nullptr) % 1);
}

}  // namespace espread
