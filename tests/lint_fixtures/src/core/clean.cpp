// Fixture: a file the linter must pass untouched — exercises the
// comment/string stripper (rule trigger tokens appear only inside
// comments and literals) and the `= delete` exemption.
#include <cstddef>
#include <string>

namespace espread {

// std::random_device in a comment must not fire D1; neither must the
// word default: here, nor new/delete in prose.
class Holder {
public:
    Holder() = default;
    Holder(const Holder&) = delete;
    Holder& operator=(const Holder&) = delete;

    std::string describe() const {
        // Literals are stripped too:
        return "uses std::random_device and time(nullptr) and new Frame";
    }

    std::size_t renewals() const { return renew_count_; }  // 'new' inside identifiers

private:
    std::size_t renew_count_ = 0;
};

}  // namespace espread
