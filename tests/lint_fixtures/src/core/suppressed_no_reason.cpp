// Fixture: a suppression with no reason string.  The suppression must not
// take effect (the underlying D1 still fires) and the comment itself is
// flagged as D0.  Line numbers are asserted exactly by test_lint.cpp.
#include <ctime>

namespace espread {

long lazy_seed() {
    return time(nullptr);  // espread-lint: allow(D1)
}

}  // namespace espread
