// Fixture: D2 — hash-ordered container in result-producing code
// (src/exp/ is an ordered-output path, so the mirrored location triggers
// the rule).  Line numbers are asserted exactly by test_lint.cpp.
#include <string>
#include <unordered_map>

namespace espread::exp {

double merge_means(const std::unordered_map<std::string, double>& m) {  // line 9: D2
    double sum = 0.0;
    for (const auto& [key, value] : m) {
        sum += value;  // iteration order leaks into any serialized output
    }
    return sum;
}

}  // namespace espread::exp
