// Fixture: D3 — `default:` label in a switch over a contract enum
// (EventType is in the contract list).  Line numbers are asserted exactly
// by test_lint.cpp.

namespace espread::obs {

enum class EventType { kPacketSent, kPacketLost, kAckSent };

const char* short_name(EventType t) {
    switch (t) {
        case EventType::kPacketSent: return "sent";
        case EventType::kPacketLost: return "lost";
        default: return "?";  // line 13: D3 — swallows new enumerators
    }
}

}  // namespace espread::obs
