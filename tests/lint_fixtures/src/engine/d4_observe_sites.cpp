// Fixture: D4 — the telemetry plane's observe_* family is a sink call:
// the "->observe" prefix matches through the method-name continuation
// (observe_window, observe_loss_run, ...).  The second function shows
// the gated form.  Line numbers are asserted exactly by test_lint.cpp.

namespace espread::obs::telemetry {
struct TelemetrySlab {
    void observe_window(unsigned long clf) noexcept;
};
}  // namespace espread::obs::telemetry

namespace espread::engine {

void emit_ungated(obs::telemetry::TelemetrySlab* tel) {
    tel->observe_window(3);  // line 15: D4 — no gate, slab may be null
}

void emit_gated(obs::telemetry::TelemetrySlab* tel) {
    if (tel != nullptr) tel->observe_window(3);  // gated: clean
}

}  // namespace espread::engine
