// Fixture: D3 — `default:` label in a switch over the Scheme contract
// enum.  The enum carries the RLC variants; a default label would silently
// swallow any future coded arm.  Line numbers are asserted exactly by
// test_lint.cpp.

namespace espread::proto {

enum class Scheme {
    kInOrder,
    kLayeredNoScramble,
    kLayeredIbo,
    kLayeredSpread,
    kRlc,
    kHybridSpreadRlc,
};

bool uses_rlc_default(Scheme s) {
    switch (s) {
        case Scheme::kRlc: return true;
        case Scheme::kHybridSpreadRlc: return true;
        default: return false;  // line 21: D3 — hides unseen schemes
    }
}

bool uses_rlc_exhaustive(Scheme s) {
    switch (s) {
        case Scheme::kInOrder: return false;
        case Scheme::kLayeredNoScramble: return false;
        case Scheme::kLayeredIbo: return false;
        case Scheme::kLayeredSpread: return false;
        case Scheme::kRlc: return true;
        case Scheme::kHybridSpreadRlc: return true;
    }
    return false;
}

}  // namespace espread::proto
