// Fixture: D3 — `default:` label in a switch over the RecoveryMode
// contract enum.  The repair plane's mode drives spending decisions; a
// default label would silently swallow any future mode (e.g. a probing
// state).  Line numbers are asserted exactly by test_lint.cpp.

namespace espread::proto {

enum class RecoveryMode {
    kReactive,
    kSuspended,
    kProactive,
};

bool spends_now_default(RecoveryMode m) {
    switch (m) {
        case RecoveryMode::kReactive: return true;
        default: return false;  // line 17: D3 — hides unseen modes
    }
}

bool spends_now_exhaustive(RecoveryMode m) {
    switch (m) {
        case RecoveryMode::kReactive: return true;
        case RecoveryMode::kSuspended: return false;
        case RecoveryMode::kProactive: return false;
    }
    return false;
}

}  // namespace espread::proto
