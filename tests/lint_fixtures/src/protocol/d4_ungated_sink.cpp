// Fixture: D4 — direct trace-sink call without a null-gate on the same
// pointer.  The second function shows the gated form the rule accepts.
// Line numbers are asserted exactly by test_lint.cpp.

namespace espread::obs {
struct TraceEvent {};
struct TraceSink {
    virtual void record(const TraceEvent&) = 0;
};
}  // namespace espread::obs

namespace espread::proto {

void emit_ungated(obs::TraceSink* trace, const obs::TraceEvent& e) {
    trace->record(e);  // line 15: D4 — no gate, sink may be null
}

void emit_gated(obs::TraceSink* trace, const obs::TraceEvent& e) {
    if (trace == nullptr) return;
    trace->record(e);  // gated: clean
}

}  // namespace espread::proto
