// Fixture: D4 — FEC-arm trace-sink sites.  The repair-send and
// decode-recovery paths emit kRepairSent / kFecRecovered events; each site
// must gate on the sink pointer so a traceless session pays only a branch.
// Line numbers are asserted exactly by test_lint.cpp.

namespace espread::obs {
struct TraceEvent {};
struct TraceSink {
    virtual void record(const TraceEvent&) = 0;
};
}  // namespace espread::obs

namespace espread::fec {

void on_repair_sent(obs::TraceSink* trace, const obs::TraceEvent& e) {
    trace->record(e);  // line 16: D4 — repair-send site without a gate
}

void on_decode_recovered(obs::TraceSink* trace, const obs::TraceEvent& e) {
    if (trace == nullptr) return;
    trace->record(e);  // gated: clean
}

}  // namespace espread::fec
