// Fixture registry: one Session lane.
#pragma once
#include <cstdint>

namespace espread::contracts {

inline constexpr std::uint64_t kSessionLaneData = 1;

}  // namespace espread::contracts
