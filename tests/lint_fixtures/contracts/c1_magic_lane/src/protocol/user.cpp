// Seeded C1: a registered lane, a magic lane, and a suppressed magic lane.
#include "sim/contracts.hpp"

void user(Rng& rng) {
    auto a = rng.split(espread::contracts::kSessionLaneData);
    auto b = rng.split(4);
    auto c = rng.split(5);  // espread-lint: allow(C1) legacy lane, migration tracked
    (void)a;
    (void)b;
    (void)c;
}
