// Fixture registry: the telemetry signal names.
#pragma once
#include <string_view>

namespace espread::contracts {

inline constexpr std::string_view kTelemetrySignalNames[] = {
    "clf",
    "bound",
};

}  // namespace espread::contracts
