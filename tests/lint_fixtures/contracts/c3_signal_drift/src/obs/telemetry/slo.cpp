// Seeded C3: the signal-name translation drifted from the registry —
// "bound" became "bound_used" here, so producers and consumers disagree.
#include "sim/contracts.hpp"

const char* signal_name(SloSignal s) {
    switch (s) {
        case SloSignal::kClf: return "clf";
        case SloSignal::kBound: return "bound_used";
    }
    return "?";
}
