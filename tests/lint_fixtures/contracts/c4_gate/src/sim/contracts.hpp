// Fixture registry: one bench claim-gate key.
#pragma once
#include <string_view>

namespace espread::contracts {

inline constexpr std::string_view kBenchGateKeys[] = {
    "windows_per_second",
};

}  // namespace espread::contracts
