// Fixture bench: emits the registered key, not the one CI gates on.
void emit(Json& json) { json.key("windows_per_second").value(1.0); }
