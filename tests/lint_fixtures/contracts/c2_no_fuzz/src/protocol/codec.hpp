// Fixture codec header: both enumerators take their registry constants.
#pragma once
#include <cstdint>

#include "sim/contracts.hpp"

namespace espread::proto {

enum class WireType : std::uint8_t {
    kData = espread::contracts::kWireTagData,
    kRepair = espread::contracts::kWireTagRepair,
};

}  // namespace espread::proto
