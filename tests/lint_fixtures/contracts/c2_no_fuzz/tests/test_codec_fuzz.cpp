// Seeded C2: the corpus exercises decode_data but never decode_repair.
void fuzz() { decode_data(nullptr); }
