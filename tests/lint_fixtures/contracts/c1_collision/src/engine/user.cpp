// Seeded C1: an engine TU splitting a Session-family lane (scope breach).
#include "sim/contracts.hpp"

void engine_user(Rng& root) {
    auto churn = root.split(espread::contracts::kEngineLaneChurn);
    auto leak = root.split(espread::contracts::kSessionLaneData);
    (void)churn;
    (void)leak;
}
