// In-scope use of the Session lane keeps it alive.
#include "sim/contracts.hpp"

void user(Rng& rng) {
    auto a = rng.split(espread::contracts::kSessionLaneData);
    (void)a;
}
