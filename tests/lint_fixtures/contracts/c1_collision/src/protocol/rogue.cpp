// Seeded C1: a lane constant declared outside the registry.
#include <cstdint>

namespace {
inline constexpr std::uint64_t kSessionLaneRogue = 9;
}  // namespace

void rogue(Rng& rng) {
    auto r = rng.split(kSessionLaneRogue);
    (void)r;
}
