// Fixture registry: a lane value collision inside the Session family.
#pragma once
#include <cstdint>

namespace espread::contracts {

inline constexpr std::uint64_t kSessionLaneData = 1;
inline constexpr std::uint64_t kSessionLaneFeedback = 1;
inline constexpr std::uint64_t kEngineLaneChurn = 1;

}  // namespace espread::contracts
