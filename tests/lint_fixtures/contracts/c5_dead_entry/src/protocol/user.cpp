// Uses one lane and one metric; the other registry entries go dead.
#include "sim/contracts.hpp"

void user(Rng& rng, Metrics& m) {
    auto a = rng.split(espread::contracts::kSessionLaneUsed);
    m.add_counter("used_metric", 1);
    (void)a;
}
