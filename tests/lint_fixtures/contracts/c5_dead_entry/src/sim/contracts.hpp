// Fixture registry: one live and one dead entry per contract kind.
#pragma once
#include <cstdint>
#include <string_view>

namespace espread::contracts {

inline constexpr std::uint64_t kSessionLaneUsed = 1;
inline constexpr std::uint64_t kSessionLaneDead = 2;
inline constexpr std::uint64_t kSessionLaneParked = 3;  // espread-lint: allow(C5) reserved for the bandwidth estimator

inline constexpr std::string_view kSessionMetricNames[] = {
    "used_metric",
    "dead_metric",
};

}  // namespace espread::contracts
