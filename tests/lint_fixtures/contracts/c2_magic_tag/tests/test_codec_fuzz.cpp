// Fixture fuzz corpus: exercises both decoders.
void fuzz() {
    decode_data(nullptr);
    decode_repair(nullptr);
}
