// Fixture registry: two wire tags.
#pragma once
#include <cstdint>

namespace espread::contracts {

inline constexpr std::uint8_t kWireTagData = 1;
inline constexpr std::uint8_t kWireTagRepair = 4;

}  // namespace espread::contracts
