// Seeded C2: an enumerator with a magic tag byte instead of its registry
// constant (which in turn goes dead, C5).
#pragma once
#include <cstdint>

#include "sim/contracts.hpp"

namespace espread::proto {

enum class WireType : std::uint8_t {
    kData = espread::contracts::kWireTagData,
    kRepair = 9,
    kLegacy = 7,  // espread-lint: allow(C2) reserved legacy tag, migration tracked
};

}  // namespace espread::proto
