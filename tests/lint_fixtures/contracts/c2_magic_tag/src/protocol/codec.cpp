// Fixture codec TU: canonical decoders for both tags.
#include "codec.hpp"

bool decode_data(const unsigned char* p) { return p != nullptr; }
bool decode_repair(const unsigned char* p) { return p != nullptr; }
