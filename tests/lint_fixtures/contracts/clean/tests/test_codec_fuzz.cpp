// Fixture fuzz corpus covering the only tag.
void fuzz() { decode_data(nullptr); }
