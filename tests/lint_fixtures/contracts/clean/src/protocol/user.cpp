// Consistent consumer: registered lane, registered metric.
#include "sim/contracts.hpp"

void user(Rng& rng, Metrics& m) {
    auto a = rng.split(espread::contracts::kSessionLaneData);
    m.add_counter("good_metric", 1);
    (void)a;
}
