// Fixture codec header, consistent with the registry.
#pragma once
#include <cstdint>

#include "sim/contracts.hpp"

namespace espread::proto {

enum class WireType : std::uint8_t {
    kData = espread::contracts::kWireTagData,
};

}  // namespace espread::proto
