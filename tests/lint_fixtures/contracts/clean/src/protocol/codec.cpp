// Fixture codec TU with the canonical decoder.
#include "codec.hpp"

bool decode_data(const unsigned char* p) { return p != nullptr; }
