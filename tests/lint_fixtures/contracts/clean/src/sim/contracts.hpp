// Fixture registry: fully consistent with its mini tree.
#pragma once
#include <cstdint>
#include <string_view>

namespace espread::contracts {

inline constexpr std::uint64_t kSessionLaneData = 1;

inline constexpr std::uint8_t kWireTagData = 1;

inline constexpr std::string_view kSessionMetricNames[] = {
    "good_metric",
};

}  // namespace espread::contracts
