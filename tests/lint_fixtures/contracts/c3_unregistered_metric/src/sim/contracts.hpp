// Fixture registry: one registered session metric.
#pragma once
#include <string_view>

namespace espread::contracts {

inline constexpr std::string_view kSessionMetricNames[] = {
    "good_metric",
};

}  // namespace espread::contracts
