// Seeded C3: one registered metric, one rogue, one suppressed rogue.
#include "sim/contracts.hpp"

void record(Metrics& m) {
    m.add_counter("good_metric", 1);
    m.add_counter("rogue_metric", 2);
    m.add_counter("shim_metric", 3);  // espread-lint: allow(C3) migration shim, removal tracked
}
