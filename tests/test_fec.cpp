// GF(256) field axioms (exhaustive over all 256x256 pairs) and the
// sliding-window RLC encoder/decoder invariant suite (ISSUE 8):
//   - table-driven multiply agrees with the bitwise reference everywhere,
//   - mul/div/inverse round-trip exhaustively, distributivity and
//     associativity hold (exhaustive resp. sampled),
//   - received rank never decreases,
//   - decode => re-encode reproduces every repair payload,
//   - rank-only mode takes the exact decode decisions of payload mode,
//   - window expiry resolves undecoded symbols as losses and the in-order
//     delivery log stays monotone with correct timestamps.
#include "fec/gf256.hpp"
#include "fec/rlc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/rng.hpp"

namespace {

using espread::fec::RlcDecoder;
using espread::fec::RlcEncoder;
using espread::fec::RepairSymbol;
using espread::fec::expand_coefficients;
using espread::fec::gf_add;
using espread::fec::gf_div;
using espread::fec::gf_inv;
using espread::fec::gf_mul;
using espread::fec::gf_mul_ref;
using espread::fec::gf_mul_row;
using espread::fec::gf_mul_row_add;
using espread::sim::Rng;

// ---------------------------------------------------------------------------
// Field axioms

TEST(Gf256, TableMultiplyMatchesBitwiseReferenceExhaustively) {
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 0; b < 256; ++b) {
            ASSERT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)),
                      gf_mul_ref(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)))
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Gf256, MultiplicationIsCommutativeExhaustively) {
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = a; b < 256; ++b) {
            ASSERT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)),
                      gf_mul(static_cast<std::uint8_t>(b),
                             static_cast<std::uint8_t>(a)));
        }
    }
}

TEST(Gf256, MulDivRoundTripExhaustively) {
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 1; b < 256; ++b) {
            const std::uint8_t p = gf_mul(static_cast<std::uint8_t>(a),
                                          static_cast<std::uint8_t>(b));
            ASSERT_EQ(gf_div(p, static_cast<std::uint8_t>(b)), a)
                << "a=" << a << " b=" << b;
            const std::uint8_t q = gf_div(static_cast<std::uint8_t>(a),
                                          static_cast<std::uint8_t>(b));
            ASSERT_EQ(gf_mul(q, static_cast<std::uint8_t>(b)), a)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Gf256, InverseRoundTripExhaustively) {
    for (unsigned a = 1; a < 256; ++a) {
        const std::uint8_t inv = gf_inv(static_cast<std::uint8_t>(a));
        ASSERT_NE(inv, 0);
        ASSERT_EQ(gf_mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
        ASSERT_EQ(gf_inv(inv), a) << "a=" << a;
    }
}

TEST(Gf256, IdentityAndZeroLawsExhaustively) {
    for (unsigned a = 0; a < 256; ++a) {
        const auto v = static_cast<std::uint8_t>(a);
        ASSERT_EQ(gf_mul(v, 1), v);
        ASSERT_EQ(gf_mul(1, v), v);
        ASSERT_EQ(gf_mul(v, 0), 0);
        ASSERT_EQ(gf_mul(0, v), 0);
        ASSERT_EQ(gf_add(v, v), 0);  // characteristic 2
        ASSERT_EQ(gf_add(v, 0), v);
    }
}

TEST(Gf256, DistributivityHoldsExhaustively) {
    // All 2^24 triples: a*(b+c) == a*b + a*c.  Table lookups keep this well
    // under a second.
    for (unsigned a = 0; a < 256; ++a) {
        const auto av = static_cast<std::uint8_t>(a);
        for (unsigned b = 0; b < 256; ++b) {
            const auto bv = static_cast<std::uint8_t>(b);
            const std::uint8_t ab = gf_mul(av, bv);
            for (unsigned c = 0; c < 256; ++c) {
                const auto cv = static_cast<std::uint8_t>(c);
                ASSERT_EQ(gf_mul(av, gf_add(bv, cv)),
                          gf_add(ab, gf_mul(av, cv)))
                    << "a=" << a << " b=" << b << " c=" << c;
            }
        }
    }
}

TEST(Gf256, AssociativitySampled) {
    Rng rng{0xA550C};
    for (int i = 0; i < 200'000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        ASSERT_EQ(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    }
}

TEST(Gf256, RowKernelsMatchScalarReference) {
    Rng rng{0x90F};
    for (int iter = 0; iter < 64; ++iter) {
        const std::size_t n = static_cast<std::size_t>(
            rng.uniform_int(0, 300));
        const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        std::vector<std::uint8_t> dst(n), src(n), expect(n);
        for (std::size_t i = 0; i < n; ++i) {
            dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
            src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
            expect[i] = gf_add(dst[i], gf_mul_ref(c, src[i]));
        }
        std::vector<std::uint8_t> got = dst;
        gf_mul_row_add(got.data(), src.data(), n, c);
        EXPECT_EQ(got, expect) << "c=" << static_cast<int>(c);

        std::vector<std::uint8_t> scaled = dst;
        gf_mul_row(scaled.data(), n, c);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(scaled[i], gf_mul_ref(c, dst[i]));
        }
    }
}

// ---------------------------------------------------------------------------
// Coefficient expansion

TEST(Coefficients, ExpansionIsDeterministicAndNeverAllZero) {
    std::uint8_t a[espread::fec::kMaxWindow];
    std::uint8_t b[espread::fec::kMaxWindow];
    Rng rng{42};
    for (int iter = 0; iter < 2'000; ++iter) {
        const std::uint64_t cseed = rng.next_u64();
        const std::size_t count =
            static_cast<std::size_t>(rng.uniform_int(1, 255));
        expand_coefficients(cseed, count, a);
        expand_coefficients(cseed, count, b);
        bool all_zero = true;
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(a[i], b[i]);
            if (a[i] != 0) all_zero = false;
        }
        EXPECT_FALSE(all_zero);
    }
}

// ---------------------------------------------------------------------------
// Encoder / decoder invariants

constexpr std::size_t kSym = 24;  ///< payload bytes per symbol in these tests

std::vector<std::uint8_t> random_symbol(Rng& rng) {
    std::vector<std::uint8_t> s(kSym);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return s;
}

/// Recomputes a repair payload from the original source symbols; the
/// "decode => re-encode reproduces every repair packet" oracle.
std::vector<std::uint8_t> recombine(
    const RepairSymbol& rep,
    const std::vector<std::vector<std::uint8_t>>& sources) {
    std::uint8_t coeffs[espread::fec::kMaxWindow];
    expand_coefficients(rep.cseed, rep.count, coeffs);
    std::vector<std::uint8_t> out(kSym, 0);
    for (std::size_t j = 0; j < rep.count; ++j) {
        gf_mul_row_add(out.data(),
                       sources[static_cast<std::size_t>(rep.base) + j].data(),
                       kSym, coeffs[j]);
    }
    return out;
}

TEST(RlcEncoder, RepairsAreWindowCombinationsOfTheSources) {
    Rng rng{7};
    RlcEncoder enc(8, kSym, 123);
    std::vector<std::vector<std::uint8_t>> sources;
    for (int i = 0; i < 40; ++i) {
        sources.push_back(random_symbol(rng));
        enc.add_source(sources.back().data(), kSym);
        if (i % 3 == 2) {
            const RepairSymbol rep = enc.make_repair();
            EXPECT_LE(rep.count, 8u);
            EXPECT_EQ(rep.base + rep.count, enc.next_index());
            EXPECT_EQ(recombine(rep, sources), rep.payload);
        }
    }
}

/// Drives encoder + lossy channel + decoder; checks rank monotonicity and
/// payload correctness throughout.  Returns the decoder for extra checks.
struct LossyRun {
    std::size_t losses = 0;
    std::size_t recovered = 0;
    std::size_t repairs = 0;
};

LossyRun run_lossy(std::uint64_t seed, double loss_p, std::size_t window,
                   std::size_t n_sources, std::size_t repair_every,
                   RlcDecoder& dec) {
    Rng rng{seed};
    RlcEncoder enc(window, kSym, seed ^ 0xC0DE);
    std::vector<std::vector<std::uint8_t>> sources;
    LossyRun out;
    double t = 0.0;
    std::size_t last_rank = 0;
    for (std::size_t i = 0; i < n_sources; ++i) {
        sources.push_back(random_symbol(rng));
        const std::uint64_t idx = enc.add_source(sources.back().data(), kSym);
        t += 1.0;
        if (rng.bernoulli(loss_p)) {
            ++out.losses;
        } else {
            dec.add_source(idx, sources.back().data(), kSym, t);
        }
        EXPECT_GE(dec.rank(), last_rank) << "rank decreased";
        last_rank = dec.rank();
        if ((i + 1) % repair_every == 0) {
            const RepairSymbol rep = enc.make_repair();
            ++out.repairs;
            t += 0.25;
            const std::size_t before = dec.decoded().size();
            dec.add_repair(rep.base, rep.count, rep.cseed,
                           rep.payload.data(), rep.payload.size(), t);
            EXPECT_GE(dec.rank(), last_rank) << "rank decreased";
            last_rank = dec.rank();
            // Every newly decoded symbol must reproduce the original.
            for (std::size_t d = before; d < dec.decoded().size(); ++d) {
                const std::uint64_t di = dec.decoded()[d].index;
                const std::uint8_t* got = dec.payload(di);
                EXPECT_NE(got, nullptr);
                if (got == nullptr) continue;
                EXPECT_EQ(std::vector<std::uint8_t>(got, got + kSym),
                          sources[static_cast<std::size_t>(di)])
                    << "decoded payload mismatch at " << di;
                ++out.recovered;
            }
        }
    }
    dec.close(t + 1.0);
    return out;
}

TEST(RlcDecoder, RecoversLossesAndNeverDecreasesRank) {
    RlcDecoder dec(16, kSym);
    const LossyRun r = run_lossy(0xBEEF, 0.15, 16, 160, 4, dec);
    EXPECT_GT(r.losses, 0u);
    EXPECT_GT(r.recovered, 0u);
    // 25% repair overhead against 15% loss: most losses are recoverable.
    EXPECT_GE(r.recovered * 2, r.losses);
    EXPECT_EQ(r.recovered, dec.decoded().size());
    // Everything resolved at close: delivered + lost covers all sources.
    EXPECT_EQ(dec.in_order_log().size(), 160u);
    EXPECT_EQ(dec.symbols_lost() + dec.sources_received() + r.recovered, 160u);
}

TEST(RlcDecoder, CleanChannelDecodesNothingAndFlagsRepairsRedundant) {
    RlcDecoder dec(16, kSym);
    const LossyRun r = run_lossy(0x5EED, 0.0, 16, 64, 4, dec);
    EXPECT_EQ(r.losses, 0u);
    EXPECT_EQ(dec.decoded().size(), 0u);
    EXPECT_EQ(dec.repairs_redundant(), r.repairs);
    EXPECT_EQ(dec.rank(), 64u);
}

TEST(RlcDecoder, RankOnlyModeTakesIdenticalDecodeDecisions) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 0xFACEull}) {
        RlcDecoder full(12, kSym);
        RlcDecoder rank_only(12, 0);

        Rng rng{seed};
        RlcEncoder enc(12, kSym, seed);
        std::vector<std::vector<std::uint8_t>> sources;
        double t = 0.0;
        for (std::size_t i = 0; i < 120; ++i) {
            sources.push_back(random_symbol(rng));
            const std::uint64_t idx =
                enc.add_source(sources.back().data(), kSym);
            t += 1.0;
            if (!rng.bernoulli(0.2)) {
                full.add_source(idx, sources.back().data(), kSym, t);
                rank_only.add_source(idx, nullptr, 0, t);
            }
            if (i % 3 == 0) {
                const RepairSymbol rep = enc.make_repair();
                t += 0.5;
                full.add_repair(rep.base, rep.count, rep.cseed,
                                rep.payload.data(), rep.payload.size(), t);
                rank_only.add_repair(rep.base, rep.count, rep.cseed, nullptr,
                                     0, t);
            }
        }
        full.close(t);
        rank_only.close(t);

        EXPECT_EQ(full.rank(), rank_only.rank());
        EXPECT_EQ(full.repairs_redundant(), rank_only.repairs_redundant());
        EXPECT_EQ(full.symbols_lost(), rank_only.symbols_lost());
        ASSERT_EQ(full.decoded().size(), rank_only.decoded().size());
        for (std::size_t i = 0; i < full.decoded().size(); ++i) {
            EXPECT_EQ(full.decoded()[i].index, rank_only.decoded()[i].index);
            EXPECT_EQ(full.decoded()[i].at, rank_only.decoded()[i].at);
        }
        ASSERT_EQ(full.in_order_log().size(), rank_only.in_order_log().size());
        for (std::size_t i = 0; i < full.in_order_log().size(); ++i) {
            EXPECT_EQ(full.in_order_log()[i].index,
                      rank_only.in_order_log()[i].index);
            EXPECT_EQ(full.in_order_log()[i].lost,
                      rank_only.in_order_log()[i].lost);
            EXPECT_EQ(full.in_order_log()[i].at, rank_only.in_order_log()[i].at);
        }
    }
}

TEST(RlcDecoder, AllOrNothingUntilRankCoversTheDeficit) {
    // Two losses in one window: one repair leaves a rank deficit (nothing
    // decodes), the second closes it (both decode at once).
    RlcDecoder dec(8, kSym);
    Rng rng{99};
    RlcEncoder enc(8, kSym, 7);
    std::vector<std::vector<std::uint8_t>> sources;
    for (std::size_t i = 0; i < 6; ++i) {
        sources.push_back(random_symbol(rng));
        enc.add_source(sources.back().data(), kSym);
        if (i != 2 && i != 4) {  // drop sources 2 and 4
            dec.add_source(i, sources[i].data(), kSym, static_cast<double>(i));
        }
    }
    const RepairSymbol r1 = enc.make_repair();
    dec.add_repair(r1.base, r1.count, r1.cseed, r1.payload.data(),
                   r1.payload.size(), 10.0);
    EXPECT_EQ(dec.decoded().size(), 0u) << "decoded below full rank";
    const RepairSymbol r2 = enc.make_repair();
    dec.add_repair(r2.base, r2.count, r2.cseed, r2.payload.data(),
                   r2.payload.size(), 11.0);
    ASSERT_EQ(dec.decoded().size(), 2u);
    EXPECT_EQ(dec.decoded()[0].at, 11.0);
    const std::uint8_t* p2 = dec.payload(2);
    const std::uint8_t* p4 = dec.payload(4);
    ASSERT_NE(p2, nullptr);
    ASSERT_NE(p4, nullptr);
    EXPECT_EQ(std::vector<std::uint8_t>(p2, p2 + kSym), sources[2]);
    EXPECT_EQ(std::vector<std::uint8_t>(p4, p4 + kSym), sources[4]);
}

TEST(RlcDecoder, WindowExpiryDeclaresUnrecoveredSymbolsLost) {
    RlcDecoder dec(4, kSym);
    Rng rng{5};
    std::vector<std::vector<std::uint8_t>> sources;
    for (std::size_t i = 0; i < 10; ++i) {
        sources.push_back(random_symbol(rng));
        if (i == 1) continue;  // symbol 1 is never delivered
        dec.add_source(i, sources[i].data(), kSym, static_cast<double>(i));
    }
    // Source 5 arriving proved the window [2, 5]; symbol 1 expired then.
    EXPECT_EQ(dec.symbols_lost(), 1u);
    bool saw_lost = false;
    for (const auto& e : dec.in_order_log()) {
        if (e.index == 1) {
            EXPECT_TRUE(e.lost);
            saw_lost = true;
        } else {
            EXPECT_FALSE(e.lost);
        }
    }
    EXPECT_TRUE(saw_lost);
    // The in-order log is monotone in index and time.
    for (std::size_t i = 1; i < dec.in_order_log().size(); ++i) {
        EXPECT_EQ(dec.in_order_log()[i].index,
                  dec.in_order_log()[i - 1].index + 1);
        EXPECT_GE(dec.in_order_log()[i].at, dec.in_order_log()[i - 1].at);
    }
}

TEST(RlcDecoder, InOrderTimestampsWaitForTheBlockingSymbol) {
    RlcDecoder dec(8, kSym);
    Rng rng{11};
    RlcEncoder enc(8, kSym, 3);
    std::vector<std::vector<std::uint8_t>> sources;
    for (std::size_t i = 0; i < 3; ++i) {
        sources.push_back(random_symbol(rng));
        enc.add_source(sources[i].data(), kSym);
        if (i != 1) {
            dec.add_source(i, sources[i].data(), kSym,
                           static_cast<double>(i + 1));
        }
    }
    const RepairSymbol rep = enc.make_repair();
    dec.add_repair(rep.base, rep.count, rep.cseed, rep.payload.data(),
                   rep.payload.size(), 9.0);
    // 0 delivered at t=1; 1 decoded at t=9; 2 arrived at t=3 but is only
    // in-order deliverable once 1 resolved, i.e. at t=9.
    ASSERT_EQ(dec.in_order_log().size(), 3u);
    EXPECT_EQ(dec.in_order_log()[0].at, 1.0);
    EXPECT_EQ(dec.in_order_log()[1].at, 9.0);
    EXPECT_EQ(dec.in_order_log()[2].at, 9.0);
}

TEST(RlcDecoder, DuplicatesAndStalePacketsAreCountedNotCrashed) {
    RlcDecoder dec(4, kSym);
    Rng rng{1};
    std::vector<std::uint8_t> s = random_symbol(rng);
    dec.add_source(0, s.data(), kSym, 1.0);
    dec.add_source(0, s.data(), kSym, 2.0);  // duplicate
    EXPECT_EQ(dec.stale_packets(), 1u);
    dec.add_source(9, s.data(), kSym, 3.0);  // window now starts at 6
    dec.add_source(2, s.data(), kSym, 4.0);  // below the base: stale
    EXPECT_EQ(dec.stale_packets(), 2u);
    EXPECT_EQ(dec.rank(), 2u);
}

TEST(RlcDecoder, DecodeImpliesReEncodeForEveryAcceptedRepair) {
    // After a lossy run, re-expand every repair over fully-resolved spans
    // and check the combination of the (decoded or received) originals
    // reproduces the repair payload byte for byte.
    Rng rng{0xD0D0};
    RlcEncoder enc(10, kSym, 77);
    RlcDecoder dec(10, kSym);
    std::vector<std::vector<std::uint8_t>> sources;
    std::vector<RepairSymbol> repairs;
    std::map<std::uint64_t, std::vector<std::uint8_t>> resolved;
    double t = 0.0;
    for (std::size_t i = 0; i < 80; ++i) {
        sources.push_back(random_symbol(rng));
        const std::uint64_t idx = enc.add_source(sources.back().data(), kSym);
        t += 1.0;
        const std::size_t before = dec.decoded().size();
        if (!rng.bernoulli(0.25)) {
            dec.add_source(idx, sources.back().data(), kSym, t);
            resolved[idx] = sources.back();
        }
        if (i % 2 == 1) {
            const RepairSymbol rep = enc.make_repair();
            repairs.push_back(rep);
            t += 0.5;
            dec.add_repair(rep.base, rep.count, rep.cseed,
                           rep.payload.data(), rep.payload.size(), t);
        }
        for (std::size_t d = before; d < dec.decoded().size(); ++d) {
            const std::uint64_t di = dec.decoded()[d].index;
            const std::uint8_t* got = dec.payload(di);
            ASSERT_NE(got, nullptr);
            resolved[di] = std::vector<std::uint8_t>(got, got + kSym);
        }
    }
    std::size_t verified = 0;
    for (const RepairSymbol& rep : repairs) {
        bool full_span = true;
        for (std::size_t j = 0; j < rep.count; ++j) {
            if (resolved.find(rep.base + j) == resolved.end()) {
                full_span = false;
                break;
            }
        }
        if (!full_span) continue;
        std::uint8_t coeffs[espread::fec::kMaxWindow];
        expand_coefficients(rep.cseed, rep.count, coeffs);
        std::vector<std::uint8_t> combo(kSym, 0);
        for (std::size_t j = 0; j < rep.count; ++j) {
            gf_mul_row_add(combo.data(), resolved[rep.base + j].data(), kSym,
                           coeffs[j]);
        }
        EXPECT_EQ(combo, rep.payload) << "re-encode mismatch";
        ++verified;
    }
    EXPECT_GT(verified, 10u) << "too few fully-resolved repairs to be meaningful";
}

}  // namespace
