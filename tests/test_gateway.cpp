#include "net/gateway.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using espread::net::Gateway;
using espread::net::GatewayConfig;
using espread::net::QueueDiscipline;
using espread::sim::Rng;

GatewayConfig congested(QueueDiscipline d) {
    GatewayConfig cfg;
    cfg.discipline = d;
    // Offered load > service when cross traffic is ON: 1 + 6 vs 3.
    return cfg;
}

struct LossStats {
    double rate = 0.0;
    double conditional = 0.0;  // P(loss | previous loss)
    double mean_burst = 0.0;
};

LossStats measure(QueueDiscipline d, std::uint64_t seed, int packets = 200000) {
    Gateway g{congested(d), Rng{seed}};
    int lost = 0;
    int after_loss = 0;
    int after_loss_lost = 0;
    espread::sim::RunningStats bursts;
    int run = 0;
    bool prev = false;
    for (int i = 0; i < packets; ++i) {
        const bool dropped = g.offer_packet();
        if (dropped) {
            ++lost;
            ++run;
        } else if (run > 0) {
            bursts.add(run);
            run = 0;
        }
        if (prev) {
            ++after_loss;
            if (dropped) ++after_loss_lost;
        }
        prev = dropped;
    }
    LossStats s;
    s.rate = static_cast<double>(lost) / packets;
    s.conditional = after_loss == 0
                        ? 0.0
                        : static_cast<double>(after_loss_lost) / after_loss;
    s.mean_burst = bursts.mean();
    return s;
}

TEST(Gateway, UncongestedQueueDropsNothing) {
    GatewayConfig cfg;
    cfg.cross_burst_rate = 0.0;  // just the probe stream, 1 pkt/slot vs 3 service
    Gateway g{cfg, Rng{1}};
    for (int i = 0; i < 5000; ++i) EXPECT_FALSE(g.offer_packet());
    EXPECT_EQ(g.cross_offered(), 0u);
}

TEST(Gateway, OverloadCausesLoss) {
    const LossStats s = measure(QueueDiscipline::kDropTail, 2);
    EXPECT_GT(s.rate, 0.02);
    EXPECT_LT(s.rate, 0.8);
}

// The paper's §1 claim: drop-tail produces BURSTY loss (losses cluster),
// RED spreads its drops out.
TEST(Gateway, DropTailIsBurstierThanRed) {
    const LossStats tail = measure(QueueDiscipline::kDropTail, 3);
    const LossStats red = measure(QueueDiscipline::kRed, 3);
    // Conditional loss probability far exceeds the marginal under drop-tail.
    EXPECT_GT(tail.conditional, 2.0 * tail.rate);
    // RED's early random drops de-cluster the loss process.
    EXPECT_LT(red.conditional, tail.conditional);
    EXPECT_LT(red.mean_burst, tail.mean_burst);
}

TEST(Gateway, RedKeepsAverageQueueLower) {
    Gateway tail{congested(QueueDiscipline::kDropTail), Rng{4}};
    Gateway red{congested(QueueDiscipline::kRed), Rng{4}};
    double tail_q = 0.0;
    double red_q = 0.0;
    for (int i = 0; i < 50000; ++i) {
        tail.offer_packet();
        red.offer_packet();
        tail_q += tail.queue_length();
        red_q += red.queue_length();
    }
    EXPECT_LT(red_q, tail_q);
}

TEST(Gateway, CrossTrafficAccounting) {
    Gateway g{congested(QueueDiscipline::kDropTail), Rng{5}};
    for (int i = 0; i < 20000; ++i) g.offer_packet();
    EXPECT_GT(g.cross_offered(), 0u);
    EXPECT_GT(g.cross_dropped(), 0u);
    EXPECT_LT(g.cross_dropped(), g.cross_offered());
}

TEST(Gateway, DeterministicPerSeed) {
    Gateway a{congested(QueueDiscipline::kRed), Rng{6}};
    Gateway b{congested(QueueDiscipline::kRed), Rng{6}};
    for (int i = 0; i < 2000; ++i) ASSERT_EQ(a.offer_packet(), b.offer_packet());
}

TEST(Gateway, InvalidConfigsThrow) {
    GatewayConfig cfg;
    cfg.capacity = 0;
    EXPECT_THROW(Gateway(cfg, Rng{1}), std::invalid_argument);
    cfg = GatewayConfig{};
    cfg.service_per_slot = 0.0;
    EXPECT_THROW(Gateway(cfg, Rng{1}), std::invalid_argument);
    cfg = GatewayConfig{};
    cfg.red_min_threshold = 0.8;  // above max threshold
    EXPECT_THROW(Gateway(cfg, Rng{1}), std::invalid_argument);
    cfg = GatewayConfig{};
    cfg.p_stay_on = 1.5;
    EXPECT_THROW(Gateway(cfg, Rng{1}), std::invalid_argument);
    cfg = GatewayConfig{};
    cfg.cross_burst_rate = -1.0;
    EXPECT_THROW(Gateway(cfg, Rng{1}), std::invalid_argument);
}

}  // namespace
