// Determinism and correctness contract of the multi-session engine.
//
// The ShardedEngine promises byte-identical summaries for any shard
// count, reproducible churn, fresh per-generation RNG streams on slot
// reuse, and a batched hot path that matches the scalar reference
// implementation window for window.  Each of those claims is pinned
// here.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "engine/pool.hpp"
#include "engine/reference.hpp"

namespace {

using espread::engine::EngineConfig;
using espread::engine::EngineSummary;
using espread::engine::ReferenceTrace;
using espread::engine::run_reference_session;
using espread::engine::SessionPool;
using espread::engine::ShardedEngine;
using espread::engine::summary_json;

EngineConfig churny_config() {
    EngineConfig cfg;
    cfg.sessions = 96;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.alpha = 0.5;
    cfg.feedback_delay_windows = 2;
    cfg.feedback_loss = {0.95, 0.5};
    cfg.churn.enabled = true;
    cfg.churn.min_lifetime_windows = 4;
    cfg.churn.mean_lifetime_windows = 12.0;
    cfg.churn.mean_arrival_gap_windows = 3.0;
    cfg.collect_metrics = true;
    cfg.seed = 2026;
    return cfg;
}

std::string run_to_json(EngineConfig cfg, std::size_t shards,
                        std::size_t windows) {
    cfg.shards = shards;
    ShardedEngine engine(cfg);
    engine.run(windows);
    return summary_json(engine.summary());
}

// The core contract: sharding buys wall-clock only, never different
// numbers.  With churn, feedback loss, and metrics all enabled, the
// rendered summary (scalars, both histograms, the metrics registry)
// must be byte-identical across shard counts 1, 2, and 8.
TEST(Engine, ShardCountInvariance) {
    const EngineConfig cfg = churny_config();
    const std::string one = run_to_json(cfg, 1, 64);
    const std::string two = run_to_json(cfg, 2, 64);
    const std::string eight = run_to_json(cfg, 8, 64);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

// Churn itself is a pure function of (seed, session id): two runs of the
// same config agree byte for byte, and the chosen parameters actually
// exercise arrivals and departures.
TEST(Engine, ChurnDeterminism) {
    const EngineConfig cfg = churny_config();
    ShardedEngine a(cfg);
    ShardedEngine b(cfg);
    a.run(96);
    b.run(96);
    const EngineSummary sa = a.summary();
    EXPECT_EQ(summary_json(sa), summary_json(b.summary()));
    EXPECT_GT(sa.sessions_completed, 0u);
    EXPECT_GT(sa.sessions_spawned, sa.sessions_completed);
    EXPECT_GT(sa.idle_windows, 0u);
}

// A single session with churn disabled must reproduce the scalar
// reference implementation exactly: same per-window CLF distribution,
// same bounds, same loss and ACK counts.  This pins every word-level
// trick in the hot path (batched Gilbert runs, bit-range marking,
// scatter_set_bits, max_set_run) against the naive loop.
TEST(Engine, PoolOfOneMatchesReference) {
    EngineConfig cfg;
    cfg.sessions = 1;
    cfg.shards = 1;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.feedback_loss = {0.9, 0.5};
    cfg.seed = 77;
    constexpr std::size_t kWindows = 200;

    ShardedEngine engine(cfg);
    engine.run(kWindows);
    const EngineSummary s = engine.summary();

    const ReferenceTrace ref = run_reference_session(cfg, 0, kWindows);
    ASSERT_EQ(ref.window_clf.size(), kWindows);

    EXPECT_EQ(s.windows, kWindows);
    EXPECT_EQ(s.unit_losses, ref.unit_losses);
    EXPECT_EQ(s.acks_delivered, ref.acks_delivered);
    EXPECT_EQ(s.acks_lost, ref.acks_lost);
    EXPECT_EQ(s.clf_max,
              *std::max_element(ref.window_clf.begin(), ref.window_clf.end()));
    for (std::size_t w = 0; w < kWindows; ++w) {
        SCOPED_TRACE(w);
        // Every reference window's CLF and bound must appear in the
        // engine histograms with matching multiplicity.
        const auto clf = static_cast<std::int64_t>(ref.window_clf[w]);
        const auto count_in = [&](const std::vector<std::size_t>& xs,
                                  std::size_t v) {
            return static_cast<std::size_t>(std::count(xs.begin(), xs.end(), v));
        };
        EXPECT_EQ(s.clf_histogram.count(clf),
                  count_in(ref.window_clf, ref.window_clf[w]));
        const auto bound = static_cast<std::int64_t>(ref.window_bound[w]);
        EXPECT_EQ(s.bound_histogram.count(bound),
                  count_in(ref.window_bound, ref.window_bound[w]));
    }
    const double clf_sum = std::accumulate(
        ref.window_clf.begin(), ref.window_clf.end(), 0.0);
    EXPECT_DOUBLE_EQ(s.clf_mean, clf_sum / static_cast<double>(kWindows));
}

// When a slot is reused after a departure, the new occupant draws from
// the stream keyed by its own session id (generation * capacity + slot),
// not a continuation of the departed session's stream.  With capacity 1
// and zero arrival gap, the pool's totals over three generations must
// equal the sum of three independent reference sessions with ids 0, 1, 2
// whose lifetimes come from the same churn draw the pool uses.
TEST(Engine, SlotReuseYieldsFreshStream) {
    EngineConfig cfg;
    cfg.sessions = 1;
    cfg.shards = 1;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.feedback_loss = {0.9, 0.5};
    cfg.churn.enabled = true;
    cfg.churn.min_lifetime_windows = 6;
    cfg.churn.mean_lifetime_windows = 14.0;
    cfg.churn.mean_arrival_gap_windows = 0.0;
    cfg.seed = 123;

    std::vector<ReferenceTrace> refs;
    std::size_t total_windows = 0;
    for (std::uint64_t gen = 0; gen < 3; ++gen) {
        const auto [lifetime, gap] = SessionPool::churn_draw(cfg, gen);
        ASSERT_GE(lifetime, cfg.churn.min_lifetime_windows);
        ASSERT_EQ(gap, 0u);  // mean_arrival_gap_windows == 0
        refs.push_back(run_reference_session(cfg, gen, lifetime));
        total_windows += lifetime;
    }

    ShardedEngine engine(cfg);
    engine.run(total_windows);
    const EngineSummary s = engine.summary();

    std::uint64_t losses = 0;
    std::uint64_t acks_ok = 0;
    std::uint64_t acks_lost = 0;
    std::size_t clf_max = 0;
    for (const ReferenceTrace& ref : refs) {
        losses += ref.unit_losses;
        acks_ok += ref.acks_delivered;
        acks_lost += ref.acks_lost;
        clf_max = std::max(clf_max, *std::max_element(ref.window_clf.begin(),
                                                      ref.window_clf.end()));
    }
    EXPECT_EQ(s.windows, total_windows);
    EXPECT_EQ(s.unit_losses, losses);
    EXPECT_EQ(s.acks_delivered, acks_ok);
    EXPECT_EQ(s.acks_lost, acks_lost);
    EXPECT_EQ(s.clf_max, clf_max);
    EXPECT_EQ(s.sessions_completed, 3u);
    EXPECT_EQ(s.sessions_spawned, 4u);  // generation 3 spawned, not yet run
    EXPECT_EQ(s.idle_windows, 0u);

    // Cross-check freshness directly: if the pool had merely continued
    // generation 0's stream instead of reseeding, generation 1's windows
    // would equal windows [l0, l0+l1) of a longer session-0 run.  With
    // this seed they do not.
    const std::uint32_t l0 = SessionPool::churn_draw(cfg, 0).first;
    const std::uint32_t l1 = SessionPool::churn_draw(cfg, 1).first;
    const ReferenceTrace continued = run_reference_session(cfg, 0, l0 + l1);
    const std::vector<std::size_t> continued_tail(
        continued.window_clf.begin() + l0, continued.window_clf.end());
    EXPECT_NE(continued_tail, refs[1].window_clf);
}

// Spreading on vs. off under identical loss: the engine reproduces the
// paper's headline effect (lower mean CLF with the k-CPO permutation)
// and both runs agree on aggregate loss because the channel stream does
// not depend on the spreading decision.
TEST(Engine, SpreadLowersMeanClfUnderSameChannel) {
    EngineConfig cfg;
    cfg.sessions = 64;
    cfg.shards = 2;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.seed = 5;
    cfg.spread = true;
    ShardedEngine spread(cfg);
    cfg.spread = false;
    ShardedEngine inorder(cfg);
    spread.run(128);
    inorder.run(128);
    const EngineSummary ss = spread.summary();
    const EngineSummary si = inorder.summary();
    EXPECT_EQ(ss.unit_losses, si.unit_losses);
    EXPECT_EQ(ss.windows, si.windows);
    EXPECT_LT(ss.clf_mean, si.clf_mean);
}

// Governor-lite supervision is part of the determinism contract too:
// with heavy feedback loss forcing outage excursions, the supervised
// pool must still match the scalar reference window for window — same
// totals, same per-state occupancy, same transition count.
TEST(Engine, GovernedPoolOfOneMatchesReference) {
    EngineConfig cfg;
    cfg.sessions = 1;
    cfg.shards = 1;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.feedback_loss = {0.6, 0.9};  // mostly-lost feedback: misses abound
    cfg.governor.enabled = true;
    cfg.governor.miss_budget = 2;
    cfg.governor.fallback_budget = 3;
    cfg.governor.recovery_windows = 3;
    cfg.seed = 31;
    constexpr std::size_t kWindows = 300;

    ShardedEngine engine(cfg);
    engine.run(kWindows);
    const EngineSummary s = engine.summary();
    const ReferenceTrace ref = run_reference_session(cfg, 0, kWindows);
    ASSERT_EQ(ref.window_state.size(), kWindows);

    EXPECT_EQ(s.windows, kWindows);
    EXPECT_EQ(s.unit_losses, ref.unit_losses);
    EXPECT_EQ(s.acks_delivered, ref.acks_delivered);
    EXPECT_EQ(s.acks_lost, ref.acks_lost);
    EXPECT_EQ(s.governor_transitions, ref.governor_transitions);
    std::uint64_t occupancy[4] = {0, 0, 0, 0};
    for (const std::uint8_t st : ref.window_state) ++occupancy[st];
    for (std::size_t st = 0; st < 4; ++st) {
        SCOPED_TRACE(st);
        EXPECT_EQ(s.governor_windows[st], occupancy[st]);
    }
    // The chosen parameters actually exercise the whole ladder.
    EXPECT_GT(s.governor_transitions, 0u);
    EXPECT_GT(s.governor_windows[1] + s.governor_windows[2], 0u);
    // Per-window bounds agree with the supervised reference loop.
    for (std::size_t w = 0; w < kWindows; ++w) {
        SCOPED_TRACE(w);
        const auto bound = static_cast<std::int64_t>(ref.window_bound[w]);
        EXPECT_EQ(s.bound_histogram.count(bound),
                  static_cast<std::size_t>(
                      std::count(ref.window_bound.begin(),
                                 ref.window_bound.end(), ref.window_bound[w])));
    }
}

// Shard invariance holds with supervision enabled: governor state lives
// per slot, so cutting the slot axis differently cannot change it.
TEST(Engine, GovernedShardCountInvariance) {
    EngineConfig cfg = churny_config();
    cfg.governor.enabled = true;
    const std::string one = run_to_json(cfg, 1, 64);
    EXPECT_EQ(one, run_to_json(cfg, 2, 64));
    EXPECT_EQ(one, run_to_json(cfg, 8, 64));
    // And supervision is not a no-op relative to the unsupervised run.
    EngineConfig off = churny_config();
    EXPECT_NE(one, run_to_json(off, 1, 64));
}

// Shard invariance holds with the FEC-lite coded arm enabled: the repair
// draws ride each slot's own Gilbert chain, so cutting the slot axis
// differently cannot change the summaries (ISSUE 8 acceptance: coded
// fleet summaries byte-identical across shards 1, 2, and 8).
TEST(Engine, CodedShardCountInvariance) {
    EngineConfig cfg = churny_config();
    cfg.fec.enabled = true;
    cfg.fec.overhead_num = 1;
    cfg.fec.overhead_den = 5;
    const std::string one = run_to_json(cfg, 1, 64);
    EXPECT_EQ(one, run_to_json(cfg, 2, 64));
    EXPECT_EQ(one, run_to_json(cfg, 8, 64));
    // And the coded arm is not a no-op relative to the uncoded run.
    EngineConfig off = churny_config();
    EXPECT_NE(one, run_to_json(off, 1, 64));
}

// The coded pool-of-one matches the scalar reference window for window:
// repair survival draws, the all-or-nothing recovery decision, and the
// untouched transmission-order feedback all line up.
TEST(Engine, CodedPoolOfOneMatchesReference) {
    EngineConfig cfg;
    cfg.sessions = 1;
    cfg.shards = 1;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.feedback_loss = {0.9, 0.5};
    cfg.fec.enabled = true;
    cfg.fec.overhead_num = 1;
    cfg.fec.overhead_den = 4;
    cfg.seed = 123;
    constexpr std::size_t kWindows = 200;

    ShardedEngine engine(cfg);
    engine.run(kWindows);
    const EngineSummary s = engine.summary();

    const ReferenceTrace ref = run_reference_session(cfg, 0, kWindows);
    EXPECT_EQ(s.windows, kWindows);
    EXPECT_EQ(s.unit_losses, ref.unit_losses);
    EXPECT_EQ(s.acks_delivered, ref.acks_delivered);
    EXPECT_EQ(s.acks_lost, ref.acks_lost);
    EXPECT_EQ(s.fec_repair_packets, ref.fec_repair_packets);
    EXPECT_EQ(s.fec_windows_recovered, ref.fec_windows_recovered);
    EXPECT_EQ(s.clf_max,
              *std::max_element(ref.window_clf.begin(), ref.window_clf.end()));
    // The arm must actually fire in both directions on this channel.
    EXPECT_GT(s.fec_windows_recovered, 0u);
    EXPECT_GT(s.fec_windows_unrecovered, 0u);
    const double clf_sum = std::accumulate(
        ref.window_clf.begin(), ref.window_clf.end(), 0.0);
    EXPECT_DOUBLE_EQ(s.clf_mean, clf_sum / static_cast<double>(kWindows));
}

// Shard invariance holds with the NACK-lite receiver-driven arm on top of
// FEC-lite: banking, the piggybacked NACK draw, and the watchdog are all
// per-slot state, so cutting the slot axis differently cannot change the
// summaries.
TEST(Engine, NackShardCountInvariance) {
    EngineConfig cfg = churny_config();
    cfg.fec.enabled = true;
    cfg.fec.overhead_num = 1;
    cfg.fec.overhead_den = 5;
    cfg.fec.nack = true;
    const std::string one = run_to_json(cfg, 1, 64);
    EXPECT_EQ(one, run_to_json(cfg, 2, 64));
    EXPECT_EQ(one, run_to_json(cfg, 8, 64));
    // And receiver-driven banking is not a no-op relative to the fixed
    // proactive schedule.
    EngineConfig fixed = cfg;
    fixed.fec.nack = false;
    EXPECT_NE(one, run_to_json(fixed, 1, 64));
}

// The NACK-lite arm reacts to loss and degrades gracefully: on a lossy
// feedback path some requests die, and when feedback is fully dead the
// watchdog reverts every slot to the fixed proactive schedule after the
// grace windows — banked credits stop leaking and repairs keep flowing.
TEST(Engine, NackArmReactsAndDegradesGracefully) {
    EngineConfig cfg;
    cfg.sessions = 16;
    cfg.shards = 2;
    cfg.feedback_loss = {0.9, 0.5};
    cfg.fec.enabled = true;
    cfg.fec.overhead_num = 1;
    cfg.fec.overhead_den = 4;
    cfg.fec.nack = true;
    cfg.seed = 7;
    constexpr std::size_t kWindows = 200;

    ShardedEngine live(cfg);
    live.run(kWindows);
    const EngineSummary s = live.summary();
    EXPECT_TRUE(s.nack);
    EXPECT_GT(s.nack_requests_sent, 0u);
    EXPECT_GT(s.nack_requests_lost, 0u);
    EXPECT_GT(s.nack_repair_packets, 0u);
    // Banking never spends more than the fixed schedule accrues.
    EXPECT_LE(s.nack_repair_packets, s.fec_repair_packets + 1);

    EngineConfig dead = cfg;
    dead.feedback_loss = {0.92, 0.6, 1.0, 1.0};  // every feedback lost
    ShardedEngine blackout(dead);
    blackout.run(kWindows);
    const EngineSummary b = blackout.summary();
    EXPECT_EQ(b.nack_requests_lost, b.nack_requests_sent);
    EXPECT_GT(b.nack_windows_proactive, 0u);
    // Dead feedback degrades to (nearly) the full fixed schedule: only
    // the pre-watchdog grace windows withhold repairs.
    EXPECT_GT(b.fec_repair_packets, 0u);
}

// With the NACK-lite arm off, a coded summary carries no nack_* keys and
// the fec-only numbers are untouched by the arm's presence in the build.
TEST(Engine, NackOffLeaksNothingIntoCodedSummaries) {
    EngineConfig cfg = churny_config();
    cfg.fec.enabled = true;
    const std::string json = run_to_json(cfg, 1, 64);
    EXPECT_EQ(json.find("nack_"), std::string::npos);
}

// Config validation rejects out-of-range parameters before any arena is
// built.
TEST(Engine, ValidatesConfig) {
    EngineConfig cfg;
    cfg.sessions = 0;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.alpha = 1.5;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.feedback_delay_windows = 0;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.churn.enabled = true;
    cfg.churn.min_lifetime_windows = 0;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.data_loss.p_good = 1.25;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.fec.enabled = true;
    cfg.fec.overhead_den = 0;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.fec.nack = true;  // requires the fec arm
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
    cfg = EngineConfig{};
    cfg.fec.enabled = true;
    cfg.fec.nack = true;
    cfg.fec.nack_credit_cap = 0;
    EXPECT_THROW(ShardedEngine{cfg}, std::invalid_argument);
}

}  // namespace
