#include "core/optimal.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/burst.hpp"
#include "core/cpo.hpp"

namespace {

using espread::clf_achievable;
using espread::cpo_clf;
using espread::lower_bound_clf;
using espread::optimal_clf;
using espread::optimal_permutation;
using espread::OptimalResult;
using espread::worst_case_clf;

TEST(Optimal, KnownSmallValues) {
    EXPECT_EQ(optimal_clf(4, 2), 1u);
    EXPECT_EQ(optimal_clf(4, 3), 2u);
    EXPECT_EQ(optimal_clf(5, 4), 3u);  // exceeds the packing bound of 2
    EXPECT_EQ(optimal_clf(6, 3), 1u);
    EXPECT_EQ(optimal_clf(2, 2), 2u);
}

TEST(Optimal, DegenerateInputs) {
    EXPECT_EQ(optimal_clf(0, 3), 0u);
    EXPECT_EQ(optimal_clf(5, 0), 0u);
    EXPECT_EQ(optimal_clf(1, 1), 1u);
    for (std::size_t n = 1; n <= 8; ++n) {
        EXPECT_EQ(optimal_clf(n, n), n);
        EXPECT_EQ(optimal_clf(n, 1), 1u);
    }
}

TEST(Optimal, WitnessMatchesReportedClf) {
    for (std::size_t n = 1; n <= 8; ++n) {
        for (std::size_t b = 1; b <= n; ++b) {
            const OptimalResult r = optimal_permutation(n, b);
            EXPECT_EQ(r.perm.size(), n);
            EXPECT_EQ(worst_case_clf(r.perm, b), r.clf) << "n=" << n << " b=" << b;
        }
    }
}

TEST(Optimal, AchievabilityIsMonotoneInTarget) {
    const std::size_t n = 7;
    const std::size_t b = 5;
    bool prev = false;
    for (std::size_t t = 0; t <= b; ++t) {
        const bool ok = clf_achievable(n, b, t);
        EXPECT_TRUE(!prev || ok) << "achievability lost at t=" << t;
        prev = ok;
    }
    EXPECT_TRUE(prev);  // t == b is always achievable
}

// Ground truth vs bounds vs construction over an exhaustive sweep.
class OptimalSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptimalSweep, SandwichedBetweenBoundAndCpo) {
    const auto [n, b] = GetParam();
    if (b > n) GTEST_SKIP();
    const std::size_t opt = optimal_clf(n, b);
    EXPECT_GE(opt, lower_bound_clf(n, b));
    EXPECT_LE(opt, cpo_clf(n, b));
}

INSTANTIATE_TEST_SUITE_P(
    ExhaustiveSmall, OptimalSweep,
    ::testing::Combine(::testing::Range(1, 10), ::testing::Range(1, 10)));

// The cyclic family is optimal in the regimes the paper's Theorem 1 covers
// (b*b <= n gives CLF 1; b >= n gives n; b == 1 trivially 1).  Outside
// those regimes — especially b close to n, where only a couple of burst
// positions exist and bespoke orders beat any stride — the family can be
// suboptimal; bench_theorem1 quantifies the gap.  Here we pin the tight
// regimes and the ordering opt <= cpo everywhere.
TEST(Optimal, CpoMatchesOptimumInTheoremRegimes) {
    for (std::size_t n = 1; n <= 9; ++n) {
        for (std::size_t b = 1; b <= n; ++b) {
            const std::size_t opt = optimal_clf(n, b);
            const std::size_t cpo = cpo_clf(n, b);
            EXPECT_LE(opt, cpo) << "n=" << n << " b=" << b;
            if (b * b <= n || b >= n || b == 1) {
                EXPECT_EQ(cpo, opt) << "n=" << n << " b=" << b;
            }
        }
    }
}

// Known instance of the family gap: at b = n - 1 only two burst positions
// exist, and placing a middle frame at each end of the wire order achieves
// roughly n/2 where every stride order is forced to ~n - 1.
TEST(Optimal, LargeBurstGapIsReal) {
    EXPECT_EQ(optimal_clf(8, 7), 4u);
    EXPECT_GE(cpo_clf(8, 7), optimal_clf(8, 7));
}

TEST(Optimal, RefusesWindowsTooLargeToSearch) {
    EXPECT_THROW(optimal_clf(15, 5), std::invalid_argument);
    EXPECT_THROW(clf_achievable(32, 31, 16), std::invalid_argument);
    EXPECT_THROW(optimal_permutation(20, 3), std::invalid_argument);
    EXPECT_NO_THROW(optimal_clf(14, 2));  // largest accepted window, easy b
}

TEST(Optimal, SimultaneityGapExample) {
    // n=5, b=4: each individual burst admits a spread with max run 2, but no
    // single permutation satisfies both burst positions at once.
    EXPECT_EQ(lower_bound_clf(5, 4), 2u);
    EXPECT_FALSE(clf_achievable(5, 4, 2));
    EXPECT_TRUE(clf_achievable(5, 4, 3));
}

}  // namespace
