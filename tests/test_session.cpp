#include "protocol/session.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "media/trace.hpp"
#include "media/trace_io.hpp"

namespace {

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::StreamKind;

SessionConfig base_config() {
    SessionConfig cfg;  // paper defaults: Jurassic Park, W=2, 1.2 Mb/s, Gilbert(.92,.6)
    cfg.num_windows = 20;
    cfg.seed = 1;
    return cfg;
}

SessionConfig lossless(SessionConfig cfg) {
    cfg.data_loss = {1.0, 0.0};
    cfg.feedback_loss = {1.0, 0.0};
    return cfg;
}

TEST(Session, LosslessDeliveryIsPerfect) {
    const SessionResult r = run_session(lossless(base_config()));
    ASSERT_EQ(r.windows.size(), 20u);
    for (const auto& w : r.windows) {
        EXPECT_EQ(w.clf, 0u) << "window " << w.window;
        EXPECT_EQ(w.lost_ldus, 0u);
        EXPECT_EQ(w.sender_dropped, 0u);
        EXPECT_EQ(w.retransmissions, 0u);
        EXPECT_EQ(w.actual_packet_burst, 0u);
    }
    EXPECT_EQ(r.total.unit_losses, 0u);
    EXPECT_EQ(r.total.slots, 20u * 24u);
    EXPECT_EQ(r.acks_sent, 20u);
    EXPECT_EQ(r.acks_applied, 20u);
    EXPECT_EQ(r.data_channel.dropped, 0u);
}

TEST(Session, DeterministicPerSeed) {
    const SessionResult a = run_session(base_config());
    const SessionResult b = run_session(base_config());
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].clf, b.windows[i].clf);
        EXPECT_EQ(a.windows[i].lost_ldus, b.windows[i].lost_ldus);
        EXPECT_EQ(a.windows[i].bound_used, b.windows[i].bound_used);
    }
    SessionConfig other = base_config();
    other.seed = 2;
    const SessionResult c = run_session(other);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        any_diff = any_diff || a.windows[i].lost_ldus != c.windows[i].lost_ldus;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Session, LossyNetworkActuallyLosesPackets) {
    const SessionResult r = run_session(base_config());
    EXPECT_GT(r.data_channel.dropped, 0u);
    // Stationary loss of Gilbert(.92,.6) is ~16.7%; expect the ballpark.
    const double rate = static_cast<double>(r.data_channel.dropped) /
                        static_cast<double>(r.data_channel.sent);
    EXPECT_GT(rate, 0.08);
    EXPECT_LT(rate, 0.30);
}

TEST(Session, AdaptiveBoundMovesFromInitialGuess) {
    const SessionResult r = run_session(base_config());
    // Initial bound = noncritical size / 2 = 8; with mild frame-level
    // bursts the estimate must leave 8 within a few windows.
    EXPECT_EQ(r.windows[0].bound_used, 8u);
    bool moved = false;
    for (const auto& w : r.windows) moved = moved || w.bound_used != 8;
    EXPECT_TRUE(moved);
}

TEST(Session, PinnedBoundFreezesAdaptation) {
    SessionConfig cfg = base_config();
    cfg.pinned_bound = 3;
    const SessionResult r = run_session(cfg);
    for (const auto& w : r.windows) EXPECT_EQ(w.bound_used, 3u);
}

TEST(Session, NonAdaptiveKeepsInitialBound) {
    SessionConfig cfg = base_config();
    cfg.adaptive = false;
    const SessionResult r = run_session(cfg);
    for (const auto& w : r.windows) EXPECT_EQ(w.bound_used, 8u);
}

TEST(Session, RetransmissionsProtectAnchors) {
    SessionConfig with = base_config();
    SessionConfig without = base_config();
    without.retransmit_critical = false;
    const SessionResult r_with = run_session(with);
    const SessionResult r_without = run_session(without);
    std::size_t retx = 0;
    for (const auto& w : r_with.windows) retx += w.retransmissions;
    EXPECT_GT(retx, 0u);
    // Undecodable frames (dependents of lost anchors) should drop when
    // anchors are protected.
    std::size_t undec_with = 0;
    std::size_t undec_without = 0;
    for (const auto& w : r_with.windows) undec_with += w.undecodable;
    for (const auto& w : r_without.windows) undec_without += w.undecodable;
    EXPECT_LT(undec_with, undec_without);
    EXPECT_LE(r_with.total.unit_losses * 10,
              r_without.total.unit_losses * 13);  // no catastrophic regression
}

TEST(Session, SpreadBeatsInOrderOnMeanClf) {
    // The paper's headline (Fig. 8): scrambling reduces mean per-window CLF
    // under bursty loss.  Compare across a few seeds to avoid flukes.
    double spread_total = 0.0;
    double inorder_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SessionConfig spread = base_config();
        spread.seed = seed;
        SessionConfig inorder = spread;
        inorder.scheme = Scheme::kInOrder;
        spread_total += run_session(spread).clf_stats().mean();
        inorder_total += run_session(inorder).clf_stats().mean();
    }
    EXPECT_LT(spread_total, inorder_total);
}

TEST(Session, StarvedLinkDropsTailLayersFirst) {
    SessionConfig cfg = lossless(base_config());
    cfg.data_link.bandwidth_bps = 6e5;  // ~half the trace's mean bitrate
    cfg.num_windows = 10;
    const SessionResult r = run_session(cfg);
    std::size_t dropped = 0;
    for (const auto& w : r.windows) dropped += w.sender_dropped;
    EXPECT_GT(dropped, 0u);
    // Layered scheme sheds B frames; anchors (and thus decodability of what
    // remains) survive, so CLF stays bounded by the B-run structure.
    EXPECT_GT(r.total.unit_losses, 0u);
}

TEST(Session, MjpegStreamRuns) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 30;
    cfg.stream.frame_rate = 30.0;
    cfg.stream.mjpeg_mean_bits = 20000.0;
    cfg.num_windows = 10;
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.total.slots, 300u);
    for (const auto& w : r.windows) EXPECT_EQ(w.undecodable, 0u);
}

TEST(Session, AudioStreamRuns) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kAudio;
    cfg.stream.ldus_per_window = 30;
    cfg.stream.frame_rate = 30.0;
    cfg.num_windows = 10;
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.total.slots, 300u);
    // Audio LDUs are tiny; an audio window easily fits the link.
    for (const auto& w : r.windows) EXPECT_EQ(w.sender_dropped, 0u);
}

TEST(Session, FecReducesLossesGivenBandwidthHeadroom) {
    // §4.3: FEC composes with spreading "at the expense of extra bandwidth".
    // With headroom for the parity packets, losses drop.
    SessionConfig plain = base_config();
    plain.data_link.bandwidth_bps = 2e6;
    SessionConfig fec = plain;
    fec.fec.group = 4;
    fec.fec.parity = 2;
    const SessionResult r_plain = run_session(plain);
    const SessionResult r_fec = run_session(fec);
    EXPECT_GT(r_fec.data_channel.sent, r_plain.data_channel.sent);
    EXPECT_LT(r_fec.total.unit_losses, r_plain.total.unit_losses);
}

TEST(Session, FecBackfiresOnSaturatedLink) {
    // On the paper's 1.2 Mb/s link the trace leaves little headroom; parity
    // packets steal deadline budget and sender-side drops overwhelm the
    // recovery gain.  This is why the paper keeps error spreading itself
    // bandwidth-neutral.
    SessionConfig plain = base_config();
    SessionConfig fec = plain;
    fec.fec.group = 4;
    fec.fec.parity = 2;
    const SessionResult r_plain = run_session(plain);
    const SessionResult r_fec = run_session(fec);
    std::size_t fec_drops = 0;
    for (const auto& w : r_fec.windows) fec_drops += w.sender_dropped;
    EXPECT_GT(fec_drops, 0u);
    EXPECT_GT(r_fec.total.unit_losses, r_plain.total.unit_losses);
}

TEST(Session, FecInterleavingImprovesRecoveryUnderBursts) {
    // A loss burst concentrated in one codeword defeats its parity; with
    // interleave depth d, consecutive packets belong to d different
    // codewords and each absorbs only a slice of the burst.
    SessionConfig depth1 = base_config();
    depth1.data_link.bandwidth_bps = 2e6;
    depth1.feedback_link.bandwidth_bps = 2e6;
    depth1.fec = {4, 1, 1};
    depth1.num_windows = 50;
    SessionConfig depth4 = depth1;
    depth4.fec.interleave = 4;
    // A single channel realization can go either way by a packet or two, so
    // compare totals pooled over several independent seeds.
    std::size_t losses1 = 0;
    std::size_t losses4 = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        depth1.seed = seed;
        depth4.seed = seed;
        const SessionResult r1 = run_session(depth1);
        const SessionResult r4 = run_session(depth4);
        // Same parity budget either way.
        EXPECT_NEAR(static_cast<double>(r4.data_channel.sent),
                    static_cast<double>(r1.data_channel.sent),
                    0.02 * static_cast<double>(r1.data_channel.sent));
        losses1 += r1.total.unit_losses;
        losses4 += r4.total.unit_losses;
    }
    EXPECT_LT(losses4, losses1);
}

TEST(Session, TraceFileDrivenSession) {
    // Write a synthetic clip to disk, then stream it back through the
    // trace-file path; the trace is shorter than the session, exercising
    // the looping logic.
    const std::string path = ::testing::TempDir() + "/espread_session_trace.txt";
    espread::media::TraceGenerator gen{
        espread::media::movie_stats("Terminator"), 13};
    espread::media::write_trace_file(path, gen.generate(6));

    SessionConfig cfg = lossless(base_config());
    cfg.stream.kind = StreamKind::kTraceFile;
    cfg.stream.trace_path = path;
    cfg.stream.frame_rate = 24.0;
    cfg.num_windows = 8;  // 16 GOPs needed > 6 available -> loops
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.total.slots, 8u * 24u);
    EXPECT_EQ(r.total.unit_losses, 0u);
}

TEST(Session, TraceFileConfigValidation) {
    SessionConfig cfg = base_config();
    cfg.stream.kind = StreamKind::kTraceFile;
    cfg.stream.trace_path = "";
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg.stream.trace_path = "/nonexistent/trace.txt";
    EXPECT_THROW(run_session(cfg), std::runtime_error);
}

TEST(Session, PredictiveDropShedsUpFrontOnStarvedLink) {
    SessionConfig reactive = lossless(base_config());
    reactive.data_link.bandwidth_bps = 6e5;  // below the trace's mean rate
    reactive.num_windows = 10;
    SessionConfig predictive = reactive;
    predictive.drop_policy = espread::proto::DropPolicy::kPredictive;

    const SessionResult r_re = run_session(reactive);
    const SessionResult r_pre = run_session(predictive);
    std::size_t drops_re = 0;
    std::size_t drops_pre = 0;
    for (const auto& w : r_re.windows) drops_re += w.sender_dropped;
    for (const auto& w : r_pre.windows) drops_pre += w.sender_dropped;
    EXPECT_GT(drops_re, 0u);
    EXPECT_GT(drops_pre, 0u);
    // Predictive shedding (with its reserve) drops at least as much but
    // never overruns the deadline mid-anchor.
    EXPECT_GE(drops_pre, drops_re);
    // Both still deliver a playable stream.
    EXPECT_LT(r_pre.total.alf, 1.0);
}

TEST(Session, PredictiveDropIsNoOpWithAmpleBandwidth) {
    SessionConfig cfg = lossless(base_config());
    cfg.drop_policy = espread::proto::DropPolicy::kPredictive;
    cfg.num_windows = 10;
    const SessionResult r = run_session(cfg);
    for (const auto& w : r.windows) EXPECT_EQ(w.sender_dropped, 0u);
    EXPECT_EQ(r.total.unit_losses, 0u);
}

TEST(Session, SlidingMaxEstimatorRuns) {
    SessionConfig cfg = base_config();
    cfg.estimator = espread::proto::EstimatorKind::kSlidingMax;
    cfg.sliding_history = 3;
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.windows.size(), 20u);
    // Bound still starts at the n/2 prior and adapts.
    EXPECT_EQ(r.windows[0].bound_used, 8u);
    bool moved = false;
    for (const auto& w : r.windows) moved = moved || w.bound_used != 8;
    EXPECT_TRUE(moved);
}

TEST(Session, PredictiveConfigValidation) {
    SessionConfig cfg = base_config();
    cfg.predictive_reserve = 1.0;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.predictive_reserve = -0.1;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.estimator = espread::proto::EstimatorKind::kSlidingMax;
    cfg.sliding_history = 0;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
}

TEST(Session, GilbertElliottNetworkRuns) {
    SessionConfig cfg = base_config();
    cfg.data_loss = {0.92, 0.6, 0.01, 0.8};  // residual + partial-BAD loss
    cfg.num_windows = 10;
    const SessionResult r = run_session(cfg);
    EXPECT_GT(r.data_channel.dropped, 0u);
    EXPECT_EQ(r.windows.size(), 10u);
}

TEST(Session, InvalidConfigThrows) {
    SessionConfig cfg = base_config();
    cfg.num_windows = 0;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.stream.movie = "Unknown Movie";
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.alpha = 2.0;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.fec.parity = 2;  // parity without group
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
    cfg = base_config();
    cfg.fec = {4, 2, 0};  // zero interleave depth
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
}

TEST(Session, AckLossToleratedViaMaxSeq) {
    SessionConfig cfg = base_config();
    cfg.feedback_loss = {0.5, 0.5};  // very lossy ACK path
    const SessionResult r = run_session(cfg);
    EXPECT_EQ(r.acks_sent, 20u);
    EXPECT_LT(r.acks_applied, r.acks_sent);
    EXPECT_GT(r.acks_applied, 0u);
}

}  // namespace
