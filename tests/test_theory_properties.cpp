// Cross-module property sweeps tying the THEORY.md claims together:
// adjacency distance characterizes single-burst tolerance, random
// permutations respect the bounds, and the family guarantee sits inside
// the theoretical sandwich for every (n, b).
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/multiburst.hpp"
#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "sim/rng.hpp"

namespace {

using espread::calculate_permutation;
using espread::lower_bound_clf;
using espread::Permutation;
using espread::random_order;
using espread::worst_case_clf;
using espread::analysis::min_adjacent_distance;

// CLF 1 against every burst <= b  <=>  every playback-adjacent pair is
// more than ... precisely: min adjacent wire distance >= b means a burst
// of b cannot cover both; a burst of mad+1 can.
TEST(TheoryProperty, MinAdjacentDistanceCharacterizesClfOne) {
    espread::sim::Rng rng{31};
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 4 + rng.uniform_int(0, 28);
        const Permutation p = random_order(n, rng);
        const std::size_t mad = min_adjacent_distance(p);
        ASSERT_GE(mad, 1u);
        EXPECT_EQ(worst_case_clf(p, mad), 1u) << "n=" << n;
        if (mad < n) {
            EXPECT_GE(worst_case_clf(p, mad + 1), 2u) << "n=" << n;
        }
    }
}

// Any permutation whatsoever respects the packing bound and the trivial
// ceiling — the sandwich the optimizer moves inside.
TEST(TheoryProperty, RandomPermutationsRespectTheSandwich) {
    espread::sim::Rng rng{32};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 + rng.uniform_int(0, 20);
        const Permutation p = random_order(n, rng);
        for (std::size_t b = 1; b <= n; ++b) {
            const std::size_t clf = worst_case_clf(p, b);
            EXPECT_GE(clf, lower_bound_clf(n, b));
            EXPECT_LE(clf, b);
        }
    }
}

// Unapply/apply round-trip on random permutations: the receiver always
// reconstructs exactly the sender's window.
TEST(TheoryProperty, UnapplyInvertsApplyForRandomOrders) {
    espread::sim::Rng rng{33};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 1 + rng.uniform_int(0, 40);
        const Permutation p = random_order(n, rng);
        std::vector<int> items(n);
        for (auto& x : items) x = static_cast<int>(rng.uniform_int(0, 1000));
        EXPECT_EQ(p.unapply(p.apply(items)), items);
        EXPECT_TRUE(p.compose(p.inverse()).is_identity());
    }
}

class FamilySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

// The family guarantee meets the packing bound through b = n/2 (THEORY §3)
// and never exceeds what the identity suffers.
TEST_P(FamilySweep, GuaranteeMeetsPackingBoundInEasyRegime) {
    const auto [n, b] = GetParam();
    if (b > n) GTEST_SKIP();
    const auto r = calculate_permutation(n, b);
    if (static_cast<std::size_t>(2 * b) <= static_cast<std::size_t>(n)) {
        EXPECT_EQ(r.clf, 1u);
    }
    EXPECT_GE(r.clf, lower_bound_clf(n, b));
    EXPECT_LE(r.clf, std::min<std::size_t>(b, n));
}

INSTANTIATE_TEST_SUITE_P(
    WideRange, FamilySweep,
    ::testing::Combine(::testing::Values(11, 16, 23, 32, 48, 64, 120),
                       ::testing::Values(1, 2, 5, 8, 16, 24, 60, 119)));

// Large-burst regime: the family achieves the single-survivor optimum
// ceil((n-1)/2) at b = n - 1 (THEORY §3, reversed half-stride).
TEST(TheoryProperty, NearTotalLossOptimumAchieved) {
    for (const std::size_t n : {8u, 12u, 16u, 20u, 24u, 32u}) {
        const auto r = calculate_permutation(n, n - 1);
        EXPECT_EQ(r.clf, (n - 1 + 1) / 2) << "n=" << n;
    }
}

// The exact evaluator agrees with a brute-force re-implementation on
// random instances (guards against optimization bugs in worst_case_clf).
TEST(TheoryProperty, WorstCaseClfMatchesBruteForce) {
    espread::sim::Rng rng{34};
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + rng.uniform_int(0, 14);
        const std::size_t b = 1 + rng.uniform_int(0, n - 1);
        const Permutation p = random_order(n, rng);
        std::size_t brute = 0;
        for (std::size_t start = 0; start + b <= n; ++start) {
            std::vector<bool> delivered(n, true);
            for (std::size_t s = start; s < start + b; ++s) delivered[p[s]] = false;
            std::size_t run = 0;
            std::size_t best = 0;
            for (const bool ok : delivered) {
                run = ok ? 0 : run + 1;
                best = std::max(best, run);
            }
            brute = std::max(brute, best);
        }
        EXPECT_EQ(worst_case_clf(p, b), brute) << "n=" << n << " b=" << b;
    }
}

}  // namespace
