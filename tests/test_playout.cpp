#include "protocol/playout.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "protocol/session.hpp"

namespace {

using espread::proto::PlayoutClock;
using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::sim::from_millis;
using espread::sim::from_seconds;

TEST(PlayoutClock, DeadlinesFollowFrameRate) {
    const PlayoutClock clock{24.0, from_seconds(1.0)};
    EXPECT_EQ(clock.deadline(0), from_seconds(1.0));
    EXPECT_EQ(clock.deadline(24), from_seconds(2.0));
    EXPECT_EQ(clock.deadline(12), from_seconds(1.5));
}

TEST(PlayoutClock, OnTimeStrictlyBeforeDeadline) {
    PlayoutClock clock{10.0, from_seconds(1.0)};
    clock.frame_ready(0, from_seconds(0.999));
    clock.frame_ready(1, from_seconds(1.1));  // deadline is 1.1 exactly
    clock.frame_ready(2, from_seconds(1.15));
    EXPECT_TRUE(clock.on_time(0));
    EXPECT_FALSE(clock.on_time(1));  // arriving at the deadline is late
    EXPECT_TRUE(clock.on_time(2));
    EXPECT_FALSE(clock.on_time(3));  // never ready
}

TEST(PlayoutClock, EarliestReadyTimeWins) {
    PlayoutClock clock{10.0, from_seconds(1.0)};
    clock.frame_ready(0, from_seconds(2.0));  // late (retransmission)
    clock.frame_ready(0, from_seconds(0.5));  // earlier original
    EXPECT_TRUE(clock.on_time(0));
    EXPECT_EQ(*clock.slack(0), from_seconds(0.5));
}

TEST(PlayoutClock, SlackReportsMargin) {
    PlayoutClock clock{10.0, from_seconds(1.0)};
    clock.frame_ready(5, from_seconds(1.2));  // deadline 1.5
    ASSERT_TRUE(clock.slack(5).has_value());
    EXPECT_EQ(*clock.slack(5), from_seconds(0.3));
    EXPECT_FALSE(clock.slack(6).has_value());
}

TEST(PlayoutClock, PlaybackMask) {
    PlayoutClock clock{10.0, from_seconds(1.0)};
    clock.frame_ready(0, from_seconds(0.9));
    clock.frame_ready(2, from_seconds(9.0));  // way late
    const auto mask = clock.playback_mask(3);
    EXPECT_EQ(mask, (espread::LossMask{true, false, false}));
}

TEST(PlayoutClock, RequiredStartupDelayCoversWorstFrame) {
    PlayoutClock clock{10.0, from_seconds(0.1)};
    clock.frame_ready(0, from_seconds(0.5));   // needs startup > 0.5
    clock.frame_ready(10, from_seconds(0.8));  // ideal offset 1.0 -> fine
    const auto required = clock.required_startup_delay(11);
    EXPECT_GT(required, from_seconds(0.5));
    EXPECT_LT(required, from_seconds(0.6));
    // Re-judging with that delay makes both frames on time.
    PlayoutClock retry{10.0, required};
    retry.frame_ready(0, from_seconds(0.5));
    retry.frame_ready(10, from_seconds(0.8));
    EXPECT_TRUE(retry.on_time(0));
    EXPECT_TRUE(retry.on_time(10));
}

TEST(PlayoutClock, InvalidConstruction) {
    EXPECT_THROW(PlayoutClock(0.0, 0), std::invalid_argument);
    EXPECT_THROW(PlayoutClock(24.0, -1), std::invalid_argument);
}

// ---- session integration -------------------------------------------------

SessionConfig lossless_config() {
    SessionConfig cfg;
    cfg.data_loss = {1.0, 0.0};
    cfg.feedback_loss = {1.0, 0.0};
    cfg.num_windows = 12;
    return cfg;
}

TEST(PlayoutSession, LosslessStreamIsFullyOnTime) {
    const SessionResult r = run_session(lossless_config());
    EXPECT_EQ(r.playout_total.unit_losses, 0u);
    EXPECT_EQ(r.playout_total.clf, 0u);
    // The paper's one-window start-up delay suffices with margin.
    EXPECT_LE(r.required_startup, espread::sim::from_seconds(1.0));
    EXPECT_GT(r.required_startup, 0);
}

TEST(PlayoutSession, PlayoutLossesIncludeWindowLosses) {
    SessionConfig cfg;
    cfg.num_windows = 30;
    cfg.seed = 5;
    const SessionResult r = run_session(cfg);
    // A frame late for its slot is an extra unit loss; losses can only grow
    // relative to the window-close accounting.
    EXPECT_GE(r.playout_total.unit_losses, r.total.unit_losses);
    // With the paper's timing parameters nothing arrives late, so the two
    // match exactly.
    EXPECT_EQ(r.playout_total.unit_losses, r.total.unit_losses);
    ASSERT_EQ(r.playout_window_clf.size(), r.windows.size());
    for (std::size_t k = 0; k < r.windows.size(); ++k) {
        EXPECT_EQ(r.playout_window_clf[k], r.windows[k].clf) << "window " << k;
    }
}

TEST(PlayoutSession, ShavedStartupDelayCreatesLateLosses) {
    SessionConfig tight = lossless_config();
    tight.playout_startup_windows = 0.05;  // 50 ms of buffer on 1 s windows
    const SessionResult r = run_session(tight);
    EXPECT_GT(r.playout_total.unit_losses, 0u);
    EXPECT_EQ(r.total.unit_losses, 0u);  // everything DID arrive...
    EXPECT_GT(r.required_startup,
              static_cast<espread::sim::SimTime>(0.05 * 1e9));
}

TEST(PlayoutSession, LargeRttPushesFramesPastTheirSlots) {
    SessionConfig slow = lossless_config();
    slow.playout_startup_windows = 0.2;
    slow.data_link.propagation_delay = espread::sim::from_millis(250);
    const SessionResult fast_net = run_session(lossless_config());
    const SessionResult slow_net = run_session(slow);
    EXPECT_GT(slow_net.required_startup, fast_net.required_startup);
}

TEST(PlayoutSession, InvalidStartupConfigThrows) {
    SessionConfig cfg = lossless_config();
    cfg.playout_startup_windows = 0.0;
    EXPECT_THROW(run_session(cfg), std::invalid_argument);
}

}  // namespace
