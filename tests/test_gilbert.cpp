#include "net/gilbert.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/stats.hpp"

namespace {

using espread::net::GilbertLoss;
using espread::net::GilbertParams;
using espread::sim::Rng;

TEST(Gilbert, StartsGoodSoFirstPacketSurvives) {
    GilbertLoss g{GilbertParams{1.0, 1.0}, Rng{1}};
    EXPECT_FALSE(g.drop_next());
    EXPECT_EQ(g.state(), GilbertLoss::State::kGood);
}

TEST(Gilbert, AlwaysBadOnceEntered) {
    // p_good = 0: leaves GOOD immediately; p_bad = 1: never recovers.
    GilbertLoss g{GilbertParams{0.0, 1.0}, Rng{2}};
    EXPECT_FALSE(g.drop_next());  // first packet sees initial GOOD state
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(g.drop_next());
}

TEST(Gilbert, PerfectNetworkNeverDrops) {
    GilbertLoss g{GilbertParams{1.0, 0.0}, Rng{3}};
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(g.drop_next());
}

TEST(Gilbert, StationaryLossFormula) {
    EXPECT_NEAR(GilbertLoss::stationary_loss({0.92, 0.6}), 0.08 / 0.48, 1e-12);
    EXPECT_NEAR(GilbertLoss::stationary_loss({0.92, 0.7}), 0.08 / 0.38, 1e-12);
    EXPECT_DOUBLE_EQ(GilbertLoss::stationary_loss({1.0, 1.0}), 0.0);
}

TEST(Gilbert, MeanBurstLengthFormula) {
    EXPECT_DOUBLE_EQ(GilbertLoss::mean_burst_length({0.92, 0.6}), 2.5);
    EXPECT_NEAR(GilbertLoss::mean_burst_length({0.92, 0.7}), 10.0 / 3.0, 1e-12);
}

TEST(Gilbert, EmpiricalLossMatchesStationary) {
    const GilbertParams params{0.92, 0.6};
    GilbertLoss g{params, Rng{42}};
    constexpr int kN = 200000;
    int lost = 0;
    for (int i = 0; i < kN; ++i) {
        if (g.drop_next()) ++lost;
    }
    EXPECT_NEAR(static_cast<double>(lost) / kN,
                GilbertLoss::stationary_loss(params), 0.01);
}

TEST(Gilbert, EmpiricalBurstLengthMatchesGeometric) {
    const GilbertParams params{0.92, 0.7};
    GilbertLoss g{params, Rng{43}};
    espread::sim::RunningStats bursts;
    int current = 0;
    for (int i = 0; i < 300000; ++i) {
        if (g.drop_next()) {
            ++current;
        } else if (current > 0) {
            bursts.add(current);
            current = 0;
        }
    }
    EXPECT_NEAR(bursts.mean(), GilbertLoss::mean_burst_length(params), 0.1);
}

TEST(Gilbert, LossesAreBurstyNotIndependent) {
    // With the paper's parameters, P(loss | previous loss) = p_bad = 0.6 is
    // far above the marginal loss rate (~0.17).
    GilbertLoss g{GilbertParams{0.92, 0.6}, Rng{44}};
    int after_loss = 0;
    int after_loss_lost = 0;
    bool prev = false;
    for (int i = 0; i < 200000; ++i) {
        const bool lost = g.drop_next();
        if (prev) {
            ++after_loss;
            if (lost) ++after_loss_lost;
        }
        prev = lost;
    }
    const double conditional =
        static_cast<double>(after_loss_lost) / static_cast<double>(after_loss);
    EXPECT_NEAR(conditional, 0.6, 0.02);
}

TEST(Gilbert, DeterministicPerSeed) {
    GilbertLoss a{GilbertParams{0.9, 0.5}, Rng{7}};
    GilbertLoss b{GilbertParams{0.9, 0.5}, Rng{7}};
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.drop_next(), b.drop_next());
}

TEST(Gilbert, RejectsInvalidProbabilities) {
    EXPECT_THROW(GilbertLoss(GilbertParams{-0.1, 0.5}, Rng{1}), std::invalid_argument);
    EXPECT_THROW(GilbertLoss(GilbertParams{0.5, 1.5}, Rng{1}), std::invalid_argument);
    EXPECT_THROW(GilbertLoss(GilbertParams{0.5, 0.5, -0.1, 1.0}, Rng{1}),
                 std::invalid_argument);
    EXPECT_THROW(GilbertLoss(GilbertParams{0.5, 0.5, 0.0, 1.1}, Rng{1}),
                 std::invalid_argument);
}

// ---- Gilbert–Elliott generalization (per-state drop probabilities) ----

TEST(GilbertElliott, ClassicDefaultsUnchangedByExtension) {
    // Same seed, classic params: the extended model must produce the exact
    // same stream (no extra RNG draws for degenerate emissions).
    GilbertLoss classic{GilbertParams{0.9, 0.5}, Rng{21}};
    GilbertLoss spelled{GilbertParams{0.9, 0.5, 0.0, 1.0}, Rng{21}};
    for (int i = 0; i < 2000; ++i) ASSERT_EQ(classic.drop_next(), spelled.drop_next());
}

TEST(GilbertElliott, GoodStateResidualLoss) {
    // Never leaves GOOD; drops at the GOOD-state residual rate.
    const GilbertParams params{1.0, 0.0, 0.05, 1.0};
    GilbertLoss g{params, Rng{22}};
    int lost = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        if (g.drop_next()) ++lost;
    }
    EXPECT_NEAR(static_cast<double>(lost) / kN, 0.05, 0.005);
    EXPECT_DOUBLE_EQ(GilbertLoss::stationary_loss(params), 0.05);
}

TEST(GilbertElliott, PartialBadStateDelivery) {
    // BAD drops only 80% of packets: the burst structure softens.
    const GilbertParams params{0.92, 0.6, 0.0, 0.8};
    GilbertLoss g{params, Rng{23}};
    constexpr int kN = 200000;
    int lost = 0;
    for (int i = 0; i < kN; ++i) {
        if (g.drop_next()) ++lost;
    }
    const double expected = GilbertLoss::stationary_loss(params);
    EXPECT_NEAR(expected, (0.08 / 0.48) * 0.8, 1e-12);
    EXPECT_NEAR(static_cast<double>(lost) / kN, expected, 0.01);
}

TEST(GilbertElliott, StationaryLossMixesBothStates) {
    const GilbertParams params{0.9, 0.5, 0.01, 0.9};
    const double pi_bad = 0.1 / 0.6;
    EXPECT_NEAR(GilbertLoss::stationary_loss(params),
                pi_bad * 0.9 + (1.0 - pi_bad) * 0.01, 1e-12);
}

// Equivalence contract of the batched sampler: expanding next_run() spans
// reproduces the drop_next() packet stream of an identically seeded chain,
// for both classic (degenerate) and Gilbert-Elliott emissions and across
// arbitrary max_packets caps.
TEST(GilbertNextRun, ExpandsToDropNextStream) {
    const GilbertParams cases[] = {
        {0.92, 0.6, 0.0, 1.0},   // classic: whole-sojourn runs
        {0.9, 0.5, 0.01, 0.9},   // Gilbert-Elliott: one-packet runs
        {0.92, 0.7, 0.0, 0.0},   // never loses
    };
    for (const GilbertParams& params : cases) {
        GilbertLoss scalar{params, Rng{99}};
        GilbertLoss batched{params, Rng{99}};
        Rng caps{7};
        constexpr std::size_t kPackets = 5000;
        std::vector<bool> expected;
        expected.reserve(kPackets);
        for (std::size_t i = 0; i < kPackets; ++i) {
            expected.push_back(scalar.drop_next());
        }
        std::vector<bool> got;
        got.reserve(kPackets);
        while (got.size() < kPackets) {
            const std::uint64_t cap =
                caps.uniform_int(1, kPackets - got.size());
            const GilbertLoss::Run run = batched.next_run(cap);
            ASSERT_GE(run.length, 1u);
            ASSERT_LE(run.length, cap);
            for (std::uint64_t i = 0; i < run.length; ++i) {
                got.push_back(run.lost);
            }
        }
        EXPECT_EQ(expected, got) << "p_bad=" << params.p_bad
                                 << " loss_bad=" << params.loss_bad;
    }
}

}  // namespace
