// Minimal recursive-descent JSON validator for tests.  Not a parser — it
// only answers "is this byte string well-formed JSON?" so the emitters'
// outputs can be checked without a JSON library dependency.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace espread::testing {

namespace detail {

struct JsonCursor {
    std::string_view s;
    std::size_t pos = 0;

    bool eof() const noexcept { return pos >= s.size(); }
    char peek() const noexcept { return eof() ? '\0' : s[pos]; }
    void skip_ws() noexcept {
        while (!eof() && std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }
    bool consume(char c) noexcept {
        if (peek() != c) return false;
        ++pos;
        return true;
    }
    bool consume_lit(std::string_view lit) noexcept {
        if (s.substr(pos, lit.size()) != lit) return false;
        pos += lit.size();
        return true;
    }
};

inline bool check_value(JsonCursor& c, int depth);

inline bool check_string(JsonCursor& c) {
    if (!c.consume('"')) return false;
    while (!c.eof()) {
        const char ch = c.s[c.pos++];
        if (ch == '"') return true;
        if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control
        if (ch == '\\') {
            if (c.eof()) return false;
            const char esc = c.s[c.pos++];
            switch (esc) {
                case '"': case '\\': case '/': case 'b': case 'f':
                case 'n': case 'r': case 't':
                    break;
                case 'u':
                    for (int i = 0; i < 4; ++i) {
                        if (c.eof() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(c.s[c.pos]))) {
                            return false;
                        }
                        ++c.pos;
                    }
                    break;
                default:
                    return false;
            }
        }
    }
    return false;  // unterminated
}

inline bool check_number(JsonCursor& c) {
    const std::size_t start = c.pos;
    c.consume('-');
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
    if (c.consume('.')) {
        if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
    }
    if (c.peek() == 'e' || c.peek() == 'E') {
        ++c.pos;
        if (c.peek() == '+' || c.peek() == '-') ++c.pos;
        if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.pos;
    }
    return c.pos > start;
}

inline bool check_object(JsonCursor& c, int depth) {
    if (!c.consume('{')) return false;
    c.skip_ws();
    if (c.consume('}')) return true;
    while (true) {
        c.skip_ws();
        if (!check_string(c)) return false;
        c.skip_ws();
        if (!c.consume(':')) return false;
        if (!check_value(c, depth + 1)) return false;
        c.skip_ws();
        if (c.consume('}')) return true;
        if (!c.consume(',')) return false;
    }
}

inline bool check_array(JsonCursor& c, int depth) {
    if (!c.consume('[')) return false;
    c.skip_ws();
    if (c.consume(']')) return true;
    while (true) {
        if (!check_value(c, depth + 1)) return false;
        c.skip_ws();
        if (c.consume(']')) return true;
        if (!c.consume(',')) return false;
    }
}

inline bool check_value(JsonCursor& c, int depth) {
    if (depth > 256) return false;
    c.skip_ws();
    switch (c.peek()) {
        case '{': return check_object(c, depth);
        case '[': return check_array(c, depth);
        case '"': return check_string(c);
        case 't': return c.consume_lit("true");
        case 'f': return c.consume_lit("false");
        case 'n': return c.consume_lit("null");
        default: return check_number(c);
    }
}

}  // namespace detail

/// True iff `text` is one complete well-formed JSON value.
inline bool is_valid_json(std::string_view text) {
    detail::JsonCursor c{text};
    if (!detail::check_value(c, 0)) return false;
    c.skip_ws();
    return c.eof();
}

}  // namespace espread::testing
