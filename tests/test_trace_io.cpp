#include "media/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "media/trace.hpp"

namespace {

using espread::media::Frame;
using espread::media::FrameType;
using espread::media::infer_gop_pattern;
using espread::media::read_trace;
using espread::media::write_trace;

TEST(TraceIo, ParsesClassicFormat) {
    std::istringstream in{
        "# a comment\n"
        "0 I 50000\n"
        "1 B 9000\n"
        "2 B 8000\n"
        "3 P 20000\n"
        "\n"
        "4 I 52000   # trailing comment\n"
        "5 B 9500\n"};
    const auto frames = read_trace(in);
    ASSERT_EQ(frames.size(), 6u);
    EXPECT_EQ(frames[0].type, FrameType::kI);
    EXPECT_EQ(frames[0].size_bits, 50000u);
    EXPECT_EQ(frames[3].type, FrameType::kP);
    EXPECT_EQ(frames[3].gop, 0u);
    EXPECT_EQ(frames[4].gop, 1u);        // new GOP at the second I
    EXPECT_EQ(frames[4].pos_in_gop, 0u);
    EXPECT_EQ(frames[5].pos_in_gop, 1u);
    EXPECT_EQ(frames[5].index, 5u);
}

TEST(TraceIo, RoundTripsThroughWriter) {
    espread::media::TraceGenerator gen{espread::media::movie_stats("Terminator"), 4};
    const auto original = gen.generate(5);
    std::stringstream buffer;
    write_trace(buffer, original);
    const auto loaded = read_trace(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].type, original[i].type);
        EXPECT_EQ(loaded[i].size_bits, original[i].size_bits);
        EXPECT_EQ(loaded[i].gop, original[i].gop);
        EXPECT_EQ(loaded[i].pos_in_gop, original[i].pos_in_gop);
    }
}

TEST(TraceIo, RejectsMalformedLines) {
    {
        std::istringstream in{"0 I\n"};  // missing size
        EXPECT_THROW(read_trace(in), std::invalid_argument);
    }
    {
        std::istringstream in{"0 X 100\n"};  // bad type letter
        EXPECT_THROW(read_trace(in), std::invalid_argument);
    }
    {
        std::istringstream in{"0 IP 100\n"};  // multi-letter type
        EXPECT_THROW(read_trace(in), std::invalid_argument);
    }
    {
        std::istringstream in{"0 I 0\n"};  // non-positive size
        EXPECT_THROW(read_trace(in), std::invalid_argument);
    }
    {
        std::istringstream in{"0 I 100 junk\n"};  // trailing fields
        EXPECT_THROW(read_trace(in), std::invalid_argument);
    }
}

TEST(TraceIo, EmptyInputYieldsNoFrames) {
    std::istringstream in{"# only comments\n\n"};
    EXPECT_TRUE(read_trace(in).empty());
}

TEST(TraceIo, InferGopPatternFromRegularTrace) {
    std::istringstream in{
        "0 I 100\n1 B 10\n2 B 10\n3 P 50\n"
        "4 I 100\n5 B 10\n6 B 10\n7 P 50\n"
        "8 I 100\n9 B 10\n"};  // partial trailing GOP
    const auto frames = read_trace(in);
    const auto pattern = infer_gop_pattern(frames);
    EXPECT_EQ(pattern.to_string(), "IBBP");
}

TEST(TraceIo, InferGopPatternRejectsIrregularTraces) {
    {
        std::istringstream in{"0 I 100\n1 B 10\n2 I 100\n3 P 50\n4 B 10\n"};
        const auto frames = read_trace(in);  // GOP1 longer than GOP0
        EXPECT_THROW(infer_gop_pattern(frames), std::invalid_argument);
    }
    {
        std::istringstream in{"0 I 100\n1 B 10\n2 P 10\n3 I 100\n4 P 10\n5 B 10\n"};
        const auto frames = read_trace(in);  // pattern flips B/P
        EXPECT_THROW(infer_gop_pattern(frames), std::invalid_argument);
    }
    {
        std::istringstream in{"0 B 10\n1 I 100\n"};
        const auto frames = read_trace(in);  // does not start with I
        EXPECT_THROW(infer_gop_pattern(frames), std::invalid_argument);
    }
    EXPECT_THROW(infer_gop_pattern({}), std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/espread_trace_test.txt";
    espread::media::TraceGenerator gen{
        espread::media::movie_stats("Star Wars"), 9};
    const auto original = gen.generate(3);
    espread::media::write_trace_file(path, original);
    const auto loaded = espread::media::read_trace_file(path);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded[7].size_bits, original[7].size_bits);
    EXPECT_THROW(espread::media::read_trace_file("/nonexistent/trace.txt"),
                 std::runtime_error);
}

}  // namespace
