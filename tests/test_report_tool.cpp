// espread_report toolchain tests, driven in-process.
//
// The CLI is a thin shell over espread::report; these tests pin the JSON
// reader (a loaded series compares equal, snapshot for snapshot, to the
// registry that wrote it), the objective-spec grammar, the sparkline
// renderer, and — the CI contract — the exit codes: 0 for a healthy
// series, 2 when an SLO objective breaches, 1 on usage or parse errors.
#include "report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/config.hpp"
#include "engine/engine.hpp"
#include "exp/json.hpp"
#include "json_read.hpp"
#include "obs/telemetry/slo.hpp"
#include "obs/telemetry/snapshot.hpp"

namespace {

using espread::engine::EngineConfig;
using espread::engine::ShardedEngine;
using espread::obs::telemetry::SloObjective;
using espread::obs::telemetry::SloSignal;
using espread::obs::telemetry::SnapshotRegistry;
using espread::report::LoadedSeries;
using espread::report::ReportOptions;
using espread::report::ReportResult;

/// A small but loss-rich engine run with telemetry on; returns the
/// rendered series JSON.  Fig. 8 defaults make the CLF tail heavy, so
/// the default p99-CLF<=2 objective breaches — the fixture both exit
/// paths are tested against.
std::string lossy_series_json() {
    EngineConfig cfg;
    cfg.sessions = 48;
    cfg.shards = 2;
    cfg.churn.enabled = true;
    cfg.governor.enabled = true;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epoch_steps = 8;
    cfg.seed = 11;
    ShardedEngine engine(cfg);
    engine.run(48);
    return snapshot_series_json(*engine.telemetry());
}

std::string write_fixture(const std::string& name, const std::string& text) {
    const std::string path = testing::TempDir() + name;
    espread::exp::write_text_file(path, text);
    return path;
}

TEST(ReportJson, ParsesScalarsContainersAndRejectsGarbage) {
    using espread::report::JsonValue;
    using espread::report::parse_json;
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(
        R"({"a":1,"b":[true,null,"x\n"],"c":{"d":2.5},"e":-3})", v, &err))
        << err;
    EXPECT_EQ(v.at("a").as_u64(), 1u);
    ASSERT_EQ(v.at("b").array.size(), 3u);
    EXPECT_TRUE(v.at("b").array[0].boolean);
    EXPECT_EQ(v.at("b").array[2].string, "x\n");
    EXPECT_DOUBLE_EQ(v.at("c").at("d").number, 2.5);
    EXPECT_EQ(v.at("e").as_u64(), 0u);  // negatives clamp to 0
    EXPECT_EQ(v.at("missing").type, JsonValue::Type::kNull);

    EXPECT_FALSE(parse_json("{\"a\":}", v, &err));
    EXPECT_FALSE(parse_json("[1,2", v, &err));
    EXPECT_FALSE(parse_json("{} trailing", v, &err));
    EXPECT_FALSE(parse_json("", v, &err));
}

// Round trip: serialize a real registry, load it back, compare every
// snapshot with operator== (counters and all eight histograms).
TEST(ReportLoad, LoadedSeriesEqualsTheRegistryThatWroteIt) {
    EngineConfig cfg;
    cfg.sessions = 32;
    cfg.shards = 2;
    cfg.churn.enabled = true;
    cfg.governor.enabled = true;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epoch_steps = 4;
    cfg.seed = 7;
    ShardedEngine engine(cfg);
    engine.run(20);
    const SnapshotRegistry* reg = engine.telemetry();
    ASSERT_NE(reg, nullptr);
    ASSERT_EQ(reg->snapshots().size(), 5u);

    LoadedSeries series;
    std::string err;
    ASSERT_TRUE(espread::report::load_series(snapshot_series_json(*reg),
                                             series, &err))
        << err;
    EXPECT_EQ(series.epoch_steps, 4u);
    ASSERT_EQ(series.snapshots.size(), reg->snapshots().size());
    for (std::size_t i = 0; i < series.snapshots.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(series.snapshots[i], reg->snapshots()[i]);
    }
}

TEST(ReportLoad, RejectsWrongFormatAndInconsistentTotals) {
    LoadedSeries series;
    std::string err;
    EXPECT_FALSE(espread::report::load_series(
        R"({"format":2,"epoch_steps":4,"epochs":0,"snapshots":[]})", series,
        &err));
    EXPECT_FALSE(espread::report::load_series(
        R"({"format":1,"epoch_steps":0,"epochs":0,"snapshots":[]})", series,
        &err));
    EXPECT_FALSE(espread::report::load_series(
        R"({"format":1,"epoch_steps":4,"epochs":2,"snapshots":[]})", series,
        &err));
    // A histogram whose bucket counts disagree with its "total".
    EXPECT_FALSE(espread::report::load_series(
        R"({"format":1,"epoch_steps":4,"epochs":1,"snapshots":[
             {"epoch":0,"step":4,
              "totals":{"windows":1,"unit_losses":0,"loss_windows":0,
                        "idle_windows":0,"acks_delivered":0,"acks_lost":0,
                        "sessions_spawned":0,"sessions_completed":0,
                        "governor_windows":[1,0,0,0]},
              "delta":{"windows":1,"unit_losses":0,"loss_windows":0,
                       "idle_windows":0,"acks_delivered":0,"acks_lost":0,
                       "sessions_spawned":0,"sessions_completed":0,
                       "governor_windows":[1,0,0,0]},
              "clf":{"total":5,"buckets":[[0,1]]},
              "loss_run":{"total":0,"buckets":[]},
              "bound":{"total":0,"buckets":[]},
              "governor_dwell":{"total":0,"buckets":[]},
              "clf_delta":{"total":0,"buckets":[]},
              "loss_run_delta":{"total":0,"buckets":[]},
              "bound_delta":{"total":0,"buckets":[]},
              "governor_dwell_delta":{"total":0,"buckets":[]}}]})",
        series, &err));
    EXPECT_NE(err.find("total"), std::string::npos);
}

TEST(ReportSpec, ObjectiveGrammarParsesAndValidates) {
    SloObjective o;
    std::string err;
    ASSERT_TRUE(espread::report::parse_objective_spec(
        "dwell_tail,governor_dwell,32,0.9,2,16,10,4", o, &err))
        << err;
    EXPECT_EQ(o.name, "dwell_tail");
    EXPECT_EQ(o.signal, SloSignal::kGovernorDwell);
    EXPECT_EQ(o.threshold, 32u);
    EXPECT_DOUBLE_EQ(o.quantile, 0.9);
    EXPECT_EQ(o.fast_window, 2u);
    EXPECT_EQ(o.slow_window, 16u);
    EXPECT_DOUBLE_EQ(o.fast_burn, 10.0);
    EXPECT_DOUBLE_EQ(o.slow_burn, 4.0);

    ASSERT_TRUE(espread::report::parse_objective_spec("t,clf,2", o, &err));
    EXPECT_DOUBLE_EQ(o.quantile, 0.99);  // defaults kept

    EXPECT_FALSE(espread::report::parse_objective_spec("t,latency,2", o, &err));
    EXPECT_FALSE(espread::report::parse_objective_spec("t,clf", o, &err));
    EXPECT_FALSE(espread::report::parse_objective_spec("t,clf,x", o, &err));
    EXPECT_FALSE(
        espread::report::parse_objective_spec("t,clf,2,1.5", o, &err));
    EXPECT_FALSE(
        espread::report::parse_objective_spec("t,clf,2,0.99,64,4", o, &err));
}

TEST(ReportRender, SparklineScalesToSeriesMax) {
    EXPECT_EQ(espread::report::sparkline({0, 1, 2, 4}),
              "▁▂▄█");
    EXPECT_EQ(espread::report::sparkline({0, 0, 0}),
              "▁▁▁");
    EXPECT_EQ(espread::report::sparkline({}), "");
}

TEST(ReportRender, RendersTablesSparklinesAndVerdict) {
    ReportOptions opt;  // default objective: p99 CLF <= 2
    ReportResult result;
    std::string err;
    ASSERT_TRUE(espread::report::render_report(lossy_series_json(), opt,
                                               result, &err))
        << err;
    EXPECT_NE(result.text.find("espread fleet report"), std::string::npos);
    EXPECT_NE(result.text.find("per-epoch deltas"), std::string::npos);
    EXPECT_NE(result.text.find("governor occupancy"), std::string::npos);
    EXPECT_NE(result.text.find("SLO health"), std::string::npos);
    // Fig. 8 losses blow the strict default objective.
    EXPECT_TRUE(result.breached);
    EXPECT_NE(result.text.find("verdict: BREACH"), std::string::npos);
}

TEST(ReportCli, ExitCodesCoverHealthyBreachedAndErrorPaths) {
    const std::string path =
        write_fixture("report_series.json", lossy_series_json());
    std::string out;

    // Breached fixture + default strict objective -> exit 2 (the CI gate).
    EXPECT_EQ(espread::report::run_report_cli({path}, out), 2);
    EXPECT_NE(out.find("verdict: BREACH"), std::string::npos);

    // A loose objective the same series satisfies -> exit 0.
    out.clear();
    EXPECT_EQ(espread::report::run_report_cli(
                  {path, "--slo", "clf_loose,clf,4096,0.99", "--prometheus"},
                  out),
              0);
    EXPECT_NE(out.find("verdict: PASS"), std::string::npos);
    EXPECT_NE(out.find("espread_windows_total"), std::string::npos);

    // Usage and input errors -> exit 1.
    out.clear();
    EXPECT_EQ(espread::report::run_report_cli({}, out), 1);
    EXPECT_EQ(espread::report::run_report_cli({path, "--bogus"}, out), 1);
    EXPECT_EQ(espread::report::run_report_cli({path, "--slo"}, out), 1);
    EXPECT_EQ(
        espread::report::run_report_cli({path, "--slo", "x,clf"}, out), 1);
    EXPECT_EQ(espread::report::run_report_cli({"/nonexistent.json"}, out), 1);
    const std::string bad =
        write_fixture("report_bad.json", "{\"format\":1,");
    EXPECT_EQ(espread::report::run_report_cli({bad}, out), 1);
}

}  // namespace
