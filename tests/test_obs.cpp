// Observability layer: TraceRecorder ring semantics, Chrome trace export
// validity, MetricsRegistry merge determinism, and the consistency of the
// metrics a real session collects.
#include "obs/trace.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json.hpp"
#include "obs/metrics.hpp"
#include "protocol/session.hpp"
#include "json_check.hpp"

namespace sim = espread::sim;

using espread::obs::Actor;
using espread::obs::EventType;
using espread::obs::MetricsRegistry;
using espread::obs::TraceEvent;
using espread::obs::TraceRecorder;
using espread::testing::is_valid_json;

namespace {

TraceEvent make_event(sim::SimTime t, Actor actor, std::uint64_t seq) {
    TraceEvent e;
    e.time = t;
    e.actor = actor;
    e.seq = seq;
    return e;
}

TEST(TraceRecorder, KeepsEventsInRecordOrder) {
    TraceRecorder rec(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
        rec.record(make_event(static_cast<sim::SimTime>(i), Actor::kServer, i));
    }
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.evicted(), 0u);
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].seq, i);
}

TEST(TraceRecorder, RingEvictsOldestFirst) {
    TraceRecorder rec(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        rec.record(make_event(static_cast<sim::SimTime>(i), Actor::kClient, i));
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.evicted(), 6u);
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    // The four youngest survive, oldest-first.
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].seq, 6 + i);
}

TEST(TraceRecorder, ClearResets) {
    TraceRecorder rec(2);
    rec.record(make_event(1, Actor::kServer, 1));
    rec.record(make_event(2, Actor::kServer, 2));
    rec.record(make_event(3, Actor::kServer, 3));
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.evicted(), 0u);
    EXPECT_TRUE(rec.events().empty());
    rec.record(make_event(4, Actor::kServer, 4));
    ASSERT_EQ(rec.events().size(), 1u);
    EXPECT_EQ(rec.events()[0].seq, 4u);
}

TEST(TraceRecorder, RejectsZeroCapacity) {
    EXPECT_THROW(TraceRecorder(0), std::invalid_argument);
}

// Extracts the ts values of every instant event, grouped by track.  Relies
// on the exporter's fixed key order ("tid" immediately followed by "ts");
// metadata events carry no "ts" and are skipped.
std::map<long long, std::vector<double>> per_track_timestamps(
    const std::string& json) {
    std::map<long long, std::vector<double>> out;
    std::size_t pos = 0;
    while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
        pos += 6;
        char* end = nullptr;
        const long long tid = std::strtoll(json.c_str() + pos, &end, 10);
        std::size_t next = static_cast<std::size_t>(end - json.c_str());
        if (json.compare(next, 6, ",\"ts\":") == 0) {
            out[tid].push_back(std::strtod(json.c_str() + next + 6, nullptr));
        }
        pos = next;
    }
    return out;
}

TEST(ChromeTrace, EmptyRecordingIsValidJson) {
    const std::string json = espread::obs::chrome_trace_json({});
    EXPECT_TRUE(is_valid_json(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(ChromeTrace, SortsInterleavedEventsByTime) {
    std::vector<TraceEvent> events;
    events.push_back(make_event(sim::from_millis(5), Actor::kServer, 2));
    events.push_back(make_event(sim::from_millis(1), Actor::kServer, 1));
    events.push_back(make_event(sim::from_millis(3), Actor::kClient, 3));
    const std::string json = espread::obs::chrome_trace_json(events);
    EXPECT_TRUE(is_valid_json(json));
    const auto tracks = per_track_timestamps(json);
    // Server track: 1 ms then 5 ms (microsecond units).
    const auto server = tracks.at(static_cast<long long>(Actor::kServer) + 1);
    ASSERT_EQ(server.size(), 2u);
    EXPECT_DOUBLE_EQ(server[0], 1000.0);
    EXPECT_DOUBLE_EQ(server[1], 5000.0);
}

TEST(ChromeTrace, TracedSessionExportsValidMonotoneTimeline) {
    espread::proto::SessionConfig cfg;
    cfg.num_windows = 20;
    cfg.seed = 11;
    TraceRecorder rec(1 << 18);
    cfg.trace = &rec;
    espread::proto::run_session(cfg);

    ASSERT_GT(rec.size(), 0u);
    EXPECT_EQ(rec.evicted(), 0u) << "capacity too small for the test session";

    // Every event class the session emits should actually show up.
    std::map<EventType, std::size_t> by_type;
    for (const TraceEvent& e : rec.events()) ++by_type[e.type];
    EXPECT_GT(by_type[EventType::kPacketSent], 0u);
    EXPECT_GT(by_type[EventType::kPacketLost], 0u);
    EXPECT_GT(by_type[EventType::kFrameComplete], 0u);
    EXPECT_GT(by_type[EventType::kWindowFinalized], 0u);
    EXPECT_GT(by_type[EventType::kAckSent], 0u);
    EXPECT_GT(by_type[EventType::kEstimatorUpdate], 0u);

    const std::string json = espread::obs::chrome_trace_json(rec.events());
    ASSERT_TRUE(is_valid_json(json));

    const auto tracks = per_track_timestamps(json);
    EXPECT_GE(tracks.size(), 3u);  // server, data channel, client at least
    for (const auto& [tid, ts] : tracks) {
        for (std::size_t i = 1; i < ts.size(); ++i) {
            ASSERT_LE(ts[i - 1], ts[i])
                << "track " << tid << " not monotone at event " << i;
        }
    }
}

TEST(ChromeTrace, WritesLoadableFile) {
    const std::string path = ::testing::TempDir() + "/espread_trace_test.json";
    std::vector<TraceEvent> events;
    events.push_back(make_event(sim::from_millis(2), Actor::kDataChannel, 7));
    espread::obs::write_chrome_trace_file(path, events);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(is_valid_json(ss.str()));
    EXPECT_NE(ss.str().find("\"PacketSent\""), std::string::npos);
}

TEST(MetricsRegistry, CountersAccumulate) {
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("missing"), 0u);
    m.add_counter("x");
    m.add_counter("x", 4);
    EXPECT_EQ(m.counter("x"), 5u);
    EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, HistogramsCreatedOnFirstUse) {
    MetricsRegistry m;
    EXPECT_EQ(m.find_histogram("h"), nullptr);
    m.histogram("h").add(3);
    m.histogram("h").add(3);
    ASSERT_NE(m.find_histogram("h"), nullptr);
    EXPECT_EQ(m.find_histogram("h")->total(), 2u);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistograms) {
    MetricsRegistry a, b;
    a.add_counter("shared", 1);
    a.add_counter("only_a", 2);
    a.histogram("h").add(1);
    b.add_counter("shared", 10);
    b.add_counter("only_b", 20);
    b.histogram("h").add(2);
    b.histogram("g").add(3);
    a.merge(b);
    EXPECT_EQ(a.counter("shared"), 11u);
    EXPECT_EQ(a.counter("only_a"), 2u);
    EXPECT_EQ(a.counter("only_b"), 20u);
    EXPECT_EQ(a.find_histogram("h")->total(), 2u);
    EXPECT_EQ(a.find_histogram("g")->total(), 1u);
}

std::string metrics_json(const MetricsRegistry& m) {
    espread::exp::JsonWriter j;
    espread::obs::append_metrics(j, m);
    return j.str();
}

TEST(MetricsRegistry, SerializationIndependentOfInsertionOrder) {
    MetricsRegistry a;
    a.add_counter("zeta", 1);
    a.add_counter("alpha", 2);
    a.histogram("late").add(1);
    a.histogram("early").add(2);

    MetricsRegistry b;
    b.histogram("early").add(2);
    b.histogram("late").add(1);
    b.add_counter("alpha", 2);
    b.add_counter("zeta", 1);

    EXPECT_EQ(metrics_json(a), metrics_json(b));
    EXPECT_TRUE(is_valid_json(metrics_json(a)));
}

TEST(SessionMetrics, ConsistentWithSessionResult) {
    espread::proto::SessionConfig cfg;
    cfg.num_windows = 30;
    cfg.seed = 5;
    cfg.collect_metrics = true;
    const espread::proto::SessionResult r = espread::proto::run_session(cfg);

    ASSERT_FALSE(r.metrics.empty());
    EXPECT_EQ(r.metrics.counter("data_packets_sent"), r.data_channel.sent);
    EXPECT_EQ(r.metrics.counter("data_packets_dropped"),
              r.data_channel.dropped);
    EXPECT_EQ(r.metrics.counter("acks_sent"), r.acks_sent);
    EXPECT_EQ(r.metrics.counter("acks_applied"), r.acks_applied);

    std::uint64_t retx = 0;
    for (const auto& w : r.windows) retx += w.retransmissions;
    EXPECT_EQ(r.metrics.counter("retransmissions"), retx);

    // Every lost packet belongs to exactly one loss run.
    const auto* runs = r.metrics.find_histogram("loss_run_length");
    ASSERT_NE(runs, nullptr);
    std::uint64_t lost_in_runs = 0;
    for (const auto& [len, count] : runs->bins()) {
        lost_in_runs += static_cast<std::uint64_t>(len) * count;
    }
    EXPECT_EQ(lost_in_runs, r.data_channel.dropped);

    const auto* clf = r.metrics.find_histogram("window_clf");
    ASSERT_NE(clf, nullptr);
    EXPECT_EQ(clf->total(), r.windows.size());
}

TEST(SessionMetrics, OffByDefault) {
    espread::proto::SessionConfig cfg;
    cfg.num_windows = 3;
    const espread::proto::SessionResult r = espread::proto::run_session(cfg);
    EXPECT_TRUE(r.metrics.empty());
}

}  // namespace
