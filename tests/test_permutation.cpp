#include "core/permutation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/interleaver.hpp"
#include "sim/rng.hpp"

namespace {

using espread::Permutation;

TEST(Permutation, IdentityMapsEachSlotToItself) {
    const Permutation p = Permutation::identity(5);
    EXPECT_EQ(p.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(p.at(i), i);
    EXPECT_TRUE(p.is_identity());
}

TEST(Permutation, DefaultConstructedIsEmpty) {
    const Permutation p;
    EXPECT_EQ(p.size(), 0u);
    EXPECT_TRUE(p.is_identity());
}

TEST(Permutation, RejectsDuplicates) {
    EXPECT_THROW(Permutation({0, 1, 1}), std::invalid_argument);
}

TEST(Permutation, RejectsOutOfRangeValues) {
    EXPECT_THROW(Permutation({0, 1, 3}), std::invalid_argument);
}

TEST(Permutation, AtThrowsOutOfRange) {
    const Permutation p = Permutation::identity(3);
    EXPECT_THROW(static_cast<void>(p.at(3)), std::out_of_range);
}

TEST(Permutation, InverseRoundTrips) {
    const Permutation p({2, 0, 3, 1});
    const Permutation inv = p.inverse();
    EXPECT_TRUE(p.compose(inv).is_identity());
    EXPECT_TRUE(inv.compose(p).is_identity());
    for (std::size_t slot = 0; slot < p.size(); ++slot) {
        EXPECT_EQ(inv.at(p.at(slot)), slot);
    }
}

TEST(Permutation, ComposeAppliesRightThenLeft) {
    const Permutation f({1, 2, 0});
    const Permutation g({2, 0, 1});
    const Permutation fg = f.compose(g);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(fg.at(i), f.at(g.at(i)));
}

TEST(Permutation, ComposeSizeMismatchThrows) {
    EXPECT_THROW(Permutation::identity(3).compose(Permutation::identity(4)),
                 std::invalid_argument);
}

TEST(Permutation, ApplyReordersIntoTransmissionOrder) {
    const Permutation p({2, 0, 1});
    const std::vector<std::string> items{"a", "b", "c"};
    const auto tx = p.apply(items);
    EXPECT_EQ(tx, (std::vector<std::string>{"c", "a", "b"}));
}

TEST(Permutation, UnapplyInvertsApply) {
    const Permutation p({3, 1, 0, 2});
    const std::vector<int> items{10, 20, 30, 40};
    EXPECT_EQ(p.unapply(p.apply(items)), items);
    EXPECT_EQ(p.apply(p.unapply(items)), items);
}

TEST(Permutation, ApplySizeMismatchThrows) {
    const Permutation p = Permutation::identity(3);
    const std::vector<int> wrong{1, 2};
    EXPECT_THROW(p.apply(wrong), std::invalid_argument);
    EXPECT_THROW(p.unapply(wrong), std::invalid_argument);
}

TEST(Permutation, EqualityComparesImages) {
    EXPECT_EQ(Permutation({0, 1}), Permutation({0, 1}));
    EXPECT_NE(Permutation({0, 1}), Permutation({1, 0}));
}

TEST(Permutation, Table1StringMatchesPaper) {
    // Paper Table 1, permuted row: "01 06 11 16 04 09 14 02 07 12 17 05 10 15 03 08 13"
    const Permutation p = espread::cyclic_stride_order(17, 5, 0);
    EXPECT_EQ(p.to_string_one_based(),
              "01 06 11 16 04 09 14 02 07 12 17 05 10 15 03 08 13");
}

// scatter_set_bits (the engine's bit-packed unapply) must place each set
// transmission bit at its playback index exactly like unapply() does for a
// bool vector, across word-boundary sizes and random masks.
TEST(Permutation, ScatterSetBitsMatchesUnapply) {
    espread::sim::Rng rng(5);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{17}, std::size_t{64}, std::size_t{65},
          std::size_t{130}}) {
        // residue_class_order accepts any stride in [1, n] (no coprimality
        // requirement), so it exercises irregular images at every size.
        const Permutation p =
            espread::residue_class_order(n, n > 4 ? 3 : 1);
        const std::size_t nwords = (n + 63) / 64;
        for (int trial = 0; trial < 40; ++trial) {
            std::vector<bool> tx_lost(n);
            std::vector<std::uint64_t> src(nwords, 0);
            for (std::size_t i = 0; i < n; ++i) {
                if (rng.bernoulli(0.3)) {
                    tx_lost[i] = true;
                    src[i >> 6] |= std::uint64_t{1} << (i & 63);
                }
            }
            std::vector<std::uint64_t> dst(nwords, 0);
            p.scatter_set_bits(src.data(), dst.data(), nwords);
            const std::vector<bool> playback_lost = p.unapply(tx_lost);
            for (std::size_t i = 0; i < n; ++i) {
                const bool bit = ((dst[i >> 6] >> (i & 63)) & 1u) != 0;
                ASSERT_EQ(bit, playback_lost[i])
                    << "n=" << n << " trial=" << trial << " slot=" << i;
            }
        }
    }
}

}  // namespace
