#include "core/permutation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/interleaver.hpp"

namespace {

using espread::Permutation;

TEST(Permutation, IdentityMapsEachSlotToItself) {
    const Permutation p = Permutation::identity(5);
    EXPECT_EQ(p.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(p.at(i), i);
    EXPECT_TRUE(p.is_identity());
}

TEST(Permutation, DefaultConstructedIsEmpty) {
    const Permutation p;
    EXPECT_EQ(p.size(), 0u);
    EXPECT_TRUE(p.is_identity());
}

TEST(Permutation, RejectsDuplicates) {
    EXPECT_THROW(Permutation({0, 1, 1}), std::invalid_argument);
}

TEST(Permutation, RejectsOutOfRangeValues) {
    EXPECT_THROW(Permutation({0, 1, 3}), std::invalid_argument);
}

TEST(Permutation, AtThrowsOutOfRange) {
    const Permutation p = Permutation::identity(3);
    EXPECT_THROW(static_cast<void>(p.at(3)), std::out_of_range);
}

TEST(Permutation, InverseRoundTrips) {
    const Permutation p({2, 0, 3, 1});
    const Permutation inv = p.inverse();
    EXPECT_TRUE(p.compose(inv).is_identity());
    EXPECT_TRUE(inv.compose(p).is_identity());
    for (std::size_t slot = 0; slot < p.size(); ++slot) {
        EXPECT_EQ(inv.at(p.at(slot)), slot);
    }
}

TEST(Permutation, ComposeAppliesRightThenLeft) {
    const Permutation f({1, 2, 0});
    const Permutation g({2, 0, 1});
    const Permutation fg = f.compose(g);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(fg.at(i), f.at(g.at(i)));
}

TEST(Permutation, ComposeSizeMismatchThrows) {
    EXPECT_THROW(Permutation::identity(3).compose(Permutation::identity(4)),
                 std::invalid_argument);
}

TEST(Permutation, ApplyReordersIntoTransmissionOrder) {
    const Permutation p({2, 0, 1});
    const std::vector<std::string> items{"a", "b", "c"};
    const auto tx = p.apply(items);
    EXPECT_EQ(tx, (std::vector<std::string>{"c", "a", "b"}));
}

TEST(Permutation, UnapplyInvertsApply) {
    const Permutation p({3, 1, 0, 2});
    const std::vector<int> items{10, 20, 30, 40};
    EXPECT_EQ(p.unapply(p.apply(items)), items);
    EXPECT_EQ(p.apply(p.unapply(items)), items);
}

TEST(Permutation, ApplySizeMismatchThrows) {
    const Permutation p = Permutation::identity(3);
    const std::vector<int> wrong{1, 2};
    EXPECT_THROW(p.apply(wrong), std::invalid_argument);
    EXPECT_THROW(p.unapply(wrong), std::invalid_argument);
}

TEST(Permutation, EqualityComparesImages) {
    EXPECT_EQ(Permutation({0, 1}), Permutation({0, 1}));
    EXPECT_NE(Permutation({0, 1}), Permutation({1, 0}));
}

TEST(Permutation, Table1StringMatchesPaper) {
    // Paper Table 1, permuted row: "01 06 11 16 04 09 14 02 07 12 17 05 10 15 03 08 13"
    const Permutation p = espread::cyclic_stride_order(17, 5, 0);
    EXPECT_EQ(p.to_string_one_based(),
              "01 06 11 16 04 09 14 02 07 12 17 05 10 15 03 08 13");
}

}  // namespace
