#include "media/mpeg.hpp"

#include <gtest/gtest.h>

#include "poset/layered.hpp"

namespace {

using espread::media::anchor_frames;
using espread::media::build_dependency_poset;
using espread::media::FrameType;
using espread::media::GopBoundary;
using espread::media::GopPattern;
using espread::media::window_frames;
using espread::poset::Poset;

TEST(WindowFrames, EnumeratesGopCoordinates) {
    const GopPattern g = GopPattern::parse("IBBP");
    const auto frames = window_frames(g, 2);
    ASSERT_EQ(frames.size(), 8u);
    EXPECT_EQ(frames[0].type, FrameType::kI);
    EXPECT_EQ(frames[3].type, FrameType::kP);
    EXPECT_EQ(frames[4].type, FrameType::kI);
    EXPECT_EQ(frames[4].gop, 1u);
    EXPECT_EQ(frames[4].pos_in_gop, 0u);
    EXPECT_EQ(frames[7].index, 7u);
}

TEST(DependencyPoset, PFramesChainOffAnchors) {
    // IBBPBB: P(3) depends on I(0); B(1),B(2) on I(0) and P(3).
    const Poset p = build_dependency_poset(GopPattern::parse("IBBPBB"), 1);
    EXPECT_TRUE(p.depends_on(3, 0));
    EXPECT_TRUE(p.depends_on(1, 0));
    EXPECT_TRUE(p.depends_on(1, 3));
    EXPECT_TRUE(p.depends_on(2, 3));
    // Trailing Bs (4, 5) have no forward anchor in a single-GOP window.
    EXPECT_TRUE(p.depends_on(4, 3));
    EXPECT_FALSE(p.depends_on(4, 0) && p.covers(4, 0));  // via P only
    EXPECT_EQ(p.direct_prerequisites(4), (std::vector<std::size_t>{3}));
}

TEST(DependencyPoset, MultiPFramesChainTransitively) {
    // IBBPBBPBB: P(6) depends on P(3) depends on I(0).
    const Poset p = build_dependency_poset(GopPattern::parse("IBBPBBPBB"), 1);
    EXPECT_EQ(p.direct_prerequisites(6), (std::vector<std::size_t>{3}));
    EXPECT_TRUE(p.depends_on(6, 0));
    EXPECT_EQ(p.longest_chain_length(), 4u);  // I < P1 < P2 < B
}

TEST(DependencyPoset, OpenGopCrossesBoundary) {
    // Two GOPs of IBBP: trailing Bs?  Pattern IBBP has no trailing B; use
    // IPBB so positions 2,3 trail the last anchor P(1).
    const GopPattern g = GopPattern::parse("IPBB");
    const Poset open = build_dependency_poset(g, 2, GopBoundary::kOpen);
    // Trailing B(2) of GOP 0 depends on next GOP's I (index 4).
    EXPECT_TRUE(open.depends_on(2, 4));
    EXPECT_TRUE(open.depends_on(3, 4));
    // Final GOP's trailing Bs have no successor GOP.
    EXPECT_EQ(open.direct_prerequisites(6), (std::vector<std::size_t>{5}));

    const Poset closed = build_dependency_poset(g, 2, GopBoundary::kClosed);
    EXPECT_FALSE(closed.depends_on(2, 4));
    EXPECT_FALSE(closed.depends_on(3, 4));
}

TEST(DependencyPoset, AnchorsAreExactlyIAndP) {
    const GopPattern g = GopPattern::standard(12);
    const Poset p = build_dependency_poset(g, 2);
    const auto anchors = p.anchors();
    EXPECT_EQ(anchors, anchor_frames(g, 2));
    EXPECT_EQ(anchors.size(), 8u);  // 4 anchors per GOP x 2
}

TEST(DependencyPoset, LayeringMatchesFigure3) {
    // W = 2 GOPs of GOP-12: layers I, P1, P2, P3, then all 16 B frames.
    const GopPattern g = GopPattern::standard(12);
    const Poset p = build_dependency_poset(g, 2);
    const auto layers = espread::poset::layer_members(p);
    ASSERT_EQ(layers.size(), 5u);
    EXPECT_EQ(layers[0], (std::vector<std::size_t>{0, 12}));    // I frames
    EXPECT_EQ(layers[1], (std::vector<std::size_t>{3, 15}));    // first P
    EXPECT_EQ(layers[2], (std::vector<std::size_t>{6, 18}));    // second P
    EXPECT_EQ(layers[3], (std::vector<std::size_t>{9, 21}));    // third P
    EXPECT_EQ(layers[4].size(), 16u);                           // all B frames
}

TEST(DependencyPoset, LinearExtensionSendsAnchorsBeforeDependents) {
    const GopPattern g = GopPattern::standard(12);
    const Poset p = build_dependency_poset(g, 2);
    const auto plan = espread::poset::build_layered_plan(p, 4);
    EXPECT_TRUE(p.is_linear_extension(plan.flattened()));
}

TEST(DependencyPoset, SingleFrameGop) {
    // GOP "I": all frames independent anchors?  No frame depends on any
    // other, so there are no anchors at all and one non-critical layer.
    const Poset p = build_dependency_poset(GopPattern::parse("I"), 3);
    EXPECT_TRUE(p.anchors().empty());
    EXPECT_EQ(espread::poset::layer_members(p).size(), 1u);
}

}  // namespace
