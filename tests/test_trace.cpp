#include "media/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using espread::media::audio_trace;
using espread::media::AudioLdu;
using espread::media::FrameType;
using espread::media::max_gop_bits;
using espread::media::mjpeg_trace;
using espread::media::movie_catalog;
using espread::media::movie_stats;
using espread::media::TraceGenerator;

TEST(MovieCatalog, ListsTheFivePaperTraces) {
    const auto& catalog = movie_catalog();
    ASSERT_EQ(catalog.size(), 5u);
    EXPECT_EQ(movie_stats("Star Wars").max_gop_bits, 932'710u);
    EXPECT_EQ(movie_stats("Silence of the Lambs").max_gop_bits, 462'056u);
    EXPECT_EQ(movie_stats("Terminator").max_gop_bits, 407'512u);
    EXPECT_EQ(movie_stats("Beauty and the Beast").max_gop_bits, 769'376u);
    EXPECT_EQ(movie_stats("Beauty and the Beast").gop_size, 15u);
    EXPECT_DOUBLE_EQ(movie_stats("Jurassic Park").fps, 24.0);
}

TEST(MovieCatalog, UnknownNameThrows) {
    EXPECT_THROW(movie_stats("Titanic"), std::invalid_argument);
}

TEST(TraceGenerator, ProducesPatternConformantFrames) {
    TraceGenerator gen{movie_stats("Jurassic Park"), 1};
    const auto frames = gen.generate(3);
    ASSERT_EQ(frames.size(), 36u);
    for (const auto& f : frames) {
        EXPECT_EQ(f.type, gen.pattern().type_at(f.pos_in_gop));
        EXPECT_GT(f.size_bits, 0u);
        EXPECT_EQ(f.index, f.gop * 12 + f.pos_in_gop);
    }
}

TEST(TraceGenerator, ContinuesAcrossCalls) {
    TraceGenerator gen{movie_stats("Jurassic Park"), 1};
    const auto a = gen.generate(2);
    const auto b = gen.generate(2);
    EXPECT_EQ(a.back().gop, 1u);
    EXPECT_EQ(b.front().gop, 2u);
    EXPECT_EQ(b.front().index, a.back().index + 1);
}

TEST(TraceGenerator, DeterministicPerSeed) {
    TraceGenerator g1{movie_stats("Star Wars"), 7};
    TraceGenerator g2{movie_stats("Star Wars"), 7};
    const auto a = g1.generate(5);
    const auto b = g2.generate(5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].size_bits, b[i].size_bits);
    }
    TraceGenerator g3{movie_stats("Star Wars"), 8};
    const auto c = g3.generate(5);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_diff = any_diff || a[i].size_bits != c[i].size_bits;
    }
    EXPECT_TRUE(any_diff);
}

TEST(TraceGenerator, IFramesDominatePFramesDominateBFrames) {
    TraceGenerator gen{movie_stats("Jurassic Park"), 3};
    const auto frames = gen.generate(50);
    double i_sum = 0, p_sum = 0, b_sum = 0;
    std::size_t i_n = 0, p_n = 0, b_n = 0;
    for (const auto& f : frames) {
        const double bits = static_cast<double>(f.size_bits);
        switch (f.type) {
            case FrameType::kI: i_sum += bits; ++i_n; break;
            case FrameType::kP: p_sum += bits; ++p_n; break;
            case FrameType::kB:
            case FrameType::kIndependent: b_sum += bits; ++b_n; break;
        }
    }
    EXPECT_GT(i_sum / static_cast<double>(i_n), p_sum / static_cast<double>(p_n));
    EXPECT_GT(p_sum / static_cast<double>(p_n), b_sum / static_cast<double>(b_n));
}

TEST(TraceGenerator, MaxGopCalibratedToPublishedFigure) {
    for (const auto& movie : movie_catalog()) {
        TraceGenerator gen{movie, 11};
        const auto frames = gen.generate(100);
        const double observed = static_cast<double>(max_gop_bits(frames));
        const double target = static_cast<double>(movie.max_gop_bits);
        EXPECT_GT(observed, 0.6 * target) << movie.name;
        EXPECT_LT(observed, 1.5 * target) << movie.name;
    }
}

TEST(TraceGenerator, MeanBitrateIsPlausibleForPaperBandwidth) {
    // The paper streams Jurassic Park over a 1.2 Mb/s link; the calibrated
    // mean bitrate must sit below that with headroom for retransmissions.
    TraceGenerator gen{movie_stats("Jurassic Park"), 1};
    EXPECT_GT(gen.mean_bitrate_bps(), 3e5);
    EXPECT_LT(gen.mean_bitrate_bps(), 1.2e6);
}

TEST(MjpegTrace, IndependentConstantTypeFrames) {
    const auto frames = mjpeg_trace(20, 8000.0, 5);
    ASSERT_EQ(frames.size(), 20u);
    double sum = 0;
    for (const auto& f : frames) {
        EXPECT_EQ(f.type, FrameType::kIndependent);
        EXPECT_GT(f.size_bits, 0u);
        sum += static_cast<double>(f.size_bits);
    }
    EXPECT_NEAR(sum / 20.0, 8000.0, 2000.0);
}

TEST(MjpegTrace, RejectsNonPositiveMean) {
    EXPECT_THROW(mjpeg_trace(5, 0.0, 1), std::invalid_argument);
}

TEST(AudioTrace, ConstantBitRateLdus) {
    const auto ldus = audio_trace(10);
    ASSERT_EQ(ldus.size(), 10u);
    for (const auto& l : ldus) {
        EXPECT_EQ(l.size_bits, AudioLdu::kBitsPerLdu);
        EXPECT_EQ(l.type, FrameType::kIndependent);
    }
    EXPECT_EQ(AudioLdu::kBitsPerLdu, 2128u);
    EXPECT_NEAR(AudioLdu::ldu_rate(), 30.0, 0.1);
}

TEST(MaxGopBits, GroupsByGop) {
    std::vector<espread::media::Frame> frames(4);
    frames[0].gop = 0; frames[0].size_bits = 10;
    frames[1].gop = 0; frames[1].size_bits = 20;
    frames[2].gop = 1; frames[2].size_bits = 25;
    frames[3].gop = 1; frames[3].size_bits = 1;
    EXPECT_EQ(max_gop_bits(frames), 30u);
    EXPECT_EQ(max_gop_bits({}), 0u);
}

}  // namespace
