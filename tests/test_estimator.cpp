#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using espread::BurstEstimator;
using espread::max_transmission_burst;

TEST(MaxTransmissionBurst, MeasuresLongestLossRun) {
    EXPECT_EQ(max_transmission_burst({true, false, false, false, true, false}), 3u);
    EXPECT_EQ(max_transmission_burst({true, true}), 0u);
    EXPECT_EQ(max_transmission_burst({}), 0u);
}

TEST(Estimator, InitialEstimateIsHalfWindow) {
    const BurstEstimator e{24};
    EXPECT_DOUBLE_EQ(e.estimate(), 12.0);
    EXPECT_EQ(e.bound(), 12u);
    EXPECT_EQ(e.observations(), 0u);
}

TEST(Estimator, EquationOneWithDefaultAlpha) {
    BurstEstimator e{24};  // estimate 12
    e.update(4);
    EXPECT_DOUBLE_EQ(e.estimate(), 8.0);  // 0.5*4 + 0.5*12
    e.update(0);
    EXPECT_DOUBLE_EQ(e.estimate(), 4.0);
    e.update(6);
    EXPECT_DOUBLE_EQ(e.estimate(), 5.0);
    EXPECT_EQ(e.observations(), 3u);
}

TEST(Estimator, BoundIsCeilingOfEstimate) {
    BurstEstimator e{10};  // estimate 5
    e.update(2);           // 3.5
    EXPECT_EQ(e.bound(), 4u);
}

TEST(Estimator, BoundNeverBelowOne) {
    BurstEstimator e{10, 1.0};
    e.update(0);
    EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
    EXPECT_EQ(e.bound(), 1u);
}

TEST(Estimator, BoundNeverAboveWindow) {
    BurstEstimator e{4, 1.0};
    e.update(100);  // clamped to window
    EXPECT_DOUBLE_EQ(e.estimate(), 4.0);
    EXPECT_EQ(e.bound(), 4u);
}

TEST(Estimator, AlphaZeroFreezesEstimate) {
    BurstEstimator e{20, 0.0};
    e.update(19);
    e.update(1);
    EXPECT_DOUBLE_EQ(e.estimate(), 10.0);
}

// Property: alpha == 0 is EXACTLY frozen — any observation sequence leaves
// the estimate bit-identical to the prior (not merely close), while the
// observation count still advances.
TEST(Estimator, AlphaZeroIsExactlyFrozenForAnySequence) {
    BurstEstimator e{24, 0.0};
    for (std::size_t i = 0; i < 200; ++i) {
        e.update((i * 7 + 3) % 40);  // sweeps 0..39, incl. beyond-window values
        ASSERT_EQ(e.estimate(), 12.0) << "observation " << i;
        ASSERT_EQ(e.bound(), 12u);
    }
    EXPECT_EQ(e.observations(), 200u);
}

TEST(Estimator, AlphaOneTracksLatestObservation) {
    BurstEstimator e{20, 1.0};
    e.update(7);
    EXPECT_DOUBLE_EQ(e.estimate(), 7.0);
    e.update(3);
    EXPECT_DOUBLE_EQ(e.estimate(), 3.0);
}

// Property: alpha == 1 is EXACTLY memoryless — after every update the
// estimate equals the latest observation clamped to the window, with no
// residue of the past (0.0 * history is exactly 0 in IEEE arithmetic).
TEST(Estimator, AlphaOneIsExactlyMemorylessForAnySequence) {
    BurstEstimator e{24, 1.0};
    for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t obs = (i * 13 + 5) % 48;
        e.update(obs);
        ASSERT_EQ(e.estimate(), static_cast<double>(std::min<std::size_t>(obs, 24)))
            << "observation " << i;
    }
}

TEST(Estimator, BoundForClampsTotally) {
    // Any estimate <= 0 — including large negatives and -0.0 — maps to 1.
    EXPECT_EQ(BurstEstimator::bound_for(0.0, 10), 1u);
    EXPECT_EQ(BurstEstimator::bound_for(-0.0, 10), 1u);
    EXPECT_EQ(BurstEstimator::bound_for(-5.0, 10), 1u);
    EXPECT_EQ(BurstEstimator::bound_for(-1e18, 10), 1u);
    // Any estimate > window maps to window.
    EXPECT_EQ(BurstEstimator::bound_for(10.0 + 1e-6, 10), 10u);
    EXPECT_EQ(BurstEstimator::bound_for(1e18, 10), 10u);
    // Interior estimates take the ceiling.
    EXPECT_EQ(BurstEstimator::bound_for(3.2, 10), 4u);
    EXPECT_EQ(BurstEstimator::bound_for(3.0, 10), 3u);
    EXPECT_EQ(BurstEstimator::bound_for(10.0, 10), 10u);
}

// ---- Governor support: guarded_update / reset_to_prior / decay ------------

TEST(Estimator, GuardedUpdateBoundsSingleStep) {
    // Worst case for the guard: alpha = 1 jumps straight to the observation.
    BurstEstimator e{16, 1.0};  // bound 8
    const std::size_t applied = e.guarded_update(16, 3);
    EXPECT_EQ(applied, 11u);  // clamped into [5, 11]
    EXPECT_EQ(e.bound(), 11u);
    EXPECT_EQ(e.guarded_update(0, 3), 8u);  // clamped into [8, 14]
    EXPECT_EQ(e.bound(), 8u);
    // An observation within reach passes through the guard unchanged.
    EXPECT_EQ(e.guarded_update(6, 3), 6u);
    EXPECT_EQ(e.bound(), 6u);
}

TEST(Estimator, GuardedUpdateMaxStepZeroFreezesBound) {
    BurstEstimator e{16, 1.0};
    for (const std::size_t obs : {0u, 16u, 1u, 12u}) {
        EXPECT_EQ(e.guarded_update(obs, 0), 8u);
        EXPECT_EQ(e.bound(), 8u);
    }
}

TEST(Estimator, GuardedUpdateFiresObserverAndCounts) {
    BurstEstimator e{16, 0.5};
    std::size_t seen = 0;
    e.set_observer([&](std::size_t observed, double, double) { seen = observed; });
    e.guarded_update(16, 2);
    EXPECT_EQ(seen, 10u);  // the guarded value, not the raw one
    EXPECT_EQ(e.observations(), 1u);
}

TEST(Estimator, ResetToPriorRestoresHalfWindow) {
    BurstEstimator e{24, 0.5};
    e.update(2);
    e.update(2);
    ASSERT_NE(e.estimate(), 12.0);
    e.reset_to_prior();
    EXPECT_DOUBLE_EQ(e.estimate(), 12.0);
    EXPECT_EQ(e.observations(), 2u) << "reset must not forget the count";
}

TEST(Estimator, DecayTowardPriorIsExponential) {
    BurstEstimator e{24, 1.0};
    e.update(4);  // estimate 4, prior 12, distance -8
    e.decay_toward_prior(0.5);
    EXPECT_DOUBLE_EQ(e.estimate(), 8.0);
    e.decay_toward_prior(0.5);
    EXPECT_DOUBLE_EQ(e.estimate(), 10.0);
    e.decay_toward_prior(1.0);  // keep everything: no-op
    EXPECT_DOUBLE_EQ(e.estimate(), 10.0);
    e.decay_toward_prior(0.0);  // keep nothing: equals reset_to_prior
    EXPECT_DOUBLE_EQ(e.estimate(), 12.0);
    e.update(20);
    e.decay_toward_prior(7.5);  // out-of-range keep clamps to [0, 1]
    EXPECT_DOUBLE_EQ(e.estimate(), 20.0);
    e.decay_toward_prior(-2.0);
    EXPECT_DOUBLE_EQ(e.estimate(), 12.0);
}

TEST(Estimator, ConvergesToSteadyObservation) {
    BurstEstimator e{100};
    for (int i = 0; i < 40; ++i) e.update(6);
    EXPECT_NEAR(e.estimate(), 6.0, 1e-6);
    EXPECT_EQ(e.bound(), 6u);
}

TEST(Estimator, InvalidArgumentsThrow) {
    EXPECT_THROW(BurstEstimator(0), std::invalid_argument);
    EXPECT_THROW(BurstEstimator(5, -0.1), std::invalid_argument);
    EXPECT_THROW(BurstEstimator(5, 1.1), std::invalid_argument);
}

// ---- SlidingMaxEstimator --------------------------------------------------

using espread::SlidingMaxEstimator;

TEST(SlidingMax, InitialBoundIsHalfWindow) {
    const SlidingMaxEstimator e{20};
    EXPECT_EQ(e.bound(), 10u);
    EXPECT_EQ(e.observations(), 0u);
}

TEST(SlidingMax, TracksMaximumOfHistory) {
    SlidingMaxEstimator e{20, 3};
    e.update(2);
    EXPECT_EQ(e.bound(), 2u);
    e.update(7);
    e.update(1);
    EXPECT_EQ(e.bound(), 7u);
}

TEST(SlidingMax, OldObservationsAgeOut) {
    SlidingMaxEstimator e{20, 3};
    e.update(9);
    e.update(1);
    e.update(1);
    EXPECT_EQ(e.bound(), 9u);
    e.update(1);  // evicts the 9
    EXPECT_EQ(e.bound(), 1u);
}

TEST(SlidingMax, ClampsToWindowAndFloorOne) {
    SlidingMaxEstimator e{8, 2};
    e.update(100);
    EXPECT_EQ(e.bound(), 8u);
    e.update(0);
    e.update(0);
    EXPECT_EQ(e.bound(), 1u);
}

TEST(SlidingMax, MoreConservativeThanEwmaAfterASpike) {
    BurstEstimator ewma{32};
    SlidingMaxEstimator smax{32, 4};
    for (const std::size_t obs : {16u, 1u, 1u, 1u}) {
        ewma.update(obs);
        smax.update(obs);
    }
    // Three calm windows later the EWMA has decayed; the sliding max still
    // remembers the storm.
    EXPECT_LT(ewma.bound(), smax.bound());
    EXPECT_EQ(smax.bound(), 16u);
}

TEST(SlidingMax, InvalidArgumentsThrow) {
    EXPECT_THROW(SlidingMaxEstimator(0, 4), std::invalid_argument);
    EXPECT_THROW(SlidingMaxEstimator(5, 0), std::invalid_argument);
}

}  // namespace
