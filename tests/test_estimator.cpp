#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using espread::BurstEstimator;
using espread::max_transmission_burst;

TEST(MaxTransmissionBurst, MeasuresLongestLossRun) {
    EXPECT_EQ(max_transmission_burst({true, false, false, false, true, false}), 3u);
    EXPECT_EQ(max_transmission_burst({true, true}), 0u);
    EXPECT_EQ(max_transmission_burst({}), 0u);
}

TEST(Estimator, InitialEstimateIsHalfWindow) {
    const BurstEstimator e{24};
    EXPECT_DOUBLE_EQ(e.estimate(), 12.0);
    EXPECT_EQ(e.bound(), 12u);
    EXPECT_EQ(e.observations(), 0u);
}

TEST(Estimator, EquationOneWithDefaultAlpha) {
    BurstEstimator e{24};  // estimate 12
    e.update(4);
    EXPECT_DOUBLE_EQ(e.estimate(), 8.0);  // 0.5*4 + 0.5*12
    e.update(0);
    EXPECT_DOUBLE_EQ(e.estimate(), 4.0);
    e.update(6);
    EXPECT_DOUBLE_EQ(e.estimate(), 5.0);
    EXPECT_EQ(e.observations(), 3u);
}

TEST(Estimator, BoundIsCeilingOfEstimate) {
    BurstEstimator e{10};  // estimate 5
    e.update(2);           // 3.5
    EXPECT_EQ(e.bound(), 4u);
}

TEST(Estimator, BoundNeverBelowOne) {
    BurstEstimator e{10, 1.0};
    e.update(0);
    EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
    EXPECT_EQ(e.bound(), 1u);
}

TEST(Estimator, BoundNeverAboveWindow) {
    BurstEstimator e{4, 1.0};
    e.update(100);  // clamped to window
    EXPECT_DOUBLE_EQ(e.estimate(), 4.0);
    EXPECT_EQ(e.bound(), 4u);
}

TEST(Estimator, AlphaZeroFreezesEstimate) {
    BurstEstimator e{20, 0.0};
    e.update(19);
    e.update(1);
    EXPECT_DOUBLE_EQ(e.estimate(), 10.0);
}

TEST(Estimator, AlphaOneTracksLatestObservation) {
    BurstEstimator e{20, 1.0};
    e.update(7);
    EXPECT_DOUBLE_EQ(e.estimate(), 7.0);
    e.update(3);
    EXPECT_DOUBLE_EQ(e.estimate(), 3.0);
}

TEST(Estimator, ConvergesToSteadyObservation) {
    BurstEstimator e{100};
    for (int i = 0; i < 40; ++i) e.update(6);
    EXPECT_NEAR(e.estimate(), 6.0, 1e-6);
    EXPECT_EQ(e.bound(), 6u);
}

TEST(Estimator, InvalidArgumentsThrow) {
    EXPECT_THROW(BurstEstimator(0), std::invalid_argument);
    EXPECT_THROW(BurstEstimator(5, -0.1), std::invalid_argument);
    EXPECT_THROW(BurstEstimator(5, 1.1), std::invalid_argument);
}

// ---- SlidingMaxEstimator --------------------------------------------------

using espread::SlidingMaxEstimator;

TEST(SlidingMax, InitialBoundIsHalfWindow) {
    const SlidingMaxEstimator e{20};
    EXPECT_EQ(e.bound(), 10u);
    EXPECT_EQ(e.observations(), 0u);
}

TEST(SlidingMax, TracksMaximumOfHistory) {
    SlidingMaxEstimator e{20, 3};
    e.update(2);
    EXPECT_EQ(e.bound(), 2u);
    e.update(7);
    e.update(1);
    EXPECT_EQ(e.bound(), 7u);
}

TEST(SlidingMax, OldObservationsAgeOut) {
    SlidingMaxEstimator e{20, 3};
    e.update(9);
    e.update(1);
    e.update(1);
    EXPECT_EQ(e.bound(), 9u);
    e.update(1);  // evicts the 9
    EXPECT_EQ(e.bound(), 1u);
}

TEST(SlidingMax, ClampsToWindowAndFloorOne) {
    SlidingMaxEstimator e{8, 2};
    e.update(100);
    EXPECT_EQ(e.bound(), 8u);
    e.update(0);
    e.update(0);
    EXPECT_EQ(e.bound(), 1u);
}

TEST(SlidingMax, MoreConservativeThanEwmaAfterASpike) {
    BurstEstimator ewma{32};
    SlidingMaxEstimator smax{32, 4};
    for (const std::size_t obs : {16u, 1u, 1u, 1u}) {
        ewma.update(obs);
        smax.update(obs);
    }
    // Three calm windows later the EWMA has decayed; the sliding max still
    // remembers the storm.
    EXPECT_LT(ewma.bound(), smax.bound());
    EXPECT_EQ(smax.bound(), 16u);
}

TEST(SlidingMax, InvalidArgumentsThrow) {
    EXPECT_THROW(SlidingMaxEstimator(0, 4), std::invalid_argument);
    EXPECT_THROW(SlidingMaxEstimator(5, 0), std::invalid_argument);
}

}  // namespace
