#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using espread::sim::EventQueue;
using espread::sim::from_millis;
using espread::sim::from_seconds;
using espread::sim::SimTime;
using espread::sim::to_seconds;

TEST(SimTimeConversions, RoundTrip) {
    EXPECT_EQ(from_seconds(1.0), 1'000'000'000);
    EXPECT_EQ(from_millis(23.0), 23'000'000);
    EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.75)), 0.75);
}

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(30, [&] { order.push_back(3); });
    q.schedule_at(10, [&] { order.push_back(1); });
    q.schedule_at(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoTieBreakAtSameInstant) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        q.schedule_at(100, [&order, i] { order.push_back(i); });
    }
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
    EventQueue q;
    SimTime fired_at = -1;
    q.schedule_at(50, [&] {
        q.schedule_after(25, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 75);
}

TEST(EventQueue, PastSchedulingIsClampedNotDropped) {
    EventQueue q;
    bool ran = false;
    q.schedule_at(100, [&] {
        q.schedule_at(10, [&] { ran = true; });  // "in the past"
    });
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
    EventQueue q;
    std::vector<SimTime> fired;
    for (SimTime t : {10, 20, 30, 40}) {
        q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run_until(25);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
    EXPECT_EQ(q.now(), 25);
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule_at(1, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, NullCallbackThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_at(1, nullptr), std::invalid_argument);
}

TEST(EventQueue, RunawayLoopHitsBudget) {
    EventQueue q;
    // Each event schedules the next forever.
    std::function<void()> tick = [&] { q.schedule_after(1, tick); };
    q.schedule_at(0, tick);
    EXPECT_THROW(q.run(1000), std::runtime_error);
}

TEST(EventQueue, NegativeDelayClampedToNow) {
    EventQueue q;
    SimTime fired_at = -1;
    q.schedule_at(40, [&] {
        q.schedule_after(-100, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 40);
}

}  // namespace
