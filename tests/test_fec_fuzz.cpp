// Deterministic structure-aware fuzz harness for the streaming-FEC arm
// (ISSUE 8 satellite): the RepairPacket wire record and the RLC decoder.
//
// 100k+ seeded inputs per run, in the style of test_codec_fuzz: valid
// repair records, bit-flipped records (stale checksum), truncations,
// extensions, count-field lies resealed with a valid checksum (so the
// decoder's field validation — not the CRC — must hold the line), and pure
// random bodies under a valid checksum.  Invariants:
//   (1) never crash, never read out of bounds (ASan/UBSan CI job),
//   (2) accept => canonical: re-encoding the decoded record reproduces the
//       input bytes exactly,
//   (3) the whole corpus is a pure function of the seed.
// A second engine drives the RlcDecoder itself through adversarial call
// sequences (wild bases, spans, duplicate/stale/expired symbols) and pins
// the structural invariants: rank never decreases, and the rank-only mode
// takes byte-for-byte the decode decisions of payload mode.  The same
// engines back the optional libFuzzer target (tests/fuzz_fec.cpp,
// -DESPREAD_LIBFUZZER=ON).
#include "fec/rlc.hpp"
#include "protocol/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace {

using espread::fec::RlcDecoder;
using espread::proto::RepairPacket;
using espread::proto::decode_data;
using espread::proto::decode_feedback;
using espread::proto::decode_repair;
using espread::proto::decode_trailer;
using espread::proto::encode;
using espread::proto::peek_type;
using espread::proto::repair_packet_header_bytes;
using espread::proto::wire_checksum;
using espread::sim::Rng;

/// Recomputes the trailing CRC so structurally-mutated bodies still pass
/// the checksum gate and exercise the field-level validation.
std::vector<std::uint8_t> reseal(std::vector<std::uint8_t> bytes) {
    if (bytes.size() < 2) return bytes;
    bytes.resize(bytes.size() - 2);
    const std::uint16_t crc = wire_checksum(bytes.data(), bytes.size());
    bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
    bytes.push_back(static_cast<std::uint8_t>(crc));
    return bytes;
}

RepairPacket random_repair(Rng& r) {
    RepairPacket p;
    p.seq = r.uniform_int(0, 0xFFFFFFFFull);
    p.window = r.uniform_int(0, 0xFFFFFFFFull);
    p.base = r.uniform_int(0, 0xFFFFFFFFull);
    p.count = r.uniform_int(1, 0xFF);
    p.cseed = r.next_u64();
    p.size_bits = r.uniform_int(0, 0xFFFFFFFFull);
    return p;
}

/// Offset of the one-byte `count` field inside an encoded RepairPacket:
/// tag(1) + seq(4) + window(4) + base(4).
constexpr std::size_t kCountOffset = 13;

std::vector<std::uint8_t> mutate(Rng& r) {
    std::vector<std::uint8_t> bytes = encode(random_repair(r));
    switch (r.uniform_int(0, 5)) {
        case 0:  // valid record
            return bytes;
        case 1: {  // bit flips, checksum left stale
            const std::size_t flips =
                static_cast<std::size_t>(r.uniform_int(1, 8));
            for (std::size_t i = 0; i < flips; ++i) {
                const std::size_t pos = static_cast<std::size_t>(
                    r.uniform_int(0, bytes.size() - 1));
                bytes[pos] ^= static_cast<std::uint8_t>(
                    1u << r.uniform_int(0, 7));
            }
            return bytes;
        }
        case 2: {  // truncation
            bytes.resize(
                static_cast<std::size_t>(r.uniform_int(0, bytes.size() - 1)));
            return bytes;
        }
        case 3: {  // extension, resealed
            const std::size_t extra =
                static_cast<std::size_t>(r.uniform_int(1, 16));
            for (std::size_t i = 0; i < extra; ++i) {
                bytes.push_back(
                    static_cast<std::uint8_t>(r.uniform_int(0, 255)));
            }
            return reseal(bytes);
        }
        case 4:  // count-field lie (including the non-canonical 0), resealed
            bytes[kCountOffset] =
                static_cast<std::uint8_t>(r.uniform_int(0, 255));
            return reseal(bytes);
        default: {  // random body under the repair tag, resealed
            const std::size_t n =
                static_cast<std::size_t>(r.uniform_int(3, 64));
            std::vector<std::uint8_t> junk(n);
            junk[0] = 4;  // WireType::kRepair
            for (std::size_t i = 1; i < n; ++i) {
                junk[i] = static_cast<std::uint8_t>(r.uniform_int(0, 255));
            }
            return reseal(junk);
        }
    }
}

struct Tally {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::uint64_t byte_mix = 0;  ///< order-sensitive digest of the corpus
};

void check_one(const std::vector<std::uint8_t>& bytes, Tally& tally) {
    (void)peek_type(bytes);
    // Foreign decoders must reject or stay canonical on repair bytes too.
    if (const auto d = decode_data(bytes)) {
        ASSERT_EQ(encode(*d), bytes);
    }
    if (const auto t = decode_trailer(bytes)) {
        ASSERT_EQ(encode(*t), bytes);
    }
    if (const auto f = decode_feedback(bytes)) {
        ASSERT_EQ(encode(*f), bytes);
    }
    if (const auto rep = decode_repair(bytes)) {
        ASSERT_EQ(encode(*rep), bytes)
            << "accepted repair record is not canonical";
        ASSERT_GE(rep->count, 1u);
        ASSERT_LE(rep->count, 255u);
        ++tally.accepted;
    } else {
        ++tally.rejected;
    }
    for (const std::uint8_t b : bytes) {
        tally.byte_mix = tally.byte_mix * 1099511628211ull + b;
    }
}

TEST(FecWireFuzz, HundredThousandMutatedRepairRecordsNeverBreakTheCodec) {
    Rng rng{0xF3CC0DEull};
    Tally tally;
    constexpr std::size_t kIterations = 100'000;
    for (std::size_t i = 0; i < kIterations; ++i) {
        check_one(mutate(rng), tally);
    }
    EXPECT_EQ(tally.accepted + tally.rejected, kIterations);
    // The corpus must exercise both outcomes heavily.
    EXPECT_GT(tally.accepted, kIterations / 20);
    EXPECT_GT(tally.rejected, kIterations / 20);
}

TEST(FecWireFuzz, CorpusIsAPureFunctionOfTheSeed) {
    Tally first, second;
    for (Tally* t : {&first, &second}) {
        Rng rng{20260808};
        for (std::size_t i = 0; i < 5'000; ++i) check_one(mutate(rng), *t);
    }
    EXPECT_EQ(first.accepted, second.accepted);
    EXPECT_EQ(first.rejected, second.rejected);
    EXPECT_EQ(first.byte_mix, second.byte_mix);
}

TEST(FecWireFuzz, BitFlippedValidRepairsAlwaysCaughtByChecksum) {
    Rng rng{77};
    for (int iter = 0; iter < 2'000; ++iter) {
        std::vector<std::uint8_t> bytes = encode(random_repair(rng));
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform_int(0, bytes.size() - 1));
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        EXPECT_FALSE(decode_repair(bytes).has_value())
            << "single bit flip at " << pos << " slipped past the checksum";
    }
}

TEST(FecWireFuzz, ZeroCountRejectedEvenUnderAValidChecksum) {
    Rng rng{3};
    std::vector<std::uint8_t> bytes = encode(random_repair(rng));
    ASSERT_EQ(bytes.size(), repair_packet_header_bytes());
    bytes[kCountOffset] = 0;
    bytes = reseal(bytes);
    EXPECT_FALSE(decode_repair(bytes).has_value());
}

// ---------------------------------------------------------------------------
// Decoder call-sequence fuzzing

/// Drives a payload-mode and a rank-only decoder through one seeded
/// adversarial call sequence, asserting rank monotonicity and mode
/// agreement after every step.  Returns final rank (for seed-purity).
std::size_t fuzz_decoder_sequence(std::uint64_t seed, std::size_t ops) {
    Rng rng{seed};
    const std::size_t window =
        static_cast<std::size_t>(rng.uniform_int(1, 32));
    constexpr std::size_t kSym = 8;
    RlcDecoder full(window, kSym);
    RlcDecoder rank_only(window, 0);
    std::uint8_t payload[espread::fec::kMaxWindow > kSym
                             ? espread::fec::kMaxWindow
                             : kSym];
    double t = 0.0;
    std::size_t last_rank = 0;
    std::uint64_t frontier = 0;
    for (std::size_t op = 0; op < ops; ++op) {
        t += 0.125;
        for (std::size_t i = 0; i < sizeof(payload); ++i) {
            payload[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        const std::uint64_t pick = rng.uniform_int(0, 9);
        if (pick < 5) {
            // Source near the frontier; occasionally far ahead, duplicate,
            // or ancient (stale).
            std::uint64_t idx = frontier;
            if (pick == 0 && frontier > 0) {
                idx = rng.uniform_int(0, frontier - 1);  // dup or stale
            } else if (pick == 1) {
                idx = frontier + rng.uniform_int(0, 8ull * window);  // gap/cap
            } else {
                ++frontier;
            }
            full.add_source(idx, payload, kSym, t);
            rank_only.add_source(idx, nullptr, 0, t);
            frontier = std::max(frontier, idx + 1);
        } else if (pick < 9) {
            // Repair over a window-plausible (or wild) span.
            const std::uint64_t span_max = 2ull * window + 4;
            std::uint64_t base =
                frontier > span_max ? frontier - span_max : 0;
            base += rng.uniform_int(0, span_max);
            std::size_t count =
                static_cast<std::size_t>(rng.uniform_int(0, 300));
            if (pick == 8) {  // wild: far-future base, huge values
                base = rng.next_u64();
                count = static_cast<std::size_t>(rng.uniform_int(0, 0xFFFF));
            }
            const std::uint64_t cseed = rng.next_u64();
            full.add_repair(base, count, cseed, payload, kSym, t);
            rank_only.add_repair(base, count, cseed, nullptr, 0, t);
        } else {
            const std::uint64_t jump = rng.uniform_int(0, 2ull * window);
            full.advance_base(full.base() + jump, t);
            rank_only.advance_base(rank_only.base() + jump, t);
        }
        // Invariants, every step.
        EXPECT_GE(full.rank(), last_rank) << "rank decreased (seed " << seed
                                          << ", op " << op << ")";
        last_rank = full.rank();
        EXPECT_EQ(full.rank(), rank_only.rank());
        EXPECT_EQ(full.decoded().size(), rank_only.decoded().size());
        EXPECT_EQ(full.in_order_log().size(), rank_only.in_order_log().size());
        EXPECT_EQ(full.symbols_lost(), rank_only.symbols_lost());
        EXPECT_EQ(full.repairs_redundant(), rank_only.repairs_redundant());
        EXPECT_EQ(full.stale_packets(), rank_only.stale_packets());
    }
    full.close(t);
    rank_only.close(t);
    EXPECT_GE(full.rank(), last_rank);
    EXPECT_EQ(full.rank(), rank_only.rank());
    EXPECT_EQ(full.in_order_log().size(), rank_only.in_order_log().size());
    for (std::size_t i = 0; i < full.in_order_log().size(); ++i) {
        EXPECT_EQ(full.in_order_log()[i].index,
                  rank_only.in_order_log()[i].index);
        EXPECT_EQ(full.in_order_log()[i].lost, rank_only.in_order_log()[i].lost);
    }
    return full.rank();
}

TEST(FecDecoderFuzz, AdversarialCallSequencesNeverCrashAndModesAgree) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        fuzz_decoder_sequence(seed, 400);
    }
}

TEST(FecDecoderFuzz, SequenceOutcomeIsAPureFunctionOfTheSeed) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        EXPECT_EQ(fuzz_decoder_sequence(seed, 300),
                  fuzz_decoder_sequence(seed, 300));
    }
}

}  // namespace
