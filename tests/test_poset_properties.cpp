// Randomized property tests for the poset machinery: random DAGs must
// satisfy the order axioms, Mirsky's theorem, and the layered-plan
// contracts regardless of shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "poset/layered.hpp"
#include "poset/poset.hpp"
#include "sim/rng.hpp"

namespace {

using espread::poset::build_layered_plan;
using espread::poset::Element;
using espread::poset::layer_members;
using espread::poset::Poset;

/// Random DAG on n elements: each pair (i, j) with i < j gets an edge
/// "j depends on i" with probability p.  Edges always point from higher to
/// lower index, so the result is acyclic by construction.
Poset random_poset(std::size_t n, double p, espread::sim::Rng& rng) {
    Poset poset{n};
    for (std::size_t j = 1; j < n; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            if (rng.bernoulli(p)) poset.add_dependency(j, i);
        }
    }
    return poset;
}

class RandomPosetSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RandomPosetSweep, OrderAxiomsHold) {
    const auto [seed, density] = GetParam();
    espread::sim::Rng rng{static_cast<std::uint64_t>(seed)};
    const Poset p = random_poset(12, density, rng);
    for (Element x = 0; x < p.size(); ++x) {
        EXPECT_TRUE(p.leq(x, x));                 // reflexivity
        EXPECT_FALSE(p.depends_on(x, x));         // irreflexive strict part
        for (Element y = 0; y < p.size(); ++y) {
            if (x != y && p.depends_on(x, y)) {
                EXPECT_FALSE(p.depends_on(y, x))  // antisymmetry
                    << x << " <-> " << y;
            }
            for (Element z = 0; z < p.size(); ++z) {
                if (p.depends_on(x, y) && p.depends_on(y, z)) {
                    EXPECT_TRUE(p.depends_on(x, z))  // transitivity
                        << x << "<" << y << "<" << z;
                }
            }
        }
    }
}

TEST_P(RandomPosetSweep, MirskyAndLinearExtension) {
    const auto [seed, density] = GetParam();
    espread::sim::Rng rng{static_cast<std::uint64_t>(seed) + 100};
    const Poset p = random_poset(14, density, rng);

    // Antichain decomposition: valid layers, minimal count (Mirsky).
    const auto layers = p.antichain_decomposition();
    std::size_t total = 0;
    for (const auto& layer : layers) {
        EXPECT_TRUE(p.is_antichain(layer));
        total += layer.size();
    }
    EXPECT_EQ(total, p.size());
    EXPECT_EQ(layers.size(), p.longest_chain_length());

    // Longest chain witness really is a chain of that length.
    const auto chain = p.longest_chain();
    EXPECT_EQ(chain.size(), p.longest_chain_length());
    EXPECT_TRUE(p.is_chain(chain));

    // The canonical linear extension is valid.
    EXPECT_TRUE(p.is_linear_extension(p.linear_extension()));
}

TEST_P(RandomPosetSweep, LayeredPlanContracts) {
    const auto [seed, density] = GetParam();
    espread::sim::Rng rng{static_cast<std::uint64_t>(seed) + 200};
    const Poset p = random_poset(14, density, rng);

    const auto members = layer_members(p);
    std::size_t total = 0;
    for (const auto& layer : members) {
        EXPECT_FALSE(layer.empty());
        EXPECT_TRUE(p.is_antichain(layer));
        total += layer.size();
    }
    EXPECT_EQ(total, p.size());

    const auto plan = build_layered_plan(p, 3);
    EXPECT_TRUE(p.is_linear_extension(plan.flattened()));
    // Critical layers hold anchors; the non-anchors all land in
    // non-critical layers.
    for (const auto& layer : plan.layers) {
        if (!layer.critical) continue;
        for (const Element e : layer.members) {
            EXPECT_TRUE(p.is_anchor(e));
        }
    }
    std::size_t noncritical = 0;
    for (const auto& layer : plan.layers) {
        if (!layer.critical) noncritical += layer.members.size();
    }
    EXPECT_GE(noncritical, p.non_anchors().size());
}

INSTANTIATE_TEST_SUITE_P(
    Random, RandomPosetSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.1, 0.3, 0.7)));

// H.261 has no B frames — the dependency structure is a pure P chain (the
// paper's §3.3 names it alongside MPEG).  The layering degenerates to one
// singleton layer per frame except the final P, which is the only
// non-anchor.
TEST(H261, ChainLayering) {
    Poset p{6};
    for (Element f = 1; f < 6; ++f) p.add_dependency(f, f - 1);
    const auto layers = layer_members(p);
    ASSERT_EQ(layers.size(), 6u);
    for (std::size_t l = 0; l < 6; ++l) {
        EXPECT_EQ(layers[l], (std::vector<Element>{l}));
    }
    const auto plan = build_layered_plan(p, 2);
    EXPECT_EQ(plan.num_critical(), 5u);  // all but the last frame
    EXPECT_TRUE(p.is_linear_extension(plan.flattened()));
}

}  // namespace
