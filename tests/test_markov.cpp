#include "analysis/markov.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "analysis/multiburst.hpp"
#include "core/permutation.hpp"

namespace {

using espread::analysis::clf_distribution_in_order;
using espread::analysis::expected_clf_in_order;
using espread::analysis::expected_losses_in_order;
using espread::analysis::loss_probability_at;
using espread::net::GilbertLoss;
using espread::net::GilbertParams;

TEST(Markov, DistributionIsAProbabilityMeasure) {
    for (const double pbad : {0.3, 0.6, 0.9}) {
        const auto dist = clf_distribution_in_order({0.92, pbad}, 24);
        ASSERT_EQ(dist.size(), 25u);
        double sum = 0.0;
        for (const double p : dist) {
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0 + 1e-12);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Markov, PerfectNetworkHasClfZero) {
    const auto dist = clf_distribution_in_order({1.0, 0.0}, 10);
    EXPECT_NEAR(dist[0], 1.0, 1e-12);
}

TEST(Markov, AlwaysBadAfterFirstPacket) {
    // p_good = 0, p_bad = 1: the first packet survives (initial GOOD), all
    // later packets die -> CLF is exactly n - 1.
    const auto dist = clf_distribution_in_order({0.0, 1.0}, 8);
    EXPECT_NEAR(dist[7], 1.0, 1e-12);
}

TEST(Markov, SinglePacketWindow) {
    // One packet, starting GOOD, classic emissions: never lost.
    const auto dist = clf_distribution_in_order({0.5, 0.5}, 1);
    EXPECT_NEAR(dist[0], 1.0, 1e-12);
    EXPECT_NEAR(dist[1], 0.0, 1e-12);
}

TEST(Markov, LossProbabilityConvergesToStationary) {
    const GilbertParams params{0.92, 0.6};
    EXPECT_DOUBLE_EQ(loss_probability_at(params, 0), 0.0);  // starts GOOD
    EXPECT_NEAR(loss_probability_at(params, 200),
                GilbertLoss::stationary_loss(params), 1e-9);
}

TEST(Markov, ExpectedLossesMatchSumOfMarginals) {
    const GilbertParams params{0.9, 0.5};
    double sum = 0.0;
    for (std::size_t k = 0; k < 30; ++k) sum += loss_probability_at(params, k);
    EXPECT_NEAR(expected_losses_in_order(params, 30), sum, 1e-12);
}

TEST(Markov, AgreesWithMonteCarlo) {
    // The DP and the sampled chain must describe the same process.
    // gilbert_clf runs one continuous chain across windows, so beyond the
    // first window each starts from (approximately) the stationary state;
    // the DP must be seeded accordingly.
    const GilbertParams params{0.92, 0.6};
    const std::size_t n = 24;
    const double pi_good = espread::analysis::stationary_p_good(params);
    const double exact = expected_clf_in_order(params, n, pi_good);
    const auto mc = espread::analysis::gilbert_clf(
        espread::Permutation::identity(n), params, 40000, espread::sim::Rng{5});
    EXPECT_NEAR(mc.clf.mean(), exact, 0.03);
    EXPECT_NEAR(mc.alf * static_cast<double>(n),
                expected_losses_in_order(params, n, pi_good), 0.05);
}

TEST(Markov, StationaryStartLosesMoreThanFreshStart) {
    const GilbertParams params{0.92, 0.6};
    const double pi_good = espread::analysis::stationary_p_good(params);
    EXPECT_NEAR(pi_good, 0.4 / 0.48, 1e-12);
    EXPECT_GT(expected_clf_in_order(params, 24, pi_good),
              expected_clf_in_order(params, 24, 1.0));
}

TEST(Markov, GilbertElliottEmissionsSupported) {
    // Residual loss in GOOD only: runs are geometric-ish and short.
    const GilbertParams params{1.0, 0.0, 0.1, 1.0};
    const auto dist = clf_distribution_in_order(params, 12);
    EXPECT_GT(dist[0], 0.25);          // 0.9^12 ~ 0.28: often no loss at all
    EXPECT_GT(dist[1], dist[3]);       // long runs need repeated 10% events
    EXPECT_NEAR(expected_losses_in_order(params, 12), 1.2, 1e-9);
}

TEST(Markov, InvalidParametersThrow) {
    EXPECT_THROW(clf_distribution_in_order({1.5, 0.5}, 5), std::invalid_argument);
    EXPECT_THROW(clf_distribution_in_order({0.5, 0.5, -1.0, 1.0}, 5),
                 std::invalid_argument);
}

TEST(Markov, ClfGrowsWithBurstiness) {
    const std::size_t n = 24;
    const double calm = expected_clf_in_order({0.92, 0.3}, n);
    const double stormy = expected_clf_in_order({0.92, 0.8}, n);
    EXPECT_LT(calm, stormy);
}

}  // namespace
