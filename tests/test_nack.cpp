// Receiver-authoritative recovery plane tests (protocol/recovery.hpp,
// DESIGN.md §13).
//
// Covers the control plane end to end: RecoveryConfig validation, the
// RepairScheduler state machine driven directly (governor gating, the
// feedback watchdog with its two-window grace, admission dedupe, EDF
// shedding under queue overload, expired-job dropping), and the
// session-level wiring — NACKs flowing on lossy channels, trace events,
// graceful degradation under full feedback blackout with the retry-cap
// bound, determinism, and the zero-cost-off contract: with the plane
// disabled a hybrid session is byte-identical to the pre-recovery pinned
// baselines (so the removed sender-side survival oracle provably never
// influenced the disabled path).
#include "protocol/recovery.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/session.hpp"
#include "protocol/wire.hpp"

namespace {

using espread::obs::EventType;
using espread::obs::TraceEvent;
using espread::obs::TraceRecorder;
using espread::proto::GovernorState;
using espread::proto::NackRequest;
using espread::proto::RecoveryConfig;
using espread::proto::RecoveryMode;
using espread::proto::RepairJob;
using espread::proto::RepairScheduler;
using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::StreamKind;

SessionConfig hybrid_config(std::uint64_t seed) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 16;
    cfg.stream.frame_rate = 24.0;
    cfg.num_windows = 12;
    cfg.scheme = Scheme::kHybridSpreadRlc;
    cfg.rlc.window_packets = 64;
    cfg.rlc.overhead_num = 1;
    cfg.rlc.overhead_den = 10;
    cfg.collect_metrics = true;
    cfg.seed = seed;
    return cfg;
}

SessionConfig impaired_config(std::uint64_t seed) {
    SessionConfig cfg = hybrid_config(seed);
    cfg.governor.enabled = true;
    cfg.data_impairment.reorder_rate = 0.05;
    cfg.data_impairment.duplicate_rate = 0.03;
    cfg.data_impairment.corrupt_rate = 0.03;
    cfg.feedback_impairment.corrupt_rate = 0.05;
    cfg.blackout_feedback_windows(4, 6);
    return cfg;
}

std::size_t count_events(const TraceRecorder& rec, EventType type) {
    std::size_t n = 0;
    for (const TraceEvent& e : rec.events()) {
        if (e.type == type) ++n;
    }
    return n;
}

// ---------------------------------------------------------------------------
// Config validation.

TEST(RecoveryConfigTest, ValidateRejectsBadValues) {
    SessionConfig base = hybrid_config(1);
    base.recovery.enabled = true;
    EXPECT_NO_THROW(base.validate());

    SessionConfig cfg = base;
    cfg.recovery.rtt_timeout_mult = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = base;
    cfg.recovery.backoff_base = 0.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = base;
    cfg.recovery.jitter_frac = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = base;
    cfg.recovery.queue_limit = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = base;
    cfg.recovery.max_repairs_per_nack = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = base;
    cfg.recovery.watchdog_windows = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RecoveryConfigTest, RejectsGroupParityFec) {
    SessionConfig cfg = hybrid_config(1);
    cfg.scheme = Scheme::kLayeredSpread;
    cfg.rlc = {};
    cfg.fec.group = 4;
    cfg.recovery.enabled = true;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RepairScheduler state machine, driven directly.

RecoveryConfig sched_config() {
    RecoveryConfig r;
    r.enabled = true;
    r.watchdog_windows = 2;
    r.queue_limit = 3;
    return r;
}

TEST(RepairSchedulerTest, GovernorStateGatesServicing) {
    RepairScheduler s(sched_config(), 32);

    EXPECT_EQ(s.on_window_start(0, GovernorState::kNormal),
              RecoveryMode::kReactive);
    EXPECT_TRUE(s.may_service_now());
    // Normal servicing is unlimited within the window.
    s.note_serviced();
    s.note_serviced();
    EXPECT_TRUE(s.may_service_now());

    EXPECT_EQ(s.on_window_start(1, GovernorState::kDegraded),
              RecoveryMode::kSuspended);
    EXPECT_FALSE(s.may_service_now());
    EXPECT_EQ(s.on_window_start(2, GovernorState::kFallback),
              RecoveryMode::kSuspended);
    EXPECT_FALSE(s.may_service_now());

    // Recovering is slew-limited: exactly one job per window.
    EXPECT_EQ(s.on_window_start(3, GovernorState::kRecovering),
              RecoveryMode::kReactive);
    EXPECT_TRUE(s.may_service_now());
    s.note_serviced();
    EXPECT_FALSE(s.may_service_now());

    const auto& rep = s.report();
    EXPECT_EQ(rep.windows_reactive, 2u);
    EXPECT_EQ(rep.windows_suspended, 2u);
    EXPECT_EQ(rep.windows_proactive, 0u);
}

TEST(RepairSchedulerTest, WatchdogFlipsToProactiveAndBack) {
    RepairScheduler s(sched_config(), 32);

    // Windows 0 and 1 are grace: the first ACK cannot have arrived yet.
    EXPECT_EQ(s.on_window_start(0, std::nullopt), RecoveryMode::kReactive);
    EXPECT_EQ(s.on_window_start(1, std::nullopt), RecoveryMode::kReactive);
    // Silence through the grace plus watchdog_windows = 2 more windows.
    EXPECT_EQ(s.on_window_start(2, std::nullopt), RecoveryMode::kReactive);
    EXPECT_EQ(s.on_window_start(3, std::nullopt), RecoveryMode::kProactive);
    EXPECT_FALSE(s.may_service_now());
    EXPECT_EQ(s.report().watchdog_timeouts, 1u);

    // Staying silent does not re-count the flip.
    EXPECT_EQ(s.on_window_start(4, std::nullopt), RecoveryMode::kProactive);
    EXPECT_EQ(s.report().watchdog_timeouts, 1u);

    // Any feedback arrival resumes reactive service immediately.
    s.on_feedback_alive();
    EXPECT_EQ(s.mode(), RecoveryMode::kReactive);
    EXPECT_TRUE(s.may_service_now());
    EXPECT_EQ(s.on_window_start(5, std::nullopt), RecoveryMode::kReactive);
}

TEST(RepairSchedulerTest, AdmitRejectsForgedExpiredAndDuplicate) {
    RepairScheduler s(sched_config(), 8);

    NackRequest n;
    n.seq = 1;
    n.window = 9;  // beyond num_windows: forged or corrupt
    EXPECT_FALSE(s.admit(n, 100, 10).has_value());
    EXPECT_EQ(s.report().nacks_invalid, 1u);

    n.window = 3;
    EXPECT_FALSE(s.admit(n, 10, 10).has_value());  // deadline passed
    EXPECT_EQ(s.report().jobs_expired, 1u);

    const auto job = s.admit(n, 100, 10);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->window, 3u);
    EXPECT_EQ(s.report().nacks_admitted, 1u);

    // The duplicated retry round must not trigger double servicing; a
    // later round for the same window must.
    EXPECT_FALSE(s.admit(n, 100, 10).has_value());
    EXPECT_EQ(s.report().nacks_duplicate, 1u);
    n.retry = 1;
    EXPECT_TRUE(s.admit(n, 100, 10).has_value());
}

TEST(RepairSchedulerTest, QueueShedsEarliestDeadlineUnderOverload) {
    RepairScheduler s(sched_config(), 8);  // queue_limit = 3

    const auto push = [&s](std::uint64_t seq, espread::sim::SimTime deadline) {
        RepairJob j;
        j.seq = seq;
        j.window = static_cast<std::size_t>(seq % 8);
        j.deadline = deadline;
        return s.enqueue(j);
    };
    EXPECT_FALSE(push(1, 50).has_value());
    EXPECT_FALSE(push(2, 90).has_value());
    EXPECT_FALSE(push(3, 70).has_value());
    EXPECT_EQ(s.queued(), 3u);

    // Overflow evicts the earliest deadline — the least salvageable job.
    const auto shed = push(4, 80);
    ASSERT_TRUE(shed.has_value());
    EXPECT_EQ(shed->seq, 1u);
    EXPECT_EQ(s.queued(), 3u);
    EXPECT_EQ(s.report().jobs_shed, 1u);

    // An incoming job that is itself the earliest bounces straight back.
    const auto bounced = push(5, 10);
    ASSERT_TRUE(bounced.has_value());
    EXPECT_EQ(bounced->seq, 5u);

    // Draining releases jobs deadline-first and drops expired ones.
    s.on_window_start(0, GovernorState::kNormal);
    const auto first = s.next_job(75);  // 70 has expired by now
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->seq, 4u);
    EXPECT_EQ(s.report().jobs_expired, 1u);
    const auto second = s.next_job(75);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->seq, 2u);
    EXPECT_FALSE(s.next_job(75).has_value());
}

// ---------------------------------------------------------------------------
// Session wiring.

TEST(RecoverySessionTest, NacksFlowAndRepairsAreServed) {
    SessionConfig cfg = hybrid_config(21);
    cfg.data_loss = {0.9, 0.45};  // bursty enough that every run loses packets
    cfg.recovery.enabled = true;
    cfg.retransmit_critical = false;
    TraceRecorder rec;
    cfg.trace = &rec;

    const SessionResult r = run_session(cfg);
    EXPECT_GT(r.metrics.counter("nack_requests_sent"), 0u);
    EXPECT_GT(r.metrics.counter("nack_requests_serviced"), 0u);
    EXPECT_GT(r.metrics.counter("nack_repairs_sent"), 0u);
    EXPECT_EQ(r.metrics.counter("nack_retx_packets"), 0u);  // retx disabled
    EXPECT_GT(count_events(rec, EventType::kNackSent), 0u);
    EXPECT_GT(count_events(rec, EventType::kNackServed), 0u);

    // Every serviced request was admitted, and admission never exceeds
    // what the client sent.
    EXPECT_LE(r.metrics.counter("nack_requests_serviced"),
              r.metrics.counter("recovery_nacks_admitted"));
    EXPECT_LE(r.metrics.counter("recovery_nacks_admitted"),
              r.metrics.counter("nack_requests_sent"));
}

TEST(RecoverySessionTest, RetransmissionsRideTheSideband) {
    SessionConfig cfg = hybrid_config(22);
    cfg.data_loss = {0.9, 0.45};
    cfg.recovery.enabled = true;
    cfg.retransmit_critical = true;

    const SessionResult r = run_session(cfg);
    EXPECT_GT(r.metrics.counter("nack_retx_packets"), 0u);
    // Side-band sends cover both RLC repairs and NACK retransmissions and
    // reconcile with the channel's own ledger.
    EXPECT_EQ(r.metrics.counter("data_sideband_sent"),
              r.data_channel.sideband_sent);
    EXPECT_GE(r.data_channel.sideband_sent,
              r.metrics.counter("nack_retx_packets"));
}

TEST(RecoverySessionTest, BlackoutDegradesToProactiveWithBoundedNacks) {
    SessionConfig cfg = hybrid_config(23);
    cfg.data_loss = {0.9, 0.45};
    cfg.recovery.enabled = true;
    cfg.retransmit_critical = false;
    cfg.blackout_feedback_windows(0, cfg.num_windows - 1);
    TraceRecorder rec;
    cfg.trace = &rec;

    const SessionResult r = run_session(cfg);
    // Retry cap: at most (max_retries + 1) NACK rounds per window, dead
    // feedback or not — no retry storm.
    EXPECT_LE(r.metrics.counter("nack_requests_sent"),
              cfg.num_windows * (cfg.recovery.max_retries + 1));
    // The watchdog flipped the plane to the fixed proactive schedule.
    EXPECT_GE(r.metrics.counter("recovery_watchdog_timeouts"), 1u);
    EXPECT_GT(r.metrics.counter("recovery_windows_proactive"), 0u);
    EXPECT_GE(count_events(rec, EventType::kRepairTimeout), 1u);
    // Nothing was serviced (no NACK ever arrived), yet repairs still
    // flowed via the proactive credit schedule.
    EXPECT_EQ(r.metrics.counter("nack_requests_serviced"), 0u);
    EXPECT_GT(r.metrics.counter("rlc_repairs_sent"), 0u);
}

TEST(RecoverySessionTest, GovernedBlackoutSuspendsServicing) {
    SessionConfig cfg = impaired_config(24);
    cfg.data_loss = {0.9, 0.45};
    cfg.recovery.enabled = true;

    const SessionResult r = run_session(cfg);
    // The mid-stream feedback blackout drives the governor out of Normal,
    // which must suspend repair servicing for those windows.
    EXPECT_GT(r.metrics.counter("recovery_windows_suspended"), 0u);
    EXPECT_GT(r.metrics.counter("governor_windows_degraded") +
                  r.metrics.counter("governor_windows_fallback"),
              0u);
}

TEST(RecoverySessionTest, DeterministicAcrossReruns) {
    SessionConfig cfg = impaired_config(25);
    cfg.recovery.enabled = true;

    const SessionResult a = run_session(cfg);
    const SessionResult b = run_session(cfg);
    EXPECT_EQ(a.playout_window_clf, b.playout_window_clf);
    EXPECT_EQ(a.data_channel.sent, b.data_channel.sent);
    EXPECT_EQ(a.data_channel.bits_sent, b.data_channel.bits_sent);
    EXPECT_EQ(a.feedback_channel.sent, b.feedback_channel.sent);
    EXPECT_EQ(a.metrics.counters(), b.metrics.counters());
}

// ---------------------------------------------------------------------------
// Zero-cost-off: with the plane disabled, hybrid sessions reproduce the
// pre-recovery goldens bit for bit — the survival-oracle removal and the
// FeedbackMsg variant rewiring left the disabled path untouched.

std::uint64_t metrics_fingerprint(const espread::obs::MetricsRegistry& m) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const auto& [name, value] : m.counters()) {
        for (const char c : name) mix(static_cast<std::uint64_t>(c));
        mix(value);
    }
    return h;
}

struct Golden {
    std::uint64_t seed;
    std::size_t clf_sum;
    std::size_t pclf_sum;
    std::size_t data_sent;
    std::size_t data_delivered;
    std::uint64_t data_bits;
    std::size_t feedback_sent;
    std::uint64_t fingerprint;
    bool impaired;
};

TEST(RecoverySessionTest, DisabledPlaneMatchesPreRecoveryGoldens) {
    // Captured from the pre-recovery tree (commit 07bee4f) for the hybrid
    // RLC config and its governed + impaired variant.
    const std::array<Golden, 6> goldens = {{
        {11ull, 22, 22, 424, 338, 5172459, 12, 0x3d437a4d11f596d8ull, false},
        {11ull, 25, 25, 424, 337, 5172459, 12, 0x4877644f0fb4de0dull, true},
        {12ull, 12, 12, 426, 381, 5230822, 12, 0x212b8ab91f7a43f6ull, false},
        {12ull, 18, 18, 426, 383, 5230822, 12, 0xb3083c59a82434acull, true},
        {13ull, 32, 32, 428, 327, 5215053, 12, 0x88b5a705135cb23cull, false},
        {13ull, 33, 33, 428, 323, 5215053, 12, 0x909626cbf032321cull, true},
    }};
    for (const Golden& g : goldens) {
        const SessionConfig cfg =
            g.impaired ? impaired_config(g.seed) : hybrid_config(g.seed);
        ASSERT_FALSE(cfg.recovery.enabled);
        const SessionResult r = run_session(cfg);
        std::size_t clf_sum = 0, pclf_sum = 0;
        for (const auto& w : r.windows) clf_sum += w.clf;
        for (const std::size_t c : r.playout_window_clf) pclf_sum += c;
        EXPECT_EQ(clf_sum, g.clf_sum) << "seed " << g.seed;
        EXPECT_EQ(pclf_sum, g.pclf_sum) << "seed " << g.seed;
        EXPECT_EQ(r.data_channel.sent, g.data_sent) << "seed " << g.seed;
        EXPECT_EQ(r.data_channel.delivered, g.data_delivered)
            << "seed " << g.seed;
        EXPECT_EQ(r.data_channel.bits_sent, g.data_bits) << "seed " << g.seed;
        EXPECT_EQ(r.feedback_channel.sent, g.feedback_sent)
            << "seed " << g.seed;
        EXPECT_EQ(metrics_fingerprint(r.metrics), g.fingerprint)
            << "seed " << g.seed;
        // No recovery-plane key may leak into a disabled-plane registry.
        for (const auto& [name, value] : r.metrics.counters()) {
            (void)value;
            EXPECT_TRUE(name.rfind("nack_", 0) != 0 &&
                        name.rfind("recovery_", 0) != 0 &&
                        name.rfind("data_sideband", 0) != 0)
                << "leaked key " << name;
        }
    }
}

}  // namespace
