#include "protocol/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using espread::proto::Planner;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::StreamKind;
using espread::proto::WindowPlan;

SessionConfig mpeg_config(Scheme scheme, std::size_t gops = 2) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMpeg;
    cfg.stream.movie = "Jurassic Park";  // GOP 12 @ 24 fps
    cfg.gops_per_window = gops;
    cfg.scheme = scheme;
    return cfg;
}

// Every plan must enumerate each window frame exactly once.
void expect_complete_order(const Planner& planner, const WindowPlan& plan) {
    std::set<std::size_t> seen;
    for (const auto& e : plan.order) seen.insert(e.local_frame);
    EXPECT_EQ(seen.size(), planner.window_ldus());
    EXPECT_EQ(plan.order.size(), planner.window_ldus());
}

TEST(Planner, MpegLayerStructure) {
    SessionConfig cfg = mpeg_config(Scheme::kLayeredSpread);
    Planner planner{cfg};
    EXPECT_EQ(planner.window_ldus(), 24u);
    // Figure 3: layers I, P1, P2, P3, B.
    EXPECT_EQ(planner.layer_sizes(),
              (std::vector<std::size_t>{2, 2, 2, 2, 16}));
    EXPECT_EQ(planner.layer_critical(),
              (std::vector<bool>{true, true, true, true, false}));
    EXPECT_EQ(planner.noncritical_size(), 16u);
}

TEST(Planner, InOrderIsMpegCodingOrder) {
    Planner planner{mpeg_config(Scheme::kInOrder)};
    EXPECT_EQ(planner.layer_sizes(), (std::vector<std::size_t>{24}));
    EXPECT_EQ(planner.layer_critical(), (std::vector<bool>{false}));
    EXPECT_EQ(planner.noncritical_size(), 24u);
    const WindowPlan& plan = planner.plan(4);
    expect_complete_order(planner, plan);
    // Coding order: each frame follows its prerequisites (I0 P1 B B P2 ...).
    std::vector<std::size_t> wire;
    for (const auto& e : plan.order) wire.push_back(e.local_frame);
    const std::vector<std::size_t> head{0, 3, 1, 2, 6, 4, 5, 9, 7, 8};
    ASSERT_GE(wire.size(), head.size());
    EXPECT_TRUE(std::equal(head.begin(), head.end(), wire.begin()));
    EXPECT_TRUE(planner.dependency_poset().is_linear_extension(wire));
    // Anchors are still marked critical per frame (retransmission targets).
    EXPECT_TRUE(plan.order[0].critical);   // I0
    EXPECT_TRUE(plan.order[1].critical);   // P1
    EXPECT_FALSE(plan.order[2].critical);  // B
}

TEST(Planner, SpreadPlanRespectsLayerOrderAndIsComplete) {
    Planner planner{mpeg_config(Scheme::kLayeredSpread)};
    const WindowPlan& plan = planner.plan(4);
    expect_complete_order(planner, plan);
    // Layers appear in order 0,1,2,... along the wire.
    std::size_t prev_layer = 0;
    for (const auto& e : plan.order) {
        EXPECT_GE(e.layer, prev_layer);
        prev_layer = e.layer;
    }
    // The critical layers carry the anchors.
    for (const auto& e : plan.order) {
        if (e.layer < 4) {
            EXPECT_TRUE(e.critical);
        } else {
            EXPECT_FALSE(e.critical);
        }
    }
}

TEST(Planner, SpreadScramblesNoncriticalLayer) {
    Planner planner{mpeg_config(Scheme::kLayeredSpread)};
    const WindowPlan& plan = planner.plan(4);
    // Extract the B layer's frame sequence; it must not be ascending.
    std::vector<std::size_t> b_frames;
    for (const auto& e : plan.order) {
        if (e.layer == 4) b_frames.push_back(e.local_frame);
    }
    ASSERT_EQ(b_frames.size(), 16u);
    EXPECT_FALSE(std::is_sorted(b_frames.begin(), b_frames.end()));
}

TEST(Planner, NoScrambleKeepsLayersAscending) {
    Planner planner{mpeg_config(Scheme::kLayeredNoScramble)};
    const WindowPlan& plan = planner.plan(4);
    std::vector<std::size_t> b_frames;
    for (const auto& e : plan.order) {
        if (e.layer == 4) b_frames.push_back(e.local_frame);
    }
    EXPECT_TRUE(std::is_sorted(b_frames.begin(), b_frames.end()));
}

TEST(Planner, IboUsesInverseBinaryOrderOnBLayer) {
    Planner planner{mpeg_config(Scheme::kLayeredIbo)};
    const WindowPlan& plan = planner.plan(4);
    std::vector<std::size_t> b_frames;
    for (const auto& e : plan.order) {
        if (e.layer == 4) b_frames.push_back(e.local_frame);
    }
    ASSERT_EQ(b_frames.size(), 16u);
    EXPECT_FALSE(std::is_sorted(b_frames.begin(), b_frames.end()));
    // IBO of 16 starts with positions 0, 8, 4, 12 of the member list.
    std::vector<std::size_t> members = b_frames;
    std::sort(members.begin(), members.end());
    EXPECT_EQ(b_frames[0], members[0]);
    EXPECT_EQ(b_frames[1], members[8]);
    EXPECT_EQ(b_frames[2], members[4]);
    EXPECT_EQ(b_frames[3], members[12]);
}

TEST(Planner, PlanCacheReturnsSameObject) {
    Planner planner{mpeg_config(Scheme::kLayeredSpread)};
    const WindowPlan& a = planner.plan(4);
    const WindowPlan& b = planner.plan(4);
    EXPECT_EQ(&a, &b);
    const WindowPlan& c = planner.plan(2);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(c.noncritical_bound, 2u);
}

TEST(Planner, MjpegIsOneNoncriticalLayer) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 17;
    cfg.scheme = Scheme::kLayeredSpread;
    Planner planner{cfg};
    EXPECT_EQ(planner.layer_sizes(), (std::vector<std::size_t>{17}));
    EXPECT_EQ(planner.layer_critical(), (std::vector<bool>{false}));
    const WindowPlan& plan = planner.plan(7);
    expect_complete_order(planner, plan);
    // With b = 7 and n = 17 the Table 1 guarantee applies: the wire order
    // scrambles.
    std::vector<std::size_t> frames;
    for (const auto& e : plan.order) frames.push_back(e.local_frame);
    EXPECT_FALSE(std::is_sorted(frames.begin(), frames.end()));
}

TEST(Planner, PrerequisitesExposedForClient) {
    Planner planner{mpeg_config(Scheme::kLayeredSpread)};
    const auto& prereqs = planner.prerequisites();
    ASSERT_EQ(prereqs.size(), 24u);
    EXPECT_TRUE(prereqs[0].empty());                               // I frame
    EXPECT_EQ(prereqs[3], (std::vector<std::size_t>{0}));          // P1 <- I
    EXPECT_EQ(prereqs[1], (std::vector<std::size_t>{0, 3}));       // B <- I, P1
    EXPECT_EQ(prereqs[12], (std::vector<std::size_t>{}));          // second I
}

TEST(Planner, BoundClampedToLayerSize) {
    Planner planner{mpeg_config(Scheme::kLayeredSpread)};
    const WindowPlan& plan = planner.plan(1000);
    expect_complete_order(planner, plan);  // no crash; bound clamped inside
}

}  // namespace
