#include "core/interleaver.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/burst.hpp"
#include "sim/rng.hpp"

namespace {

using espread::block_interleaver;
using espread::cyclic_stride_order;
using espread::ibo_order;
using espread::Permutation;
using espread::random_order;
using espread::residue_class_order;

TEST(BlockInterleaver, TwoByTwoReadsColumns) {
    const Permutation p = block_interleaver(2, 2);
    EXPECT_EQ(p.image(), (std::vector<std::size_t>{0, 2, 1, 3}));
}

TEST(BlockInterleaver, ThreeByFour) {
    const Permutation p = block_interleaver(3, 4);
    // columns of the row-major 3x4 matrix
    EXPECT_EQ(p.image(),
              (std::vector<std::size_t>{0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11}));
}

TEST(BlockInterleaver, SingleRowIsIdentity) {
    EXPECT_TRUE(block_interleaver(1, 6).is_identity());
}

TEST(BlockInterleaver, RejectsZeroDimensions) {
    EXPECT_THROW(block_interleaver(0, 3), std::invalid_argument);
    EXPECT_THROW(block_interleaver(3, 0), std::invalid_argument);
}

// Paper Table 2: IBO of 8 frames is "01 05 03 07 02 06 04 08".
TEST(Ibo, MatchesTable2ForEight) {
    const Permutation p = ibo_order(8);
    EXPECT_EQ(p.to_string_one_based(), "01 05 03 07 02 06 04 08");
}

TEST(Ibo, PowerOfTwoIsBitReversal) {
    const Permutation p = ibo_order(4);
    EXPECT_EQ(p.image(), (std::vector<std::size_t>{0, 2, 1, 3}));
}

TEST(Ibo, NonPowerOfTwoFiltersBitReversal) {
    const Permutation p = ibo_order(6);
    // 3-bit reversal sequence 0,4,2,6,1,5,3,7 with >= 6 removed.
    EXPECT_EQ(p.image(), (std::vector<std::size_t>{0, 4, 2, 1, 5, 3}));
}

TEST(Ibo, TrivialSizes) {
    EXPECT_EQ(ibo_order(0).size(), 0u);
    EXPECT_TRUE(ibo_order(1).is_identity());
    EXPECT_EQ(ibo_order(2).image(), (std::vector<std::size_t>{0, 1}));
}

// Paper Table 2: the k-CPO row for 8 frames is "01 04 07 02 05 08 03 06",
// i.e. residue classes mod 3.
TEST(ResidueClass, MatchesTable2ForEight) {
    const Permutation p = residue_class_order(8, 3);
    EXPECT_EQ(p.to_string_one_based(), "01 04 07 02 05 08 03 06");
}

TEST(ResidueClass, StrideOneIsIdentity) {
    EXPECT_TRUE(residue_class_order(7, 1).is_identity());
}

TEST(ResidueClass, StrideEqualToSizeReversesNothing) {
    // Each class is a singleton: transmission order is 0,1,...,n-1.
    EXPECT_TRUE(residue_class_order(5, 5).is_identity());
}

TEST(ResidueClass, RejectsBadStride) {
    EXPECT_THROW(residue_class_order(5, 0), std::invalid_argument);
    EXPECT_THROW(residue_class_order(5, 6), std::invalid_argument);
}

TEST(CyclicStride, RequiresCoprimality) {
    EXPECT_THROW(cyclic_stride_order(10, 5), std::invalid_argument);
    EXPECT_THROW(cyclic_stride_order(10, 0), std::invalid_argument);
    EXPECT_NO_THROW(cyclic_stride_order(10, 3));
}

TEST(CyclicStride, WrapsModN) {
    const Permutation p = cyclic_stride_order(5, 2, 0);
    EXPECT_EQ(p.image(), (std::vector<std::size_t>{0, 2, 4, 1, 3}));
}

TEST(CyclicStride, OffsetRotatesImage) {
    const Permutation p = cyclic_stride_order(5, 2, 3);
    EXPECT_EQ(p.image(), (std::vector<std::size_t>{3, 0, 2, 4, 1}));
}

TEST(RandomOrder, IsValidAndSeedDeterministic) {
    espread::sim::Rng r1{99};
    espread::sim::Rng r2{99};
    const Permutation a = random_order(20, r1);
    const Permutation b = random_order(20, r2);
    EXPECT_EQ(a, b);
    // Validity is enforced by the Permutation constructor; also check it is
    // (overwhelmingly likely) not the identity.
    EXPECT_FALSE(a.is_identity());
}

// Under a pathological burst (more than half the window), IBO degrades while
// the residue order keeps the guarantee — the §4.4 comparison.
TEST(Baselines, IboDegradesUnderLargeBursts) {
    const Permutation ibo = ibo_order(8);
    const Permutation cpo = residue_class_order(8, 3);
    EXPECT_GT(espread::worst_case_clf(ibo, 5), espread::worst_case_clf(cpo, 5));
}

}  // namespace
