// Fleet telemetry plane contract tests.
//
// Three layers are pinned here: the QuantileHistogram's bucket algebra
// (tiling, monotonicity, merge == concat — the properties that make
// shard-order folding deterministic), the slab/snapshot plumbing (epoch
// deltas, byte-identical series across shard counts and same-seed runs,
// reconciliation of telemetry totals against EngineSummary and the
// scalar reference), and the SLO evaluator's two-window burn-rate state
// machine including its kSloHealth trace emission.
#include "obs/telemetry/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "engine/engine.hpp"
#include "engine/governor_lite.hpp"
#include "obs/telemetry/slab.hpp"
#include "obs/telemetry/slo.hpp"
#include "obs/telemetry/snapshot.hpp"
#include "obs/trace.hpp"

namespace {

using espread::engine::EngineConfig;
using espread::engine::EngineSummary;
using espread::engine::ShardedEngine;
using espread::obs::TraceEvent;
using espread::obs::TraceRecorder;
using espread::obs::telemetry::FleetSnapshot;
using espread::obs::telemetry::QuantileHistogram;
using espread::obs::telemetry::SloEvaluator;
using espread::obs::telemetry::SloHealth;
using espread::obs::telemetry::SloObjective;
using espread::obs::telemetry::SnapshotRegistry;
using espread::obs::telemetry::TelemetryCounters;
using espread::obs::telemetry::TelemetrySlab;

/// Deterministic value stream for property tests (no std entropy source,
/// per the repo's D1 contract).
std::uint64_t xorshift(std::uint64_t& s) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

TEST(QuantileHistogram, BucketsTileTheNonNegativeIntegers) {
    for (std::size_t b = 0; b + 1 < QuantileHistogram::kBuckets; ++b) {
        SCOPED_TRACE(b);
        const std::uint64_t lo = QuantileHistogram::bucket_lower(b);
        const std::uint64_t hi = QuantileHistogram::bucket_upper(b);
        ASSERT_LE(lo, hi);
        EXPECT_EQ(QuantileHistogram::bucket_for(lo), b);
        EXPECT_EQ(QuantileHistogram::bucket_for(hi), b);
        // Contiguous: the next bucket starts exactly one past this one.
        EXPECT_EQ(QuantileHistogram::bucket_lower(b + 1), hi + 1);
    }
}

TEST(QuantileHistogram, BucketForIsMonotone) {
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 200; ++v) values.push_back(v);
    for (unsigned oct = 8; oct < 63; ++oct) {
        const std::uint64_t p = std::uint64_t{1} << oct;
        values.push_back(p - 1);
        values.push_back(p);
        values.push_back(p + 1);
    }
    std::sort(values.begin(), values.end());
    for (std::size_t i = 1; i < values.size(); ++i) {
        EXPECT_LE(QuantileHistogram::bucket_for(values[i - 1]),
                  QuantileHistogram::bucket_for(values[i]))
            << values[i - 1] << " vs " << values[i];
    }
}

TEST(QuantileHistogram, QuantilesExactInLinearRange) {
    // Values < kLinearMax land in exact buckets, so nearest-rank quantiles
    // match the multiset exactly.
    QuantileHistogram h;
    const std::vector<std::uint64_t> sorted = {1, 1, 2, 3, 5, 8, 8, 8, 13, 21};
    for (const std::uint64_t v : sorted) h.record(v);
    ASSERT_EQ(h.total(), sorted.size());
    for (const double q : {0.05, 0.10, 0.25, 0.50, 0.90, 0.99, 1.0}) {
        // Nearest-rank: the ceil(q*n)-th smallest (1-based), clamped.
        std::size_t rank = static_cast<std::size_t>(
            std::max(1.0, std::min<double>(
                              static_cast<double>(sorted.size()),
                              std::ceil(q * static_cast<double>(sorted.size())))));
        EXPECT_EQ(h.quantile(q), sorted[rank - 1]) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(0.0), sorted.front());
    EXPECT_EQ(h.max_bucket_value(), 21u);
    EXPECT_EQ(QuantileHistogram{}.quantile(0.5), 0u);
}

TEST(QuantileHistogram, QuantileIsMonotoneInQAndBoundsTheValue) {
    QuantileHistogram h;
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = xorshift(s) % 1000000;
        values.push_back(v);
        h.record(v);
    }
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const std::uint64_t cur = h.quantile(q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
    // The reported quantile is the containing bucket's upper bound, so it
    // never understates the true quantile and overstates by < 25%.
    std::sort(values.begin(), values.end());
    const std::uint64_t true_p99 = values[static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(values.size()))) - 1];
    const std::uint64_t rep_p99 = h.quantile(0.99);
    EXPECT_GE(rep_p99, true_p99);
    EXPECT_LE(rep_p99, true_p99 + true_p99 / 4 + 1);
}

TEST(QuantileHistogram, MergeEqualsConcat) {
    QuantileHistogram a;
    QuantileHistogram b;
    QuantileHistogram concat;
    std::uint64_t s = 42;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = xorshift(s) % 100000;
        if (i % 3 == 0) {
            a.record(v);
        } else {
            b.record(v);
        }
        concat.record(v);
    }
    QuantileHistogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged, concat);
    // And merge order cannot matter (element-wise addition commutes).
    QuantileHistogram merged_rev = b;
    merged_rev.merge(a);
    EXPECT_EQ(merged_rev, concat);
}

TEST(QuantileHistogram, DeltaUndoesAccumulation) {
    QuantileHistogram prev;
    std::uint64_t s = 7;
    for (int i = 0; i < 300; ++i) prev.record(xorshift(s) % 500);
    QuantileHistogram now = prev;
    QuantileHistogram epoch_only;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = xorshift(s) % 500;
        now.record(v);
        epoch_only.record(v);
    }
    EXPECT_EQ(QuantileHistogram::delta(now, prev), epoch_only);
}

TEST(QuantileHistogram, CountLeExactBelowLinearMaxConservativeAbove) {
    QuantileHistogram h;
    for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
    // Exact in the linear range.
    EXPECT_EQ(h.count_le(0), 1u);
    EXPECT_EQ(h.count_le(10), 11u);
    EXPECT_EQ(h.count_le(31), 32u);
    // Above it, whole buckets only: never an overcount.
    for (std::uint64_t v = 32; v < 100; ++v) {
        EXPECT_LE(h.count_le(v), v + 1) << v;
    }
    EXPECT_EQ(h.count_le(1000), 100u);
}

TEST(QuantileHistogram, RestoreBucketRebuildsSerializedCounts) {
    QuantileHistogram h;
    std::uint64_t s = 99;
    for (int i = 0; i < 400; ++i) h.record(xorshift(s) % 10000);
    QuantileHistogram rebuilt;
    for (std::size_t b = 0; b < QuantileHistogram::kBuckets; ++b) {
        rebuilt.restore_bucket(b, h.counts()[b]);
    }
    EXPECT_EQ(rebuilt, h);
    // Out-of-range indices are ignored, not UB.
    rebuilt.restore_bucket(QuantileHistogram::kBuckets + 5, 17);
    EXPECT_EQ(rebuilt, h);
}

TEST(TelemetrySlab, ObserveSitesAccumulateCountersAndHistograms) {
    TelemetrySlab slab;
    slab.observe_window(/*clf=*/3, /*bound=*/5, /*losses=*/4,
                        espread::engine::kGovDegraded);
    slab.observe_window(/*clf=*/0, /*bound=*/5, /*losses=*/0,
                        espread::engine::kGovNormal);
    slab.observe_loss_run(4);
    slab.observe_ack(true);
    slab.observe_ack(false);
    slab.observe_idle();
    slab.observe_spawn();
    slab.observe_complete();
    slab.observe_governor_exit(12);

    EXPECT_EQ(slab.counters.windows, 2u);
    EXPECT_EQ(slab.counters.unit_losses, 4u);
    EXPECT_EQ(slab.counters.loss_windows, 1u);  // only the lossy window
    EXPECT_EQ(slab.counters.idle_windows, 1u);
    EXPECT_EQ(slab.counters.acks_delivered, 1u);
    EXPECT_EQ(slab.counters.acks_lost, 1u);
    EXPECT_EQ(slab.counters.sessions_spawned, 1u);
    EXPECT_EQ(slab.counters.sessions_completed, 1u);
    EXPECT_EQ(slab.counters.governor_windows[espread::engine::kGovNormal], 1u);
    EXPECT_EQ(slab.counters.governor_windows[espread::engine::kGovDegraded], 1u);
    EXPECT_EQ(slab.window_clf.total(), 2u);
    EXPECT_EQ(slab.bound_used.quantile(1.0), 5u);
    EXPECT_EQ(slab.loss_run.quantile(1.0), 4u);
    EXPECT_EQ(slab.governor_dwell.quantile(1.0), 12u);
}

TEST(SnapshotRegistry, RejectsZeroEpochStepsAndComputesDeltas) {
    EXPECT_THROW(SnapshotRegistry{0}, std::invalid_argument);

    SnapshotRegistry reg(4);
    EXPECT_TRUE(reg.due(4));
    EXPECT_TRUE(reg.due(8));
    EXPECT_FALSE(reg.due(5));

    TelemetrySlab slab;
    slab.observe_window(2, 6, 1, espread::engine::kGovNormal);
    const FleetSnapshot first = reg.capture(4, &slab, 1);
    // First snapshot: the epoch delta IS the cumulative state.
    EXPECT_EQ(first.delta, first.totals);
    EXPECT_EQ(first.totals.windows, 1u);
    EXPECT_EQ(first.clf_delta, first.clf);

    slab.observe_window(7, 6, 0, espread::engine::kGovNormal);
    slab.observe_window(7, 6, 2, espread::engine::kGovNormal);
    const FleetSnapshot second = reg.capture(8, &slab, 1);
    EXPECT_EQ(second.totals.windows, 3u);
    EXPECT_EQ(second.delta.windows, 2u);
    EXPECT_EQ(second.delta.unit_losses, 2u);
    EXPECT_EQ(second.clf_delta.total(), 2u);
    EXPECT_EQ(second.clf_delta.quantile(1.0), 7u);
    EXPECT_EQ(second.epoch, 1u);
    EXPECT_EQ(reg.latest(), second);
}

EngineConfig telemetry_config() {
    EngineConfig cfg;
    cfg.sessions = 96;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.alpha = 0.5;
    cfg.feedback_delay_windows = 2;
    cfg.feedback_loss = {0.95, 0.5};
    cfg.churn.enabled = true;
    cfg.churn.min_lifetime_windows = 4;
    cfg.churn.mean_lifetime_windows = 12.0;
    cfg.churn.mean_arrival_gap_windows = 3.0;
    cfg.governor.enabled = true;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epoch_steps = 8;
    cfg.seed = 2026;
    return cfg;
}

std::string series_for(EngineConfig cfg, std::size_t shards,
                       std::size_t windows) {
    cfg.shards = shards;
    ShardedEngine engine(cfg);
    engine.run(windows);
    const SnapshotRegistry* reg = engine.telemetry();
    EXPECT_NE(reg, nullptr);
    return snapshot_series_json(*reg);
}

// The tentpole determinism claim: the rendered snapshot *series* — every
// counter, every histogram bucket, every epoch delta — is byte-identical
// across shard counts and across same-seed runs.
TEST(EngineTelemetry, SnapshotSeriesIsByteIdenticalAcrossShardCounts) {
    const EngineConfig cfg = telemetry_config();
    const std::string one = series_for(cfg, 1, 64);
    const std::string two = series_for(cfg, 2, 64);
    const std::string eight = series_for(cfg, 8, 64);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
    EXPECT_EQ(one, series_for(cfg, 2, 64));  // same-seed rerun
    EXPECT_NE(one.find("\"epochs\":8"), std::string::npos);
}

TEST(EngineTelemetry, DisabledByDefaultAndRegistryNullWhenOff) {
    EngineConfig cfg;
    cfg.sessions = 4;
    cfg.shards = 1;
    ShardedEngine engine(cfg);
    engine.run(4);
    EXPECT_EQ(engine.telemetry(), nullptr);
}

// Telemetry is an observer: totals must reconcile exactly with the
// engine's own deterministic summary, and the loss-run histogram's mass
// must account for every lost unit (runs here are <= 24 units, inside
// the exact bucket range).
TEST(EngineTelemetry, TotalsReconcileWithEngineSummary) {
    EngineConfig cfg = telemetry_config();
    cfg.window_ldus = 12;  // 24 units/window: every loss run exactly bucketed
    cfg.shards = 4;
    ShardedEngine engine(cfg);
    engine.run(64);
    const EngineSummary s = engine.summary();
    ASSERT_NE(engine.telemetry(), nullptr);
    ASSERT_FALSE(engine.telemetry()->empty());
    const FleetSnapshot& last = engine.telemetry()->latest();

    EXPECT_EQ(last.totals.windows, s.windows);
    EXPECT_EQ(last.totals.unit_losses, s.unit_losses);
    EXPECT_EQ(last.totals.acks_delivered, s.acks_delivered);
    EXPECT_EQ(last.totals.acks_lost, s.acks_lost);
    EXPECT_EQ(last.totals.idle_windows, s.idle_windows);
    EXPECT_EQ(last.totals.sessions_completed, s.sessions_completed);
    // The pool counts its generation-0 prefill as spawned; the telemetry
    // plane counts only churn arrivals observed while stepping.
    EXPECT_EQ(last.totals.sessions_spawned + cfg.sessions, s.sessions_spawned);
    // Governor occupancy: same four counters on both planes, and they
    // partition the executed windows.
    std::uint64_t occupied = 0;
    for (std::size_t st = 0; st < 4; ++st) {
        EXPECT_EQ(last.totals.governor_windows[st], s.governor_windows[st]);
        occupied += last.totals.governor_windows[st];
    }
    EXPECT_EQ(occupied, s.windows);
    EXPECT_GT(last.totals.governor_windows[espread::engine::kGovNormal], 0u);
    // Every lost unit sits in exactly one maximal loss run.
    std::uint64_t run_mass = 0;
    for (std::size_t b = 0; b < QuantileHistogram::kLinearMax; ++b) {
        run_mass += static_cast<std::uint64_t>(b) * last.loss_run.counts()[b];
    }
    EXPECT_EQ(last.loss_run.total(),
              last.loss_run.count_le(QuantileHistogram::kLinearMax - 1));
    EXPECT_EQ(run_mass, s.unit_losses);
    EXPECT_EQ(last.clf.total(), s.windows);
}

SloObjective strict_objective() {
    SloObjective o;
    o.name = "clf_tail";
    o.threshold = 2;
    o.quantile = 0.99;
    o.fast_window = 4;
    o.slow_window = 64;
    o.fast_burn = 14.0;
    o.slow_burn = 6.0;
    return o;
}

FleetSnapshot synthetic_epoch(std::uint64_t epoch, std::uint64_t good,
                              std::uint64_t bad) {
    FleetSnapshot s;
    s.epoch = epoch;
    s.step = (epoch + 1) * 8;
    s.clf_delta.record(0, good);   // well under the threshold
    s.clf_delta.record(10, bad);   // over it
    return s;
}

TEST(SloEvaluator, WalksOkBurningBreachedAndRecovers) {
    TraceRecorder sink;
    SloEvaluator eval({strict_objective()}, &sink);
    std::uint64_t epoch = 0;
    // 96 clean epochs: budget untouched.
    for (; epoch < 96; ++epoch) eval.on_snapshot(synthetic_epoch(epoch, 1000, 0));
    EXPECT_EQ(eval.overall_health(), SloHealth::kOk);
    EXPECT_FALSE(eval.ever_breached());
    // One fully-bad epoch: the fast window fires, the slow one dilutes it.
    eval.on_snapshot(synthetic_epoch(epoch++, 0, 1000));
    EXPECT_EQ(eval.overall_health(), SloHealth::kBurning);
    // Three more: the slow window crosses too -> breached.
    for (int i = 0; i < 3; ++i) {
        eval.on_snapshot(synthetic_epoch(epoch++, 0, 1000));
    }
    EXPECT_EQ(eval.overall_health(), SloHealth::kBreached);
    EXPECT_TRUE(eval.ever_breached());
    EXPECT_GE(eval.status(0).fast_burn, 14.0);
    EXPECT_GE(eval.status(0).slow_burn, 6.0);
    // Recovery: clean epochs drain the fast window -> back to kOk, but
    // the breach verdict stays sticky.
    for (int i = 0; i < 8; ++i) {
        eval.on_snapshot(synthetic_epoch(epoch++, 1000, 0));
    }
    EXPECT_EQ(eval.overall_health(), SloHealth::kOk);
    EXPECT_TRUE(eval.ever_breached());

    ASSERT_EQ(eval.transitions().size(), 3u);
    EXPECT_EQ(eval.transitions()[0].to, SloHealth::kBurning);
    EXPECT_EQ(eval.transitions()[0].epoch, 96u);
    EXPECT_EQ(eval.transitions()[1].to, SloHealth::kBreached);
    EXPECT_EQ(eval.transitions()[2].to, SloHealth::kOk);

    // Each transition was mirrored as a kSloHealth trace event.
    const std::vector<TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 3u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].type, espread::obs::EventType::kSloHealth);
        EXPECT_EQ(events[i].window, eval.transitions()[i].epoch);
        EXPECT_EQ(events[i].seq, 0u);  // objective index
        EXPECT_EQ(events[i].arg,
                  static_cast<std::int64_t>(eval.transitions()[i].to));
    }
}

TEST(SloEvaluator, EmptyEpochsSpendNoBudget) {
    SloEvaluator eval({strict_objective()});
    for (std::uint64_t e = 0; e < 8; ++e) {
        eval.on_snapshot(synthetic_epoch(e, 0, 0));
    }
    EXPECT_EQ(eval.overall_health(), SloHealth::kOk);
    EXPECT_EQ(eval.status(0).fast_burn, 0.0);
}

TEST(SloEvaluator, RejectsOutOfOrderEpochsAndBadObjectives) {
    SloEvaluator eval({strict_objective()});
    eval.on_snapshot(synthetic_epoch(0, 10, 0));
    eval.on_snapshot(synthetic_epoch(1, 10, 0));
    EXPECT_THROW(eval.on_snapshot(synthetic_epoch(1, 10, 0)),
                 std::invalid_argument);

    SloObjective bad = strict_objective();
    bad.quantile = 1.0;  // budget would be zero
    EXPECT_THROW(SloEvaluator{std::vector<SloObjective>{bad}},
                 std::invalid_argument);
    bad = strict_objective();
    bad.fast_window = 128;  // fast wider than slow
    EXPECT_THROW(SloEvaluator{std::vector<SloObjective>{bad}},
                 std::invalid_argument);
    bad = strict_objective();
    bad.name.clear();
    EXPECT_THROW(SloEvaluator{std::vector<SloObjective>{bad}},
                 std::invalid_argument);
}

TEST(SloEvaluator, SignalNamesRoundTrip) {
    using espread::obs::telemetry::parse_slo_signal;
    using espread::obs::telemetry::slo_signal_name;
    using espread::obs::telemetry::SloSignal;
    for (const SloSignal sig :
         {SloSignal::kClf, SloSignal::kLossRun, SloSignal::kBound,
          SloSignal::kGovernorDwell}) {
        SloSignal parsed = SloSignal::kClf;
        ASSERT_TRUE(parse_slo_signal(slo_signal_name(sig), parsed));
        EXPECT_EQ(parsed, sig);
    }
    SloSignal parsed = SloSignal::kClf;
    EXPECT_FALSE(parse_slo_signal("latency", parsed));
}

// The engine's Prometheus exposition is derived from the same snapshot;
// spot-check shape and a few exact values.
TEST(EngineTelemetry, PrometheusExpositionMatchesSnapshot) {
    EngineConfig cfg = telemetry_config();
    cfg.shards = 2;
    ShardedEngine engine(cfg);
    engine.run(16);
    ASSERT_NE(engine.telemetry(), nullptr);
    const FleetSnapshot& last = engine.telemetry()->latest();
    const std::string text = espread::obs::telemetry::prometheus_text(last);
    EXPECT_NE(text.find("espread_windows_total " +
                        std::to_string(last.totals.windows)),
              std::string::npos);
    EXPECT_NE(text.find("espread_clf_count " +
                        std::to_string(last.clf.total())),
              std::string::npos);
    EXPECT_NE(text.find("espread_governor_windows_total{state=\"normal\"}"),
              std::string::npos);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
}

}  // namespace
