#include "core/cpo.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/burst.hpp"
#include "core/interleaver.hpp"

namespace {

using espread::calculate_permutation;
using espread::cpo_clf;
using espread::CpoKind;
using espread::CpoResult;
using espread::lower_bound_clf;
using espread::window_for_clf;
using espread::worst_case_clf;

TEST(Cpo, TrivialCases) {
    const CpoResult zero = calculate_permutation(10, 0);
    EXPECT_TRUE(zero.perm.is_identity());
    EXPECT_EQ(zero.clf, 0u);

    const CpoResult whole = calculate_permutation(10, 10);
    EXPECT_EQ(whole.clf, 10u);

    const CpoResult clamped = calculate_permutation(10, 99);
    EXPECT_EQ(clamped.clf, 10u);

    const CpoResult tiny = calculate_permutation(1, 1);
    EXPECT_EQ(tiny.clf, 1u);

    const CpoResult empty = calculate_permutation(0, 3);
    EXPECT_EQ(empty.perm.size(), 0u);
    EXPECT_EQ(empty.clf, 0u);
}

// Property sweep: the reported CLF is exactly the worst case of the
// returned permutation, is at least the packing bound, and never exceeds
// the identity's CLF (= b).
class CpoSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpoSweep, ReportedClfIsExactAndBounded) {
    const auto [n, b] = GetParam();
    const CpoResult r = calculate_permutation(n, b);
    EXPECT_EQ(r.perm.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(r.clf, worst_case_clf(r.perm, b));
    EXPECT_GE(r.clf, lower_bound_clf(n, b));
    EXPECT_LE(r.clf, std::min<std::size_t>(b, n));
}

INSTANTIATE_TEST_SUITE_P(
    SmallWindows, CpoSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 12, 17, 24, 36),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 17)));

// Theorem 1 regime: whenever b*b <= n, CLF 1 is achievable (stride b keeps
// every pair of lost frames at least b apart).
TEST(Cpo, ClfOneWheneverBSquaredAtMostN) {
    for (std::size_t n = 2; n <= 60; ++n) {
        for (std::size_t b = 1; b * b <= n; ++b) {
            EXPECT_EQ(cpo_clf(n, b), 1u) << "n=" << n << " b=" << b;
        }
    }
}

TEST(Cpo, MonotoneInBurstBound) {
    for (std::size_t n : {8u, 17u, 24u}) {
        std::size_t prev = 0;
        for (std::size_t b = 0; b <= n; ++b) {
            const std::size_t c = cpo_clf(n, b);
            EXPECT_GE(c, prev) << "n=" << n << " b=" << b;
            prev = c;
        }
    }
}

TEST(Cpo, Table1WindowSpreadsBurstOfSeven) {
    // The paper's example: 17-frame window, burst of 7 -> CLF 1 via stride 5.
    const CpoResult r = calculate_permutation(17, 7);
    EXPECT_EQ(r.clf, 1u);
}

TEST(Cpo, NeverWorseThanIbo) {
    for (std::size_t n : {8u, 16u, 24u}) {
        const espread::Permutation ibo = espread::ibo_order(n);
        for (std::size_t b = 1; b <= n; ++b) {
            EXPECT_LE(cpo_clf(n, b), worst_case_clf(ibo, b))
                << "n=" << n << " b=" << b;
        }
    }
}

TEST(Cpo, CandidateStridesExhaustiveBelowLimit) {
    const auto cands = espread::cpo_candidate_strides(10, 3);
    ASSERT_EQ(cands.size(), 8u);  // 2..9
    EXPECT_EQ(cands.front(), 2u);
    EXPECT_EQ(cands.back(), 9u);
}

TEST(Cpo, CandidateStridesCuratedAboveLimit) {
    const auto cands = espread::cpo_candidate_strides(1000, 30, /*limit=*/256);
    EXPECT_FALSE(cands.empty());
    EXPECT_LT(cands.size(), 200u);
    for (const std::size_t g : cands) {
        EXPECT_GE(g, 2u);
        EXPECT_LE(g, 999u);
    }
}

TEST(Cpo, LargeWindowStillAchievesClfOneInEasyRegime) {
    // n = 900, b = 30: b*b == n, curated candidates must find stride 30.
    EXPECT_EQ(cpo_clf(900, 30), 1u);
}

TEST(WindowForClf, KnownValues) {
    EXPECT_EQ(window_for_clf(0, 5), 1u);
    EXPECT_EQ(window_for_clf(3, 5), 3u);   // k >= b: even total loss is fine
    EXPECT_EQ(window_for_clf(3, 0), 0u);   // impossible
    // CLF 1 against burst 3 requires at least b*b-ish window.
    const std::size_t n1 = window_for_clf(3, 1);
    EXPECT_EQ(cpo_clf(n1, 3), 1u);
    EXPECT_GT(cpo_clf(n1 - 1, 3), 1u);
}

TEST(WindowForClf, LargerToleranceNeedsNoMoreBuffer) {
    const std::size_t b = 4;
    std::size_t prev = window_for_clf(b, 1);
    for (std::size_t k = 2; k <= b; ++k) {
        const std::size_t w = window_for_clf(b, k);
        EXPECT_LE(w, prev) << "k=" << k;
        prev = w;
    }
}

}  // namespace
