// Deterministic structure-aware fuzz harness for the wire codec.
//
// 100k+ seeded inputs per run: valid records, bit-flipped records (stale
// checksum), truncations, extensions, length-field lies resealed with a
// valid checksum (so the decoder's bounds checks — not the CRC — must hold
// the line), and pure random bodies under a valid checksum.  Every decoder
// is run on every input; the invariants are
//   (1) never crash, never read out of bounds (ASan/UBSan CI job),
//   (2) accept => canonical: re-encoding the decoded record reproduces the
//       input bytes exactly,
//   (3) the whole corpus is a pure function of the seed (byte-identical
//       accept/reject counts across runs and platforms).
// The same mutation engine is reused by the optional libFuzzer target
// (tests/fuzz_codec.cpp, -DESPREAD_LIBFUZZER=ON).
#include "protocol/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace {

using espread::proto::DataPacket;
using espread::proto::Feedback;
using espread::proto::NackRequest;
using espread::proto::WindowTrailer;
using espread::proto::decode_data;
using espread::proto::decode_feedback;
using espread::proto::decode_nack;
using espread::proto::decode_trailer;
using espread::proto::encode;
using espread::proto::peek_type;
using espread::proto::wire_checksum;
using espread::sim::Rng;

/// Recomputes the trailing CRC so structurally-mutated bodies still pass
/// the checksum gate and exercise the field-level validation.
std::vector<std::uint8_t> reseal(std::vector<std::uint8_t> bytes) {
    if (bytes.size() < 2) return bytes;
    bytes.resize(bytes.size() - 2);
    const std::uint16_t crc = wire_checksum(bytes.data(), bytes.size());
    bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
    bytes.push_back(static_cast<std::uint8_t>(crc));
    return bytes;
}

DataPacket random_data(Rng& r) {
    DataPacket p;
    p.seq = r.uniform_int(0, 0xFFFFFFFFull);
    p.window = r.uniform_int(0, 0xFFFFFFFFull);
    p.layer = r.uniform_int(0, 0xFF);
    p.tx_pos = r.uniform_int(0, 0xFFFFFFFFull);
    p.frame_index = r.uniform_int(0, 0xFFFFFFFFull);
    p.num_fragments = r.uniform_int(1, 0xFF);
    p.fragment = r.uniform_int(0, static_cast<std::uint64_t>(p.num_fragments) - 1);
    p.size_bits = r.uniform_int(0, 0xFFFFFFFFull);
    p.retransmission = r.bernoulli(0.5);
    p.parity = r.bernoulli(0.5);
    p.fec_group = r.uniform_int(0, 0xFFFFFFFFull);
    return p;
}

WindowTrailer random_trailer(Rng& r) {
    WindowTrailer t;
    t.seq = r.uniform_int(0, 0xFFFFFFFFFFFFull);
    t.window = r.uniform_int(0, 0xFFFFFFFFull);
    t.layer_sent.resize(r.uniform_int(0, 8));
    for (auto& s : t.layer_sent) s = r.uniform_int(0, 0xFFFFFFFFull);
    return t;
}

Feedback random_feedback(Rng& r) {
    Feedback f;
    f.seq = r.uniform_int(0, 0xFFFFFFFFFFFFull);
    f.window = r.uniform_int(0, 0xFFFFFFFFull);
    const std::size_t layers = r.uniform_int(0, 8);
    f.layer_max_burst.resize(layers);
    f.layer_lost.resize(layers);
    for (std::size_t l = 0; l < layers; ++l) {
        f.layer_max_burst[l] = r.uniform_int(0, 0xFFFFFFFFull);
        f.layer_lost[l] = r.uniform_int(0, 0xFFFFFFFFull);
    }
    return f;
}

NackRequest random_nack(Rng& r) {
    NackRequest n;
    n.seq = r.uniform_int(0, 0xFFFFFFFFull);
    n.window = r.uniform_int(0, 0xFFFFFFFFull);
    n.missing = r.uniform_int(0, 0xFFFFFFFFull) |
                (r.uniform_int(0, 0xFFFFFFFFull) << 32);
    n.rank_deficit = r.uniform_int(0, 0xFF);
    n.retry = r.uniform_int(0, 0xFF);
    // An all-empty request is non-canonical (the decoder rejects it); the
    // valid corpus must only carry requests that name something.
    if (n.missing == 0 && n.rank_deficit == 0) n.rank_deficit = 1;
    return n;
}

std::vector<std::uint8_t> random_valid(Rng& r) {
    switch (r.uniform_int(0, 3)) {
        case 0: return encode(random_data(r));
        case 1: return encode(random_trailer(r));
        case 2: return encode(random_nack(r));
        default: return encode(random_feedback(r));
    }
}

/// One structure-aware mutation of a valid record.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes, Rng& r) {
    switch (r.uniform_int(0, 5)) {
        case 0:
            return bytes;  // valid record, must round-trip
        case 1: {          // bit flips; the stale CRC should catch them
            const std::uint64_t flips = r.uniform_int(1, 8);
            for (std::uint64_t i = 0; i < flips; ++i) {
                const std::uint64_t byte = r.uniform_int(0, bytes.size() - 1);
                bytes[byte] ^= static_cast<std::uint8_t>(
                    1u << r.uniform_int(0, 7));
            }
            return bytes;
        }
        case 2:  // truncation (possibly to empty)
            bytes.resize(r.uniform_int(0, bytes.size()));
            return bytes;
        case 3: {  // extension with random tail, checksum made valid again
            const std::uint64_t extra = r.uniform_int(1, 16);
            for (std::uint64_t i = 0; i < extra; ++i) {
                bytes.push_back(
                    static_cast<std::uint8_t>(r.uniform_int(0, 255)));
            }
            return reseal(bytes);
        }
        case 4: {  // length-field lie / body mutation under a VALID checksum
            // Offset 13 holds the layer-count byte of trailers and feedback
            // (tag + u64 seq + u32 window); lying there is the classic
            // over-read bait.  Otherwise mutate a random body byte.
            const std::size_t target =
                (bytes.size() > 15 && r.bernoulli(0.5))
                    ? 13
                    : static_cast<std::size_t>(
                          r.uniform_int(0, bytes.size() - 1));
            bytes[target] = static_cast<std::uint8_t>(r.uniform_int(0, 255));
            return reseal(bytes);
        }
        default: {  // pure random body under a valid checksum
            bytes.resize(r.uniform_int(0, 64));
            for (auto& b : bytes) {
                b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
            }
            return reseal(bytes);
        }
    }
}

struct Tally {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
};

/// Runs every decoder on one input; accepted records must re-encode to the
/// exact input bytes (canonical codec).
void check_one(const std::vector<std::uint8_t>& bytes, Tally& tally) {
    (void)peek_type(bytes);
    bool any = false;
    if (const auto p = decode_data(bytes)) {
        any = true;
        ASSERT_EQ(encode(*p), bytes) << "DataPacket canonicity violated";
    }
    if (const auto t = decode_trailer(bytes)) {
        any = true;
        ASSERT_EQ(encode(*t), bytes) << "WindowTrailer canonicity violated";
    }
    if (const auto f = decode_feedback(bytes)) {
        any = true;
        ASSERT_EQ(encode(*f), bytes) << "Feedback canonicity violated";
    }
    if (const auto n = decode_nack(bytes)) {
        any = true;
        ASSERT_EQ(encode(*n), bytes) << "NackRequest canonicity violated";
    }
    ++(any ? tally.accepted : tally.rejected);
}

TEST(CodecFuzz, HundredThousandMutatedInputsNeverBreakTheCodec) {
    Rng rng{0xE5F0DD};
    Tally tally;
    constexpr std::size_t kInputs = 100'000;
    for (std::size_t i = 0; i < kInputs; ++i) {
        check_one(mutate(random_valid(rng), rng), tally);
        if (HasFatalFailure()) return;  // first canonicity break is enough
    }
    EXPECT_EQ(tally.accepted + tally.rejected, kInputs);
    // The corpus must exercise both outcomes or the harness is broken.
    EXPECT_GT(tally.accepted, kInputs / 20);
    EXPECT_GT(tally.rejected, kInputs / 20);
}

TEST(CodecFuzz, CorpusIsAPureFunctionOfTheSeed) {
    auto run = [] {
        Rng rng{77};
        Tally tally;
        for (std::size_t i = 0; i < 5'000; ++i) {
            check_one(mutate(random_valid(rng), rng), tally);
        }
        return std::pair{tally.accepted, tally.rejected};
    };
    EXPECT_EQ(run(), run());
}

TEST(CodecFuzz, DegenerateInputsRejected) {
    Tally tally;
    check_one({}, tally);
    check_one({0x01}, tally);
    check_one({0x01, 0x00}, tally);
    check_one(std::vector<std::uint8_t>(3, 0xFF), tally);
    check_one(std::vector<std::uint8_t>(1024, 0x00), tally);
    EXPECT_EQ(tally.accepted, 0u);
    EXPECT_EQ(tally.rejected, 5u);
}

TEST(CodecFuzz, BitFlippedValidRecordsAlmostAlwaysCaughtByChecksum) {
    // Single bit flips must ALWAYS be caught: CRC-16 detects every 1-bit
    // error.  (Multi-flip escapes are possible at ~2^-16 and are covered by
    // the canonicity property above.)
    Rng rng{31337};
    for (std::size_t i = 0; i < 2'000; ++i) {
        std::vector<std::uint8_t> bytes = random_valid(rng);
        const std::uint64_t byte = rng.uniform_int(0, bytes.size() - 1);
        bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        EXPECT_FALSE(decode_data(bytes).has_value());
        EXPECT_FALSE(decode_trailer(bytes).has_value());
        EXPECT_FALSE(decode_feedback(bytes).has_value());
        EXPECT_FALSE(decode_nack(bytes).has_value());
    }
}

TEST(CodecFuzz, EmptyNackIsNonCanonical) {
    // A sealed request naming no missing packets and no rank deficit is
    // meaningless; the decoder must reject it even with a valid CRC.
    NackRequest n;
    n.seq = 7;
    n.window = 3;
    EXPECT_FALSE(decode_nack(encode(n)).has_value());
    n.rank_deficit = 1;
    EXPECT_TRUE(decode_nack(encode(n)).has_value());
}

}  // namespace
