#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace {

using espread::aggregate_loss_count;
using espread::consecutive_loss;
using espread::ContinuityMeter;
using espread::ContinuityReport;
using espread::loss_runs;
using espread::LossMask;
using espread::measure_continuity;

// Paper Fig. 1: two streams, both with aggregate loss 2/4, but stream 1 has
// its losses back-to-back (CLF 2) while stream 2 spreads them (CLF 1).
TEST(Metrics, Figure1Streams) {
    const LossMask stream1{true, false, false, true};
    const LossMask stream2{false, true, false, true};
    const ContinuityReport r1 = measure_continuity(stream1);
    const ContinuityReport r2 = measure_continuity(stream2);
    EXPECT_EQ(r1.unit_losses, 2u);
    EXPECT_EQ(r2.unit_losses, 2u);
    EXPECT_DOUBLE_EQ(r1.alf, 0.5);
    EXPECT_DOUBLE_EQ(r2.alf, 0.5);
    EXPECT_EQ(r1.clf, 2u);
    EXPECT_EQ(r2.clf, 1u);
}

TEST(Metrics, LossRunsEnumeratesMaximalRuns) {
    EXPECT_EQ(loss_runs({true, false, false, true, false}),
              (std::vector<std::size_t>{2, 1}));
    EXPECT_EQ(loss_runs({false, false, false}), (std::vector<std::size_t>{3}));
    EXPECT_TRUE(loss_runs(LossMask{true, true}).empty());
    EXPECT_TRUE(loss_runs(LossMask{}).empty());
}

TEST(Metrics, ConsecutiveLossEdgeCases) {
    EXPECT_EQ(consecutive_loss(LossMask{}), 0u);
    EXPECT_EQ(consecutive_loss({true, true, true}), 0u);
    EXPECT_EQ(consecutive_loss({false, false, false}), 3u);
    EXPECT_EQ(consecutive_loss({false, true, false, false}), 2u);
}

TEST(Metrics, AggregateLossCounts) {
    EXPECT_EQ(aggregate_loss_count(LossMask{}), 0u);
    EXPECT_EQ(aggregate_loss_count({false, true, false}), 2u);
}

TEST(Metrics, EmptyMaskReport) {
    const ContinuityReport r = measure_continuity(LossMask{});
    EXPECT_EQ(r.slots, 0u);
    EXPECT_EQ(r.clf, 0u);
    EXPECT_DOUBLE_EQ(r.alf, 0.0);
}

TEST(ContinuityMeter, TracksPerWindowSeries) {
    ContinuityMeter m;
    m.add_window({false, false, true, true});  // CLF 2
    m.add_window({true, false, true, false});  // CLF 1
    m.add_window({true, true, true, true});    // CLF 0
    ASSERT_EQ(m.windows(), 3u);
    EXPECT_EQ(m.clf_series().ys(), (std::vector<double>{2, 1, 0}));
    EXPECT_DOUBLE_EQ(m.clf_stats().mean(), 1.0);
}

TEST(ContinuityMeter, WindowBoundariesDoNotMergeRuns) {
    ContinuityMeter m;
    // Losses at the tail of window 1 and head of window 2 stay separate.
    m.add_window({true, true, false, false});
    m.add_window({false, false, true, true});
    EXPECT_EQ(m.total().clf, 2u);
    EXPECT_EQ(m.total().unit_losses, 4u);
    EXPECT_EQ(m.total().slots, 8u);
    EXPECT_DOUBLE_EQ(m.total().alf, 0.5);
}

TEST(ContinuityMeter, TotalsTrackWorstWindowClf) {
    ContinuityMeter m;
    m.add_window({false, true, true, true});
    m.add_window({true, false, false, false});
    EXPECT_EQ(m.total().clf, 3u);
}

// Property check of the raw-word engine entry points against the scalar
// metrics: random delivery masks of many sizes, converted to loss-polarity
// words (set bit = loss, tail clear), must agree with consecutive_loss()
// and aggregate_loss_count() exactly.
TEST(RawWordMetrics, MatchScalarMetricsOnRandomMasks) {
    espread::sim::Rng rng(11);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{24}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{128}, std::size_t{200}}) {
        for (int trial = 0; trial < 50; ++trial) {
            LossMask delivered(n);
            std::vector<std::uint64_t> loss_words((n + 63) / 64, 0);
            const double p_loss = rng.uniform();
            for (std::size_t i = 0; i < n; ++i) {
                const bool ok = !rng.bernoulli(p_loss);
                delivered[i] = ok;
                if (!ok) loss_words[i >> 6] |= std::uint64_t{1} << (i & 63);
            }
            EXPECT_EQ(espread::max_set_run(loss_words.data(), loss_words.size()),
                      consecutive_loss(delivered))
                << "n=" << n << " trial=" << trial;
            EXPECT_EQ(
                espread::count_set_bits(loss_words.data(), loss_words.size()),
                aggregate_loss_count(delivered))
                << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(RawWordMetrics, AllSetAndAllClearWords) {
    const std::vector<std::uint64_t> clear(3, 0);
    EXPECT_EQ(espread::max_set_run(clear.data(), clear.size()), 0u);
    EXPECT_EQ(espread::count_set_bits(clear.data(), clear.size()), 0u);
    const std::vector<std::uint64_t> full(3, ~std::uint64_t{0});
    EXPECT_EQ(espread::max_set_run(full.data(), full.size()), 192u);
    EXPECT_EQ(espread::count_set_bits(full.data(), full.size()), 192u);
}

}  // namespace
