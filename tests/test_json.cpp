// JsonWriter hardening: escaping, non-finite doubles, nesting/commas.
#include "exp/json.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "json_check.hpp"

using espread::exp::JsonWriter;
using espread::testing::is_valid_json;

namespace {

TEST(JsonWriter, EscapesQuotesAndBackslashes) {
    JsonWriter j;
    j.begin_object();
    j.key("path").value("C:\\tmp\\\"x\"");
    j.end_object();
    EXPECT_EQ(j.str(), R"({"path":"C:\\tmp\\\"x\""})");
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, EscapesWhitespaceControls) {
    JsonWriter j;
    j.begin_object();
    j.key("s").value("a\nb\rc\td");
    j.end_object();
    EXPECT_EQ(j.str(), "{\"s\":\"a\\nb\\rc\\td\"}");
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, EscapesOtherControlCharsAsUnicode) {
    JsonWriter j;
    std::string s;
    s += '\x01';
    s += '\x1f';
    j.begin_object();
    j.key("s").value(s);
    j.end_object();
    EXPECT_EQ(j.str(), "{\"s\":\"\\u0001\\u001f\"}");
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, EscapedKeysStayValid) {
    JsonWriter j;
    j.begin_object();
    j.key("weird \"key\"\n").value(std::uint64_t{1});
    j.end_object();
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    JsonWriter j;
    j.begin_array();
    j.value(std::numeric_limits<double>::quiet_NaN());
    j.value(std::numeric_limits<double>::infinity());
    j.value(-std::numeric_limits<double>::infinity());
    j.value(1.5);
    j.end_array();
    EXPECT_EQ(j.str(), "[null,null,null,1.5]");
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, DoublesRoundTripExactly) {
    JsonWriter j;
    j.value(0.1);
    const double back = std::stod(j.str());
    EXPECT_EQ(back, 0.1);
}

TEST(JsonWriter, NestedContainersAndCommas) {
    JsonWriter j;
    j.begin_object();
    j.key("a").begin_array();
    j.value(std::uint64_t{1}).value(std::uint64_t{2});
    j.begin_object();
    j.key("b").value(true);
    j.key("c").null();
    j.end_object();
    j.end_array();
    j.key("d").value(std::int64_t{-3});
    j.end_object();
    EXPECT_EQ(j.str(), R"({"a":[1,2,{"b":true,"c":null}],"d":-3})");
    EXPECT_TRUE(is_valid_json(j.str()));
}

TEST(JsonWriter, EmptyContainers) {
    JsonWriter j;
    j.begin_object();
    j.key("o").begin_object().end_object();
    j.key("a").begin_array().end_array();
    j.end_object();
    EXPECT_EQ(j.str(), R"({"o":{},"a":[]})");
    EXPECT_TRUE(is_valid_json(j.str()));
}

// The validator itself has to reject garbage, or the tests above prove
// nothing.
TEST(JsonCheck, RejectsMalformedInput) {
    EXPECT_FALSE(is_valid_json(""));
    EXPECT_FALSE(is_valid_json("{"));
    EXPECT_FALSE(is_valid_json("{\"a\":}"));
    EXPECT_FALSE(is_valid_json("[1,]"));
    EXPECT_FALSE(is_valid_json("{\"a\":1}extra"));
    EXPECT_FALSE(is_valid_json("\"unterminated"));
    EXPECT_FALSE(is_valid_json("\"raw\ncontrol\""));
    EXPECT_FALSE(is_valid_json("nul"));
    EXPECT_FALSE(is_valid_json("1."));
    EXPECT_TRUE(is_valid_json("  {\"a\": [1, 2.5e-3, \"x\"]}  "));
}

}  // namespace
