#include "protocol/receiver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using espread::proto::DataPacket;
using espread::proto::Receiver;
using espread::proto::WindowOutcome;
using espread::proto::WindowTrailer;

DataPacket packet(std::size_t window, std::size_t frame_index, std::size_t layer,
                  std::size_t tx_pos, std::size_t fragment = 0,
                  std::size_t num_fragments = 1) {
    DataPacket p;
    p.window = window;
    p.frame_index = frame_index;
    p.layer = layer;
    p.tx_pos = tx_pos;
    p.fragment = fragment;
    p.num_fragments = num_fragments;
    return p;
}

WindowTrailer trailer(std::size_t window, std::vector<std::size_t> sent) {
    WindowTrailer t;
    t.window = window;
    t.layer_sent = std::move(sent);
    return t;
}

/// 4-LDU window, one layer, no dependencies.
Receiver flat_receiver() {
    return Receiver{4, {4}, std::vector<std::vector<std::size_t>>(4)};
}

TEST(Receiver, CompleteWindowPlaysEverything) {
    Receiver r = flat_receiver();
    for (std::size_t i = 0; i < 4; ++i) r.on_packet(packet(0, i, 0, i));
    r.on_trailer(trailer(0, {4}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.playback, (espread::LossMask{true, true, true, true}));
    EXPECT_EQ(out.frames_received, 4u);
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{0}));
    EXPECT_EQ(out.layer_lost, (std::vector<std::size_t>{0}));
    EXPECT_TRUE(out.trailer_seen);
}

TEST(Receiver, MissingFragmentMeansMissingFrame) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0, 0, 2));  // fragment 0 of 2
    r.on_packet(packet(0, 1, 0, 1));
    r.on_packet(packet(0, 2, 0, 2));
    r.on_packet(packet(0, 3, 0, 3));
    r.on_trailer(trailer(0, {4}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.playback, (espread::LossMask{false, true, true, true}));
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{1}));
}

TEST(Receiver, DuplicateFragmentsAreIdempotent) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0, 0, 2));
    r.on_packet(packet(0, 0, 0, 0, 0, 2));  // duplicate (e.g. retransmission)
    r.on_packet(packet(0, 0, 0, 0, 1, 2));
    r.on_trailer(trailer(0, {1}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_TRUE(out.playback[0]);
}

TEST(Receiver, BurstMeasuredInWireOrderNotPlaybackOrder) {
    Receiver r = flat_receiver();
    // Wire order carries frames 0,2,1,3 at positions 0..3; positions 1 and 2
    // are lost -> wire burst 2, although playback losses (frames 1,2) are
    // also adjacent here.
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(0, 3, 0, 3));
    r.on_trailer(trailer(0, {4}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{2}));
    EXPECT_EQ(out.layer_lost, (std::vector<std::size_t>{2}));
}

TEST(Receiver, TrailerLimitsMeasurementSpanToSentFrames) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(0, 1, 0, 1));
    // Only 2 of 4 frames were sent (deadline drop); both arrived.
    r.on_trailer(trailer(0, {2}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{0}));
    EXPECT_EQ(out.layer_lost, (std::vector<std::size_t>{0}));
    // Unsent frames still count as playback losses.
    EXPECT_EQ(out.playback, (espread::LossMask{true, true, false, false}));
}

TEST(Receiver, WithoutTrailerSpanFallsBackToHighestSeenPosition) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(0, 3, 0, 3));  // positions 1, 2 missing in between
    const WindowOutcome out = r.finalize(0);
    EXPECT_FALSE(out.trailer_seen);
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{2}));
}

TEST(Receiver, UnseenWindowIsTotalLoss) {
    Receiver r = flat_receiver();
    const WindowOutcome out = r.finalize(7);
    EXPECT_EQ(out.playback, (espread::LossMask{false, false, false, false}));
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{4}));
    EXPECT_EQ(out.frames_received, 0u);
}

TEST(Receiver, UndecodableWhenPrerequisiteMissing) {
    // Frames: 0 = I, 1 = B (needs 0 and 2), 2 = P (needs 0).
    std::vector<std::vector<std::size_t>> prereqs{{}, {0, 2}, {0}};
    Receiver r{3, {3}, prereqs};
    // I lost; P and B arrive -> both undecodable.
    r.on_packet(packet(0, 1, 0, 1));
    r.on_packet(packet(0, 2, 0, 2));
    r.on_trailer(trailer(0, {3}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.playback, (espread::LossMask{false, false, false}));
    EXPECT_EQ(out.undecodable, 2u);
    EXPECT_EQ(out.frames_received, 2u);
}

TEST(Receiver, ForwardPrerequisiteHandledByFixedPoint) {
    // B(0) needs P(2); P(2) needs I(1).  I lost -> P undecodable -> B
    // undecodable even though B sits before its prerequisites in playback.
    std::vector<std::vector<std::size_t>> prereqs{{2}, {}, {1}};
    Receiver r{3, {3}, prereqs};
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(0, 2, 0, 2));
    r.on_trailer(trailer(0, {3}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.playback, (espread::LossMask{false, false, false}));
    EXPECT_EQ(out.undecodable, 2u);
}

TEST(Receiver, ParityPacketsIgnored) {
    Receiver r = flat_receiver();
    DataPacket parity = packet(0, 0, 0, 0);
    parity.parity = true;
    r.on_packet(parity);
    r.on_trailer(trailer(0, {1}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_FALSE(out.playback[0]);
}

TEST(Receiver, WindowsIndependentAndReleasedAfterFinalize) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(1, 4, 0, 0));  // frame 4 = local 0 of window 1
    r.on_trailer(trailer(1, {1}));
    const WindowOutcome w1 = r.finalize(1);
    EXPECT_TRUE(w1.playback[0]);
    const WindowOutcome w0 = r.finalize(0);
    EXPECT_TRUE(w0.playback[0]);
    // Finalizing again yields the all-lost default (state released).
    const WindowOutcome again = r.finalize(0);
    EXPECT_FALSE(again.playback[0]);
}

TEST(Receiver, MultiLayerBurstsIndependent) {
    // Two layers of sizes 2 and 3.
    Receiver r{5, {2, 3}, std::vector<std::vector<std::size_t>>(5)};
    r.on_packet(packet(0, 0, 0, 0));  // layer 0 pos 0 ok; pos 1 lost
    r.on_packet(packet(0, 3, 1, 1));  // layer 1 pos 1 ok; pos 0, 2 lost
    r.on_trailer(trailer(0, {2, 3}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.layer_max_burst, (std::vector<std::size_t>{1, 1}));
    EXPECT_EQ(out.layer_lost, (std::vector<std::size_t>{1, 2}));
}

TEST(Receiver, RejectsInvalidConstruction) {
    EXPECT_THROW((Receiver{0, {}, {}}), std::invalid_argument);
    EXPECT_THROW((Receiver{3, {3}, std::vector<std::vector<std::size_t>>(2)}),
                 std::invalid_argument);
}

// ---- hardening against non-FIFO and corrupted delivery --------------------

TEST(Receiver, DuplicatedThenReorderedPacketCountsEachLduOnce) {
    // Regression for the latent FIFO assumption: a frame's fragments arrive,
    // then a network-duplicated copy of fragment 0 shows up late (reordered
    // past the frame's completion).  The duplicate must be discarded, not
    // recounted, and the frame stays complete exactly once.
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0, 0, 2));
    r.on_packet(packet(0, 0, 0, 0, 1, 2));  // completes the frame
    r.on_packet(packet(0, 0, 0, 0, 0, 2));  // late duplicate of fragment 0
    EXPECT_EQ(r.duplicates_dropped(), 1u);
    r.on_trailer(trailer(0, {1}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_TRUE(out.playback[0]);
    EXPECT_EQ(out.frames_received, 1u);
}

TEST(Receiver, ConflictingGeometryCannotClobberEstablishedFrame) {
    // Pre-hardening, every packet overwrote num_fragments/layer/tx_pos, so
    // a corrupted-but-plausible header claiming num_fragments=1 would make
    // a half-arrived 2-fragment frame spuriously "complete".
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0, 0, 2));  // fragment 0 of 2
    r.on_packet(packet(0, 0, 0, 0, 0, 1));  // liar: claims 1 fragment total
    EXPECT_EQ(r.mismatch_dropped(), 1u);
    r.on_trailer(trailer(0, {1}));
    const WindowOutcome out = r.finalize(0);
    EXPECT_FALSE(out.playback[0]);  // fragment 1 of 2 never arrived
}

TEST(Receiver, StalePacketsForFinalizedWindowDiscarded) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0));
    r.finalize(0);
    // Late arrivals for the closed window must not resurrect its state.
    r.on_packet(packet(0, 1, 0, 1));
    r.on_trailer(trailer(0, {4}));
    EXPECT_EQ(r.stale_dropped(), 2u);
    const WindowOutcome again = r.finalize(0);
    EXPECT_EQ(again.frames_received, 0u);
}

TEST(Receiver, DuplicateTrailerFirstWins) {
    Receiver r = flat_receiver();
    r.on_packet(packet(0, 0, 0, 0));
    r.on_packet(packet(0, 1, 0, 1));
    r.on_trailer(trailer(0, {2}));
    r.on_trailer(trailer(0, {4}));  // duplicated/corrupted repeat
    EXPECT_EQ(r.duplicates_dropped(), 1u);
    const WindowOutcome out = r.finalize(0);
    // Measurement span stays at the first trailer's 2 sent frames.
    EXPECT_EQ(out.layer_lost, (std::vector<std::size_t>{0}));
}

TEST(Receiver, ImpossibleHeadersRejected) {
    Receiver r = flat_receiver();
    DataPacket zero_frags = packet(0, 0, 0, 0, 0, 1);
    zero_frags.num_fragments = 0;
    r.on_packet(zero_frags);
    r.on_packet(packet(0, 0, 0, 0, /*fragment=*/5, /*num_fragments=*/2));
    DataPacket bad_layer = packet(0, 0, /*layer=*/9, 0);
    r.on_packet(bad_layer);
    EXPECT_EQ(r.mismatch_dropped(), 3u);
    const WindowOutcome out = r.finalize(0);
    EXPECT_EQ(out.frames_received, 0u);
}

TEST(Receiver, WindowLimitRejectsGarbageWindowNumbers) {
    Receiver r = flat_receiver();
    r.set_window_limit(10);
    r.on_packet(packet(/*window=*/500, 0, 0, 0));
    r.on_trailer(trailer(500, {4}));
    EXPECT_EQ(r.mismatch_dropped(), 2u);
    r.on_packet(packet(9, 0, 0, 0));  // within limit: accepted
    const WindowOutcome out = r.finalize(9);
    EXPECT_EQ(out.frames_received, 1u);
}

}  // namespace
