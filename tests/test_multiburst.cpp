#include "analysis/multiburst.hpp"

#include <gtest/gtest.h>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"

namespace {

using espread::cyclic_stride_order;
using espread::Permutation;
using espread::residue_class_order;
using espread::worst_case_clf;
using espread::analysis::adjacency_exposure;
using espread::analysis::gilbert_clf;
using espread::analysis::min_adjacent_distance;
using espread::analysis::worst_case_clf_two_bursts;

TEST(TwoBursts, DegenerateInputs) {
    EXPECT_EQ(worst_case_clf_two_bursts(Permutation::identity(8), 0), 0u);
    EXPECT_EQ(worst_case_clf_two_bursts(Permutation{std::vector<std::size_t>{}}, 3), 0u);
}

TEST(TwoBursts, AtLeastSingleBurstWorstCase) {
    for (std::size_t stride : {2u, 3u, 5u}) {
        const Permutation p = residue_class_order(17, stride);
        for (std::size_t b = 1; b <= 8; ++b) {
            EXPECT_GE(worst_case_clf_two_bursts(p, b), worst_case_clf(p, b))
                << "stride=" << stride << " b=" << b;
        }
    }
}

TEST(TwoBursts, IdentityStacksBothBursts) {
    // Two adjacent-in-playback bursts of b merge into a 2b run when the
    // identity order places them back to back... they are disjoint in
    // transmission, but in playback the runs abut: slots [0,b) and [b,2b).
    const Permutation id = Permutation::identity(12);
    EXPECT_EQ(worst_case_clf_two_bursts(id, 3), 6u);
    EXPECT_EQ(worst_case_clf_two_bursts(id, 6), 12u);
}

TEST(TwoBursts, ExposesFragilityOfStrideTwo) {
    // residue(16, 2) guarantees CLF 1 against one burst <= 8, but two
    // bursts (one per residue class) create adjacent playback losses.
    const Permutation p = residue_class_order(16, 2);
    EXPECT_EQ(worst_case_clf(p, 4), 1u);
    EXPECT_GE(worst_case_clf_two_bursts(p, 4), 2u);
}

TEST(TwoBursts, WholeWindowCap) {
    const Permutation p = residue_class_order(10, 3);
    EXPECT_EQ(worst_case_clf_two_bursts(p, 5), 10u);  // 2x5 = everything
}

TEST(AdjacencyExposure, CountsPairsPerWireDistance) {
    // identity: all n-1 adjacent pairs at distance 1.
    const auto e = adjacency_exposure(Permutation::identity(6));
    EXPECT_EQ(e[1], 5u);
    EXPECT_EQ(e[2], 0u);
    // residue(6, 2): classes {0,2,4},{1,3,5}; pair (x, x+1) sits 3 apart
    // except pairs within a class... x=0: slots 0 and 3 -> d 3; x=1: slots
    // 3 and 1 -> 2; x=2: 1,4 -> 3; x=3: 4,2 -> 2; x=4: 2,5 -> 3.
    const auto e2 = adjacency_exposure(residue_class_order(6, 2));
    EXPECT_EQ(e2[2], 2u);
    EXPECT_EQ(e2[3], 3u);
    EXPECT_EQ(e2[1], 0u);
}

TEST(AdjacencyExposure, SumsToNMinusOne) {
    for (std::size_t stride : {2u, 3u, 4u}) {
        const auto e = adjacency_exposure(residue_class_order(13, stride));
        std::size_t total = 0;
        for (const auto c : e) total += c;
        EXPECT_EQ(total, 12u);
    }
}

TEST(MinAdjacentDistance, MatchesSingleBurstTolerance) {
    // A permutation tolerates any single burst of length d with CLF 1 iff
    // every playback-adjacent pair is at wire distance > d... i.e. iff
    // min_adjacent_distance > d.
    for (std::size_t stride : {3u, 5u, 7u}) {
        const Permutation p = cyclic_stride_order(17, stride);
        const std::size_t d = min_adjacent_distance(p);
        EXPECT_EQ(worst_case_clf(p, d), 1u) << "stride " << stride;
        EXPECT_GE(worst_case_clf(p, d + 1), 2u) << "stride " << stride;
    }
}

TEST(MinAdjacentDistance, TrivialSizes) {
    EXPECT_EQ(min_adjacent_distance(Permutation::identity(1)), 1u);
    EXPECT_EQ(min_adjacent_distance(Permutation::identity(2)), 1u);
}

TEST(GilbertClf, LosslessChannelGivesZeroClf) {
    const auto r = gilbert_clf(Permutation::identity(24), {1.0, 0.0}, 50,
                               espread::sim::Rng{1});
    EXPECT_EQ(r.clf.count(), 50u);
    EXPECT_DOUBLE_EQ(r.clf.mean(), 0.0);
    EXPECT_DOUBLE_EQ(r.alf, 0.0);
}

TEST(GilbertClf, AlfTracksStationaryLoss) {
    const espread::net::GilbertParams params{0.92, 0.6};
    const auto r = gilbert_clf(Permutation::identity(24), params, 5000,
                               espread::sim::Rng{2});
    EXPECT_NEAR(r.alf, espread::net::GilbertLoss::stationary_loss(params), 0.01);
}

TEST(GilbertClf, SpreadingBeatsIdentityUnderBurstyLoss) {
    const espread::net::GilbertParams params{0.92, 0.6};
    const std::size_t n = 24;
    const auto id = gilbert_clf(Permutation::identity(n), params, 3000,
                                espread::sim::Rng{3});
    const auto spread = gilbert_clf(espread::calculate_permutation(n, 4).perm,
                                    params, 3000, espread::sim::Rng{3});
    EXPECT_LT(spread.clf.mean(), id.clf.mean());
    EXPECT_NEAR(spread.alf, id.alf, 0.02);  // bandwidth/loss-rate neutral
}

TEST(GilbertClf, DeterministicPerSeed) {
    const Permutation p = residue_class_order(16, 3);
    const auto a = gilbert_clf(p, {0.9, 0.5}, 100, espread::sim::Rng{7});
    const auto b = gilbert_clf(p, {0.9, 0.5}, 100, espread::sim::Rng{7});
    EXPECT_DOUBLE_EQ(a.clf.mean(), b.clf.mean());
    EXPECT_DOUBLE_EQ(a.alf, b.alf);
}

}  // namespace
