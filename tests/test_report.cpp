#include "protocol/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace {

using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::summarize;
using espread::proto::write_csv;
using espread::proto::write_csv_file;

SessionResult small_result() {
    SessionConfig cfg;
    cfg.num_windows = 5;
    cfg.seed = 3;
    return run_session(cfg);
}

TEST(Report, CsvHasHeaderAndOneRowPerWindow) {
    const SessionResult r = small_result();
    std::ostringstream out;
    write_csv(out, r);
    std::istringstream in{out.str()};
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 11), "window,clf,");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // 9 columns -> 8 commas
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 8);
    }
    EXPECT_EQ(rows, 5u);
}

TEST(Report, CsvRowsMatchWindowReports) {
    const SessionResult r = small_result();
    std::ostringstream out;
    write_csv(out, r);
    std::istringstream in{out.str()};
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, line);  // window 0
    std::istringstream row{line};
    std::string cell;
    std::getline(row, cell, ',');
    EXPECT_EQ(cell, "0");
    std::getline(row, cell, ',');
    EXPECT_EQ(cell, std::to_string(r.windows[0].clf));
}

TEST(Report, CsvFileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/espread_report.csv";
    write_csv_file(path, small_result());
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("bound_used"), std::string::npos);
    EXPECT_THROW(write_csv_file("/nonexistent/dir/x.csv", small_result()),
                 std::runtime_error);
}

TEST(Report, SummaryMentionsKeyStatistics) {
    const std::string s = summarize(small_result());
    EXPECT_NE(s.find("5 windows"), std::string::npos);
    EXPECT_NE(s.find("CLF mean"), std::string::npos);
    EXPECT_NE(s.find("ALF"), std::string::npos);
    EXPECT_NE(s.find("ACKs applied"), std::string::npos);
}

}  // namespace
