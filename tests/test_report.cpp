#include "protocol/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

namespace {

using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::summarize;
using espread::proto::write_csv;
using espread::proto::write_csv_file;

SessionResult small_result() {
    SessionConfig cfg;
    cfg.num_windows = 5;
    cfg.seed = 3;
    return run_session(cfg);
}

TEST(Report, CsvHasHeaderAndOneRowPerWindow) {
    const SessionResult r = small_result();
    std::ostringstream out;
    write_csv(out, r);
    std::istringstream in{out.str()};
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 11), "window,clf,");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // 10 columns -> 9 commas
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9);
    }
    EXPECT_EQ(rows, 5u);
}

TEST(Report, CsvIncludesPlayoutClfColumn) {
    const SessionResult r = small_result();
    ASSERT_EQ(r.playout_window_clf.size(), r.windows.size());
    std::ostringstream out;
    write_csv(out, r);
    std::istringstream in{out.str()};
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find(",playout_clf"), std::string::npos);
    std::getline(in, line);  // window 0
    const std::size_t last_comma = line.rfind(',');
    ASSERT_NE(last_comma, std::string::npos);
    EXPECT_EQ(line.substr(last_comma + 1),
              std::to_string(r.playout_window_clf[0]));
}

TEST(Report, CsvRowsMatchWindowReports) {
    const SessionResult r = small_result();
    std::ostringstream out;
    write_csv(out, r);
    std::istringstream in{out.str()};
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, line);  // window 0
    std::istringstream row{line};
    std::string cell;
    std::getline(row, cell, ',');
    EXPECT_EQ(cell, "0");
    std::getline(row, cell, ',');
    EXPECT_EQ(cell, std::to_string(r.windows[0].clf));
}

TEST(Report, CsvFileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/espread_report.csv";
    write_csv_file(path, small_result());
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("bound_used"), std::string::npos);
    EXPECT_THROW(write_csv_file("/nonexistent/dir/x.csv", small_result()),
                 std::runtime_error);
}

TEST(Report, SummaryMentionsKeyStatistics) {
    const std::string s = summarize(small_result());
    EXPECT_NE(s.find("5 windows"), std::string::npos);
    EXPECT_NE(s.find("CLF mean"), std::string::npos);
    EXPECT_NE(s.find("playout CLF mean"), std::string::npos);
    EXPECT_NE(s.find("ALF"), std::string::npos);
    EXPECT_NE(s.find("ACKs applied"), std::string::npos);
    EXPECT_NE(s.find("required startup"), std::string::npos);
    EXPECT_NE(s.find(" ms"), std::string::npos);
}

TEST(Report, OneWindowSummaryHasZeroDeviationNotNaN) {
    // A 1-window session exercises the n == 1 Welford edge everywhere the
    // report aggregates: the deviation must render as exactly 0.00.
    SessionConfig cfg;
    cfg.num_windows = 1;
    cfg.seed = 3;
    const SessionResult r = run_session(cfg);
    ASSERT_EQ(r.windows.size(), 1u);
    const espread::sim::RunningStats s = r.clf_stats();
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.deviation(), 0.0);
    EXPECT_FALSE(std::isnan(r.playout_clf_stats().deviation()));
    const std::string text = summarize(r);
    EXPECT_NE(text.find("1 windows"), std::string::npos);
    EXPECT_NE(text.find("dev 0.00"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("governor"), std::string::npos)
        << "ungoverned summaries must not mention the governor";
}

TEST(Report, EventCsvSortsByTimeWithOneRowPerEvent) {
    std::vector<espread::obs::TraceEvent> events;
    espread::obs::TraceEvent a;
    a.time = espread::sim::from_millis(5);
    a.type = espread::obs::EventType::kPacketLost;
    a.actor = espread::obs::Actor::kDataChannel;
    a.seq = 2;
    espread::obs::TraceEvent b;
    b.time = espread::sim::from_millis(1);
    b.type = espread::obs::EventType::kPacketSent;
    b.actor = espread::obs::Actor::kDataChannel;
    b.seq = 1;
    events.push_back(a);
    events.push_back(b);

    std::ostringstream out;
    espread::proto::write_event_csv(out, events);
    std::istringstream in{out.str()};
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time_s,actor,event,window,seq,arg,v0,v1");
    std::getline(in, line);
    EXPECT_NE(line.find("PacketSent"), std::string::npos);  // 1 ms first
    std::getline(in, line);
    EXPECT_NE(line.find("PacketLost"), std::string::npos);
    EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
