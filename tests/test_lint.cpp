// espread_lint's own test suite.
//
// Fixture files under tests/lint_fixtures/ mirror the repo layout (the
// path-scoped rules D2/D5 key off src/exp, src/ prefixes) and carry one
// seeded violation per rule plus clean and suppressed variants; assertions
// pin exact rule ids and line numbers.  The suite also lints the real
// source tree under the shipped allowlist and requires zero findings —
// the same gate CI applies — so a contract violation anywhere in
// src/bench/tests/examples fails tier-1 locally, not just in CI.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace {

using espread::lint::Diagnostic;
using espread::lint::LintConfig;
using espread::lint::Severity;

// Fixture scans run without the repo allowlist: the allowlist's job on the
// real tree is precisely to mute these files.
LintConfig bare_config() { return espread::lint::default_config(); }

std::vector<Diagnostic> lint_fixture(const std::string& rel) {
    return espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/" + rel, rel, bare_config());
}

/// (rule, line) pairs, for order-insensitive exact-set comparison.
std::vector<std::pair<std::string, std::size_t>> keys(
    const std::vector<Diagnostic>& diags) {
    std::vector<std::pair<std::string, std::size_t>> out;
    out.reserve(diags.size());
    for (const Diagnostic& d : diags) out.emplace_back(d.rule, d.line);
    return out;
}

using Keys = std::vector<std::pair<std::string, std::size_t>>;

TEST(LintRules, TableListsD0ThroughD5) {
    const auto& rules = espread::lint::rules();
    ASSERT_EQ(rules.size(), 6u);
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i].id, "D" + std::to_string(i));
        EXPECT_TRUE(espread::lint::known_rule(rules[i].id));
    }
    EXPECT_FALSE(espread::lint::known_rule("D9"));
    EXPECT_FALSE(espread::lint::known_rule(""));
}

TEST(LintFixtures, D1FlagsEntropySource) {
    const auto diags = lint_fixture("src/core/d1_entropy.cpp");
    ASSERT_EQ(keys(diags), (Keys{{"D1", 10}}));
    EXPECT_EQ(diags[0].severity, Severity::kError);
    EXPECT_NE(diags[0].message.find("random_device"), std::string::npos);
}

TEST(LintFixtures, D2FlagsHashContainersInOrderedOutputPath) {
    const auto diags = lint_fixture("src/exp/d2_hash_merge.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D2", 5}, {"D2", 9}}));
}

TEST(LintFixtures, D2IgnoresHashContainersOutsideOrderedOutputPaths) {
    // The same content under src/core (not an ordered-output path) is fine.
    const auto diags = espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/src/exp/d2_hash_merge.cpp",
        "src/core/d2_hash_merge.cpp", bare_config());
    EXPECT_TRUE(diags.empty());
}

TEST(LintFixtures, D3FlagsDefaultInContractEnumSwitch) {
    const auto diags = lint_fixture("src/obs/d3_default_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 13}}));
}

TEST(LintFixtures, D3FlagsDefaultInSchemeSwitchAcceptsExhaustiveOne) {
    const auto diags = lint_fixture("src/protocol/d3_scheme_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 21}}));
}

TEST(LintFixtures, D3FlagsDefaultInRecoveryModeSwitchAcceptsExhaustiveOne) {
    const auto diags =
        lint_fixture("src/protocol/d3_recovery_mode_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 17}}));
}

TEST(LintFixtures, D4FlagsUngatedSinkCallAcceptsGatedOne) {
    const auto diags = lint_fixture("src/protocol/d4_ungated_sink.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 15}}));
}

TEST(LintFixtures, D4MatchesObserveFamilyThroughMethodNameContinuation) {
    const auto diags = lint_fixture("src/engine/d4_observe_sites.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 15}}));
}

TEST(LintFixtures, D4FlagsUngatedFecTraceSiteAcceptsGatedOne) {
    const auto diags = lint_fixture("src/fec/d4_rlc_trace.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 16}}));
}

TEST(LintFixtures, D5FlagsIostreamRawNewAndDelete) {
    const auto diags = lint_fixture("src/media/d5_raw_new.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D5", 3}, {"D5", 12}, {"D5", 16}}));
}

TEST(LintFixtures, CleanFileHasNoFindings) {
    const auto diags = lint_fixture("src/core/clean.cpp");
    EXPECT_TRUE(diags.empty()) << espread::lint::format_gcc(diags.front());
}

TEST(LintFixtures, ValidSuppressionsSilenceFindings) {
    const auto diags = lint_fixture("src/core/suppressed.cpp");
    EXPECT_TRUE(diags.empty()) << espread::lint::format_gcc(diags.front());
}

TEST(LintFixtures, SuppressionWithoutReasonIsFlaggedAndIneffective) {
    const auto diags = lint_fixture("src/core/suppressed_no_reason.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D0", 9}, {"D1", 9}}));
}

TEST(LintFixtures, TreeScanAggregatesAllSeededViolations) {
    const auto diags = espread::lint::lint_tree(ESPREAD_LINT_FIXTURES,
                                                {"src"}, bare_config());
    // 1 (D1) + 2 (D2) + 3 (D3) + 3 (D4) + 3 (D5) + 2 (D0+D1 no-reason).
    EXPECT_EQ(diags.size(), 14u);
    // Deterministic order: sorted by path, then line.
    for (std::size_t i = 1; i < diags.size(); ++i) {
        EXPECT_LE(diags[i - 1].path, diags[i].path);
    }
}

TEST(LintSuppressions, UnknownRuleIdInAllowIsMalformed) {
    const auto diags = espread::lint::lint_source(
        "src/core/x.cpp",
        "// espread-lint: allow(D9) not a rule\nint x = 0;\n", bare_config());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D0");
}

TEST(LintSuppressions, SuppressionOnlyMutesNamedRules) {
    // allow(D3) does not mute the D1 on the same line.
    const auto diags = espread::lint::lint_source(
        "src/core/x.cpp",
        "#include <ctime>\n"
        "long f() { return time(nullptr); }  "
        "// espread-lint: allow(D3) wrong rule id for this site\n",
        bare_config());
    EXPECT_EQ(keys(diags), (Keys{{"D1", 2}}));
}

TEST(LintAllowlist, GlobMatchingCrossesDirectories) {
    using espread::lint::glob_match;
    EXPECT_TRUE(glob_match("src/sim/rng.*", "src/sim/rng.cpp"));
    EXPECT_TRUE(glob_match("src/sim/rng.*", "src/sim/rng.hpp"));
    EXPECT_FALSE(glob_match("src/sim/rng.*", "src/sim/stats.cpp"));
    EXPECT_TRUE(glob_match("bench/*", "bench/bench_fig8_loss.cpp"));
    EXPECT_TRUE(glob_match("tests/lint_fixtures/*",
                           "tests/lint_fixtures/src/core/clean.cpp"));
    EXPECT_FALSE(glob_match("tests/lint_fixtures/*", "tests/test_lint.cpp"));
    EXPECT_TRUE(glob_match("*", "anything/at/all.hpp"));
}

TEST(LintAllowlist, EntriesExemptMatchingFilesFromTheNamedRule) {
    LintConfig cfg = bare_config();
    cfg.allowlist.push_back({"D1", "src/core/d1_*"});
    const auto diags = espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/src/core/d1_entropy.cpp",
        "src/core/d1_entropy.cpp", cfg);
    EXPECT_TRUE(diags.empty());
}

TEST(LintFormat, GccStyleDiagnosticsAreClickable) {
    const Diagnostic d{"src/exp/runner.cpp", 94, "D1", "bad", Severity::kError};
    EXPECT_EQ(espread::lint::format_gcc(d),
              "src/exp/runner.cpp:94: error: bad [D1]");
}

// The acceptance gate: the real tree lints clean under the shipped
// allowlist — exactly the scan CI runs (espread_lint --root=<repo> src
// bench tests examples).
TEST(LintRepo, SourceTreeIsCleanUnderShippedAllowlist) {
    LintConfig cfg = bare_config();
    std::string err;
    ASSERT_TRUE(espread::lint::load_allowlist_file(
        std::string(ESPREAD_REPO_ROOT) + "/tools/espread_lint/allowlist.txt",
        cfg, &err))
        << err;
    const auto diags = espread::lint::lint_tree(
        ESPREAD_REPO_ROOT, {"src", "bench", "tests", "examples"}, cfg);
    for (const Diagnostic& d : diags) {
        ADD_FAILURE() << espread::lint::format_gcc(d);
    }
}

}  // namespace
