// espread_lint's own test suite.
//
// Fixture files under tests/lint_fixtures/ mirror the repo layout (the
// path-scoped rules D2/D5 key off src/exp, src/ prefixes) and carry one
// seeded violation per rule plus clean and suppressed variants; assertions
// pin exact rule ids and line numbers.  The suite also lints the real
// source tree under the shipped allowlist and requires zero findings —
// the same gate CI applies — so a contract violation anywhere in
// src/bench/tests/examples fails tier-1 locally, not just in CI.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "contracts.hpp"

namespace {

using espread::lint::Diagnostic;
using espread::lint::LintConfig;
using espread::lint::ScanOptions;
using espread::lint::Severity;

// Fixture scans run without the repo allowlist: the allowlist's job on the
// real tree is precisely to mute these files.
LintConfig bare_config() { return espread::lint::default_config(); }

std::vector<Diagnostic> lint_fixture(const std::string& rel) {
    return espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/" + rel, rel, bare_config());
}

// Contract fixtures are mini repo trees under contracts/<case>/; each scan
// runs the C rules only, so the fixtures need not be D-clean.
std::vector<Diagnostic> scan_contract_fixture(
    const std::string& fixture, const std::vector<std::string>& paths) {
    ScanOptions opt;
    opt.token_rules = false;
    opt.contract_rules = true;
    return espread::lint::scan_tree(
        std::string(ESPREAD_LINT_FIXTURES) + "/contracts/" + fixture, paths,
        bare_config(), opt);
}

/// (rule, line) pairs, for order-insensitive exact-set comparison.
std::vector<std::pair<std::string, std::size_t>> keys(
    const std::vector<Diagnostic>& diags) {
    std::vector<std::pair<std::string, std::size_t>> out;
    out.reserve(diags.size());
    for (const Diagnostic& d : diags) out.emplace_back(d.rule, d.line);
    return out;
}

using Keys = std::vector<std::pair<std::string, std::size_t>>;

TEST(LintRules, TableListsTokenAndContractRules) {
    const auto& rules = espread::lint::rules();
    ASSERT_EQ(rules.size(), 11u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(rules[i].id, "D" + std::to_string(i));
        EXPECT_TRUE(espread::lint::known_rule(rules[i].id));
    }
    for (std::size_t i = 6; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i].id, "C" + std::to_string(i - 5));
        EXPECT_TRUE(espread::lint::known_rule(rules[i].id));
    }
    EXPECT_FALSE(espread::lint::known_rule("D9"));
    EXPECT_FALSE(espread::lint::known_rule("C0"));
    EXPECT_FALSE(espread::lint::known_rule("C6"));
    EXPECT_FALSE(espread::lint::known_rule(""));
}

TEST(LintFixtures, D1FlagsEntropySource) {
    const auto diags = lint_fixture("src/core/d1_entropy.cpp");
    ASSERT_EQ(keys(diags), (Keys{{"D1", 10}}));
    EXPECT_EQ(diags[0].severity, Severity::kError);
    EXPECT_NE(diags[0].message.find("random_device"), std::string::npos);
}

TEST(LintFixtures, D2FlagsHashContainersInOrderedOutputPath) {
    const auto diags = lint_fixture("src/exp/d2_hash_merge.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D2", 5}, {"D2", 9}}));
}

TEST(LintFixtures, D2IgnoresHashContainersOutsideOrderedOutputPaths) {
    // The same content under src/core (not an ordered-output path) is fine.
    const auto diags = espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/src/exp/d2_hash_merge.cpp",
        "src/core/d2_hash_merge.cpp", bare_config());
    EXPECT_TRUE(diags.empty());
}

TEST(LintFixtures, D3FlagsDefaultInContractEnumSwitch) {
    const auto diags = lint_fixture("src/obs/d3_default_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 13}}));
}

TEST(LintFixtures, D3FlagsDefaultInSchemeSwitchAcceptsExhaustiveOne) {
    const auto diags = lint_fixture("src/protocol/d3_scheme_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 21}}));
}

TEST(LintFixtures, D3FlagsDefaultInRecoveryModeSwitchAcceptsExhaustiveOne) {
    const auto diags =
        lint_fixture("src/protocol/d3_recovery_mode_switch.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D3", 17}}));
}

TEST(LintFixtures, D4FlagsUngatedSinkCallAcceptsGatedOne) {
    const auto diags = lint_fixture("src/protocol/d4_ungated_sink.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 15}}));
}

TEST(LintFixtures, D4MatchesObserveFamilyThroughMethodNameContinuation) {
    const auto diags = lint_fixture("src/engine/d4_observe_sites.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 15}}));
}

TEST(LintFixtures, D4FlagsUngatedFecTraceSiteAcceptsGatedOne) {
    const auto diags = lint_fixture("src/fec/d4_rlc_trace.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D4", 16}}));
}

TEST(LintFixtures, D5FlagsIostreamRawNewAndDelete) {
    const auto diags = lint_fixture("src/media/d5_raw_new.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D5", 3}, {"D5", 12}, {"D5", 16}}));
}

TEST(LintFixtures, CleanFileHasNoFindings) {
    const auto diags = lint_fixture("src/core/clean.cpp");
    EXPECT_TRUE(diags.empty()) << espread::lint::format_gcc(diags.front());
}

TEST(LintFixtures, ValidSuppressionsSilenceFindings) {
    const auto diags = lint_fixture("src/core/suppressed.cpp");
    EXPECT_TRUE(diags.empty()) << espread::lint::format_gcc(diags.front());
}

TEST(LintFixtures, SuppressionWithoutReasonIsFlaggedAndIneffective) {
    const auto diags = lint_fixture("src/core/suppressed_no_reason.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"D0", 9}, {"D1", 9}}));
}

TEST(LintFixtures, TreeScanAggregatesAllSeededViolations) {
    const auto diags = espread::lint::lint_tree(ESPREAD_LINT_FIXTURES,
                                                {"src"}, bare_config());
    // 1 (D1) + 2 (D2) + 3 (D3) + 3 (D4) + 3 (D5) + 2 (D0+D1 no-reason).
    EXPECT_EQ(diags.size(), 14u);
    // Deterministic order: sorted by path, then line.
    for (std::size_t i = 1; i < diags.size(); ++i) {
        EXPECT_LE(diags[i - 1].path, diags[i].path);
    }
}

TEST(LintSuppressions, UnknownRuleIdInAllowIsMalformed) {
    const auto diags = espread::lint::lint_source(
        "src/core/x.cpp",
        "// espread-lint: allow(D9) not a rule\nint x = 0;\n", bare_config());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D0");
}

TEST(LintSuppressions, SuppressionOnlyMutesNamedRules) {
    // allow(D3) does not mute the D1 on the same line.
    const auto diags = espread::lint::lint_source(
        "src/core/x.cpp",
        "#include <ctime>\n"
        "long f() { return time(nullptr); }  "
        "// espread-lint: allow(D3) wrong rule id for this site\n",
        bare_config());
    EXPECT_EQ(keys(diags), (Keys{{"D1", 2}}));
}

TEST(LintAllowlist, GlobMatchingIsSegmentAwareWithDoubleStar) {
    using espread::lint::glob_match;
    EXPECT_TRUE(glob_match("src/sim/rng.*", "src/sim/rng.cpp"));
    EXPECT_TRUE(glob_match("src/sim/rng.*", "src/sim/rng.hpp"));
    EXPECT_FALSE(glob_match("src/sim/rng.*", "src/sim/stats.cpp"));
    EXPECT_TRUE(glob_match("bench/*", "bench/bench_fig8_loss.cpp"));
    // `*` stops at '/': nested paths need `**`.
    EXPECT_FALSE(glob_match("bench/*", "bench/baselines/frozen.cpp"));
    EXPECT_TRUE(glob_match("bench/**", "bench/baselines/frozen.cpp"));
    EXPECT_TRUE(glob_match("tests/lint_fixtures/**",
                           "tests/lint_fixtures/src/core/clean.cpp"));
    EXPECT_FALSE(glob_match("tests/lint_fixtures/*",
                            "tests/lint_fixtures/src/core/clean.cpp"));
    EXPECT_FALSE(glob_match("tests/lint_fixtures/**", "tests/test_lint.cpp"));
    EXPECT_FALSE(glob_match("*", "anything/at/all.hpp"));
    EXPECT_TRUE(glob_match("**", "anything/at/all.hpp"));
    EXPECT_TRUE(glob_match("src/**/rng.?pp", "src/sim/detail/rng.hpp"));
    EXPECT_FALSE(glob_match("src/?", "src/ab"));
}

TEST(LintAllowlist, EntriesExemptMatchingFilesFromTheNamedRule) {
    LintConfig cfg = bare_config();
    cfg.allowlist.push_back({"D1", "src/core/d1_*"});
    const auto diags = espread::lint::lint_file(
        std::string(ESPREAD_LINT_FIXTURES) + "/src/core/d1_entropy.cpp",
        "src/core/d1_entropy.cpp", cfg);
    EXPECT_TRUE(diags.empty());
}

TEST(LintFormat, GccStyleDiagnosticsAreClickable) {
    const Diagnostic d{"src/exp/runner.cpp", 94, "D1", "bad", Severity::kError};
    EXPECT_EQ(espread::lint::format_gcc(d),
              "src/exp/runner.cpp:94: error: bad [D1]");
}

// ---- contract rules (C1-C5) over fixture mini-trees ------------------------

TEST(ContractFixtures, C1FlagsMagicLaneAndHonorsSuppression) {
    const auto diags = scan_contract_fixture("c1_magic_lane", {"src"});
    ASSERT_EQ(keys(diags), (Keys{{"C1", 6}}));
    EXPECT_EQ(diags[0].path, "src/protocol/user.cpp");
    EXPECT_NE(diags[0].message.find("magic RNG split lane 4"),
              std::string::npos);
}

TEST(ContractFixtures, C1FlagsCollisionScopeBreachAndRogueDeclaration) {
    const auto diags = scan_contract_fixture("c1_collision", {"src"});
    ASSERT_EQ(diags.size(), 4u);
    // Sorted by path: the scope breach, the out-of-registry declaration and
    // its (unregistered) use, then the value collision in the registry.
    EXPECT_EQ(diags[0].path, "src/engine/user.cpp");
    EXPECT_EQ(keys(diags), (Keys{{"C1", 6}, {"C1", 5}, {"C1", 9}, {"C1", 8}}));
    EXPECT_EQ(diags[1].path, "src/protocol/rogue.cpp");
    EXPECT_EQ(diags[3].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[3].message.find("collides"), std::string::npos);
}

TEST(ContractFixtures, C2FlagsMagicTagAndTheTagItOrphans) {
    const auto diags = scan_contract_fixture("c2_magic_tag", {"src", "tests"});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(keys(diags), (Keys{{"C2", 12}, {"C5", 8}}));
    EXPECT_EQ(diags[0].path, "src/protocol/codec.hpp");
    EXPECT_NE(diags[0].message.find("magic wire tag 9"), std::string::npos);
    EXPECT_EQ(diags[1].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[1].message.find("dead wire tag"), std::string::npos);
}

TEST(ContractFixtures, C2FlagsTagWithoutFuzzCorpusCoverage) {
    const auto diags = scan_contract_fixture("c2_no_fuzz", {"src", "tests"});
    ASSERT_EQ(keys(diags), (Keys{{"C2", 8}}));
    EXPECT_EQ(diags[0].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[0].message.find("fuzz"), std::string::npos);
}

TEST(ContractFixtures, C3FlagsUnregisteredMetricAndHonorsSuppression) {
    const auto diags =
        scan_contract_fixture("c3_unregistered_metric", {"src"});
    ASSERT_EQ(keys(diags), (Keys{{"C3", 6}}));
    EXPECT_EQ(diags[0].path, "src/protocol/user.cpp");
    EXPECT_NE(diags[0].message.find("rogue_metric"), std::string::npos);
}

TEST(ContractFixtures, C3FlagsSignalNameDriftInBothDirections) {
    const auto diags = scan_contract_fixture("c3_signal_drift", {"src"});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(keys(diags), (Keys{{"C3", 8}, {"C3", 9}}));
    EXPECT_EQ(diags[0].path, "src/obs/telemetry/slo.cpp");
    EXPECT_NE(diags[0].message.find("bound_used"), std::string::npos);
    EXPECT_EQ(diags[1].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[1].message.find("\"bound\""), std::string::npos);
}

TEST(ContractFixtures, C4FlagsUnregisteredGateKeyAndUnemittedKey) {
    const auto diags = scan_contract_fixture("c4_gate", {"src", "bench"});
    ASSERT_EQ(diags.size(), 4u);
    EXPECT_EQ(diags[0].path, ".github/workflows/ci.yml");
    EXPECT_EQ(diags[1].path, ".github/workflows/ci.yml");
    EXPECT_EQ(keys(diags), (Keys{{"C4", 6}, {"C4", 6}, {"C5", 4}, {"C5", 8}}));
    EXPECT_EQ(diags[2].path, "bench/baselines/BENCH_baseline.json");
    EXPECT_NE(diags[2].message.find("bench_stale"), std::string::npos);
    EXPECT_EQ(diags[3].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[3].message.find("windows_per_second"), std::string::npos);
}

TEST(ContractFixtures, C5FlagsDeadLaneAndDeadMetricEntryHonorsSuppression) {
    // kSessionLaneParked is equally dead but carries a reasoned allow(C5).
    const auto diags = scan_contract_fixture("c5_dead_entry", {"src"});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(keys(diags), (Keys{{"C5", 9}, {"C5", 14}}));
    EXPECT_EQ(diags[0].path, "src/sim/contracts.hpp");
    EXPECT_NE(diags[0].message.find("kSessionLaneDead"), std::string::npos);
    EXPECT_NE(diags[1].message.find("dead_metric"), std::string::npos);
}

TEST(ContractFixtures, C4AllowlistEntrySilencesGateSurfaceFindings) {
    // ci.yml cannot carry inline suppressions; the allowlist is the
    // sanctioned mute for external gate surfaces.
    ScanOptions opt;
    opt.token_rules = false;
    opt.contract_rules = true;
    LintConfig cfg = bare_config();
    cfg.allowlist.push_back({"C4", ".github/**"});
    const auto diags = espread::lint::scan_tree(
        std::string(ESPREAD_LINT_FIXTURES) + "/contracts/c4_gate",
        {"src", "bench"}, cfg, opt);
    EXPECT_EQ(keys(diags), (Keys{{"C5", 4}, {"C5", 8}}));
}

TEST(ContractFixtures, ConsistentTreeIsClean) {
    const auto diags = scan_contract_fixture("clean", {"src", "tests"});
    EXPECT_TRUE(diags.empty()) << espread::lint::format_gcc(diags.front());
}

TEST(ContractFixtures, ParallelScanIsByteIdenticalToSerial) {
    ScanOptions serial;
    serial.token_rules = true;
    serial.contract_rules = true;
    serial.jobs = 1;
    ScanOptions parallel = serial;
    parallel.jobs = 4;
    const std::string root =
        std::string(ESPREAD_LINT_FIXTURES) + "/contracts/c1_collision";
    const auto a =
        espread::lint::scan_tree(root, {"src"}, bare_config(), serial);
    const auto b =
        espread::lint::scan_tree(root, {"src"}, bare_config(), parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(espread::lint::format_gcc(a[i]),
                  espread::lint::format_gcc(b[i]));
    }
}

TEST(ContractOutput, SarifReportCarriesRulesAndFindings) {
    const auto diags = scan_contract_fixture("c1_magic_lane", {"src"});
    ASSERT_FALSE(diags.empty());
    const std::string sarif = espread::lint::sarif_json(diags);
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"espread_lint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"C1\""), std::string::npos);
    EXPECT_NE(sarif.find("src/protocol/user.cpp"), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 6"), std::string::npos);
}

TEST(ContractOutput, CoverageGapsReportsCompiledButUnscannedTUs) {
    const std::vector<std::string> visited = {"src/a.cpp", "src/b.cpp"};
    const std::string cc =
        "[{\"directory\": \"/repo/build\", \"file\": \"/repo/src/a.cpp\"},\n"
        " {\"directory\": \"/repo/build\", \"file\": \"/repo/src/c.cpp\"},\n"
        " {\"directory\": \"/repo/build\", \"file\": \"/repo/tools/x.cpp\"}]";
    const auto gaps =
        espread::lint::coverage_gaps(visited, cc, "/repo", {"src/"});
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0], "src/c.cpp");
}

// The acceptance gate: the real tree lints clean — token rules AND the
// cross-TU contract rules — under the shipped allowlist, exactly the scan
// CI runs (espread_lint --root=<repo> --contracts src bench tests tools
// examples).
TEST(LintRepo, SourceTreeIsCleanUnderShippedAllowlist) {
    LintConfig cfg = bare_config();
    std::string err;
    ASSERT_TRUE(espread::lint::load_allowlist_file(
        std::string(ESPREAD_REPO_ROOT) + "/tools/espread_lint/allowlist.txt",
        cfg, &err))
        << err;
    ScanOptions opt;
    opt.token_rules = true;
    opt.contract_rules = true;
    opt.jobs = 0;
    const auto diags = espread::lint::scan_tree(
        ESPREAD_REPO_ROOT, {"src", "bench", "tests", "tools", "examples"},
        cfg, opt);
    for (const Diagnostic& d : diags) {
        ADD_FAILURE() << espread::lint::format_gcc(d);
    }
}

}  // namespace
