#include <gtest/gtest.h>

#include <algorithm>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "core/optimal.hpp"

namespace {

using espread::calculate_permutation;
using espread::cpo_clf;
using espread::folded_dyadic_order;
using espread::optimal_clf;
using espread::Permutation;
using espread::worst_case_clf;

TEST(FoldedDyadic, IsAValidPermutation) {
    for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 16u, 17u, 100u}) {
        const Permutation p = folded_dyadic_order(n);  // ctor validates
        EXPECT_EQ(p.size(), n);
    }
    EXPECT_EQ(folded_dyadic_order(0).size(), 0u);
}

TEST(FoldedDyadic, FirstSlotCarriesTheMidpoint) {
    const Permutation p = folded_dyadic_order(16);
    EXPECT_EQ(p[0], 8u);
    // The wire's last slot carries the next-best pillar (a quarter point).
    EXPECT_TRUE(p[15] == 4u || p[15] == 12u) << p[15];
}

TEST(FoldedDyadic, SurvivorOfNearTotalLossIsCentral) {
    // Burst of n-1 leaves exactly one surviving slot — either wire end.
    // Both ends carry central pillars, so the loss splits into two runs.
    for (std::size_t n : {8u, 16u, 32u}) {
        const Permutation p = folded_dyadic_order(n);
        const std::size_t clf = worst_case_clf(p, n - 1);
        EXPECT_LT(clf, n - 1) << "n=" << n;         // beats every stride order
        EXPECT_LE(clf, (3 * n) / 4) << "n=" << n;   // survivor within mid half
    }
}

TEST(FoldedDyadic, BeatsNaiveOrderForLargeBursts) {
    // In the b -> n regime the natural-order residue classes collapse to
    // ~b; the folded pillar structure does not.
    const std::size_t n = 24;
    const Permutation folded = folded_dyadic_order(n);
    const Permutation identity = Permutation::identity(n);
    for (std::size_t b = n - 4; b < n; ++b) {
        EXPECT_LT(worst_case_clf(folded, b), worst_case_clf(identity, b))
            << "b=" << b;
    }
}

TEST(FoldedDyadic, ReversedHalfStrideDominatesItAtNearTotalLoss) {
    // Documents why calculate_permutation does not need the folded family:
    // residue classes with a REVERSED visit order put both near-middle
    // frames at the wire ends, achieving the optimal survivor structure.
    // At b = n - 1 exactly one wire slot survives (either end), leaving
    // runs x and n-1-x; the best possible worst case is therefore
    // ceil((n-1)/2) — analytic, since branch-and-bound at n = 32 is
    // infeasible.
    const auto r = calculate_permutation(32, 31);
    EXPECT_EQ(r.clf, 16u);
    EXPECT_LE(r.clf, worst_case_clf(folded_dyadic_order(32), 31));
}

TEST(FoldedDyadic, FamilyGuaranteeStaysSandwiched) {
    for (std::size_t n = 2; n <= 20; ++n) {
        for (std::size_t b = 1; b <= n; ++b) {
            const std::size_t c = cpo_clf(n, b);
            EXPECT_GE(c, espread::lower_bound_clf(n, b));
            EXPECT_LE(c, b);
        }
    }
}

TEST(FoldedDyadic, FamilyGapToOptimumIsTiny) {
    // Exhaustive check: across all (n, b) with n <= 9, the extended stride
    // family misses the true optimum by at most 1 in at most 3 cells.
    std::size_t gap_total = 0;
    for (std::size_t n = 2; n <= 9; ++n) {
        for (std::size_t b = 1; b <= n; ++b) {
            const std::size_t gap = cpo_clf(n, b) - optimal_clf(n, b);
            EXPECT_LE(gap, 1u) << "n=" << n << " b=" << b;
            gap_total += gap;
        }
    }
    EXPECT_LE(gap_total, 3u);
}

TEST(FoldedDyadic, PrefixesArePillarSets) {
    // The first k wire slots split playback into runs of ~n/k: check the
    // complement's max run halves as the prefix doubles.
    const std::size_t n = 64;
    const Permutation p = folded_dyadic_order(n);
    std::size_t prev_run = n;
    for (std::size_t k = 1; k <= 32; k *= 2) {
        espread::LossMask mask(n, false);
        // Survivors: both wire ends contribute; take the front k slots.
        for (std::size_t s = 0; s < k; ++s) mask[p[s]] = true;
        const std::size_t run = espread::consecutive_loss(mask);
        EXPECT_LE(run, prev_run);
        EXPECT_LE(run, n / k + n / (2 * k) + 1) << "k=" << k;
        prev_run = run;
    }
}

}  // namespace
