#include "protocol/buffer_req.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "media/trace.hpp"

namespace {

using espread::media::movie_stats;
using espread::proto::buffer_requirement;
using espread::proto::BufferRequirement;

// Paper §4.1 example: Star Wars' largest GOP is 932 710 bits ≈ 113 KB.
TEST(BufferReq, StarWarsMatchesPaperExample) {
    const BufferRequirement r = buffer_requirement(movie_stats("Star Wars"), 1);
    EXPECT_EQ(r.bits, 932'710u);
    EXPECT_NEAR(static_cast<double>(r.bytes) / 1024.0, 113.0, 1.0);
    EXPECT_EQ(r.frames, 12u);
    EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.5);
}

TEST(BufferReq, ScalesLinearlyWithGops) {
    const auto& movie = movie_stats("Terminator");
    const BufferRequirement one = buffer_requirement(movie, 1);
    const BufferRequirement four = buffer_requirement(movie, 4);
    EXPECT_EQ(four.bits, 4 * one.bits);
    EXPECT_EQ(four.frames, 4 * one.frames);
    EXPECT_DOUBLE_EQ(four.startup_delay_s, 4 * one.startup_delay_s);
}

TEST(BufferReq, TwoGopStartupForGop12At24Fps) {
    // W = 2 GOPs of 12 frames at 24 fps: exactly 1 second of start-up delay —
    // the "acceptable in most practical situations" case of §5.2.
    const BufferRequirement r =
        buffer_requirement(movie_stats("Jurassic Park"), 2);
    EXPECT_DOUBLE_EQ(r.startup_delay_s, 1.0);
}

TEST(BufferReq, Gop15MovieUses30Fps) {
    const BufferRequirement r =
        buffer_requirement(movie_stats("Beauty and the Beast"), 2);
    EXPECT_EQ(r.frames, 30u);
    EXPECT_DOUBLE_EQ(r.startup_delay_s, 1.0);
}

TEST(BufferReq, AllCatalogMoviesAreViable) {
    // The paper's point: even 8 GOPs of the largest movie stays in the
    // single-megabyte range — viable for a late-90s workstation.
    for (const auto& movie : espread::media::movie_catalog()) {
        const BufferRequirement r = buffer_requirement(movie, 8);
        EXPECT_LT(r.bytes, 2u * 1024 * 1024) << movie.name;
        EXPECT_GT(r.bytes, 100u * 1024) << movie.name;
    }
}

TEST(BufferReq, ZeroGopsThrows) {
    EXPECT_THROW(buffer_requirement(movie_stats("Star Wars"), 0),
                 std::invalid_argument);
}

}  // namespace
