// Allocation accounting for the hot paths.
//
// A counting global operator new pins two properties: the engine's
// single-shard window step performs ZERO heap allocations once warm
// (the SoA arenas and shard scratch absorb everything), and the
// per-object Session window loop stays within a fixed allocation budget
// per window (the scratch-buffer hoisting must not regress).
//
// Not registered under the sanitizers: ASan/TSan interpose the
// allocator and the replacement operators below would fight them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "engine/engine.hpp"
#include "protocol/session.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

struct AllocCounter {
    void start() {
        g_allocs.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
    }
    std::uint64_t stop() {
        g_counting.store(false, std::memory_order_relaxed);
        return g_allocs.load(std::memory_order_relaxed);
    }
};

}  // namespace

// Replacement allocation functions must live at global scope.  malloc
// never returns nullptr for these test sizes in practice, but the
// contract requires the failure branch.  noinline keeps GCC's
// -Wmismatched-new-delete heuristic from pairing the inlined malloc/free
// bodies against call sites it analyzed separately.
__attribute__((noinline)) void* operator new(std::size_t size) {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc{};
}

__attribute__((noinline)) void* operator new[](std::size_t size) {
    return ::operator new(size);
}

__attribute__((noinline)) void operator delete(void* p) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
    std::free(p);
}

namespace {

// The tentpole claim: after construction and a short warm-up, stepping
// the single-shard engine allocates nothing — not per window, not per
// session, not for churn arrivals/departures.
TEST(Alloc, EngineStepIsAllocationFreeWhenWarm) {
    espread::engine::EngineConfig cfg;
    cfg.sessions = 4096;
    cfg.shards = 1;
    cfg.window_ldus = 24;
    cfg.packets_per_ldu = 2;
    cfg.churn.enabled = true;
    cfg.churn.min_lifetime_windows = 4;
    cfg.churn.mean_lifetime_windows = 10.0;
    cfg.churn.mean_arrival_gap_windows = 2.0;
    cfg.seed = 9;
    espread::engine::ShardedEngine engine(cfg);
    engine.run(4);  // warm-up: touches every code path incl. churn

    AllocCounter counter;
    counter.start();
    engine.run(16);
    const std::uint64_t allocs = counter.stop();
    EXPECT_EQ(allocs, 0u)
        << "engine hot path allocated " << allocs << " times in 16 steps";
}

// The per-object Session keeps a bounded allocation budget per window.
// Measured at 310 allocations/window after the scratch-buffer hoisting
// (fragment sizes, sent masks, frame staging reused across windows); the
// remainder is dominated by the per-packet wire codec buffers, which
// model real serialization.  The ratchet allows ~30% headroom so small
// legitimate changes fit but reintroducing a per-fragment or per-packet
// allocation in the session loop itself (roughly +50..300 per window)
// fails.
TEST(Alloc, SessionWindowLoopStaysWithinBudget) {
    constexpr std::size_t kShort = 10;
    constexpr std::size_t kLong = 40;
    const auto run_counted = [](std::size_t windows) {
        espread::proto::SessionConfig cfg;
        cfg.num_windows = windows;
        cfg.seed = 3;
        AllocCounter counter;
        counter.start();
        const auto result = espread::proto::run_session(cfg);
        const std::uint64_t allocs = counter.stop();
        EXPECT_GT(result.windows.size(), 0u);
        return allocs;
    };
    const std::uint64_t short_run = run_counted(kShort);
    const std::uint64_t long_run = run_counted(kLong);
    ASSERT_GT(long_run, short_run);
    const std::uint64_t per_window = (long_run - short_run) / (kLong - kShort);
    EXPECT_LE(per_window, 400u)
        << "session window loop now allocates " << per_window
        << " times per window";
}

}  // namespace
