// libFuzzer entry point for the wire codec (built only with
// -DESPREAD_LIBFUZZER=ON; requires clang's -fsanitize=fuzzer).
//
//   cmake -B build -S . -DESPREAD_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ \
//         -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined"
//   ./build/tests/fuzz_codec -max_len=512 corpus/
//
// Checks the same invariants as tests/test_codec_fuzz.cpp: decoders never
// crash or read out of bounds on arbitrary bytes, and any accepted input
// re-encodes to exactly itself (canonical codec).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "protocol/codec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::vector<std::uint8_t> bytes(data, data + size);
    (void)espread::proto::peek_type(bytes);
    if (const auto p = espread::proto::decode_data(bytes)) {
        if (espread::proto::encode(*p) != bytes) std::abort();
    }
    if (const auto t = espread::proto::decode_trailer(bytes)) {
        if (espread::proto::encode(*t) != bytes) std::abort();
    }
    if (const auto f = espread::proto::decode_feedback(bytes)) {
        if (espread::proto::encode(*f) != bytes) std::abort();
    }
    if (const auto n = espread::proto::decode_nack(bytes)) {
        if (espread::proto::encode(*n) != bytes) std::abort();
    }
    return 0;
}
