#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace {

using espread::sim::Histogram;
using espread::sim::RunningStats;
using espread::sim::TimeSeries;

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.deviation(), 0.0);
}

TEST(RunningStats, SingleSample) {
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownPopulationMoments) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example: population var = 4
    EXPECT_DOUBLE_EQ(s.deviation(), 2.0);
    EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesBulk) {
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 10; ++i) {
        const double x = 0.37 * i * i - 2.0 * i + 1.0;
        (i < 4 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

// n == 0 and n == 1 have no spread by definition: deviation must read as
// exactly 0 — never NaN from a 0/0 or sqrt of a negative Welford residue.
TEST(RunningStats, DeviationOfEmptyAndSingleIsZeroNotNaN) {
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.deviation(), 0.0);
    EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);  // n - 1 == -1 must not divide
    EXPECT_FALSE(std::isnan(s.deviation()));
    s.add(41.5);
    EXPECT_DOUBLE_EQ(s.deviation(), 0.0);
    EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);  // n - 1 == 0 must not divide
    EXPECT_FALSE(std::isnan(s.deviation()));
}

TEST(RunningStats, MergeOfTwoSingleSamples) {
    RunningStats a;
    a.add(3.0);
    RunningStats b;
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.variance(), 1.0);
    EXPECT_DOUBLE_EQ(a.sample_variance(), 2.0);
    EXPECT_DOUBLE_EQ(a.deviation(), 1.0);
}

TEST(RunningStats, ManyEqualSingleSampleMergesStayExact) {
    // The degenerate shape the Monte-Carlo runner produces for a 1-window
    // session: per-trial stats with one sample each, merged in trial order.
    // All samples equal => spread exactly 0 at every step, never NaN.
    RunningStats acc;
    for (int i = 0; i < 100; ++i) {
        RunningStats one;
        one.add(7.25);
        acc.merge(one);
        ASSERT_DOUBLE_EQ(acc.variance(), 0.0) << "merge " << i;
        ASSERT_FALSE(std::isnan(acc.deviation()));
    }
    EXPECT_EQ(acc.count(), 100u);
    EXPECT_DOUBLE_EQ(acc.mean(), 7.25);
    EXPECT_DOUBLE_EQ(acc.deviation(), 0.0);
}

TEST(RunningStats, CancellationResidueNeverGoesNegative) {
    // Offsetting tiny spread by a huge mean is the classic catastrophic-
    // cancellation trap: m2 can numerically land a hair below zero, which
    // must surface as variance 0, not sqrt(-eps) = NaN.
    RunningStats s;
    for (int i = 0; i < 64; ++i) s.add(1e15 + 0.1);
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_GE(s.sample_variance(), 0.0);
    EXPECT_FALSE(std::isnan(s.deviation()));
}

TEST(TimeSeries, PreservesOrderAndStats) {
    TimeSeries ts;
    ts.add(0, 2.0);
    ts.add(1, 4.0);
    ts.add(2, 6.0);
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_EQ(ts.xs(), (std::vector<double>{0, 1, 2}));
    EXPECT_EQ(ts.ys(), (std::vector<double>{2, 4, 6}));
    EXPECT_DOUBLE_EQ(ts.y_stats().mean(), 4.0);
}

TEST(Histogram, CountsAndFractions) {
    Histogram h;
    for (const int v : {1, 1, 2, 3, 3, 3}) h.add(v);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 3u);
    EXPECT_EQ(h.count(9), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.5);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 3);
    EXPECT_NEAR(h.mean(), 13.0 / 6.0, 1e-12);
}

TEST(Histogram, EmptyIsSafe) {
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, QuantileIsNearestRankAndMonotone) {
    Histogram h;
    for (const int v : {1, 1, 2, 3, 5, 8, 8, 8, 13, 21}) h.add(v);
    // Nearest-rank: the ceil(q*10)-th smallest value (1-based).
    EXPECT_EQ(h.quantile(0.0), 1);   // == min()
    EXPECT_EQ(h.quantile(0.10), 1);
    EXPECT_EQ(h.quantile(0.25), 2);  // rank 3
    EXPECT_EQ(h.quantile(0.50), 5);  // rank 5
    EXPECT_EQ(h.quantile(0.90), 13);
    EXPECT_EQ(h.quantile(0.99), 21);
    EXPECT_EQ(h.quantile(1.0), 21);  // == max()
    std::int64_t prev = h.quantile(0.0);
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        EXPECT_GE(h.quantile(q), prev) << q;
        prev = h.quantile(q);
    }
    // Negative bins participate like any other value.
    Histogram neg;
    for (const int v : {-5, -2, 0, 4}) neg.add(v);
    EXPECT_EQ(neg.quantile(0.0), -5);
    EXPECT_EQ(neg.quantile(0.5), -2);
    EXPECT_EQ(neg.quantile(1.0), 4);
}

TEST(FormatFixed, RendersDigits) {
    EXPECT_EQ(espread::sim::format_fixed(1.456, 2), "1.46");
    EXPECT_EQ(espread::sim::format_fixed(1.0, 0), "1");
    EXPECT_EQ(espread::sim::format_fixed(-0.125, 3), "-0.125");
}

}  // namespace
