// Property tests for full sessions under fault injection: 64-seed sweeps
// per impairment mix.  Whatever the network does — reordering, duplication,
// corruption through the wire codec, jitter, ACK blackouts, adversarial
// forced bursts — a session must terminate, keep its conservation laws
// (now the impaired reconciliation delivered + dropped + corrupt_rejected
// == sent + duplicated), never double-count an LDU, respect the pigeonhole
// lower bound on CLF, and stay a pure function of (config, seed) — which
// the Monte-Carlo thread-identity test pins down to byte-equal metric
// registries for 1 thread vs 4.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "net/fault.hpp"
#include "protocol/session.hpp"

namespace {

using espread::exp::MonteCarloRunner;
using espread::exp::RunnerOptions;
using espread::exp::TrialSummary;
using espread::net::ImpairmentConfig;
using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;

RunnerOptions runner_opts(std::size_t trials, std::size_t threads) {
    RunnerOptions o;
    o.trials = trials;
    o.threads = threads;
    return o;
}
using espread::proto::StreamKind;

/// Minimum possible max-consecutive-loss when `lost` of `n` slots are lost:
/// the losses pigeonhole into the n - lost + 1 gaps around the survivors.
std::size_t lower_bound_clf(std::size_t n, std::size_t lost) {
    if (lost == 0) return 0;
    if (lost >= n) return n;
    const std::size_t gaps = n - lost + 1;
    return (lost + gaps - 1) / gaps;
}

/// Fast-running session template (MJPEG avoids the MPEG trace generator).
SessionConfig base_config(std::uint64_t seed) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 16;
    cfg.stream.frame_rate = 30.0;
    cfg.stream.mjpeg_mean_bits = 16000.0;
    cfg.num_windows = 8;
    cfg.seed = seed;
    return cfg;
}

enum class Mix { kReorder, kDuplicate, kCorrupt, kJitter, kKitchenSink };

const char* mix_name(Mix m) {
    switch (m) {
        case Mix::kReorder: return "reorder";
        case Mix::kDuplicate: return "duplicate";
        case Mix::kCorrupt: return "corrupt";
        case Mix::kJitter: return "jitter";
        case Mix::kKitchenSink: return "kitchen-sink";
    }
    return "?";
}

SessionConfig mixed_config(Mix mix, std::uint64_t seed) {
    SessionConfig cfg = base_config(seed);
    switch (mix) {
        case Mix::kReorder:
            cfg.data_impairment.reorder_rate = 0.3;
            cfg.data_impairment.reorder_max_displacement = 4;
            break;
        case Mix::kDuplicate:
            cfg.data_impairment.duplicate_rate = 0.3;
            cfg.feedback_impairment.duplicate_rate = 0.3;
            break;
        case Mix::kCorrupt:
            cfg.data_impairment.corrupt_rate = 0.3;
            cfg.feedback_impairment.corrupt_rate = 0.3;
            break;
        case Mix::kJitter:
            cfg.data_impairment.jitter_rate = 0.5;
            cfg.data_impairment.jitter_max = espread::sim::from_millis(8.0);
            break;
        case Mix::kKitchenSink:
            cfg.data_impairment.reorder_rate = 0.2;
            cfg.data_impairment.duplicate_rate = 0.15;
            cfg.data_impairment.corrupt_rate = 0.15;
            cfg.data_impairment.jitter_rate = 0.3;
            cfg.data_impairment.bursts.push_back({40, 12});
            cfg.feedback_impairment.corrupt_rate = 0.2;
            cfg.blackout_feedback_windows(3, 5);  // kill the ACK path
            break;
    }
    return cfg;
}

void check_invariants(const SessionConfig& cfg, const SessionResult& r) {
    const std::size_t n = cfg.window_ldus();
    ASSERT_EQ(r.windows.size(), cfg.num_windows);
    EXPECT_EQ(r.total.slots, cfg.num_windows * n);
    EXPECT_EQ(r.playout_window_clf.size(), cfg.num_windows);

    // Impaired reconciliation on both channels.
    const auto& d = r.data_channel;
    EXPECT_EQ(d.delivered + d.dropped + d.corrupt_rejected,
              d.sent + d.duplicated);
    EXPECT_LE(d.forced_dropped, d.dropped);
    const auto& f = r.feedback_channel;
    EXPECT_EQ(f.delivered + f.dropped + f.corrupt_rejected,
              f.sent + f.duplicated);

    // One ACK per window no matter how hostile the network was.
    EXPECT_EQ(r.acks_sent, cfg.num_windows);
    EXPECT_LE(r.acks_applied, r.acks_sent);

    for (std::size_t k = 0; k < r.windows.size(); ++k) {
        const auto& w = r.windows[k];
        EXPECT_LE(w.clf, n);
        EXPECT_LE(w.lost_ldus, n);
        EXPECT_LE(w.clf, w.lost_ldus);
        // No double counting: a duplicated-and-delivered frame must never
        // make losses negative or CLF exceed the pigeonhole band.
        EXPECT_GE(w.clf, lower_bound_clf(n, w.lost_ldus));
        EXPECT_GE(w.bound_used, 1u);
        EXPECT_LE(r.playout_window_clf[k], n);
    }
}

class FaultSweep : public ::testing::TestWithParam<Mix> {};

TEST_P(FaultSweep, SixtyFourSeedsSurviveEveryMix) {
    const Mix mix = GetParam();
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const SessionConfig cfg = mixed_config(mix, seed);
        const SessionResult r = run_session(cfg);
        check_invariants(cfg, r);
        if (HasFailure()) {
            FAIL() << "mix=" << mix_name(mix) << " seed=" << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Mixes, FaultSweep,
                         ::testing::Values(Mix::kReorder, Mix::kDuplicate,
                                           Mix::kCorrupt, Mix::kJitter,
                                           Mix::kKitchenSink),
                         [](const auto& name_info) {
                             std::string out;
                             for (const char c :
                                  std::string(mix_name(name_info.param))) {
                                 if (c != '-') out.push_back(c);
                             }
                             return out;
                         });

TEST(SessionFaults, ImpairedRunsAreDeterministicPerSeed) {
    for (std::uint64_t seed : {3u, 17u, 41u}) {
        const SessionConfig cfg = mixed_config(Mix::kKitchenSink, seed);
        const SessionResult a = run_session(cfg);
        const SessionResult b = run_session(cfg);
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t k = 0; k < a.windows.size(); ++k) {
            ASSERT_EQ(a.windows[k].clf, b.windows[k].clf);
            ASSERT_EQ(a.windows[k].lost_ldus, b.windows[k].lost_ldus);
            ASSERT_EQ(a.windows[k].retransmissions, b.windows[k].retransmissions);
        }
        ASSERT_EQ(a.data_channel.duplicated, b.data_channel.duplicated);
        ASSERT_EQ(a.data_channel.corrupt_rejected,
                  b.data_channel.corrupt_rejected);
        ASSERT_EQ(a.data_channel.reordered, b.data_channel.reordered);
    }
}

TEST(SessionFaults, AckBlackoutStallsAdaptationButNotTheStream) {
    SessionConfig cfg = base_config(5);
    cfg.blackout_feedback_windows(3, 5);
    const SessionResult r = run_session(cfg);
    check_invariants(cfg, r);
    // Exactly the ACKs of windows 3-5 are scripted drops on the feedback
    // path (the feedback channel carries nothing else).
    EXPECT_EQ(r.feedback_channel.forced_dropped, 3u);
    EXPECT_LE(r.acks_applied, r.acks_sent - 3);
}

TEST(SessionFaults, ImpairmentCountersSurfaceInMetrics) {
    SessionConfig cfg = mixed_config(Mix::kKitchenSink, 9);
    cfg.collect_metrics = true;
    const SessionResult r = run_session(cfg);
    const auto& m = r.metrics;
    EXPECT_EQ(m.counter("data_packets_duplicated"), r.data_channel.duplicated);
    EXPECT_EQ(m.counter("data_packets_corrupt_rejected"),
              r.data_channel.corrupt_rejected);
    EXPECT_EQ(m.counter("data_packets_reordered"), r.data_channel.reordered);
    EXPECT_EQ(m.counter("data_packets_forced_dropped"),
              r.data_channel.forced_dropped);
    EXPECT_GT(m.counter("data_packets_duplicated") +
                  m.counter("data_packets_corrupt_rejected") +
                  m.counter("data_packets_reordered"),
              0u);

    // Zero-cost-off: an unimpaired session's registry must NOT grow the
    // impairment keys (byte-identity of pre-fault metric output).
    SessionConfig clean = base_config(9);
    clean.collect_metrics = true;
    const SessionResult rc = run_session(clean);
    EXPECT_EQ(rc.metrics.counters().count("data_packets_duplicated"), 0u);
    EXPECT_EQ(rc.metrics.counters().count("recv_duplicates_dropped"), 0u);
}

/// Registries compare equal key-by-key, bin-by-bin — the "byte-identical"
/// criterion without going through a file.
void expect_registries_identical(const espread::obs::MetricsRegistry& a,
                                 const espread::obs::MetricsRegistry& b) {
    EXPECT_EQ(a.counters(), b.counters());
    ASSERT_EQ(a.histograms().size(), b.histograms().size());
    auto ita = a.histograms().begin();
    auto itb = b.histograms().begin();
    for (; ita != a.histograms().end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        EXPECT_EQ(ita->second.bins(), itb->second.bins());
        EXPECT_EQ(ita->second.total(), itb->second.total());
    }
}

TEST(SessionFaults, MonteCarloMetricsByteIdenticalAcrossThreadCounts) {
    SessionConfig cfg = mixed_config(Mix::kKitchenSink, 123);
    cfg.collect_metrics = true;
    cfg.num_windows = 6;

    const MonteCarloRunner one{runner_opts(/*trials=*/12, /*threads=*/1)};
    const MonteCarloRunner four{runner_opts(/*trials=*/12, /*threads=*/4)};
    const TrialSummary s1 = one.run(cfg);
    const TrialSummary s4 = four.run(cfg);

    EXPECT_EQ(s1.window_clf.count(), s4.window_clf.count());
    EXPECT_EQ(s1.window_clf.mean(), s4.window_clf.mean());
    EXPECT_EQ(s1.window_clf.deviation(), s4.window_clf.deviation());
    EXPECT_EQ(s1.alf.mean(), s4.alf.mean());
    EXPECT_EQ(s1.clf_histogram.bins(), s4.clf_histogram.bins());
    expect_registries_identical(s1.metrics, s4.metrics);
}

// ---- Governed sessions under fault injection ------------------------------

/// ACK blackout + header corruption on both channels with the adaptation
/// governor supervising the estimator: the mix that exercises every
/// admission branch (lost feedback deadlines, corrupted-but-plausible ACK
/// windows) at once.
SessionConfig governed_mixed_config(std::uint64_t seed) {
    SessionConfig cfg = base_config(seed);
    cfg.data_impairment.corrupt_rate = 0.2;
    cfg.feedback_impairment.corrupt_rate = 0.2;
    cfg.blackout_feedback_windows(3, 5);
    cfg.governor.enabled = true;
    cfg.governor.miss_budget = 1;  // short sessions must still reach Fallback
    cfg.governor.recovery_windows = 2;
    return cfg;
}

void check_governor_invariants(const SessionConfig& cfg,
                               const SessionResult& r) {
    // Time-in-state accounting must cover every window exactly once, and
    // the per-window states must agree with the aggregate counters.
    std::size_t per_window[4] = {0, 0, 0, 0};
    for (const auto& w : r.windows) {
        ASSERT_LT(static_cast<std::size_t>(w.governor_state), 4u);
        ++per_window[static_cast<std::size_t>(w.governor_state)];
    }
    std::size_t total = 0;
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ(r.governor.windows_in_state[s], per_window[s]) << "state " << s;
        total += r.governor.windows_in_state[s];
    }
    EXPECT_EQ(total, cfg.num_windows);
    EXPECT_GE(r.governor.recoveries + 1, r.governor.fallbacks)
        << "every fallback but possibly the last must have recovered";
    // Rejected ACKs never reach the estimator, so they are bounded by what
    // the feedback channel delivered minus what the session applied.
    EXPECT_LE(r.governor.acks_rejected() + r.acks_applied,
              r.feedback_channel.delivered);
}

TEST(GovernedSessionFaults, SixtyFourSeedsSurviveBlackoutPlusCorruption) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const SessionConfig cfg = governed_mixed_config(seed);
        const SessionResult r = run_session(cfg);
        check_invariants(cfg, r);
        check_governor_invariants(cfg, r);
        // The 3-window ACK blackout exceeds miss budget 1 on every seed.
        EXPECT_GE(r.governor.fallbacks, 1u) << "seed " << seed;
        if (HasFailure()) {
            FAIL() << "governed seed=" << seed;
        }
    }
}

TEST(GovernedSessionFaults, MetricsByteIdenticalAcrossThreadCounts) {
    SessionConfig cfg = governed_mixed_config(123);
    cfg.collect_metrics = true;

    const MonteCarloRunner one{runner_opts(/*trials=*/12, /*threads=*/1)};
    const MonteCarloRunner four{runner_opts(/*trials=*/12, /*threads=*/4)};
    const TrialSummary s1 = one.run(cfg);
    const TrialSummary s4 = four.run(cfg);

    EXPECT_EQ(s1.window_clf.count(), s4.window_clf.count());
    EXPECT_EQ(s1.window_clf.mean(), s4.window_clf.mean());
    EXPECT_EQ(s1.clf_histogram.bins(), s4.clf_histogram.bins());
    expect_registries_identical(s1.metrics, s4.metrics);
    // The governed registry actually carries the governor keys (the merge
    // is exercised on them, not on an empty set).
    EXPECT_GT(s1.metrics.counter("governor_fallbacks"), 0u);
    EXPECT_NE(s1.metrics.find_histogram("governor_state"), nullptr);
}

// ---- FEC-coded sessions under fault injection -----------------------------

/// Kitchen-sink impairments on top of the hybrid spread-then-code arm: the
/// repair stream shares the data path's loss process and corruption, so
/// mutated repair records must die at the codec seal, never in the decoder.
SessionConfig rlc_mixed_config(std::uint64_t seed) {
    SessionConfig cfg = mixed_config(Mix::kKitchenSink, seed);
    cfg.scheme = espread::proto::Scheme::kHybridSpreadRlc;
    cfg.rlc.window_packets = 24;
    cfg.rlc.overhead_num = 1;
    cfg.rlc.overhead_den = 8;
    return cfg;
}

TEST(RlcSessionFaults, SixtyFourSeedsSurviveTheKitchenSinkCoded) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        SessionConfig cfg = rlc_mixed_config(seed);
        cfg.collect_metrics = true;
        const SessionResult r = run_session(cfg);
        check_invariants(cfg, r);
        // Repair accounting closes: every emitted repair either survived
        // the channel or is counted lost, and recoveries never exceed the
        // losses the decoder could have covered.
        const auto& m = r.metrics;
        EXPECT_LE(m.counter("rlc_repairs_lost"), m.counter("rlc_repairs_sent"));
        EXPECT_LE(m.counter("rlc_packets_recovered"),
                  r.data_channel.dropped);
        if (HasFailure()) {
            FAIL() << "rlc seed=" << seed;
        }
    }
}

TEST(RlcSessionFaults, MetricsByteIdenticalAcrossThreadCounts) {
    SessionConfig cfg = rlc_mixed_config(123);
    cfg.collect_metrics = true;

    const MonteCarloRunner one{runner_opts(/*trials=*/12, /*threads=*/1)};
    const MonteCarloRunner four{runner_opts(/*trials=*/12, /*threads=*/4)};
    const TrialSummary s1 = one.run(cfg);
    const TrialSummary s4 = four.run(cfg);

    EXPECT_EQ(s1.window_clf.count(), s4.window_clf.count());
    EXPECT_EQ(s1.window_clf.mean(), s4.window_clf.mean());
    EXPECT_EQ(s1.clf_histogram.bins(), s4.clf_histogram.bins());
    expect_registries_identical(s1.metrics, s4.metrics);
    // The coded registry actually carries the RLC keys (the merge is
    // exercised on them, not on an empty set).
    EXPECT_GT(s1.metrics.counter("rlc_repairs_sent"), 0u);
    EXPECT_GT(s1.metrics.counter("rlc_repair_bits_sent"), 0u);
}

// ---- Receiver-driven recovery under fault injection -----------------------

/// Kitchen-sink impairments on the NACK-driven repair plane: NACKs share
/// the feedback path's corruption and blackout, retransmissions and
/// repairs share the data path's, and forged-but-decodable records must
/// die at the admission checks, never in the decoder or transmit log.
SessionConfig nack_mixed_config(std::uint64_t seed, bool governed) {
    SessionConfig cfg = rlc_mixed_config(seed);
    cfg.recovery.enabled = true;
    cfg.governor.enabled = governed;
    return cfg;
}

void check_nack_invariants(const SessionConfig& cfg, const SessionResult& r) {
    check_invariants(cfg, r);
    const auto& m = r.metrics;
    // Retry cap: dead or hostile feedback can never produce a NACK storm.
    EXPECT_LE(m.counter("nack_requests_sent"),
              cfg.num_windows * (cfg.recovery.max_retries + 1));
    // The funnel only narrows: serviced <= admitted <= received <= sent
    // (corruption and blackout eat requests, duplication is deduped).
    EXPECT_LE(m.counter("nack_requests_serviced"),
              m.counter("recovery_nacks_admitted"));
    EXPECT_LE(m.counter("recovery_nacks_admitted"),
              m.counter("nack_requests_received"));
    // Every window ran in exactly one recovery mode.
    EXPECT_EQ(m.counter("recovery_windows_reactive") +
                  m.counter("recovery_windows_suspended") +
                  m.counter("recovery_windows_proactive"),
              cfg.num_windows);
    // Side-band accounting closes against the channel's own ledger.
    EXPECT_EQ(m.counter("data_sideband_sent"), r.data_channel.sideband_sent);
    EXPECT_LE(r.data_channel.sideband_sent, r.data_channel.sent);
}

TEST(NackSessionFaults, SixtyFourSeedsSurviveTheKitchenSink) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        SessionConfig cfg = nack_mixed_config(seed, /*governed=*/false);
        cfg.collect_metrics = true;
        const SessionResult r = run_session(cfg);
        check_nack_invariants(cfg, r);
        if (HasFailure()) {
            FAIL() << "nack seed=" << seed;
        }
    }
}

TEST(NackSessionFaults, GovernedSixtyFourSeedsSurviveTheKitchenSink) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        SessionConfig cfg = nack_mixed_config(seed, /*governed=*/true);
        cfg.collect_metrics = true;
        const SessionResult r = run_session(cfg);
        check_nack_invariants(cfg, r);
        if (HasFailure()) {
            FAIL() << "governed nack seed=" << seed;
        }
    }
}

TEST(NackSessionFaults, MetricsByteIdenticalAcrossThreadCounts) {
    SessionConfig cfg = nack_mixed_config(123, /*governed=*/true);
    cfg.collect_metrics = true;

    const MonteCarloRunner one{runner_opts(/*trials=*/12, /*threads=*/1)};
    const MonteCarloRunner four{runner_opts(/*trials=*/12, /*threads=*/4)};
    const TrialSummary s1 = one.run(cfg);
    const TrialSummary s4 = four.run(cfg);

    EXPECT_EQ(s1.window_clf.count(), s4.window_clf.count());
    EXPECT_EQ(s1.window_clf.mean(), s4.window_clf.mean());
    EXPECT_EQ(s1.clf_histogram.bins(), s4.clf_histogram.bins());
    expect_registries_identical(s1.metrics, s4.metrics);
    // The merged registry actually carries recovery-plane keys, so the
    // identity is exercised on them.
    EXPECT_GT(s1.metrics.counter("nack_requests_sent"), 0u);
    EXPECT_GT(s1.metrics.counter("recovery_windows_reactive"), 0u);
}

}  // namespace
