#include "core/spreader.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/burst.hpp"

namespace {

using espread::burst_loss_mask;
using espread::ErrorSpreader;
using espread::LossMask;
using espread::Permutation;

TEST(Spreader, WindowPermutationIsIdentityBeforeFirstWindow) {
    const ErrorSpreader s{8};
    EXPECT_TRUE(s.window_permutation().is_identity());
}

TEST(Spreader, InitialBoundIsHalfWindow) {
    ErrorSpreader s{24};
    EXPECT_EQ(s.current_bound(), 12u);
    const Permutation& p = s.begin_window();
    EXPECT_EQ(p.size(), 24u);
    EXPECT_FALSE(p.is_identity());  // spreading against b = 12 requires scrambling
}

TEST(Spreader, UnspreadMatchesBurstLossMask) {
    ErrorSpreader s{17};
    const Permutation& p = s.begin_window();
    // A burst hits transmission slots 3..9.
    LossMask tx(17, true);
    for (std::size_t slot = 3; slot < 10; ++slot) tx[slot] = false;
    const LossMask playback = s.unspread(tx);
    EXPECT_EQ(playback, burst_loss_mask(p, 3, 7));
}

TEST(Spreader, UnspreadRejectsWrongSize) {
    ErrorSpreader s{8};
    s.begin_window();
    EXPECT_THROW(s.unspread(LossMask(7, true)), std::invalid_argument);
}

TEST(Spreader, FeedbackLowersBoundForLaterWindows) {
    ErrorSpreader s{24};
    EXPECT_EQ(s.current_bound(), 12u);
    s.on_feedback(2);  // much calmer network than assumed
    EXPECT_LT(s.current_bound(), 12u);
    s.begin_window();
    EXPECT_EQ(s.window_clf_guarantee(),
              espread::worst_case_clf(s.window_permutation(), s.estimator().bound()));
}

TEST(Spreader, PermutationStableWhileEstimateStable) {
    ErrorSpreader s{16};
    const Permutation p1 = s.begin_window();
    const std::size_t g1 = s.window_clf_guarantee();
    const Permutation p2 = s.begin_window();
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(s.window_clf_guarantee(), g1);
    s.on_feedback(16);
    s.on_feedback(16);
    s.on_feedback(16);
    s.on_feedback(16);
    s.begin_window();
    // Bound climbed from 8 toward 16; the guarantee must loosen with it
    // (a burst may now swallow the entire window).
    EXPECT_EQ(s.estimator().bound(), 16u);
    EXPECT_GT(s.window_clf_guarantee(), g1);
}

TEST(Spreader, PinBoundFreezesAdaptation) {
    ErrorSpreader s{16};
    s.pin_bound(3);
    const Permutation p1 = s.begin_window();
    s.on_feedback(16);
    s.on_feedback(16);
    const Permutation p2 = s.begin_window();
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(s.window_clf_guarantee(), espread::worst_case_clf(p1, 3));
}

TEST(Spreader, PinBoundClampsToWindow) {
    ErrorSpreader s{8};
    s.pin_bound(100);
    s.begin_window();
    EXPECT_EQ(s.window_clf_guarantee(), 8u);
}

TEST(Spreader, GuaranteeHoldsAgainstEveryBurstPosition) {
    ErrorSpreader s{20};
    s.pin_bound(4);
    s.begin_window();
    const std::size_t guarantee = s.window_clf_guarantee();
    for (std::size_t start = 0; start + 4 <= 20; ++start) {
        LossMask tx(20, true);
        for (std::size_t i = start; i < start + 4; ++i) tx[i] = false;
        EXPECT_LE(espread::consecutive_loss(s.unspread(tx)), guarantee)
            << "burst at " << start;
    }
}

TEST(Spreader, InvalidConstructionThrows) {
    EXPECT_THROW(ErrorSpreader(0), std::invalid_argument);
    EXPECT_THROW(ErrorSpreader(8, 2.0), std::invalid_argument);
}

}  // namespace
