#include "poset/poset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace {

using espread::poset::Element;
using espread::poset::Poset;

// A two-GOP MPEG-like fixture with pattern I B P B (open-ended):
//   0:I0  1:B0 (needs I0, P0)  2:P0 (needs I0)  3:B1 (needs P0, I1)
//   4:I1  5:B2 (needs I1, P1)  6:P1 (needs I1)
Poset mpeg_like() {
    Poset p{7};
    p.add_dependency(1, 0);
    p.add_dependency(1, 2);
    p.add_dependency(2, 0);
    p.add_dependency(3, 2);
    p.add_dependency(3, 4);
    p.add_dependency(5, 4);
    p.add_dependency(5, 6);
    p.add_dependency(6, 4);
    return p;
}

TEST(Poset, EmptyAndAntichain) {
    const Poset empty{0};
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_EQ(empty.longest_chain_length(), 0u);
    EXPECT_TRUE(empty.linear_extension().empty());

    const Poset flat{4};
    EXPECT_EQ(flat.longest_chain_length(), 1u);
    EXPECT_TRUE(flat.is_antichain({0, 1, 2, 3}));
    EXPECT_TRUE(flat.anchors().empty());
    EXPECT_EQ(flat.non_anchors().size(), 4u);
    EXPECT_EQ(flat.minimal_elements().size(), 4u);
}

TEST(Poset, RejectsSelfDependencyAndRange) {
    Poset p{3};
    EXPECT_THROW(p.add_dependency(1, 1), std::invalid_argument);
    EXPECT_THROW(p.add_dependency(3, 0), std::out_of_range);
    EXPECT_THROW(p.add_dependency(0, 5), std::out_of_range);
}

TEST(Poset, DetectsCycles) {
    Poset p{3};
    p.add_dependency(0, 1);
    p.add_dependency(1, 2);
    p.add_dependency(2, 0);
    EXPECT_THROW(p.depends_on(0, 1), std::invalid_argument);
}

TEST(Poset, TransitiveClosure) {
    Poset p{4};
    p.add_dependency(3, 2);
    p.add_dependency(2, 1);
    p.add_dependency(1, 0);
    EXPECT_TRUE(p.depends_on(3, 0));
    EXPECT_TRUE(p.depends_on(3, 1));
    EXPECT_FALSE(p.depends_on(0, 3));
    EXPECT_TRUE(p.leq(3, 3));
    EXPECT_TRUE(p.comparable(0, 3));
}

TEST(Poset, ChainProperties) {
    Poset p{4};
    p.add_dependency(3, 2);
    p.add_dependency(2, 1);
    p.add_dependency(1, 0);
    EXPECT_EQ(p.longest_chain_length(), 4u);
    EXPECT_EQ(p.longest_chain(), (std::vector<Element>{0, 1, 2, 3}));
    EXPECT_TRUE(p.is_chain({0, 2, 3}));
    EXPECT_TRUE(p.is_ranked());
    EXPECT_EQ(p.height(0), 0u);
    EXPECT_EQ(p.height(3), 3u);
    EXPECT_EQ(p.anchors(), (std::vector<Element>{0, 1, 2}));
    EXPECT_EQ(p.non_anchors(), (std::vector<Element>{3}));
}

TEST(Poset, CoversSkipsTransitiveEdges) {
    Poset p{3};
    p.add_dependency(2, 1);
    p.add_dependency(1, 0);
    p.add_dependency(2, 0);  // transitive duplicate edge
    EXPECT_TRUE(p.covers(2, 1));
    EXPECT_TRUE(p.covers(1, 0));
    EXPECT_FALSE(p.covers(2, 0));  // 1 sits in between
}

TEST(Poset, MpegLikeStructure) {
    const Poset p = mpeg_like();
    EXPECT_EQ(p.anchors(), (std::vector<Element>{0, 2, 4, 6}));
    EXPECT_EQ(p.non_anchors(), (std::vector<Element>{1, 3, 5}));
    EXPECT_EQ(p.minimal_elements(), (std::vector<Element>{0, 4}));
    EXPECT_EQ(p.longest_chain_length(), 3u);  // e.g. B0 < P0 < I0
    EXPECT_TRUE(p.is_antichain({1, 3, 5}));
    EXPECT_FALSE(p.is_antichain({0, 2}));
}

TEST(Poset, AntichainRejectsDuplicates) {
    const Poset p{3};
    EXPECT_FALSE(p.is_antichain({1, 1}));
}

TEST(Poset, AntichainDecompositionIsMinimalAndValid) {
    const Poset p = mpeg_like();
    const auto layers = p.antichain_decomposition();
    EXPECT_EQ(layers.size(), p.longest_chain_length());  // Mirsky's theorem
    std::size_t total = 0;
    for (const auto& layer : layers) {
        EXPECT_TRUE(p.is_antichain(layer));
        total += layer.size();
    }
    EXPECT_EQ(total, p.size());
    // Prerequisites live in strictly earlier layers.
    std::vector<std::size_t> layer_of(p.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (const Element e : layers[i]) layer_of[e] = i;
    }
    for (Element x = 0; x < p.size(); ++x) {
        for (const Element q : p.direct_prerequisites(x)) {
            EXPECT_LT(layer_of[q], layer_of[x]);
        }
    }
}

TEST(Poset, OpenGopIsNotStrictlyRanked) {
    // Open GOP: the first B of GOP k+1 references the last P of GOP k
    // (height 2 via I0 -> P1 -> P2) AND the fresh I of GOP k+1 (height 0).
    // It covers both, so no rank function can satisfy r(B) = r(x) + 1 for
    // both covering pairs.
    Poset p{5};
    p.add_dependency(1, 0);  // P1 needs I0
    p.add_dependency(2, 1);  // P2 needs P1
    p.add_dependency(4, 2);  // B needs P2 (previous GOP)
    p.add_dependency(4, 3);  // B needs I1 (its own GOP)
    EXPECT_TRUE(p.covers(4, 2));
    EXPECT_TRUE(p.covers(4, 3));
    EXPECT_EQ(p.height(2), 2u);
    EXPECT_EQ(p.height(3), 0u);
    EXPECT_FALSE(p.is_ranked());
}

TEST(Poset, ClosedChainGopIsRanked) {
    // I -> P1 -> P2 -> B is a chain; cover heights line up everywhere.
    Poset p{4};
    p.add_dependency(1, 0);
    p.add_dependency(2, 1);
    p.add_dependency(3, 2);
    EXPECT_TRUE(p.is_ranked());
}

TEST(Poset, LinearExtensionIsValidAndDeterministic) {
    const Poset p = mpeg_like();
    const auto order = p.linear_extension();
    EXPECT_TRUE(p.is_linear_extension(order));
    EXPECT_EQ(order, p.linear_extension());
    // Prerequisite-first: I0 before P0 before B0.
    const auto pos = [&](Element e) {
        return std::find(order.begin(), order.end(), e) - order.begin();
    };
    EXPECT_LT(pos(0), pos(2));
    EXPECT_LT(pos(2), pos(1));
}

TEST(Poset, IsLinearExtensionRejectsBadOrders) {
    const Poset p = mpeg_like();
    EXPECT_FALSE(p.is_linear_extension({0, 1, 2, 3, 4, 5}));        // wrong size
    EXPECT_FALSE(p.is_linear_extension({0, 0, 2, 3, 4, 5, 6}));     // duplicate
    EXPECT_FALSE(p.is_linear_extension({1, 0, 2, 3, 4, 5, 6}));     // B0 before I0
    EXPECT_TRUE(p.is_linear_extension({0, 2, 1, 4, 6, 3, 5}));
}

}  // namespace
