#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "contracts.hpp"
#include "internal.hpp"

namespace espread::lint {

namespace internal {

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return s.substr(b, e - b);
}

bool contains_token(const std::string& hay, const std::string& needle) {
    std::size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(hay[pos - 1]);
        const std::size_t end = pos + needle.size();
        const bool right_ok = end == hay.size() || !ident_char(hay[end]);
        if (left_ok && right_ok) return true;
        pos += 1;
    }
    return false;
}

bool contains_call(const std::string& hay, const std::string& name,
                   std::size_t* at, std::size_t from) {
    std::size_t pos = from;
    while ((pos = hay.find(name, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(hay[pos - 1]);
        std::size_t end = pos + name.size();
        while (end < hay.size() &&
               std::isspace(static_cast<unsigned char>(hay[end])) != 0) {
            ++end;
        }
        if (left_ok && end < hay.size() && hay[end] == '(') {
            if (at != nullptr) *at = pos;
            return true;
        }
        pos += 1;
    }
    return false;
}

bool path_has_prefix(const std::string& path,
                     const std::vector<std::string>& prefixes) {
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string& p) {
                           return path.rfind(p, 0) == 0;
                       });
}

bool rule_allowlisted(const LintConfig& cfg, const std::string& rule,
                      const std::string& path) {
    return std::any_of(cfg.allowlist.begin(), cfg.allowlist.end(),
                       [&](const AllowEntry& e) {
                           return (e.rule == "*" || e.rule == rule) &&
                                  glob_match(e.glob, path);
                       });
}

bool file_has_token(const Stripped& s, const std::string& needle) {
    return std::any_of(s.code.begin(), s.code.end(),
                       [&](const std::string& line) {
                           return contains_token(line, needle);
                       });
}

// ---- comment/literal stripping --------------------------------------------

Stripped strip(const std::string& content) {
    enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
    Stripped out;
    std::string code_line;
    std::string comment_line;
    St st = St::kCode;
    std::string raw_end;  // ")delim\"" terminator of the active raw string
    StringLit lit;        // the string literal currently being collected

    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        if (c == '\n') {
            out.code.push_back(code_line);
            out.comment.push_back(comment_line);
            code_line.clear();
            comment_line.clear();
            if (st == St::kLine) st = St::kCode;
            continue;
        }
        switch (st) {
            case St::kCode: {
                const char next = i + 1 < n ? content[i + 1] : '\0';
                if (c == '/' && next == '/') {
                    st = St::kLine;
                    ++i;
                } else if (c == '/' && next == '*') {
                    st = St::kBlock;
                    ++i;
                } else if (c == '"') {
                    // Raw string?  The prefix (R, u8R, uR, UR, LR) sits at
                    // the end of the code accumulated so far.
                    bool raw = false;
                    if (!code_line.empty() && code_line.back() == 'R') {
                        const std::size_t len = code_line.size();
                        raw = len == 1 || !ident_char(code_line[len - 2]) ||
                              (len >= 2 && (code_line[len - 2] == 'u' ||
                                            code_line[len - 2] == 'U' ||
                                            code_line[len - 2] == 'L' ||
                                            code_line[len - 2] == '8'));
                    }
                    lit = StringLit{out.code.size(), code_line.size(), ""};
                    if (raw) {
                        std::string delim;
                        std::size_t j = i + 1;
                        while (j < n && content[j] != '(') delim += content[j++];
                        raw_end = ")" + delim + "\"";
                        i = j;  // consume up to and including '('
                        st = St::kRaw;
                    } else {
                        st = St::kStr;
                    }
                    code_line += ' ';
                } else if (c == '\'') {
                    // Distinguish a char literal from a digit separator
                    // (1'000'000): after a digit, ' is a separator.
                    if (!code_line.empty() &&
                        std::isdigit(static_cast<unsigned char>(
                            code_line.back())) != 0) {
                        code_line += ' ';
                    } else {
                        st = St::kChar;
                        code_line += ' ';
                    }
                } else {
                    code_line += c;
                }
                break;
            }
            case St::kLine:
                comment_line += c;
                break;
            case St::kBlock:
                if (c == '*' && i + 1 < n && content[i + 1] == '/') {
                    st = St::kCode;
                    ++i;
                } else {
                    comment_line += c;
                }
                break;
            case St::kStr:
                if (c == '\\') {
                    // Keep the escaped character verbatim (good enough for
                    // the contract names, which never use escapes).
                    ++i;
                    if (i < n && content[i] != '\n') lit.text += content[i];
                } else if (c == '"') {
                    st = St::kCode;
                    out.strings.push_back(lit);
                } else {
                    lit.text += c;
                }
                break;
            case St::kChar:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    st = St::kCode;
                }
                break;
            case St::kRaw:
                if (content.compare(i, raw_end.size(), raw_end) == 0) {
                    i += raw_end.size() - 1;
                    st = St::kCode;
                    out.strings.push_back(lit);
                } else {
                    lit.text += c;
                }
                break;
        }
    }
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    return out;
}

// ---- suppressions ----------------------------------------------------------

namespace {
constexpr const char kMarker[] = "espread-lint:";
}  // namespace

Suppressions parse_suppressions(const std::string& path, const Stripped& s) {
    Suppressions out;
    for (std::size_t i = 0; i < s.comment.size(); ++i) {
        const std::string& comment = s.comment[i];
        const std::size_t m = comment.find(kMarker);
        if (m == std::string::npos) continue;
        const std::size_t line_no = i + 1;
        std::string rest = trim(comment.substr(m + sizeof(kMarker) - 1));
        auto bad = [&](const std::string& why) {
            out.malformed.push_back(
                {path, line_no, "D0", "malformed suppression: " + why,
                 Severity::kError});
        };
        if (rest.rfind("allow(", 0) != 0) {
            bad("expected `allow(<rule-ids>) <reason>` after `espread-lint:`");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            bad("unterminated allow(...)");
            continue;
        }
        const std::string ids_text = rest.substr(6, close - 6);
        const std::string reason = trim(rest.substr(close + 1));
        std::set<std::string> ids;
        std::stringstream ss(ids_text);
        std::string id;
        bool ids_ok = !ids_text.empty();
        while (std::getline(ss, id, ',')) {
            id = trim(id);
            if (!known_rule(id)) {
                bad("unknown rule id '" + id + "'");
                ids_ok = false;
                break;
            }
            ids.insert(id);
        }
        if (!ids_ok) {
            if (ids_text.empty()) bad("empty rule list in allow()");
            continue;
        }
        if (reason.empty()) {
            bad("suppression requires a reason string after allow(" +
                ids_text + ")");
            continue;  // a reason-less suppression does not take effect
        }
        // Trailing comment: applies to its own line.  Comment-only line:
        // applies to the next line that contains code.
        std::size_t target = i;
        if (trim(s.code[i]).empty()) {
            target = i + 1;
            while (target < s.code.size() && trim(s.code[target]).empty()) {
                ++target;
            }
        }
        out.allow[target].insert(ids.begin(), ids.end());
    }
    return out;
}

void Emitter::emit(const char* rule, std::size_t line_idx,
                   const std::string& message) {
    if (rule_allowlisted(cfg_, rule, path_)) return;
    const auto it = sup_.allow.find(line_idx);
    if (it != sup_.allow.end() && it->second.count(rule) != 0) return;
    Severity sev = Severity::kError;
    for (const RuleInfo& r : rules()) {
        if (rule == std::string(r.id)) sev = r.severity;
    }
    out_.push_back({path_, line_idx + 1, rule, message, sev});
}

}  // namespace internal

namespace {

using internal::contains_call;
using internal::contains_token;
using internal::Emitter;
using internal::ident_char;
using internal::path_has_prefix;
using internal::Stripped;
using internal::trim;

// ---- D1: entropy / time sources -------------------------------------------

void check_d1(const Stripped& s, Emitter& e) {
    static const char* kSubstrings[] = {
        "std::random_device", "random_device",
        "steady_clock::now",  "system_clock::now",
        "high_resolution_clock::now", "gettimeofday",
    };
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        for (const char* pat : kSubstrings) {
            if (contains_token(line, pat)) {
                e.emit("D1", i,
                       std::string("nondeterministic source '") + pat +
                           "': simulations must derive all entropy and "
                           "timing from the seeded sim::Rng / sim clock");
                break;
            }
        }
        for (const char* fn : {"rand", "srand", "clock"}) {
            if (contains_call(line, fn)) {
                e.emit("D1", i,
                       std::string("call to '") + fn +
                           "()': use the seeded sim::Rng instead");
                break;
            }
        }
        // time(nullptr) / time(NULL) / time(0) — the classic seed source.
        std::size_t pos = 0;
        while ((pos = line.find("time", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
            std::size_t j = pos + 4;
            while (j < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[j])) != 0) {
                ++j;
            }
            if (left_ok && j < line.size() && line[j] == '(') {
                std::size_t close = line.find(')', j);
                if (close != std::string::npos) {
                    const std::string arg = trim(line.substr(j + 1, close - j - 1));
                    if (arg == "nullptr" || arg == "NULL" || arg == "0") {
                        e.emit("D1", i,
                               "wall-clock seed 'time(" + arg +
                                   ")': seeds must be explicit and "
                                   "reproducible");
                        break;
                    }
                }
            }
            pos += 4;
        }
    }
}

// ---- D2: hash-ordered containers in result-producing code ------------------

void check_d2(const std::string& path, const Stripped& s, const LintConfig& cfg,
              Emitter& e) {
    if (!path_has_prefix(path, cfg.ordered_output_paths)) return;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        for (const char* pat : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
            if (contains_token(s.code[i], pat)) {
                e.emit("D2", i,
                       std::string("'std::") + pat +
                           "' in result-producing code: hash order leaks "
                           "into merged/serialized output; use std::map or "
                           "a sorted vector");
                break;
            }
        }
    }
}

// ---- D3: exhaustive switches over contract enums ---------------------------

void check_d3(const Stripped& s, const LintConfig& cfg, Emitter& e) {
    // Frame per open brace; switch frames additionally track the case
    // labels and default position of the switch they own.  Labels bind to
    // the innermost enclosing switch frame (the compiler's rule too).
    struct Frame {
        bool is_switch = false;
        std::string enum_hit;          // first contract enum seen in a label
        bool has_default = false;
        std::size_t default_line = 0;  // 0-based
    };
    std::vector<Frame> stack;
    bool pending_switch = false;  // saw `switch`, waiting for its body `{`

    auto innermost_switch = [&]() -> Frame* {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->is_switch) return &*it;
        }
        return nullptr;
    };

    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        for (std::size_t j = 0; j < line.size(); ++j) {
            const char c = line[j];
            if (ident_char(c)) {
                std::size_t b = j;
                while (j < line.size() && ident_char(line[j])) ++j;
                const std::string word = line.substr(b, j - b);
                if (word == "switch") {
                    pending_switch = true;
                } else if (word == "case") {
                    // Label text runs to the first ':' that is not '::'.
                    std::string label;
                    std::size_t k = j;
                    while (k < line.size()) {
                        if (line[k] == ':' && k + 1 < line.size() &&
                            line[k + 1] == ':') {
                            label += "::";
                            k += 2;
                            continue;
                        }
                        if (line[k] == ':') break;
                        label += line[k++];
                    }
                    if (Frame* f = innermost_switch()) {
                        for (const std::string& en : cfg.contract_enums) {
                            if (label.find(en + "::") != std::string::npos) {
                                f->enum_hit = en;
                                break;
                            }
                        }
                    }
                    j = k;
                } else if (word == "default") {
                    std::size_t k = j;
                    while (k < line.size() &&
                           std::isspace(static_cast<unsigned char>(line[k])) !=
                               0) {
                        ++k;
                    }
                    const bool is_label =
                        k < line.size() && line[k] == ':' &&
                        (k + 1 >= line.size() || line[k + 1] != ':');
                    if (is_label) {
                        if (Frame* f = innermost_switch()) {
                            if (!f->has_default) {
                                f->has_default = true;
                                f->default_line = i;
                            }
                        }
                    }
                }
                --j;  // outer loop increments
            } else if (c == '{') {
                Frame f;
                f.is_switch = pending_switch;
                pending_switch = false;
                stack.push_back(f);
            } else if (c == '}') {
                if (!stack.empty()) {
                    const Frame f = stack.back();
                    stack.pop_back();
                    if (f.is_switch && f.has_default && !f.enum_hit.empty()) {
                        e.emit("D3", f.default_line,
                               "'default:' in switch over contract enum '" +
                                   f.enum_hit +
                                   "': new enumerators would be silently "
                                   "swallowed; enumerate every case");
                    }
                }
            }
        }
    }
}

// ---- D4: gated trace/metrics emission --------------------------------------

void check_d4(const Stripped& s, const LintConfig& cfg, Emitter& e) {
    // "->observe" covers the telemetry plane's observe_* family
    // (TelemetrySlab::observe_window etc.): the prefix may continue with
    // identifier characters before the call parens.
    static const char* kSinkCalls[] = {"->record", "->add_counter",
                                       "->histogram", "->observe"};
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        for (const char* call : kSinkCalls) {
            const std::size_t pos = line.find(call);
            if (pos == std::string::npos) continue;
            // Must be a call (allowing a method-name continuation of the
            // prefix, so "->observe" matches "->observe_loss_run(").
            std::size_t after = pos + std::string(call).size();
            while (after < line.size() && ident_char(line[after])) {
                ++after;
            }
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0) {
                ++after;
            }
            if (after >= line.size() || line[after] != '(') continue;
            // Receiver expression: identifier chars and '.' walking left
            // from the arrow (covers `trace_`, `cfg.trace`, `sink`).
            std::size_t b = pos;
            while (b > 0 && (ident_char(line[b - 1]) || line[b - 1] == '.')) {
                --b;
            }
            const std::string receiver = line.substr(b, pos - b);
            if (receiver.empty()) continue;
            // A null-gate on the same expression within the preceding
            // window (or earlier on the same line) keeps the site legal.
            bool gated = false;
            const std::size_t first =
                i >= cfg.gate_window ? i - cfg.gate_window : 0;
            for (std::size_t j = first; j <= i && !gated; ++j) {
                const std::string& g = s.code[j];
                const std::size_t if_pos = g.find("if");
                if (if_pos == std::string::npos) continue;
                if (j == i && if_pos > b) continue;  // gate must precede call
                if (g.find(receiver, if_pos) != std::string::npos &&
                    contains_token(g, "if")) {
                    gated = true;
                }
            }
            if (!gated) {
                e.emit("D4", i,
                       "direct sink call '" + receiver + call +
                           "(...)' without a null-gate on '" + receiver +
                           "': emission sites must be zero-cost when "
                           "observability is off (gate with `if (" +
                           receiver + ")` or use the gated helper)");
            }
        }
    }
}

// ---- D5: ownership / include hygiene in library targets --------------------

void check_d5(const std::string& path, const Stripped& s, const LintConfig& cfg,
              Emitter& e) {
    if (!path_has_prefix(path, cfg.library_paths)) return;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        if (line.find("#include") != std::string::npos &&
            line.find("<iostream>") != std::string::npos) {
            e.emit("D5", i,
                   "'#include <iostream>' in a library target: global "
                   "stream objects drag in static initialization and "
                   "stdio; format into strings or take an std::ostream&");
        }
        std::size_t pos = 0;
        while ((pos = line.find("new", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
            const std::size_t end = pos + 3;
            const bool right_ok = end >= line.size() || !ident_char(line[end]);
            if (left_ok && right_ok) {
                e.emit("D5", i,
                       "raw 'new' expression: library code owns memory via "
                       "containers and std::make_unique");
                break;
            }
            pos += 3;
        }
        pos = 0;
        while ((pos = line.find("delete", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
            const std::size_t end = pos + 6;
            const bool right_ok = end >= line.size() || !ident_char(line[end]);
            // `= delete;` declarations are idiomatic and exempt.
            std::size_t before = pos;
            while (before > 0 &&
                   std::isspace(static_cast<unsigned char>(line[before - 1])) !=
                       0) {
                --before;
            }
            const bool deleted_fn = before > 0 && line[before - 1] == '=';
            if (left_ok && right_ok && !deleted_fn) {
                e.emit("D5", i,
                       "raw 'delete' expression: library code owns memory "
                       "via containers and std::make_unique");
                break;
            }
            pos += 6;
        }
    }
}

}  // namespace

namespace internal {

void check_token_rules(const std::string& path, const Stripped& s,
                       const LintConfig& cfg, Emitter& e) {
    check_d1(s, e);
    check_d2(path, s, cfg, e);
    check_d3(s, cfg, e);
    check_d4(s, cfg, e);
    check_d5(path, s, cfg, e);
}

}  // namespace internal

// ---- public API ------------------------------------------------------------

const std::vector<RuleInfo>& rules() {
    static const std::vector<RuleInfo> kRules = {
        {"D0", Severity::kError,
         "malformed espread-lint suppression (missing reason or unknown rule)"},
        {"D1", Severity::kError,
         "nondeterministic entropy or time source outside the allowlist"},
        {"D2", Severity::kError,
         "hash-ordered container in result-producing code"},
        {"D3", Severity::kError, "default: label in a contract-enum switch"},
        {"D4", Severity::kError, "ungated trace/metrics sink call"},
        {"D5", Severity::kError,
         "raw new/delete or <iostream> in a library target"},
        {"C1", Severity::kError,
         "magic or colliding RNG split lane (registry: k<Family>Lane<Name>)"},
        {"C2", Severity::kError,
         "wire tag without single registry declaration, canonical decode, "
         "or fuzz-corpus coverage"},
        {"C3", Severity::kError,
         "metric/trace/SLO name literal not from the contract registry, or "
         "producer/consumer name sets drifted"},
        {"C4", Severity::kError,
         "bench claim-gate key not emitted by the gated bench or missing "
         "from the baselines"},
        {"C5", Severity::kError,
         "dead contract registry entry no extractor ever sees"},
    };
    return kRules;
}

bool known_rule(const std::string& id) {
    return std::any_of(rules().begin(), rules().end(),
                       [&](const RuleInfo& r) { return id == r.id; });
}

LintConfig default_config() {
    LintConfig cfg;
    cfg.contract_enums = {"EventType",       "Actor",    "GovernorState",
                          "AckRejectReason", "WireType", "FrameType",
                          "Scheme",          "RecoveryMode"};
    cfg.ordered_output_paths = {"src/engine/", "src/exp/", "src/obs/",
                                "src/protocol/report"};
    cfg.library_paths = {"src/"};
    return cfg;
}

bool load_allowlist_file(const std::string& path, LintConfig& cfg,
                         std::string* err) {
    std::ifstream in(path);
    if (!in) {
        if (err != nullptr) *err = "cannot open allowlist file: " + path;
        return false;
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        line = internal::trim(line);
        if (line.empty()) continue;
        std::stringstream ss(line);
        std::string rule;
        std::string glob;
        std::string extra;
        ss >> rule >> glob;
        if (glob.empty() || (ss >> extra && !extra.empty())) {
            if (err != nullptr) {
                *err = path + ":" + std::to_string(line_no) +
                       ": expected `<rule-id|*> <glob>`";
            }
            return false;
        }
        if (rule != "*" && !known_rule(rule)) {
            if (err != nullptr) {
                *err = path + ":" + std::to_string(line_no) +
                       ": unknown rule id '" + rule + "'";
            }
            return false;
        }
        cfg.allowlist.push_back({rule, glob});
    }
    return true;
}

namespace {

/// Backtracking fnmatch: `?` matches one non-'/' character, `*` a run of
/// non-'/' characters, `**` any run including '/'.
bool glob_match_at(const std::string& p, std::size_t pi, const std::string& s,
                   std::size_t si) {
    while (pi < p.size()) {
        const char c = p[pi];
        if (c == '*') {
            std::size_t stars = 0;
            while (pi < p.size() && p[pi] == '*') {
                ++stars;
                ++pi;
            }
            const bool cross = stars >= 2;
            for (std::size_t k = si; k <= s.size(); ++k) {
                if (glob_match_at(p, pi, s, k)) return true;
                if (k == s.size()) break;
                if (!cross && s[k] == '/') break;  // `*` stops at '/'
            }
            return false;
        }
        if (si >= s.size()) return false;
        if (c == '?') {
            if (s[si] == '/') return false;
        } else if (c != s[si]) {
            return false;
        }
        ++pi;
        ++si;
    }
    return si == s.size();
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& path) {
    return glob_match_at(pattern, 0, path, 0);
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const LintConfig& cfg) {
    std::vector<Diagnostic> out;
    if (internal::rule_allowlisted(cfg, "*", path)) return out;
    const internal::Stripped s = internal::strip(content);
    const internal::Suppressions sup = internal::parse_suppressions(path, s);
    for (const Diagnostic& d : sup.malformed) {
        if (!internal::rule_allowlisted(cfg, "D0", path)) out.push_back(d);
    }
    internal::Emitter e(path, cfg, sup, out);
    internal::check_token_rules(path, s, cfg, e);
    std::sort(out.begin(), out.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<Diagnostic> lint_file(const std::string& fs_path,
                                  const std::string& report_path,
                                  const LintConfig& cfg) {
    std::ifstream in(fs_path, std::ios::binary);
    if (!in) {
        return {{report_path, 0, "D0", "cannot read file", Severity::kError}};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return lint_source(report_path, buf.str(), cfg);
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const LintConfig& cfg) {
    ScanOptions opt;  // token rules only, single-threaded
    return scan_tree(root, paths, cfg, opt);
}

std::string format_gcc(const Diagnostic& d) {
    const char* sev = d.severity == Severity::kError ? "error" : "warning";
    return d.path + ":" + std::to_string(d.line) + ": " + sev + ": " +
           d.message + " [" + d.rule + "]";
}

}  // namespace espread::lint
