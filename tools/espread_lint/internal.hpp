// Shared scanner internals: the comment/string-aware line stripper, the
// suppression parser and the diagnostic emitter, used by both the token
// rules (lint.cpp, D1-D5) and the cross-TU contract rules (contracts.cpp,
// C1-C5) so every file is read and stripped exactly once per scan.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace espread::lint::internal {

bool ident_char(char c);
std::string trim(const std::string& s);

/// `needle` present in `hay` with non-identifier characters (or the buffer
/// edge) on both sides.
bool contains_token(const std::string& hay, const std::string& needle);

/// Token followed (after optional whitespace) by '('.  On success `*at` is
/// the token position; pass `from` to resume past a previous match.
bool contains_call(const std::string& hay, const std::string& name,
                   std::size_t* at = nullptr, std::size_t from = 0);

bool path_has_prefix(const std::string& path,
                     const std::vector<std::string>& prefixes);

bool rule_allowlisted(const LintConfig& cfg, const std::string& rule,
                      const std::string& path);

// ---- comment/literal stripping --------------------------------------------

/// One string literal: 0-based start line, column of its placeholder in the
/// stripped code line, and the (unescaped-ish) contents.  Multi-line raw
/// strings record their start position and full contents.
struct StringLit {
    std::size_t line = 0;
    std::size_t col = 0;
    std::string text;
};

/// Per-line views of a translation unit: `code` has comments and the
/// contents of string/char literals blanked out; `comment` collects the
/// text of comments that end on (or run through) that line; `strings`
/// lists every string literal with its position.
struct Stripped {
    std::vector<std::string> code;
    std::vector<std::string> comment;
    std::vector<StringLit> strings;
};

Stripped strip(const std::string& content);

// ---- suppressions ----------------------------------------------------------

/// Per-line suppression sets plus the D0 findings produced while parsing.
struct Suppressions {
    /// line index (0-based) -> rule ids suppressed on that line
    std::map<std::size_t, std::set<std::string>> allow;
    std::vector<Diagnostic> malformed;
};

Suppressions parse_suppressions(const std::string& path, const Stripped& s);

// ---- emission --------------------------------------------------------------

/// Emits unless suppressed on `line` or the whole file is allowlisted for
/// the rule.  D0 findings bypass this (they are never suppressible).
class Emitter {
public:
    Emitter(const std::string& path, const LintConfig& cfg,
            const Suppressions& sup, std::vector<Diagnostic>& out)
        : path_(path), cfg_(cfg), sup_(sup), out_(out) {}

    void emit(const char* rule, std::size_t line_idx,
              const std::string& message);

private:
    const std::string path_;
    const LintConfig& cfg_;
    const Suppressions& sup_;
    std::vector<Diagnostic>& out_;
};

/// Runs the token rules D1-D5 over one stripped file.
void check_token_rules(const std::string& path, const Stripped& s,
                       const LintConfig& cfg, Emitter& e);

/// One scanned file: shared input to the token pass (phase 0) and the
/// contract extract/check passes (phases 1 and 2).
struct FileScan {
    std::string path;  // repo-root relative
    bool read_ok = true;
    bool fully_allowlisted = false;  // `* <glob>` entries mute extraction too
    Stripped s;
    Suppressions sup;
};

/// True if any stripped code line contains `needle` as a token.
bool file_has_token(const Stripped& s, const std::string& needle);

}  // namespace espread::lint::internal
