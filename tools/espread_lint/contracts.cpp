// Cross-TU contract extraction and checking (rules C1-C5) plus the shared
// tree scanner (scan_tree) both rule groups run under.  See contracts.hpp
// for the rule catalogue and DESIGN.md §14 for the workflow.
#include "contracts.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "internal.hpp"

namespace espread::lint {

namespace {

using internal::contains_call;
using internal::contains_token;
using internal::file_has_token;
using internal::FileScan;
using internal::ident_char;
using internal::path_has_prefix;
using internal::Stripped;
using internal::StringLit;
using internal::trim;

bool all_digits(const std::string& s) {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(), [](char c) {
               return std::isdigit(static_cast<unsigned char>(c)) != 0;
           });
}

std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/// Last `::`-qualified component of an expression, or "" if it is not a
/// plain (possibly qualified) identifier.
std::string last_component(const std::string& expr) {
    const std::size_t q = expr.rfind("::");
    const std::string name = q == std::string::npos ? expr : expr.substr(q + 2);
    if (name.empty() || !std::all_of(name.begin(), name.end(), ident_char)) {
        return "";
    }
    return name;
}

// ---- phase 1: fact extraction ----------------------------------------------

struct SplitSite {
    std::size_t line = 0;  // 0-based
    bool is_literal = false;
    std::uint64_t value = 0;
    std::string name;  // ident arg (unqualified), empty if unparseable
};

/// Every `.split(<arg>)` call site; wrapped argument lists are joined
/// across up to two following lines.
std::vector<SplitSite> split_sites(const Stripped& s) {
    std::vector<SplitSite> out;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        std::size_t pos = 0;
        while ((pos = line.find(".split(", pos)) != std::string::npos) {
            std::string rest = line.substr(pos + 7);
            for (std::size_t j = i + 1;
                 rest.find(')') == std::string::npos &&
                 j < s.code.size() && j <= i + 2;
                 ++j) {
                rest += " " + s.code[j];
            }
            const std::size_t close = rest.find(')');
            pos += 7;
            if (close == std::string::npos) continue;
            const std::string arg = trim(rest.substr(0, close));
            SplitSite site;
            site.line = i;
            if (all_digits(arg)) {
                site.is_literal = true;
                site.value = std::stoull(arg);
                out.push_back(site);
            } else {
                site.name = last_component(arg);
                if (!site.name.empty()) out.push_back(site);
            }
        }
    }
    return out;
}

struct NamedValue {
    std::size_t line = 0;
    std::string name;
    std::uint64_t value = 0;
};

struct TableDecl {
    std::size_t line = 0;
    std::vector<StringLit> entries;
};

/// Constant and table declarations in registry style, mined from any file
/// (outside the registry they are themselves findings).
struct RegistryFacts {
    std::vector<NamedValue> lanes;  // k<Family>Lane<Name>
    std::vector<NamedValue> tags;   // kWireTag<Name>
    std::map<std::string, TableDecl> tables;  // configured table names only
};

/// The identifier being declared on a `constexpr ... name[...] = ...` or
/// `constexpr ... name = ...` line: the token just left of '=', skipping
/// an optional [..] array suffix.
std::string declared_name(const std::string& line, bool* is_array) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return "";
    std::size_t e = eq;
    while (e > 0 && std::isspace(static_cast<unsigned char>(line[e - 1])) != 0)
        --e;
    *is_array = false;
    if (e > 0 && line[e - 1] == ']') {
        const std::size_t open = line.rfind('[', e - 1);
        if (open == std::string::npos) return "";
        e = open;
        *is_array = true;
        while (e > 0 &&
               std::isspace(static_cast<unsigned char>(line[e - 1])) != 0)
            --e;
    }
    std::size_t b = e;
    while (b > 0 && ident_char(line[b - 1])) --b;
    return line.substr(b, e - b);
}

bool parse_lane_name(const std::string& name, std::string* family) {
    if (name.size() < 2 || name[0] != 'k') return false;
    const std::size_t pos = name.find("Lane");
    if (pos == std::string::npos) return false;
    *family = name.substr(1, pos - 1);
    return true;  // family may be empty — the checker flags that
}

bool is_tag_name(const std::string& name) {
    return name.rfind("kWireTag", 0) == 0 && name.size() > 8;
}

RegistryFacts extract_registry(const Stripped& s,
                               const std::set<std::string>& table_names) {
    RegistryFacts out;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        if (!contains_token(line, "constexpr")) continue;
        bool is_array = false;
        const std::string name = declared_name(line, &is_array);
        if (name.empty()) continue;
        if (is_array && table_names.count(name) != 0) {
            // Collect entry strings up to the terminating ';'.
            std::size_t end = i;
            while (end < s.code.size() &&
                   s.code[end].find(';') == std::string::npos) {
                ++end;
            }
            TableDecl t;
            t.line = i;
            for (const StringLit& lit : s.strings) {
                if (lit.line >= i && lit.line <= end) t.entries.push_back(lit);
            }
            out.tables[name] = t;
            i = end;
            continue;
        }
        if (is_array) continue;
        std::string family;
        const bool lane = parse_lane_name(name, &family);
        const bool tag = is_tag_name(name);
        if (!lane && !tag) continue;
        // Parse the integer initializer.
        const std::size_t eq = line.find('=');
        std::size_t v = eq + 1;
        while (v < line.size() &&
               std::isspace(static_cast<unsigned char>(line[v])) != 0)
            ++v;
        std::size_t d = v;
        while (d < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[d])) != 0)
            ++d;
        if (d == v) continue;  // alias or expression initializer: no fact
        NamedValue nv{i, name, std::stoull(line.substr(v, d - v))};
        if (tag) {
            out.tags.push_back(nv);
        } else {
            out.lanes.push_back(nv);
        }
    }
    return out;
}

struct WireEnumEntry {
    std::size_t line = 0;
    std::string enumerator;
    bool is_literal = false;
    std::uint64_t value = 0;
    std::string init_name;
};

std::vector<WireEnumEntry> wire_enum_entries(const Stripped& s,
                                             const std::string& enum_name) {
    std::vector<WireEnumEntry> out;
    std::size_t begin = s.code.size();
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        if (s.code[i].find("enum") != std::string::npos &&
            contains_token(s.code[i], enum_name)) {
            begin = i;
            break;
        }
    }
    for (std::size_t i = begin; i < s.code.size(); ++i) {
        const std::string line = trim(s.code[i]);
        if (i > begin && line.find('}') != std::string::npos) break;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || line.empty() || line[0] != 'k') continue;
        std::size_t e = 0;
        while (e < line.size() && ident_char(line[e])) ++e;
        WireEnumEntry entry;
        entry.line = i;
        entry.enumerator = line.substr(0, e);
        std::string init = trim(line.substr(eq + 1));
        if (!init.empty() && init.back() == ',') init.pop_back();
        init = trim(init);
        if (all_digits(init)) {
            entry.is_literal = true;
            entry.value = std::stoull(init);
        } else {
            entry.init_name = last_component(init);
        }
        out.push_back(entry);
    }
    return out;
}

/// String literals appearing as an argument of `<prefix-char><fn>(`:
/// either the first argument (immediately after the open paren, spilling
/// to the next line for wrapped calls), or — with `anywhere` — the first
/// literal after the call token on the same line (for helpers whose name
/// argument is not first, like prom_counter).
std::vector<StringLit> call_literals(const Stripped& s, const std::string& fn,
                                     const char* prefix_chars,
                                     bool anywhere = false) {
    // The stripper replaces each literal with a one-space placeholder at
    // `col`, so "the first argument is a literal" means: the first literal
    // on the line at/after the open paren with only whitespace before it.
    auto first_lit_after = [&s](std::size_t ln,
                                std::size_t col) -> const StringLit* {
        const StringLit* best = nullptr;
        for (const StringLit& lit : s.strings) {
            if (lit.line == ln && lit.col >= col &&
                (best == nullptr || lit.col < best->col)) {
                best = &lit;
            }
        }
        if (best == nullptr) return nullptr;
        const std::string& line = s.code[ln];
        for (std::size_t k = col; k < best->col && k < line.size(); ++k) {
            if (std::isspace(static_cast<unsigned char>(line[k])) == 0) {
                return nullptr;
            }
        }
        return best;
    };
    std::vector<StringLit> out;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        std::size_t at = 0;
        std::size_t from = 0;
        while (contains_call(line, fn, &at, from)) {
            from = at + fn.size();
            if (prefix_chars != nullptr) {
                if (at == 0 ||
                    std::string(prefix_chars).find(line[at - 1]) ==
                        std::string::npos) {
                    continue;
                }
            }
            if (anywhere) {
                for (const StringLit& lit : s.strings) {
                    if (lit.line == i && lit.col > at) {
                        out.push_back(lit);
                        break;
                    }
                }
                continue;
            }
            std::size_t j = at + fn.size();
            while (j < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[j])) != 0)
                ++j;
            if (j >= line.size() || line[j] != '(') continue;
            if (const StringLit* lit = first_lit_after(i, j + 1)) {
                out.push_back(*lit);
                continue;
            }
            // Wrapped call: '(' ends the line, the argument opens the next.
            bool tail_blank = true;
            for (std::size_t k = j + 1; k < line.size(); ++k) {
                if (std::isspace(static_cast<unsigned char>(line[k])) == 0) {
                    tail_blank = false;
                    break;
                }
            }
            if (tail_blank && i + 1 < s.code.size()) {
                if (const StringLit* lit = first_lit_after(i + 1, 0)) {
                    out.push_back(*lit);
                }
            }
        }
    }
    return out;
}

/// String literals on lines containing `context` (plain substring) and a
/// `return` token — the shape of the name<->enum translation functions.
std::vector<StringLit> context_literals(const Stripped& s,
                                        const std::string& context) {
    std::vector<StringLit> out;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        if (s.code[i].find(context) == std::string::npos) continue;
        if (!contains_token(s.code[i], "return")) continue;
        for (const StringLit& lit : s.strings) {
            if (lit.line == i) out.push_back(lit);
        }
    }
    return out;
}

/// Governor state-name array declarations (`<tok>[...] = { "..." ... };`).
std::vector<TableDecl> state_table_decls(
    const Stripped& s, const std::vector<std::string>& tokens) {
    std::vector<TableDecl> out;
    for (std::size_t i = 0; i < s.code.size(); ++i) {
        const std::string& line = s.code[i];
        for (const std::string& tok : tokens) {
            std::size_t pos = line.find(tok);
            if (pos == std::string::npos) continue;
            std::size_t j = pos + tok.size();
            if (j >= line.size() || line[j] != '[') continue;
            const std::size_t close = line.find(']', j);
            if (close == std::string::npos) continue;
            j = close + 1;
            while (j < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[j])) != 0)
                ++j;
            if (j >= line.size() || line[j] != '=') continue;
            std::size_t end = i;
            while (end < s.code.size() &&
                   s.code[end].find(';') == std::string::npos)
                ++end;
            TableDecl t;
            t.line = i;
            for (const StringLit& lit : s.strings) {
                if (lit.line >= i && lit.line <= end) t.entries.push_back(lit);
            }
            out.push_back(t);
        }
    }
    return out;
}

// ---- external (non-C++) surfaces -------------------------------------------

struct TextFile {
    bool ok = false;
    std::vector<std::string> lines;
};

TextFile read_text(const std::string& root, const std::string& rel) {
    TextFile out;
    std::ifstream in(std::filesystem::path(root) / rel, std::ios::binary);
    if (!in) return out;
    out.ok = true;
    std::string line;
    while (std::getline(in, line)) out.lines.push_back(line);
    return out;
}

/// One perf_gate invocation in the CI workflow: the consumed key plus the
/// `<bench-name>=<artifact>.json` mappings, with their 0-based lines.
struct GateStep {
    bool is_perf_gate = false;
    std::string key;       // --key=... value, or "" for the default
    std::size_t key_line = 0;
    std::vector<std::pair<std::string, std::size_t>> mappings;
};

/// SLO specs (`--slo name,signal,window,target`) with their lines.
struct CiFacts {
    std::vector<GateStep> steps;
    std::vector<std::pair<std::string, std::size_t>> slo_signals;
};

CiFacts parse_ci(const TextFile& ci) {
    CiFacts out;
    GateStep cur;
    auto flush = [&]() {
        if (cur.is_perf_gate) out.steps.push_back(cur);
        cur = GateStep{};
    };
    for (std::size_t i = 0; i < ci.lines.size(); ++i) {
        const std::string line = ci.lines[i];
        if (trim(line).rfind("- name:", 0) == 0) flush();
        std::istringstream ss(line);
        std::string tok;
        while (ss >> tok) {
            if (tok.find("perf_gate") != std::string::npos) {
                cur.is_perf_gate = true;
            }
            if (tok.rfind("--key=", 0) == 0) {
                cur.key = tok.substr(6);
                cur.key_line = i;
            }
            if (tok.rfind("--slo", 0) == 0) {
                std::string spec;
                if (tok.size() > 6 && tok[5] == '=') {
                    spec = tok.substr(6);
                } else if (ss >> spec) {
                }
                // name,signal,window,target -> field 1
                std::vector<std::string> fields;
                std::stringstream fs(spec);
                std::string f;
                while (std::getline(fs, f, ',')) fields.push_back(f);
                if (fields.size() >= 2) out.slo_signals.push_back({fields[1], i});
            }
            // `<name>=<...>.json` mapping; flags (--out=..., --baseline=...)
            // start with '-'.
            const std::size_t eq = tok.find('=');
            if (eq != std::string::npos && eq > 0 && tok[0] != '-' &&
                tok.size() > 5 && tok.rfind(".json") == tok.size() - 5) {
                const std::string name = tok.substr(0, eq);
                if (std::all_of(name.begin(), name.end(), ident_char)) {
                    cur.mappings.push_back({name, i});
                }
            }
        }
    }
    flush();
    return out;
}

/// Top-level JSON keys of the frozen baseline file: `"name":` at object
/// depth 1, tracked string-aware so brace characters inside values never
/// shift the depth.
std::vector<std::pair<std::string, std::size_t>> parse_json_keys(
    const TextFile& f) {
    std::vector<std::pair<std::string, std::size_t>> out;
    int depth = 0;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& line = f.lines[i];
        std::size_t pos = 0;
        while (pos < line.size()) {
            const char c = line[pos];
            if (c == '{' || c == '[') {
                ++depth;
                ++pos;
            } else if (c == '}' || c == ']') {
                --depth;
                ++pos;
            } else if (c == '"') {
                std::size_t end = pos + 1;
                while (end < line.size() &&
                       (line[end] != '"' || line[end - 1] == '\\'))
                    ++end;
                if (end >= line.size()) {
                    pos = end;
                    break;
                }
                std::size_t j = end + 1;
                while (j < line.size() &&
                       std::isspace(static_cast<unsigned char>(line[j])) != 0)
                    ++j;
                if (depth == 1 && j < line.size() && line[j] == ':') {
                    out.push_back({line.substr(pos + 1, end - pos - 1), i});
                }
                pos = end + 1;
            } else {
                ++pos;
            }
        }
    }
    return out;
}

// ---- phase 2: the checker --------------------------------------------------

class ContractChecker {
public:
    ContractChecker(const std::string& root, const LintConfig& cfg,
                    const ContractConfig& ccfg,
                    const std::vector<FileScan>& scans,
                    std::vector<Diagnostic>& out)
        : root_(root), cfg_(cfg), ccfg_(ccfg), scans_(scans), out_(out) {
        for (const FileScan& f : scans_) {
            if (f.read_ok && !f.fully_allowlisted) by_path_[f.path] = &f;
        }
    }

    void run() {
        if (!resolve_registry()) return;
        check_lanes();
        check_wire_tags();
        check_names();
        check_gates();
    }

private:
    const FileScan* find(const std::string& path) const {
        const auto it = by_path_.find(path);
        return it == by_path_.end() ? nullptr : it->second;
    }

    void emit(const char* rule, const std::string& path, std::size_t line_idx,
              const std::string& message) {
        if (internal::rule_allowlisted(cfg_, rule, path)) return;
        if (const FileScan* f = find(path)) {
            const auto it = f->sup.allow.find(line_idx);
            if (it != f->sup.allow.end() && it->second.count(rule) != 0) return;
        }
        out_.push_back({path, line_idx + 1, rule, message, Severity::kError});
    }

    std::set<std::string> table_names() const {
        return {ccfg_.session_metric_table,  ccfg_.engine_metric_table,
                ccfg_.engine_summary_table,  ccfg_.telemetry_series_table,
                ccfg_.signal_table,          ccfg_.slo_health_table,
                ccfg_.governor_state_table,  ccfg_.trace_event_table,
                ccfg_.trace_actor_table,     ccfg_.gate_key_table};
    }

    /// Locates (or side-loads) the registry and mines it.  Also flags
    /// registry-style declarations anywhere else (C1/C2/C3).
    bool resolve_registry() {
        const std::set<std::string> tables = table_names();
        for (const FileScan& f : scans_) {
            if (!f.read_ok || f.fully_allowlisted ||
                f.path == ccfg_.registry_path) {
                continue;
            }
            const RegistryFacts facts = extract_registry(f.s, tables);
            for (const NamedValue& nv : facts.lanes) {
                emit("C1", f.path, nv.line,
                     "RNG lane constant '" + nv.name +
                         "' declared outside the contract registry (" +
                         ccfg_.registry_path + ")");
            }
            for (const NamedValue& nv : facts.tags) {
                emit("C2", f.path, nv.line,
                     "wire tag constant '" + nv.name +
                         "' declared outside the contract registry (" +
                         ccfg_.registry_path + ")");
            }
            for (const auto& [name, decl] : facts.tables) {
                emit("C3", f.path, decl.line,
                     "registry name table '" + name +
                         "' declared outside the contract registry (" +
                         ccfg_.registry_path + ")");
            }
        }
        if (const FileScan* f = find(ccfg_.registry_path)) {
            registry_ = extract_registry(f->s, tables);
            return true;
        }
        // Partial scans (a subtree that excludes src/sim) still check
        // against the real registry: side-load it from disk.
        std::ifstream in(std::filesystem::path(root_) / ccfg_.registry_path,
                         std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            side_loaded_ = internal::strip(buf.str());
            registry_ = extract_registry(side_loaded_, tables);
            return true;
        }
        emit("C5", ccfg_.registry_path, 0,
             "contract registry header not found: every lane, wire tag, and "
             "contract name table must be declared there");
        return false;
    }

    bool has_table(const std::string& name) const {
        return registry_.tables.count(name) != 0;
    }

    std::set<std::string> table_set(const std::string& name) const {
        std::set<std::string> out;
        const auto it = registry_.tables.find(name);
        if (it == registry_.tables.end()) return out;
        for (const StringLit& lit : it->second.entries) out.insert(lit.text);
        return out;
    }

    /// Scanned file coverage under a prefix set — gates the C5 deadness
    /// checks so partial scans do not flag entries their producers would
    /// have used.
    bool scanned_under(const std::vector<std::string>& prefixes) const {
        for (const FileScan& f : scans_) {
            if (f.read_ok && !f.fully_allowlisted &&
                path_has_prefix(f.path, prefixes)) {
                return true;
            }
        }
        return false;
    }

    // ---- C1 ----------------------------------------------------------------

    const ContractConfig::LaneFamily* family_scope(
        const std::string& family) const {
        for (const auto& fam : ccfg_.lane_families) {
            if (fam.family == family) return &fam;
        }
        return nullptr;
    }

    void check_lanes() {
        struct LaneInfo {
            std::string family;
            std::uint64_t value = 0;
            std::size_t line = 0;
        };
        std::map<std::string, LaneInfo> lanes;  // name -> info
        std::map<std::string, std::map<std::uint64_t, std::string>> taken;
        for (const NamedValue& nv : registry_.lanes) {
            std::string family;
            parse_lane_name(nv.name, &family);
            const std::size_t lane_pos = nv.name.find("Lane");
            const std::string suffix = nv.name.substr(lane_pos + 4);
            if (family.empty() || suffix.empty()) {
                emit("C1", ccfg_.registry_path, nv.line,
                     "lane constant '" + nv.name +
                         "' must be named k<Family>Lane<Name>");
                continue;
            }
            if (family_scope(family) == nullptr) {
                emit("C1", ccfg_.registry_path, nv.line,
                     "lane family '" + family +
                         "' has no path scope configured in the lint "
                         "ContractConfig: add it alongside the new lanes");
                continue;
            }
            auto& values = taken[family];
            const auto prev = values.find(nv.value);
            if (prev != values.end()) {
                emit("C1", ccfg_.registry_path, nv.line,
                     "lane value " + std::to_string(nv.value) +
                         " in family '" + family + "' collides with '" +
                         prev->second +
                         "': independent RNG consumers on the same root "
                         "would draw correlated streams");
                continue;
            }
            values[nv.value] = nv.name;
            lanes[nv.name] = {family, nv.value, nv.line};
        }

        std::set<std::string> used;
        for (const FileScan& f : scans_) {
            if (!f.read_ok || f.fully_allowlisted ||
                f.path == ccfg_.registry_path) {
                continue;
            }
            const bool in_scope =
                path_has_prefix(f.path, ccfg_.lane_literal_paths);
            for (const SplitSite& site : split_sites(f.s)) {
                if (!site.name.empty()) used.insert(site.name);
                if (!in_scope) continue;
                if (site.is_literal) {
                    emit("C1", f.path, site.line,
                         "magic RNG split lane " + std::to_string(site.value) +
                             ": use a named k<Family>Lane<Name> constant "
                             "from " + ccfg_.registry_path);
                    continue;
                }
                const auto it = lanes.find(site.name);
                if (it == lanes.end()) {
                    emit("C1", f.path, site.line,
                         "split lane '" + site.name +
                             "' is not a registered lane constant in " +
                             ccfg_.registry_path);
                    continue;
                }
                const ContractConfig::LaneFamily* fam =
                    family_scope(it->second.family);
                if (fam != nullptr && !path_has_prefix(f.path, fam->prefixes)) {
                    emit("C1", f.path, site.line,
                         "lane '" + site.name + "' belongs to family '" +
                             it->second.family +
                             "', which is scoped to other paths: reusing a "
                             "lane across subsystems aliases their RNG "
                             "streams");
                }
            }
        }

        // C5: registered lanes nothing ever splits.
        for (const auto& [name, info] : lanes) {
            const ContractConfig::LaneFamily* fam = family_scope(info.family);
            if (fam == nullptr || !scanned_under(fam->prefixes)) continue;
            if (used.count(name) == 0) {
                emit("C5", ccfg_.registry_path, info.line,
                     "dead lane '" + name +
                         "': no .split() site in the scanned tree uses it");
            }
        }
    }

    // ---- C2 ----------------------------------------------------------------

    void check_wire_tags() {
        std::map<std::string, NamedValue> tags;
        std::map<std::uint64_t, std::string> values;
        for (const NamedValue& nv : registry_.tags) {
            const auto prev = values.find(nv.value);
            if (prev != values.end()) {
                emit("C2", ccfg_.registry_path, nv.line,
                     "wire tag value " + std::to_string(nv.value) +
                         " of '" + nv.name + "' collides with '" +
                         prev->second + "': tags share one byte on the wire");
                continue;
            }
            values[nv.value] = nv.name;
            tags[nv.name] = nv;
        }
        const FileScan* header = find(ccfg_.codec_header);
        std::map<std::string, std::size_t> refs;
        if (header != nullptr) {
            for (const WireEnumEntry& e :
                 wire_enum_entries(header->s, ccfg_.wire_enum)) {
                if (e.is_literal) {
                    emit("C2", ccfg_.codec_header, e.line,
                         "magic wire tag " + std::to_string(e.value) +
                             " for enumerator '" + e.enumerator +
                             "': take the value from a kWireTag<Name> "
                             "constant in " + ccfg_.registry_path);
                    continue;
                }
                if (e.init_name.empty() || tags.count(e.init_name) == 0) {
                    emit("C2", ccfg_.codec_header, e.line,
                         "enumerator '" + e.enumerator +
                             "' does not take its value from a registered "
                             "kWireTag<Name> constant");
                    continue;
                }
                const std::string expected =
                    "kWireTag" + e.enumerator.substr(1);
                if (e.init_name != expected) {
                    emit("C2", ccfg_.codec_header, e.line,
                         "enumerator '" + e.enumerator + "' must take '" +
                             expected + "', not '" + e.init_name +
                             "' (one tag, one name)");
                    continue;
                }
                ++refs[e.init_name];
            }
        }
        const FileScan* impl = find(ccfg_.codec_impl);
        for (const auto& [name, nv] : tags) {
            if (header != nullptr) {
                const std::size_t n = refs.count(name) ? refs[name] : 0;
                if (n == 0) {
                    emit("C5", ccfg_.registry_path, nv.line,
                         "dead wire tag '" + name + "': no " +
                             ccfg_.wire_enum + " enumerator takes it");
                    continue;
                }
                if (n > 1) {
                    emit("C2", ccfg_.codec_header, nv.line,
                         "wire tag '" + name + "' taken by " +
                             std::to_string(n) +
                             " enumerators: declare each tag exactly once");
                    continue;
                }
            }
            const std::string decoder = "decode_" + lower(name.substr(8));
            if (impl != nullptr && !file_has_token(impl->s, decoder)) {
                emit("C2", ccfg_.registry_path, nv.line,
                     "wire tag '" + name + "' has no canonical decoder '" +
                         decoder + "' in " + ccfg_.codec_impl);
            }
            bool corpus_scanned = false;
            bool covered = false;
            for (const std::string& rel : ccfg_.fuzz_corpus) {
                if (const FileScan* c = find(rel)) {
                    corpus_scanned = true;
                    if (file_has_token(c->s, decoder)) covered = true;
                }
            }
            if (corpus_scanned && !covered) {
                emit("C2", ccfg_.registry_path, nv.line,
                     "wire tag '" + name +
                         "' has no structure-aware fuzz corpus entry: no "
                         "corpus harness exercises '" + decoder + "'");
            }
        }
    }

    // ---- C3 ----------------------------------------------------------------

    void check_names() {
        const std::set<std::string> session = table_set(ccfg_.session_metric_table);
        const std::set<std::string> engine = table_set(ccfg_.engine_metric_table);
        const std::set<std::string> summary = table_set(ccfg_.engine_summary_table);
        const std::set<std::string> series = table_set(ccfg_.telemetry_series_table);
        const std::set<std::string> signals = table_set(ccfg_.signal_table);
        const std::set<std::string> health = table_set(ccfg_.slo_health_table);

        // Producers: every registered metric name literal must be in a
        // metric table.
        std::set<std::string> produced;
        const bool metrics_tabled = has_table(ccfg_.session_metric_table) ||
                                    has_table(ccfg_.engine_metric_table);
        for (const FileScan& f : scans_) {
            if (!f.read_ok || f.fully_allowlisted ||
                f.path == ccfg_.registry_path ||
                !path_has_prefix(f.path, ccfg_.metric_producer_paths)) {
                continue;
            }
            std::vector<StringLit> names = call_literals(f.s, "add_counter", ".>");
            const std::vector<StringLit> hists =
                call_literals(f.s, "histogram", ".>");
            names.insert(names.end(), hists.begin(), hists.end());
            for (const StringLit& lit : names) {
                produced.insert(lit.text);
                if (metrics_tabled && session.count(lit.text) == 0 &&
                    engine.count(lit.text) == 0) {
                    emit("C3", f.path, lit.line,
                         "metric name \"" + lit.text +
                             "\" is not in the registry metric tables (" +
                             ccfg_.session_metric_table + " / " +
                             ccfg_.engine_metric_table + " in " +
                             ccfg_.registry_path + ")");
                }
            }
        }
        if (metrics_tabled && scanned_under(ccfg_.metric_producer_paths)) {
            deadness(ccfg_.session_metric_table, produced,
                     "no producer registers it");
            deadness(ccfg_.engine_metric_table, produced,
                     "no producer registers it");
        }

        // Writers: emitted JSON keys come from their key tables.
        writer_keys(ccfg_.engine_summary_writer, ccfg_.engine_summary_table,
                    summary);
        writer_keys(ccfg_.telemetry_writer, ccfg_.telemetry_series_table,
                    series);

        // Report tool: consumed keys are a subset of the series keys.
        if (has_table(ccfg_.telemetry_series_table)) {
            for (const FileScan& f : scans_) {
                if (!f.read_ok || f.fully_allowlisted ||
                    !path_has_prefix(f.path, {ccfg_.report_tool_prefix})) {
                    continue;
                }
                for (const StringLit& lit : call_literals(f.s, "at", ".")) {
                    if (series.count(lit.text) == 0) {
                        emit("C3", f.path, lit.line,
                             "report tool consumes series key \"" + lit.text +
                                 "\" that is not in " +
                                 ccfg_.telemetry_series_table +
                                 ": the telemetry writer never emits it");
                    }
                }
            }
        }

        // SLO signal and health names: exact set equality with the tables.
        equality_check(ccfg_.slo_impl, "SloSignal::k", ccfg_.signal_table,
                       signals, "SLO signal");
        equality_check(ccfg_.slo_impl, "SloHealth::k", ccfg_.slo_health_table,
                       health, "SLO health state");

        // Trace event / actor labels.
        equality_check(ccfg_.trace_impl, "EventType::k",
                       ccfg_.trace_event_table,
                       table_set(ccfg_.trace_event_table), "trace event");
        equality_check(ccfg_.trace_impl, "Actor::k", ccfg_.trace_actor_table,
                       table_set(ccfg_.trace_actor_table), "trace actor");

        // Prometheus exposition: counters strip _total into series keys,
        // histograms are named exactly by the signals.
        if (const FileScan* w = find(ccfg_.telemetry_writer)) {
            if (has_table(ccfg_.telemetry_series_table)) {
                for (const StringLit& lit :
                     call_literals(w->s, "prom_counter", nullptr, true)) {
                    std::string base = lit.text;
                    const std::string suffix = "_total";
                    if (base.size() > suffix.size() &&
                        base.rfind(suffix) == base.size() - suffix.size()) {
                        base = base.substr(0, base.size() - suffix.size());
                    }
                    if (series.count(base) == 0) {
                        emit("C3", w->path, lit.line,
                             "prometheus counter \"" + lit.text +
                                 "\" does not correspond to a registered "
                                 "series key");
                    }
                }
            }
            if (has_table(ccfg_.signal_table)) {
                std::set<std::string> exposed;
                for (const StringLit& lit :
                     call_literals(w->s, "prom_histogram", nullptr, true)) {
                    exposed.insert(lit.text);
                    if (signals.count(lit.text) == 0) {
                        emit("C3", w->path, lit.line,
                             "prometheus histogram \"" + lit.text +
                                 "\" is not a registered telemetry signal "
                                 "name (" + ccfg_.signal_table + ")");
                    }
                }
                for (const StringLit& entry :
                     registry_.tables.at(ccfg_.signal_table).entries) {
                    if (exposed.count(entry.text) == 0) {
                        emit("C3", ccfg_.registry_path, entry.line,
                             "telemetry signal \"" + entry.text +
                                 "\" has no prometheus histogram exposition "
                                 "in " + ccfg_.telemetry_writer);
                    }
                }
            }
        }

        // Governor state-name arrays, wherever declared.
        if (has_table(ccfg_.governor_state_table)) {
            std::vector<std::string> states;
            for (const StringLit& entry :
                 registry_.tables.at(ccfg_.governor_state_table).entries) {
                states.push_back(entry.text);
            }
            for (const FileScan& f : scans_) {
                if (!f.read_ok || f.fully_allowlisted ||
                    f.path == ccfg_.registry_path) {
                    continue;
                }
                for (const TableDecl& decl :
                     state_table_decls(f.s, ccfg_.state_table_tokens)) {
                    std::vector<std::string> got;
                    for (const StringLit& lit : decl.entries)
                        got.push_back(lit.text);
                    if (got != states) {
                        emit("C3", f.path, decl.line,
                             "governor state-name table drifted from " +
                                 ccfg_.governor_state_table + " in " +
                                 ccfg_.registry_path +
                                 " (names and order must match)");
                    }
                }
            }
        }
    }

    /// Table entries never seen in `seen` are dead (C5).
    void deadness(const std::string& table, const std::set<std::string>& seen,
                  const std::string& why) {
        const auto it = registry_.tables.find(table);
        if (it == registry_.tables.end()) return;
        for (const StringLit& entry : it->second.entries) {
            if (seen.count(entry.text) == 0) {
                emit("C5", ccfg_.registry_path, entry.line,
                     "dead registry entry \"" + entry.text + "\" in " +
                         table + ": " + why);
            }
        }
    }

    /// Writer file: every emitted `.key("...")` must be in its table (C3),
    /// and every table entry must be emitted (C5).
    void writer_keys(const std::string& writer, const std::string& table,
                     const std::set<std::string>& keys) {
        const FileScan* w = find(writer);
        if (w == nullptr || !has_table(table)) return;
        std::set<std::string> emitted;
        for (const StringLit& lit : call_literals(w->s, "key", ".")) {
            emitted.insert(lit.text);
            if (keys.count(lit.text) == 0) {
                emit("C3", w->path, lit.line,
                     "JSON key \"" + lit.text + "\" emitted by " + writer +
                         " is not in " + table + " (" + ccfg_.registry_path +
                         ")");
            }
        }
        deadness(table, emitted, writer + " never emits it");
    }

    /// Name-translation file: the literal set on `context` lines must
    /// equal the registry table exactly.
    void equality_check(const std::string& impl, const std::string& context,
                        const std::string& table,
                        const std::set<std::string>& expected,
                        const std::string& what) {
        const FileScan* f = find(impl);
        if (f == nullptr || !has_table(table)) return;
        std::set<std::string> got;
        for (const StringLit& lit : context_literals(f->s, context)) {
            got.insert(lit.text);
            if (expected.count(lit.text) == 0) {
                emit("C3", f->path, lit.line,
                     what + " name \"" + lit.text + "\" is not in " + table +
                         " (" + ccfg_.registry_path + ")");
            }
        }
        if (got.empty()) return;  // context never appears: nothing to hold
        for (const StringLit& entry : registry_.tables.at(table).entries) {
            if (got.count(entry.text) == 0) {
                emit("C3", ccfg_.registry_path, entry.line,
                     what + " name \"" + entry.text + "\" in " + table +
                         " is not handled by " + impl);
            }
        }
    }

    // ---- C4 ----------------------------------------------------------------

    void check_gates() {
        const std::set<std::string> gate_keys = table_set(ccfg_.gate_key_table);
        if (!has_table(ccfg_.gate_key_table)) return;

        const TextFile ci = read_text(root_, ccfg_.ci_workflow);
        const TextFile base = read_text(root_, ccfg_.baselines);
        const CiFacts facts = ci.ok ? parse_ci(ci) : CiFacts{};
        std::vector<std::pair<std::string, std::size_t>> base_keys;
        if (base.ok) base_keys = parse_json_keys(base);
        std::set<std::string> base_set;
        for (const auto& [k, line] : base_keys) base_set.insert(k);

        // CI --slo specs must name a registered signal (C3, but the spec
        // lives on the gate surface so it is parsed here).
        if (ci.ok && has_table(ccfg_.signal_table)) {
            const std::set<std::string> signals = table_set(ccfg_.signal_table);
            for (const auto& [signal, line] : facts.slo_signals) {
                if (signals.count(signal) == 0) {
                    emit("C3", ccfg_.ci_workflow, line,
                         "CI --slo objective names signal '" + signal +
                             "', which is not in " + ccfg_.signal_table);
                }
            }
        }

        std::set<std::string> consumed;
        std::set<std::string> gated_names;
        for (const GateStep& step : facts.steps) {
            const std::string key =
                step.key.empty() ? ccfg_.default_gate_key : step.key;
            if (!step.key.empty() && gate_keys.count(step.key) == 0) {
                emit("C4", ccfg_.ci_workflow, step.key_line,
                     "perf gate consumes key '" + step.key +
                         "' that is not in " + ccfg_.gate_key_table + " (" +
                         ccfg_.registry_path + ")");
            }
            consumed.insert(key);
            for (const auto& [name, line] : step.mappings) {
                gated_names.insert(name);
                // Resolve the logical bench name to its source: exact
                // match first, then with the last _suffix stripped
                // (bench_fec_gf256 -> bench_fec).
                const FileScan* bench =
                    find(ccfg_.bench_prefix + name + ".cpp");
                if (bench == nullptr) {
                    const std::size_t us = name.rfind('_');
                    if (us != std::string::npos) {
                        bench = find(ccfg_.bench_prefix +
                                     name.substr(0, us) + ".cpp");
                    }
                }
                if (bench == nullptr) {
                    if (scanned_under({ccfg_.bench_prefix})) {
                        emit("C4", ccfg_.ci_workflow, line,
                             "perf gate entry '" + name +
                                 "' does not resolve to a bench source "
                                 "under " + ccfg_.bench_prefix);
                    }
                    continue;
                }
                bool emits = false;
                for (const StringLit& lit :
                     call_literals(bench->s, "key", ".")) {
                    if (lit.text == key) emits = true;
                }
                if (!emits) {
                    emit("C4", ccfg_.ci_workflow, line,
                         "gated bench '" + bench->path +
                             "' never emits the gated key \"" + key +
                             "\": the claim gate would fail at runtime");
                }
                if (base.ok && base_set.count(name) == 0) {
                    emit("C4", ccfg_.ci_workflow, line,
                         "perf gate entry '" + name +
                             "' has no frozen floor in " + ccfg_.baselines);
                }
            }
        }

        // The default key is consumed by perf_gate's own source.
        bool perf_gate_scanned = false;
        for (const FileScan& f : scans_) {
            if (!f.read_ok || f.fully_allowlisted ||
                !path_has_prefix(f.path, {ccfg_.perf_gate_prefix})) {
                continue;
            }
            perf_gate_scanned = true;
            for (const StringLit& lit : f.s.strings) {
                if (gate_keys.count(lit.text) != 0) consumed.insert(lit.text);
            }
        }
        if (perf_gate_scanned &&
            gate_keys.count(ccfg_.default_gate_key) == 0) {
            emit("C4", ccfg_.registry_path, 0,
                 "perf_gate's default key '" + ccfg_.default_gate_key +
                     "' is not in " + ccfg_.gate_key_table);
        }

        if (ci.ok || perf_gate_scanned) {
            deadness(ccfg_.gate_key_table, consumed,
                     "no CI gate or perf_gate consumer references it");
        }
        if (ci.ok && base.ok) {
            for (const auto& [k, line] : base_keys) {
                if (!k.empty() && k[0] == '_') continue;  // annotations
                if (gated_names.count(k) == 0) {
                    emit("C5", ccfg_.baselines, line,
                         "baseline floor '" + k +
                             "' is gated by no CI perf_gate step");
                }
            }
        }
    }

    const std::string root_;
    const LintConfig& cfg_;
    const ContractConfig& ccfg_;
    const std::vector<FileScan>& scans_;
    std::vector<Diagnostic>& out_;
    std::map<std::string, const FileScan*> by_path_;
    RegistryFacts registry_;
    Stripped side_loaded_;
};

}  // namespace

// ---- public API ------------------------------------------------------------

ContractConfig default_contract_config() { return {}; }

std::vector<Diagnostic> scan_tree(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const LintConfig& cfg,
                                  const ScanOptions& opt) {
    namespace fs = std::filesystem;
    static const std::set<std::string> kExts = {
        ".cpp", ".cc", ".cxx", ".hpp", ".hxx", ".h", ".ipp"};
    std::vector<std::string> files;
    for (const std::string& p : paths) {
        const fs::path abs = fs::path(root) / p;
        if (fs::is_directory(abs)) {
            for (const auto& entry : fs::recursive_directory_iterator(abs)) {
                if (!entry.is_regular_file()) continue;
                if (kExts.count(entry.path().extension().string()) == 0) {
                    continue;
                }
                files.push_back(
                    fs::relative(entry.path(), root).generic_string());
            }
        } else {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    if (opt.visited != nullptr) *opt.visited = files;

    // Phase 1: read + strip + parse suppressions, in parallel.  Results
    // land in slot `i`, so output order never depends on thread timing.
    std::vector<internal::FileScan> scans(files.size());
    auto scan_one = [&](std::size_t i) {
        internal::FileScan& f = scans[i];
        f.path = files[i];
        f.fully_allowlisted = internal::rule_allowlisted(cfg, "*", f.path);
        std::ifstream in(fs::path(root) / f.path, std::ios::binary);
        if (!in) {
            f.read_ok = false;
            return;
        }
        if (f.fully_allowlisted) return;  // muted: skip the strip entirely
        std::ostringstream buf;
        buf << in.rdbuf();
        f.s = internal::strip(buf.str());
        f.sup = internal::parse_suppressions(f.path, f.s);
    };
    std::size_t jobs = opt.jobs;
    if (jobs == 0) {
        jobs = std::max(1u, std::thread::hardware_concurrency());
    }
    jobs = std::min(jobs, files.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < files.size(); ++i) scan_one(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) {
            workers.emplace_back([&]() {
                for (std::size_t i = next.fetch_add(1); i < files.size();
                     i = next.fetch_add(1)) {
                    scan_one(i);
                }
            });
        }
        for (std::thread& t : workers) t.join();
    }

    // Token rules, serial over the already-stripped files.
    std::vector<Diagnostic> out;
    for (const internal::FileScan& f : scans) {
        if (!f.read_ok) {
            if (!internal::rule_allowlisted(cfg, "*", f.path)) {
                out.push_back(
                    {f.path, 0, "D0", "cannot read file", Severity::kError});
            }
            continue;
        }
        if (f.fully_allowlisted || !opt.token_rules) continue;
        for (const Diagnostic& d : f.sup.malformed) {
            if (!internal::rule_allowlisted(cfg, "D0", f.path)) {
                out.push_back(d);
            }
        }
        internal::Emitter e(f.path, cfg, f.sup, out);
        internal::check_token_rules(f.path, f.s, cfg, e);
    }

    if (opt.contract_rules) {
        ContractChecker checker(root, cfg, opt.contracts, scans, out);
        checker.run();
    }

    std::sort(out.begin(), out.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.path != b.path) return a.path < b.path;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<std::string> coverage_gaps(
    const std::vector<std::string>& visited,
    const std::string& compile_commands_text, const std::string& root,
    const std::vector<std::string>& prefixes) {
    const std::set<std::string> seen(visited.begin(), visited.end());
    // compile_commands entries are usually absolute; relativize against the
    // scan root both as given and absolutized (so --root=. works).
    std::vector<std::string> roots;
    roots.push_back(
        std::filesystem::path(root).lexically_normal().generic_string());
    std::error_code ec;
    const auto abs = std::filesystem::absolute(root, ec);
    if (!ec) {
        roots.push_back(abs.lexically_normal().generic_string());
    }
    for (std::string& r : roots) {
        while (!r.empty() && r.back() == '/') r.pop_back();
    }
    std::vector<std::string> gaps;
    // compile_commands.json is machine-written: scan for `"file"` keys and
    // take the next string value.
    std::size_t pos = 0;
    const std::string& text = compile_commands_text;
    while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
        pos += 6;
        const std::size_t open = text.find('"', pos);
        if (open == std::string::npos) break;
        const std::size_t close = text.find('"', open + 1);
        if (close == std::string::npos) break;
        std::string file = text.substr(open + 1, close - open - 1);
        pos = close + 1;
        file = std::filesystem::path(file).lexically_normal().generic_string();
        for (const std::string& r : roots) {
            if (file.rfind(r + "/", 0) == 0) {
                file = file.substr(r.size() + 1);
                break;
            }
        }
        if (std::filesystem::path(file).is_absolute()) continue;  // external
        if (!internal::path_has_prefix(file, prefixes)) continue;
        if (seen.count(file) == 0) gaps.push_back(file);
    }
    std::sort(gaps.begin(), gaps.end());
    gaps.erase(std::unique(gaps.begin(), gaps.end()), gaps.end());
    return gaps;
}

}  // namespace espread::lint
