// espread_lint CLI.
//
//   espread_lint [--root=DIR] [--allowlist=FILE] [--no-default-allowlist]
//                [--list-rules] paths...
//
// Paths are files or directories relative to --root (default: the current
// directory).  Exits 0 when clean, 1 when any diagnostic fired, 2 on usage
// or I/O errors.  Diagnostics are GCC-style (`file:line: error: ... [Dnn]`)
// so CI log lines are clickable.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

bool parse_value_flag(const char* arg, const char* name, std::string* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    *out = arg + len + 1;
    return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace espread::lint;

    std::string root = ".";
    std::string allowlist_path;
    bool use_default_allowlist = true;
    bool list_rules = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (parse_value_flag(arg, "--root", &root)) {
        } else if (parse_value_flag(arg, "--allowlist", &allowlist_path)) {
        } else if (std::strcmp(arg, "--no-default-allowlist") == 0) {
            use_default_allowlist = false;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            list_rules = true;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "espread_lint: unknown flag '%s'\n", arg);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }

    if (list_rules) {
        for (const RuleInfo& r : rules()) {
            std::printf("%s  %-7s  %s\n", r.id,
                        r.severity == Severity::kError ? "error" : "warning",
                        r.summary);
        }
        return 0;
    }

    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: espread_lint [--root=DIR] [--allowlist=FILE] "
                     "[--no-default-allowlist] [--list-rules] paths...\n");
        return 2;
    }

    LintConfig cfg = default_config();
    if (allowlist_path.empty() && use_default_allowlist) {
        const auto def = std::filesystem::path(root) / "tools" /
                         "espread_lint" / "allowlist.txt";
        if (std::filesystem::exists(def)) {
            allowlist_path = def.generic_string();
        }
    }
    if (!allowlist_path.empty()) {
        std::string err;
        if (!load_allowlist_file(allowlist_path, cfg, &err)) {
            std::fprintf(stderr, "espread_lint: %s\n", err.c_str());
            return 2;
        }
    }

    const std::vector<Diagnostic> diags = lint_tree(root, paths, cfg);
    for (const Diagnostic& d : diags) {
        std::printf("%s\n", format_gcc(d).c_str());
    }
    if (!diags.empty()) {
        std::fprintf(stderr, "espread_lint: %zu finding%s\n", diags.size(),
                     diags.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
