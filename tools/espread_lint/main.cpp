// espread_lint CLI.
//
//   espread_lint [--root=DIR] [--allowlist=FILE] [--no-default-allowlist]
//                [--jobs=N] [--contracts] [--contracts-only]
//                [--registry=FILE] [--sarif=FILE] [--compile-commands=FILE]
//                [--list-rules] paths...
//
// Paths are files or directories relative to --root (default: the current
// directory).  Exits 0 when clean, 1 when any diagnostic fired, 2 on usage
// or I/O errors.  Diagnostics are GCC-style (`file:line: error: ... [Dnn]`)
// so CI log lines are clickable.
//
// --contracts adds the cross-TU contract rules C1-C5 on top of the token
// rules D0-D5; --contracts-only runs just the contract rules.  --sarif
// additionally writes a SARIF 2.1.0 report for code-scanning upload.
// --compile-commands turns on the coverage guard: any TU the build compiles
// under the scanned paths that the scan never visited is an error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "contracts.hpp"
#include "lint.hpp"

namespace {

bool parse_value_flag(const char* arg, const char* name, std::string* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
    *out = arg + len + 1;
    return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace espread::lint;

    std::string root = ".";
    std::string allowlist_path;
    std::string jobs_str;
    std::string registry;
    std::string sarif_path;
    std::string compile_commands;
    bool use_default_allowlist = true;
    bool list_rules = false;
    bool contracts = false;
    bool contracts_only = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (parse_value_flag(arg, "--root", &root)) {
        } else if (parse_value_flag(arg, "--allowlist", &allowlist_path)) {
        } else if (parse_value_flag(arg, "--jobs", &jobs_str)) {
        } else if (parse_value_flag(arg, "--registry", &registry)) {
        } else if (parse_value_flag(arg, "--sarif", &sarif_path)) {
        } else if (parse_value_flag(arg, "--compile-commands",
                                    &compile_commands)) {
        } else if (std::strcmp(arg, "--contracts") == 0) {
            contracts = true;
        } else if (std::strcmp(arg, "--contracts-only") == 0) {
            contracts = true;
            contracts_only = true;
        } else if (std::strcmp(arg, "--no-default-allowlist") == 0) {
            use_default_allowlist = false;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            list_rules = true;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "espread_lint: unknown flag '%s'\n", arg);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }

    if (list_rules) {
        for (const RuleInfo& r : rules()) {
            std::printf("%s  %-7s  %s\n", r.id,
                        r.severity == Severity::kError ? "error" : "warning",
                        r.summary);
        }
        return 0;
    }

    if (paths.empty()) {
        std::fprintf(
            stderr,
            "usage: espread_lint [--root=DIR] [--allowlist=FILE] "
            "[--no-default-allowlist] [--jobs=N] [--contracts] "
            "[--contracts-only] [--registry=FILE] [--sarif=FILE] "
            "[--compile-commands=FILE] [--list-rules] paths...\n");
        return 2;
    }

    LintConfig cfg = default_config();
    if (allowlist_path.empty() && use_default_allowlist) {
        const auto def = std::filesystem::path(root) / "tools" /
                         "espread_lint" / "allowlist.txt";
        if (std::filesystem::exists(def)) {
            allowlist_path = def.generic_string();
        }
    }
    if (!allowlist_path.empty()) {
        std::string err;
        if (!load_allowlist_file(allowlist_path, cfg, &err)) {
            std::fprintf(stderr, "espread_lint: %s\n", err.c_str());
            return 2;
        }
    }

    ScanOptions opt;
    opt.token_rules = !contracts_only;
    opt.contract_rules = contracts;
    opt.contracts = default_contract_config();
    if (!registry.empty()) opt.contracts.registry_path = registry;
    if (!jobs_str.empty()) {
        char* end = nullptr;
        const unsigned long n = std::strtoul(jobs_str.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            std::fprintf(stderr, "espread_lint: bad --jobs value '%s'\n",
                         jobs_str.c_str());
            return 2;
        }
        opt.jobs = static_cast<std::size_t>(n);
    }
    std::vector<std::string> visited;
    if (!compile_commands.empty()) opt.visited = &visited;

    const std::vector<Diagnostic> diags = scan_tree(root, paths, cfg, opt);
    for (const Diagnostic& d : diags) {
        std::printf("%s\n", format_gcc(d).c_str());
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "espread_lint: cannot write SARIF to '%s'\n",
                         sarif_path.c_str());
            return 2;
        }
        out << sarif_json(diags);
    }

    bool gaps_found = false;
    if (!compile_commands.empty()) {
        std::ifstream in(compile_commands, std::ios::binary);
        if (!in) {
            std::fprintf(stderr,
                         "espread_lint: cannot read compile commands '%s'\n",
                         compile_commands.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<std::string> prefixes;
        for (const std::string& p : paths) {
            const auto abs = std::filesystem::path(root) / p;
            prefixes.push_back(std::filesystem::is_directory(abs) ? p + "/"
                                                                  : p);
        }
        for (const std::string& gap :
             coverage_gaps(visited, buf.str(), root, prefixes)) {
            std::printf(
                "%s:1: error: TU is compiled but was not scanned by "
                "espread_lint (coverage guard) [D0]\n",
                gap.c_str());
            gaps_found = true;
        }
    }

    if (!diags.empty() || gaps_found) {
        const std::size_t n = diags.size();
        std::fprintf(stderr, "espread_lint: %zu finding%s%s\n", n,
                     n == 1 ? "" : "s",
                     gaps_found ? " (+ coverage gaps)" : "");
        return 1;
    }
    return 0;
}
