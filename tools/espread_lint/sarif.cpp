// SARIF 2.1.0 serialization of lint diagnostics, shaped for GitHub
// code-scanning upload (one run, one driver, rule metadata from rules()).
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "contracts.hpp"
#include "lint.hpp"

namespace espread::lint {

namespace {

std::string esc(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string sarif_json(const std::vector<Diagnostic>& diags) {
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
           "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [{\n"
        << "    \"tool\": {\"driver\": {\n"
        << "      \"name\": \"espread_lint\",\n"
        << "      \"informationUri\": "
           "\"https://example.invalid/espread/tools/espread_lint\",\n"
        << "      \"rules\": [\n";
    const std::vector<RuleInfo>& infos = rules();
    for (std::size_t i = 0; i < infos.size(); ++i) {
        out << "        {\"id\": \"" << esc(infos[i].id)
            << "\", \"shortDescription\": {\"text\": \""
            << esc(infos[i].summary)
            << "\"}, \"defaultConfiguration\": {\"level\": \"error\"}}"
            << (i + 1 < infos.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }},\n"
        << "    \"results\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic& d = diags[i];
        const std::size_t line = d.line == 0 ? 1 : d.line;
        out << "      {\"ruleId\": \"" << esc(d.rule)
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << esc(d.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << esc(d.path) << "\"}, \"region\": {\"startLine\": " << line
            << "}}}]}" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    out << "    ]\n"
        << "  }]\n"
        << "}\n";
    return out.str();
}

}  // namespace espread::lint
