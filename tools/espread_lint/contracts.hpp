// Cross-TU contract rules C1-C5: a two-phase extract-then-check analyzer
// over the whole tree.
//
// Phase 1 (parallel): every C++ source is read, stripped, and mined for
// contract facts — `.split(<arg>)` call sites, WireType enumerators,
// registry constant/table declarations, metric/JSON-key/trace/SLO name
// literals at their producing and consuming call sites.
//
// Phase 2 (serial): the facts are checked against the contract registry
// (src/sim/contracts.hpp) plus the external gate surfaces (the CI
// workflow, the frozen bench baselines):
//
//   C1  RNG split lanes: no magic `.split(<int>)` in src/ or bench/; every
//       lane ident resolves to a registry k<Family>Lane<Name> constant
//       used inside that family's path scope; no value collision within a
//       family; lanes are declared only in the registry.
//   C2  Wire tags: every WireType enumerator takes its value from a
//       registry kWireTag<Name> constant (no magic tag bytes, no
//       duplicate values); each tag has a canonical decode_<name> in the
//       codec TU and appears in at least one fuzz-corpus harness.
//   C3  Names: metric literals registered in src/ come from the registry
//       tables; the engine summary and telemetry series writers emit only
//       registered keys; the report tool consumes a subset of the series
//       keys; SLO signal/health, governor state, trace event/actor and
//       Prometheus exposition names match their tables; CI --slo specs
//       name a registered signal.
//   C4  Bench claim gates: every key CI's perf_gate steps consume
//       (--key=... or the default) is registered, emitted by the gated
//       bench, and frozen in bench/baselines.
//   C5  Dead registry entries: lanes never split, tags never referenced,
//       names never produced, gate keys never consumed, baseline keys
//       never gated.
//
// Suppressions (`// espread-lint: allow(C1) reason`) and the allowlist
// work exactly as for the token rules; `* <glob>` allowlist entries also
// exclude a file from fact extraction (so test fixtures never pollute the
// real scan).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.hpp"

namespace espread::lint {

/// Where the contracts live and which paths each check scopes to.  The
/// defaults encode this repo's layout; fixture tests override root-relative
/// paths only implicitly by laying out the same shape under a fixture root.
struct ContractConfig {
    /// The registry header, repo-root relative.
    std::string registry_path = "src/sim/contracts.hpp";

    /// One entry per lane family `k<Family>Lane<Name>`: the path prefixes
    /// inside which that family's lanes may be split.
    struct LaneFamily {
        std::string family;
        std::vector<std::string> prefixes;
    };
    std::vector<LaneFamily> lane_families = {
        {"Session", {"src/protocol/"}},
        {"Engine", {"src/engine/"}},
        {"Analysis", {"src/analysis/", "bench/"}},
    };
    /// Paths where `.split(<integer>)` is a C1 error and idents must
    /// resolve to registry lanes.
    std::vector<std::string> lane_literal_paths = {"src/", "bench/"};

    /// Wire-format surfaces (C2).
    std::string wire_enum = "WireType";
    std::string codec_header = "src/protocol/codec.hpp";
    std::string codec_impl = "src/protocol/codec.cpp";
    /// Files that must collectively give every tag structure-aware fuzz
    /// coverage (each tag's decode_<name> must appear in at least one).
    std::vector<std::string> fuzz_corpus = {
        "tests/test_codec_fuzz.cpp",
        "tests/fuzz_codec.cpp",
        "tests/test_fec_fuzz.cpp",
        "tests/fuzz_fec.cpp",
    };

    /// Name surfaces (C3).
    std::vector<std::string> metric_producer_paths = {"src/"};
    std::string engine_summary_writer = "src/engine/engine.cpp";
    std::string telemetry_writer = "src/obs/telemetry/snapshot.cpp";
    std::string slo_impl = "src/obs/telemetry/slo.cpp";
    std::string trace_impl = "src/obs/trace.cpp";
    std::string report_tool_prefix = "tools/espread_report/";
    /// Identifiers that declare a governor state-name table.
    std::vector<std::string> state_table_tokens = {"kStateNames", "kStates"};

    /// Bench claim-gate surfaces (C4).  External (non-C++) files are read
    /// directly from the scan root; a check skips when its file is absent.
    std::string ci_workflow = ".github/workflows/ci.yml";
    std::string baselines = "bench/baselines/BENCH_baseline.json";
    std::string perf_gate_prefix = "tools/perf_gate/";
    std::string bench_prefix = "bench/";
    std::string default_gate_key = "windows_per_second";

    /// Registry table variable names.
    std::string session_metric_table = "kSessionMetricNames";
    std::string engine_metric_table = "kEngineMetricNames";
    std::string engine_summary_table = "kEngineSummaryKeys";
    std::string telemetry_series_table = "kTelemetrySeriesKeys";
    std::string signal_table = "kTelemetrySignalNames";
    std::string slo_health_table = "kSloHealthNames";
    std::string governor_state_table = "kGovernorStateNames";
    std::string trace_event_table = "kTraceEventNames";
    std::string trace_actor_table = "kTraceActorNames";
    std::string gate_key_table = "kBenchGateKeys";
};

/// The repo's contract configuration (all defaults above).
ContractConfig default_contract_config();

/// One scan over the tree: which rule groups run, how many worker threads
/// phase 1 uses, and (optionally) which files were visited — the input to
/// the compile_commands coverage guard.
struct ScanOptions {
    bool token_rules = true;
    bool contract_rules = false;
    /// Phase-1 worker threads; 0 means one per hardware thread.  Output is
    /// byte-identical for every job count.
    std::size_t jobs = 1;
    ContractConfig contracts;
    /// When non-null, filled with the root-relative path of every file the
    /// scan visited (sorted, deduplicated).
    std::vector<std::string>* visited = nullptr;
};

/// Walks `paths` (files or directories, relative to `root`), scans every
/// C++ source once, and runs the selected rule groups.  Diagnostics are
/// sorted by (path, line, rule) and deterministic across job counts.
std::vector<Diagnostic> scan_tree(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const LintConfig& cfg,
                                  const ScanOptions& opt);

/// Coverage guard: returns the root-relative TUs listed in a
/// compile_commands.json (given as its text) that fall under `prefixes`
/// but were never visited by the scan.  Empty result == full coverage.
std::vector<std::string> coverage_gaps(
    const std::vector<std::string>& visited,
    const std::string& compile_commands_text, const std::string& root,
    const std::vector<std::string>& prefixes);

/// SARIF 2.1.0 document for GitHub code-scanning upload.
std::string sarif_json(const std::vector<Diagnostic>& diags);

}  // namespace espread::lint
