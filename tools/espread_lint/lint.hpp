// espread_lint — a determinism-contract static analyzer.
//
// Every figure in EXPERIMENTS.md depends on one invariant the compiler
// cannot see: simulations are seed-pure and byte-identical across thread
// counts (DESIGN.md §6-§8).  The golden tests defend that contract at
// runtime; this tool defends it at review time, as a token-level scanner
// over the source tree (no libclang, builds with the tier-1 toolchain).
//
// Rules (see DESIGN.md §9 for the full table):
//   D0  malformed suppression (missing reason string or unknown rule id)
//   D1  nondeterministic entropy/time source (std::random_device, rand(),
//       srand(), clock(), time(nullptr/NULL/0), *_clock::now()) outside
//       the allowlist (src/sim/rng.*, bench timing blocks)
//   D2  std::unordered_map / std::unordered_set in result-producing code
//       (src/exp, src/obs, src/protocol/report*) where hash order would
//       leak into merged or serialized output
//   D3  `default:` label in a switch over a contract enum (obs::EventType,
//       obs::Actor, proto::GovernorState, proto::AckRejectReason,
//       proto::WireType, proto::Scheme, media::FrameType) — a default
//       silently swallows new enumerators instead of forcing each switch
//       to handle them
//   D4  direct trace-sink call (`x->record(...)`) without a null-gate on
//       the same pointer within the preceding lines — emission sites must
//       stay zero-cost when observability is off
//   D5  ownership / include hygiene in library targets (src/): no raw
//       `new`/`delete` expressions, no `<iostream>`
//
// The cross-TU contract rules C1-C5 (RNG lanes, wire tags, metric/trace/SLO
// names, bench claim-gate keys, dead registry entries) live in
// contracts.hpp; both rule groups run under the same scan_tree pass.
//
// Suppression syntax (line comments only):
//   some_code();  // espread-lint: allow(D1) reason the exception is sound
// A suppression with no reason string does not take effect and is itself
// flagged as D0.  A comment-only suppression line applies to the next line
// that contains code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace espread::lint {

enum class Severity { kWarning, kError };

/// One finding.  `path` is the path the file was linted under (repo-root
/// relative when invoked via lint_tree / the CLI), `line` is 1-based.
struct Diagnostic {
    std::string path;
    std::size_t line = 0;
    std::string rule;
    std::string message;
    Severity severity = Severity::kError;
};

/// Static description of one rule, for --list-rules and the docs table.
struct RuleInfo {
    const char* id;
    Severity severity;
    const char* summary;
};

/// All rules the scanner knows, D0 first.
const std::vector<RuleInfo>& rules();

/// True if `id` names a known rule ("D0".."D5", "C1".."C5").
bool known_rule(const std::string& id);

/// One allowlist entry: files matching `glob` are exempt from rule `rule`
/// ("*" exempts the file from every rule, including D0).
struct AllowEntry {
    std::string rule;
    std::string glob;
};

/// Data-driven rule configuration.  default_config() encodes the repo's
/// contract; tests construct narrower configs.
struct LintConfig {
    std::vector<AllowEntry> allowlist;
    /// Unqualified enum type names whose switches must be exhaustive; a
    /// switch is "over" one of these when any case label mentions
    /// `<Name>::`.  Adding a contract enum is one line here.
    std::vector<std::string> contract_enums;
    /// Path prefixes where hash-ordered containers are forbidden (D2).
    std::vector<std::string> ordered_output_paths;
    /// Path prefixes treated as library targets for D5.
    std::vector<std::string> library_paths;
    /// How many preceding lines D4 searches for a null-gate.
    std::size_t gate_window = 12;
};

/// The repo's rule configuration (without any allowlist entries).
LintConfig default_config();

/// Parses an allowlist file into cfg.allowlist.  Lines are
/// `<rule-id|*> <glob>` with `#` comments.  Returns false and sets *err on
/// a malformed line or unknown rule id.
bool load_allowlist_file(const std::string& path, LintConfig& cfg,
                         std::string* err);

/// fnmatch-style: `*` and `?` match within one path segment (never '/');
/// `**` matches any run of characters including '/'.
bool glob_match(const std::string& pattern, const std::string& path);

/// Lints one in-memory source.  `path` is used for diagnostics and for
/// allowlist / path-scoped rule matching.
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content,
                                    const LintConfig& cfg);

/// Lints one file on disk, reported under `report_path`.
std::vector<Diagnostic> lint_file(const std::string& fs_path,
                                  const std::string& report_path,
                                  const LintConfig& cfg);

/// Walks `paths` (files or directories, relative to `root`) and lints
/// every C++ source (.cpp .cc .cxx .hpp .hxx .h .ipp), reporting paths
/// relative to `root`.  Deterministic: directory entries are visited in
/// sorted order.
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const LintConfig& cfg);

/// `path:line: error: message [D1]` — clickable in editors and CI logs.
std::string format_gcc(const Diagnostic& d);

}  // namespace espread::lint
