// perf_gate: CI guard on the repo's performance trajectory.
//
// Compares the windows_per_second of freshly produced BENCH_*.json files
// against the checked-in floor baselines in
// bench/baselines/BENCH_baseline.json and exits nonzero when any bench
// regresses more than the tolerance below its floor:
//
//   perf_gate --baseline=bench/baselines/BENCH_baseline.json
//             [--tolerance=0.10] [--key=windows_per_second]
//             bench_outage=BENCH_outage.json bench_scale=BENCH_scale.json
//
// The baseline file maps bench name -> floor value.  Floors are set well
// below locally measured throughput (shared CI runners are noisy); the
// gate catches trajectory-level regressions — an accidental O(n^2), a
// dropped fast path — not single-digit jitter.  Improvements never fail
// the gate; raise the floors when a speedup lands to lock it in.
//
// JSON handling is deliberately minimal: both the baseline and the bench
// artifacts are scanned for top-level (depth-1) "name": number pairs,
// which is exactly how every espread bench emits its headline metric.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::optional<std::string> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Top-level "key": value pairs of one JSON object, numbers only.
/// Nested objects/arrays are skipped wholesale; string values and other
/// non-numeric scalars are ignored.
std::map<std::string, double> top_level_numbers(const std::string& text) {
    std::map<std::string, double> out;
    std::size_t i = 0;
    const std::size_t n = text.size();
    int depth = 0;
    std::string key;
    while (i < n) {
        const char c = text[i];
        if (c == '"') {
            std::string s;
            ++i;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < n) ++i;
                s.push_back(text[i]);
                ++i;
            }
            ++i;  // closing quote
            // A string at depth 1 followed by ':' is a key.
            std::size_t j = i;
            while (j < n && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
            if (depth == 1 && j < n && text[j] == ':') {
                key = s;
                i = j + 1;
            }
            continue;
        }
        if (c == '{' || c == '[') {
            ++depth;
            ++i;
            continue;
        }
        if (c == '}' || c == ']') {
            --depth;
            ++i;
            continue;
        }
        if (depth == 1 && !key.empty() &&
            (c == '-' || std::isdigit(static_cast<unsigned char>(c)))) {
            char* end = nullptr;
            const double v = std::strtod(text.c_str() + i, &end);
            if (end != text.c_str() + i) {
                out[key] = v;
                key.clear();
                i = static_cast<std::size_t>(end - text.c_str());
                continue;
            }
        }
        if (c == ',') key.clear();
        ++i;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string baseline_path;
    std::string metric_key = "windows_per_second";
    double tolerance = 0.10;
    std::vector<std::pair<std::string, std::string>> checks;  // name -> file

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--baseline=", 11) == 0) {
            baseline_path = arg + 11;
        } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
            tolerance = std::strtod(arg + 12, nullptr);
        } else if (std::strncmp(arg, "--key=", 6) == 0) {
            metric_key = arg + 6;
        } else {
            const char* eq = std::strchr(arg, '=');
            if (eq == nullptr) {
                std::fprintf(stderr, "perf_gate: expected name=file, got %s\n", arg);
                return EXIT_FAILURE;
            }
            checks.emplace_back(std::string(arg, eq), std::string(eq + 1));
        }
    }
    if (baseline_path.empty() || checks.empty()) {
        std::fprintf(stderr,
                     "usage: perf_gate --baseline=FILE [--tolerance=0.10] "
                     "[--key=windows_per_second] name=current.json...\n");
        return EXIT_FAILURE;
    }

    const auto baseline_text = read_file(baseline_path);
    if (!baseline_text) {
        std::fprintf(stderr, "perf_gate: cannot read baseline %s\n",
                     baseline_path.c_str());
        return EXIT_FAILURE;
    }
    const auto floors = top_level_numbers(*baseline_text);

    bool failed = false;
    for (const auto& [name, file] : checks) {
        const auto it = floors.find(name);
        if (it == floors.end()) {
            std::fprintf(stderr, "perf_gate: no baseline entry for %s in %s\n",
                         name.c_str(), baseline_path.c_str());
            failed = true;
            continue;
        }
        const auto text = read_file(file);
        if (!text) {
            std::fprintf(stderr, "perf_gate: cannot read %s (%s)\n",
                         file.c_str(), name.c_str());
            failed = true;
            continue;
        }
        const auto values = top_level_numbers(*text);
        const auto vit = values.find(metric_key);
        if (vit == values.end()) {
            std::fprintf(stderr, "perf_gate: %s has no top-level \"%s\"\n",
                         file.c_str(), metric_key.c_str());
            failed = true;
            continue;
        }
        const double floor = it->second;
        const double current = vit->second;
        const double limit = floor * (1.0 - tolerance);
        const bool ok = current >= limit;
        std::printf("%-18s %s: %12.0f vs floor %12.0f (limit %12.0f) %s\n",
                    name.c_str(), metric_key.c_str(), current, floor, limit,
                    ok ? "ok" : "REGRESSION");
        if (!ok) failed = true;
    }
    return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
