// espread_report CLI — renders a fleet telemetry snapshot series
// (TELEMETRY_*.json, written by obs::telemetry::write_snapshot_series)
// as a terminal report and replays the SLO evaluator over it.
//
//   espread_report <series.json>
//                  [--slo name,signal,threshold[,quantile[,fast,slow
//                                        [,fast_burn,slow_burn]]]]...
//                  [--prometheus] [--max-rows N]
//
// Exits 0 when every objective stayed healthy, 2 when any objective
// breached its burn-rate budget (the CI gate), 1 on usage or parse
// errors.  All logic lives in report.cpp so tests drive it in-process.
#include <cstdio>
#include <string>
#include <vector>

#include "report.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

    std::string out;
    const int rc = espread::report::run_report_cli(args, out);
    std::fputs(out.c_str(), rc == 0 || rc == 2 ? stdout : stderr);
    return rc;
}
