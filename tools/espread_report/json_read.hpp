// Minimal JSON reader for the fleet-report tool.
//
// The repo's exp::JsonWriter only emits; this is its read-side
// counterpart, sized for the snapshot-series documents
// obs::telemetry::write_snapshot_series produces: objects, arrays,
// numbers, strings, booleans and null, parsed into a small DOM with
// deterministic (sorted) object iteration.  Not a general-purpose
// parser: no \u escapes beyond ASCII, numbers round-trip through
// double (exact for the counters' magnitudes), duplicate keys keep the
// last value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace espread::report {

class JsonValue {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool is_object() const noexcept { return type == Type::kObject; }
    bool is_array() const noexcept { return type == Type::kArray; }
    bool is_number() const noexcept { return type == Type::kNumber; }
    bool is_string() const noexcept { return type == Type::kString; }

    /// Number as an unsigned integer (0 for non-numbers / negatives).
    std::uint64_t as_u64() const noexcept {
        if (type != Type::kNumber || number < 0.0) return 0;
        return static_cast<std::uint64_t>(number);
    }

    /// Member lookup; returns null-typed sentinel for missing keys or
    /// non-objects.
    const JsonValue& at(const std::string& key) const noexcept;
};

/// Parses one JSON document.  Returns false (with *error set, when
/// non-null) on malformed input or trailing garbage.
bool parse_json(const std::string& text, JsonValue& out, std::string* error);

}  // namespace espread::report
