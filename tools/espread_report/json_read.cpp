#include "json_read.hpp"

#include <cctype>
#include <cstdlib>

namespace espread::report {
namespace {

const JsonValue kNullValue{};

/// Recursive-descent parser over [pos, text.size()).  Depth-bounded so a
/// hostile file cannot blow the stack.
class Parser {
public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error) {}

    bool parse(JsonValue& out) {
        if (!parse_value(out, 0)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing characters");
        return true;
    }

private:
    static constexpr std::size_t kMaxDepth = 64;

    bool fail(const char* what) {
        if (error_ != nullptr) {
            *error_ = std::string(what) + " at byte " + std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char* word) {
        for (const char* p = word; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                return fail("bad literal");
            }
        }
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) return fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'n': out.push_back('\n'); break;
                    case 't': out.push_back('\t'); break;
                    case 'r': out.push_back('\r'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    default: return fail("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
        if (pos_ >= text_.size()) return fail("unterminated string");
        ++pos_;  // closing quote
        return true;
    }

    bool parse_value(JsonValue& out, std::size_t depth) {
        if (depth > kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (pos_ >= text_.size()) return fail("unexpected end");
        const char c = text_[pos_];
        if (c == '{') {
            out.type = JsonValue::Type::kObject;
            ++pos_;
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skip_ws();
                if (pos_ >= text_.size() || text_[pos_] != '"') {
                    return fail("expected object key");
                }
                std::string key;
                if (!parse_string(key)) return false;
                skip_ws();
                if (pos_ >= text_.size() || text_[pos_] != ':') {
                    return fail("expected ':'");
                }
                ++pos_;
                JsonValue member;
                if (!parse_value(member, depth + 1)) return false;
                out.object[key] = std::move(member);
                skip_ws();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            out.type = JsonValue::Type::kArray;
            ++pos_;
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!parse_value(element, depth + 1)) return false;
                out.array.push_back(std::move(element));
                skip_ws();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::kString;
            return parse_string(out.string);
        }
        if (c == 't') {
            out.type = JsonValue::Type::kBool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.type = JsonValue::Type::kBool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.type = JsonValue::Type::kNull;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (text_[pos_] == '-' || text_[pos_] == '+' ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' ||
                    (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
                ++pos_;
            }
            const std::string token = text_.substr(start, pos_ - start);
            char* end = nullptr;
            out.type = JsonValue::Type::kNumber;
            out.number = std::strtod(token.c_str(), &end);
            if (end == nullptr || *end != '\0') return fail("bad number");
            return true;
        }
        return fail("unexpected character");
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const noexcept {
    if (type != Type::kObject) return kNullValue;
    const auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
}

bool parse_json(const std::string& text, JsonValue& out, std::string* error) {
    out = JsonValue{};
    Parser p(text, error);
    return p.parse(out);
}

}  // namespace espread::report
