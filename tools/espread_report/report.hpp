// Fleet report renderer: turns a snapshot-series JSON file (written by
// obs::telemetry::write_snapshot_series) back into FleetSnapshots,
// replays the SLO evaluator over them, and renders a terminal report —
// totals, a per-epoch delta table, sparklines, and per-objective
// burn-rate health.  The library is the whole tool; main.cpp only reads
// the file and forwards argv, so tests drive render_report in-process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry/slo.hpp"
#include "obs/telemetry/snapshot.hpp"

namespace espread::report {

/// A snapshot series reconstructed from its JSON document.
struct LoadedSeries {
    std::size_t epoch_steps = 0;
    std::vector<obs::telemetry::FleetSnapshot> snapshots;
};

/// Parses a series document ({"format":1,...}).  Returns false (with
/// *error set when non-null) on malformed JSON, wrong format version, or
/// missing fields.  Histograms are restored bucket-for-bucket, so a
/// loaded snapshot compares equal (operator==) to the one that was
/// serialized.
bool load_series(const std::string& json_text, LoadedSeries& out,
                 std::string* error);

/// Parses one --slo spec:
///   name,signal,threshold[,quantile[,fast_window,slow_window
///                                   [,fast_burn,slow_burn]]]
/// e.g. "clf_tail,clf,2,0.99,4,64,14,6".  Unspecified fields keep the
/// SloObjective defaults.  Returns false with *error on bad specs.
bool parse_objective_spec(const std::string& spec,
                          obs::telemetry::SloObjective& out,
                          std::string* error);

/// The objective applied when the caller names none: per-epoch p99
/// playout CLF stays <= 2 (the paper's perceptual "spread thin" target).
obs::telemetry::SloObjective default_objective();

struct ReportOptions {
    /// Objectives to evaluate; empty means {default_objective()}.
    std::vector<obs::telemetry::SloObjective> objectives;
    /// Append Prometheus text exposition of the final snapshot.
    bool prometheus = false;
    /// Per-epoch table row budget; longer series are stride-sampled.
    std::size_t max_rows = 48;
};

struct ReportResult {
    std::string text;       ///< rendered report (always, even on breach)
    bool breached = false;  ///< any objective ever reached kBreached
};

/// Renders the report for one series document.  Returns false (with
/// *error) on malformed input; `out.text` is still the partial header in
/// that case.
bool render_report(const std::string& json_text, const ReportOptions& opt,
                   ReportResult& out, std::string* error);

/// Unicode block sparkline of `values` scaled to the series maximum
/// (all-zero input renders the floor glyph).  Exposed for tests.
std::string sparkline(const std::vector<std::uint64_t>& values);

/// CLI entry (exposed so tests can exercise exit codes in-process):
///   espread_report <series.json> [--slo spec]... [--prometheus]
///                  [--max-rows N]
/// Returns 0 on healthy series, 1 on usage/parse errors, 2 when any SLO
/// objective breached.  Output is appended to `out`.
int run_report_cli(const std::vector<std::string>& args, std::string& out);

}  // namespace espread::report
