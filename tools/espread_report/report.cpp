#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "json_read.hpp"

namespace espread::report {

namespace {

using obs::telemetry::FleetSnapshot;
using obs::telemetry::QuantileHistogram;
using obs::telemetry::SloEvaluator;
using obs::telemetry::SloHealth;
using obs::telemetry::SloObjective;
using obs::telemetry::SloStatus;
using obs::telemetry::SloTransition;
using obs::telemetry::TelemetryCounters;

bool set_error(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
}

bool load_counters(const JsonValue& v, TelemetryCounters& c,
                   std::string* error) {
    if (!v.is_object()) return set_error(error, "counters: expected object");
    c.windows = v.at("windows").as_u64();
    c.unit_losses = v.at("unit_losses").as_u64();
    c.loss_windows = v.at("loss_windows").as_u64();
    c.idle_windows = v.at("idle_windows").as_u64();
    c.acks_delivered = v.at("acks_delivered").as_u64();
    c.acks_lost = v.at("acks_lost").as_u64();
    c.sessions_spawned = v.at("sessions_spawned").as_u64();
    c.sessions_completed = v.at("sessions_completed").as_u64();
    const JsonValue& gov = v.at("governor_windows");
    if (!gov.is_array() || gov.array.size() != 4) {
        return set_error(error, "counters: governor_windows must have 4 entries");
    }
    for (std::size_t s = 0; s < 4; ++s) {
        c.governor_windows[s] = gov.array[s].as_u64();
    }
    return true;
}

bool load_histogram(const JsonValue& v, QuantileHistogram& h,
                    std::string* error) {
    if (!v.is_object()) return set_error(error, "histogram: expected object");
    const JsonValue& buckets = v.at("buckets");
    if (!buckets.is_array()) {
        return set_error(error, "histogram: missing buckets array");
    }
    for (const JsonValue& pair : buckets.array) {
        if (!pair.is_array() || pair.array.size() != 2) {
            return set_error(error, "histogram: bucket entry must be [index, count]");
        }
        h.restore_bucket(static_cast<std::size_t>(pair.array[0].as_u64()),
                         pair.array[1].as_u64());
    }
    if (h.total() != v.at("total").as_u64()) {
        return set_error(error, "histogram: bucket counts disagree with total");
    }
    return true;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string fmt_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

std::string fmt_compact(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::string pad_left(std::string s, std::size_t width) {
    if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
    return s;
}

std::string pad_right(std::string s, std::size_t width) {
    if (s.size() < width) s.append(width - s.size(), ' ');
    return s;
}

const char* health_tag(SloHealth h) {
    switch (h) {
        case SloHealth::kOk: return "[ok]      ";
        case SloHealth::kBurning: return "[burning] ";
        case SloHealth::kBreached: return "[BREACHED]";
    }
    return "[?]       ";  // unreachable; keeps -Wreturn-type quiet
}

/// Parses a non-negative number field; false on garbage or trailing text.
bool parse_number(const std::string& field, double& out) {
    if (field.empty()) return false;
    char* end = nullptr;
    out = std::strtod(field.c_str(), &end);
    return end != nullptr && *end == '\0' && out >= 0.0;
}

void append_slo_line(std::string& out, const SloObjective& o,
                     const SloStatus& st) {
    out += "  ";
    out += health_tag(st.health);
    out += " " + pad_right(o.name, 16) + " " +
           obs::telemetry::slo_signal_name(o.signal) + " p" +
           fmt_compact(o.quantile) + " <= " + fmt_u64(o.threshold) +
           "  burn fast " + fmt_double(st.fast_burn) + "/" +
           fmt_compact(o.fast_burn) + " (" + fmt_u64(o.fast_window) +
           "ep), slow " + fmt_double(st.slow_burn) + "/" +
           fmt_compact(o.slow_burn) + " (" + fmt_u64(o.slow_window) +
           "ep)\n";
}

}  // namespace

bool load_series(const std::string& json_text, LoadedSeries& out,
                 std::string* error) {
    out = LoadedSeries{};
    JsonValue doc;
    if (!parse_json(json_text, doc, error)) return false;
    if (!doc.is_object()) return set_error(error, "series: expected object");
    if (doc.at("format").as_u64() != 1) {
        return set_error(error, "series: unsupported format version");
    }
    out.epoch_steps = static_cast<std::size_t>(doc.at("epoch_steps").as_u64());
    if (out.epoch_steps == 0) {
        return set_error(error, "series: epoch_steps must be >= 1");
    }
    const JsonValue& snaps = doc.at("snapshots");
    if (!snaps.is_array()) {
        return set_error(error, "series: missing snapshots array");
    }
    if (doc.at("epochs").as_u64() != snaps.array.size()) {
        return set_error(error, "series: epochs count disagrees with array");
    }
    out.snapshots.reserve(snaps.array.size());
    for (const JsonValue& sv : snaps.array) {
        FleetSnapshot s;
        s.epoch = sv.at("epoch").as_u64();
        s.step = sv.at("step").as_u64();
        if (!load_counters(sv.at("totals"), s.totals, error) ||
            !load_counters(sv.at("delta"), s.delta, error) ||
            !load_histogram(sv.at("clf"), s.clf, error) ||
            !load_histogram(sv.at("loss_run"), s.loss_run, error) ||
            !load_histogram(sv.at("bound"), s.bound, error) ||
            !load_histogram(sv.at("governor_dwell"), s.governor_dwell, error) ||
            !load_histogram(sv.at("clf_delta"), s.clf_delta, error) ||
            !load_histogram(sv.at("loss_run_delta"), s.loss_run_delta, error) ||
            !load_histogram(sv.at("bound_delta"), s.bound_delta, error) ||
            !load_histogram(sv.at("governor_dwell_delta"),
                            s.governor_dwell_delta, error)) {
            return false;
        }
        out.snapshots.push_back(std::move(s));
    }
    return true;
}

SloObjective default_objective() {
    SloObjective o;
    o.name = "clf_tail";
    o.signal = obs::telemetry::SloSignal::kClf;
    o.threshold = 2;
    o.quantile = 0.99;
    return o;
}

bool parse_objective_spec(const std::string& spec, SloObjective& out,
                          std::string* error) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = spec.find(',', start);
        fields.push_back(spec.substr(start, comma - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    // name,signal,threshold[,quantile[,fast,slow[,fast_burn,slow_burn]]]
    if (fields.size() != 3 && fields.size() != 4 && fields.size() != 6 &&
        fields.size() != 8) {
        return set_error(error,
                         "--slo: expected "
                         "name,signal,threshold[,quantile[,fast,slow"
                         "[,fast_burn,slow_burn]]]");
    }
    SloObjective o;
    o.name = fields[0];
    if (o.name.empty()) return set_error(error, "--slo: empty name");
    if (!obs::telemetry::parse_slo_signal(fields[1], o.signal)) {
        return set_error(error, "--slo: unknown signal '" + fields[1] + "'");
    }
    double num = 0.0;
    if (!parse_number(fields[2], num)) {
        return set_error(error, "--slo: bad threshold '" + fields[2] + "'");
    }
    o.threshold = static_cast<std::uint64_t>(num);
    if (fields.size() >= 4) {
        if (!parse_number(fields[3], o.quantile)) {
            return set_error(error, "--slo: bad quantile '" + fields[3] + "'");
        }
    }
    if (fields.size() >= 6) {
        double fast = 0.0;
        double slow = 0.0;
        if (!parse_number(fields[4], fast) || !parse_number(fields[5], slow)) {
            return set_error(error, "--slo: bad burn windows");
        }
        o.fast_window = static_cast<std::size_t>(fast);
        o.slow_window = static_cast<std::size_t>(slow);
    }
    if (fields.size() == 8) {
        if (!parse_number(fields[6], o.fast_burn) ||
            !parse_number(fields[7], o.slow_burn)) {
            return set_error(error, "--slo: bad burn thresholds");
        }
    }
    try {
        o.validate();
    } catch (const std::invalid_argument& e) {
        return set_error(error, std::string("--slo: ") + e.what());
    }
    out = std::move(o);
    return true;
}

std::string sparkline(const std::vector<std::uint64_t>& values) {
    static const char* const kBlocks[8] = {
        "▁", "▂", "▃", "▄",
        "▅", "▆", "▇", "█"};
    std::uint64_t max = 0;
    for (const std::uint64_t v : values) max = std::max(max, v);
    std::string out;
    for (const std::uint64_t v : values) {
        const std::size_t level =
            max == 0 ? 0 : static_cast<std::size_t>((v * 7) / max);
        out += kBlocks[level];
    }
    return out;
}

bool render_report(const std::string& json_text, const ReportOptions& opt,
                   ReportResult& out, std::string* error) {
    out = ReportResult{};
    out.text += "espread fleet report\n";

    LoadedSeries series;
    if (!load_series(json_text, series, error)) return false;

    const std::size_t n = series.snapshots.size();
    out.text += "  series: " + fmt_u64(n) + " epochs x " +
                fmt_u64(series.epoch_steps) + " steps/epoch\n";
    if (n == 0) {
        out.text += "  (empty series: no epochs captured)\n";
        return true;
    }

    const FleetSnapshot& last = series.snapshots.back();
    const TelemetryCounters& t = last.totals;
    out.text += "\ntotals (through step " + fmt_u64(last.step) + ")\n";
    out.text += "  windows " + fmt_u64(t.windows) + " (loss windows " +
                fmt_u64(t.loss_windows) + ", idle " +
                fmt_u64(t.idle_windows) + ")\n";
    const double loss_rate =
        t.windows == 0
            ? 0.0
            : 100.0 * static_cast<double>(t.loss_windows) /
                  static_cast<double>(t.windows);
    out.text += "  unit losses " + fmt_u64(t.unit_losses) +
                " (loss-window rate " + fmt_double(loss_rate) + "%)\n";
    out.text += "  acks " + fmt_u64(t.acks_delivered) + " delivered / " +
                fmt_u64(t.acks_lost) + " lost\n";
    out.text += "  sessions " + fmt_u64(t.sessions_spawned) + " respawned / " +
                fmt_u64(t.sessions_completed) + " completed\n";
    out.text += "  playout CLF p50 " + fmt_u64(last.clf.quantile(0.50)) +
                ", p99 " + fmt_u64(last.clf.quantile(0.99)) + ", p999 " +
                fmt_u64(last.clf.quantile(0.999)) + ", max " +
                fmt_u64(last.clf.max_bucket_value()) + "\n";
    const std::uint64_t gov_total = t.governor_windows[0] +
                                    t.governor_windows[1] +
                                    t.governor_windows[2] +
                                    t.governor_windows[3];
    if (gov_total > 0) {
        static const char* const kStates[4] = {"normal", "degraded",
                                               "fallback", "recovering"};
        out.text += "  governor occupancy";
        for (std::size_t s = 0; s < 4; ++s) {
            const double pct = 100.0 *
                               static_cast<double>(t.governor_windows[s]) /
                               static_cast<double>(gov_total);
            out.text += std::string(" ") + kStates[s] + " " +
                        fmt_double(pct) + "%";
        }
        out.text += "\n";
    }

    // Per-epoch delta table, stride-sampled to the row budget (the last
    // epoch is always shown).
    const std::size_t max_rows = std::max<std::size_t>(opt.max_rows, 1);
    const std::size_t stride = (n + max_rows - 1) / max_rows;
    out.text += "\nper-epoch deltas";
    if (stride > 1) out.text += " (every " + fmt_u64(stride) + ")";
    out.text += "\n  epoch     step  windows   losses  loss_w  clf_p50  "
                "clf_p99  bound_p99\n";
    const auto append_row = [&out](const FleetSnapshot& s) {
        out.text += "  " + pad_left(fmt_u64(s.epoch), 5) +
                    pad_left(fmt_u64(s.step), 9) +
                    pad_left(fmt_u64(s.delta.windows), 9) +
                    pad_left(fmt_u64(s.delta.unit_losses), 9) +
                    pad_left(fmt_u64(s.delta.loss_windows), 8) +
                    pad_left(fmt_u64(s.clf_delta.quantile(0.50)), 9) +
                    pad_left(fmt_u64(s.clf_delta.quantile(0.99)), 9) +
                    pad_left(fmt_u64(s.bound_delta.quantile(0.99)), 11) + "\n";
    };
    for (std::size_t i = 0; i < n; i += stride) {
        append_row(series.snapshots[i]);
    }
    if ((n - 1) % stride != 0) append_row(series.snapshots[n - 1]);

    std::vector<std::uint64_t> windows_series;
    std::vector<std::uint64_t> losses_series;
    std::vector<std::uint64_t> clf_p99_series;
    windows_series.reserve(n);
    losses_series.reserve(n);
    clf_p99_series.reserve(n);
    for (const FleetSnapshot& s : series.snapshots) {
        windows_series.push_back(s.delta.windows);
        losses_series.push_back(s.delta.unit_losses);
        clf_p99_series.push_back(s.clf_delta.quantile(0.99));
    }
    out.text += "\nper-epoch sparklines\n";
    out.text += "  windows  " + sparkline(windows_series) + "\n";
    out.text += "  losses   " + sparkline(losses_series) + "\n";
    out.text += "  clf p99  " + sparkline(clf_p99_series) + "\n";

    std::vector<SloObjective> objectives = opt.objectives;
    if (objectives.empty()) objectives.push_back(default_objective());
    try {
        SloEvaluator evaluator(objectives);
        for (const FleetSnapshot& s : series.snapshots) {
            evaluator.on_snapshot(s);
        }
        out.text += "\nSLO health\n";
        for (std::size_t i = 0; i < objectives.size(); ++i) {
            append_slo_line(out.text, objectives[i], evaluator.status(i));
        }
        if (!evaluator.transitions().empty()) {
            out.text += "  transitions\n";
            for (const SloTransition& tr : evaluator.transitions()) {
                out.text += "    epoch " + pad_left(fmt_u64(tr.epoch), 5) +
                            "  " +
                            pad_right(objectives[tr.objective].name, 16) +
                            " " + obs::telemetry::slo_health_name(tr.from) +
                            " -> " + obs::telemetry::slo_health_name(tr.to) +
                            " (fast " + fmt_double(tr.fast_burn) + ", slow " +
                            fmt_double(tr.slow_burn) + ")\n";
            }
        }
        out.breached = evaluator.ever_breached();
        out.text += out.breached
                        ? "\nverdict: BREACH (error budget exhausted)\n"
                        : "\nverdict: PASS\n";
    } catch (const std::invalid_argument& e) {
        return set_error(error, std::string("slo: ") + e.what());
    }

    if (opt.prometheus) {
        out.text += "\n";
        out.text += obs::telemetry::prometheus_text(last);
    }
    return true;
}

int run_report_cli(const std::vector<std::string>& args, std::string& out) {
    static const char kUsage[] =
        "usage: espread_report <series.json> [--slo "
        "name,signal,threshold[,quantile[,fast,slow[,fast_burn,slow_burn]]]]"
        "... [--prometheus] [--max-rows N]\n";

    ReportOptions opt;
    std::string path;
    std::string error;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg == "--prometheus") {
            opt.prometheus = true;
        } else if (arg == "--slo") {
            if (i + 1 >= args.size()) {
                out += "espread_report: --slo needs a spec\n";
                out += kUsage;
                return 1;
            }
            obs::telemetry::SloObjective o;
            if (!parse_objective_spec(args[++i], o, &error)) {
                out += "espread_report: " + error + "\n";
                return 1;
            }
            opt.objectives.push_back(std::move(o));
        } else if (arg == "--max-rows") {
            double rows = 0.0;
            if (i + 1 >= args.size() || !parse_number(args[++i], rows) ||
                rows < 1.0) {
                out += "espread_report: --max-rows needs a positive count\n";
                return 1;
            }
            opt.max_rows = static_cast<std::size_t>(rows);
        } else if (arg.rfind("--", 0) == 0) {
            out += "espread_report: unknown flag '" + arg + "'\n";
            out += kUsage;
            return 1;
        } else if (path.empty()) {
            path = arg;
        } else {
            out += "espread_report: more than one series file\n";
            out += kUsage;
            return 1;
        }
    }
    if (path.empty()) {
        out += kUsage;
        return 1;
    }

    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        out += "espread_report: cannot open " + path + "\n";
        return 1;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, got);
    }
    std::fclose(f);

    ReportResult result;
    if (!render_report(text, opt, result, &error)) {
        out += result.text;
        out += "espread_report: " + error + "\n";
        return 1;
    }
    out += result.text;
    return result.breached ? 2 : 0;
}

}  // namespace espread::report
