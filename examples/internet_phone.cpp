// Internet phone: audio streaming under the 3-LDU perceptual threshold.
//
// The paper's motivating application: for audio, user studies put the
// tolerable consecutive loss at ~3 LDUs (each LDU = 266 samples of 8 kHz
// SunAudio, ~1/30 s).  This example (1) sizes the jitter window needed to
// guarantee CLF <= threshold against a given burst (the latency/quality
// tradeoff of window_for_clf), and (2) streams audio over increasingly
// bursty links, checking how often the threshold is violated.
//
// Build & run:  ./build/examples/internet_phone
#include <cstdio>

#include "core/cpo.hpp"
#include "media/ldu.hpp"
#include "protocol/session.hpp"

using espread::media::AudioLdu;
using espread::media::kAudioClfThreshold;
using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::StreamKind;

int main() {
    std::printf("=== Internet phone: audio LDUs of %zu samples (%zu bits) ===\n\n",
                AudioLdu::kSamplesPerLdu, AudioLdu::kBitsPerLdu);

    // 1. How much buffering does a phone need?  Each extra LDU of window
    //    costs ~33 ms of latency; interactive voice tolerates ~150-200 ms.
    std::printf("window needed to guarantee CLF <= k against a burst of b LDUs\n");
    std::printf("(each window LDU adds %.0f ms of end-to-end latency)\n\n",
                1000.0 / AudioLdu::ldu_rate());
    std::printf(" burst b | k=1        | k=2        | k=3 (threshold)\n");
    std::printf("---------+------------+------------+----------------\n");
    for (std::size_t b = 2; b <= 6; ++b) {
        std::printf("%8zu |", b);
        for (std::size_t k = 1; k <= 3; ++k) {
            const std::size_t n = espread::window_for_clf(b, k);
            std::printf(" %2zu (%3.0fms) |", n,
                        static_cast<double>(n) * 1000.0 / AudioLdu::ldu_rate());
        }
        std::printf("\n");
    }

    // 2. Stream a call over links of increasing burstiness.
    std::printf("\n60 s call, window = 8 LDUs (~266 ms), varying burstiness:\n");
    std::printf(" P_bad | scheme   | CLF mean | CLF max | windows over threshold\n");
    std::printf("-------+----------+----------+---------+-----------------------\n");
    for (const double pbad : {0.3, 0.5, 0.7}) {
        for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.stream.kind = StreamKind::kAudio;
            cfg.stream.ldus_per_window = 8;
            cfg.stream.frame_rate = AudioLdu::ldu_rate();
            cfg.scheme = scheme;
            cfg.data_link.bandwidth_bps = 128e3;  // narrowband voice link
            cfg.feedback_link.bandwidth_bps = 128e3;
            cfg.packet_bits = AudioLdu::kBitsPerLdu;  // one LDU per packet
            cfg.data_loss = {0.92, pbad};
            cfg.feedback_loss = {0.92, pbad};
            cfg.num_windows = 225;  // ~60 s of 266 ms windows
            cfg.seed = 11;
            const auto r = run_session(cfg);
            std::size_t violations = 0;
            for (const auto& w : r.windows) {
                if (w.clf > kAudioClfThreshold) ++violations;
            }
            std::printf("  %.1f  | %-8s | %8.2f | %7.0f | %10zu / %zu\n", pbad,
                        scheme == Scheme::kInOrder ? "in-order" : "spread",
                        r.clf_stats().mean(), r.clf_stats().max(), violations,
                        r.windows.size());
        }
    }

    std::printf(
        "\nSpreading buys headroom without extra bandwidth: the same calls\n"
        "stay under the 3-LDU annoyance threshold far more often.\n");
    return 0;
}
