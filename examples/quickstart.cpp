// Quickstart: the error-spreading core in five minutes.
//
// Reproduces the paper's Table 1 scenario: a 17-frame window, one network
// burst of 7 consecutive packets.  Sending in order turns the burst into 7
// consecutively lost frames (awful to watch); sending in the k-CPO order
// spreads the same 7 losses so that no two lost frames are adjacent.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/metrics.hpp"
#include "core/permutation.hpp"

int main() {
    constexpr std::size_t kWindow = 17;  // sender buffer (frames)
    constexpr std::size_t kBurst = 7;    // worst network burst within it

    std::printf("=== espread quickstart: %zu-frame window, burst of %zu ===\n\n",
                kWindow, kBurst);

    // 1. The naive order loses 7 consecutive frames.
    const espread::Permutation in_order = espread::Permutation::identity(kWindow);
    std::printf("in-order transmission : %s\n", in_order.to_string_one_based().c_str());
    std::printf("  worst-case CLF      : %zu (the whole burst lands together)\n\n",
                espread::worst_case_clf(in_order, kBurst));

    // 2. calculatePermutation(n, b) finds the optimal scrambling.
    const espread::CpoResult cpo = espread::calculate_permutation(kWindow, kBurst);
    std::printf("k-CPO transmission    : %s\n", cpo.perm.to_string_one_based().c_str());
    std::printf("  worst-case CLF      : %zu (guaranteed, any burst <= %zu)\n",
                cpo.clf, kBurst);
    std::printf("  packing lower bound : %zu\n\n",
                espread::lower_bound_clf(kWindow, kBurst));

    // 3. Watch one concrete burst hit both orders.
    const std::size_t start = 5;  // burst covers transmission slots 5..11
    const auto show = [&](const char* name, const espread::Permutation& perm) {
        const espread::LossMask playback = espread::burst_loss_mask(perm, start, kBurst);
        std::printf("%s, burst on slots %zu..%zu -> playback: ", name, start,
                    start + kBurst - 1);
        for (const bool ok : playback) std::printf("%c", ok ? '.' : 'X');
        const auto r = espread::measure_continuity(playback);
        std::printf("   CLF=%zu ALF=%.2f\n", r.clf, r.alf);
    };
    show("in-order", in_order);
    show("k-CPO   ", cpo.perm);

    std::printf(
        "\nSame number of losses, same bandwidth - but the scrambled stream\n"
        "never loses two adjacent frames, which is what viewers notice.\n");
    return 0;
}
