// Structured session tracing: record one streaming session's event
// timeline, write it as Chrome trace-event JSON (load in Perfetto or
// chrome://tracing), and walk through the busiest buffer window
// event-by-event in the terminal.
//
// Build & run:  ./build/examples/trace_session
// Then open trace_session.json at https://ui.perfetto.dev
#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/report.hpp"
#include "protocol/session.hpp"

using espread::obs::TraceEvent;

int main() {
    espread::proto::SessionConfig cfg;  // Fig. 8 defaults: Jurassic Park
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.num_windows = 8;
    cfg.seed = 7;
    cfg.collect_metrics = true;

    espread::obs::TraceRecorder recorder(1 << 18);
    cfg.trace = &recorder;

    const espread::proto::SessionResult result =
        espread::proto::run_session(cfg);

    std::printf("=== traced session: %s ===\n\n",
                espread::proto::summarize(result).c_str());

    // Pick the window with the worst continuity — the one worth reading.
    std::size_t worst = 0;
    for (const espread::proto::WindowReport& w : result.windows) {
        if (w.clf > result.windows[worst].clf) worst = w.window;
    }

    std::vector<TraceEvent> events = recorder.events();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.time < b.time;
                     });

    std::printf("window %zu annotated (CLF %zu, %zu retransmissions):\n\n",
                worst, result.windows[worst].clf,
                result.windows[worst].retransmissions);
    std::printf("  %-10s %-16s %-18s details\n", "t (ms)", "actor", "event");
    for (const TraceEvent& e : events) {
        if (e.window != worst) continue;
        std::printf("  %-10.3f %-16s %-18s seq=%llu arg=%lld v0=%.2f v1=%.2f\n",
                    static_cast<double>(e.time) / 1e6,
                    espread::obs::actor_name(e.actor),
                    espread::obs::event_name(e.type),
                    static_cast<unsigned long long>(e.seq),
                    static_cast<long long>(e.arg), e.v0, e.v1);
    }

    std::printf("\nmetrics registry:\n");
    std::printf("  data packets sent/dropped : %llu / %llu\n",
                static_cast<unsigned long long>(
                    result.metrics.counter("data_packets_sent")),
                static_cast<unsigned long long>(
                    result.metrics.counter("data_packets_dropped")));
    std::printf("  retransmissions           : %llu\n",
                static_cast<unsigned long long>(
                    result.metrics.counter("retransmissions")));
    if (const auto* h = result.metrics.find_histogram("loss_run_length")) {
        std::printf("  loss runs                 : %zu (mean length %.2f)\n",
                    h->total(), h->mean());
    }

    espread::obs::write_chrome_trace_file("trace_session.json",
                                          recorder.events());
    espread::proto::write_event_csv_file("trace_session.csv",
                                         recorder.events());
    std::printf(
        "\nwrote trace_session.json (open at https://ui.perfetto.dev)\n"
        "wrote trace_session.csv  (flat event timeline)\n");
    return 0;
}
