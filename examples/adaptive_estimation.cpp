// Adaptive burst estimation (paper §4.2, Eq. 1): how the sender tracks a
// changing network with exponential averaging and re-derives its
// permutation window by window.
//
// Drives an ErrorSpreader through three network regimes (calm -> stormy ->
// calm) and prints the estimate, the integer bound handed to
// calculatePermutation, and the CLF guarantee of the resulting order.
//
// Build & run:  ./build/examples/adaptive_estimation
#include <cstdio>

#include "core/spreader.hpp"
#include "net/gilbert.hpp"
#include "sim/rng.hpp"

using espread::ErrorSpreader;
using espread::LossMask;
using espread::max_transmission_burst;
using espread::net::GilbertLoss;
using espread::net::GilbertParams;

namespace {

/// One window of per-frame outcomes from the loss process.
LossMask window_outcome(GilbertLoss& loss, std::size_t n) {
    LossMask received(n, true);
    for (std::size_t i = 0; i < n; ++i) received[i] = !loss.drop_next();
    return received;
}

}  // namespace

int main() {
    constexpr std::size_t kWindow = 32;
    ErrorSpreader spreader{kWindow};  // alpha = 1/2, initial estimate n/2

    std::printf("=== Adaptive error spreading over a changing network ===\n\n");
    std::printf("window | regime | observed burst | estimate | bound | CLF guarantee\n");
    std::printf("-------+--------+----------------+----------+-------+--------------\n");

    espread::sim::Rng rng{5};
    const GilbertParams calm{0.98, 0.3};
    const GilbertParams storm{0.85, 0.8};

    std::size_t window_no = 0;
    for (const auto& [name, params, windows] :
         {std::tuple{"calm ", calm, 12}, std::tuple{"storm", storm, 12},
          std::tuple{"calm ", calm, 12}}) {
        GilbertLoss loss{params, rng.split(window_no + 1)};
        for (int i = 0; i < windows; ++i, ++window_no) {
            spreader.begin_window();
            const LossMask received = window_outcome(loss, kWindow);
            const std::size_t observed = max_transmission_burst(received);
            std::printf("%6zu | %s  | %14zu | %8.2f | %5zu | %13zu\n", window_no,
                        name, observed, spreader.estimator().estimate(),
                        spreader.current_bound(), spreader.window_clf_guarantee());
            spreader.on_feedback(observed);
        }
    }

    std::printf(
        "\nThe bound chases the observed bursts with a one-window lag and\n"
        "half-weight smoothing: storms raise it (more aggressive spreading),\n"
        "calm shrinks it back (gentler scrambling, lower client complexity).\n");
    return 0;
}
