// Adaptive burst estimation (paper §4.2, Eq. 1): how the sender tracks a
// changing network with exponential averaging and re-derives its
// permutation window by window.
//
// Act 1 drives an ErrorSpreader through three network regimes (calm ->
// stormy -> calm) and prints the estimate, the integer bound handed to
// calculatePermutation, and the CLF guarantee of the resulting order.
//
// Act 2 puts the same Eq. 1 estimator under the AdaptationGovernor and
// kills the feedback path for eight windows: the governor's watchdog walks
// normal -> degraded -> fallback (pinned at the no-feedback prior b = n/2),
// then ramps back through recovering once ACKs return — every state
// transition, rejected ACK and outlier clamp printed as it happens.
//
// Build & run:  ./build/examples/adaptive_estimation
#include <cstdio>

#include "core/spreader.hpp"
#include "net/gilbert.hpp"
#include "protocol/governor.hpp"
#include "sim/rng.hpp"

using espread::ErrorSpreader;
using espread::LossMask;
using espread::max_transmission_burst;
using espread::net::GilbertLoss;
using espread::net::GilbertParams;
using espread::proto::AdaptationGovernor;
using espread::proto::GovernorConfig;
using espread::proto::governor_state_name;
using espread::proto::GovernorState;

namespace {

/// One window of per-frame outcomes from the loss process.
LossMask window_outcome(GilbertLoss& loss, std::size_t n) {
    LossMask received(n, true);
    for (std::size_t i = 0; i < n; ++i) received[i] = !loss.drop_next();
    return received;
}

/// Prints governor trace events as they fire (state transitions, rejected
/// ACKs, outlier clamps) — the same events a session records for Perfetto.
class PrintSink final : public espread::obs::TraceSink {
public:
    void record(const espread::obs::TraceEvent& e) override {
        using espread::obs::EventType;
        switch (e.type) {
            case EventType::kGovernorState:
                std::printf("  [governor] window %2zu: %s -> %s (%zu missed "
                            "feedback window%s)\n",
                            e.window,
                            governor_state_name(
                                static_cast<GovernorState>(static_cast<int>(e.v0))),
                            governor_state_name(static_cast<GovernorState>(e.arg)),
                            static_cast<std::size_t>(e.v1),
                            e.v1 == 1.0 ? "" : "s");
                break;
            case EventType::kGovernorClamp:
                std::printf("  [governor] window %2zu: observation %lld "
                            "slew-limited to %zu (bound was %zu)\n",
                            e.window, static_cast<long long>(e.arg),
                            static_cast<std::size_t>(e.v0),
                            static_cast<std::size_t>(e.v1));
                break;
            case EventType::kGovernorAckReject:
                std::printf("  [governor] window %2zu: ACK rejected (%s)\n",
                            e.window,
                            espread::proto::ack_reject_name(
                                static_cast<espread::proto::AckRejectReason>(e.arg)));
                break;
            // The non-governor events are deliberately silent here, but
            // each is named so a new EventType forces a decision.
            case EventType::kPacketSent:
            case EventType::kPacketLost:
            case EventType::kRetransmit:
            case EventType::kFrameDeadlineDrop:
            case EventType::kAckSent:
            case EventType::kAckApplied:
            case EventType::kAckStale:
            case EventType::kEstimatorUpdate:
            case EventType::kWindowFinalized:
            case EventType::kPlayoutMiss:
            case EventType::kFrameComplete:
            case EventType::kCorruptRejected:
            case EventType::kReordered:
            case EventType::kDupDropped:
            case EventType::kStaleDropped:
            case EventType::kSloHealth:
            case EventType::kRepairSent:
            case EventType::kFecRecovered:
            case EventType::kNackSent:
            case EventType::kNackServed:
            case EventType::kRepairTimeout:
            case EventType::kRepairShed:
                break;
        }
    }
};

void governed_blackout_demo() {
    constexpr std::size_t kWindow = 32;
    constexpr std::size_t kBlackoutFirst = 8;   // ACKs of windows 8..15 die
    constexpr std::size_t kBlackoutLast = 15;

    espread::BurstEstimator estimator{kWindow, 0.5};
    GovernorConfig cfg;
    cfg.enabled = true;
    cfg.miss_budget = 2;
    cfg.max_step = 4;
    cfg.hysteresis_windows = 1;
    cfg.recovery_windows = 3;
    AdaptationGovernor governor{cfg, estimator};
    PrintSink sink;
    governor.set_trace(&sink);

    std::printf("\n=== The adaptation governor rides a feedback blackout ===\n\n");
    std::printf("miss budget %zu, recovery %zu windows; ACKs of windows "
                "%zu..%zu are lost\n\n",
                cfg.miss_budget, cfg.recovery_windows, kBlackoutFirst,
                kBlackoutLast);
    std::printf("window | feedback | state      | bound | estimate\n");
    std::printf("-------+----------+------------+-------+---------\n");

    for (std::size_t k = 0; k < 26; ++k) {
        const std::size_t bound = governor.on_window_start(k);
        const bool ack_arrives =
            k >= 1 && (k - 1 < kBlackoutFirst || k - 1 > kBlackoutLast);
        std::printf("%6zu | %s | %-10s | %5zu | %8.2f\n", k,
                    k == 0 ? "   --   " : ack_arrives ? "   yes  " : "  LOST  ",
                    governor_state_name(governor.state()), bound,
                    estimator.estimate());
        if (ack_arrives) {
            // The client's ACK for window k-1 arrives while window k plays.
            governor.admit_ack(k - 1, /*seq=*/k);
            // Window 18's ACK is corrupted-but-plausible and reports an
            // absurd burst; the outlier guard keeps it from yanking the
            // bound by more than max_step.
            const std::size_t observed = (k - 1) == 18 ? 31 : 2 + (k - 1) % 3;
            governor.on_observation(observed);
        }
    }

    std::printf(
        "\nThe watchdog spends its %zu-window miss budget decaying toward the\n"
        "no-feedback prior b = n/2 = %zu, pins it there while the outage\n"
        "lasts, and only trusts the estimator again after %zu clean windows —\n"
        "with every accepted ACK slew-limited to +/-%zu by the outlier guard.\n",
        cfg.miss_budget, kWindow / 2, cfg.recovery_windows, cfg.max_step);
}

}  // namespace

int main() {
    constexpr std::size_t kWindow = 32;
    ErrorSpreader spreader{kWindow};  // alpha = 1/2, initial estimate n/2

    std::printf("=== Adaptive error spreading over a changing network ===\n\n");
    std::printf("window | regime | observed burst | estimate | bound | CLF guarantee\n");
    std::printf("-------+--------+----------------+----------+-------+--------------\n");

    espread::sim::Rng rng{5};
    const GilbertParams calm{0.98, 0.3};
    const GilbertParams storm{0.85, 0.8};

    std::size_t window_no = 0;
    for (const auto& [name, params, windows] :
         {std::tuple{"calm ", calm, 12}, std::tuple{"storm", storm, 12},
          std::tuple{"calm ", calm, 12}}) {
        GilbertLoss loss{params, rng.split(window_no + 1)};
        for (int i = 0; i < windows; ++i, ++window_no) {
            spreader.begin_window();
            const LossMask received = window_outcome(loss, kWindow);
            const std::size_t observed = max_transmission_burst(received);
            std::printf("%6zu | %s  | %14zu | %8.2f | %5zu | %13zu\n", window_no,
                        name, observed, spreader.estimator().estimate(),
                        spreader.current_bound(), spreader.window_clf_guarantee());
            spreader.on_feedback(observed);
        }
    }

    std::printf(
        "\nThe bound chases the observed bursts with a one-window lag and\n"
        "half-weight smoothing: storms raise it (more aggressive spreading),\n"
        "calm shrinks it back (gentler scrambling, lower client complexity).\n");

    governed_blackout_demo();
    return 0;
}
