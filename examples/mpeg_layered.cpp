// MPEG with inter-frame dependency: the Layered Permutation Transmission
// Order of paper §3.2 / Fig. 3, end to end.
//
// Shows (1) the dependency poset and its antichain layering for a 2-GOP
// buffer, (2) the wire order the planner produces, and (3) a full session
// comparing the four transmission schemes on the same network.
//
// Build & run:  ./build/examples/mpeg_layered
#include <cstdio>

#include "media/mpeg.hpp"
#include "poset/layered.hpp"
#include "protocol/session.hpp"

using espread::media::GopPattern;
using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::scheme_name;
using espread::proto::SessionConfig;

int main() {
    const GopPattern pattern = GopPattern::standard(12);
    constexpr std::size_t kGops = 2;

    std::printf("=== MPEG layered transmission (W = %zu GOPs of %s) ===\n\n",
                kGops, pattern.to_string().c_str());

    // 1. Dependency structure -> layers.
    const auto poset = espread::media::build_dependency_poset(pattern, kGops);
    const auto plan = espread::poset::build_layered_plan(poset, /*bound=*/4);
    std::printf("longest dependency chain: %zu  =>  %zu layers\n",
                poset.longest_chain_length(), plan.layer_count());
    for (std::size_t l = 0; l < plan.layers.size(); ++l) {
        const auto& layer = plan.layers[l];
        std::printf("  layer %zu (%s, |L|=%2zu, b=%zu, CLF<=%zu): ", l,
                    layer.critical ? "critical    " : "non-critical",
                    layer.members.size(), layer.bound, layer.clf_guarantee);
        for (const auto f : layer.transmission()) std::printf("%02zu ", f + 1);
        std::printf("\n");
    }

    // 2. Stream Jurassic Park under every scheme on an identical network.
    std::printf("\nstreaming 100 windows of Jurassic Park, Gilbert(0.92, 0.6):\n");
    std::printf("%-14s | CLF mean | CLF dev | CLF max | ALF   | undecodable\n",
                "scheme");
    std::printf("---------------+----------+---------+---------+-------+------------\n");
    for (const Scheme scheme :
         {Scheme::kInOrder, Scheme::kLayeredNoScramble, Scheme::kLayeredIbo,
          Scheme::kLayeredSpread}) {
        SessionConfig cfg;  // paper defaults: W=2, 1.2 Mb/s, RTT 23 ms
        cfg.scheme = scheme;
        cfg.num_windows = 100;
        cfg.seed = 7;
        const auto r = run_session(cfg);
        const auto s = r.clf_stats();
        std::size_t undec = 0;
        for (const auto& w : r.windows) undec += w.undecodable;
        std::printf("%-14s | %8.2f | %7.2f | %7.0f | %.3f | %11zu\n",
                    scheme_name(scheme), s.mean(), s.deviation(), s.max(),
                    r.total.alf, undec);
    }

    std::printf(
        "\nAnchors go first (and get retransmitted), so whole-GOP losses are\n"
        "rare; scrambling the B layer then converts the remaining bursts\n"
        "into isolated single-frame glitches.\n");
    return 0;
}
