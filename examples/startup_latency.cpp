// Start-up latency vs playback quality: how much client buffering does the
// protocol actually need?
//
// The paper buffers W GOPs before starting playback (one buffer-window of
// start-up delay, §4.1/§5.2).  This example shaves the start-up delay and
// watches frames begin to miss their slots — the playout-judged CLF/ALF
// climb even though delivery is unchanged — and prints the measured
// minimum delay (required_startup) per network condition, separating the
// two costs of a burst: lost frames and late frames.
//
// Build & run:  ./build/examples/startup_latency
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;

int main() {
    std::printf("=== start-up delay vs playout quality (Jurassic Park, W = 2) ===\n\n");

    std::printf("startup (windows) | delivered ALF | playout ALF | playout CLF mean\n");
    std::printf("------------------+---------------+-------------+-----------------\n");
    for (const double startup : {1.0, 0.5, 0.2, 0.1, 0.05}) {
        SessionConfig cfg;
        cfg.num_windows = 60;
        cfg.seed = 21;
        cfg.playout_startup_windows = startup;
        const SessionResult r = run_session(cfg);
        std::printf("        %5.2f     |     %.3f     |    %.3f    | %.2f\n",
                    startup, r.total.alf, r.playout_total.alf,
                    r.playout_clf_stats().mean());
    }

    std::printf("\nmeasured minimum start-up delay by network condition:\n");
    std::printf(" P_bad | RTT    | required startup (s)\n");
    std::printf("-------+--------+---------------------\n");
    for (const double pbad : {0.0, 0.6, 0.7}) {
        for (const double rtt_ms : {23.0, 200.0}) {
            SessionConfig cfg;
            cfg.num_windows = 60;
            cfg.seed = 21;
            if (pbad == 0.0) {
                cfg.data_loss = {1.0, 0.0};
                cfg.feedback_loss = {1.0, 0.0};
            } else {
                cfg.data_loss = {0.92, pbad};
                cfg.feedback_loss = {0.92, pbad};
            }
            cfg.data_link.propagation_delay = espread::sim::from_millis(rtt_ms / 2);
            cfg.feedback_link.propagation_delay = cfg.data_link.propagation_delay;
            const SessionResult r = run_session(cfg);
            std::printf("  %.1f  | %3.0f ms | %.3f\n", pbad, rtt_ms,
                        espread::sim::to_seconds(r.required_startup));
        }
    }

    std::printf(
        "\nRetransmissions of anchor frames arrive near the window deadline,\n"
        "so lossier networks need start-up delays close to one full window —\n"
        "which is exactly what the paper provisions.\n");
    return 0;
}
