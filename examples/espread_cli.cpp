// espread_cli — command-line driver for the streaming simulator.
//
// Runs one configured session and prints per-window CLF plus summary
// statistics; every experiment in the paper (and any variation) can be
// reproduced from the shell without writing code.
//
//   espread_cli --scheme spread --pbad 0.7 --bw 1.2e6 --gops 2 --windows 100
//   espread_cli --stream audio --ldus 8 --rate 30 --scheme inorder
//   espread_cli --fec 4,2,4 --retransmit 0 --quiet
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "protocol/report.hpp"
#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::scheme_name;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::StreamKind;

namespace {

[[noreturn]] void usage(int code) {
    std::printf(
        "usage: espread_cli [flags]\n"
        "  --scheme  inorder|layered|ibo|spread   transmission scheme (spread)\n"
        "  --stream  mpeg|mjpeg|audio|trace       stream kind (mpeg)\n"
        "  --movie   NAME                         MPEG trace (Jurassic Park)\n"
        "  --trace   PATH                         frame-trace file (implies --stream trace)\n"
        "  --csv     PATH                         also write per-window CSV\n"
        "  --gops    N                            GOPs per window, mpeg (2)\n"
        "  --ldus    N                            LDUs per window, mjpeg/audio (24)\n"
        "  --rate    FPS                          frame rate, mjpeg/audio (24)\n"
        "  --bw      BPS                          data bandwidth (1.2e6)\n"
        "  --rtt     MS                           round-trip time (23)\n"
        "  --pgood   P                            Gilbert stay-good (0.92)\n"
        "  --pbad    P                            Gilbert stay-bad (0.6)\n"
        "  --lgood   P                            drop prob in GOOD (0)\n"
        "  --lbad    P                            drop prob in BAD (1)\n"
        "  --packet  BITS                         packet size (16384)\n"
        "  --windows N                            buffer windows (100)\n"
        "  --seed    N                            RNG seed (1)\n"
        "  --alpha   A                            Eq.-1 weight (0.5)\n"
        "  --pin     B                            freeze non-critical bound (adaptive)\n"
        "  --retransmit 0|1                       critical retransmission (1)\n"
        "  --estimator ewma|smax                  burst-bound estimator (ewma)\n"
        "  --drop    reactive|predictive          sender shedding policy (reactive)\n"
        "  --startup W                            playout startup, in windows (1.0)\n"
        "  --fec     K,R[,DEPTH]                  FEC group,parity[,interleave]\n"
        "  --quiet                                summary only\n"
        "  --help\n");
    std::exit(code);
}

double parse_double(const char* flag, const char* value) {
    char* end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0') {
        std::fprintf(stderr, "espread_cli: bad value for %s: %s\n", flag, value);
        std::exit(2);
    }
    return v;
}

std::size_t parse_size(const char* flag, const char* value) {
    const double v = parse_double(flag, value);
    if (v < 0) {
        std::fprintf(stderr, "espread_cli: %s must be non-negative\n", flag);
        std::exit(2);
    }
    return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
    SessionConfig cfg;
    bool quiet = false;
    double rtt_ms = 23.0;
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") usage(0);
        if (flag == "--quiet") {
            quiet = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "espread_cli: %s needs a value\n", flag.c_str());
            return 2;
        }
        const char* v = argv[++i];
        if (flag == "--scheme") {
            const std::string s = v;
            if (s == "inorder") cfg.scheme = Scheme::kInOrder;
            else if (s == "layered") cfg.scheme = Scheme::kLayeredNoScramble;
            else if (s == "ibo") cfg.scheme = Scheme::kLayeredIbo;
            else if (s == "spread") cfg.scheme = Scheme::kLayeredSpread;
            else usage(2);
        } else if (flag == "--stream") {
            const std::string s = v;
            if (s == "mpeg") cfg.stream.kind = StreamKind::kMpeg;
            else if (s == "mjpeg") cfg.stream.kind = StreamKind::kMjpeg;
            else if (s == "audio") cfg.stream.kind = StreamKind::kAudio;
            else if (s == "trace") cfg.stream.kind = StreamKind::kTraceFile;
            else usage(2);
        } else if (flag == "--trace") {
            cfg.stream.kind = StreamKind::kTraceFile;
            cfg.stream.trace_path = v;
        } else if (flag == "--csv") {
            csv_path = v;
        } else if (flag == "--movie") {
            cfg.stream.movie = v;
        } else if (flag == "--gops") {
            cfg.gops_per_window = parse_size("--gops", v);
        } else if (flag == "--ldus") {
            cfg.stream.ldus_per_window = parse_size("--ldus", v);
        } else if (flag == "--rate") {
            cfg.stream.frame_rate = parse_double("--rate", v);
        } else if (flag == "--bw") {
            cfg.data_link.bandwidth_bps = parse_double("--bw", v);
            cfg.feedback_link.bandwidth_bps = cfg.data_link.bandwidth_bps;
        } else if (flag == "--rtt") {
            rtt_ms = parse_double("--rtt", v);
        } else if (flag == "--pgood") {
            cfg.data_loss.p_good = cfg.feedback_loss.p_good = parse_double("--pgood", v);
        } else if (flag == "--pbad") {
            cfg.data_loss.p_bad = cfg.feedback_loss.p_bad = parse_double("--pbad", v);
        } else if (flag == "--lgood") {
            cfg.data_loss.loss_good = cfg.feedback_loss.loss_good = parse_double("--lgood", v);
        } else if (flag == "--lbad") {
            cfg.data_loss.loss_bad = cfg.feedback_loss.loss_bad = parse_double("--lbad", v);
        } else if (flag == "--packet") {
            cfg.packet_bits = parse_size("--packet", v);
        } else if (flag == "--windows") {
            cfg.num_windows = parse_size("--windows", v);
        } else if (flag == "--seed") {
            cfg.seed = parse_size("--seed", v);
        } else if (flag == "--alpha") {
            cfg.alpha = parse_double("--alpha", v);
        } else if (flag == "--pin") {
            cfg.pinned_bound = parse_size("--pin", v);
        } else if (flag == "--retransmit") {
            cfg.retransmit_critical = parse_size("--retransmit", v) != 0;
        } else if (flag == "--estimator") {
            const std::string s = v;
            if (s == "ewma") cfg.estimator = espread::proto::EstimatorKind::kEwma;
            else if (s == "smax") cfg.estimator = espread::proto::EstimatorKind::kSlidingMax;
            else usage(2);
        } else if (flag == "--drop") {
            const std::string s = v;
            if (s == "reactive") cfg.drop_policy = espread::proto::DropPolicy::kReactive;
            else if (s == "predictive") cfg.drop_policy = espread::proto::DropPolicy::kPredictive;
            else usage(2);
        } else if (flag == "--startup") {
            cfg.playout_startup_windows = parse_double("--startup", v);
        } else if (flag == "--fec") {
            std::size_t k = 0, r = 0, d = 1;
            if (std::sscanf(v, "%zu,%zu,%zu", &k, &r, &d) < 2) {
                std::fprintf(stderr, "espread_cli: --fec expects K,R[,DEPTH]\n");
                return 2;
            }
            cfg.fec = {k, r, d};
        } else {
            std::fprintf(stderr, "espread_cli: unknown flag %s\n", flag.c_str());
            usage(2);
        }
    }
    cfg.data_link.propagation_delay = espread::sim::from_millis(rtt_ms / 2);
    cfg.feedback_link.propagation_delay = cfg.data_link.propagation_delay;

    SessionResult r;
    try {
        r = run_session(cfg);
        if (!csv_path.empty()) espread::proto::write_csv_file(csv_path, r);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "espread_cli: %s\n", e.what());
        return 1;
    }

    if (!quiet) {
        std::printf("window |  CLF | lost | undec | drops | retx | pktburst | bound\n");
        std::printf("-------+------+------+-------+-------+------+----------+------\n");
        for (const auto& w : r.windows) {
            std::printf("%6zu | %4zu | %4zu | %5zu | %5zu | %4zu | %8zu | %zu\n",
                        w.window, w.clf, w.lost_ldus, w.undecodable,
                        w.sender_dropped, w.retransmissions,
                        w.actual_packet_burst, w.bound_used);
        }
        std::printf("\n");
    }

    const auto s = r.clf_stats();
    std::printf("scheme=%s windows=%zu ldus/window=%zu seed=%llu\n",
                scheme_name(cfg.scheme), r.windows.size(), cfg.window_ldus(),
                static_cast<unsigned long long>(cfg.seed));
    std::printf("CLF mean=%.3f dev=%.3f max=%.0f | ALF=%.4f | packets sent=%zu "
                "dropped=%zu | acks applied=%zu/%zu\n",
                s.mean(), s.deviation(), s.max(), r.total.alf,
                r.data_channel.sent, r.data_channel.dropped, r.acks_applied,
                r.acks_sent);
    return 0;
}
