// MJPEG streaming: the dependency-free protocol (paper §4.2, final note).
//
// For streams without inter-frame dependency the protocol reduces to pure
// windowed scrambling plus loss-rate estimation.  This example streams 60
// seconds of 30 fps MJPEG over a bursty (Gilbert) link and compares the
// per-window CLF of in-order vs error-spreading transmission.
//
// Build & run:  ./build/examples/mjpeg_streaming
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;
using espread::proto::StreamKind;

namespace {

SessionConfig make_config(Scheme scheme) {
    SessionConfig cfg;
    cfg.stream.kind = StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 30;      // 1 s windows at 30 fps
    cfg.stream.frame_rate = 30.0;
    cfg.stream.mjpeg_mean_bits = 30000.0; // ~0.9 Mb/s source
    cfg.scheme = scheme;
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.num_windows = 60;
    cfg.seed = 2026;
    return cfg;
}

}  // namespace

int main() {
    std::printf("=== MJPEG over a bursty link: 60 windows of 30 frames ===\n\n");

    const SessionResult plain = run_session(make_config(Scheme::kInOrder));
    const SessionResult spread = run_session(make_config(Scheme::kLayeredSpread));

    std::printf("window | in-order CLF | spread CLF | spread bound\n");
    std::printf("-------+--------------+------------+-------------\n");
    for (std::size_t k = 0; k < 20; ++k) {  // first 20 windows in detail
        std::printf("%6zu | %12zu | %10zu | %12zu\n", k, plain.windows[k].clf,
                    spread.windows[k].clf, spread.windows[k].bound_used);
    }

    const auto ps = plain.clf_stats();
    const auto ss = spread.clf_stats();
    std::printf("\nover all %zu windows:\n", plain.windows.size());
    std::printf("  in-order : CLF mean %.2f  dev %.2f  max %.0f  ALF %.3f\n",
                ps.mean(), ps.deviation(), ps.max(), plain.total.alf);
    std::printf("  spread   : CLF mean %.2f  dev %.2f  max %.0f  ALF %.3f\n",
                ss.mean(), ss.deviation(), ss.max(), spread.total.alf);
    std::printf(
        "\nAggregate loss is essentially unchanged (no extra bandwidth spent);\n"
        "consecutive loss drops because bursts land on scattered frames.\n");
    return 0;
}
