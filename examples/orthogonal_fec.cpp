// Orthogonality (paper §4.3): error spreading composes with classical
// redundancy-based error handling.
//
// The paper's Figure 4 taxonomy: scrambling (block D) is orthogonal to
// feedback/retransmission (block B) and forward error correction (block C).
// This example runs the 2x2x2 matrix {in-order, spread} x {no retransmit,
// retransmit} x {no FEC, FEC} on an identical network and shows that each
// mechanism contributes independently — and what each one costs.
//
// Build & run:  ./build/examples/orthogonal_fec
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

int main() {
    std::printf("=== Composing error spreading with retransmission and FEC ===\n");
    std::printf("(Jurassic Park, 100 windows, Gilbert(0.92, 0.6), 2.0 Mb/s link\n"
                " so the FEC parity has bandwidth to live in)\n\n");
    std::printf("scheme   | retransmit | FEC(4+2) | CLF mean | CLF dev | ALF   | bits sent\n");
    std::printf("---------+------------+----------+----------+---------+-------+----------\n");

    for (const bool spread : {false, true}) {
        for (const bool retransmit : {false, true}) {
            for (const bool fec : {false, true}) {
                SessionConfig cfg;
                cfg.scheme = spread ? Scheme::kLayeredSpread : Scheme::kInOrder;
                cfg.retransmit_critical = retransmit;
                if (fec) cfg.fec = {4, 2};
                cfg.data_link.bandwidth_bps = 2e6;
                cfg.feedback_link.bandwidth_bps = 2e6;
                cfg.num_windows = 100;
                cfg.seed = 3;
                const auto r = run_session(cfg);
                const auto s = r.clf_stats();
                std::printf("%-8s | %-10s | %-8s | %8.2f | %7.2f | %.3f | %9zu\n",
                            spread ? "spread" : "in-order",
                            retransmit ? "yes" : "no", fec ? "yes" : "no",
                            s.mean(), s.deviation(), r.total.alf,
                            r.data_channel.bits_sent / 1000);
            }
        }
    }

    std::printf(
        "\nReading the table: retransmission and FEC cut the aggregate loss\n"
        "(ALF) by spending bandwidth; spreading cuts the consecutive loss\n"
        "(CLF) for free.  Stacked, they protect both dimensions at once —\n"
        "the orthogonality the paper claims.\n");
    return 0;
}
