// Microbenchmarks (google-benchmark): cost of the core primitives.
//
// calculatePermutation runs per estimate change (not per frame), the
// apply/unspread path runs per window, and the Gilbert chain runs per
// packet — these numbers show all of them are negligible next to frame
// transmission times (a 16384-bit packet takes ~13.6 ms at 1.2 Mb/s).
#include <benchmark/benchmark.h>

#include "analysis/markov.hpp"
#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "core/optimal.hpp"
#include "core/spreader.hpp"
#include "engine/engine.hpp"
#include "net/gilbert.hpp"
#include "protocol/codec.hpp"
#include "protocol/session.hpp"

namespace {

void BM_CalculatePermutation(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t b = n / 3 + 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::calculate_permutation(n, b));
    }
}
BENCHMARK(BM_CalculatePermutation)->Arg(24)->Arg(96)->Arg(360);

void BM_WorstCaseClf(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const espread::Permutation p = espread::residue_class_order(n, n / 5 + 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::worst_case_clf(p, n / 3 + 1));
    }
}
BENCHMARK(BM_WorstCaseClf)->Arg(24)->Arg(96)->Arg(360);

void BM_PermutationApply(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const espread::Permutation p = espread::calculate_permutation(n, n / 4 + 1).perm;
    std::vector<int> items(n, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.apply(items));
    }
}
BENCHMARK(BM_PermutationApply)->Arg(24)->Arg(360);

void BM_PermutationApplyInto(benchmark::State& state) {
    // Scratch-buffer variant: amortizes the output allocation away.
    const auto n = static_cast<std::size_t>(state.range(0));
    const espread::Permutation p = espread::calculate_permutation(n, n / 4 + 1).perm;
    std::vector<int> items(n, 7);
    std::vector<int> scratch;
    for (auto _ : state) {
        p.apply_into(items, scratch);
        benchmark::DoNotOptimize(scratch.data());
    }
}
BENCHMARK(BM_PermutationApplyInto)->Arg(24)->Arg(360);

espread::LossMask bursty_mask(std::size_t n) {
    espread::sim::Rng rng{9};
    espread::net::GilbertLoss loss{{0.92, 0.6}, std::move(rng)};
    espread::LossMask mask(n);
    for (std::size_t i = 0; i < n; ++i) mask[i] = !loss.drop_next();
    return mask;
}

void BM_LossMaskMetrics(benchmark::State& state) {
    const espread::LossMask mask = bursty_mask(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::consecutive_loss(mask));
        benchmark::DoNotOptimize(espread::aggregate_loss_count(mask));
    }
}
BENCHMARK(BM_LossMaskMetrics)->Arg(96)->Arg(4096);

void BM_BitMaskMetrics(benchmark::State& state) {
    const espread::BitMask mask = espread::BitMask::from_mask(
        bursty_mask(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::consecutive_loss(mask));
        benchmark::DoNotOptimize(espread::aggregate_loss_count(mask));
    }
}
BENCHMARK(BM_BitMaskMetrics)->Arg(96)->Arg(4096);

void BM_SpreaderUnspreadInto(benchmark::State& state) {
    espread::ErrorSpreader spreader{96};
    spreader.on_feedback(8);
    (void)spreader.begin_window();
    espread::LossMask mask(96, true);
    for (std::size_t i = 20; i < 28; ++i) mask[i] = false;
    espread::LossMask scratch;
    for (auto _ : state) {
        spreader.unspread_into(mask, scratch);
        benchmark::DoNotOptimize(&scratch);
    }
}
BENCHMARK(BM_SpreaderUnspreadInto);

void BM_SpreaderWindowCycle(benchmark::State& state) {
    espread::ErrorSpreader spreader{96};
    espread::LossMask mask(96, true);
    for (std::size_t i = 20; i < 28; ++i) mask[i] = false;
    for (auto _ : state) {
        spreader.begin_window();
        benchmark::DoNotOptimize(spreader.unspread(mask));
        spreader.on_feedback(8);
    }
}
BENCHMARK(BM_SpreaderWindowCycle);

void BM_OptimalSearch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::optimal_clf(n, n - 1));
    }
}
BENCHMARK(BM_OptimalSearch)->Arg(7)->Arg(9);

void BM_GilbertStep(benchmark::State& state) {
    espread::net::GilbertLoss loss{{0.92, 0.6}, espread::sim::Rng{1}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(loss.drop_next());
    }
}
BENCHMARK(BM_GilbertStep);

void BM_GilbertNextRun(benchmark::State& state) {
    // Batched classic-emission sampling: one call per sojourn instead of
    // one per packet (48-packet windows, the Fig. 8 shape).
    espread::net::GilbertLoss loss{{0.92, 0.6}, espread::sim::Rng{1}};
    for (auto _ : state) {
        std::uint64_t covered = 0;
        while (covered < 48) {
            const auto run = loss.next_run(48 - covered);
            covered += run.length;
        }
        benchmark::DoNotOptimize(covered);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
}
BENCHMARK(BM_GilbertNextRun);

/// Pre-slicing wire_checksum, kept verbatim so one bench run reports the
/// before/after pair for EXPERIMENTS.md.
std::uint16_t wire_checksum_bitwise(const std::uint8_t* data,
                                    std::size_t size) noexcept {
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= static_cast<std::uint16_t>(data[i]) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 0x8000u)
                      ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                      : static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::vector<std::uint8_t> checksum_payload(std::size_t size) {
    std::vector<std::uint8_t> buf(size);
    espread::sim::Rng rng(7);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    return buf;
}

void BM_WireChecksum(benchmark::State& state) {
    const auto buf = checksum_payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            espread::proto::wire_checksum(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_WireChecksum)->Arg(32)->Arg(1024);

void BM_WireChecksumBitwise(benchmark::State& state) {
    const auto buf = checksum_payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(wire_checksum_bitwise(buf.data(), buf.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_WireChecksumBitwise)->Arg(32)->Arg(1024);

void BM_CodecRoundTrip(benchmark::State& state) {
    espread::proto::DataPacket p;
    p.seq = 12345;
    p.window = 7;
    p.layer = 4;
    p.tx_pos = 11;
    p.frame_index = 171;
    p.num_fragments = 3;
    p.size_bits = 16384;
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::proto::decode_data(espread::proto::encode(p)));
    }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_MarkovClfDistribution(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            espread::analysis::clf_distribution_in_order({0.92, 0.6}, n));
    }
}
BENCHMARK(BM_MarkovClfDistribution)->Arg(24)->Arg(96);

void BM_FullSessionWindow(benchmark::State& state) {
    // Whole-stack cost per simulated buffer window (25 windows per run).
    // The config template is built once outside the timed loop; run_session
    // copies it, which is what the Monte-Carlo runner does per trial.
    espread::proto::SessionConfig cfg;
    cfg.num_windows = 25;
    cfg.seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(espread::proto::run_session(cfg));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_FullSessionWindow)->Unit(benchmark::kMillisecond);

void BM_EngineWindowStep(benchmark::State& state) {
    // Per-window cost of the data-oriented engine's batched hot path, for
    // direct comparison with BM_FullSessionWindow's per-object loop.
    espread::engine::EngineConfig cfg;
    cfg.sessions = static_cast<std::size_t>(state.range(0));
    cfg.shards = 1;
    cfg.seed = 1;
    espread::engine::ShardedEngine engine(cfg);
    for (auto _ : state) {
        engine.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_EngineWindowStep)->Arg(1)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
