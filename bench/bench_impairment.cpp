// Adversarial-network bench: protocol resilience under fault injection.
//
// The paper evaluates error spreading against Gilbert loss alone; real
// datagram paths also reorder, duplicate, corrupt and jitter packets, and
// outages can kill the feedback path outright.  This bench sweeps the
// paper's Fig. 8 setup (Jurassic Park, P_good = 0.92 / P_bad = 0.6) through
// escalating impairment mixes on top of that loss and reports how the
// scrambled scheme's CLF degrades — plus the impairment accounting
// (duplicates, checksum rejections, reorders, scripted drops and what the
// hardened receiver discarded) that makes the degradation explainable.
//
// Emits BENCH_impairment.json (--out=FILE overrides) for cross-PR
// tracking; --trials=N / --threads=T as in the other Monte-Carlo benches.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "net/fault.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::net::ImpairmentConfig;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

namespace {

struct Cell {
    const char* name;
    const char* description;
    ImpairmentConfig data;
    ImpairmentConfig feedback;
    bool ack_blackout = false;  ///< additionally kill ACKs for windows 3-5
};

std::vector<Cell> cells() {
    std::vector<Cell> out;
    out.push_back({"baseline", "Gilbert loss only (Fig. 8 setup)", {}, {}});

    Cell reorder{"reorder", "30% reordered, displacement <= 4", {}, {}};
    reorder.data.reorder_rate = 0.3;
    reorder.data.reorder_max_displacement = 4;
    out.push_back(reorder);

    Cell duplicate{"duplicate", "20% duplicated (copy +1 ms)", {}, {}};
    duplicate.data.duplicate_rate = 0.2;
    out.push_back(duplicate);

    Cell corrupt{"corrupt", "15% corrupted headers (<= 3 bit flips)", {}, {}};
    corrupt.data.corrupt_rate = 0.15;
    corrupt.feedback.corrupt_rate = 0.15;
    out.push_back(corrupt);

    Cell jitter{"jitter", "40% jittered (<= 8 ms extra delay)", {}, {}};
    jitter.data.jitter_rate = 0.4;
    jitter.data.jitter_max = espread::sim::from_millis(8.0);
    out.push_back(jitter);

    Cell blackout{"ack-blackout", "ACK path dead for windows 3-5", {}, {}};
    blackout.ack_blackout = true;
    out.push_back(blackout);

    Cell sink{"kitchen-sink",
              "reorder 20% + duplicate 15% + corrupt 10% + jitter 30% + "
              "ACK blackout",
              {},
              {}};
    sink.data.reorder_rate = 0.2;
    sink.data.duplicate_rate = 0.15;
    sink.data.corrupt_rate = 0.1;
    sink.data.jitter_rate = 0.3;
    sink.feedback.corrupt_rate = 0.1;
    sink.ack_blackout = true;
    out.push_back(sink);

    return out;
}

SessionConfig cell_config(const Cell& cell, std::uint64_t seed) {
    SessionConfig cfg;  // defaults match the paper's Fig. 8 setup
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.scheme = Scheme::kLayeredSpread;
    cfg.num_windows = 100;
    cfg.seed = seed;
    cfg.collect_metrics = true;
    cfg.data_impairment = cell.data;
    cfg.feedback_impairment = cell.feedback;
    if (cell.ack_blackout) cfg.blackout_feedback_windows(3, 5);
    return cfg;
}

std::uint64_t metric(const TrialSummary& s, const char* name) {
    return s.metrics.counter(name);
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = espread::exp::parse_runner_args(argc, argv);
    MonteCarloRunner runner(opts);
    constexpr std::uint64_t kSeed = 42;

    std::printf("== Impairment sweep: scrambled scheme under adversarial "
                "networks ==\n");
    std::printf("   (Fig. 8 setup + fault injection; %zu trials x 100 "
                "windows per cell, %zu threads)\n\n",
                runner.trials(), runner.threads());
    std::printf("%-14s %-10s %-10s %8s %8s %8s %8s\n", "cell", "mean CLF",
                "dev CLF", "dup", "corrupt", "reorder", "rx-drop");

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("impairment");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    double wall = 0.0;
    std::size_t windows = 0;
    json.key("cells").begin_array();
    for (const Cell& cell : cells()) {
        const TrialSummary s = runner.run(cell_config(cell, kSeed));
        wall += s.wall_seconds;
        windows += s.total_windows;
        const std::uint64_t rx_drop = metric(s, "recv_duplicates_dropped") +
                                      metric(s, "recv_stale_dropped") +
                                      metric(s, "recv_mismatch_dropped");
        std::printf("%-14s %-10.3f %-10.3f %8llu %8llu %8llu %8llu\n",
                    cell.name, s.window_clf.mean(), s.window_clf.deviation(),
                    static_cast<unsigned long long>(
                        metric(s, "data_packets_duplicated")),
                    static_cast<unsigned long long>(
                        metric(s, "data_packets_corrupt_rejected")),
                    static_cast<unsigned long long>(
                        metric(s, "data_packets_reordered")),
                    static_cast<unsigned long long>(rx_drop));
        json.begin_object();
        json.key("cell").value(cell.name);
        json.key("description").value(cell.description);
        json.key("summary");
        espread::exp::append_summary(json, s);
        json.end_object();
    }
    json.end_array();
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second")
        .value(wall > 0 ? static_cast<double>(windows) / wall : 0.0);
    json.end_object();

    std::printf("\nshape check: the baseline cell matches bench_fig8_loss's "
                "scrambled cell\n(impairments off = byte-identical "
                "simulation), and every impaired cell\nterminates with "
                "finite CLF — no crash, no double-counted LDUs.\n");
    std::printf("\nthroughput: %zu windows in %.2f s = %.0f windows/sec\n",
                windows, wall,
                wall > 0 ? static_cast<double>(windows) / wall : 0.0);

    const std::string out =
        opts.out_path.empty() ? "BENCH_impairment.json" : opts.out_path;
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    if (!opts.trace_path.empty()) {
        SessionConfig traced = cell_config(cells().back(), kSeed);
        espread::exp::write_session_trace(traced, opts.trace_path);
        std::printf("wrote %s\n", opts.trace_path.c_str());
    }
    return 0;
}
