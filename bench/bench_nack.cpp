// Receiver-driven repair vs. the fixed credit schedule (DESIGN.md §13).
//
// The recovery plane replaces the sender's unconditional RLC repair
// schedule with receiver-authoritative NACKs: the client reports which
// packets are missing (and how rank-deficient its decoder is) at
// playout-budget-aware deadlines, and the sender spends *banked* repair
// credits only where loss actually happened.  This bench sweeps feedback
// blackout x RTT x repair overhead on the Fig. 8 Gilbert data channel
// with three arms, all kHybridSpreadRlc over a 16-LDU MJPEG window:
//
//   fixed      — recovery off: every accrued repair credit is sent
//                immediately (the constant-bandwidth schedule)
//   nack       — recovery on, retransmissions off: credits are banked and
//                released only against received NACKs; the watchdog
//                degrades to the fixed schedule when feedback dies
//   nack+retx  — nack plus whole-frame sideband retransmissions of
//                deadline-feasible frames (reported, not gated: resends
//                spend extra bandwidth, so it is not an equal-overhead
//                comparison)
//
// Arms share per-trial seeds, so every comparison is paired.  Claims
// checked (exit nonzero on failure, so CI enforces them):
//   N1  on every non-blackout cell the nack arm's mean playout CLF is no
//       worse than fixed (small tie epsilon) at no more measured data
//       bandwidth — reactive bursts beat the fixed trickle, for free;
//   N2  under full feedback blackout the nack arm degrades gracefully:
//       mean playout CLF within noise of fixed, NACK traffic bounded by
//       the retry cap (windows * (max_retries + 1) per trial — no retry
//       storm), and the watchdog flips most windows to proactive;
//   N3  the fixed arm is untouched by the recovery build: a rerun is
//       bit-exact and no nack_*/recovery_* metric key leaks into it.
//
// BENCH_nack.json carries the full grid plus the claims object.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"
#include "sim/stats.hpp"

using espread::exp::JsonWriter;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;

namespace {

constexpr std::size_t kWindows = 12;
constexpr std::uint64_t kSeedBase = 100;

/// Tie epsilon for N1: the paired mean-playout-CLF comparison may land
/// exactly at par on well-provisioned cells; a hair of slack keeps the
/// gate about regressions, not coin flips.
constexpr double kN1Eps = 0.05;
/// Noise band for N2: under blackout both arms run the same proactive
/// schedule except for the first watchdog_windows reactive windows, so
/// the paired means must agree to within a fraction of a CLF unit.
constexpr double kN2Eps = 0.25;

struct Cell {
    const char* arm;       ///< "fixed" | "nack" | "nack+retx"
    const char* blackout;  ///< "none" | "mid" | "full" (feedback path)
    double rtt_ms;
    std::size_t num;  ///< RLC overhead ratio per overhead_den sources
    std::size_t den;
    // Pooled results over all trials (paired seeds across arms).
    espread::sim::RunningStats pclf;  ///< per-window playout CLF
    std::uint64_t data_bits = 0;
    std::uint64_t sideband_sent = 0;
    std::uint64_t feedback_sent = 0;
    std::uint64_t playout_misses = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t nacks_serviced = 0;
    std::uint64_t repairs_sent = 0;
    std::uint64_t retx_packets = 0;
    std::uint64_t windows_proactive = 0;
    std::uint64_t packets_recovered = 0;
};

SessionConfig cell_config(const Cell& c, std::uint64_t seed) {
    SessionConfig cfg;
    cfg.stream.kind = espread::proto::StreamKind::kMjpeg;
    cfg.stream.ldus_per_window = 16;
    cfg.stream.frame_rate = 24.0;
    cfg.scheme = Scheme::kHybridSpreadRlc;
    cfg.rlc = {64, c.num, c.den};
    cfg.num_windows = kWindows;
    cfg.seed = seed;
    cfg.collect_metrics = true;
    cfg.data_loss = {0.9, 0.45};
    cfg.data_link.propagation_delay =
        espread::sim::from_millis(c.rtt_ms / 2.0);
    cfg.feedback_link.propagation_delay =
        espread::sim::from_millis(c.rtt_ms / 2.0);
    // The gated pair compares repair scheduling alone; only the reported
    // third arm re-enables the retransmission path.
    cfg.retransmit_critical = std::strcmp(c.arm, "nack+retx") == 0;
    cfg.recovery.enabled = std::strcmp(c.arm, "fixed") != 0;
    if (std::strcmp(c.blackout, "mid") == 0) {
        cfg.blackout_feedback_windows(4, 7);
    } else if (std::strcmp(c.blackout, "full") == 0) {
        cfg.blackout_feedback_windows(0, kWindows - 1);
    }
    return cfg;
}

void run_cell(Cell& c, std::size_t trials) {
    for (std::size_t t = 0; t < trials; ++t) {
        const SessionResult r = run_session(cell_config(c, kSeedBase + t));
        for (const std::size_t clf : r.playout_window_clf) {
            c.pclf.add(static_cast<double>(clf));
        }
        c.data_bits += r.data_channel.bits_sent;
        c.sideband_sent += r.data_channel.sideband_sent;
        c.feedback_sent += r.feedback_channel.sent;
        c.playout_misses += r.metrics.counter("playout_misses");
        c.nacks_sent += r.metrics.counter("nack_requests_sent");
        c.nacks_serviced += r.metrics.counter("nack_requests_serviced");
        c.repairs_sent += r.metrics.counter("nack_repairs_sent");
        c.retx_packets += r.metrics.counter("nack_retx_packets");
        c.windows_proactive +=
            r.metrics.counter("recovery_windows_proactive");
        c.packets_recovered += r.metrics.counter("rlc_packets_recovered");
    }
}

const Cell* find_cell(const std::vector<Cell>& cells, const char* arm,
                      const char* blackout, double rtt_ms, std::size_t num) {
    for (const Cell& c : cells) {
        if (std::strcmp(c.arm, arm) == 0 &&
            std::strcmp(c.blackout, blackout) == 0 && c.rtt_ms == rtt_ms &&
            c.num == num) {
            return &c;
        }
    }
    return nullptr;
}

void append_cell(JsonWriter& json, const Cell& c) {
    json.begin_object();
    json.key("arm").value(c.arm);
    json.key("blackout").value(c.blackout);
    json.key("rtt_ms").value(c.rtt_ms);
    json.key("overhead_num").value(static_cast<std::uint64_t>(c.num));
    json.key("overhead_den").value(static_cast<std::uint64_t>(c.den));
    json.key("playout_clf_mean").value(c.pclf.mean());
    json.key("playout_clf_dev").value(c.pclf.deviation());
    json.key("playout_misses").value(c.playout_misses);
    json.key("data_bits_sent").value(c.data_bits);
    json.key("sideband_sent").value(c.sideband_sent);
    json.key("feedback_sent").value(c.feedback_sent);
    json.key("packets_recovered").value(c.packets_recovered);
    json.key("nack_requests_sent").value(c.nacks_sent);
    json.key("nack_requests_serviced").value(c.nacks_serviced);
    json.key("nack_repairs_sent").value(c.repairs_sent);
    json.key("nack_retx_packets").value(c.retx_packets);
    json.key("recovery_windows_proactive").value(c.windows_proactive);
    json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
    using espread::exp::RunnerOptions;
    RunnerOptions defaults;
    defaults.trials = 32;
    const RunnerOptions opts =
        espread::exp::parse_runner_args(argc, argv, defaults);
    const std::string out =
        opts.out_path.empty() ? "BENCH_nack.json" : opts.out_path;

    const char* arms[] = {"fixed", "nack", "nack+retx"};
    const char* blackouts[] = {"none", "mid", "full"};
    const double rtts[] = {23.0, 60.0};
    const std::pair<std::size_t, std::size_t> overheads[] = {{1, 10}, {2, 10}};

    std::vector<Cell> cells;
    for (const char* b : blackouts) {
        for (const double rtt : rtts) {
            for (const auto& [num, den] : overheads) {
                for (const char* arm : arms) {
                    Cell c;
                    c.arm = arm;
                    c.blackout = b;
                    c.rtt_ms = rtt;
                    c.num = num;
                    c.den = den;
                    cells.push_back(c);
                }
            }
        }
    }

    std::printf(
        "== bench_nack: receiver-driven repair vs. fixed credit schedule ==\n");
    std::printf("   (%zu trials x %zu windows per cell, paired seeds)\n\n",
                opts.trials, kWindows);
    std::printf("%-9s | %-5s | %6s | %8s | %9s | %9s | %6s | %7s | %5s\n",
                "arm", "bkout", "rtt ms", "overhead", "pclf mean", "data bits",
                "nacks", "repairs", "proact");
    std::printf("----------+-------+--------+----------+-----------+-----------"
                "+--------+---------+------\n");
    for (Cell& c : cells) {
        run_cell(c, opts.trials);
        std::printf(
            "%-9s | %-5s | %6.0f | %7.0f%% | %9.3f | %9llu | %6llu | %7llu | "
            "%5llu\n",
            c.arm, c.blackout, c.rtt_ms,
            100.0 * static_cast<double>(c.num) / static_cast<double>(c.den),
            c.pclf.mean(), static_cast<unsigned long long>(c.data_bits),
            static_cast<unsigned long long>(c.nacks_sent),
            static_cast<unsigned long long>(c.repairs_sent),
            static_cast<unsigned long long>(c.windows_proactive));
    }

    // N1: on every non-blackout cell, receiver-driven repair matches or
    // beats the fixed schedule on mean playout CLF while sending no more
    // data-path bits (banked credits never exceed the fixed accrual, so
    // the comparison is at equal-or-less measured bandwidth overhead).
    bool n1 = true;
    for (const double rtt : rtts) {
        for (const auto& [num, den] : overheads) {
            (void)den;
            const Cell* fixed = find_cell(cells, "fixed", "none", rtt, num);
            const Cell* nack = find_cell(cells, "nack", "none", rtt, num);
            if (nack->pclf.mean() > fixed->pclf.mean() + kN1Eps) {
                n1 = false;
                std::fprintf(stderr,
                             "bench_nack: N1 FAIL rtt=%.0f ovh=%zu nack pclf "
                             "%.3f > fixed %.3f\n",
                             rtt, num, nack->pclf.mean(), fixed->pclf.mean());
            }
            if (nack->data_bits > fixed->data_bits) {
                n1 = false;
                std::fprintf(stderr,
                             "bench_nack: N1 FAIL rtt=%.0f ovh=%zu nack bits "
                             "%llu > fixed %llu\n",
                             rtt, num,
                             static_cast<unsigned long long>(nack->data_bits),
                             static_cast<unsigned long long>(
                                 fixed->data_bits));
            }
        }
    }

    // N2: full feedback blackout — graceful degradation, no retry storm.
    // The per-trial NACK bound is windows * (max_retries + 1); the default
    // RecoveryConfig carries max_retries = 3.
    const std::uint64_t nack_cap_per_trial =
        kWindows * (SessionConfig{}.recovery.max_retries + 1);
    bool n2 = true;
    for (const double rtt : rtts) {
        for (const auto& [num, den] : overheads) {
            (void)den;
            const Cell* fixed = find_cell(cells, "fixed", "full", rtt, num);
            const Cell* nack = find_cell(cells, "nack", "full", rtt, num);
            const double diff = nack->pclf.mean() - fixed->pclf.mean();
            if (std::fabs(diff) > kN2Eps) {
                n2 = false;
                std::fprintf(stderr,
                             "bench_nack: N2 FAIL rtt=%.0f ovh=%zu blackout "
                             "pclf diff %.3f exceeds %.3f\n",
                             rtt, num, diff, kN2Eps);
            }
            if (nack->nacks_sent > opts.trials * nack_cap_per_trial) {
                n2 = false;
                std::fprintf(
                    stderr,
                    "bench_nack: N2 FAIL rtt=%.0f ovh=%zu retry storm: %llu "
                    "nacks > cap %llu\n",
                    rtt, num,
                    static_cast<unsigned long long>(nack->nacks_sent),
                    static_cast<unsigned long long>(opts.trials *
                                                    nack_cap_per_trial));
            }
            if (nack->windows_proactive == 0) {
                n2 = false;
                std::fprintf(stderr,
                             "bench_nack: N2 FAIL rtt=%.0f ovh=%zu watchdog "
                             "never degraded to proactive\n",
                             rtt, num);
            }
        }
    }

    // N3: zero-cost-off — the fixed arm rerun is bit-exact and carries no
    // recovery-plane metric keys.
    bool n3 = true;
    {
        Cell rerun = cells[0];  // fixed / none / 23ms / 1:10
        rerun.pclf = {};
        rerun.data_bits = rerun.sideband_sent = rerun.feedback_sent = 0;
        rerun.playout_misses = rerun.packets_recovered = 0;
        run_cell(rerun, opts.trials);
        const Cell& first = cells[0];
        if (rerun.pclf.mean() != first.pclf.mean() ||
            rerun.data_bits != first.data_bits ||
            rerun.feedback_sent != first.feedback_sent ||
            rerun.playout_misses != first.playout_misses) {
            n3 = false;
            std::fprintf(stderr, "bench_nack: N3 FAIL fixed rerun diverged\n");
        }
        const SessionResult probe =
            run_session(cell_config(first, kSeedBase));
        for (const auto& [name, value] : probe.metrics.counters()) {
            (void)value;
            if (name.rfind("nack_", 0) == 0 ||
                name.rfind("recovery_", 0) == 0 ||
                name.rfind("data_sideband", 0) == 0) {
                n3 = false;
                std::fprintf(stderr,
                             "bench_nack: N3 FAIL fixed arm carries %s\n",
                             name.c_str());
            }
        }
        // RLC repairs legitimately ride the side band in every arm; only
        // NACK traffic must be absent from the fixed arm.
        if (first.nacks_sent != 0) {
            n3 = false;
            std::fprintf(stderr,
                         "bench_nack: N3 FAIL fixed arm sent NACK traffic\n");
        }
    }

    std::printf("\nclaims: N1 nack<=fixed off-blackout %s, N2 graceful "
                "blackout degradation %s, N3 fixed arm bit-exact %s\n",
                n1 ? "PASS" : "FAIL", n2 ? "PASS" : "FAIL",
                n3 ? "PASS" : "FAIL");

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("nack");
    json.key("trials").value(static_cast<std::uint64_t>(opts.trials));
    json.key("windows").value(static_cast<std::uint64_t>(kWindows));
    json.key("nack_cap_per_trial").value(nack_cap_per_trial);
    json.key("claims").begin_object();
    json.key("nack_matches_fixed_bandwidth_beats_clf").value(n1);
    json.key("blackout_degrades_gracefully").value(n2);
    json.key("fixed_arm_bit_exact").value(n3);
    json.end_object();
    json.key("cells").begin_array();
    for (const Cell& c : cells) append_cell(json, c);
    json.end_array();
    json.end_object();
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    return (n1 && n2 && n3) ? EXIT_SUCCESS : EXIT_FAILURE;
}
