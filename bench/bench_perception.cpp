// Perception-driven scoreboard: the user study the paper builds on places
// the annoyance threshold at 2 consecutive lost frames for video and 3
// LDUs for audio.  This bench scores each scheme by the fraction of buffer
// windows that stay within threshold — the quantity a viewer actually
// experiences — across the burstiness sweep.
#include <cstdio>

#include "media/ldu.hpp"
#include "protocol/session.hpp"

using espread::media::kAudioClfThreshold;
using espread::media::kVideoClfThreshold;
using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::StreamKind;

namespace {

double within_threshold(const espread::proto::SessionResult& r, std::size_t k) {
    std::size_t good = 0;
    for (const auto& w : r.windows) {
        if (w.clf <= k) ++good;
    }
    return 100.0 * static_cast<double>(good) /
           static_cast<double>(r.windows.size());
}

}  // namespace

int main() {
    std::printf("== perception scoreboard: %% of windows within the annoyance threshold ==\n\n");

    std::printf("MPEG video (threshold CLF <= %zu), 100 windows each:\n", kVideoClfThreshold);
    std::printf(" P_bad | in-order | layered | layered+IBO | layered+CPO\n");
    std::printf("-------+----------+---------+-------------+------------\n");
    for (const double pbad : {0.4, 0.5, 0.6, 0.7, 0.8}) {
        std::printf("  %.1f  |", pbad);
        for (const Scheme scheme :
             {Scheme::kInOrder, Scheme::kLayeredNoScramble, Scheme::kLayeredIbo,
              Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.scheme = scheme;
            cfg.data_loss = {0.92, pbad};
            cfg.feedback_loss = {0.92, pbad};
            cfg.num_windows = 100;
            cfg.seed = 42;
            std::printf("   %5.1f%% |", within_threshold(run_session(cfg),
                                                         kVideoClfThreshold));
        }
        std::printf("\n");
    }

    std::printf("\naudio (threshold CLF <= %zu), 8-LDU windows, narrowband link:\n",
                kAudioClfThreshold);
    std::printf(" P_bad | in-order | spread\n");
    std::printf("-------+----------+-------\n");
    for (const double pbad : {0.4, 0.6, 0.8}) {
        std::printf("  %.1f  |", pbad);
        for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.stream.kind = StreamKind::kAudio;
            cfg.stream.ldus_per_window = 8;
            cfg.stream.frame_rate = espread::media::AudioLdu::ldu_rate();
            cfg.packet_bits = espread::media::AudioLdu::kBitsPerLdu;
            cfg.data_link.bandwidth_bps = 128e3;
            cfg.feedback_link.bandwidth_bps = 128e3;
            cfg.scheme = scheme;
            cfg.data_loss = {0.92, pbad};
            cfg.feedback_loss = {0.92, pbad};
            cfg.num_windows = 200;
            cfg.seed = 42;
            std::printf("   %5.1f%% |", within_threshold(run_session(cfg),
                                                         kAudioClfThreshold));
        }
        std::printf("\n");
    }

    std::printf(
        "\nexpected shape: every ordering improvement (layering, then\n"
        "scrambling) buys viewers more within-threshold windows, with the\n"
        "gap widening as the network gets burstier — until losses are so\n"
        "heavy that no ordering can save the window.\n");
    return 0;
}
