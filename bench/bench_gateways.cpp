// Reproduces the paper's §1 motivation from first principles: bursty loss
// is what drop-tail bottleneck queues DO to a media stream, RED gateways
// de-cluster it, and error spreading converts drop-tail's bursts into
// isolated playback losses either way.
//
// Pipeline: a 24-frame window's LDUs pass one per slot through a congested
// bottleneck shared with on/off cross-traffic; the resulting per-LDU loss
// mask is un-permuted and scored with the CLF metric — in-order vs k-CPO.
#include <cstdio>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/metrics.hpp"
#include "net/gateway.hpp"
#include "sim/stats.hpp"

using espread::net::Gateway;
using espread::net::GatewayConfig;
using espread::net::QueueDiscipline;

namespace {

struct Row {
    double loss_rate = 0.0;
    double conditional = 0.0;
    double mean_burst = 0.0;
    espread::sim::RunningStats clf_in_order;
    espread::sim::RunningStats clf_spread;
};

Row run(QueueDiscipline d) {
    constexpr std::size_t kWindow = 24;
    constexpr std::size_t kWindows = 4000;
    GatewayConfig cfg;
    cfg.discipline = d;
    Gateway gateway{cfg, espread::sim::Rng{7}};
    const espread::Permutation spread =
        espread::calculate_permutation(kWindow, 6).perm;

    Row row;
    std::size_t lost = 0;
    std::size_t after_loss = 0;
    std::size_t after_loss_lost = 0;
    espread::sim::RunningStats bursts;
    std::size_t burst_run = 0;
    bool prev = false;

    for (std::size_t w = 0; w < kWindows; ++w) {
        espread::LossMask tx(kWindow, true);
        for (std::size_t slot = 0; slot < kWindow; ++slot) {
            const bool dropped = gateway.offer_packet();
            tx[slot] = !dropped;
            if (dropped) {
                ++lost;
                ++burst_run;
            } else if (burst_run > 0) {
                bursts.add(static_cast<double>(burst_run));
                burst_run = 0;
            }
            if (prev) {
                ++after_loss;
                if (dropped) ++after_loss_lost;
            }
            prev = dropped;
        }
        // In-order: the tx mask IS the playback mask.
        row.clf_in_order.add(
            static_cast<double>(espread::consecutive_loss(tx)));
        // Spread: slot s carried playback index spread[s].
        espread::LossMask playback(kWindow, true);
        for (std::size_t slot = 0; slot < kWindow; ++slot) {
            playback[spread[slot]] = tx[slot];
        }
        row.clf_spread.add(
            static_cast<double>(espread::consecutive_loss(playback)));
    }
    row.loss_rate =
        static_cast<double>(lost) / static_cast<double>(kWindows * kWindow);
    row.conditional = after_loss == 0 ? 0.0
                                      : static_cast<double>(after_loss_lost) /
                                            static_cast<double>(after_loss);
    row.mean_burst = bursts.mean();
    return row;
}

}  // namespace

int main() {
    std::printf("== §1 motivation: gateway discipline -> loss burstiness -> CLF ==\n");
    std::printf("(congested bottleneck, on/off cross traffic, 4000 windows of 24 LDUs)\n\n");
    std::printf("discipline | loss  | P(loss|loss) | mean burst | CLF in-order m/d | CLF spread m/d\n");
    std::printf("-----------+-------+--------------+------------+------------------+---------------\n");
    for (const QueueDiscipline d :
         {QueueDiscipline::kDropTail, QueueDiscipline::kRed}) {
        const Row row = run(d);
        std::printf("%-10s | %.3f |    %.3f     |    %.2f    |   %5.2f / %-5.2f  | %5.2f / %.2f\n",
                    d == QueueDiscipline::kDropTail ? "drop-tail" : "RED",
                    row.loss_rate, row.conditional, row.mean_burst,
                    row.clf_in_order.mean(), row.clf_in_order.deviation(),
                    row.clf_spread.mean(), row.clf_spread.deviation());
    }
    std::printf(
        "\nexpected shape (paper §1): drop-tail clusters its drops\n"
        "(P(loss|loss) far above the marginal rate, long bursts, high CLF);\n"
        "RED de-clusters them; error spreading pulls CLF toward 1 under\n"
        "either discipline without touching the loss rate.\n");
    return 0;
}
