// Reproduces Figure 12 (referenced by §5.2, printed in TR99-005): CLF vs
// the number of GOPs W in the server's buffer.
//
// Setup per the surviving prose: P_bad = 0.6, BW 1.2 Mb/s; the paper uses
// two buffer sizes whose start-up delays (W * GOP / fps) are about one and
// a few seconds; we sweep W in {1, 2, 4, 8}.  Expected shape: scrambled
// mean and deviation beat un-scrambled at every W, and a larger buffer
// helps the scrambled scheme (a bigger window spreads a given burst more
// thinly) — the "error spreading scales well" consistency claim.
#include <cstdio>

#include "protocol/buffer_req.hpp"
#include "protocol/session.hpp"

using espread::proto::buffer_requirement;
using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

int main() {
    std::printf("== Figure 12: CLF vs buffer size W (P_bad = 0.6, BW 1.2 Mb/s) ==\n\n");
    std::printf(" W | startup | unscrambled mean/dev | scrambled mean/dev | scr. bound (last)\n");
    std::printf("---+---------+----------------------+--------------------+------------------\n");

    for (const std::size_t w : {1u, 2u, 4u, 8u}) {
        double plain_mean = 0, plain_dev = 0, spread_mean = 0, spread_dev = 0;
        std::size_t last_bound = 0;
        for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.scheme = scheme;
            cfg.gops_per_window = w;
            cfg.data_loss = {0.92, 0.6};
            cfg.feedback_loss = {0.92, 0.6};
            cfg.num_windows = 100;
            cfg.seed = 42;
            const auto r = run_session(cfg);
            const auto s = r.clf_stats();
            if (scheme == Scheme::kInOrder) {
                plain_mean = s.mean();
                plain_dev = s.deviation();
            } else {
                spread_mean = s.mean();
                spread_dev = s.deviation();
                last_bound = r.windows.back().bound_used;
            }
        }
        const auto req = buffer_requirement(
            espread::media::movie_stats("Jurassic Park"), w);
        std::printf("%2zu | %5.2f s |     %5.2f / %-5.2f     |    %5.2f / %-5.2f   | %zu\n",
                    w, req.startup_delay_s, plain_mean, plain_dev, spread_mean,
                    spread_dev, last_bound);
    }
    std::printf(
        "\nexpected shape (paper): both mean and deviation of CLF are better\n"
        "under scrambling at every buffer size; the improvement is consistent\n"
        "across W (\"error spreading scales well in various scenarios\").\n");
    return 0;
}
