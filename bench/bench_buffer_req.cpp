// Reproduces the §4.1 buffer-requirement numbers for the five movie traces
// the paper lists, and checks the synthetic trace generator's calibration
// against the published maximum GOP sizes.
#include <cstdio>

#include "media/trace.hpp"
#include "protocol/buffer_req.hpp"

using espread::media::movie_catalog;
using espread::media::TraceGenerator;
using espread::proto::buffer_requirement;

int main() {
    std::printf("== §4.1: buffer requirements per movie (N = W * maxGOP) ==\n\n");
    std::printf("%-22s | GOP | fps | maxGOP (bits) | W=2 buffer | startup | synth maxGOP (100 GOPs)\n",
                "movie");
    std::printf("-----------------------+-----+-----+---------------+------------+---------+------------------------\n");
    for (const auto& movie : movie_catalog()) {
        const auto req = buffer_requirement(movie, 2);
        TraceGenerator gen{movie, 11};
        const auto frames = gen.generate(100);
        const std::size_t synth = espread::media::max_gop_bits(frames);
        std::printf("%-22s | %3zu | %3.0f | %13zu | %7zu KB | %5.2f s | %zu (%.0f%% of published)\n",
                    movie.name.c_str(), movie.gop_size, movie.fps,
                    movie.max_gop_bits, req.bytes / 1024, req.startup_delay_s,
                    synth, 100.0 * static_cast<double>(synth) /
                               static_cast<double>(movie.max_gop_bits));
    }
    std::printf(
        "\npaper's example: Star Wars' 932710-bit max GOP is ~113 KB, so a\n"
        "W-GOP buffer costs W * 113 KB — \"quite viable\".  (Jurassic Park's\n"
        "published 62776 bits is treated as an OCR-dropped digit: 627760.)\n");
    return 0;
}
