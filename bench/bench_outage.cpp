// Feedback-outage robustness: adaptation governor vs frozen estimator.
//
// Setup: the Figure 8 configuration (Jurassic Park trace, RTT 23 ms,
// BW 1.2 Mb/s, GOP 12, W = 2, packet 16384 bits, Gilbert(0.92, 0.6) on
// both directions, 100 buffer windows) hit by a congestion episode
// starting at window 20: a scripted 100% feedback blackout, and — the
// same episode, seen from the data direction — one ~180 ms forced loss
// burst per blackout window on the data path (~13 consecutive packets,
// 4-5 consecutive frames).  The episode is exactly the regime the
// adaptive loop cannot see: the data channel turns bursty at the moment
// the feedback that would report it dies.  Sweeps blackout length x
// governor miss budget; every cell compares
//
//   frozen   — governor disabled (the pre-governor behavior: the Eq. 1
//              estimate silently freezes at its last pre-outage value,
//              typically b = 2..4 on this trace), vs
//   governed — AdaptationGovernor enabled with the cell's miss budget,
//              which decays to and then pins the no-feedback prior
//              b = n/2 = 8 for the outage and ramps back afterwards.
//
// Claim under test (tracked in BENCH_outage.json): the governed session's
// mean per-window CLF is no worse than the frozen estimator's on every
// cell.  The frozen stale bound under-spreads the episode's 4-5 frame
// bursts into consecutive playback losses; the prior is bandwidth-neutral
// and wide enough to spread them.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::proto::SessionConfig;

namespace {

constexpr std::size_t kBlackoutStart = 20;

SessionConfig outage_config(std::size_t blackout_windows, std::uint64_t seed) {
    SessionConfig cfg;  // defaults already match the Fig. 8 setup
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.num_windows = 100;
    cfg.seed = seed;
    const std::size_t last = kBlackoutStart + blackout_windows - 1;
    cfg.blackout_feedback_windows(kBlackoutStart, last);
    // The data-direction face of the same congestion episode: one forced
    // ~180 ms loss burst per blackout window, placed mid-window so it lands
    // in the non-critical span of the plan.  Identical in both arms; only
    // the governor differs.
    namespace sim = espread::sim;
    const sim::SimTime T = cfg.window_duration();
    const sim::SimTime burst = sim::from_millis(180.0);
    for (std::size_t w = kBlackoutStart; w <= last; ++w) {
        const sim::SimTime from =
            static_cast<sim::SimTime>(w) * T + (T * 45) / 100;
        cfg.data_impairment.blackouts.push_back({from, from + burst});
    }
    return cfg;
}

SessionConfig governed_config(std::size_t blackout_windows,
                              std::size_t miss_budget, std::uint64_t seed) {
    SessionConfig cfg = outage_config(blackout_windows, seed);
    cfg.governor.enabled = true;
    cfg.governor.miss_budget = miss_budget;
    // Transparent steady-state settings: a window-sized max_step and
    // immediate hysteresis keep the governed session identical to the
    // frozen baseline until the watchdog actually fires, so the sweep
    // isolates the outage response.
    cfg.governor.max_step = 64;
    cfg.governor.hysteresis_windows = 1;
    return cfg;
}

struct Cell {
    std::size_t miss_budget;
    TrialSummary governed;
};

struct Panel {
    std::size_t blackout_windows;
    TrialSummary frozen;
    std::vector<Cell> cells;
};

}  // namespace

int main(int argc, char** argv) {
    const auto opts = espread::exp::parse_runner_args(argc, argv);
    MonteCarloRunner runner(opts);
    constexpr std::uint64_t kSeed = 42;
    const std::size_t lengths[] = {4, 8, 16};
    const std::size_t budgets[] = {1, 2, 4};

    std::printf("== Feedback outage: governed vs frozen adaptation ==\n");
    std::printf("   (Fig. 8 setup, 100%% feedback blackout from window %zu;\n"
                "    %zu trials per cell, %zu threads)\n\n",
                kBlackoutStart, runner.trials(), runner.threads());

    std::vector<Panel> panels;
    double wall = 0.0;
    std::size_t windows = 0;
    for (const std::size_t len : lengths) {
        Panel panel;
        panel.blackout_windows = len;
        panel.frozen = runner.run(outage_config(len, kSeed));
        wall += panel.frozen.wall_seconds;
        windows += panel.frozen.total_windows;
        for (const std::size_t budget : budgets) {
            Cell cell;
            cell.miss_budget = budget;
            cell.governed = runner.run(governed_config(len, budget, kSeed));
            wall += cell.governed.wall_seconds;
            windows += cell.governed.total_windows;
            panel.cells.push_back(cell);
        }
        panels.push_back(panel);
    }

    std::printf("blackout  miss    frozen CLF      governed CLF    delta\n");
    std::printf("windows   budget  mean (dev)      mean (dev)      (governed - frozen)\n");
    bool all_bounded = true;
    for (const Panel& p : panels) {
        for (const Cell& c : p.cells) {
            const double frozen = p.frozen.window_clf.mean();
            const double governed = c.governed.window_clf.mean();
            const double delta = governed - frozen;
            all_bounded = all_bounded && governed <= frozen + 1e-12;
            std::printf("%-9zu %-7zu %-6.3f (%.3f)   %-6.3f (%.3f)   %+.4f%s\n",
                        p.blackout_windows, c.miss_budget, frozen,
                        p.frozen.window_clf.deviation(), governed,
                        c.governed.window_clf.deviation(), delta,
                        delta > 1e-12 ? "  <-- REGRESSION" : "");
        }
    }
    std::printf("\nclaim %s: governed mean CLF <= frozen mean CLF on every cell\n",
                all_bounded ? "HOLDS" : "VIOLATED");
    std::printf("throughput: %zu windows in %.2f s = %.0f windows/sec\n",
                windows, wall,
                wall > 0 ? static_cast<double>(windows) / wall : 0.0);

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("outage");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    json.key("blackout_start").value(static_cast<std::uint64_t>(kBlackoutStart));
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second")
        .value(wall > 0 ? static_cast<double>(windows) / wall : 0.0);
    json.key("governed_bounded_by_frozen").value(all_bounded);
    json.key("panels").begin_array();
    for (const Panel& p : panels) {
        json.begin_object();
        json.key("blackout_windows")
            .value(static_cast<std::uint64_t>(p.blackout_windows));
        json.key("frozen");
        espread::exp::append_summary(json, p.frozen);
        json.key("governed").begin_array();
        for (const Cell& c : p.cells) {
            json.begin_object();
            json.key("miss_budget")
                .value(static_cast<std::uint64_t>(c.miss_budget));
            json.key("clf_regression")
                .value(c.governed.window_clf.mean() - p.frozen.window_clf.mean());
            json.key("summary");
            espread::exp::append_summary(json, c.governed);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    const std::string out =
        opts.out_path.empty() ? "BENCH_outage.json" : opts.out_path;
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    if (!opts.trace_path.empty()) {
        // One traced governed realization of the harshest cell (16-window
        // blackout, budget 1) for Perfetto / chrome://tracing: the
        // GovernorState track shows the Fallback/Recovering ladder.
        espread::exp::write_session_trace(governed_config(16, 1, kSeed),
                                          opts.trace_path);
        std::printf("wrote %s\n", opts.trace_path.c_str());
    }
    return all_bounded ? 0 : 1;
}
