// Spreading vs. coding: the sliding-window RLC arm on the Fig. 8 channel.
//
// The paper's answer to bursty loss is zero-overhead error *spreading* —
// reorder transmissions so consecutive playback losses become isolated
// ones.  The classical alternative spends bandwidth instead: forward
// error correction.  This bench puts the two (and their hybrid) on the
// same Gilbert(0.92, 0.6) channel and sweeps repair overhead x encoding
// window:
//
//   identity — in-order transmission, no repairs (the floor)
//   spread   — k-CPO error spreading, zero overhead (the paper's scheme)
//   rlc      — in-order + sliding-window GF(256) random-linear repairs
//   hybrid   — spread *then* code: k-CPO order with RLC repairs on top
//
// Per cell: pooled mean/p99 window CLF, recovery counts, measured
// bandwidth overhead (repair bits / data bits), and the decode and
// in-order delivery delay histograms of the coded arms.  Claims checked
// (exit nonzero on failure, so CI enforces them):
//   C1  at every overhead >= 5%, some rlc window beats identity on mean
//       CLF (wide windows at low overhead are under-provisioned on this
//       channel and only get reported, not gated);
//   C2  the hybrid beats pure rlc coding in at least one cell;
//   C3  the zero-overhead arms are bit-exact reruns (uncoded sessions
//       carry no rlc_* metric keys and render byte-identically).
//
// BENCH_fec.json carries the grid plus two perf-gate keys:
// windows_per_second (sweep throughput) and gf256_mul_mbytes_per_second
// (the table-driven multiply kernel, floored in bench/baselines).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "fec/gf256.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

namespace {

struct Cell {
    const char* arm;
    Scheme scheme;
    std::size_t window;  ///< RLC encoding window (0 for uncoded arms)
    std::size_t num;     ///< overhead ratio numerator (0 for uncoded arms)
    std::size_t den;
    TrialSummary s;
};

SessionConfig cell_config(const Cell& c) {
    SessionConfig cfg;  // defaults are the Fig. 8 setup
    cfg.scheme = c.scheme;
    cfg.num_windows = 60;
    cfg.collect_metrics = true;
    cfg.seed = 42;
    if (c.window > 0) {
        cfg.rlc.window_packets = c.window;
        cfg.rlc.overhead_num = c.num;
        cfg.rlc.overhead_den = c.den;
    }
    return cfg;
}

/// Measured throughput of the nibble-sliced GF(256) multiply kernel over
/// a cache-resident row, in MB/s of source bytes processed.
double gf_kernel_mbytes_per_second() {
    constexpr std::size_t kRow = 1 << 14;
    std::vector<std::uint8_t> dst(kRow, 0x5A);
    std::vector<std::uint8_t> src(kRow);
    for (std::size_t i = 0; i < kRow; ++i) {
        src[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    using clock = std::chrono::steady_clock;
    // Warm the tables, then time enough passes to dominate clock noise.
    for (int c = 2; c < 34; ++c) {
        espread::fec::gf_mul_row_add(dst.data(), src.data(), kRow,
                                     static_cast<std::uint8_t>(c));
    }
    constexpr std::size_t kPasses = 4096;
    const auto t0 = clock::now();
    for (std::size_t p = 0; p < kPasses; ++p) {
        // Coefficients 2.. keep the slicing path (not the XOR or no-op
        // special cases) under test.
        espread::fec::gf_mul_row_add(dst.data(), src.data(), kRow,
                                     static_cast<std::uint8_t>(2 + (p & 0x7F)));
    }
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    // Fold the result into a live value so the loop cannot be elided.
    std::uint8_t sink = 0;
    for (const std::uint8_t b : dst) sink = static_cast<std::uint8_t>(sink ^ b);
    if (sink == 0xFF) std::printf(" ");
    const double bytes = static_cast<double>(kRow) * kPasses;
    return secs > 0.0 ? bytes / secs / 1e6 : 0.0;
}

double counter_ratio(const TrialSummary& s, const char* a, const char* b) {
    const double den = static_cast<double>(s.metrics.counter(b));
    return den > 0.0 ? static_cast<double>(s.metrics.counter(a)) / den : 0.0;
}

void append_cell(JsonWriter& json, const Cell& c) {
    json.begin_object();
    json.key("arm").value(c.arm);
    json.key("window").value(static_cast<std::uint64_t>(c.window));
    json.key("overhead_num").value(static_cast<std::uint64_t>(c.num));
    json.key("overhead_den").value(static_cast<std::uint64_t>(c.den));
    json.key("clf_mean").value(c.s.window_clf.mean());
    json.key("clf_p99").value(
        static_cast<std::int64_t>(c.s.clf_histogram.quantile(0.99)));
    if (c.window > 0) {
        json.key("repairs_sent").value(c.s.metrics.counter("rlc_repairs_sent"));
        json.key("packets_recovered")
            .value(c.s.metrics.counter("rlc_packets_recovered"));
        json.key("packets_unrecovered")
            .value(c.s.metrics.counter("rlc_packets_unrecovered"));
        json.key("bandwidth_overhead")
            .value(counter_ratio(c.s, "rlc_repair_bits_sent", "data_bits_sent"));
        const espread::sim::Histogram* dec =
            c.s.metrics.find_histogram("rlc_decode_delay_ms");
        const espread::sim::Histogram* ord =
            c.s.metrics.find_histogram("rlc_in_order_delay_ms");
        if (dec != nullptr) {
            json.key("decode_delay_ms_mean").value(dec->mean());
            json.key("decode_delay_ms_p99")
                .value(static_cast<std::int64_t>(dec->quantile(0.99)));
        }
        if (ord != nullptr) {
            json.key("in_order_delay_ms_mean").value(ord->mean());
            json.key("in_order_delay_ms_p99")
                .value(static_cast<std::int64_t>(ord->quantile(0.99)));
        }
    }
    json.key("summary");
    espread::exp::append_summary(json, c.s);
    json.end_object();
}

// Deterministic view of a TrialSummary: the full append_summary JSON with
// the two wall-clock timing fields removed, so reruns of the same config
// can be compared byte-for-byte.
std::string summary_render(const TrialSummary& s) {
    JsonWriter json;
    espread::exp::append_summary(json, s);
    std::string text = json.str();
    for (const char* key : {"\"wall_seconds\":", "\"windows_per_second\":"}) {
        const std::size_t at = text.find(key);
        if (at == std::string::npos) continue;
        const std::size_t end = text.find(',', at);
        text.erase(at, end == std::string::npos ? std::string::npos
                                                : end - at + 1);
    }
    return text;
}

}  // namespace

int main(int argc, char** argv) {
    namespace sim = espread::sim;
    using espread::exp::RunnerOptions;
    RunnerOptions defaults;
    defaults.trials = 24;
    const RunnerOptions opts =
        espread::exp::parse_runner_args(argc, argv, defaults);
    MonteCarloRunner runner(opts);
    const std::string out =
        opts.out_path.empty() ? "BENCH_fec.json" : opts.out_path;

    const std::size_t windows[] = {32, 96};
    const std::pair<std::size_t, std::size_t> overheads[] = {
        {1, 20}, {1, 10}, {1, 5}};  // 5%, 10%, 20%

    std::vector<Cell> cells;
    cells.push_back({"identity", Scheme::kInOrder, 0, 0, 1, {}});
    cells.push_back({"spread", Scheme::kLayeredSpread, 0, 0, 1, {}});
    for (const std::size_t w : windows) {
        for (const auto& [num, den] : overheads) {
            cells.push_back({"rlc", Scheme::kRlc, w, num, den, {}});
            cells.push_back(
                {"hybrid", Scheme::kHybridSpreadRlc, w, num, den, {}});
        }
    }

    std::printf("== bench_fec: spreading vs. coding on Gilbert(0.92, 0.6) ==\n");
    std::printf("   (%zu trials x 60 windows per cell, %zu threads)\n\n",
                runner.trials(), runner.threads());
    std::printf("%-8s | %6s | %8s | %8s | %7s | %9s | %11s\n", "arm", "window",
                "overhead", "clf mean", "clf p99", "recovered",
                "ord delay ms");
    std::printf("---------+--------+----------+----------+---------+-----------+------------\n");

    double wall = 0.0;
    std::size_t total_windows = 0;
    for (Cell& c : cells) {
        c.s = runner.run(cell_config(c));
        wall += c.s.wall_seconds;
        total_windows += c.s.total_windows;
        const sim::Histogram* ord =
            c.s.metrics.find_histogram("rlc_in_order_delay_ms");
        std::printf("%-8s | %6zu | %7.0f%% | %8.3f | %7lld | %9llu | %11.2f\n",
                    c.arm, c.window,
                    c.num > 0 ? 100.0 * static_cast<double>(c.num) /
                                    static_cast<double>(c.den)
                              : 0.0,
                    c.s.window_clf.mean(),
                    static_cast<long long>(c.s.clf_histogram.quantile(0.99)),
                    static_cast<unsigned long long>(
                        c.s.metrics.counter("rlc_packets_recovered")),
                    ord != nullptr ? ord->mean() : 0.0);
    }

    const double gf_mbps = gf_kernel_mbytes_per_second();
    const double wps =
        wall > 0.0 ? static_cast<double>(total_windows) / wall : 0.0;
    std::printf("\ngf256 multiply kernel: %.0f MB/s; sweep: %.0f windows/sec\n",
                gf_mbps, wps);

    // C1: at every overhead level (all cells run >= 5%), some rlc window
    // size beats identity on mean CLF.  The claim is per overhead, not per
    // cell: a wide window at low overhead is structurally under-provisioned
    // on this channel (repairs per span below its expected losses, so rank
    // rarely covers the deficit) and sits at par with identity — the sweep
    // reports those cells but the provisioning choice is the operator's.
    const double identity_clf = cells[0].s.window_clf.mean();
    const double spread_clf = cells[1].s.window_clf.mean();
    bool c1 = true;
    for (const auto& [num, den] : overheads) {
        double best = std::numeric_limits<double>::infinity();
        for (const Cell& c : cells) {
            if (std::strcmp(c.arm, "rlc") == 0 && c.num == num &&
                c.den == den) {
                best = std::min(best, c.s.window_clf.mean());
            }
        }
        if (best >= identity_clf) {
            c1 = false;
            std::fprintf(stderr,
                         "bench_fec: C1 FAIL no rlc window at %zu/%zu beats "
                         "identity %.3f (best %.3f)\n",
                         num, den, identity_clf, best);
        }
    }

    // C2: spreading composes with coding — the hybrid beats pure rlc in
    // at least one (window, overhead) cell.
    bool c2 = false;
    for (std::size_t i = 2; i + 1 < cells.size(); i += 2) {
        if (cells[i + 1].s.window_clf.mean() < cells[i].s.window_clf.mean()) {
            c2 = true;
        }
    }
    if (!c2) {
        std::fprintf(stderr,
                     "bench_fec: C2 FAIL hybrid never beat pure rlc\n");
    }

    // C3: the zero-overhead arms are untouched by the FEC build: a rerun
    // renders byte-identically and no rlc_* metric key leaks into them.
    bool c3 = true;
    for (std::size_t i = 0; i < 2; ++i) {
        const TrialSummary rerun = runner.run(cell_config(cells[i]));
        if (summary_render(rerun) != summary_render(cells[i].s)) {
            c3 = false;
            std::fprintf(stderr, "bench_fec: C3 FAIL %s rerun diverged\n",
                         cells[i].arm);
        }
        for (const auto& [name, value] : cells[i].s.metrics.counters()) {
            (void)value;
            if (name.rfind("rlc_", 0) == 0) {
                c3 = false;
                std::fprintf(stderr,
                             "bench_fec: C3 FAIL uncoded arm %s carries %s\n",
                             cells[i].arm, name.c_str());
            }
        }
    }

    std::printf("claims: C1 rlc<identity %s, C2 hybrid wins a cell %s, "
                "C3 uncoded bit-exact %s\n",
                c1 ? "PASS" : "FAIL", c2 ? "PASS" : "FAIL",
                c3 ? "PASS" : "FAIL");

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("fec");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("windows_per_second").value(wps);
    json.key("gf256_mul_mbytes_per_second").value(gf_mbps);
    json.key("identity_clf_mean").value(identity_clf);
    json.key("spread_clf_mean").value(spread_clf);
    json.key("claims").begin_object();
    json.key("rlc_beats_identity").value(c1);
    json.key("hybrid_beats_rlc_somewhere").value(c2);
    json.key("uncoded_bit_exact").value(c3);
    json.end_object();
    json.key("cells").begin_array();
    for (const Cell& c : cells) append_cell(json, c);
    json.end_array();
    json.end_object();
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    return (c1 && c2 && c3) ? EXIT_SUCCESS : EXIT_FAILURE;
}
