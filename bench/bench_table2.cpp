// Reproduces paper Table 2 (§4.4): IBO vs k-CPO ordering of 8 B frames.
//
// CMT prioritizes B frames in Inverse Binary Order; the paper replaces IBO
// with the k-CPO order and argues IBO degrades once a burst exceeds half
// the B frames while k-CPO holds the theorem bound.  We print both orders
// and their exact worst-case CLF for every burst length, then settle the
// protocol-level question the combinatorial table cannot: over many
// independent Gilbert realizations (--trials=N, --threads=T via the
// Monte-Carlo runner), does the k-CPO window ordering beat IBO end to end?
// Results are persisted to BENCH_table2.json.
#include <cstdio>
#include <string>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

namespace {

SessionConfig session_config(Scheme scheme) {
    SessionConfig cfg;  // Fig. 8 defaults: Jurassic Park, 1.2 Mb/s, RTT 23 ms
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.scheme = scheme;
    cfg.num_windows = 100;
    cfg.seed = 42;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    constexpr std::size_t kN = 8;

    const espread::Permutation in_order = espread::Permutation::identity(kN);
    const espread::Permutation ibo = espread::ibo_order(kN);
    const espread::Permutation cpo_fixed = espread::residue_class_order(kN, 3);

    std::printf("== Table 2: 8-frame orderings ==\n\n");
    std::printf("In order : %s\n", in_order.to_string_one_based().c_str());
    std::printf("IBO      : %s   (paper: 01 05 03 07 02 06 04 08)\n",
                ibo.to_string_one_based().c_str());
    std::printf("k-CPO    : %s   (paper: 01 04 07 02 05 08 03 06)\n\n",
                cpo_fixed.to_string_one_based().c_str());

    std::printf("worst-case CLF by burst length b (window n = %zu):\n\n", kN);
    std::printf(" b | in-order | IBO | k-CPO(fixed) | calculatePermutation(8,b)\n");
    std::printf("---+----------+-----+--------------+--------------------------\n");
    for (std::size_t b = 1; b <= kN; ++b) {
        const auto best = espread::calculate_permutation(kN, b);
        std::printf("%2zu | %8zu | %3zu | %12zu | %10zu (stride %zu)\n", b,
                    espread::worst_case_clf(in_order, b),
                    espread::worst_case_clf(ibo, b),
                    espread::worst_case_clf(cpo_fixed, b), best.clf, best.stride);
    }
    std::printf(
        "\npaper's claim: IBO matches k-CPO while b <= half the frames, then\n"
        "degrades in the pathological region; k-CPO stays at the bound.\n");

    // ---- protocol-level IBO vs k-CPO over many channel realizations ----
    const auto opts = espread::exp::parse_runner_args(argc, argv);
    MonteCarloRunner runner(opts);
    std::printf(
        "\n== IBO vs k-CPO inside the full protocol "
        "(%zu trials x 100 windows, %zu threads) ==\n\n",
        runner.trials(), runner.threads());

    const TrialSummary s_ibo = runner.run(session_config(Scheme::kLayeredIbo));
    const TrialSummary s_cpo =
        runner.run(session_config(Scheme::kLayeredSpread));

    std::printf("            mean CLF  dev CLF   ALF     per-trial mean range\n");
    std::printf("IBO         %-9.2f %-8.2f %-7.3f [%.2f, %.2f]\n",
                s_ibo.window_clf.mean(), s_ibo.window_clf.deviation(),
                s_ibo.alf.mean(), s_ibo.clf_mean.min(), s_ibo.clf_mean.max());
    std::printf("k-CPO       %-9.2f %-8.2f %-7.3f [%.2f, %.2f]\n",
                s_cpo.window_clf.mean(), s_cpo.window_clf.deviation(),
                s_cpo.alf.mean(), s_cpo.clf_mean.min(), s_cpo.clf_mean.max());

    const double wall = s_ibo.wall_seconds + s_cpo.wall_seconds;
    const std::size_t windows = s_ibo.total_windows + s_cpo.total_windows;
    std::printf("\nthroughput: %zu windows in %.2f s = %.0f windows/sec\n",
                windows, wall, wall > 0 ? static_cast<double>(windows) / wall : 0.0);

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("table2");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second")
        .value(wall > 0 ? static_cast<double>(windows) / wall : 0.0);
    json.key("ibo");
    espread::exp::append_summary(json, s_ibo);
    json.key("kcpo");
    espread::exp::append_summary(json, s_cpo);
    json.end_object();
    const std::string out =
        opts.out_path.empty() ? "BENCH_table2.json" : opts.out_path;
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    if (!opts.trace_path.empty()) {
        espread::exp::write_session_trace(session_config(Scheme::kLayeredSpread),
                                          opts.trace_path);
        std::printf("wrote %s\n", opts.trace_path.c_str());
    }
    return 0;
}
