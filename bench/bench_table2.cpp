// Reproduces paper Table 2 (§4.4): IBO vs k-CPO ordering of 8 B frames.
//
// CMT prioritizes B frames in Inverse Binary Order; the paper replaces IBO
// with the k-CPO order and argues IBO degrades once a burst exceeds half
// the B frames while k-CPO holds the theorem bound.  We print both orders
// and their exact worst-case CLF for every burst length.
#include <cstdio>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"

int main() {
    constexpr std::size_t kN = 8;

    const espread::Permutation in_order = espread::Permutation::identity(kN);
    const espread::Permutation ibo = espread::ibo_order(kN);
    const espread::Permutation cpo_fixed = espread::residue_class_order(kN, 3);

    std::printf("== Table 2: 8-frame orderings ==\n\n");
    std::printf("In order : %s\n", in_order.to_string_one_based().c_str());
    std::printf("IBO      : %s   (paper: 01 05 03 07 02 06 04 08)\n",
                ibo.to_string_one_based().c_str());
    std::printf("k-CPO    : %s   (paper: 01 04 07 02 05 08 03 06)\n\n",
                cpo_fixed.to_string_one_based().c_str());

    std::printf("worst-case CLF by burst length b (window n = %zu):\n\n", kN);
    std::printf(" b | in-order | IBO | k-CPO(fixed) | calculatePermutation(8,b)\n");
    std::printf("---+----------+-----+--------------+--------------------------\n");
    for (std::size_t b = 1; b <= kN; ++b) {
        const auto best = espread::calculate_permutation(kN, b);
        std::printf("%2zu | %8zu | %3zu | %12zu | %10zu (stride %zu)\n", b,
                    espread::worst_case_clf(in_order, b),
                    espread::worst_case_clf(ibo, b),
                    espread::worst_case_clf(cpo_fixed, b), best.clf, best.stride);
    }
    std::printf(
        "\npaper's claim: IBO matches k-CPO while b <= half the frames, then\n"
        "degrades in the pathological region; k-CPO stays at the bound.\n");
    return 0;
}
