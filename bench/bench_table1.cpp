// Reproduces paper Table 1: how the order of frames sent affects CLF.
//
// 17 frames, one bursty loss of 7 consecutive transmissions.  Three rows:
// in-order transmission, the 5-stride cyclic permutation (the paper's
// example order), and the un-permuted view the receiver reconstructs.
#include <cstdio>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "core/metrics.hpp"

int main() {
    constexpr std::size_t kN = 17;
    constexpr std::size_t kBurst = 7;
    // The paper's example burst: transmission slots 5..11 (0-based), i.e.
    // the 6th through 12th packets of the window.
    constexpr std::size_t kStart = 5;

    std::printf("== Table 1: frame order vs CLF (n = %zu, burst of %zu on slots %zu..%zu) ==\n\n",
                kN, kBurst, kStart, kStart + kBurst - 1);

    const espread::Permutation in_order = espread::Permutation::identity(kN);
    const espread::Permutation permuted = espread::cyclic_stride_order(kN, 5, 0);

    const auto row = [&](const char* name, const espread::Permutation& perm) {
        const espread::LossMask playback =
            espread::burst_loss_mask(perm, kStart, kBurst);
        std::printf("%-12s %s\n", name, perm.to_string_one_based().c_str());
        std::printf("%-12s lost playback frames:", "");
        for (std::size_t f = 0; f < playback.size(); ++f) {
            if (!playback[f]) std::printf(" %02zu", f + 1);
        }
        const auto r = espread::measure_continuity(playback);
        std::printf("   CLF = %zu / %zu\n\n", r.clf, kN);
    };

    row("In order", in_order);
    row("Permuted", permuted);
    std::printf("%-12s (receiver un-permutes; losses land spread out)\n\n",
                "Un-permuted");

    std::printf("worst-case CLF over every burst position of length <= %zu:\n", kBurst);
    std::printf("  in-order : %zu\n", espread::worst_case_clf(in_order, kBurst));
    std::printf("  permuted : %zu\n", espread::worst_case_clf(permuted, kBurst));
    const espread::CpoResult best = espread::calculate_permutation(kN, kBurst);
    std::printf("  calculatePermutation(%zu, %zu) guarantee: %zu (stride %zu)\n",
                kN, kBurst, best.clf, best.stride);
    std::printf("\npaper: in-order CLF %zu, permuted CLF ~1-2 (same aggregate loss).\n",
                kBurst);
    return 0;
}
