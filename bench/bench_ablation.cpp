// Ablation study over the design choices DESIGN.md calls out:
//   1. adaptivity — adaptive b-hat vs frozen bounds (Eq. 1's value);
//   2. alpha — the Eq. 1 averaging weight (paper picks 1/2);
//   3. layering — anchors-first transmission with vs without scrambling,
//      and IBO vs k-CPO inside the B layer (the §4.4 CMT comparison);
//   4. critical retransmission on/off under each ordering.
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::scheme_name;
using espread::proto::SessionConfig;

namespace {

SessionConfig base() {
    SessionConfig cfg;  // Fig. 8 defaults
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.num_windows = 100;
    cfg.seed = 42;
    return cfg;
}

void report(const char* label, const SessionConfig& cfg) {
    const auto r = run_session(cfg);
    const auto s = r.clf_stats();
    std::printf("  %-28s CLF %.2f / %.2f   ALF %.3f\n", label, s.mean(),
                s.deviation(), r.total.alf);
}

}  // namespace

int main() {
    std::printf("== Ablations (Jurassic Park, Fig. 8 network, 100 windows) ==\n\n");

    std::printf("1. adaptivity of the burst bound (layered k-CPO):\n");
    {
        SessionConfig cfg = base();
        report("adaptive (Eq. 1)", cfg);
        cfg.adaptive = false;
        report("frozen at initial n/2", cfg);
        cfg.adaptive = true;
        for (const std::size_t pin : {1u, 4u, 16u}) {
            SessionConfig pinned = base();
            pinned.pinned_bound = pin;
            char label[64];
            std::snprintf(label, sizeof(label), "pinned b = %zu", pin);
            report(label, pinned);
        }
    }

    std::printf("\n2. Eq. 1 averaging weight alpha:\n");
    for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        SessionConfig cfg = base();
        cfg.alpha = alpha;
        char label[64];
        std::snprintf(label, sizeof(label), "alpha = %.2f%s", alpha,
                      alpha == 0.5 ? "  (paper)" : "");
        report(label, cfg);
    }

    std::printf("\n3. ordering inside the window:\n");
    for (const Scheme scheme :
         {Scheme::kInOrder, Scheme::kLayeredNoScramble, Scheme::kLayeredIbo,
          Scheme::kLayeredSpread}) {
        SessionConfig cfg = base();
        cfg.scheme = scheme;
        report(scheme_name(scheme), cfg);
    }

    std::printf("\n4. critical-layer retransmission:\n");
    for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
        for (const bool retx : {true, false}) {
            SessionConfig cfg = base();
            cfg.scheme = scheme;
            cfg.retransmit_critical = retx;
            char label[64];
            std::snprintf(label, sizeof(label), "%s, retransmit %s",
                          scheme_name(scheme), retx ? "on" : "off");
            report(label, cfg);
        }
    }

    std::printf("\n5. estimator choice (Eq. 1 EWMA vs sliding max of last 4):\n");
    {
        SessionConfig cfg = base();
        cfg.estimator = espread::proto::EstimatorKind::kEwma;
        report("EWMA alpha=0.5 (paper)", cfg);
        cfg.estimator = espread::proto::EstimatorKind::kSlidingMax;
        report("sliding max, history 4", cfg);
        cfg.sliding_history = 8;
        report("sliding max, history 8", cfg);
    }

    std::printf("\n6. sender drop policy on a starved link (0.6 Mb/s, lossless):\n");
    for (const auto policy :
         {espread::proto::DropPolicy::kReactive,
          espread::proto::DropPolicy::kPredictive}) {
        SessionConfig cfg = base();
        cfg.data_loss = {1.0, 0.0};
        cfg.feedback_loss = {1.0, 0.0};
        cfg.data_link.bandwidth_bps = 6e5;
        cfg.feedback_link.bandwidth_bps = 6e5;
        cfg.drop_policy = policy;
        report(policy == espread::proto::DropPolicy::kReactive
                   ? "reactive (deadline-fit)"
                   : "predictive (CMT-style)",
               cfg);
    }

    std::printf(
        "\nreading: adaptivity matters mostly through avoiding a stale bound;\n"
        "alpha is flat near the paper's 1/2; layering + anchor retransmission\n"
        "carries the decodability battle, scrambling then wins the CLF one.\n");
    return 0;
}
