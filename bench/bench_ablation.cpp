// Ablation study over the design choices DESIGN.md calls out:
//   1. adaptivity — adaptive b-hat vs frozen bounds (Eq. 1's value);
//   2. alpha — the Eq. 1 averaging weight (paper picks 1/2);
//   3. layering — anchors-first transmission with vs without scrambling,
//      and IBO vs k-CPO inside the B layer (the §4.4 CMT comparison);
//   4. critical retransmission on/off under each ordering.
//
// Every cell runs N independent channel realizations (default 32,
// --trials=N) through the parallel Monte-Carlo runner (--threads=T), so
// the deltas between rows come with a spread instead of resting on one
// seed.  All cells are persisted to BENCH_ablation.json.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::proto::Scheme;
using espread::proto::scheme_name;
using espread::proto::SessionConfig;

namespace {

SessionConfig base() {
    SessionConfig cfg;  // Fig. 8 defaults
    cfg.data_loss = {0.92, 0.6};
    cfg.feedback_loss = {0.92, 0.6};
    cfg.num_windows = 100;
    cfg.seed = 42;
    return cfg;
}

struct Cell {
    std::string section;
    std::string label;
    TrialSummary summary;
};

class AblationReporter {
public:
    explicit AblationReporter(const MonteCarloRunner& runner)
        : runner_(runner) {}

    void report(const char* section, const char* label,
                const SessionConfig& cfg) {
        Cell cell;
        cell.section = section;
        cell.label = label;
        cell.summary = runner_.run(cfg);
        const TrialSummary& s = cell.summary;
        std::printf("  %-28s CLF %.2f / %.2f   ALF %.3f   (trial means %.2f..%.2f)\n",
                    label, s.window_clf.mean(), s.window_clf.deviation(),
                    s.alf.mean(), s.clf_mean.min(), s.clf_mean.max());
        cells_.push_back(std::move(cell));
    }

    const std::vector<Cell>& cells() const noexcept { return cells_; }

    double wall_seconds() const {
        double w = 0.0;
        for (const Cell& c : cells_) w += c.summary.wall_seconds;
        return w;
    }

    std::size_t total_windows() const {
        std::size_t w = 0;
        for (const Cell& c : cells_) w += c.summary.total_windows;
        return w;
    }

private:
    const MonteCarloRunner& runner_;
    std::vector<Cell> cells_;
};

}  // namespace

int main(int argc, char** argv) {
    const auto opts = espread::exp::parse_runner_args(argc, argv);
    MonteCarloRunner runner(opts);
    AblationReporter rep(runner);

    std::printf("== Ablations (Jurassic Park, Fig. 8 network, 100 windows, "
                "%zu trials, %zu threads) ==\n\n",
                runner.trials(), runner.threads());

    std::printf("1. adaptivity of the burst bound (layered k-CPO):\n");
    {
        SessionConfig cfg = base();
        rep.report("adaptivity", "adaptive (Eq. 1)", cfg);
        cfg.adaptive = false;
        rep.report("adaptivity", "frozen at initial n/2", cfg);
        for (const std::size_t pin : {1u, 4u, 16u}) {
            SessionConfig pinned = base();
            pinned.pinned_bound = pin;
            char label[64];
            std::snprintf(label, sizeof(label), "pinned b = %zu", pin);
            rep.report("adaptivity", label, pinned);
        }
    }

    std::printf("\n2. Eq. 1 averaging weight alpha:\n");
    for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        SessionConfig cfg = base();
        cfg.alpha = alpha;
        char label[64];
        std::snprintf(label, sizeof(label), "alpha = %.2f%s", alpha,
                      alpha == 0.5 ? "  (paper)" : "");
        rep.report("alpha", label, cfg);
    }

    std::printf("\n3. ordering inside the window:\n");
    for (const Scheme scheme :
         {Scheme::kInOrder, Scheme::kLayeredNoScramble, Scheme::kLayeredIbo,
          Scheme::kLayeredSpread}) {
        SessionConfig cfg = base();
        cfg.scheme = scheme;
        rep.report("ordering", scheme_name(scheme), cfg);
    }

    std::printf("\n4. critical-layer retransmission:\n");
    for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
        for (const bool retx : {true, false}) {
            SessionConfig cfg = base();
            cfg.scheme = scheme;
            cfg.retransmit_critical = retx;
            char label[64];
            std::snprintf(label, sizeof(label), "%s, retransmit %s",
                          scheme_name(scheme), retx ? "on" : "off");
            rep.report("retransmission", label, cfg);
        }
    }

    std::printf("\n5. estimator choice (Eq. 1 EWMA vs sliding max of last 4):\n");
    {
        SessionConfig cfg = base();
        cfg.estimator = espread::proto::EstimatorKind::kEwma;
        rep.report("estimator", "EWMA alpha=0.5 (paper)", cfg);
        cfg.estimator = espread::proto::EstimatorKind::kSlidingMax;
        rep.report("estimator", "sliding max, history 4", cfg);
        cfg.sliding_history = 8;
        rep.report("estimator", "sliding max, history 8", cfg);
    }

    std::printf("\n6. sender drop policy on a starved link (0.6 Mb/s, lossless):\n");
    for (const auto policy :
         {espread::proto::DropPolicy::kReactive,
          espread::proto::DropPolicy::kPredictive}) {
        SessionConfig cfg = base();
        cfg.data_loss = {1.0, 0.0};
        cfg.feedback_loss = {1.0, 0.0};
        cfg.data_link.bandwidth_bps = 6e5;
        cfg.feedback_link.bandwidth_bps = 6e5;
        cfg.drop_policy = policy;
        rep.report("drop_policy",
                   policy == espread::proto::DropPolicy::kReactive
                       ? "reactive (deadline-fit)"
                       : "predictive (CMT-style)",
                   cfg);
    }

    std::printf(
        "\nreading: adaptivity matters mostly through avoiding a stale bound;\n"
        "alpha is flat near the paper's 1/2; layering + anchor retransmission\n"
        "carries the decodability battle, scrambling then wins the CLF one.\n");

    const double wall = rep.wall_seconds();
    const std::size_t windows = rep.total_windows();
    std::printf("\nthroughput: %zu windows in %.2f s = %.0f windows/sec\n",
                windows, wall, wall > 0 ? static_cast<double>(windows) / wall : 0.0);

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("ablation");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second")
        .value(wall > 0 ? static_cast<double>(windows) / wall : 0.0);
    json.key("cells").begin_array();
    for (const Cell& c : rep.cells()) {
        json.begin_object();
        json.key("section").value(c.section);
        json.key("label").value(c.label);
        json.key("summary");
        espread::exp::append_summary(json, c.summary);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    const std::string out =
        opts.out_path.empty() ? "BENCH_ablation.json" : opts.out_path;
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    if (!opts.trace_path.empty()) {
        espread::exp::write_session_trace(base(), opts.trace_path);
        std::printf("wrote %s\n", opts.trace_path.c_str());
    }
    return 0;
}
