// Reproduces Figure 11 (referenced by §5.2, printed in TR99-005): CLF
// mean/deviation vs available bandwidth, scrambled vs un-scrambled.
//
// Setup per the surviving prose: buffer of 2 GOPs, P_bad = 0.6, bandwidth
// swept across the link capacities around the trace's ~0.9 Mb/s mean rate
// (the paper's exact endpoints are OCR-garbled; we sweep 0.6–2.4 Mb/s).
// Expected shape: both mean and deviation improve under scrambling at every
// bandwidth; at starvation bandwidths the layered scheme sheds B frames
// (spread singles) while the baseline loses whatever sits at the window
// tail; the paper notes the scrambled scheme "often keeps CLF at or below
// 2", the perceptual threshold.
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

int main() {
    std::printf("== Figure 11: CLF vs available bandwidth (P_bad = 0.6, W = 2) ==\n\n");
    std::printf("BW (Mb/s) | unscrambled mean/dev | scrambled mean/dev | scr. windows CLF<=2\n");
    std::printf("----------+----------------------+--------------------+--------------------\n");

    for (const double bw :
         {0.6e6, 0.8e6, 1.0e6, 1.2e6, 1.4e6, 1.6e6, 2.0e6, 2.4e6}) {
        double plain_mean = 0, plain_dev = 0, spread_mean = 0, spread_dev = 0;
        std::size_t under_threshold = 0;
        std::size_t windows = 0;
        for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.scheme = scheme;
            cfg.data_link.bandwidth_bps = bw;
            cfg.feedback_link.bandwidth_bps = bw;
            cfg.data_loss = {0.92, 0.6};
            cfg.feedback_loss = {0.92, 0.6};
            cfg.num_windows = 100;
            cfg.seed = 42;
            const auto r = run_session(cfg);
            const auto s = r.clf_stats();
            if (scheme == Scheme::kInOrder) {
                plain_mean = s.mean();
                plain_dev = s.deviation();
            } else {
                spread_mean = s.mean();
                spread_dev = s.deviation();
                windows = r.windows.size();
                for (const auto& w : r.windows) {
                    if (w.clf <= 2) ++under_threshold;
                }
            }
        }
        std::printf("   %5.2f  |     %5.2f / %-5.2f     |    %5.2f / %-5.2f   | %10zu / %zu\n",
                    bw / 1e6, plain_mean, plain_dev, spread_mean, spread_dev,
                    under_threshold, windows);
    }
    std::printf(
        "\nexpected shape (paper): scrambling improves mean and deviation at\n"
        "every bandwidth, and keeps CLF at/below the perceptual threshold of 2\n"
        "for most windows once the link can carry the stream.\n");
    return 0;
}
