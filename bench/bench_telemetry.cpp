// Telemetry overhead bench: the cost of the fleet telemetry plane.
//
// Runs the identical engine workload (Fig. 8 channel, seeded churn) twice
// — telemetry off, then on (per-shard slabs + epoch snapshots) — and
// reports the relative windows/sec overhead.  Each arm is repeated and
// the best run kept, so scheduler noise biases the measurement *against*
// the telemetry-off arm least; the acceptance budget for the plane is
// <= 5% and CI can pin it with --max-overhead=X (exits nonzero above X%).
// Results land in BENCH_telemetry.json (--out=FILE).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/engine.hpp"
#include "exp/json.hpp"

using espread::engine::EngineConfig;
using espread::engine::ShardedEngine;
using espread::exp::JsonWriter;

namespace {

struct Args {
    std::size_t sessions = 20000;
    std::size_t windows = 120;       // timed engine steps per run
    std::size_t warmup = 8;          // untimed steps before measurement
    std::size_t shards = 0;          // 0 = hardware threads
    std::size_t repeats = 3;         // best-of-N per arm
    std::size_t epoch_steps = 16;    // snapshot cadence in the on-arm
    bool governor = false;           // include governor-lite in both arms
    double max_overhead = 0.0;       // percent; 0 = report only
    std::string out = "BENCH_telemetry.json";
};

bool parse_size(const char* arg, const char* name, std::size_t* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = static_cast<std::size_t>(std::strtoull(arg + len, nullptr, 10));
    return true;
}

bool parse_double(const char* arg, const char* name, double* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = std::strtod(arg + len, nullptr);
    return true;
}

Args parse_args(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (parse_size(arg, "--sessions=", &a.sessions)) continue;
        if (parse_size(arg, "--windows=", &a.windows)) continue;
        if (parse_size(arg, "--warmup=", &a.warmup)) continue;
        if (parse_size(arg, "--shards=", &a.shards)) continue;
        if (parse_size(arg, "--repeats=", &a.repeats)) continue;
        if (parse_size(arg, "--epoch-steps=", &a.epoch_steps)) continue;
        if (parse_double(arg, "--max-overhead=", &a.max_overhead)) continue;
        if (std::strcmp(arg, "--governor") == 0) {
            a.governor = true;
            continue;
        }
        if (std::strncmp(arg, "--out=", 6) == 0) {
            a.out = arg + 6;
            continue;
        }
        std::fprintf(stderr, "bench_telemetry: unknown argument %s\n", arg);
    }
    return a;
}

EngineConfig engine_config(const Args& a, bool telemetry) {
    EngineConfig cfg;  // Fig. 8 channel + window defaults
    cfg.sessions = a.sessions;
    cfg.shards = a.shards;
    cfg.churn.enabled = true;
    cfg.governor.enabled = a.governor;
    cfg.telemetry.enabled = telemetry;
    cfg.telemetry.epoch_steps = a.epoch_steps;
    cfg.seed = 42;
    return cfg;
}

/// One timed run: windows simulated per wall second after warmup.
double run_arm(const EngineConfig& cfg, std::size_t warmup,
               std::size_t windows) {
    using clock = std::chrono::steady_clock;
    ShardedEngine engine(cfg);
    engine.run(warmup);
    const std::uint64_t before = engine.summary().windows;
    const auto t0 = clock::now();
    engine.run(windows);
    const double wall =
        std::chrono::duration<double>(clock::now() - t0).count();
    const std::uint64_t after = engine.summary().windows;
    return wall > 0.0 ? static_cast<double>(after - before) / wall : 0.0;
}

double best_of(const EngineConfig& cfg, const Args& a) {
    double best = 0.0;
    for (std::size_t r = 0; r < std::max<std::size_t>(a.repeats, 1); ++r) {
        best = std::max(best, run_arm(cfg, a.warmup, a.windows));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    std::printf("== bench_telemetry: %zu sessions x %zu windows, best of %zu ==\n",
                args.sessions, args.windows, args.repeats);

    const double wps_off = best_of(engine_config(args, false), args);
    const double wps_on = best_of(engine_config(args, true), args);
    const double overhead_pct =
        wps_off > 0.0 ? 100.0 * (wps_off - wps_on) / wps_off : 0.0;

    std::printf("telemetry off: %.0f windows/sec\n", wps_off);
    std::printf("telemetry on:  %.0f windows/sec (epoch every %zu steps)\n",
                wps_on, args.epoch_steps);
    std::printf("overhead: %.2f%%\n", overhead_pct);

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("telemetry");
    json.key("sessions").value(static_cast<std::uint64_t>(args.sessions));
    json.key("timed_steps").value(static_cast<std::uint64_t>(args.windows));
    json.key("repeats").value(static_cast<std::uint64_t>(args.repeats));
    json.key("epoch_steps").value(static_cast<std::uint64_t>(args.epoch_steps));
    json.key("governor").value(args.governor);
    json.key("windows_per_second_off").value(wps_off);
    json.key("windows_per_second_on").value(wps_on);
    json.key("overhead_percent").value(overhead_pct);
    json.end_object();
    espread::exp::write_text_file(args.out, json.str());
    std::printf("wrote %s\n", args.out.c_str());

    if (args.max_overhead > 0.0 && overhead_pct > args.max_overhead) {
        std::fprintf(stderr,
                     "bench_telemetry: overhead %.2f%% above budget %.2f%%\n",
                     overhead_pct, args.max_overhead);
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
