// Validates the §4.3 orthogonality claim as an experiment matrix:
// {un-scrambled, scrambled} x {plain, retransmission, FEC, both} on the
// same network, reporting CLF (what spreading protects) and ALF (what the
// redundancy schemes protect) plus bandwidth spent.
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

int main() {
    std::printf("== §4.3: error spreading as an orthogonal dimension ==\n");
    std::printf("(Jurassic Park, 100 windows, Gilbert(0.92, 0.6), 2.0 Mb/s link)\n\n");
    std::printf("redundancy     | scheme   | CLF mean/dev  | ALF   | Mbit sent\n");
    std::printf("---------------+----------+---------------+-------+----------\n");

    struct Mode {
        const char* name;
        bool retransmit;
        bool fec;
    };
    for (const Mode mode : {Mode{"none", false, false},
                            Mode{"retransmit", true, false},
                            Mode{"FEC(4+2)", false, true},
                            Mode{"retx + FEC", true, true}}) {
        for (const bool spread : {false, true}) {
            SessionConfig cfg;
            cfg.scheme = spread ? Scheme::kLayeredSpread : Scheme::kInOrder;
            cfg.retransmit_critical = mode.retransmit;
            if (mode.fec) cfg.fec = {4, 2};
            cfg.data_link.bandwidth_bps = 2e6;
            cfg.feedback_link.bandwidth_bps = 2e6;
            cfg.num_windows = 100;
            cfg.seed = 3;
            const auto r = run_session(cfg);
            const auto s = r.clf_stats();
            std::printf("%-14s | %-8s | %5.2f / %-5.2f | %.3f | %8.1f\n",
                        mode.name, spread ? "spread" : "in-order", s.mean(),
                        s.deviation(), r.total.alf,
                        static_cast<double>(r.data_channel.bits_sent) / 1e6);
        }
    }
    std::printf(
        "\nexpected shape: within every redundancy row, the spread variant has\n"
        "lower CLF at (essentially) the same ALF and bandwidth — spreading\n"
        "composes with any of them rather than competing.\n");
    return 0;
}
