// Reproduces paper Figure 8: impact of network loss on per-window CLF.
//
// Setup (from the figure captions): Jurassic Park trace, RTT 23 ms,
// BW 1.2 Mb/s, GOP 12, W = 2 GOPs, packet 16384 bits, P_good = 0.92,
// P_bad in {0.6, 0.7}; 100 buffer windows; scrambled (layered k-CPO) vs
// un-scrambled (MPEG coding order) transmission.
//
// Paper reference numbers:
//   P_bad = 0.6: un-scrambled mean 1.71 dev 0.92; scrambled mean 1.46 dev 0.56
//   P_bad = 0.7: un-scrambled mean 1.63 dev 0.85; scrambled mean 1.56 dev 0.79
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;
using espread::proto::SessionResult;

namespace {

SessionConfig fig8_config(double p_bad, Scheme scheme, std::uint64_t seed) {
    SessionConfig cfg;  // defaults already match the paper's setup
    cfg.data_loss = {0.92, p_bad};
    cfg.feedback_loss = {0.92, p_bad};
    cfg.scheme = scheme;
    cfg.num_windows = 100;
    cfg.seed = seed;
    return cfg;
}

void run_panel(double p_bad, double paper_plain_mean, double paper_plain_dev,
               double paper_spread_mean, double paper_spread_dev) {
    constexpr std::uint64_t kSeed = 42;
    const SessionResult plain =
        run_session(fig8_config(p_bad, Scheme::kInOrder, kSeed));
    const SessionResult spread =
        run_session(fig8_config(p_bad, Scheme::kLayeredSpread, kSeed));

    std::printf("---- P_bad = %.1f (RTT 23 ms, BW 1.2 Mb/s, W = 2, GOP 12, pkt 16384) ----\n\n",
                p_bad);
    std::printf("window: unscrambled CLF | scrambled CLF | actual n/w packet burst\n");
    for (std::size_t k = 0; k < plain.windows.size(); ++k) {
        std::printf("  %3zu : %15zu | %13zu | %zu\n", k, plain.windows[k].clf,
                    spread.windows[k].clf, spread.windows[k].actual_packet_burst);
    }
    const auto ps = plain.clf_stats();
    const auto ss = spread.clf_stats();
    std::printf("\n            %-22s %-22s\n", "mean CLF (paper)", "dev CLF (paper)");
    std::printf("unscrambled %-5.2f (%.2f)%12s %-5.2f (%.2f)\n", ps.mean(),
                paper_plain_mean, "", ps.deviation(), paper_plain_dev);
    std::printf("scrambled   %-5.2f (%.2f)%12s %-5.2f (%.2f)\n", ss.mean(),
                paper_spread_mean, "", ss.deviation(), paper_spread_dev);
    std::printf("aggregate loss (ALF): unscrambled %.3f, scrambled %.3f "
                "(bandwidth-neutral: ~equal)\n\n",
                plain.total.alf, spread.total.alf);
}

}  // namespace

int main() {
    std::printf("== Figure 8: CLF per buffer window under bursty network loss ==\n\n");
    run_panel(0.6, 1.71, 0.92, 1.46, 0.56);
    run_panel(0.7, 1.63, 0.85, 1.56, 0.79);
    std::printf(
        "shape check (paper's claim): scrambling lowers BOTH the mean and the\n"
        "deviation of per-window CLF, holding aggregate loss unchanged.\n");
    return 0;
}
