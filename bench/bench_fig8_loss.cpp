// Reproduces paper Figure 8: impact of network loss on per-window CLF.
//
// Setup (from the figure captions): Jurassic Park trace, RTT 23 ms,
// BW 1.2 Mb/s, GOP 12, W = 2 GOPs, packet 16384 bits, P_good = 0.92,
// P_bad in {0.6, 0.7}; 100 buffer windows; scrambled (layered k-CPO) vs
// un-scrambled (MPEG coding order) transmission.
//
// The paper's numbers are single-channel-realization estimates; this bench
// runs every panel over N independent Gilbert realizations (default 32,
// --trials=N) through the parallel Monte-Carlo runner (--threads=T) and
// reports the mean and spread across trials, plus a machine-readable
// BENCH_fig8.json for cross-PR perf tracking.
//
// Paper reference numbers (their single realization):
//   P_bad = 0.6: un-scrambled mean 1.71 dev 0.92; scrambled mean 1.46 dev 0.56
//   P_bad = 0.7: un-scrambled mean 1.63 dev 0.85; scrambled mean 1.56 dev 0.79
#include <cstdio>
#include <string>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"

using espread::exp::JsonWriter;
using espread::exp::MonteCarloRunner;
using espread::exp::TrialSummary;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

namespace {

SessionConfig fig8_config(double p_bad, Scheme scheme, std::uint64_t seed) {
    SessionConfig cfg;  // defaults already match the paper's setup
    cfg.data_loss = {0.92, p_bad};
    cfg.feedback_loss = {0.92, p_bad};
    cfg.scheme = scheme;
    cfg.num_windows = 100;
    cfg.seed = seed;
    return cfg;
}

struct Panel {
    double p_bad;
    TrialSummary plain;
    TrialSummary spread;
};

void print_panel(const Panel& p, double paper_plain_mean,
                 double paper_plain_dev, double paper_spread_mean,
                 double paper_spread_dev) {
    std::printf("---- P_bad = %.1f (RTT 23 ms, BW 1.2 Mb/s, W = 2, GOP 12, pkt 16384) ----\n\n",
                p.p_bad);
    std::printf("            %-24s %-24s per-trial mean CLF range\n",
                "mean CLF (paper)", "dev CLF (paper)");
    std::printf("unscrambled %-6.2f (%.2f)%12s %-6.2f (%.2f)%12s [%.2f, %.2f]\n",
                p.plain.window_clf.mean(), paper_plain_mean, "",
                p.plain.window_clf.deviation(), paper_plain_dev, "",
                p.plain.clf_mean.min(), p.plain.clf_mean.max());
    std::printf("scrambled   %-6.2f (%.2f)%12s %-6.2f (%.2f)%12s [%.2f, %.2f]\n",
                p.spread.window_clf.mean(), paper_spread_mean, "",
                p.spread.window_clf.deviation(), paper_spread_dev, "",
                p.spread.clf_mean.min(), p.spread.clf_mean.max());
    std::printf("aggregate loss (ALF): unscrambled %.3f +/- %.3f, "
                "scrambled %.3f +/- %.3f (bandwidth-neutral: ~equal)\n\n",
                p.plain.alf.mean(), p.plain.alf.deviation(),
                p.spread.alf.mean(), p.spread.alf.deviation());
}

void append_panel(JsonWriter& json, const Panel& p) {
    json.begin_object();
    json.key("p_bad").value(p.p_bad);
    json.key("unscrambled");
    espread::exp::append_summary(json, p.plain);
    json.key("scrambled");
    espread::exp::append_summary(json, p.spread);
    json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = espread::exp::parse_runner_args(argc, argv);
    MonteCarloRunner runner(opts);
    constexpr std::uint64_t kSeed = 42;

    std::printf("== Figure 8: CLF per buffer window under bursty network loss ==\n");
    std::printf("   (%zu trials x 100 windows per cell, %zu threads)\n\n",
                runner.trials(), runner.threads());

    Panel panels[2];
    double wall = 0.0;
    std::size_t windows = 0;
    for (int i = 0; i < 2; ++i) {
        const double p_bad = i == 0 ? 0.6 : 0.7;
        panels[i].p_bad = p_bad;
        panels[i].plain =
            runner.run(fig8_config(p_bad, Scheme::kInOrder, kSeed));
        panels[i].spread =
            runner.run(fig8_config(p_bad, Scheme::kLayeredSpread, kSeed));
        wall += panels[i].plain.wall_seconds + panels[i].spread.wall_seconds;
        windows +=
            panels[i].plain.total_windows + panels[i].spread.total_windows;
    }

    print_panel(panels[0], 1.71, 0.92, 1.46, 0.56);
    print_panel(panels[1], 1.63, 0.85, 1.56, 0.79);

    std::printf(
        "shape check (paper's claim): scrambling lowers BOTH the mean and the\n"
        "deviation of per-window CLF, holding aggregate loss unchanged.\n");
    std::printf("\nthroughput: %zu windows in %.2f s = %.0f windows/sec\n",
                windows, wall, wall > 0 ? static_cast<double>(windows) / wall : 0.0);

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("fig8_loss");
    json.key("trials").value(static_cast<std::uint64_t>(runner.trials()));
    json.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second")
        .value(wall > 0 ? static_cast<double>(windows) / wall : 0.0);
    json.key("panels").begin_array();
    append_panel(json, panels[0]);
    append_panel(json, panels[1]);
    json.end_array();
    json.end_object();
    const std::string out =
        opts.out_path.empty() ? "BENCH_fig8.json" : opts.out_path;
    espread::exp::write_text_file(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    if (!opts.trace_path.empty()) {
        // One traced realization of the scrambled P_bad = 0.6 cell (trial
        // 0's seed), for loading into Perfetto / chrome://tracing.
        espread::exp::write_session_trace(
            fig8_config(0.6, Scheme::kLayeredSpread, kSeed), opts.trace_path);
        std::printf("wrote %s\n", opts.trace_path.c_str());
    }
    return 0;
}
