// Multi-session scale bench: the data-oriented engine under load.
//
// Drives `--sessions` concurrent adaptive sessions (default 100k) through
// the sharded SoA engine on the Fig. 8 setup (24-LDU windows, Gilbert
// 0.92/0.6 on both paths, alpha = 1/2, ACK delay 2), with seeded session
// churn, and reports steady-state aggregate throughput:
//   * windows/sec   — session-windows simulated per wall second
//   * sessions/sec  — session completions per wall second (churn on)
//   * p50/p99 step latency — wall time of one engine step (one window for
//     every active session)
//
// A comparison arm runs the same workload shape through the per-object
// discrete-event Session loop (MonteCarloRunner) at the SAME thread
// count; --require-speedup=X exits nonzero unless the engine beats it by
// X-fold, which CI enforces at 3x.  Results land in BENCH_scale.json
// (override with --out=FILE); the deterministic "summary" section is
// byte-identical for any --shards value.
//
// --telemetry turns on the per-shard telemetry slabs and emits the epoch
// snapshot series (TELEMETRY_scale.json, --telemetry-out=FILE) for
// tools/espread_report; --governor enables governor-lite outage
// supervision so the dwell histograms carry data.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "protocol/session.hpp"

using espread::engine::EngineConfig;
using espread::engine::EngineSummary;
using espread::engine::ShardedEngine;
using espread::exp::JsonWriter;

namespace {

struct Args {
    std::size_t sessions = 100000;
    std::size_t windows = 150;        // timed engine steps
    std::size_t warmup = 8;           // untimed steps before measurement
    std::size_t shards = 0;           // 0 = hardware threads
    double churn_mean = 64.0;         // mean session lifetime (windows)
    std::size_t churn_min = 16;       // lifetime floor
    double churn_gap = 0.0;           // mean idle gap after departure
    std::size_t compare_sessions = 64;  // 0 disables the Session-loop arm
    double require_speedup = 0.0;       // 0 = report only
    std::string out = "BENCH_scale.json";
    bool telemetry = false;             // per-shard slabs + epoch snapshots
    std::size_t telemetry_epoch = 16;   // engine steps per snapshot epoch
    bool governor = false;              // governor-lite outage supervision
    bool fec = false;                   // FEC-lite window repair arm
    std::size_t fec_num = 1;            // repair overhead ratio numerator
    std::size_t fec_den = 10;           // repair overhead ratio denominator
    std::string telemetry_out = "TELEMETRY_scale.json";
};

bool parse_size(const char* arg, const char* name, std::size_t* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = static_cast<std::size_t>(std::strtoull(arg + len, nullptr, 10));
    return true;
}

bool parse_double(const char* arg, const char* name, double* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    *out = std::strtod(arg + len, nullptr);
    return true;
}

Args parse_args(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (parse_size(arg, "--sessions=", &a.sessions)) continue;
        if (parse_size(arg, "--windows=", &a.windows)) continue;
        if (parse_size(arg, "--warmup=", &a.warmup)) continue;
        if (parse_size(arg, "--shards=", &a.shards)) continue;
        if (parse_double(arg, "--churn-mean=", &a.churn_mean)) continue;
        if (parse_size(arg, "--churn-min=", &a.churn_min)) continue;
        if (parse_double(arg, "--churn-gap=", &a.churn_gap)) continue;
        if (parse_size(arg, "--compare-sessions=", &a.compare_sessions)) continue;
        if (parse_double(arg, "--require-speedup=", &a.require_speedup)) continue;
        if (std::strcmp(arg, "--telemetry") == 0) {
            a.telemetry = true;
            continue;
        }
        if (parse_size(arg, "--telemetry-epoch=", &a.telemetry_epoch)) continue;
        if (std::strcmp(arg, "--governor") == 0) {
            a.governor = true;
            continue;
        }
        if (std::strcmp(arg, "--fec") == 0) {
            a.fec = true;
            continue;
        }
        if (parse_size(arg, "--fec-num=", &a.fec_num)) continue;
        if (parse_size(arg, "--fec-den=", &a.fec_den)) continue;
        if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
            a.telemetry_out = arg + 16;
            continue;
        }
        if (std::strncmp(arg, "--out=", 6) == 0) {
            a.out = arg + 6;
            continue;
        }
        std::fprintf(stderr, "bench_scale: unknown argument %s\n", arg);
    }
    return a;
}

EngineConfig engine_config(const Args& a) {
    EngineConfig cfg;  // Fig. 8 channel + window defaults
    cfg.sessions = a.sessions;
    cfg.shards = a.shards;
    cfg.churn.enabled = a.churn_mean > 0.0;
    cfg.churn.min_lifetime_windows = a.churn_min;
    cfg.churn.mean_lifetime_windows = a.churn_mean;
    cfg.churn.mean_arrival_gap_windows = a.churn_gap;
    cfg.telemetry.enabled = a.telemetry;
    cfg.telemetry.epoch_steps = a.telemetry_epoch;
    cfg.governor.enabled = a.governor;
    cfg.fec.enabled = a.fec;
    cfg.fec.overhead_num = a.fec_num;
    cfg.fec.overhead_den = a.fec_den;
    cfg.seed = 42;
    return cfg;
}

double percentile(std::vector<double> sorted_src, double p) {
    if (sorted_src.empty()) return 0.0;
    std::sort(sorted_src.begin(), sorted_src.end());
    const double rank = p * static_cast<double>(sorted_src.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = lo + 1 < sorted_src.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return sorted_src[lo] * (1.0 - frac) + sorted_src[hi] * frac;
}

/// Same workload shape through the per-object Session loop at the same
/// thread count: windows/sec of the discrete-event engine.
double session_loop_windows_per_second(std::size_t sessions,
                                       std::size_t threads) {
    espread::exp::RunnerOptions opts;
    opts.trials = sessions;
    opts.threads = threads;
    espread::exp::MonteCarloRunner runner(opts);
    espread::proto::SessionConfig cfg;  // defaults match the Fig. 8 setup
    cfg.scheme = espread::proto::Scheme::kLayeredSpread;
    cfg.num_windows = 100;
    cfg.seed = 42;
    return runner.run(cfg).windows_per_second;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    using clock = std::chrono::steady_clock;

    ShardedEngine engine(engine_config(args));
    std::printf("== bench_scale: %zu sessions x %zu windows, %zu shard(s) ==\n",
                args.sessions, args.windows, engine.shards());

    engine.run(args.warmup);
    const EngineSummary before = engine.summary();

    std::vector<double> step_ms;
    step_ms.reserve(args.windows);
    const auto t0 = clock::now();
    for (std::size_t w = 0; w < args.windows; ++w) {
        const auto s0 = clock::now();
        engine.step();
        const auto s1 = clock::now();
        step_ms.push_back(
            std::chrono::duration<double, std::milli>(s1 - s0).count());
    }
    const double wall = std::chrono::duration<double>(clock::now() - t0).count();

    const EngineSummary after = engine.summary();
    const double windows_run =
        static_cast<double>(after.windows - before.windows);
    const double completions =
        static_cast<double>(after.sessions_completed - before.sessions_completed);
    const double wps = wall > 0.0 ? windows_run / wall : 0.0;
    const double sps = wall > 0.0 ? completions / wall : 0.0;
    const double p50 = percentile(step_ms, 0.50);
    const double p99 = percentile(step_ms, 0.99);

    std::printf("steady state: %.0f windows/sec, %.0f session completions/sec\n",
                wps, sps);
    std::printf("step latency: p50 %.3f ms, p99 %.3f ms (%zu steps)\n",
                p50, p99, step_ms.size());
    std::printf("active sessions at end: %zu of %zu (%llu spawned, %llu completed)\n",
                after.active_sessions, after.sessions,
                static_cast<unsigned long long>(after.sessions_spawned),
                static_cast<unsigned long long>(after.sessions_completed));
    std::printf("quality: CLF mean %.3f dev %.3f max %llu, ALF %.4f\n",
                after.clf_mean, after.clf_dev,
                static_cast<unsigned long long>(after.clf_max), after.alf);
    if (after.fec) {
        std::printf("fec-lite: %llu repair packets, %llu lossy windows "
                    "repaired, %llu unrepaired\n",
                    static_cast<unsigned long long>(after.fec_repair_packets),
                    static_cast<unsigned long long>(after.fec_windows_recovered),
                    static_cast<unsigned long long>(after.fec_windows_unrecovered));
    }

    double loop_wps = 0.0;
    double speedup = 0.0;
    if (args.compare_sessions > 0) {
        loop_wps = session_loop_windows_per_second(args.compare_sessions,
                                                   engine.shards());
        speedup = loop_wps > 0.0 ? wps / loop_wps : 0.0;
        std::printf("per-object Session loop (%zu sessions, %zu threads): "
                    "%.0f windows/sec -> engine speedup %.1fx\n",
                    args.compare_sessions, engine.shards(), loop_wps, speedup);
    }

    JsonWriter json;
    json.begin_object();
    json.key("bench").value("scale");
    json.key("sessions").value(static_cast<std::uint64_t>(args.sessions));
    json.key("shards").value(static_cast<std::uint64_t>(engine.shards()));
    json.key("warmup_steps").value(static_cast<std::uint64_t>(args.warmup));
    json.key("timed_steps").value(static_cast<std::uint64_t>(args.windows));
    json.key("wall_seconds").value(wall);
    json.key("windows_per_second").value(wps);
    json.key("sessions_per_second").value(sps);
    json.key("p50_step_ms").value(p50);
    json.key("p99_step_ms").value(p99);
    if (args.compare_sessions > 0) {
        json.key("comparison").begin_object();
        json.key("sessions").value(static_cast<std::uint64_t>(args.compare_sessions));
        json.key("threads").value(static_cast<std::uint64_t>(engine.shards()));
        json.key("session_loop_windows_per_second").value(loop_wps);
        json.key("speedup").value(speedup);
        json.end_object();
    }
    json.key("summary");
    espread::engine::append_summary(json, after);
    json.end_object();
    espread::exp::write_text_file(args.out, json.str());
    std::printf("wrote %s\n", args.out.c_str());

    // With --telemetry the engine captured a snapshot every
    // --telemetry-epoch steps; emit the series for tools/espread_report.
    if (engine.telemetry() != nullptr && !engine.telemetry()->empty()) {
        espread::obs::telemetry::write_snapshot_series(args.telemetry_out,
                                                       *engine.telemetry());
        std::printf("wrote %s (%zu epochs)\n", args.telemetry_out.c_str(),
                    engine.telemetry()->snapshots().size());
    }

    if (args.require_speedup > 0.0 && speedup < args.require_speedup) {
        std::fprintf(stderr,
                     "bench_scale: engine speedup %.2fx below required %.2fx\n",
                     speedup, args.require_speedup);
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
