// Extension bench: playout-judged continuity and the measured start-up
// requirement (paper §4.1 provisions one buffer window of start-up delay;
// this quantifies how close the protocol actually comes to needing it).
#include <cstdio>

#include "protocol/session.hpp"

using espread::proto::run_session;
using espread::proto::Scheme;
using espread::proto::SessionConfig;

int main() {
    std::printf("== playout accounting: late frames vs lost frames ==\n");
    std::printf("(100 windows, Fig. 8 network; startup = 1 buffer window)\n\n");
    std::printf("scheme   | P_bad | window CLF m/d | playout CLF m/d | required startup (s)\n");
    std::printf("---------+-------+----------------+-----------------+---------------------\n");
    for (const double pbad : {0.6, 0.7}) {
        for (const Scheme scheme : {Scheme::kInOrder, Scheme::kLayeredSpread}) {
            SessionConfig cfg;
            cfg.scheme = scheme;
            cfg.data_loss = {0.92, pbad};
            cfg.feedback_loss = {0.92, pbad};
            cfg.num_windows = 100;
            cfg.seed = 42;
            const auto r = run_session(cfg);
            const auto w = r.clf_stats();
            const auto p = r.playout_clf_stats();
            std::printf("%-8s |  %.1f  |  %5.2f / %-5.2f |  %5.2f / %-6.2f |  %.3f\n",
                        scheme == Scheme::kInOrder ? "in-order" : "spread", pbad,
                        w.mean(), w.deviation(), p.mean(), p.deviation(),
                        espread::sim::to_seconds(r.required_startup));
        }
    }
    std::printf(
        "\nwith the paper's one-window start-up, playout CLF equals the\n"
        "window-close CLF (no frame misses its slot): the paper's buffer\n"
        "provisioning is exactly sufficient, with the measured requirement\n"
        "showing how much of it retransmissions consume.\n");
    return 0;
}
