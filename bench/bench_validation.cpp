// Cross-validation: closed-form Markov analysis vs Monte-Carlo simulation.
//
// The per-window CLF distribution of in-order transmission under the
// Gilbert chain has an exact DP solution (analysis/markov.hpp).  This
// bench prints it next to the sampled distribution from the same chain
// implementation the protocol uses — agreement here certifies the whole
// random-process plumbing (rng, chain, masks, metrics) independently of
// the paper's numbers.
#include <cstdio>

#include "analysis/markov.hpp"
#include "analysis/multiburst.hpp"
#include "core/permutation.hpp"
#include "sim/contracts.hpp"

using espread::analysis::clf_distribution_in_order;
using espread::analysis::expected_clf_in_order;
using espread::analysis::expected_losses_in_order;

int main() {
    constexpr std::size_t kN = 24;
    constexpr std::size_t kTrials = 200000;

    std::printf("== validation: exact Markov DP vs Monte-Carlo (n = %zu LDUs) ==\n\n",
                kN);
    for (const double pbad : {0.6, 0.7}) {
        const espread::net::GilbertParams params{0.92, pbad};
        // The sampled loop below runs one continuous chain, so windows
        // start from the stationary state; seed the DP to match.
        const double pi_good = espread::analysis::stationary_p_good(params);
        const auto exact = clf_distribution_in_order(params, kN, pi_good);

        // Sample the same chain.
        std::vector<std::size_t> counts(kN + 1, 0);
        espread::sim::Rng rng{12345};
        espread::net::GilbertLoss chain{
            params, rng.split(espread::contracts::kAnalysisLaneGilbertChain)};
        espread::sim::RunningStats sampled_clf;
        for (std::size_t t = 0; t < kTrials; ++t) {
            std::size_t run = 0;
            std::size_t best = 0;
            for (std::size_t i = 0; i < kN; ++i) {
                if (chain.drop_next()) {
                    best = std::max(best, ++run);
                } else {
                    run = 0;
                }
            }
            ++counts[best];
            sampled_clf.add(static_cast<double>(best));
        }

        std::printf("P_bad = %.1f   E[CLF] exact %.4f vs sampled %.4f   "
                    "E[losses] exact %.2f\n",
                    pbad, expected_clf_in_order(params, kN, pi_good),
                    sampled_clf.mean(),
                    expected_losses_in_order(params, kN, pi_good));
        std::printf("  CLF k :  P_exact   P_sampled\n");
        for (std::size_t k = 0; k <= kN; ++k) {
            const double sampled =
                static_cast<double>(counts[k]) / static_cast<double>(kTrials);
            if (exact[k] < 5e-4 && sampled < 5e-4) continue;
            std::printf("  %5zu :  %.4f    %.4f\n", k, exact[k], sampled);
        }
        std::printf("\n");
    }
    std::printf("agreement to ~3 decimal places certifies the loss pipeline.\n");
    return 0;
}
