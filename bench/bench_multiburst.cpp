// Beyond Theorem 1: ordering quality under MULTIPLE bursts per window.
//
// The paper's guarantee covers one burst of length <= b per window; a real
// Gilbert channel emits several.  This bench compares orderings three ways:
//   1. worst case under one burst (the theorem's regime),
//   2. worst case under two disjoint bursts,
//   3. Monte-Carlo CLF under the actual Gilbert(.92, .6) process,
// showing (a) why single-burst-optimal stride-2-style orders can be
// fragile against pairs of bursts, and (b) that the k-CPO family remains
// the best or tied under the realistic process — evidence that the IBO vs
// CPO near-tie seen at the protocol level is a property of the multi-burst
// regime, not an implementation artifact.
#include <cstdio>

#include "analysis/multiburst.hpp"
#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/interleaver.hpp"

using espread::Permutation;
using espread::analysis::gilbert_clf;
using espread::analysis::min_adjacent_distance;
using espread::analysis::worst_case_clf_two_bursts;

int main() {
    constexpr std::size_t kN = 16;  // one B layer of a 2-GOP window
    constexpr std::size_t kB = 4;   // typical adapted bound
    const espread::net::GilbertParams net{0.92, 0.6};
    constexpr std::size_t kTrials = 20000;

    espread::sim::Rng rng{1};
    const struct {
        const char* name;
        Permutation perm;
    } orders[] = {
        {"identity", Permutation::identity(kN)},
        {"residue-2 (odd/even)", espread::residue_class_order(kN, 2, {1, 0})},
        {"residue-4", espread::residue_class_order(kN, 4)},
        {"IBO", espread::ibo_order(kN)},
        {"folded dyadic", espread::folded_dyadic_order(kN)},
        {"k-CPO(16,4)", espread::calculate_permutation(kN, kB).perm},
        {"random", espread::random_order(kN, rng)},
    };

    std::printf("== multi-burst ordering quality (n = %zu, b = %zu) ==\n\n", kN, kB);
    std::printf("%-22s | 1-burst worst | 2-burst worst | minAdjDist | Gilbert CLF mean/dev\n",
                "order");
    std::printf("-----------------------+---------------+---------------+------------+---------------------\n");
    for (const auto& o : orders) {
        const auto mc = gilbert_clf(o.perm, net, kTrials, espread::sim::Rng{99});
        std::printf("%-22s | %13zu | %13zu | %10zu | %8.2f / %.2f\n", o.name,
                    espread::worst_case_clf(o.perm, kB),
                    worst_case_clf_two_bursts(o.perm, kB),
                    min_adjacent_distance(o.perm), mc.clf.mean(),
                    mc.clf.deviation());
    }

    std::printf(
        "\nreading: single-burst worst case rewards large strides; two bursts\n"
        "and the Gilbert process reward balanced adjacency profiles, which is\n"
        "where IBO and mid-stride k-CPO orders meet.  The adaptive protocol\n"
        "inherits whichever candidate wins the exact evaluation.\n");
    return 0;
}
