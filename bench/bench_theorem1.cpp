// Validates Theorem 1 (reconstructed): achievable worst-case CLF of the
// cyclic-permutation family vs the packing lower bound and the true
// optimum over all permutations (exhaustive search, small n).
//
// Regimes checked:
//   * b*b <= n          -> CLF 1 (tight);
//   * b <= ceil(n/2)    -> CLF 1 for the extended residue family (matches
//                          the packing bound, stronger than the paper's
//                          stated b*b <= n regime);
//   * b >= n            -> CLF n;
//   * b close to n      -> family gap vs the true optimum (quantified).
#include <cstdio>

#include "core/burst.hpp"
#include "core/cpo.hpp"
#include "core/optimal.hpp"

int main() {
    std::printf("== Theorem 1 validation ==\n\n");
    std::printf("exhaustive range (true optimum by branch-and-bound):\n\n");
    std::printf(" n\\b |");
    for (std::size_t b = 1; b <= 10; ++b) std::printf("    %2zu    ", b);
    std::printf("   (cells: CPO/OPT/LB)\n");
    std::printf("-----+");
    for (std::size_t b = 1; b <= 10; ++b) std::printf("----------");
    std::printf("\n");

    std::size_t family_gap_cells = 0;
    std::size_t total_cells = 0;
    for (std::size_t n = 2; n <= 10; ++n) {
        std::printf("%4zu |", n);
        for (std::size_t b = 1; b <= 10; ++b) {
            if (b > n) {
                std::printf("          ");
                continue;
            }
            const std::size_t cpo = espread::cpo_clf(n, b);
            const std::size_t opt = espread::optimal_clf(n, b);
            const std::size_t lb = espread::lower_bound_clf(n, b);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%zu/%zu/%zu", cpo, opt, lb);
            std::printf(" %-9s", cell);
            ++total_cells;
            if (cpo != opt) ++family_gap_cells;
        }
        std::printf("\n");
    }
    std::printf("\ncells where the cyclic family misses the true optimum: %zu / %zu\n",
                family_gap_cells, total_cells);

    std::printf("\nregime checks on larger windows (CPO guarantee only):\n");
    bool easy_ok = true;
    for (std::size_t n = 2; n <= 96; ++n) {
        for (std::size_t b = 1; 2 * b <= n; ++b) {
            if (espread::cpo_clf(n, b) != 1) {
                easy_ok = false;
                std::printf("  VIOLATION: n=%zu b=%zu\n", n, b);
            }
        }
    }
    std::printf("  CLF == 1 for every b <= n/2, n <= 96 : %s\n",
                easy_ok ? "PASS" : "FAIL");

    bool total_ok = true;
    for (std::size_t n = 2; n <= 64; ++n) {
        total_ok = total_ok && espread::cpo_clf(n, n) == n;
    }
    std::printf("  CLF == n at b == n                   : %s\n",
                total_ok ? "PASS" : "FAIL");

    std::printf("\nbuffer-requirement curve (min window for CLF <= k against burst b):\n");
    std::printf("  b | k=1 | k=2 | k=3\n");
    std::printf(" ---+-----+-----+----\n");
    for (std::size_t b = 2; b <= 10; ++b) {
        std::printf(" %2zu |", b);
        for (std::size_t k = 1; k <= 3; ++k) {
            std::printf(" %3zu |", espread::window_for_clf(b, k));
        }
        std::printf("\n");
    }
    return 0;
}
