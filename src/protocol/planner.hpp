// Per-window transmission planning (paper §3.2–§3.3, Fig. 3).
//
// The window's dependency structure (fixed for a session) determines the
// layers; the scheme and the current burst-bound estimate determine the
// wire order within each layer.  Plans are cached per bound, since the
// estimate changes slowly.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "media/mpeg.hpp"
#include "poset/poset.hpp"
#include "protocol/config.hpp"

namespace espread::proto {

/// One frame's slot in the wire order of a window.
struct WireEntry {
    std::size_t local_frame = 0;  ///< frame index within the window (0..n-1)
    std::size_t layer = 0;        ///< transmission layer id
    std::size_t tx_pos = 0;       ///< position within the layer's wire order
    bool critical = false;        ///< anchor frame (retransmission target)
};

/// Complete wire order for one buffer window.
struct WindowPlan {
    std::vector<WireEntry> order;           ///< concatenated layers, layer 0 first
    std::vector<std::size_t> layer_sizes;   ///< frames per layer
    std::vector<bool> layer_critical;       ///< layer contains anchors only
    std::size_t noncritical_bound = 0;      ///< bound the non-critical layers used
};

/// Builds (and caches) window plans for a session's stream structure.
class Planner {
public:
    /// Derives the dependency poset and layer structure from `cfg`.
    /// MJPEG/audio streams yield the trivial poset (one non-critical layer).
    explicit Planner(const SessionConfig& cfg);

    std::size_t window_ldus() const noexcept { return poset_.size(); }

    /// Layer structure (independent of the burst bound).
    const std::vector<std::size_t>& layer_sizes() const noexcept { return layer_sizes_; }
    const std::vector<bool>& layer_critical() const noexcept { return layer_critical_; }

    /// Total frames across non-critical layers — the LDU window the burst
    /// estimator operates on.
    std::size_t noncritical_size() const noexcept { return noncritical_size_; }

    /// Direct prerequisites (local indices) per local frame — the client
    /// uses these to mark undecodable frames.
    const std::vector<std::vector<std::size_t>>& prerequisites() const noexcept {
        return prereqs_;
    }

    /// Whether `local_frame` is an anchor.
    bool is_critical(std::size_t local_frame) const { return anchor_[local_frame]; }

    /// Wire order for one window under the given non-critical burst bound.
    /// Bounds are clamped to layer sizes.  Cached per bound.
    const WindowPlan& plan(std::size_t noncritical_bound);

    const espread::poset::Poset& dependency_poset() const noexcept { return poset_; }

private:
    WindowPlan build(std::size_t noncritical_bound) const;

    Scheme scheme_;
    espread::poset::Poset poset_;
    std::vector<std::vector<std::size_t>> layers_;  // members, ascending
    std::vector<std::size_t> layer_sizes_;
    std::vector<bool> layer_critical_;
    std::vector<bool> anchor_;
    std::vector<std::vector<std::size_t>> prereqs_;
    std::size_t noncritical_size_ = 0;
    std::map<std::size_t, WindowPlan> cache_;
};

}  // namespace espread::proto
