#include "protocol/receiver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace espread::proto {

Receiver::Receiver(std::size_t window_ldus, std::vector<std::size_t> layer_sizes,
                   std::vector<std::vector<std::size_t>> prereqs)
    : window_ldus_(window_ldus),
      layer_sizes_(std::move(layer_sizes)),
      prereqs_(std::move(prereqs)) {
    if (window_ldus_ == 0) {
        throw std::invalid_argument("Receiver: window must be positive");
    }
    if (prereqs_.size() != window_ldus_) {
        throw std::invalid_argument("Receiver: prereqs size != window");
    }
}

void Receiver::trace_drop(obs::EventType type, const DataPacket& p,
                          sim::SimTime now) {
    if (!trace_) return;
    obs::TraceEvent e;
    e.time = now;
    e.type = type;
    e.actor = obs::Actor::kClient;
    e.window = p.window;
    e.seq = p.seq;
    e.arg = static_cast<std::int64_t>(p.frame_index);
    trace_->record(e);
}

void Receiver::on_packet(const DataPacket& p, sim::SimTime now) {
    ++packets_seen_;
    if (p.parity) return;
    if (finalized_.count(p.window)) {
        // The window already played out; a late/reordered/duplicated copy
        // must not resurrect per-window state (it would leak until session
        // end and corrupt a re-finalize).
        ++stale_dropped_;
        trace_drop(obs::EventType::kStaleDropped, p, now);
        return;
    }
    if (p.num_fragments == 0 || p.fragment >= p.num_fragments ||
        p.layer >= layer_sizes_.size() ||
        (window_limit_ != 0 && p.window >= window_limit_)) {
        // Only a corrupted-but-decodable header can claim an impossible
        // geometry; dropping it beats a FrameAssembly that can never (or
        // instantly) complete.
        ++mismatch_dropped_;
        return;
    }
    const std::size_t local = p.frame_index % window_ldus_;
    WindowState& w = windows_[p.window];
    FrameAssembly& fa = w.frames[local];
    if (fa.num_fragments == 0) {
        // First packet of the frame pins its geometry.
        fa.num_fragments = p.num_fragments;
        fa.layer = p.layer;
        fa.tx_pos = p.tx_pos;
    } else if (fa.num_fragments != p.num_fragments || fa.layer != p.layer ||
               fa.tx_pos != p.tx_pos) {
        // Conflicting header for an established frame: reject the intruder
        // instead of letting it clobber fragment accounting.
        ++mismatch_dropped_;
        return;
    }
    if (fa.received.count(p.fragment)) {
        // Retransmission/duplication overlap: each LDU fragment counts once.
        ++duplicates_dropped_;
        trace_drop(obs::EventType::kDupDropped, p, now);
        return;
    }
    fa.received.insert(p.fragment);
    if (fa.complete()) {
        fa.completed_at = now;
        if (trace_) {
            obs::TraceEvent e;
            e.time = now;
            e.type = obs::EventType::kFrameComplete;
            e.actor = obs::Actor::kClient;
            e.window = p.window;
            e.seq = p.seq;
            e.arg = static_cast<std::int64_t>(p.frame_index);
            trace_->record(e);
        }
    }
}

void Receiver::on_trailer(const WindowTrailer& t) {
    if (window_limit_ != 0 && t.window >= window_limit_) {
        ++mismatch_dropped_;
        return;
    }
    if (finalized_.count(t.window)) {
        ++stale_dropped_;
        return;
    }
    WindowState& w = windows_[t.window];
    if (w.trailer_seen) {
        // First trailer wins; a duplicated (possibly corrupted) repeat must
        // not rewrite the sent counts.
        ++duplicates_dropped_;
        return;
    }
    w.layer_sent = t.layer_sent;
    w.trailer_seen = true;
}

WindowOutcome Receiver::finalize(std::size_t window) {
    WindowOutcome out = outcome_of(window);
    finalized_.insert(window);
    windows_.erase(window);
    return out;
}

WindowOutcome Receiver::report(std::size_t window) const {
    return outcome_of(window);
}

std::uint64_t Receiver::incomplete_frames(std::size_t window) const {
    if (finalized_.count(window)) return 0;
    const std::size_t span = std::min<std::size_t>(window_ldus_, 64);
    std::uint64_t missing = span == 64 ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << span) - 1;
    const auto it = windows_.find(window);
    if (it == windows_.end()) return missing;
    for (const auto& [local, fa] : it->second.frames) {
        if (local < span && fa.complete()) missing &= ~(std::uint64_t{1} << local);
    }
    return missing;
}

WindowOutcome Receiver::outcome_of(std::size_t window) const {
    WindowOutcome out;
    out.playback.assign(window_ldus_, false);
    out.layer_max_burst.assign(layer_sizes_.size(), 0);
    out.layer_lost.assign(layer_sizes_.size(), 0);
    out.playable_at.assign(window_ldus_, std::nullopt);

    const auto it = windows_.find(window);
    if (it == windows_.end()) {
        // Nothing arrived: every layer is one solid loss burst (up to its
        // size — without a trailer we cannot know how much was sent, so
        // report the full layer as the conservative estimate).
        for (std::size_t l = 0; l < layer_sizes_.size(); ++l) {
            out.layer_max_burst[l] = layer_sizes_[l];
            out.layer_lost[l] = layer_sizes_[l];
        }
        return out;
    }
    const WindowState& w = it->second;
    out.trailer_seen = w.trailer_seen;

    // Frame completeness in playback order.
    std::vector<bool> complete(window_ldus_, false);
    for (const auto& [local, fa] : w.frames) {
        if (fa.complete()) {
            complete[local] = true;
            ++out.frames_received;
        }
    }

    // Decodability: a frame plays only if complete and all prerequisites
    // play.  Local prerequisite indices are always lower-layer frames; we
    // resolve with a fixed-point pass over playback order (prerequisites
    // can sit after a frame in playback order, e.g. a B frame's forward
    // anchor, so one pass in index order is not enough).
    out.playback.assign(complete.begin(), complete.end());
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < window_ldus_; ++f) {
            if (!out.playback[f]) continue;
            for (const std::size_t q : prereqs_[f]) {
                if (!out.playback[q]) {
                    out.playback[f] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
    for (std::size_t f = 0; f < window_ldus_; ++f) {
        if (complete[f] && !out.playback[f]) ++out.undecodable;
    }

    // Playable instants: a frame can be decoded once it AND all its
    // prerequisites have fully arrived, so its playable time is the max of
    // the completion times along its dependency cone (fixed point, since
    // forward prerequisites exist).
    out.playable_at.assign(window_ldus_, std::nullopt);
    for (const auto& [local, fa] : w.frames) {
        if (out.playback[local]) out.playable_at[local] = fa.completed_at;
    }
    changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < window_ldus_; ++f) {
            if (!out.playable_at[f].has_value()) continue;
            for (const std::size_t q : prereqs_[f]) {
                // playback[f] implies playback[q], so q has a time.
                if (*out.playable_at[q] > *out.playable_at[f]) {
                    out.playable_at[f] = out.playable_at[q];
                    changed = true;
                }
            }
        }
    }

    // Per-layer wire-order loss runs.  Measurement span per layer: the
    // trailer's sent count when available, otherwise up to the highest
    // position received (losses beyond it are indistinguishable from
    // sender-side drops).
    for (std::size_t l = 0; l < layer_sizes_.size(); ++l) {
        std::vector<bool> got(layer_sizes_[l], false);
        std::size_t max_pos_seen = 0;
        bool any = false;
        for (const auto& [local, fa] : w.frames) {
            if (fa.layer == l && fa.complete() && fa.tx_pos < got.size()) {
                got[fa.tx_pos] = true;
                max_pos_seen = std::max(max_pos_seen, fa.tx_pos);
                any = true;
            }
        }
        std::size_t span = 0;
        if (w.trailer_seen && l < w.layer_sent.size()) {
            span = std::min(w.layer_sent[l], layer_sizes_[l]);
        } else if (any) {
            span = max_pos_seen + 1;
        }
        std::size_t run = 0;
        for (std::size_t pos = 0; pos < span; ++pos) {
            if (!got[pos]) {
                ++run;
                ++out.layer_lost[l];
                out.layer_max_burst[l] = std::max(out.layer_max_burst[l], run);
            } else {
                run = 0;
            }
        }
    }

    return out;
}

}  // namespace espread::proto
