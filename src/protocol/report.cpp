#include "protocol/report.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/stats.hpp"

namespace espread::proto {

void write_csv(std::ostream& out, const SessionResult& result) {
    out << "window,clf,lost_ldus,alf,undecodable,sender_dropped,"
           "retransmissions,actual_packet_burst,bound_used,playout_clf\n";
    for (const WindowReport& w : result.windows) {
        out << w.window << ',' << w.clf << ',' << w.lost_ldus << ','
            << sim::format_fixed(w.alf, 6) << ',' << w.undecodable << ','
            << w.sender_dropped << ',' << w.retransmissions << ','
            << w.actual_packet_burst << ',' << w.bound_used << ',';
        if (w.window < result.playout_window_clf.size()) {
            out << result.playout_window_clf[w.window];
        }
        out << '\n';
    }
}

void write_csv_file(const std::string& path, const SessionResult& result) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
    write_csv(out, result);
    if (!out) throw std::runtime_error("write_csv_file: write failed: " + path);
}

void write_event_csv(std::ostream& out, std::vector<obs::TraceEvent> events) {
    std::stable_sort(events.begin(), events.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                         return a.time < b.time;
                     });
    out << "time_s,actor,event,window,seq,arg,v0,v1\n";
    for (const obs::TraceEvent& e : events) {
        out << sim::format_fixed(static_cast<double>(e.time) / 1e9, 9) << ','
            << obs::actor_name(e.actor) << ',' << obs::event_name(e.type)
            << ',' << e.window << ',' << e.seq << ',' << e.arg << ','
            << sim::format_fixed(e.v0, 6) << ',' << sim::format_fixed(e.v1, 6)
            << '\n';
    }
}

void write_event_csv_file(const std::string& path,
                          std::vector<obs::TraceEvent> events) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("write_event_csv_file: cannot open " + path);
    }
    write_event_csv(out, std::move(events));
    if (!out) {
        throw std::runtime_error("write_event_csv_file: write failed: " + path);
    }
}

std::string summarize(const SessionResult& result) {
    const sim::RunningStats s = result.clf_stats();
    const sim::RunningStats p = result.playout_clf_stats();
    // Quantiles come from an exact integer histogram of the per-window
    // CLFs (sim::Histogram::quantile), not from re-sorting the series.
    sim::Histogram clf_hist;
    for (const WindowReport& w : result.windows) {
        clf_hist.add(static_cast<std::int64_t>(w.clf));
    }
    std::ostringstream out;
    out << result.windows.size() << " windows: CLF mean "
        << sim::format_fixed(s.mean(), 2) << " dev "
        << sim::format_fixed(s.deviation(), 2) << " max "
        << sim::format_fixed(s.max(), 0) << " p50 " << clf_hist.quantile(0.50)
        << " p99 " << clf_hist.quantile(0.99) << "; playout CLF mean "
        << sim::format_fixed(p.mean(), 2) << "; ALF "
        << sim::format_fixed(result.total.alf, 3) << "; packets "
        << result.data_channel.sent << " sent / " << result.data_channel.dropped
        << " dropped; ACKs applied " << result.acks_applied << "/"
        << result.acks_sent << "; required startup "
        << sim::format_fixed(static_cast<double>(result.required_startup) / 1e6,
                             1)
        << " ms";
    // Governor accounting appears only for governed sessions, keeping
    // ungoverned summaries byte-identical to pre-governor builds.
    const GovernorReport& g = result.governor;
    const std::size_t governed_windows =
        g.windows_in_state[0] + g.windows_in_state[1] + g.windows_in_state[2] +
        g.windows_in_state[3];
    if (governed_windows > 0) {
        out << "; governor N/D/F/R " << g.windows_in_state[0] << "/"
            << g.windows_in_state[1] << "/" << g.windows_in_state[2] << "/"
            << g.windows_in_state[3] << ", visits " << g.state_entries[0]
            << "/" << g.state_entries[1] << "/" << g.state_entries[2] << "/"
            << g.state_entries[3] << ", longest dwell " << g.longest_dwell[0]
            << "/" << g.longest_dwell[1] << "/" << g.longest_dwell[2] << "/"
            << g.longest_dwell[3] << ", ACKs rejected " << g.acks_rejected()
            << ", clamped " << g.observations_clamped << ", fallbacks "
            << g.fallbacks;
    }
    return out.str();
}

}  // namespace espread::proto
