#include "protocol/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/stats.hpp"

namespace espread::proto {

void write_csv(std::ostream& out, const SessionResult& result) {
    out << "window,clf,lost_ldus,alf,undecodable,sender_dropped,"
           "retransmissions,actual_packet_burst,bound_used\n";
    for (const WindowReport& w : result.windows) {
        out << w.window << ',' << w.clf << ',' << w.lost_ldus << ','
            << sim::format_fixed(w.alf, 6) << ',' << w.undecodable << ','
            << w.sender_dropped << ',' << w.retransmissions << ','
            << w.actual_packet_burst << ',' << w.bound_used << '\n';
    }
}

void write_csv_file(const std::string& path, const SessionResult& result) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
    write_csv(out, result);
    if (!out) throw std::runtime_error("write_csv_file: write failed: " + path);
}

std::string summarize(const SessionResult& result) {
    const sim::RunningStats s = result.clf_stats();
    std::ostringstream out;
    out << result.windows.size() << " windows: CLF mean "
        << sim::format_fixed(s.mean(), 2) << " dev "
        << sim::format_fixed(s.deviation(), 2) << " max "
        << sim::format_fixed(s.max(), 0) << "; ALF "
        << sim::format_fixed(result.total.alf, 3) << "; packets "
        << result.data_channel.sent << " sent / " << result.data_channel.dropped
        << " dropped; ACKs applied " << result.acks_applied << "/"
        << result.acks_sent;
    return out.str();
}

}  // namespace espread::proto
