#include "protocol/playout.hpp"

#include <algorithm>
#include <stdexcept>

namespace espread::proto {

PlayoutClock::PlayoutClock(double frame_rate, sim::SimTime startup_delay)
    : frame_rate_(frame_rate), startup_delay_(startup_delay) {
    if (frame_rate <= 0.0) {
        throw std::invalid_argument("PlayoutClock: frame rate must be positive");
    }
    if (startup_delay < 0) {
        throw std::invalid_argument("PlayoutClock: negative startup delay");
    }
}

sim::SimTime PlayoutClock::deadline(std::size_t frame) const noexcept {
    return startup_delay_ +
           sim::from_seconds(static_cast<double>(frame) / frame_rate_);
}

void PlayoutClock::frame_ready(std::size_t frame, sim::SimTime when) {
    if (frame >= ready_.size()) ready_.resize(frame + 1);
    if (!ready_[frame].has_value() || when < *ready_[frame]) {
        ready_[frame] = when;
    }
}

bool PlayoutClock::on_time(std::size_t frame) const {
    if (frame >= ready_.size() || !ready_[frame].has_value()) return false;
    return *ready_[frame] < deadline(frame);
}

std::optional<sim::SimTime> PlayoutClock::slack(std::size_t frame) const {
    if (frame >= ready_.size() || !ready_[frame].has_value()) return std::nullopt;
    return deadline(frame) - *ready_[frame];
}

LossMask PlayoutClock::playback_mask(std::size_t count) const {
    LossMask mask(count, false);
    for (std::size_t f = 0; f < count; ++f) mask[f] = on_time(f);
    return mask;
}

sim::SimTime PlayoutClock::required_startup_delay(std::size_t count) const {
    sim::SimTime required = 0;
    for (std::size_t f = 0; f < count && f < ready_.size(); ++f) {
        if (!ready_[f].has_value()) continue;
        // frame f is on time iff startup + f/rate > ready time.
        const sim::SimTime ideal_offset =
            sim::from_seconds(static_cast<double>(f) / frame_rate_);
        required = std::max(required, *ready_[f] - ideal_offset + 1);
    }
    return required;
}

}  // namespace espread::proto
