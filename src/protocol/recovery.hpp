// Sender-side repair scheduler of the receiver-authoritative recovery
// plane (DESIGN.md §13).
//
// The client names its losses (NackRequest: missing-frame bitmap + RLC
// rank deficit) and this scheduler decides whether, and how hard, the
// sender answers.  It owns the control-plane state only — admission
// (per-window retry dedupe), the bounded job queue with
// earliest-deadline-first eviction under overload, the feedback watchdog,
// and the governor gating — while the Session performs the actual
// side-band sends, so the scheduler is a small deterministic state machine
// that unit tests drive directly.
//
// Servicing policy, closing the loop between the governor (PR 4) and the
// FEC arm (PR 8):
//   * Normal / ungoverned with live feedback: serve a NACK immediately,
//     spending up to max_repairs_per_nack repair credits plus the
//     requested retransmissions.
//   * Degraded / Fallback: repair spending is suspended — jobs queue
//     (bounded, shedding the earliest deadline first) and the RLC credit
//     schedule reverts to fixed proactive emission, because the same
//     signal that degraded the estimator (missing/hostile feedback) makes
//     NACKs untrustworthy or absent.
//   * Recovering: slew-limited — one queued job is released per window.
//   * Watchdog (ungoverned sessions): watchdog_windows consecutive
//     windows without feedback flips the plane to proactive mode (fixed
//     credit schedule) until feedback returns, so a dead feedback path
//     degrades to the pure FEC/spreading behavior instead of banking
//     credits forever.
//
// Window indices are the only clock (like the governor), so a governed,
// NACK-driven session remains a pure function of (config, seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "protocol/config.hpp"
#include "protocol/governor.hpp"
#include "protocol/wire.hpp"
#include "sim/event_queue.hpp"

namespace espread::proto {

/// Operating mode of the repair plane, derived each window from the
/// watchdog and (when governed) the governor state.
enum class RecoveryMode : std::uint8_t {
    kReactive = 0,   ///< feedback live: NACK-driven spending
    kSuspended = 1,  ///< governor Degraded/Fallback: queue, spend nothing
    kProactive = 2,  ///< feedback dead: fixed credit schedule (degraded)
};

const char* recovery_mode_name(RecoveryMode m) noexcept;

/// One admitted repair request awaiting service.
struct RepairJob {
    std::uint64_t seq = 0;         ///< NACK sequence (tracing only)
    std::size_t window = 0;
    std::uint64_t missing = 0;     ///< local-frame bitmap from the NACK
    std::size_t rank_deficit = 0;
    std::size_t retry = 0;
    sim::SimTime deadline = 0;     ///< window's playout-budget end
};

/// Counters surfaced through SessionResult metrics (recovery.* keys).
struct RepairSchedulerReport {
    std::size_t nacks_admitted = 0;
    std::size_t nacks_duplicate = 0;   ///< retry round already serviced
    std::size_t nacks_invalid = 0;     ///< implausible window (forged/corrupt)
    std::size_t jobs_shed = 0;         ///< evicted by queue overflow
    std::size_t jobs_expired = 0;      ///< deadline passed before service
    std::size_t watchdog_timeouts = 0; ///< reactive -> proactive flips
    std::size_t windows_reactive = 0;
    std::size_t windows_suspended = 0;
    std::size_t windows_proactive = 0;
};

/// Decides admission, queueing and per-window service budgets for repair
/// requests.  The Session calls on_window_start once per window (in
/// window order), offers every decoded NackRequest via admit, and asks
/// next_job for work it is allowed to perform now.
class RepairScheduler {
public:
    /// `num_windows` bounds plausible NACK windows; `governed` selects
    /// governor gating over the watchdog for suspension decisions.
    RepairScheduler(const RecoveryConfig& cfg, std::size_t num_windows);

    /// Clocks the watchdog and publishes the mode for window `k`.  With a
    /// governor, its state for this window decides suspension; without
    /// one, the watchdog does.  Returns the mode in force.
    RecoveryMode on_window_start(std::size_t k,
                                 std::optional<GovernorState> governor_state);

    /// Any feedback-path arrival (ACK or NACK) feeds the watchdog.
    void on_feedback_alive();

    /// Offers one decoded NackRequest.  Returns a job when the request is
    /// admitted (fresh window/retry and plausible window index); nullopt
    /// when it is refused (duplicate retry, stale, or forged).  Admitted
    /// jobs are NOT queued — the caller either services the job now
    /// (mode() == kReactive) or hands it back via enqueue.
    std::optional<RepairJob> admit(const NackRequest& n, sim::SimTime deadline,
                                   sim::SimTime now);

    /// Parks an admitted job while servicing is suspended.  A full queue
    /// sheds the job with the earliest deadline (returned so the caller
    /// can trace kRepairShed; nullopt when nothing was shed).
    std::optional<RepairJob> enqueue(RepairJob job);

    /// True when the mode and this window's service budget allow spending
    /// on a repair job right now (Recovering is slew-limited to one job
    /// per window; suspended and proactive windows allow none).
    bool may_service_now() const noexcept;

    /// Debits this window's service budget after the caller performed one
    /// job's sends.
    void note_serviced() noexcept;

    /// Releases the next queued job the current mode and budget allow.
    /// Expired jobs (deadline <= now) are dropped and counted.  Call
    /// repeatedly until nullopt; the caller performs the sends and then
    /// calls note_serviced.
    std::optional<RepairJob> next_job(sim::SimTime now);

    RecoveryMode mode() const noexcept { return mode_; }
    std::size_t queued() const noexcept { return queue_.size(); }
    const RepairSchedulerReport& report() const noexcept { return report_; }

private:
    RecoveryConfig cfg_;
    std::size_t num_windows_;
    RecoveryMode mode_ = RecoveryMode::kReactive;
    std::size_t service_budget_ = 0;  ///< jobs this window may still spend on
    std::size_t windows_since_feedback_ = 0;
    bool feedback_seen_this_window_ = false;
    std::vector<RepairJob> queue_;  ///< unordered; scanned (bounded by queue_limit)
    /// Highest retry round serviced per window, +1 (0 = none yet).
    std::vector<std::uint8_t> serviced_retry_;
    RepairSchedulerReport report_;
};

}  // namespace espread::proto
