// Buffer requirement calculation (paper §4.1).
//
// Server and client each hold a buffer of N = W GOPs of frames; sized by
// the worst case, that is W * maxGOP bits (the paper works the example of
// Star Wars: a 932 710-bit maximum GOP is ~113 KB, so even several GOPs of
// buffering is "quite viable").  Buffering W GOPs also delays start-up by
// W / (GOPs displayed per second).
#pragma once

#include <cstddef>

#include "media/trace.hpp"

namespace espread::proto {

/// Sizing result for one movie and buffer depth.
struct BufferRequirement {
    std::size_t frames = 0;     ///< N: LDUs buffered (W * GOP size)
    std::size_t bits = 0;       ///< worst-case buffer occupancy
    std::size_t bytes = 0;      ///< same in bytes (rounded up)
    double startup_delay_s = 0; ///< time to fill the client buffer
};

/// Computes the paper's buffer requirement for `gops` (W) buffered GOPs of
/// the given movie.  Throws std::invalid_argument when gops == 0.
BufferRequirement buffer_requirement(const media::MovieStats& movie, std::size_t gops);

}  // namespace espread::proto
