// Wire-format records exchanged between server and client.
//
// These carry only header-style metadata (sequence numbers, window/layer
// coordinates); payload bits are simulated by size accounting on the
// channel, never materialized.  The byte-level encoding (protocol/codec)
// seals every record with a trailing 16-bit checksum so corrupted headers
// are rejected at decode time instead of poisoning receiver state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace espread::proto {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over `size` bytes.  Every
/// encoded record carries this over its preceding bytes as its final two
/// bytes (big-endian); decoders verify it before reading any field, which
/// is what turns random bit flips into clean kCorruptRejected drops rather
/// than plausible-but-wrong headers.
std::uint16_t wire_checksum(const std::uint8_t* data, std::size_t size) noexcept;

/// One data packet: a fragment of one frame of one buffer window.
struct DataPacket {
    std::uint64_t seq = 0;       ///< global packet sequence number
    std::size_t window = 0;      ///< buffer-window number
    std::size_t layer = 0;       ///< transmission layer id within the window
    std::size_t tx_pos = 0;      ///< frame's position in its layer's wire order
    std::size_t frame_index = 0; ///< global playback index of the frame
    std::size_t fragment = 0;    ///< fragment number within the frame
    std::size_t num_fragments = 1;
    std::size_t size_bits = 0;
    bool retransmission = false;
    bool parity = false;         ///< FEC parity packet (carries no frame data)
    std::size_t fec_group = 0;   ///< FEC group id within the window (if FEC on)
};

/// One repair packet of the sliding-window random-linear code (DESIGN.md
/// §12): a GF(256) combination of the source packets [base, base+count).
/// The coefficient vector never travels — the receiver re-expands it from
/// `cseed` (fec::expand_coefficients), keeping the header constant-size.
struct RepairPacket {
    std::uint64_t seq = 0;       ///< global packet sequence number
    std::size_t window = 0;      ///< buffer window it was emitted in
    std::uint64_t base = 0;      ///< first source index in the combination
    std::size_t count = 1;       ///< source packets combined, in [1, 255]
    std::uint64_t cseed = 0;     ///< coefficient seed
    std::size_t size_bits = 0;   ///< coded payload bits on the wire
};

/// End-of-window control record: tells the client how many frames were
/// actually sent per layer, so sender-side deadline drops are not mistaken
/// for network losses when estimating the burst bound.  Subject to loss
/// like any packet; the client falls back to a conservative estimate.
struct WindowTrailer {
    std::uint64_t seq = 0;
    std::size_t window = 0;
    std::vector<std::size_t> layer_sent;  ///< frames sent per layer
};

/// Client -> server feedback (the paper's ACK): per-layer estimates of the
/// largest consecutive frame loss observed in transmission order.
struct Feedback {
    std::uint64_t seq = 0;    ///< ACK sequence number (out-of-order ACKs ignored)
    std::size_t window = 0;   ///< which buffer window this reports on
    std::vector<std::size_t> layer_max_burst;  ///< frames, per layer
    std::vector<std::size_t> layer_lost;       ///< lost frame count, per layer
};

/// Client -> server repair request (receiver-authoritative recovery plane):
/// the client names what it is still missing for one buffer window — a
/// bitmap over the window's first 64 local frames plus the RLC decoder's
/// rank deficit — and the sender answers with retransmissions or extra
/// repair packets over the side band.  `retry` sequences the client's
/// timeout/backoff rounds so a reordered or duplicated NACK cannot trigger
/// double servicing.
struct NackRequest {
    std::uint64_t seq = 0;        ///< NACK sequence number (its own space)
    std::size_t window = 0;       ///< buffer window the request covers
    std::uint64_t missing = 0;    ///< bit f set = local frame f incomplete
    std::size_t rank_deficit = 0; ///< RLC equations short of full rank, in [0, 255]
    std::size_t retry = 0;        ///< backoff round that produced it, in [0, 255]
};

}  // namespace espread::proto
