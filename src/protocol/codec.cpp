#include "protocol/codec.hpp"

#include <array>

namespace espread::proto {

namespace {

// Slicing-by-4 tables for CRC-16/CCITT-FALSE (poly 0x1021, MSB-first).
// kCrcTables[k][b] is the CRC contribution of byte b followed by k zero
// bytes: table 0 is the classic byte-at-a-time table, and each higher
// table advances the previous one by one zero byte
// (T[k][b] = (T[k-1][b] << 8) ^ T[0][T[k-1][b] >> 8]).  Computed at
// compile time, so the binary carries the 2 KiB of tables and no init
// code.
constexpr std::array<std::array<std::uint16_t, 256>, 4> make_crc_tables() {
    std::array<std::array<std::uint16_t, 256>, 4> t{};
    for (unsigned b = 0; b < 256; ++b) {
        unsigned crc = b << 8;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 0x8000u) ? ((crc << 1) ^ 0x1021u) : (crc << 1);
            crc &= 0xFFFFu;
        }
        t[0][b] = static_cast<std::uint16_t>(crc);
    }
    for (std::size_t k = 1; k < 4; ++k) {
        for (unsigned b = 0; b < 256; ++b) {
            const unsigned prev = t[k - 1][b];
            t[k][b] = static_cast<std::uint16_t>(((prev << 8) & 0xFFFFu) ^
                                                 t[0][prev >> 8]);
        }
    }
    return t;
}

constexpr std::array<std::array<std::uint16_t, 256>, 4> kCrcTables =
    make_crc_tables();

}  // namespace

std::uint16_t wire_checksum(const std::uint8_t* data, std::size_t size) noexcept {
    // CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection/xorout.
    // Slicing-by-4: four table lookups per 4 input bytes instead of 32
    // conditional shift-xors (bitwise reference kept in bench_micro as
    // BM_WireChecksumBitwise; equivalence pinned by test_codec).
    unsigned crc = 0xFFFFu;
    std::size_t i = 0;
    for (; i + 4 <= size; i += 4) {
        const unsigned t0 = data[i] ^ (crc >> 8);
        const unsigned t1 = data[i + 1] ^ (crc & 0xFFu);
        crc = kCrcTables[3][t0] ^ kCrcTables[2][t1] ^
              kCrcTables[1][data[i + 2]] ^ kCrcTables[0][data[i + 3]];
    }
    for (; i < size; ++i) {
        crc = ((crc << 8) & 0xFFFFu) ^ kCrcTables[0][(crc >> 8) ^ data[i]];
    }
    return static_cast<std::uint16_t>(crc);
}

namespace {

constexpr std::size_t kChecksumBytes = 2;

/// Appends the record checksum over everything encoded so far.
void seal(std::vector<std::uint8_t>& out) {
    const std::uint16_t crc = wire_checksum(out.data(), out.size());
    out.push_back(static_cast<std::uint8_t>(crc >> 8));
    out.push_back(static_cast<std::uint8_t>(crc));
}

/// Verifies the trailing checksum; false for records too short to carry one.
bool checksum_ok(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < kChecksumBytes + 1) return false;
    const std::size_t body = bytes.size() - kChecksumBytes;
    const std::uint16_t stored =
        static_cast<std::uint16_t>((bytes[body] << 8) | bytes[body + 1]);
    return wire_checksum(bytes.data(), body) == stored;
}

/// Big-endian fixed-width writers/readers.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
    put_u32(out, static_cast<std::uint32_t>(v));
}

/// Cursor-based reader over the record body (the bytes before the trailing
/// checksum) that refuses to run past the end.
class Reader {
public:
    /// Precondition: checksum_ok(bytes), so bytes.size() > kChecksumBytes.
    explicit Reader(const std::vector<std::uint8_t>& bytes)
        : bytes_(bytes), limit_(bytes.size() - kChecksumBytes) {}

    bool u8(std::uint8_t& v) {
        if (pos_ + 1 > limit_) return false;
        v = bytes_[pos_++];
        return true;
    }
    bool u32(std::uint32_t& v) {
        if (pos_ + 4 > limit_) return false;
        v = (static_cast<std::uint32_t>(bytes_[pos_]) << 24) |
            (static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 16) |
            (static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 8) |
            static_cast<std::uint32_t>(bytes_[pos_ + 3]);
        pos_ += 4;
        return true;
    }
    bool u64(std::uint64_t& v) {
        std::uint32_t hi = 0;
        std::uint32_t lo = 0;
        if (!u32(hi) || !u32(lo)) return false;
        v = (static_cast<std::uint64_t>(hi) << 32) | lo;
        return true;
    }
    bool exhausted() const { return pos_ == limit_; }

private:
    const std::vector<std::uint8_t>& bytes_;
    std::size_t limit_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kFlagRetransmission = 1u << 0;
constexpr std::uint8_t kFlagParity = 1u << 1;

}  // namespace

std::vector<std::uint8_t> encode(const DataPacket& p) {
    std::vector<std::uint8_t> out;
    out.reserve(data_packet_header_bytes());
    put_u8(out, static_cast<std::uint8_t>(WireType::kData));
    put_u32(out, static_cast<std::uint32_t>(p.seq));
    put_u32(out, static_cast<std::uint32_t>(p.window));
    put_u8(out, static_cast<std::uint8_t>(p.layer));
    put_u32(out, static_cast<std::uint32_t>(p.tx_pos));
    put_u32(out, static_cast<std::uint32_t>(p.frame_index));
    put_u8(out, static_cast<std::uint8_t>(p.fragment));
    put_u8(out, static_cast<std::uint8_t>(p.num_fragments));
    put_u32(out, static_cast<std::uint32_t>(p.size_bits));
    std::uint8_t flags = 0;
    if (p.retransmission) flags |= kFlagRetransmission;
    if (p.parity) flags |= kFlagParity;
    put_u8(out, flags);
    put_u32(out, static_cast<std::uint32_t>(p.fec_group));
    seal(out);
    return out;
}

std::size_t data_packet_header_bytes() noexcept {
    // tag + seq + window + layer + tx_pos + frame + frag + nfrags + size +
    // flags + fec_group + crc16.  seq and frame_index travel as 32-bit
    // values — 4 G packets / frames per session is ample — keeping the
    // header within the 256 bits the simulator budgets per packet.
    return 1 + 4 + 4 + 1 + 4 + 4 + 1 + 1 + 4 + 1 + 4 + kChecksumBytes;
}

std::vector<std::uint8_t> encode(const RepairPacket& r) {
    std::vector<std::uint8_t> out;
    out.reserve(repair_packet_header_bytes());
    put_u8(out, static_cast<std::uint8_t>(WireType::kRepair));
    put_u32(out, static_cast<std::uint32_t>(r.seq));
    put_u32(out, static_cast<std::uint32_t>(r.window));
    put_u32(out, static_cast<std::uint32_t>(r.base));
    put_u8(out, static_cast<std::uint8_t>(r.count));
    put_u64(out, r.cseed);
    put_u32(out, static_cast<std::uint32_t>(r.size_bits));
    seal(out);
    return out;
}

std::size_t repair_packet_header_bytes() noexcept {
    // tag + seq + window + base + count + cseed + size + crc16: the
    // coefficient vector is derived from cseed at the receiver, so the
    // repair header is constant-size and fits the same 256-bit budget as
    // the data header.
    return 1 + 4 + 4 + 4 + 1 + 8 + 4 + kChecksumBytes;
}

std::vector<std::uint8_t> encode(const NackRequest& n) {
    std::vector<std::uint8_t> out;
    out.reserve(nack_request_header_bytes());
    put_u8(out, static_cast<std::uint8_t>(WireType::kNack));
    put_u32(out, static_cast<std::uint32_t>(n.seq));
    put_u32(out, static_cast<std::uint32_t>(n.window));
    put_u64(out, n.missing);
    put_u8(out, static_cast<std::uint8_t>(n.rank_deficit));
    put_u8(out, static_cast<std::uint8_t>(n.retry));
    seal(out);
    return out;
}

std::size_t nack_request_header_bytes() noexcept {
    // tag + seq + window + missing bitmap + rank_deficit + retry + crc16.
    // 21 bytes = 168 bits, comfortably inside the simulator's 512-bit
    // feedback budget (cfg.feedback_bits), so NACKs cost one feedback-sized
    // datagram on the wire.
    return 1 + 4 + 4 + 8 + 1 + 1 + kChecksumBytes;
}

std::vector<std::uint8_t> encode(const WindowTrailer& t) {
    std::vector<std::uint8_t> out;
    put_u8(out, static_cast<std::uint8_t>(WireType::kTrailer));
    put_u64(out, t.seq);
    put_u32(out, static_cast<std::uint32_t>(t.window));
    put_u8(out, static_cast<std::uint8_t>(t.layer_sent.size()));
    for (const std::size_t sent : t.layer_sent) {
        put_u32(out, static_cast<std::uint32_t>(sent));
    }
    seal(out);
    return out;
}

std::vector<std::uint8_t> encode(const Feedback& f) {
    std::vector<std::uint8_t> out;
    put_u8(out, static_cast<std::uint8_t>(WireType::kFeedback));
    put_u64(out, f.seq);
    put_u32(out, static_cast<std::uint32_t>(f.window));
    put_u8(out, static_cast<std::uint8_t>(f.layer_max_burst.size()));
    for (std::size_t l = 0; l < f.layer_max_burst.size(); ++l) {
        put_u32(out, static_cast<std::uint32_t>(f.layer_max_burst[l]));
        put_u32(out, l < f.layer_lost.size()
                         ? static_cast<std::uint32_t>(f.layer_lost[l])
                         : 0u);
    }
    seal(out);
    return out;
}

std::optional<WireType> peek_type(const std::vector<std::uint8_t>& bytes) {
    if (bytes.empty()) return std::nullopt;
    switch (bytes.front()) {
        case static_cast<std::uint8_t>(WireType::kData): return WireType::kData;
        case static_cast<std::uint8_t>(WireType::kTrailer): return WireType::kTrailer;
        case static_cast<std::uint8_t>(WireType::kFeedback): return WireType::kFeedback;
        case static_cast<std::uint8_t>(WireType::kRepair): return WireType::kRepair;
        case static_cast<std::uint8_t>(WireType::kNack): return WireType::kNack;
        // espread-lint: allow(D3) wire bytes are untrusted input: an unknown tag must decode to nullopt, not assert
        default: return std::nullopt;
    }
}

std::optional<DataPacket> decode_data(const std::vector<std::uint8_t>& bytes) {
    if (peek_type(bytes) != WireType::kData) return std::nullopt;
    if (!checksum_ok(bytes)) return std::nullopt;
    Reader r{bytes};
    std::uint8_t tag = 0;
    std::uint8_t layer = 0;
    std::uint8_t fragment = 0;
    std::uint8_t num_fragments = 0;
    std::uint8_t flags = 0;
    std::uint32_t window = 0;
    std::uint32_t tx_pos = 0;
    std::uint32_t size_bits = 0;
    std::uint32_t fec_group = 0;
    std::uint32_t seq = 0;
    std::uint32_t frame_index = 0;
    DataPacket p;
    if (!r.u8(tag) || !r.u32(seq) || !r.u32(window) || !r.u8(layer) ||
        !r.u32(tx_pos) || !r.u32(frame_index) || !r.u8(fragment) ||
        !r.u8(num_fragments) || !r.u32(size_bits) || !r.u8(flags) ||
        !r.u32(fec_group) || !r.exhausted()) {
        return std::nullopt;
    }
    if (num_fragments == 0 || fragment >= num_fragments) return std::nullopt;
    // Unknown flag bits are rejected (not silently dropped): every accepted
    // byte string re-encodes to exactly itself, which the fuzz harness
    // asserts (canonical codec).
    if ((flags & ~(kFlagRetransmission | kFlagParity)) != 0) return std::nullopt;
    p.seq = seq;
    p.frame_index = frame_index;
    p.window = window;
    p.layer = layer;
    p.tx_pos = tx_pos;
    p.fragment = fragment;
    p.num_fragments = num_fragments;
    p.size_bits = size_bits;
    p.retransmission = (flags & kFlagRetransmission) != 0;
    p.parity = (flags & kFlagParity) != 0;
    p.fec_group = fec_group;
    return p;
}

std::optional<RepairPacket> decode_repair(const std::vector<std::uint8_t>& bytes) {
    if (peek_type(bytes) != WireType::kRepair) return std::nullopt;
    if (!checksum_ok(bytes)) return std::nullopt;
    Reader r{bytes};
    std::uint8_t tag = 0;
    std::uint8_t count = 0;
    std::uint32_t seq = 0;
    std::uint32_t window = 0;
    std::uint32_t base = 0;
    std::uint32_t size_bits = 0;
    RepairPacket p;
    if (!r.u8(tag) || !r.u32(seq) || !r.u32(window) || !r.u32(base) ||
        !r.u8(count) || !r.u64(p.cseed) || !r.u32(size_bits) ||
        !r.exhausted()) {
        return std::nullopt;
    }
    // A repair combining zero sources is meaningless; rejecting it keeps
    // the codec canonical (count re-encodes through a single byte).
    if (count == 0) return std::nullopt;
    p.seq = seq;
    p.window = window;
    p.base = base;
    p.count = count;
    p.size_bits = size_bits;
    return p;
}

std::optional<NackRequest> decode_nack(const std::vector<std::uint8_t>& bytes) {
    if (peek_type(bytes) != WireType::kNack) return std::nullopt;
    if (!checksum_ok(bytes)) return std::nullopt;
    Reader r{bytes};
    std::uint8_t tag = 0;
    std::uint8_t rank_deficit = 0;
    std::uint8_t retry = 0;
    std::uint32_t seq = 0;
    std::uint32_t window = 0;
    NackRequest n;
    if (!r.u8(tag) || !r.u32(seq) || !r.u32(window) || !r.u64(n.missing) ||
        !r.u8(rank_deficit) || !r.u8(retry) || !r.exhausted()) {
        return std::nullopt;
    }
    // A request naming nothing is meaningless on the wire; rejecting it
    // keeps the codec canonical and spares the server a no-op service.
    if (n.missing == 0 && rank_deficit == 0) return std::nullopt;
    n.seq = seq;
    n.window = window;
    n.rank_deficit = rank_deficit;
    n.retry = retry;
    return n;
}

std::optional<WindowTrailer> decode_trailer(const std::vector<std::uint8_t>& bytes) {
    if (peek_type(bytes) != WireType::kTrailer) return std::nullopt;
    if (!checksum_ok(bytes)) return std::nullopt;
    Reader r{bytes};
    std::uint8_t tag = 0;
    std::uint8_t layers = 0;
    std::uint32_t window = 0;
    WindowTrailer t;
    if (!r.u8(tag) || !r.u64(t.seq) || !r.u32(window) || !r.u8(layers)) {
        return std::nullopt;
    }
    t.window = window;
    t.layer_sent.resize(layers);
    for (std::uint8_t l = 0; l < layers; ++l) {
        std::uint32_t sent = 0;
        if (!r.u32(sent)) return std::nullopt;
        t.layer_sent[l] = sent;
    }
    if (!r.exhausted()) return std::nullopt;
    return t;
}

std::optional<Feedback> decode_feedback(const std::vector<std::uint8_t>& bytes) {
    if (peek_type(bytes) != WireType::kFeedback) return std::nullopt;
    if (!checksum_ok(bytes)) return std::nullopt;
    Reader r{bytes};
    std::uint8_t tag = 0;
    std::uint8_t layers = 0;
    std::uint32_t window = 0;
    Feedback f;
    if (!r.u8(tag) || !r.u64(f.seq) || !r.u32(window) || !r.u8(layers)) {
        return std::nullopt;
    }
    f.window = window;
    f.layer_max_burst.resize(layers);
    f.layer_lost.resize(layers);
    for (std::uint8_t l = 0; l < layers; ++l) {
        std::uint32_t burst = 0;
        std::uint32_t lost = 0;
        if (!r.u32(burst) || !r.u32(lost)) return std::nullopt;
        f.layer_max_burst[l] = burst;
        f.layer_lost[l] = lost;
    }
    if (!r.exhausted()) return std::nullopt;
    return f;
}

}  // namespace espread::proto
