#include "protocol/config.hpp"

#include <stdexcept>

#include "media/trace.hpp"
#include "media/trace_io.hpp"

namespace espread::proto {

const char* scheme_name(Scheme s) noexcept {
    switch (s) {
        case Scheme::kInOrder: return "in-order";
        case Scheme::kLayeredNoScramble: return "layered";
        case Scheme::kLayeredIbo: return "layered+IBO";
        case Scheme::kLayeredSpread: return "layered+CPO";
        case Scheme::kRlc: return "rlc";
        case Scheme::kHybridSpreadRlc: return "spread+rlc";
    }
    return "?";
}

std::size_t SessionConfig::window_ldus() const {
    if (stream.kind == StreamKind::kMpeg) {
        return gops_per_window * media::movie_stats(stream.movie).gop_size;
    }
    if (stream.kind == StreamKind::kTraceFile) {
        const auto frames = media::read_trace_file(stream.trace_path);
        return gops_per_window * media::infer_gop_pattern(frames).size();
    }
    return stream.ldus_per_window;
}

double SessionConfig::frame_rate() const {
    if (stream.kind == StreamKind::kMpeg) {
        return media::movie_stats(stream.movie).fps;
    }
    return stream.frame_rate;
}

sim::SimTime SessionConfig::window_duration() const {
    return sim::from_seconds(static_cast<double>(window_ldus()) / frame_rate());
}

void SessionConfig::blackout_feedback_windows(std::size_t first,
                                              std::size_t last) {
    const sim::SimTime T = window_duration();
    // Window w's ACK departs just after its playout deadline at (w+1)T;
    // cover up to the next deadline so propagation slack cannot leak it.
    feedback_impairment.blackouts.push_back(
        {static_cast<sim::SimTime>(first + 1) * T,
         static_cast<sim::SimTime>(last + 2) * T});
}

void SessionConfig::blackout_data_windows(std::size_t first, std::size_t last) {
    const sim::SimTime T = window_duration();
    data_impairment.blackouts.push_back(
        {static_cast<sim::SimTime>(first) * T,
         static_cast<sim::SimTime>(last + 1) * T});
}

void SessionConfig::validate() const {
    if (stream.kind == StreamKind::kMpeg || stream.kind == StreamKind::kTraceFile) {
        if (stream.kind == StreamKind::kMpeg) {
            media::movie_stats(stream.movie);  // throws for unknown movies
        } else if (stream.trace_path.empty()) {
            throw std::invalid_argument("SessionConfig: trace_path required");
        }
        if (gops_per_window == 0) {
            throw std::invalid_argument("SessionConfig: gops_per_window must be >= 1");
        }
    } else if (stream.ldus_per_window == 0) {
        throw std::invalid_argument("SessionConfig: ldus_per_window must be >= 1");
    }
    if (frame_rate() <= 0.0) {
        throw std::invalid_argument("SessionConfig: frame rate must be positive");
    }
    if (packet_bits == 0) {
        throw std::invalid_argument("SessionConfig: packet_bits must be positive");
    }
    if (alpha < 0.0 || alpha > 1.0) {
        throw std::invalid_argument("SessionConfig: alpha must be in [0, 1]");
    }
    if (num_windows == 0) {
        throw std::invalid_argument("SessionConfig: num_windows must be >= 1");
    }
    if (fec.group == 0 && fec.parity != 0) {
        throw std::invalid_argument("SessionConfig: FEC parity without group");
    }
    if (fec.group > 0 && fec.interleave == 0) {
        throw std::invalid_argument("SessionConfig: FEC interleave must be >= 1");
    }
    if (rlc_active()) {
        if (rlc.window_packets == 0 || rlc.window_packets > 255) {
            throw std::invalid_argument(
                "SessionConfig: rlc.window_packets must be in [1, 255]");
        }
        if (rlc.overhead_num == 0 || rlc.overhead_den == 0) {
            throw std::invalid_argument(
                "SessionConfig: RLC schemes need a positive overhead ratio");
        }
        if (fec.group > 0) {
            throw std::invalid_argument(
                "SessionConfig: RLC and group-parity FEC are mutually exclusive");
        }
    }
    if (data_link.bandwidth_bps <= 0.0 || feedback_link.bandwidth_bps <= 0.0) {
        throw std::invalid_argument("SessionConfig: bandwidth must be positive");
    }
    if (playout_startup_windows <= 0.0) {
        throw std::invalid_argument(
            "SessionConfig: playout_startup_windows must be positive");
    }
    if (predictive_reserve < 0.0 || predictive_reserve >= 1.0) {
        throw std::invalid_argument(
            "SessionConfig: predictive_reserve must be in [0, 1)");
    }
    if (estimator == EstimatorKind::kSlidingMax && sliding_history == 0) {
        throw std::invalid_argument("SessionConfig: sliding_history must be >= 1");
    }
    if (governor.enabled) {
        governor.validate();
        if (!adaptive) {
            throw std::invalid_argument(
                "SessionConfig: governor requires adaptive feedback");
        }
        if (pinned_bound != 0) {
            throw std::invalid_argument(
                "SessionConfig: governor is incompatible with pinned_bound");
        }
        if (estimator != EstimatorKind::kEwma) {
            throw std::invalid_argument(
                "SessionConfig: governor supervises the EWMA estimator only");
        }
    }
    if (recovery.enabled) {
        if (fec.group > 0) {
            // The group-parity arm has no receiver-visible codeword
            // identity to request against; the sliding-window RLC schemes
            // are the coded arms the recovery plane serves.
            throw std::invalid_argument(
                "SessionConfig: recovery plane is incompatible with "
                "group-parity FEC (use an RLC scheme)");
        }
        if (recovery.rtt_timeout_mult <= 0.0 || recovery.backoff_base < 1.0) {
            throw std::invalid_argument(
                "SessionConfig: recovery timeouts need rtt_timeout_mult > 0 "
                "and backoff_base >= 1");
        }
        if (recovery.jitter_frac < 0.0 || recovery.jitter_frac >= 1.0) {
            throw std::invalid_argument(
                "SessionConfig: recovery.jitter_frac must be in [0, 1)");
        }
        if (recovery.queue_limit == 0) {
            throw std::invalid_argument(
                "SessionConfig: recovery.queue_limit must be >= 1");
        }
        if (recovery.max_repairs_per_nack == 0) {
            throw std::invalid_argument(
                "SessionConfig: recovery.max_repairs_per_nack must be >= 1");
        }
        if (recovery.watchdog_windows == 0) {
            throw std::invalid_argument(
                "SessionConfig: recovery.watchdog_windows must be >= 1");
        }
    }
    data_impairment.validate();
    feedback_impairment.validate();
}

}  // namespace espread::proto
