#include "protocol/buffer_req.hpp"

#include <stdexcept>

namespace espread::proto {

BufferRequirement buffer_requirement(const media::MovieStats& movie,
                                     std::size_t gops) {
    if (gops == 0) {
        throw std::invalid_argument("buffer_requirement: gops must be >= 1");
    }
    BufferRequirement r;
    r.frames = gops * movie.gop_size;
    r.bits = gops * movie.max_gop_bits;
    r.bytes = (r.bits + 7) / 8;
    r.startup_delay_s =
        static_cast<double>(r.frames) / movie.fps;
    return r;
}

}  // namespace espread::proto
