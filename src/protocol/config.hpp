// Session configuration for the error-spreading transmission protocol
// (paper §4.2, Figs. 5–6; experiment parameters from §5.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "media/gop.hpp"
#include "net/channel.hpp"
#include "net/fault.hpp"
#include "net/fragment.hpp"
#include "net/gilbert.hpp"
#include "protocol/governor.hpp"

namespace espread::obs {
class TraceSink;
}

namespace espread::proto {

/// Which transmission ordering the sender uses.
enum class Scheme {
    kInOrder,           ///< MPEG coding order — the paper's "Un Scrambled" baseline
    kLayeredNoScramble, ///< layered (anchors first) but no within-layer permutation
    kLayeredIbo,        ///< layered; B layer in Inverse Binary Order (CMT baseline)
    kLayeredSpread,     ///< layered + per-layer k-CPO — the paper's scheme
    kRlc,               ///< in-order + sliding-window GF(256) RLC repairs
    kHybridSpreadRlc,   ///< spread *then* code: k-CPO order + RLC repairs
};

const char* scheme_name(Scheme s) noexcept;

/// When the sender decides to shed frames it cannot deliver on time.
enum class DropPolicy {
    /// Skip a frame at its send slot if serialization cannot finish before
    /// the playout deadline (what the deadline naturally enforces).
    kReactive,
    /// CMT-style: at window start, estimate the bit budget (bandwidth x
    /// window duration, minus a retransmission reserve) and pre-drop the
    /// lowest-priority tail that does not fit — "pktSrc can drop a set of
    /// low priority frames if it estimates that it can not deliver all of
    /// the frames in the buffer on time" (paper §4.4).
    kPredictive,
};

/// Which burst-bound estimator drives the adaptive permutation.
enum class EstimatorKind {
    kEwma,        ///< Eq. 1 exponential average (the paper's choice)
    kSlidingMax,  ///< max of the last few observations (conservative)
};

/// What kind of stream the session carries.
enum class StreamKind {
    kMpeg,      ///< GOP-structured video from the synthetic movie traces
    kMjpeg,     ///< dependency-free video frames
    kAudio,     ///< constant-bit-rate audio LDUs
    kTraceFile, ///< GOP-structured video loaded from a frame-trace file
};

/// Stream selection and sizing.
struct StreamSpec {
    StreamKind kind = StreamKind::kMpeg;
    std::string movie = "Jurassic Park";  ///< for kMpeg
    std::string trace_path;               ///< for kTraceFile (see media/trace_io.hpp)
    double mjpeg_mean_bits = 24000.0;     ///< for kMjpeg
    /// LDUs per buffer window for kMjpeg / kAudio (kMpeg/kTraceFile derive
    /// it from gops_per_window * GOP size).
    std::size_t ldus_per_window = 24;
    /// Playback rate for kMjpeg/kAudio/kTraceFile; kMpeg uses the movie's fps.
    double frame_rate = 24.0;
};

/// Optional systematic FEC applied to every data packet group (paper §4.3:
/// error spreading composes with forward error correction at the cost of
/// parity bandwidth).  A group of `group` data packets plus `parity`
/// redundant packets survives if any `group` of them arrive.
struct FecConfig {
    std::size_t group = 0;   ///< 0 disables FEC
    std::size_t parity = 0;
    /// Number of groups filled round-robin (burst interleaving).  With
    /// depth 1 a loss burst concentrates in one group and can defeat the
    /// parity; with depth d consecutive packets belong to d different
    /// groups, spreading the burst across codewords — the same idea as
    /// frame-level error spreading, applied to the FEC dimension.
    std::size_t interleave = 1;
};

/// Sliding-window random-linear streaming code (src/fec, DESIGN.md §12),
/// active for Scheme::kRlc and Scheme::kHybridSpreadRlc.  The sender keeps
/// an elastic window of the last `window_packets` data packets and emits
/// `overhead_num` repair packets per `overhead_den` data packets (a
/// rational credit accumulator, so the schedule is exact and deterministic
/// — overhead ratio = num/den).  Mutually exclusive with the group-parity
/// FecConfig above.
struct RlcConfig {
    std::size_t window_packets = 64;  ///< elastic encoding window, in [1, 255]
    std::size_t overhead_num = 1;     ///< repairs per overhead_den data packets
    std::size_t overhead_den = 10;
};

/// Receiver-authoritative recovery plane (DESIGN.md §13).  When enabled,
/// the sender-side survival oracle is out of the loop: the client detects
/// gaps and rank deficits at playout-budget-aware deadlines, requests
/// repair over the (impairable) feedback path with NackRequest records,
/// and the sender's RepairScheduler answers with retransmissions and
/// targeted RLC repairs on the side band.  The RLC credit schedule banks
/// instead of spending proactively; a feedback watchdog (and the
/// adaptation governor's Degraded/Fallback states, when governed) reverts
/// to the fixed schedule, so a dead feedback path degrades to the pure
/// FEC/spreading behavior instead of spinning.  Disabled (the default)
/// keeps the session byte-identical to a pre-recovery build.
struct RecoveryConfig {
    bool enabled = false;

    /// NACK rounds per window after the initial request piggybacked on the
    /// ACK; the hard cap that bounds feedback traffic under blackout.
    std::size_t max_retries = 3;

    /// First-round retransmission timeout, as a multiple of the configured
    /// round-trip time (data + feedback propagation).
    double rtt_timeout_mult = 1.5;

    /// Timeout multiplier per retry round (exponential backoff).
    double backoff_base = 2.0;

    /// Uniform jitter applied to every timeout, as a +/- fraction of it,
    /// drawn from a dedicated RNG lane (kSessionLaneNackJitter) so enabling
    /// recovery never shifts the loss, media, or impairment processes.
    double jitter_frac = 0.25;

    /// Bound on the sender's queued repair jobs while servicing is
    /// suspended; overload evicts the job with the earliest deadline (it
    /// is the least salvageable).
    std::size_t queue_limit = 16;

    /// Most RLC repair packets one NACK may trigger while Normal;
    /// Recovering slew-limits servicing to one queued job per window.
    std::size_t max_repairs_per_nack = 8;

    /// Consecutive windows without any feedback arrival before the
    /// watchdog declares the path dead and reverts the repair plane to the
    /// fixed proactive credit schedule.
    std::size_t watchdog_windows = 2;

    /// Cap on banked repair credits (in repair packets); credits accruing
    /// beyond it expire, bounding the reactive burst a NACK can release.
    std::size_t credit_cap = 8;
};

/// Everything that defines one simulated streaming session.
struct SessionConfig {
    StreamSpec stream;
    std::size_t gops_per_window = 2;  ///< the paper's W

    Scheme scheme = Scheme::kLayeredSpread;
    bool retransmit_critical = true;  ///< NACK-driven resend of anchor frames
    /// Resend attempts per critical frame.  The paper retransmits "upon a
    /// loss" bounded only by the playout deadline; 6 rounds of a 23 ms RTT
    /// is far below the 1 s window, so the deadline remains the binding
    /// limit as in the paper.
    std::size_t max_retransmits = 6;
    bool adaptive = true;             ///< feed client estimates into b-hat
    std::size_t pinned_bound = 0;     ///< >0 freezes the non-critical bound (ablation)
    double alpha = 0.5;               ///< Eq. 1 averaging weight
    EstimatorKind estimator = EstimatorKind::kEwma;
    std::size_t sliding_history = 4;  ///< observations kept by kSlidingMax
    /// Adaptation governor supervising the EWMA estimator (see
    /// protocol/governor.hpp): watchdog over missed feedback deadlines,
    /// window-sequenced ACK admission, outlier guard + hysteresis on
    /// estimator updates, fallback to the no-feedback prior b = n/2 under
    /// sustained outage and a staged recovery afterwards.  Disabled by
    /// default; a disabled governor keeps the session byte-identical to an
    /// ungoverned one.  Requires adaptive == true, pinned_bound == 0 and
    /// estimator == EstimatorKind::kEwma when enabled.
    GovernorConfig governor;
    DropPolicy drop_policy = DropPolicy::kReactive;
    /// Fraction of the window's bit budget kPredictive keeps back for
    /// retransmissions; in [0, 1).
    double predictive_reserve = 0.1;
    FecConfig fec;
    RlcConfig rlc;
    RecoveryConfig recovery;

    /// True when `scheme` carries the sliding-window code.
    bool rlc_active() const noexcept {
        return scheme == Scheme::kRlc || scheme == Scheme::kHybridSpreadRlc;
    }

    net::LinkConfig data_link{1.2e6, sim::from_millis(11.5)};
    net::LinkConfig feedback_link{1.2e6, sim::from_millis(11.5)};
    net::GilbertParams data_loss{0.92, 0.6};
    net::GilbertParams feedback_loss{0.92, 0.6};
    std::size_t packet_bits = net::kDefaultPacketBits;  ///< 16384 (2 KB)
    std::size_t feedback_bits = 512;

    /// Fault-injection plans for each direction (net/fault.hpp): packet
    /// reordering, duplication, header corruption (surfaced through the
    /// wire codec's checksum), delay jitter, scripted blackouts and forced
    /// bursts.  Default-constructed = inactive = byte-identical behavior to
    /// a session without the fault layer.  Impairment randomness draws from
    /// dedicated RNG streams (seed splits 4 and 5), so turning faults on
    /// does not shift the Gilbert loss or media processes.
    net::ImpairmentConfig data_impairment;
    net::ImpairmentConfig feedback_impairment;

    /// Appends a blackout to `feedback_impairment` covering the ACK
    /// departures of windows [first, last] (inclusive): the window-w ACK
    /// leaves the client shortly after (w+1) window durations.  This is the
    /// "kill the ACK path for windows 3–5" fault plan.
    void blackout_feedback_windows(std::size_t first, std::size_t last);

    /// Appends a blackout to `data_impairment` covering the data
    /// transmissions of windows [first, last] (inclusive): window w's
    /// packets depart within [w, w+1) window durations.
    void blackout_data_windows(std::size_t first, std::size_t last);

    std::size_t num_windows = 100;  ///< paper plots 100 buffer windows
    std::uint64_t seed = 1;

    /// Trace sink for the structured event timeline (src/obs); non-owning,
    /// nullptr disables tracing at the cost of one branch per event site.
    /// A sink is used by exactly one running session: when fanning this
    /// config out over the Monte-Carlo runner, only trial 0 keeps it (the
    /// other trials run untraced), so the sink is never shared across
    /// worker threads.
    obs::TraceSink* trace = nullptr;

    /// Collect named counters and histograms into SessionResult::metrics
    /// (loss-run lengths, retransmit latency, per-window bound/CLF, ...).
    bool collect_metrics = false;

    /// Client start-up delay, in buffer-window durations (paper: fill the
    /// client buffer first, i.e. 1.0).  Values below 1.0 shave latency at
    /// the cost of late frames counting as unit losses in the playout
    /// metrics; must be positive.
    double playout_startup_windows = 1.0;

    /// LDUs per buffer window for the configured stream kind.
    std::size_t window_ldus() const;

    /// Playback duration of one buffer window, in simulated time.
    sim::SimTime window_duration() const;

    /// Display rate of the configured stream.
    double frame_rate() const;

    /// Validates invariants; throws std::invalid_argument with a message on
    /// the first violation.
    void validate() const;
};

}  // namespace espread::proto
