// Client-side packet collection and per-window accounting (paper §4.2).
//
// The receiver assembles frames from fragments, marks frames undecodable
// when their prerequisites are missing (an MPEG B frame without its anchors
// cannot be displayed), and produces (a) the playback-order delivery mask
// that feeds the continuity metrics and (b) the per-layer maximum
// consecutive frame loss in transmission order — the estimate it ACKs back
// to the server.
//
// The datagram path makes no FIFO promise (net/fault.hpp injects
// reordering, duplication and corruption), so the receiver defends itself:
// duplicate fragments are discarded (each LDU counts once), packets for
// already-finalized windows are dropped instead of resurrecting window
// state, and a packet whose header conflicts with the frame's established
// geometry (fragment count / layer / wire position) is rejected rather
// than allowed to clobber it.  Each defense is counted and traced
// (kDupDropped / kStaleDropped) so impairment is observable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/wire.hpp"
#include "sim/event_queue.hpp"

namespace espread::proto {

/// Result of closing one buffer window at its playout deadline.
struct WindowOutcome {
    /// Playback-order mask over the window's LDUs: true = frame arrived
    /// complete AND all its prerequisites are playable.
    espread::LossMask playback;
    /// Frames that arrived complete but could not be decoded.
    std::size_t undecodable = 0;
    /// Frames that arrived complete (decodable or not).
    std::size_t frames_received = 0;
    /// Per layer: largest run of consecutive frame losses in wire order,
    /// measured over the frames the server reported sending (trailer), or
    /// conservatively up to the highest position seen when the trailer was
    /// lost.
    std::vector<std::size_t> layer_max_burst;
    /// Per layer: number of frames lost (same measurement span).
    std::vector<std::size_t> layer_lost;
    /// Whether the window trailer arrived.
    bool trailer_seen = false;
    /// Per local frame: the instant it became *playable* (all fragments
    /// arrived and every prerequisite playable); nullopt if it never did.
    /// Feeds the PlayoutClock.
    std::vector<std::optional<sim::SimTime>> playable_at;
};

/// Aggregates arriving packets; windows are finalized explicitly by the
/// session at each playout deadline.
class Receiver {
public:
    /// `layer_sizes`/`prereqs` come from the (negotiated) Planner; `window_ldus`
    /// is the LDU window size n.
    Receiver(std::size_t window_ldus, std::vector<std::size_t> layer_sizes,
             std::vector<std::vector<std::size_t>> prereqs);

    /// Handles one arriving data packet (parity packets are ignored here;
    /// FEC recovery re-injects recovered data packets).  `now` is the
    /// arrival instant; a frame's completion time is the arrival of its
    /// final missing fragment.
    void on_packet(const DataPacket& p, sim::SimTime now = 0);

    /// Handles the end-of-window trailer.
    void on_trailer(const WindowTrailer& t);

    /// Attaches a trace sink (non-owning; nullptr detaches).  The receiver
    /// then emits a client-track FrameComplete event when a frame's final
    /// fragment arrives.
    void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

    /// Rejects packets/trailers claiming a window >= `limit` (0 = no
    /// limit).  A corrupted-but-plausible header with a garbage window
    /// number would otherwise create per-window state that is never
    /// finalized and so never reclaimed.
    void set_window_limit(std::size_t limit) noexcept { window_limit_ = limit; }

    /// Closes window `w`: computes the outcome and releases its state.
    /// Windows may be finalized in any order; unseen windows yield an
    /// all-lost outcome.
    WindowOutcome finalize(std::size_t window);

    /// Computes the outcome of window `w` from its current state without
    /// closing it: no state is released and later packets still count.
    /// The recovery plane uses this to ACK a window at its transmission
    /// deadline while the window stays open for NACK-driven repairs until
    /// its playout budget runs out.
    WindowOutcome report(std::size_t window) const;

    /// Bitmap over the window's first min(64, n) local frames: bit f set
    /// iff frame f has not arrived complete yet.  Already-finalized
    /// windows report zero (nothing can be repaired any more).  This is
    /// the `missing` field of a NackRequest; frames the sender shed before
    /// transmission are the sender's to filter out.
    std::uint64_t incomplete_frames(std::size_t window) const;

    std::size_t packets_seen() const noexcept { return packets_seen_; }

    /// Duplicate fragments (and repeated trailers) discarded.
    std::size_t duplicates_dropped() const noexcept { return duplicates_dropped_; }
    /// Packets/trailers for already-finalized windows discarded.
    std::size_t stale_dropped() const noexcept { return stale_dropped_; }
    /// Packets whose header conflicted with established frame geometry
    /// (corrupt-but-decodable headers, or fragment ids out of range).
    std::size_t mismatch_dropped() const noexcept { return mismatch_dropped_; }

private:
    struct FrameAssembly {
        std::size_t num_fragments = 0;
        std::set<std::size_t> received;
        std::size_t layer = 0;
        std::size_t tx_pos = 0;
        sim::SimTime completed_at = 0;  ///< arrival of the last fragment
        bool complete() const noexcept { return received.size() == num_fragments; }
    };
    struct WindowState {
        std::map<std::size_t, FrameAssembly> frames;  // by local frame index
        std::vector<std::size_t> layer_sent;          // from trailer
        bool trailer_seen = false;
    };

    void trace_drop(obs::EventType type, const DataPacket& p, sim::SimTime now);
    WindowOutcome outcome_of(std::size_t window) const;

    std::size_t window_ldus_;
    std::vector<std::size_t> layer_sizes_;
    std::vector<std::vector<std::size_t>> prereqs_;
    std::map<std::size_t, WindowState> windows_;
    std::set<std::size_t> finalized_;  ///< windows already closed
    std::size_t window_limit_ = 0;     ///< 0 = unlimited
    std::size_t packets_seen_ = 0;
    std::size_t duplicates_dropped_ = 0;
    std::size_t stale_dropped_ = 0;
    std::size_t mismatch_dropped_ = 0;
    obs::TraceSink* trace_ = nullptr;
};

}  // namespace espread::proto
