// Session result export: CSV (per-window rows), a CSV event timeline from
// a trace recording, and a compact text summary, for plotting the paper's
// figures with external tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "protocol/session.hpp"

namespace espread::proto {

/// Writes one header row plus one row per buffer window:
/// window,clf,lost_ldus,alf,undecodable,sender_dropped,retransmissions,
/// actual_packet_burst,bound_used,playout_clf
/// (playout_clf is the deadline-judged CLF; windows beyond the recorded
/// playout vector write an empty field).
void write_csv(std::ostream& out, const SessionResult& result);

/// Convenience file variant; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const SessionResult& result);

/// Writes a trace recording as a flat CSV timeline sorted by time:
/// time_s,actor,event,window,seq,arg,v0,v1
/// One row per TraceEvent; actor/event are the symbolic names.
void write_event_csv(std::ostream& out, std::vector<obs::TraceEvent> events);

/// Convenience file variant; throws std::runtime_error on I/O failure.
void write_event_csv_file(const std::string& path,
                          std::vector<obs::TraceEvent> events);

/// One-paragraph human summary (mean/dev CLF, ALF, channel stats, required
/// start-up delay).
std::string summarize(const SessionResult& result);

}  // namespace espread::proto
