// Session result export: CSV (per-window rows) and a compact text summary,
// for plotting the paper's figures with external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "protocol/session.hpp"

namespace espread::proto {

/// Writes one header row plus one row per buffer window:
/// window,clf,lost_ldus,alf,undecodable,sender_dropped,retransmissions,
/// actual_packet_burst,bound_used
void write_csv(std::ostream& out, const SessionResult& result);

/// Convenience file variant; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const SessionResult& result);

/// One-paragraph human summary (mean/dev CLF, ALF, channel stats).
std::string summarize(const SessionResult& result);

}  // namespace espread::proto
