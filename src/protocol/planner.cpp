#include "protocol/planner.hpp"

#include <algorithm>

#include "core/cpo.hpp"
#include "core/interleaver.hpp"
#include "media/trace.hpp"
#include "media/trace_io.hpp"
#include "poset/layered.hpp"

namespace espread::proto {

namespace {

espread::poset::Poset make_poset(const SessionConfig& cfg) {
    if (cfg.stream.kind == StreamKind::kMpeg) {
        const media::GopPattern pattern =
            media::GopPattern::standard(media::movie_stats(cfg.stream.movie).gop_size);
        return media::build_dependency_poset(pattern, cfg.gops_per_window);
    }
    if (cfg.stream.kind == StreamKind::kTraceFile) {
        const media::GopPattern pattern = media::infer_gop_pattern(
            media::read_trace_file(cfg.stream.trace_path));
        return media::build_dependency_poset(pattern, cfg.gops_per_window);
    }
    return espread::poset::Poset{cfg.stream.ldus_per_window};
}

}  // namespace

Planner::Planner(const SessionConfig& cfg)
    : scheme_(cfg.scheme), poset_(make_poset(cfg)) {
    const std::size_t n = poset_.size();

    anchor_.assign(n, false);
    for (const std::size_t a : poset_.anchors()) anchor_[a] = true;

    prereqs_.resize(n);
    for (std::size_t f = 0; f < n; ++f) prereqs_[f] = poset_.direct_prerequisites(f);

    if (scheme_ == Scheme::kInOrder || scheme_ == Scheme::kRlc) {
        // The "usual MPEG transmission" baseline: coding order — every
        // frame after its prerequisites, otherwise as close to display
        // order as possible (I0 P1 B B P2 B B ...).  linear_extension()'s
        // lowest-index-first Kahn order is exactly that; for dependency-free
        // streams it degenerates to playback order.
        layers_.push_back(poset_.linear_extension());
    } else {
        layers_ = espread::poset::layer_members(poset_);
    }

    for (const auto& members : layers_) {
        layer_sizes_.push_back(members.size());
        const bool critical =
            !members.empty() &&
            std::all_of(members.begin(), members.end(),
                        [&](std::size_t f) { return anchor_[f]; });
        layer_critical_.push_back(critical);
        if (!critical) noncritical_size_ += members.size();
    }
}

const WindowPlan& Planner::plan(std::size_t noncritical_bound) {
    const auto it = cache_.find(noncritical_bound);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(noncritical_bound, build(noncritical_bound)).first->second;
}

WindowPlan Planner::build(std::size_t noncritical_bound) const {
    WindowPlan plan;
    plan.layer_sizes = layer_sizes_;
    plan.layer_critical = layer_critical_;
    plan.noncritical_bound = noncritical_bound;

    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::vector<std::size_t>& members = layers_[l];
        const std::size_t m = members.size();

        Permutation perm = Permutation::identity(m);
        switch (scheme_) {
            case Scheme::kInOrder:
            case Scheme::kLayeredNoScramble:
            case Scheme::kRlc:  // pure coding keeps the in-order baseline
                break;  // identity
            case Scheme::kLayeredIbo:
                // CMT behaviour: anchors in priority order, B frames in IBO.
                if (!layer_critical_[l]) perm = ibo_order(m);
                break;
            case Scheme::kLayeredSpread:
            case Scheme::kHybridSpreadRlc: {  // spread first, code on top
                // Critical layers use the fixed "average case" bound; the
                // non-critical layers use the adaptive estimate (§4.2).
                std::size_t bound = layer_critical_[l]
                                        ? (m + 1) / 2
                                        : std::min(noncritical_bound, m);
                // A bound of the whole layer is degenerate (any order has
                // worst-case CLF m, so the core returns the identity); after
                // a catastrophic window that would turn scrambling OFF just
                // when the network is worst.  Keep spreading against the
                // largest non-degenerate burst instead.
                if (bound >= m && m > 1) bound = m - 1;
                perm = calculate_permutation(m, bound).perm;
                break;
            }
        }

        for (std::size_t pos = 0; pos < m; ++pos) {
            WireEntry e;
            e.local_frame = members[perm[pos]];
            e.layer = l;
            e.tx_pos = pos;
            e.critical = anchor_[e.local_frame];
            plan.order.push_back(e);
        }
    }
    return plan;
}

}  // namespace espread::proto
