// Adaptation governor: a supervised, self-healing feedback control loop
// around the paper's Eq. 1 burst estimator.
//
// The adaptive half of the protocol (§4.2, Fig. 6) is a feedback loop: the
// client's per-window max-burst ACKs steer the server's permutation
// parameter b.  Left unsupervised that loop trusts every ACK blindly and
// silently freezes its estimate when feedback dies — a bad or missing ACK
// today shapes permutations two windows out with no recovery story.  The
// AdaptationGovernor bounds how long (and how far) lost or hostile side
// information can steer the estimator:
//
//   * a per-window watchdog counts missed feedback deadlines (window
//     indices are the clock — the governor never reads wall time, so a
//     governed session stays a pure function of (config, seed));
//   * ACKs are sequenced by the buffer window they report on: duplicates,
//     out-of-order stragglers and implausible future windows are rejected
//     before they touch the estimator;
//   * accepted observations pass through an outlier guard (one ACK can
//     move the published bound by at most `max_step`) and a hysteresis
//     filter (the published bound changes only after the estimator's raw
//     bound persists for `hysteresis_windows` consecutive windows);
//   * a miss budget arms a staged degradation: within the budget the
//     estimate decays exponentially toward the paper's no-feedback prior
//     b = n/2 (Degraded); past it the estimator hard-resets to the prior
//     (Fallback); once fresh ACKs return, the published bound ramps back
//     to the estimator under a slew limit (Recovering) before the
//     governor declares Normal.  An outage that recurs mid-recovery
//     doubles the required clean-feedback streak (exponential-backoff
//     re-arming), so a flapping ACK path cannot oscillate the bound.
//
//                 feedback resumes                 misses <= budget
//        +-----------------------------+   +--------------------------+
//        v                             |   v                          |
//   [Normal] --misses in (0,budget]--> [Degraded] --misses > budget--+
//        ^                             |                              |
//        |                             +--misses > budget--> [Fallback]
//        |  clean streak of                                      |
//        |  rearm windows                                        | feedback
//        +----------------- [Recovering] <-----------------------+ resumes
//                             |    ^
//                             +----+  (outage mid-recovery: back to
//                                      Degraded/Fallback, rearm doubles)
//
// Every transition, rejection and clamp is traced (obs::kGovernorState /
// kGovernorAckReject / kGovernorClamp) and counted in a GovernorReport the
// session surfaces through SessionResult and MetricsRegistry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/estimator.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"

namespace espread::proto {

/// Supervision state of the adaptation loop.
enum class GovernorState : std::uint8_t {
    kNormal = 0,      ///< feedback flowing; hysteresis + outlier guard only
    kDegraded = 1,    ///< missed deadlines within budget; decaying to prior
    kFallback = 2,    ///< sustained outage; pinned to the prior b = n/2
    kRecovering = 3,  ///< feedback returned; slew-limited ramp back
};

const char* governor_state_name(GovernorState s) noexcept;

/// Why an ACK was refused by the window-sequence admission check.
enum class AckRejectReason : std::uint8_t {
    kDuplicate = 0,  ///< same window as the last accepted ACK
    kStale = 1,      ///< window older than the last accepted ACK
    kFuture = 2,     ///< window not yet started (corrupt/implausible header)
};

const char* ack_reject_name(AckRejectReason r) noexcept;

/// Thresholds of the governor.  Defaults are conservative enough to ride
/// through one lost ACK without leaving Normal; `enabled = false` (the
/// default) keeps the session byte-identical to an ungoverned one.
struct GovernorConfig {
    bool enabled = false;

    /// Consecutive missed feedback windows tolerated (Degraded) before the
    /// estimator hard-resets to the prior (Fallback).
    std::size_t miss_budget = 3;

    /// Largest move of the published bound a single accepted ACK (or one
    /// Recovering window) may cause.
    std::size_t max_step = 4;

    /// Windows the estimator's raw bound must persist at a new value
    /// before the published bound follows it (Normal state only).
    /// 1 publishes immediately; 0 is invalid.
    std::size_t hysteresis_windows = 2;

    /// Clean-feedback windows required to leave Recovering for Normal
    /// after a Fallback.  Doubles (up to max_rearm_windows) every time an
    /// outage recurs mid-recovery; resets on reaching Normal.
    std::size_t recovery_windows = 4;

    /// Fraction of the estimate's distance to the prior retained per
    /// missed window while Degraded (exponential decay toward b = n/2).
    /// 1.0 freezes the estimate (today's ungoverned outage behavior);
    /// 0.0 snaps to the prior on the first miss.
    double outage_decay = 0.5;

    /// Upper limit of the exponential-backoff re-arming streak.
    std::size_t max_rearm_windows = 32;

    /// Throws std::invalid_argument on out-of-range thresholds.
    void validate() const;
};

/// Counters surfaced through SessionResult::governor and, when metric
/// collection is on, the session's MetricsRegistry.
struct GovernorReport {
    /// Buffer windows spent in each state, indexed by GovernorState.
    std::size_t windows_in_state[4] = {0, 0, 0, 0};
    /// Visits begun in each state (the initial Normal counts as the first
    /// visit once the window clock starts).  Invariant after
    /// on_window_start(0): sum(state_entries) == transitions + 1.
    std::size_t state_entries[4] = {0, 0, 0, 0};
    /// Longest single visit to each state, in windows (eagerly maxed, so
    /// it includes the still-open current visit).
    std::size_t longest_dwell[4] = {0, 0, 0, 0};
    std::size_t acks_rejected_duplicate = 0;
    std::size_t acks_rejected_stale = 0;
    std::size_t acks_rejected_future = 0;
    std::size_t observations_clamped = 0;  ///< outlier guard engaged
    std::size_t fallbacks = 0;             ///< entries into Fallback
    std::size_t recoveries = 0;            ///< entries into Recovering
    std::size_t transitions = 0;           ///< all state changes

    std::size_t acks_rejected() const noexcept {
        return acks_rejected_duplicate + acks_rejected_stale +
               acks_rejected_future;
    }
};

/// Supervises one BurstEstimator.  Deterministic: behavior depends only on
/// the sequence of on_window_start / admit_ack / on_observation calls; the
/// sim::SimTime arguments stamp trace events and never influence control.
class AdaptationGovernor {
public:
    /// `estimator` must outlive the governor.  Validates `cfg`.
    AdaptationGovernor(GovernorConfig cfg, espread::BurstEstimator& estimator);

    /// Attaches a trace sink (non-owning; nullptr detaches).
    void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

    /// Advances the window clock to `k` (call once per window, in order,
    /// starting at 0), runs the watchdog and state machine, and returns
    /// the governed bound the planner must use for this window.
    std::size_t on_window_start(std::size_t k, sim::SimTime now = 0);

    /// Declares that no further window will start: the current window is
    /// the stream's last.  Its own ACK — which can only arrive after the
    /// window-start clock has stopped — then passes admission instead of
    /// being misread as a future-window forgery.
    void close_stream() noexcept { stream_closed_ = true; }

    /// Window-sequence admission for one arriving ACK.  Returns nullopt to
    /// accept (this also feeds the watchdog) or the reason to reject —
    /// rejected ACKs must not reach the estimator.  `seq` is only stamped
    /// into the trace.
    std::optional<AckRejectReason> admit_ack(std::size_t window,
                                             std::uint64_t seq,
                                             sim::SimTime now = 0);

    /// Applies one accepted ACK's observation through the outlier guard
    /// (BurstEstimator::guarded_update with max_step).
    void on_observation(std::size_t observed_max_burst, sim::SimTime now = 0);

    GovernorState state() const noexcept { return state_; }
    /// Bound published at the last on_window_start.
    std::size_t governed_bound() const noexcept { return published_; }
    /// Consecutive windows started without fresh accepted feedback.
    std::size_t missed_windows() const noexcept { return misses_; }
    const GovernorReport& report() const noexcept { return report_; }
    const GovernorConfig& config() const noexcept { return cfg_; }

private:
    void enter_state(GovernorState next, std::size_t window, sim::SimTime now);
    std::size_t prior_bound() const noexcept;

    GovernorConfig cfg_;
    espread::BurstEstimator& estimator_;
    obs::TraceSink* trace_ = nullptr;

    GovernorState state_ = GovernorState::kNormal;
    std::size_t current_window_ = 0;
    bool started_ = false;           ///< on_window_start(0) seen
    bool stream_closed_ = false;     ///< current window is the stream's last
    bool fresh_feedback_ = false;    ///< accepted ACK since last window start
    std::size_t misses_ = 0;         ///< consecutive feedback-less windows
    std::size_t published_ = 0;      ///< bound handed to the planner
    std::optional<std::size_t> last_ack_window_;  ///< highest accepted window
    std::size_t candidate_bound_ = 0;     ///< hysteresis: pending raw bound
    std::size_t candidate_streak_ = 0;    ///< windows the candidate persisted
    std::size_t recovery_left_ = 0;       ///< Recovering windows remaining
    std::size_t rearm_windows_ = 0;       ///< current re-arming requirement
    std::size_t current_dwell_ = 0;       ///< windows in the current visit
    GovernorReport report_;
};

}  // namespace espread::proto
