#include "protocol/session.hpp"

#include "protocol/playout.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <variant>

#include "fec/rlc.hpp"
#include "media/trace.hpp"
#include "media/trace_io.hpp"
#include "net/fault.hpp"
#include "net/fragment.hpp"
#include "protocol/codec.hpp"
#include "protocol/governor.hpp"
#include "protocol/recovery.hpp"
#include "sim/contracts.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace espread::proto {

namespace {

/// Fixed per-packet header cost (sequence numbers, window/layer/fragment
/// coordinates) charged on the wire in addition to payload bits.
constexpr std::size_t kPacketHeaderBits = 256;

/// Extra time after a window's playout deadline before the client closes
/// the window (covers propagation of the final retransmission).
constexpr sim::SimTime kFinalizeSlack = sim::from_millis(2.0);

using DataMsg = std::variant<DataPacket, WindowTrailer, RepairPacket>;
using FeedbackMsg = std::variant<Feedback, NackRequest>;

/// Applies `1..max_flips` random bit flips to an encoded record.
void flip_bits(std::vector<std::uint8_t>& bytes, sim::Rng& rng,
               std::size_t max_flips) {
    const std::uint64_t flips =
        rng.uniform_int(1, static_cast<std::uint64_t>(max_flips));
    for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t byte = rng.uniform_int(0, bytes.size() - 1);
        bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
}

/// Corruption surfaced through the real wire codec: encode the record, flip
/// bits, decode.  The codec checksum catches almost all flips (nullopt ->
/// the channel counts a corrupt_rejected drop); the rare undetected one
/// delivers a corrupted-but-plausible record, which is exactly the hostile
/// input the hardened receiver/estimator must survive.
std::optional<DataMsg> corrupt_data_msg(const DataMsg& m, sim::Rng& rng,
                                        std::size_t max_flips) {
    std::vector<std::uint8_t> bytes;
    if (const DataPacket* p = std::get_if<DataPacket>(&m)) {
        bytes = encode(*p);
    } else if (const WindowTrailer* t = std::get_if<WindowTrailer>(&m)) {
        bytes = encode(*t);
    } else {
        bytes = encode(std::get<RepairPacket>(m));
    }
    flip_bits(bytes, rng, max_flips);
    if (auto p = decode_data(bytes)) return DataMsg{*p};
    if (auto t = decode_trailer(bytes)) return DataMsg{*t};
    if (auto r = decode_repair(bytes)) return DataMsg{*r};
    return std::nullopt;
}

/// Feedback-path corruption through the codec.  `allow_nack` gates the
/// NackRequest decode attempt on the recovery plane being enabled, so a
/// recovery-off session can never turn an undetected flip into a NACK it
/// would otherwise have rejected (the zero-cost-off contract).
std::optional<FeedbackMsg> corrupt_feedback_msg(const FeedbackMsg& m,
                                                sim::Rng& rng,
                                                std::size_t max_flips,
                                                bool allow_nack) {
    std::vector<std::uint8_t> bytes;
    if (const Feedback* f = std::get_if<Feedback>(&m)) {
        bytes = encode(*f);
    } else {
        bytes = encode(std::get<NackRequest>(m));
    }
    flip_bits(bytes, rng, max_flips);
    if (auto f = decode_feedback(bytes)) return FeedbackMsg{*f};
    if (allow_nack) {
        if (auto n = decode_nack(bytes)) return FeedbackMsg{*n};
    }
    return std::nullopt;
}

}  // namespace

sim::RunningStats SessionResult::clf_stats() const {
    sim::RunningStats s;
    for (const WindowReport& w : windows) s.add(static_cast<double>(w.clf));
    return s;
}

sim::RunningStats SessionResult::playout_clf_stats() const {
    sim::RunningStats s;
    for (const std::size_t c : playout_window_clf) s.add(static_cast<double>(c));
    return s;
}

struct Session::Impl {
    explicit Impl(SessionConfig c)
        : cfg(std::move(c)),
          rng(cfg.seed),
          planner((cfg.validate(), cfg)),
          receiver(planner.window_ldus(), planner.layer_sizes(),
                   planner.prerequisites()),
          estimator(std::max<std::size_t>(planner.noncritical_size(), 1), cfg.alpha),
          sliding(std::max<std::size_t>(planner.noncritical_size(), 1),
                  std::max<std::size_t>(cfg.sliding_history, 1)),
          data(queue, cfg.data_link, cfg.data_loss,
               rng.split(contracts::kSessionLaneDataChannel)),
          feedback(queue, cfg.feedback_link, cfg.feedback_loss,
                   rng.split(contracts::kSessionLaneFeedbackChannel)),
          playout(cfg.frame_rate(),
                  static_cast<sim::SimTime>(cfg.playout_startup_windows *
                                            static_cast<double>(
                                                cfg.window_duration()))) {
        if (cfg.stream.kind == StreamKind::kMpeg) {
            sim::Rng trace_rng = rng.split(contracts::kSessionLaneMediaTrace);
            mpeg.emplace(media::movie_stats(cfg.stream.movie), trace_rng.next_u64());
        } else if (cfg.stream.kind == StreamKind::kTraceFile) {
            load_trace_file();
        } else {
            const std::size_t total = cfg.num_windows * cfg.window_ldus();
            if (cfg.stream.kind == StreamKind::kMjpeg) {
                sim::Rng trace_rng =
                    rng.split(contracts::kSessionLaneMediaTrace);
                pregen = media::mjpeg_trace(total, cfg.stream.mjpeg_mean_bits,
                                            trace_rng.next_u64());
            } else {
                pregen = media::audio_trace(total);
            }
        }

        if (cfg.data_impairment.active()) {
            const std::size_t flips = cfg.data_impairment.corrupt_max_bit_flips;
            data.set_impairments(cfg.data_impairment,
                                 rng.split(contracts::kSessionLaneDataImpairment),
                                 [flips](const DataMsg& m, sim::Rng& r) {
                                     return corrupt_data_msg(m, r, flips);
                                 });
        }
        if (cfg.feedback_impairment.active()) {
            const std::size_t flips =
                cfg.feedback_impairment.corrupt_max_bit_flips;
            const bool allow_nack = cfg.recovery.enabled;
            feedback.set_impairments(
                cfg.feedback_impairment,
                rng.split(contracts::kSessionLaneFeedbackImpairment),
                [flips, allow_nack](const FeedbackMsg& m, sim::Rng& r) {
                    return corrupt_feedback_msg(m, r, flips, allow_nack);
                });
        }

        if (cfg.governor.enabled) {
            governor.emplace(cfg.governor, estimator);
            if (cfg.trace != nullptr) governor->set_trace(cfg.trace);
        }

        receiver.set_window_limit(cfg.num_windows);
        data.set_receiver([this](DataMsg m) {
            if (const DataPacket* p = std::get_if<DataPacket>(&m)) {
                receiver.on_packet(*p, queue.now());
                if (recovery_on() && !p->retransmission && !p->parity) {
                    client_on_source(*p);
                }
            } else if (const WindowTrailer* t = std::get_if<WindowTrailer>(&m)) {
                receiver.on_trailer(*t);
            } else if (recovery_on()) {
                client_on_repair(std::get<RepairPacket>(m));
            }
            // Without the recovery plane, RepairPacket deliveries need no
            // client action: like the group-parity arm, erasure recovery
            // runs off the sender-side survival oracle and re-injects the
            // recovered *data* packets.
        });
        feedback.set_receiver([this](FeedbackMsg m) {
            if (const Feedback* f = std::get_if<Feedback>(&m)) {
                on_feedback(*f);
            } else {
                on_nack(std::get<NackRequest>(m));
            }
        });

        if (cfg.trace != nullptr) {
            data.set_trace(cfg.trace, obs::Actor::kDataChannel);
            feedback.set_trace(cfg.trace, obs::Actor::kFeedbackChannel);
            receiver.set_trace(cfg.trace);
            if (cfg.estimator == EstimatorKind::kEwma) {
                // Translate Eq. 1 steps into EstimatorUpdate events; the
                // sliding-max alternative is traced directly in on_feedback.
                estimator.set_observer([this](std::size_t observed, double old_e,
                                              double new_e) {
                    trace_estimator_update(
                        observed,
                        espread::BurstEstimator::bound_for(old_e,
                                                           estimator.window()),
                        espread::BurstEstimator::bound_for(new_e,
                                                           estimator.window()));
                });
            }
        }

        if (cfg.rlc_active()) {
            // Coefficient seeds draw from their own RNG lane so enabling
            // the code never shifts the Gilbert loss, media, or
            // impairment processes; an uncoded session never takes this
            // split and stays byte-identical to pre-FEC builds.
            rlc_rng = rng.split(contracts::kSessionLaneRlcCoefficients);
            rlc_decoder.emplace(cfg.rlc.window_packets, /*symbol_bytes=*/0);
        }

        if (cfg.recovery.enabled) {
            // NACK backoff jitter draws from its own RNG lane so enabling
            // the plane never shifts the loss, media, or impairment
            // processes; a recovery-off session never takes this split.
            nack_rng = rng.split(contracts::kSessionLaneNackJitter);
            repair.emplace(cfg.recovery, cfg.num_windows);
        }
    }

    bool recovery_on() const noexcept { return cfg.recovery.enabled; }

    // ---- observability ----------------------------------------------------

    /// Emits one trace event if a sink is attached; sets the common fields.
    void trace_event(obs::EventType type, obs::Actor actor, sim::SimTime t,
                     std::size_t window, std::uint64_t seq = 0,
                     std::int64_t arg = 0, double v0 = 0.0, double v1 = 0.0) {
        if (cfg.trace == nullptr) return;
        obs::TraceEvent e;
        e.time = t;
        e.type = type;
        e.actor = actor;
        e.window = window;
        e.seq = seq;
        e.arg = arg;
        e.v0 = v0;
        e.v1 = v1;
        cfg.trace->record(e);
    }

    void trace_estimator_update(std::size_t observed, std::size_t old_bound,
                                std::size_t new_bound) {
        trace_event(obs::EventType::kEstimatorUpdate, obs::Actor::kServer,
                    queue.now(), feedback_window_,
                    /*seq=*/last_ack_seq,
                    /*arg=*/static_cast<std::int64_t>(observed),
                    /*v0=*/static_cast<double>(old_bound),
                    /*v1=*/static_cast<double>(new_bound));
    }

    /// Loads an external frame trace and tiles it (looping like a repeated
    /// clip) to cover the whole session, re-normalizing indices and GOP
    /// coordinates.  Partial trailing GOPs are dropped so the layering
    /// assumption (fixed pattern per window) holds.
    void load_trace_file() {
        const auto file_frames = media::read_trace_file(cfg.stream.trace_path);
        const media::GopPattern pattern = media::infer_gop_pattern(file_frames);
        const std::size_t usable =
            (file_frames.size() / pattern.size()) * pattern.size();
        if (usable == 0) {
            throw std::invalid_argument("Session: trace has no complete GOP");
        }
        const std::size_t total = cfg.num_windows * cfg.window_ldus();
        pregen.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
            media::Frame f = file_frames[i % usable];
            f.index = i;
            f.gop = i / pattern.size();
            f.pos_in_gop = i % pattern.size();
            pregen.push_back(f);
        }
    }

    // ---- server side -----------------------------------------------------

    /// Frames of window k, local order, staged into frames_scratch (no
    /// allocation once the scratch reached window capacity).
    const std::vector<media::Frame>& take_frames(std::size_t k) {
        if (mpeg.has_value()) {
            mpeg->generate_into(cfg.gops_per_window, frames_scratch);
        } else {
            const std::size_t n = planner.window_ldus();
            const auto first =
                pregen.begin() + static_cast<std::ptrdiff_t>(k * n);
            frames_scratch.assign(first,
                                  first + static_cast<std::ptrdiff_t>(n));
        }
        return frames_scratch;
    }

    struct FecGroup {
        std::vector<std::pair<DataPacket, bool>> packets;  // sent + survived
        std::size_t data = 0;                              // data packets held
        std::size_t id = 0;
    };

    /// Sends one packet; updates loss-burst accounting and FEC state.
    /// Data packets are assigned to the `interleave` open FEC groups
    /// round-robin, so a loss burst spreads across codewords.
    bool send_packet(DataPacket p, WindowReport& rep) {
        const std::size_t wire_bits = p.size_bits + kPacketHeaderBits;
        const bool fec_eligible =
            cfg.fec.group > 0 && !p.retransmission && !p.parity;
        const bool rlc_eligible =
            rlc_decoder.has_value() && !p.retransmission && !p.parity;
        if (rlc_eligible) {
            // The wire header reuses fec_group to carry the source index
            // (RLC and group FEC are mutually exclusive by validation).
            p.fec_group = static_cast<std::size_t>(rlc_next & 0xFFFFFFFFu);
        }
        const bool ok = data.send(DataMsg{p}, wire_bits);
        if (ok) {
            packet_burst = 0;
        } else {
            ++packet_burst;
            rep.actual_packet_burst =
                std::max(rep.actual_packet_burst, packet_burst);
        }
        if (fec_eligible) {
            FecGroup& g = fec_groups[fec_rr];
            fec_rr = (fec_rr + 1) % fec_groups.size();
            p.fec_group = g.id;
            g.packets.emplace_back(p, ok);
            if (++g.data == cfg.fec.group) flush_fec_group(g, rep);
        }
        if (rlc_eligible) rlc_on_source(p, ok, rep);
        return ok;
    }

    // ---- sliding-window RLC (DESIGN.md §12) --------------------------------

    /// Books one freshly sent source packet into the coding window, feeds
    /// the receiver-model decoder (sender-side survival oracle, like the
    /// group-parity arm) and emits any repair packets the credit schedule
    /// owes: overhead_num repairs accrue per overhead_den source packets.
    void rlc_on_source(const DataPacket& p, bool survived, WindowReport& rep) {
        const std::uint64_t index = rlc_next++;
        const sim::SimTime arrival =
            data.next_free_time() + cfg.data_link.propagation_delay;
        rlc_sources.push_back(RlcSource{p, arrival, survived});
        if (recovery_on()) {
            // Receiver-authoritative mode (DESIGN.md §13): the decoder
            // lives at the client and is fed from actual deliveries
            // (client_on_source), so the survival oracle is out of the
            // loop.  The credit schedule banks while reactive — a NACK
            // releases the bank as a targeted burst — and reverts to fixed
            // proactive emission while the plane is suspended or the
            // feedback path is declared dead.
            rlc_credit += cfg.rlc.overhead_num;
            while (rlc_credit >= cfg.rlc.overhead_den) {
                rlc_credit -= cfg.rlc.overhead_den;
                if (repair->mode() != RecoveryMode::kReactive) {
                    rlc_send_repair(rep);
                } else if (rlc_nack_credit < cfg.recovery.credit_cap) {
                    ++rlc_nack_credit;
                } else {
                    ++nack_credits_expired;
                }
            }
            return;
        }
        if (survived) {
            rlc_decoder->add_source(index, nullptr, 0,
                                    sim::to_seconds(arrival));
            rlc_drain_in_order();
            rlc_prune_sources();
        }
        rlc_credit += cfg.rlc.overhead_num;
        while (rlc_credit >= cfg.rlc.overhead_den) {
            rlc_credit -= cfg.rlc.overhead_den;
            rlc_send_repair(rep);
        }
    }

    /// Emits one repair packet over the current elastic window and applies
    /// on-the-fly recovery: newly decoded source packets are re-injected to
    /// the client at the repair's arrival time.
    void rlc_send_repair(WindowReport& rep) {
        if (rlc_next == 0) return;  // no sources yet
        const std::uint64_t base =
            rlc_next > cfg.rlc.window_packets
                ? rlc_next - cfg.rlc.window_packets
                : 0;
        RepairPacket rp;
        rp.seq = next_seq++;
        rp.window = rep.window;
        rp.base = base;
        rp.count = static_cast<std::size_t>(rlc_next - base);
        rp.cseed = rlc_rng.next_u64();
        rp.size_bits = cfg.packet_bits;
        // Repairs ride the side band: they share the data path's loss
        // process and arrival timing but never queue media packets behind
        // them — the overhead ratio is the bandwidth cost, reported via
        // rlc_repair_bits_sent, not a deadline penalty on the stream.
        const std::size_t wire_bits = rp.size_bits + kPacketHeaderBits;
        const bool ok = data.send_sideband(DataMsg{rp}, wire_bits);
        ++rlc_repairs_sent;
        rlc_repair_bits += wire_bits;
        if (ok) {
            packet_burst = 0;
        } else {
            ++packet_burst;
            rep.actual_packet_burst =
                std::max(rep.actual_packet_burst, packet_burst);
            ++rlc_repairs_lost;
        }
        trace_event(obs::EventType::kRepairSent, obs::Actor::kServer,
                    data.next_free_time(), rep.window, rp.seq,
                    static_cast<std::int64_t>(rp.base),
                    static_cast<double>(rp.count),
                    static_cast<double>(rlc_decoder->rank()));
        // Receiver-authoritative mode: the repair rides the channel like
        // any packet and the *client* decodes it on delivery
        // (client_on_repair); the oracle path below must stay cold.
        if (recovery_on()) return;
        if (!ok) return;
        const sim::SimTime arrival = data.next_free_time() +
                                     data.serialization_time(wire_bits) +
                                     cfg.data_link.propagation_delay;
        const std::size_t before = rlc_decoder->decoded().size();
        rlc_decoder->add_repair(rp.base, rp.count, rp.cseed, nullptr, 0,
                                sim::to_seconds(arrival));
        const auto& dec = rlc_decoder->decoded();
        for (std::size_t i = before; i < dec.size(); ++i) {
            const std::uint64_t idx = dec[i].index;
            if (idx < rlc_lo) continue;
            const RlcSource& src =
                rlc_sources[static_cast<std::size_t>(idx - rlc_lo)];
            queue.schedule_at(arrival, [this, pkt = src.header] {
                receiver.on_packet(pkt, queue.now());
            });
            ++rlc_recovered;
            if (cfg.collect_metrics) {
                rlc_decode_delay_ms.add(
                    static_cast<std::int64_t>((arrival - src.expect_arrival) /
                                              1'000'000));
            }
            trace_event(obs::EventType::kFecRecovered, obs::Actor::kServer,
                        arrival, rep.window, src.header.seq,
                        static_cast<std::int64_t>(src.header.frame_index),
                        sim::to_seconds(arrival - src.expect_arrival) * 1e3,
                        static_cast<double>(rlc_decoder->rank()));
        }
        rlc_drain_in_order();
        rlc_prune_sources();
    }

    /// Consumes new in-order delivery log entries, charging each delivered
    /// source its extra in-order latency versus an uncoded direct arrival.
    void rlc_drain_in_order() {
        const auto& log = rlc_decoder->in_order_log();
        for (; rlc_in_order_consumed < log.size(); ++rlc_in_order_consumed) {
            const fec::RlcDecoder::InOrderEvent& e =
                log[rlc_in_order_consumed];
            rlc_frontier = e.index + 1;
            if (e.lost || e.index < rlc_lo ||
                e.index - rlc_lo >= rlc_sources.size()) {
                // The upper-bound check only fires for forged indices a
                // corrupted-but-decodable header smuggled past the client's
                // plausibility horizon (recovery mode).
                continue;
            }
            if (cfg.collect_metrics) {
                const RlcSource& src =
                    rlc_sources[static_cast<std::size_t>(e.index - rlc_lo)];
                const double delay_s =
                    std::max(0.0, e.at - sim::to_seconds(src.expect_arrival));
                rlc_in_order_delay_ms.add(
                    static_cast<std::int64_t>(delay_s * 1e3));
            }
        }
    }

    /// Drops source-window state no longer reachable by the decoder or the
    /// in-order frontier, keeping the deque bounded by the coding window.
    void rlc_prune_sources() {
        const std::uint64_t keep = std::min(rlc_decoder->base(), rlc_frontier);
        while (rlc_lo < keep && !rlc_sources.empty()) {
            rlc_sources.pop_front();
            ++rlc_lo;
        }
    }

    // ---- receiver-authoritative recovery plane (DESIGN.md §13) -------------

    /// Client plausibility horizon for RLC coordinates carried in wire
    /// headers: anything more than one coding window past the highest
    /// index witnessed so far can only be a forged or corrupted header.
    bool client_plausible(std::uint64_t index) const noexcept {
        return index < client_hi + cfg.rlc.window_packets;
    }

    /// Feeds one *delivered* source packet to the client-side decoder (the
    /// wire header's fec_group field carries the source index).
    void client_on_source(const DataPacket& p) {
        if (!rlc_decoder.has_value()) return;
        const std::uint64_t index = static_cast<std::uint64_t>(p.fec_group);
        if (!client_plausible(index)) {
            ++nack_forged_rejected;
            return;
        }
        client_hi = std::max(client_hi, index + 1);
        rlc_decoder->add_source(index, nullptr, 0,
                                sim::to_seconds(queue.now()));
        rlc_drain_in_order();
        rlc_prune_sources();
    }

    /// Feeds one *delivered* repair packet to the client-side decoder and
    /// completes any newly decoded source packets at the current time.
    void client_on_repair(const RepairPacket& r) {
        if (!rlc_decoder.has_value()) return;
        if (r.count == 0 || r.count > cfg.rlc.window_packets ||
            !client_plausible(r.base + r.count - 1)) {
            ++nack_forged_rejected;
            return;
        }
        client_hi = std::max(client_hi, r.base + r.count);
        const std::size_t before = rlc_decoder->decoded().size();
        rlc_decoder->add_repair(r.base, r.count, r.cseed, nullptr, 0,
                                sim::to_seconds(queue.now()));
        const auto& dec = rlc_decoder->decoded();
        for (std::size_t i = before; i < dec.size(); ++i) {
            const std::uint64_t idx = dec[i].index;
            // A forged coordinate can decode an index the sender never
            // issued; the transmit log bounds what is real.
            if (idx < rlc_lo || idx - rlc_lo >= rlc_sources.size()) continue;
            const RlcSource& src =
                rlc_sources[static_cast<std::size_t>(idx - rlc_lo)];
            receiver.on_packet(src.header, queue.now());
            ++rlc_recovered;
            if (cfg.collect_metrics) {
                rlc_decode_delay_ms.add(static_cast<std::int64_t>(
                    (queue.now() - src.expect_arrival) / 1'000'000));
            }
            trace_event(obs::EventType::kFecRecovered, obs::Actor::kClient,
                        queue.now(), src.header.window, src.header.seq,
                        static_cast<std::int64_t>(src.header.frame_index),
                        sim::to_seconds(queue.now() - src.expect_arrival) * 1e3,
                        static_cast<double>(rlc_decoder->rank()));
        }
        rlc_drain_in_order();
        rlc_prune_sources();
    }

    /// When the recovery plane stops repairing window k: the playout
    /// deadline of its last frame (plus slack), after which a late repair
    /// cannot change what the viewer sees.  Never earlier than the ACK
    /// instant, so finalize always runs after ack_window.
    sim::SimTime recovery_fin_time(std::size_t k) const {
        const std::size_t n = planner.window_ldus();
        const sim::SimTime ack_at =
            static_cast<sim::SimTime>(k + 1) * cfg.window_duration() +
            cfg.data_link.propagation_delay + kFinalizeSlack;
        return std::max(ack_at + 1,
                        playout.deadline((k + 1) * n - 1) + kFinalizeSlack);
    }

    /// One client NACK round for window k.  Stops when nothing is missing,
    /// rounds are exhausted, or no answer could land inside the playout
    /// budget; otherwise names the losses on the feedback path and books
    /// the next round after an RTT-based, jittered exponential backoff.
    void nack_check(std::size_t k, std::size_t round) {
        const sim::SimTime fin = recovery_fin_time(k);
        if (queue.now() >= fin) return;
        const std::uint64_t missing = receiver.incomplete_frames(k);
        const std::size_t deficit =
            rlc_decoder.has_value()
                ? std::min<std::size_t>(rlc_decoder->unresolved(), 255)
                : 0;
        if (missing == 0 && deficit == 0) return;
        const sim::SimTime rtt = cfg.feedback_link.propagation_delay +
                                 cfg.data_link.propagation_delay;
        if (queue.now() + rtt >= fin) {
            ++nacks_suppressed_budget;
            return;  // even an instant answer would arrive past the budget
        }
        NackRequest nr;
        nr.seq = ++nack_seq;
        nr.window = k;
        nr.missing = missing;
        nr.rank_deficit = deficit;
        nr.retry = round;
        ++nacks_sent;
        trace_event(obs::EventType::kNackSent, obs::Actor::kClient,
                    queue.now(), k, nr.seq,
                    static_cast<std::int64_t>(std::popcount(missing)),
                    static_cast<double>(deficit),
                    static_cast<double>(round));
        feedback.send(FeedbackMsg{nr}, cfg.feedback_bits);
        if (round >= cfg.recovery.max_retries) return;
        double timeout_s =
            cfg.recovery.rtt_timeout_mult * sim::to_seconds(rtt);
        for (std::size_t r = 0; r < round; ++r) {
            timeout_s *= cfg.recovery.backoff_base;
        }
        if (cfg.recovery.jitter_frac > 0.0) {
            const double u = nack_rng.uniform();
            timeout_s *= 1.0 + cfg.recovery.jitter_frac * (2.0 * u - 1.0);
        }
        queue.schedule_at(queue.now() + sim::from_seconds(timeout_s),
                          [this, k, round] { nack_check(k, round + 1); });
    }

    /// Sender's NACK handler: admission through the RepairScheduler, then
    /// immediate service, queueing, or shedding per the window's mode.
    void on_nack(const NackRequest& nr) {
        if (!repair.has_value()) return;  // only an undetected flip forges one
        ++nacks_received;
        repair->on_feedback_alive();
        const sim::SimTime deadline =
            nr.window < cfg.num_windows ? recovery_fin_time(nr.window) : 0;
        auto job = repair->admit(nr, deadline, queue.now());
        if (!job.has_value()) return;
        if (repair->may_service_now()) {
            service_job(*job);
            repair->note_serviced();
        } else if (auto shed = repair->enqueue(*job)) {
            trace_event(obs::EventType::kRepairShed, obs::Actor::kServer,
                        queue.now(), shed->window, shed->seq,
                        static_cast<std::int64_t>(shed->window));
        }
    }

    /// Answers one admitted repair job: resend the named frames when they
    /// can still make their playout deadlines (whole-frame granularity —
    /// the bitmap does not say which fragments died), then release banked
    /// RLC credits as targeted repairs up to the per-NACK cap.
    void service_job(const RepairJob& job) {
        WindowReport& rep = reports[job.window];
        std::size_t retx_pkts = 0;
        const auto it = sent_frames.find(job.window);
        const bool retx_allowed =
            cfg.retransmit_critical && cfg.max_retransmits > 0;
        if (retx_allowed && job.missing != 0 && it != sent_frames.end()) {
            const std::size_t n = planner.window_ldus();
            const std::size_t span = std::min<std::size_t>(n, 64);
            for (std::size_t f = 0; f < span; ++f) {
                if ((job.missing & (std::uint64_t{1} << f)) == 0) continue;
                const SentFrame& sf = it->second[f];
                if (!sf.valid) continue;  // shed before sending: no material
                std::size_t total_bits = 0;
                for (const std::size_t s : sf.sizes) {
                    total_bits += s + kPacketHeaderBits;
                }
                const sim::SimTime arrive =
                    queue.now() + data.serialization_time(total_bits) +
                    cfg.data_link.propagation_delay;
                if (arrive >= playout.deadline(job.window * n + f)) {
                    ++nack_retx_skipped_deadline;
                    continue;
                }
                for (std::size_t frag = 0; frag < sf.sizes.size(); ++frag) {
                    DataPacket p = sf.prototype;
                    p.seq = next_seq++;
                    p.fragment = frag;
                    p.size_bits = sf.sizes[frag];
                    p.retransmission = true;
                    const std::size_t wire_bits =
                        p.size_bits + kPacketHeaderBits;
                    data.send_sideband(DataMsg{p}, wire_bits);
                    ++rep.retransmissions;
                    ++retx_pkts;
                    ++nack_retx_packets;
                    nack_retx_bits += wire_bits;
                }
            }
        }
        std::size_t repairs = 0;
        if (rlc_decoder.has_value()) {
            const std::size_t spend =
                std::min({job.rank_deficit, rlc_nack_credit,
                          cfg.recovery.max_repairs_per_nack});
            for (std::size_t i = 0; i < spend; ++i) {
                rlc_send_repair(rep);
                --rlc_nack_credit;
                ++repairs;
            }
            nack_repairs_sent += repairs;
        }
        ++nacks_serviced;
        trace_event(obs::EventType::kNackServed, obs::Actor::kServer,
                    queue.now(), job.window, job.seq,
                    static_cast<std::int64_t>(retx_pkts),
                    static_cast<double>(repairs),
                    static_cast<double>(job.retry));
    }

    /// Releases queued repair jobs the current window's mode and service
    /// budget allow (called at each window start).
    void service_queued_jobs() {
        while (auto job = repair->next_job(queue.now())) {
            service_job(*job);
            repair->note_serviced();
        }
    }

    /// Emits parity packets for one FEC group and applies erasure recovery:
    /// if at least as many packets survived as the group holds data
    /// packets, the lost data packets are delivered to the client as
    /// decoded copies.  Resets the group for reuse.
    void flush_fec_group(FecGroup& g, WindowReport& rep) {
        if (g.packets.empty()) return;
        for (std::size_t r = 0; r < cfg.fec.parity; ++r) {
            DataPacket parity;
            parity.seq = next_seq++;
            parity.window = rep.window;
            parity.parity = true;
            parity.fec_group = g.id;
            parity.size_bits = cfg.packet_bits;
            const std::size_t wire_bits = parity.size_bits + kPacketHeaderBits;
            const bool ok = data.send(DataMsg{parity}, wire_bits);
            g.packets.emplace_back(parity, ok);
            if (ok) {
                packet_burst = 0;
            } else {
                ++packet_burst;
                rep.actual_packet_burst =
                    std::max(rep.actual_packet_burst, packet_burst);
            }
        }
        std::size_t survivors = 0;
        std::size_t data_count = 0;
        for (const auto& [p, ok] : g.packets) {
            survivors += ok ? 1 : 0;
            data_count += p.parity ? 0 : 1;
        }
        // An erasure code recovers a codeword from any data_count of its
        // packets (a window's final group may hold fewer than `group`).
        if (survivors >= data_count && survivors < g.packets.size()) {
            const sim::SimTime when =
                data.next_free_time() + cfg.data_link.propagation_delay;
            for (const auto& [p, ok] : g.packets) {
                if (!ok && !p.parity) {
                    queue.schedule_at(when,
                                      [this, pkt = p] {
                                          receiver.on_packet(pkt, queue.now());
                                      });
                }
            }
        }
        g.packets.clear();
        g.data = 0;
        g.id = fec_next_group_id++;
    }

    struct PendingRetx {
        sim::SimTime ready;                  ///< earliest resend time (NACK received)
        sim::SimTime lost_at = 0;            ///< when the loss hit the wire
        std::size_t local_frame;
        DataPacket prototype;                ///< header template for the frame
        std::vector<std::size_t> fragments;  ///< fragment ids still missing
        std::vector<std::size_t> sizes;      ///< all fragment sizes of the frame
        std::size_t attempts = 0;
    };

    /// Resends the missing fragments of one critical frame; requeues on
    /// repeated loss while attempts remain.
    void service_retx(PendingRetx rx, sim::SimTime deadline, WindowReport& rep) {
        std::size_t total_bits = 0;
        for (const std::size_t f : rx.fragments) {
            total_bits += rx.sizes[f] + kPacketHeaderBits;
        }
        const sim::SimTime start = std::max(data.next_free_time(), rx.ready);
        if (start + data.serialization_time(total_bits) > deadline) {
            return;  // cannot make the playout deadline; give up on the frame
        }
        data.stall_until(rx.ready);
        trace_event(obs::EventType::kRetransmit, obs::Actor::kServer, start,
                    rx.prototype.window, rx.prototype.seq,
                    static_cast<std::int64_t>(rx.prototype.frame_index),
                    static_cast<double>(rx.attempts),
                    static_cast<double>(rx.fragments.size()));
        if (cfg.collect_metrics) {
            // NACK round trip + queueing behind the window's own traffic,
            // from the moment the loss hit the wire to the resend start.
            retx_latency_ms.add(
                static_cast<std::int64_t>((start - rx.lost_at) / 1'000'000));
        }
        std::vector<std::size_t> still_missing;
        for (const std::size_t f : rx.fragments) {
            DataPacket p = rx.prototype;
            p.seq = next_seq++;
            p.fragment = f;
            p.size_bits = rx.sizes[f];
            p.retransmission = true;
            ++rep.retransmissions;
            if (!send_packet(p, rep)) still_missing.push_back(f);
        }
        if (!still_missing.empty() && rx.attempts + 1 < cfg.max_retransmits) {
            PendingRetx again = std::move(rx);
            again.fragments = std::move(still_missing);
            again.ready = data.next_free_time() +
                          2 * cfg.data_link.propagation_delay;
            ++again.attempts;
            pending_retx.push_back(std::move(again));
        }
    }

    /// Services every pending retransmission whose NACK has arrived by the
    /// link's current timeline position.
    void service_ready_retx(sim::SimTime deadline, WindowReport& rep) {
        for (std::size_t i = 0; i < pending_retx.size();) {
            if (pending_retx[i].ready <= data.next_free_time()) {
                PendingRetx rx = std::move(pending_retx[i]);
                pending_retx.erase(pending_retx.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                service_retx(std::move(rx), deadline, rep);
                i = 0;  // list may have changed; rescan
            } else {
                ++i;
            }
        }
    }

    /// Transmits buffer window k (invoked by the event queue at k*T).
    void send_window(std::size_t k) {
        const std::size_t n = planner.window_ldus();
        const std::vector<media::Frame>& frames = take_frames(k);
        const std::size_t adaptive_bound = cfg.estimator == EstimatorKind::kEwma
                                               ? estimator.bound()
                                               : sliding.bound();
        if (governor.has_value() && k + 1 == cfg.num_windows) {
            // The final window's ACK arrives after the window-start clock
            // stops; without this it would be misread as a future forgery.
            governor->close_stream();
        }
        const std::size_t bound =
            governor.has_value()
                ? governor->on_window_start(k, queue.now())
            : cfg.pinned_bound != 0
                ? std::min(cfg.pinned_bound,
                           std::max<std::size_t>(planner.noncritical_size(), 1))
                : adaptive_bound;
        const WindowPlan& plan = planner.plan(bound);
        const sim::SimTime deadline =
            static_cast<sim::SimTime>(k + 1) * cfg.window_duration();

        WindowReport& rep = reports[k];
        rep.window = k;
        rep.bound_used = bound;
        if (governor.has_value()) rep.governor_state = governor->state();

        if (repair.has_value()) {
            const std::size_t wd_before = repair->report().watchdog_timeouts;
            repair->on_window_start(
                k, governor.has_value()
                       ? std::optional<GovernorState>(governor->state())
                       : std::nullopt);
            if (repair->report().watchdog_timeouts != wd_before) {
                trace_event(
                    obs::EventType::kRepairTimeout, obs::Actor::kServer,
                    queue.now(), k, 0,
                    static_cast<std::int64_t>(cfg.recovery.watchdog_windows));
            }
            if (repair->mode() == RecoveryMode::kProactive &&
                rlc_decoder.has_value()) {
                // The path was just declared dead: credits banked for NACK
                // bursts would otherwise be stranded — flush them into the
                // fixed schedule so degradation matches the pure-FEC arm.
                while (rlc_nack_credit > 0) {
                    rlc_send_repair(rep);
                    --rlc_nack_credit;
                }
            }
            service_queued_jobs();
        }

        // Window-scoped scratch buffers are Impl members so the steady
        // state reuses their capacity instead of reallocating per window.
        std::vector<std::size_t>& layer_sent = layer_sent_scratch;
        layer_sent.assign(plan.layer_sizes.size(), 0);
        std::vector<bool>& sent_local = sent_local_scratch;
        sent_local.assign(n, false);
        pending_retx.clear();

        // CMT-style predictive shedding: budget the window's bits up front
        // (with a retransmission reserve) and pre-drop the lowest-priority
        // tail of the plan.
        std::vector<bool>& predropped = predropped_scratch;
        predropped.assign(n, false);
        if (cfg.drop_policy == DropPolicy::kPredictive) {
            double budget = sim::to_seconds(cfg.window_duration()) *
                            cfg.data_link.bandwidth_bps *
                            (1.0 - cfg.predictive_reserve);
            if (cfg.fec.group > 0) {
                // Parity overhead eats a proportional share of the budget.
                budget *= static_cast<double>(cfg.fec.group) /
                          static_cast<double>(cfg.fec.group + cfg.fec.parity);
            }
            double acc = 0.0;
            for (const WireEntry& entry : plan.order) {
                const media::Frame& frame = frames[entry.local_frame];
                net::fragment_sizes_into(frame.size_bits, cfg.packet_bits,
                                         frag_sizes_scratch);
                double bits = 0.0;
                for (const std::size_t s : frag_sizes_scratch) {
                    bits += static_cast<double>(s + kPacketHeaderBits);
                }
                if (acc + bits > budget) {
                    predropped[entry.local_frame] = true;
                } else {
                    acc += bits;
                }
            }
        }
        if (cfg.fec.group > 0) {
            fec_groups.assign(cfg.fec.interleave, FecGroup{});
            for (auto& g : fec_groups) g.id = fec_next_group_id++;
            fec_rr = 0;
        }

        for (const WireEntry& entry : plan.order) {
            service_ready_retx(deadline, rep);

            if (predropped[entry.local_frame]) {
                ++rep.sender_dropped;
                trace_event(obs::EventType::kFrameDeadlineDrop,
                            obs::Actor::kServer, data.next_free_time(), k, 0,
                            static_cast<std::int64_t>(
                                frames[entry.local_frame].index));
                continue;
            }
            const media::Frame& frame = frames[entry.local_frame];
            // Sending a frame whose prerequisite was never sent wastes
            // bandwidth: the decoder cannot use it.
            bool prereqs_sent = true;
            for (const std::size_t q : planner.prerequisites()[entry.local_frame]) {
                if (!sent_local[q]) {
                    prereqs_sent = false;
                    break;
                }
            }
            if (!prereqs_sent) {
                ++rep.sender_dropped;
                trace_event(obs::EventType::kFrameDeadlineDrop,
                            obs::Actor::kServer, data.next_free_time(), k, 0,
                            static_cast<std::int64_t>(frame.index));
                continue;
            }

            net::fragment_sizes_into(frame.size_bits, cfg.packet_bits,
                                     frag_sizes_scratch);
            const std::vector<std::size_t>& sizes = frag_sizes_scratch;
            std::size_t total_bits = 0;
            for (const std::size_t s : sizes) total_bits += s + kPacketHeaderBits;
            if (data.next_free_time() + data.serialization_time(total_bits) >
                deadline) {
                ++rep.sender_dropped;
                trace_event(obs::EventType::kFrameDeadlineDrop,
                            obs::Actor::kServer, data.next_free_time(), k, 0,
                            static_cast<std::int64_t>(frame.index));
                continue;
            }

            DataPacket proto;
            proto.window = k;
            proto.layer = entry.layer;
            proto.tx_pos = entry.tx_pos;
            proto.frame_index = frame.index;
            proto.num_fragments = sizes.size();

            std::vector<std::size_t> lost;
            for (std::size_t f = 0; f < sizes.size(); ++f) {
                DataPacket p = proto;
                p.seq = next_seq++;
                p.fragment = f;
                p.size_bits = sizes[f];
                if (!send_packet(p, rep)) lost.push_back(f);
            }
            sent_local[entry.local_frame] = true;
            ++layer_sent[entry.layer];

            if (recovery_on()) {
                // Keep the frame's wire material so a NACK can trigger its
                // retransmission; pruned when the window's playout budget
                // expires (finalize_window).  The oracle-driven PendingRetx
                // path below must stay cold: under the recovery plane only
                // received NACKs may trigger resends.
                auto& rec = sent_frames[k];
                if (rec.empty()) rec.resize(n);
                rec[entry.local_frame] = SentFrame{proto, sizes, true};
                continue;
            }
            if (!lost.empty() && entry.critical && cfg.retransmit_critical &&
                cfg.max_retransmits > 0) {
                PendingRetx rx;
                rx.ready = data.next_free_time() +
                           2 * cfg.data_link.propagation_delay;
                rx.lost_at = data.next_free_time();
                rx.local_frame = entry.local_frame;
                rx.prototype = proto;
                rx.fragments = std::move(lost);
                rx.sizes = sizes;
                pending_retx.push_back(std::move(rx));
            }
        }

        // Drain remaining retransmissions that can still make the deadline.
        while (!pending_retx.empty()) {
            auto earliest = std::min_element(
                pending_retx.begin(), pending_retx.end(),
                [](const PendingRetx& a, const PendingRetx& b) {
                    return a.ready < b.ready;
                });
            PendingRetx rx = std::move(*earliest);
            pending_retx.erase(earliest);
            service_retx(std::move(rx), deadline, rep);
        }

        if (cfg.fec.group > 0) {
            for (auto& g : fec_groups) flush_fec_group(g, rep);  // partial groups
        }

        WindowTrailer trailer;
        trailer.seq = next_seq++;
        trailer.window = k;
        trailer.layer_sent = layer_sent;
        data.send(DataMsg{trailer}, cfg.feedback_bits);

        if (recovery_on()) {
            // Two-stage close: the ACK (and NACK round 0) leave at the
            // legacy finalize instant, but the window stays open for
            // repairs until its playout budget is spent.
            queue.schedule_at(
                deadline + cfg.data_link.propagation_delay + kFinalizeSlack,
                [this, k] { ack_window(k); });
            queue.schedule_at(recovery_fin_time(k),
                              [this, k] { finalize_window(k); });
        } else {
            queue.schedule_at(
                deadline + cfg.data_link.propagation_delay + kFinalizeSlack,
                [this, k] { finalize_window(k); });
        }
    }

    // ---- client side -----------------------------------------------------

    /// Recovery-plane window close, stage 1 (at the legacy finalize
    /// instant): report the window's state, send the ACK, and open NACK
    /// round 0.  The window itself stays open for repairs until
    /// recovery_fin_time (stage 2, finalize_window).
    void ack_window(std::size_t k) {
        const WindowOutcome out = receiver.report(k);
        Feedback f;
        f.seq = ++ack_seq;
        f.window = k;
        f.layer_max_burst = out.layer_max_burst;
        f.layer_lost = out.layer_lost;
        ++acks_sent;
        trace_event(obs::EventType::kAckSent, obs::Actor::kClient,
                    queue.now(), k, f.seq);
        feedback.send(FeedbackMsg{std::move(f)}, cfg.feedback_bits);
        nack_check(k, 0);
    }

    void finalize_window(std::size_t k) {
        const WindowOutcome out = receiver.finalize(k);
        const std::size_t n = planner.window_ldus();
        for (std::size_t f = 0; f < out.playable_at.size(); ++f) {
            if (out.playable_at[f].has_value()) {
                playout.frame_ready(k * n + f, *out.playable_at[f]);
            }
        }
        WindowReport& rep = reports[k];
        const espread::ContinuityReport cr = espread::measure_continuity(out.playback);
        rep.clf = cr.clf;
        rep.lost_ldus = cr.unit_losses;
        rep.alf = cr.alf;
        rep.undecodable = out.undecodable;
        meter.add_window(out.playback);
        trace_event(obs::EventType::kWindowFinalized, obs::Actor::kClient,
                    queue.now(), k, 0, static_cast<std::int64_t>(cr.clf),
                    cr.alf);

        if (recovery_on()) {
            // The ACK left at ack_window time; retransmission material for
            // this window can no longer be used.
            sent_frames.erase(k);
            return;
        }
        Feedback f;
        f.seq = ++ack_seq;
        f.window = k;
        f.layer_max_burst = out.layer_max_burst;
        f.layer_lost = out.layer_lost;
        ++acks_sent;
        trace_event(obs::EventType::kAckSent, obs::Actor::kClient, queue.now(),
                    k, f.seq);
        feedback.send(FeedbackMsg{std::move(f)}, cfg.feedback_bits);
    }

    // ---- server side (feedback path) --------------------------------------

    void on_feedback(const Feedback& f) {
        // Any feedback-path arrival proves the path alive, even an ACK the
        // sequence or admission rules go on to refuse.
        if (repair.has_value()) repair->on_feedback_alive();
        // UDP ACKs can arrive out of order; the server acts only on the
        // highest sequence number seen (paper §4.2).
        if (f.seq <= last_ack_seq) {
            ++acks_stale;
            trace_event(obs::EventType::kAckStale, obs::Actor::kServer,
                        queue.now(), f.window, f.seq);
            return;
        }
        // Window-sequence admission (governor only): duplicates, stragglers
        // older than the last accepted report and implausible future
        // windows are refused before they can advance the ACK horizon or
        // touch the estimator.
        if (governor.has_value() &&
            governor->admit_ack(f.window, f.seq, queue.now()).has_value()) {
            return;
        }
        last_ack_seq = f.seq;
        ++acks_applied;
        feedback_window_ = f.window;
        trace_event(obs::EventType::kAckApplied, obs::Actor::kServer,
                    queue.now(), f.window, f.seq);
        if (!cfg.adaptive || cfg.pinned_bound != 0) return;
        std::size_t observed = 0;
        const auto& critical = planner.layer_critical();
        for (std::size_t l = 0; l < f.layer_max_burst.size(); ++l) {
            if (l < critical.size() && critical[l]) continue;
            observed = std::max(observed, f.layer_max_burst[l]);
        }
        if (feedback.impaired()) {
            // A corrupted-but-plausible ACK can report an absurd burst; one
            // such value must not poison the estimator for the rest of the
            // stream.  Clamp to the largest physically observable run (the
            // non-critical layer size) — graceful degradation, never a
            // crash or a runaway bound.
            observed = std::min(
                observed, std::max<std::size_t>(planner.noncritical_size(), 1));
        }
        const std::size_t old_sliding_bound = sliding.bound();
        if (governor.has_value()) {
            // Outlier-guarded Eq. 1 step (still fires the trace observer).
            governor->on_observation(observed, queue.now());
        } else {
            estimator.update(observed);  // fires the EWMA trace observer
        }
        sliding.update(observed);
        if (cfg.estimator == EstimatorKind::kSlidingMax) {
            trace_estimator_update(std::min(observed, sliding.window()),
                                   old_sliding_bound, sliding.bound());
        }
    }

    // ---- driver ------------------------------------------------------------

    SessionResult run() {
        reports.assign(cfg.num_windows, WindowReport{});
        for (std::size_t k = 0; k < cfg.num_windows; ++k) {
            queue.schedule_at(static_cast<sim::SimTime>(k) * cfg.window_duration(),
                              [this, k] { send_window(k); });
        }
        queue.run();
        if (rlc_decoder.has_value()) {
            // Stream over: whatever the code did not recover is lost for
            // good; flush the in-order log so the delay accounting covers
            // every delivered source packet.
            rlc_decoder->close(sim::to_seconds(queue.now()));
            rlc_drain_in_order();
        }

        SessionResult result;
        result.windows = std::move(reports);
        result.total = meter.total();
        result.data_channel = data.stats();
        result.feedback_channel = feedback.stats();
        result.acks_sent = acks_sent;
        result.acks_applied = acks_applied;
        if (governor.has_value()) result.governor = governor->report();

        // Playout-judged continuity over the whole stream.
        const std::size_t n = planner.window_ldus();
        const std::size_t total_ldus = cfg.num_windows * n;
        const espread::LossMask playout_mask = playout.playback_mask(total_ldus);
        espread::ContinuityMeter playout_meter;
        for (std::size_t k = 0; k < cfg.num_windows; ++k) {
            const espread::LossMask window_mask(
                playout_mask.begin() + static_cast<std::ptrdiff_t>(k * n),
                playout_mask.begin() + static_cast<std::ptrdiff_t>((k + 1) * n));
            playout_meter.add_window(window_mask);
            result.playout_window_clf.push_back(
                espread::consecutive_loss(window_mask));
        }
        result.playout_total = playout_meter.total();
        result.required_startup = playout.required_startup_delay(total_ldus);

        if (cfg.trace != nullptr) {
            // Slots the playout clock judged lost: the frame either never
            // became playable or became playable after its deadline.
            for (std::size_t i = 0; i < total_ldus; ++i) {
                if (playout_mask[i]) continue;
                const auto slack = playout.slack(i);
                trace_event(obs::EventType::kPlayoutMiss, obs::Actor::kClient,
                            playout.deadline(i), i / n, 0,
                            static_cast<std::int64_t>(i),
                            slack ? sim::to_seconds(*slack) * 1e3 : 0.0);
            }
        }
        if (cfg.collect_metrics) fill_metrics(result, playout_mask);
        return result;
    }

    /// Populates SessionResult::metrics from the finished run.
    void fill_metrics(SessionResult& result,
                      const espread::LossMask& playout_mask) const {
        obs::MetricsRegistry& m = result.metrics;
        m.add_counter("data_packets_sent", result.data_channel.sent);
        m.add_counter("data_packets_dropped", result.data_channel.dropped);
        m.add_counter("data_packets_delivered", result.data_channel.delivered);
        m.add_counter("data_bits_sent", result.data_channel.bits_sent);
        m.add_counter("feedback_packets_sent", result.feedback_channel.sent);
        m.add_counter("feedback_packets_dropped",
                      result.feedback_channel.dropped);
        m.add_counter("acks_sent", acks_sent);
        m.add_counter("acks_applied", acks_applied);
        m.add_counter("acks_stale", acks_stale);
        std::size_t playout_misses = 0;
        for (const bool ok : playout_mask) playout_misses += ok ? 0 : 1;
        m.add_counter("playout_misses", playout_misses);

        std::uint64_t retx = 0, dropped = 0, undecodable = 0;
        sim::Histogram& bounds = m.histogram("bound_used");
        sim::Histogram& clf = m.histogram("window_clf");
        sim::Histogram& burst = m.histogram("window_packet_burst");
        for (const WindowReport& w : result.windows) {
            retx += w.retransmissions;
            dropped += w.sender_dropped;
            undecodable += w.undecodable;
            bounds.add(static_cast<std::int64_t>(w.bound_used));
            clf.add(static_cast<std::int64_t>(w.clf));
            burst.add(static_cast<std::int64_t>(w.actual_packet_burst));
        }
        m.add_counter("retransmissions", retx);
        m.add_counter("frames_deadline_dropped", dropped);
        m.add_counter("frames_undecodable", undecodable);
        m.histogram("loss_run_length").merge(result.data_channel.loss_runs);
        m.histogram("retransmit_latency_ms").merge(retx_latency_ms);

        // Impairment accounting appears only when a fault plan is active,
        // so unimpaired metric registries stay byte-identical to pre-fault
        // builds (the zero-cost-off contract).
        if (cfg.data_impairment.active() || cfg.feedback_impairment.active()) {
            m.add_counter("data_packets_duplicated",
                          result.data_channel.duplicated);
            m.add_counter("data_packets_corrupt_rejected",
                          result.data_channel.corrupt_rejected);
            m.add_counter("data_packets_reordered",
                          result.data_channel.reordered);
            m.add_counter("data_packets_forced_dropped",
                          result.data_channel.forced_dropped);
            m.add_counter("feedback_corrupt_rejected",
                          result.feedback_channel.corrupt_rejected);
            m.add_counter("feedback_forced_dropped",
                          result.feedback_channel.forced_dropped);
            m.add_counter("recv_duplicates_dropped",
                          receiver.duplicates_dropped());
            m.add_counter("recv_stale_dropped", receiver.stale_dropped());
            m.add_counter("recv_mismatch_dropped",
                          receiver.mismatch_dropped());
        }

        // RLC accounting appears only for the coding schemes, keeping
        // uncoded registries byte-identical to pre-FEC builds.
        if (rlc_decoder.has_value()) {
            m.add_counter("rlc_repairs_sent", rlc_repairs_sent);
            m.add_counter("rlc_repairs_lost", rlc_repairs_lost);
            m.add_counter("rlc_repairs_redundant",
                          rlc_decoder->repairs_redundant());
            m.add_counter("rlc_repair_bits_sent", rlc_repair_bits);
            m.add_counter("rlc_packets_recovered", rlc_recovered);
            m.add_counter("rlc_packets_unrecovered",
                          rlc_decoder->symbols_lost());
            m.add_counter("rlc_rank", rlc_decoder->rank());
            m.histogram("rlc_decode_delay_ms").merge(rlc_decode_delay_ms);
            m.histogram("rlc_in_order_delay_ms").merge(rlc_in_order_delay_ms);
        }

        // Governor accounting appears only when the governor is enabled,
        // for the same reason: ungoverned registries must stay
        // byte-identical to pre-governor builds.
        if (governor.has_value()) {
            const GovernorReport& g = governor->report();
            m.add_counter("governor_windows_normal", g.windows_in_state[0]);
            m.add_counter("governor_windows_degraded", g.windows_in_state[1]);
            m.add_counter("governor_windows_fallback", g.windows_in_state[2]);
            m.add_counter("governor_windows_recovering",
                          g.windows_in_state[3]);
            m.add_counter("governor_acks_rejected", g.acks_rejected());
            m.add_counter("governor_acks_rejected_duplicate",
                          g.acks_rejected_duplicate);
            m.add_counter("governor_acks_rejected_stale",
                          g.acks_rejected_stale);
            m.add_counter("governor_acks_rejected_future",
                          g.acks_rejected_future);
            m.add_counter("governor_observations_clamped",
                          g.observations_clamped);
            m.add_counter("governor_fallbacks", g.fallbacks);
            m.add_counter("governor_recoveries", g.recoveries);
            m.add_counter("governor_transitions", g.transitions);
            m.add_counter("governor_entries_normal", g.state_entries[0]);
            m.add_counter("governor_entries_degraded", g.state_entries[1]);
            m.add_counter("governor_entries_fallback", g.state_entries[2]);
            m.add_counter("governor_entries_recovering", g.state_entries[3]);
            m.add_counter("governor_longest_dwell_normal", g.longest_dwell[0]);
            m.add_counter("governor_longest_dwell_degraded",
                          g.longest_dwell[1]);
            m.add_counter("governor_longest_dwell_fallback",
                          g.longest_dwell[2]);
            m.add_counter("governor_longest_dwell_recovering",
                          g.longest_dwell[3]);
            // Per-window governed bound and supervision state; bound_used
            // in the per-window reports carries the same bound per window.
            sim::Histogram& governed = m.histogram("governor_bound");
            sim::Histogram& states = m.histogram("governor_state");
            for (const WindowReport& w : result.windows) {
                governed.add(static_cast<std::int64_t>(w.bound_used));
                states.add(static_cast<std::int64_t>(w.governor_state));
            }
        }

        // Recovery-plane accounting appears only when the plane is
        // enabled, so oracle-driven registries stay byte-identical to
        // pre-recovery builds.
        if (repair.has_value()) {
            const RepairSchedulerReport& r = repair->report();
            m.add_counter("nack_requests_sent", nacks_sent);
            m.add_counter("nack_requests_received", nacks_received);
            m.add_counter("nack_requests_serviced", nacks_serviced);
            m.add_counter("nack_suppressed_budget", nacks_suppressed_budget);
            m.add_counter("nack_retx_packets", nack_retx_packets);
            m.add_counter("nack_retx_bits", nack_retx_bits);
            m.add_counter("nack_retx_skipped_deadline",
                          nack_retx_skipped_deadline);
            m.add_counter("nack_repairs_sent", nack_repairs_sent);
            m.add_counter("nack_credits_expired", nack_credits_expired);
            m.add_counter("nack_forged_rejected", nack_forged_rejected);
            m.add_counter("recovery_nacks_admitted", r.nacks_admitted);
            m.add_counter("recovery_nacks_duplicate", r.nacks_duplicate);
            m.add_counter("recovery_nacks_invalid", r.nacks_invalid);
            m.add_counter("recovery_jobs_shed", r.jobs_shed);
            m.add_counter("recovery_jobs_expired", r.jobs_expired);
            m.add_counter("recovery_watchdog_timeouts", r.watchdog_timeouts);
            m.add_counter("recovery_windows_reactive", r.windows_reactive);
            m.add_counter("recovery_windows_suspended", r.windows_suspended);
            m.add_counter("recovery_windows_proactive", r.windows_proactive);
            m.add_counter("data_sideband_sent",
                          result.data_channel.sideband_sent);
            m.add_counter("data_sideband_bits",
                          result.data_channel.sideband_bits);
        }
    }

    SessionConfig cfg;
    sim::EventQueue queue;
    sim::Rng rng;
    Planner planner;
    Receiver receiver;
    espread::BurstEstimator estimator;
    espread::SlidingMaxEstimator sliding;
    std::optional<AdaptationGovernor> governor;  ///< engaged iff cfg.governor.enabled
    net::FaultChannel<DataMsg> data;
    net::FaultChannel<FeedbackMsg> feedback;
    PlayoutClock playout;

    std::optional<media::TraceGenerator> mpeg;
    std::vector<media::Frame> pregen;

    // send_window scratch (hoisted: reused capacity, no per-window heap
    // traffic in steady state; pinned by test_alloc's ratchet).
    std::vector<media::Frame> frames_scratch;
    std::vector<std::size_t> layer_sent_scratch;
    std::vector<bool> sent_local_scratch;
    std::vector<bool> predropped_scratch;
    std::vector<std::size_t> frag_sizes_scratch;

    std::vector<WindowReport> reports;
    espread::ContinuityMeter meter;
    std::vector<PendingRetx> pending_retx;

    std::vector<FecGroup> fec_groups;
    std::size_t fec_rr = 0;
    std::size_t fec_next_group_id = 0;

    // Sliding-window RLC state (engaged iff cfg.rlc_active()).
    struct RlcSource {
        DataPacket header;            ///< for re-injection on recovery
        sim::SimTime expect_arrival;  ///< when a direct arrival would land
        bool survived;
    };
    std::optional<fec::RlcDecoder> rlc_decoder;  ///< rank-only mode
    sim::Rng rlc_rng{0};                         ///< split 6, coded only
    std::deque<RlcSource> rlc_sources;  ///< source indices [rlc_lo, rlc_next)
    std::uint64_t rlc_lo = 0;
    std::uint64_t rlc_next = 0;
    std::uint64_t rlc_frontier = 0;  ///< in-order log consumed up to here
    std::size_t rlc_in_order_consumed = 0;
    std::size_t rlc_credit = 0;
    std::size_t rlc_repairs_sent = 0;
    std::size_t rlc_repairs_lost = 0;
    std::size_t rlc_recovered = 0;
    std::uint64_t rlc_repair_bits = 0;
    sim::Histogram rlc_decode_delay_ms;    ///< loss -> decode, per recovery
    sim::Histogram rlc_in_order_delay_ms;  ///< extra in-order latency

    // Receiver-authoritative recovery plane (engaged iff
    // cfg.recovery.enabled; DESIGN.md §13).
    struct SentFrame {
        DataPacket prototype;             ///< header template for resends
        std::vector<std::size_t> sizes;   ///< fragment sizes of the frame
        bool valid = false;               ///< false = frame was never sent
    };
    std::optional<RepairScheduler> repair;
    sim::Rng nack_rng{0};  ///< split 7, recovery only (backoff jitter)
    /// Wire material per open window, by local frame (NACK retransmission
    /// source); pruned when the window's playout budget expires.
    std::map<std::size_t, std::vector<SentFrame>> sent_frames;
    std::uint64_t nack_seq = 0;   ///< client NACK sequence space
    std::uint64_t client_hi = 0;  ///< one past the highest witnessed index
    std::size_t rlc_nack_credit = 0;  ///< banked repairs a NACK may release
    std::size_t nacks_sent = 0;
    std::size_t nacks_received = 0;
    std::size_t nacks_serviced = 0;
    std::size_t nacks_suppressed_budget = 0;
    std::size_t nack_retx_packets = 0;
    std::uint64_t nack_retx_bits = 0;
    std::size_t nack_retx_skipped_deadline = 0;
    std::size_t nack_repairs_sent = 0;
    std::size_t nack_credits_expired = 0;
    std::size_t nack_forged_rejected = 0;

    std::uint64_t next_seq = 0;
    std::uint64_t ack_seq = 0;
    std::uint64_t last_ack_seq = 0;
    std::size_t acks_sent = 0;
    std::size_t acks_applied = 0;
    std::size_t acks_stale = 0;
    std::size_t packet_burst = 0;
    std::size_t feedback_window_ = 0;  ///< window of the last applied ACK
    sim::Histogram retx_latency_ms;    ///< loss -> resend start, milliseconds
};

Session::Session(SessionConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}
Session::~Session() = default;

SessionResult Session::run() { return impl_->run(); }

SessionResult run_session(SessionConfig cfg) {
    Session s{std::move(cfg)};
    return s.run();
}

}  // namespace espread::proto
