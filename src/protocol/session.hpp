// End-to-end simulated streaming session (paper §4.2 protocol, §5
// experimental setup).
//
// One Session wires a frame source (synthetic MPEG/MJPEG/audio trace), the
// transmission planner, a lossy data channel, a lossy feedback channel and
// the client-side receiver over a single discrete-event clock, then runs
// `num_windows` buffer windows and reports per-window continuity.
//
// Timeline per buffer window k of duration T:
//   * at k*T the server transmits the window's frames in plan order,
//     fragmenting each frame into packets; frames whose serialization
//     cannot finish before the (k+1)*T deadline are dropped sender-side
//     (lowest-priority layers sit at the tail of the plan, so they die
//     first, as in CMT);
//   * critical (anchor) frames are retransmitted on loss — loss detection
//     costs one RTT, and the retransmission must still fit the deadline;
//   * a trailer records how much of each layer was actually sent;
//   * at (k+1)*T + propagation the client finalizes the window, measures
//     playback continuity and per-layer wire-order loss runs, and ACKs its
//     estimates (UDP: the ACK itself can be lost; stale ACKs are ignored);
//   * ACKs update the server's exponential-average burst estimate (Eq. 1),
//     which shapes the permutations of windows that START after arrival —
//     feedback for window k thus influences window k+2, as in Fig. 6.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "protocol/config.hpp"
#include "protocol/planner.hpp"
#include "protocol/receiver.hpp"
#include "protocol/wire.hpp"
#include "sim/stats.hpp"

namespace espread::proto {

/// Continuity and protocol accounting for one buffer window.
struct WindowReport {
    std::size_t window = 0;
    std::size_t clf = 0;              ///< playback CLF of this window
    std::size_t lost_ldus = 0;        ///< unit losses (incl. undecodable)
    double alf = 0.0;
    std::size_t undecodable = 0;      ///< arrived but prerequisites missing
    std::size_t sender_dropped = 0;   ///< frames never sent (deadline)
    std::size_t retransmissions = 0;  ///< packets resent for critical frames
    std::size_t actual_packet_burst = 0;  ///< max consecutive lost data packets
    std::size_t bound_used = 0;       ///< non-critical b fed to the planner
    /// Supervision state the window ran under (kNormal when no governor).
    GovernorState governor_state = GovernorState::kNormal;
};

/// Whole-session results.
struct SessionResult {
    std::vector<WindowReport> windows;
    espread::ContinuityReport total;        ///< over all playback slots
    net::ChannelStats data_channel;
    net::ChannelStats feedback_channel;
    std::size_t acks_sent = 0;
    std::size_t acks_applied = 0;   ///< in-order ACKs that updated the estimate

    /// Continuity judged by playout deadlines (PlayoutClock): a frame that
    /// arrives complete but after its slot is a unit loss here.  With the
    /// paper's one-window start-up delay this matches `total`; smaller
    /// start-up delays make it strictly worse.
    espread::ContinuityReport playout_total;
    /// Per-window CLF of the playout-judged stream.
    std::vector<std::size_t> playout_window_clf;
    /// Smallest start-up delay that would have made every delivered frame
    /// on time (measured over this run).
    sim::SimTime required_startup = 0;

    /// Named counters/histograms; empty unless SessionConfig::collect_metrics.
    obs::MetricsRegistry metrics;

    /// Adaptation-governor accounting (time in state, rejected ACKs,
    /// clamped observations, fallback/recovery counts).  All zeros when the
    /// governor is disabled.
    GovernorReport governor;

    /// Mean / deviation of per-window CLF (the paper's headline numbers).
    sim::RunningStats clf_stats() const;

    /// Mean / deviation of per-window playout CLF.
    sim::RunningStats playout_clf_stats() const;
};

/// Runs one configured streaming session.  Deterministic per config.
class Session {
public:
    /// Validates `cfg` (throws std::invalid_argument on bad settings).
    explicit Session(SessionConfig cfg);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Runs all windows and returns the report.  Call once.
    SessionResult run();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Convenience: configure, run, return.
SessionResult run_session(SessionConfig cfg);

}  // namespace espread::proto
