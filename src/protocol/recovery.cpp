#include "protocol/recovery.hpp"

#include <algorithm>
#include <limits>

namespace espread::proto {

namespace {
constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
}  // namespace

const char* recovery_mode_name(RecoveryMode m) noexcept {
    switch (m) {
        case RecoveryMode::kReactive: return "reactive";
        case RecoveryMode::kSuspended: return "suspended";
        case RecoveryMode::kProactive: return "proactive";
    }
    return "?";
}

RepairScheduler::RepairScheduler(const RecoveryConfig& cfg,
                                 std::size_t num_windows)
    : cfg_(cfg), num_windows_(num_windows) {
    queue_.reserve(cfg_.queue_limit);
    serviced_retry_.assign(num_windows_, 0);
}

RecoveryMode RepairScheduler::on_window_start(
    std::size_t k, std::optional<GovernorState> governor_state) {
    // Watchdog clock: a window that passed without any feedback arrival is
    // a miss.  The first two windows are grace — the window-0 ACK cannot
    // reach the sender before window 1 is underway, so their silence is
    // expected, not an outage (unless feedback already flowed before).
    if (k >= 2 || windows_since_feedback_ > 0 || feedback_seen_this_window_) {
        if (feedback_seen_this_window_) {
            windows_since_feedback_ = 0;
        } else {
            ++windows_since_feedback_;
        }
    }
    feedback_seen_this_window_ = false;

    if (governor_state.has_value()) {
        // Governed sessions: the governor's view of the feedback path
        // gates repair spending; its own watchdog subsumes ours.
        switch (*governor_state) {
            case GovernorState::kNormal:
                mode_ = RecoveryMode::kReactive;
                service_budget_ = kUnlimited;
                break;
            case GovernorState::kDegraded:
            case GovernorState::kFallback:
                mode_ = RecoveryMode::kSuspended;
                service_budget_ = 0;
                break;
            case GovernorState::kRecovering:
                // Slew-limited ramp back: one repair job per window.
                mode_ = RecoveryMode::kReactive;
                service_budget_ = 1;
                break;
        }
    } else if (windows_since_feedback_ >= cfg_.watchdog_windows) {
        if (mode_ != RecoveryMode::kProactive) ++report_.watchdog_timeouts;
        mode_ = RecoveryMode::kProactive;
        service_budget_ = 0;
    } else {
        mode_ = RecoveryMode::kReactive;
        service_budget_ = kUnlimited;
    }

    switch (mode_) {
        case RecoveryMode::kReactive: ++report_.windows_reactive; break;
        case RecoveryMode::kSuspended: ++report_.windows_suspended; break;
        case RecoveryMode::kProactive: ++report_.windows_proactive; break;
    }
    return mode_;
}

void RepairScheduler::on_feedback_alive() {
    windows_since_feedback_ = 0;
    feedback_seen_this_window_ = true;
    if (mode_ == RecoveryMode::kProactive) {
        // First arrival after a watchdog timeout: the path is back, resume
        // reactive service immediately (the flip is counted on entry).
        mode_ = RecoveryMode::kReactive;
        service_budget_ = kUnlimited;
    }
}

std::optional<RepairJob> RepairScheduler::admit(const NackRequest& n,
                                                sim::SimTime deadline,
                                                sim::SimTime now) {
    if (n.window >= num_windows_) {
        // Only a forged or corrupted-but-decodable request can name a
        // window the stream does not have.
        ++report_.nacks_invalid;
        return std::nullopt;
    }
    if (deadline <= now) {
        ++report_.jobs_expired;
        return std::nullopt;
    }
    const std::size_t retry = std::min<std::size_t>(n.retry, 255);
    if (retry + 1 <= serviced_retry_[n.window]) {
        // This retry round (or a later one) was already admitted: a
        // duplicated or reordered copy must not trigger double servicing.
        ++report_.nacks_duplicate;
        return std::nullopt;
    }
    serviced_retry_[n.window] = static_cast<std::uint8_t>(retry + 1);
    ++report_.nacks_admitted;
    RepairJob job;
    job.seq = n.seq;
    job.window = n.window;
    job.missing = n.missing;
    job.rank_deficit = n.rank_deficit;
    job.retry = retry;
    job.deadline = deadline;
    return job;
}

std::optional<RepairJob> RepairScheduler::enqueue(RepairJob job) {
    if (queue_.size() < cfg_.queue_limit) {
        queue_.push_back(job);
        return std::nullopt;
    }
    // Overload: shed the job with the earliest deadline — it has the least
    // playout budget left, so its repairs are the least likely to land in
    // time.  The incoming job competes on the same footing.
    auto victim = std::min_element(queue_.begin(), queue_.end(),
                                   [](const RepairJob& a, const RepairJob& b) {
                                       return a.deadline < b.deadline;
                                   });
    ++report_.jobs_shed;
    if (victim->deadline <= job.deadline) {
        RepairJob shed = *victim;
        *victim = job;
        return shed;
    }
    return job;
}

bool RepairScheduler::may_service_now() const noexcept {
    return mode_ == RecoveryMode::kReactive && service_budget_ > 0;
}

void RepairScheduler::note_serviced() noexcept {
    if (service_budget_ != kUnlimited && service_budget_ > 0) {
        --service_budget_;
    }
}

std::optional<RepairJob> RepairScheduler::next_job(sim::SimTime now) {
    if (!may_service_now()) return std::nullopt;
    for (;;) {
        if (queue_.empty()) return std::nullopt;
        auto soonest = std::min_element(
            queue_.begin(), queue_.end(),
            [](const RepairJob& a, const RepairJob& b) {
                return a.deadline < b.deadline;
            });
        RepairJob job = *soonest;
        queue_.erase(soonest);
        if (job.deadline <= now) {
            ++report_.jobs_expired;
            continue;
        }
        return job;
    }
}

}  // namespace espread::proto
