// Client-side playout model (paper §2.1's LDU time slots).
//
// The QoS framework the paper builds on gives every LDU an ideal playout
// slot: slot f spans [start_delay + f/rate, start_delay + (f+1)/rate).  A
// frame contributes continuity only if it is decodable AND completely
// arrived before its slot begins; a frame that arrives after its deadline
// is a unit loss exactly like a dropped one (its slot shows a repeat).
// The Session's window bookkeeping closes windows shortly after their
// transmission deadline, which under-counts nothing as long as the
// start-up delay covers one buffer window — this class makes that timing
// argument explicit and measurable, and lets experiments explore what
// happens when the start-up delay is shaved below the safe value.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "sim/event_queue.hpp"

namespace espread::proto {

/// Continuity of a stream judged by arrival times against playout deadlines.
class PlayoutClock {
public:
    /// `frame_rate` in LDUs per second; `startup_delay` is the time between
    /// stream start (t = 0) and the first slot's beginning — the paper sets
    /// it to one buffer-window duration (fill the client buffer first).
    /// Throws std::invalid_argument for non-positive rate or negative delay.
    PlayoutClock(double frame_rate, sim::SimTime startup_delay);

    /// Ideal playout instant of frame f (the beginning of its slot).
    sim::SimTime deadline(std::size_t frame) const noexcept;

    /// Records that `frame` became playable (complete and decodable) at
    /// `when`.  Later duplicates are ignored; only the earliest counts.
    void frame_ready(std::size_t frame, sim::SimTime when);

    /// Number of frames with a recorded ready time.
    std::size_t frames_seen() const noexcept { return ready_.size(); }

    /// True when the frame was ready strictly before its deadline.
    bool on_time(std::size_t frame) const;

    /// Slack (deadline - ready time) of a frame; nullopt if never ready.
    /// Negative values mean the frame missed its slot.
    std::optional<sim::SimTime> slack(std::size_t frame) const;

    /// Delivery mask over frames [0, count): true iff ready before the
    /// deadline.  Feeds the usual continuity metrics.
    LossMask playback_mask(std::size_t count) const;

    /// Smallest start-up delay that would have made every recorded frame
    /// (of the first `count`) on time — the measured lower bound on the
    /// client buffer's time depth.
    sim::SimTime required_startup_delay(std::size_t count) const;

private:
    double frame_rate_;
    sim::SimTime startup_delay_;
    std::vector<std::optional<sim::SimTime>> ready_;  // indexed by frame
};

}  // namespace espread::proto
