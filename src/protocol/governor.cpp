#include "protocol/governor.hpp"

#include <algorithm>
#include <stdexcept>

namespace espread::proto {

const char* governor_state_name(GovernorState s) noexcept {
    switch (s) {
        case GovernorState::kNormal: return "normal";
        case GovernorState::kDegraded: return "degraded";
        case GovernorState::kFallback: return "fallback";
        case GovernorState::kRecovering: return "recovering";
    }
    return "?";
}

const char* ack_reject_name(AckRejectReason r) noexcept {
    switch (r) {
        case AckRejectReason::kDuplicate: return "duplicate";
        case AckRejectReason::kStale: return "stale";
        case AckRejectReason::kFuture: return "future";
    }
    return "?";
}

void GovernorConfig::validate() const {
    if (hysteresis_windows == 0) {
        throw std::invalid_argument(
            "GovernorConfig: hysteresis_windows must be >= 1");
    }
    if (max_step == 0) {
        throw std::invalid_argument("GovernorConfig: max_step must be >= 1");
    }
    if (recovery_windows == 0) {
        throw std::invalid_argument(
            "GovernorConfig: recovery_windows must be >= 1");
    }
    if (outage_decay < 0.0 || outage_decay > 1.0) {
        throw std::invalid_argument(
            "GovernorConfig: outage_decay must be in [0, 1]");
    }
    if (max_rearm_windows < recovery_windows) {
        throw std::invalid_argument(
            "GovernorConfig: max_rearm_windows must be >= recovery_windows");
    }
}

AdaptationGovernor::AdaptationGovernor(GovernorConfig cfg,
                                       espread::BurstEstimator& estimator)
    : cfg_(cfg), estimator_(estimator) {
    cfg_.validate();
    rearm_windows_ = cfg_.recovery_windows;
    published_ = estimator_.bound();
    candidate_bound_ = published_;
}

std::size_t AdaptationGovernor::prior_bound() const noexcept {
    return espread::BurstEstimator::bound_for(
        static_cast<double>(estimator_.window()) / 2.0, estimator_.window());
}

void AdaptationGovernor::enter_state(GovernorState next, std::size_t window,
                                     sim::SimTime now) {
    if (next == state_) return;
    const GovernorState old = state_;
    state_ = next;
    ++report_.transitions;
    ++report_.state_entries[static_cast<std::size_t>(next)];
    current_dwell_ = 0;
    if (next == GovernorState::kFallback) ++report_.fallbacks;
    if (next == GovernorState::kRecovering) ++report_.recoveries;
    if (trace_ != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.type = obs::EventType::kGovernorState;
        e.actor = obs::Actor::kServer;
        e.window = window;
        e.arg = static_cast<std::int64_t>(next);
        e.v0 = static_cast<double>(old);
        e.v1 = static_cast<double>(misses_);
        trace_->record(e);
    }
}

std::size_t AdaptationGovernor::on_window_start(std::size_t k,
                                                sim::SimTime now) {
    current_window_ = k;
    if (!started_) {
        // Window 0 runs on the prior; there is no feedback deadline to miss
        // yet, so the watchdog arms only from window 1 on.
        started_ = true;
        published_ = estimator_.bound();
        candidate_bound_ = published_;
        candidate_streak_ = 0;
        // The window clock starting is the first (Normal) visit beginning.
        ++report_.state_entries[static_cast<std::size_t>(state_)];
        ++report_.windows_in_state[static_cast<std::size_t>(state_)];
        ++current_dwell_;
        report_.longest_dwell[static_cast<std::size_t>(state_)] = std::max(
            report_.longest_dwell[static_cast<std::size_t>(state_)],
            current_dwell_);
        return published_;
    }

    // Watchdog: one deadline per window.  The clock is the window index —
    // feedback that failed to arrive between two window starts is a miss.
    // Window w's ACK departs only after window w+1 begins, so the earliest
    // arrival of any feedback is during window 1 and the first deadline
    // the watchdog may check is at the start of window 2.
    if (k >= 2) {
        if (fresh_feedback_) {
            misses_ = 0;
        } else {
            ++misses_;
        }
    }
    fresh_feedback_ = false;

    switch (state_) {
        case GovernorState::kNormal:
            if (misses_ > cfg_.miss_budget) {
                enter_state(GovernorState::kFallback, k, now);
                estimator_.reset_to_prior();
            } else if (misses_ >= 1) {
                enter_state(GovernorState::kDegraded, k, now);
                estimator_.decay_toward_prior(cfg_.outage_decay);
            }
            break;
        case GovernorState::kDegraded:
            if (misses_ == 0) {
                enter_state(GovernorState::kNormal, k, now);
            } else if (misses_ > cfg_.miss_budget) {
                enter_state(GovernorState::kFallback, k, now);
                estimator_.reset_to_prior();
            } else {
                // Each further miss halves (by default) the estimate's
                // distance to the no-feedback prior: a soft landing toward
                // the same bound Fallback pins, so the hard reset is never
                // a cliff.
                estimator_.decay_toward_prior(cfg_.outage_decay);
            }
            break;
        case GovernorState::kFallback:
            if (misses_ == 0) {
                enter_state(GovernorState::kRecovering, k, now);
                recovery_left_ = rearm_windows_;
            }
            break;
        case GovernorState::kRecovering:
            if (misses_ > 0) {
                // Outage recurring mid-recovery: double the clean-feedback
                // streak required next time (exponential-backoff re-arming)
                // so a flapping ACK path cannot oscillate the bound.
                rearm_windows_ =
                    std::min(rearm_windows_ * 2, cfg_.max_rearm_windows);
                if (misses_ > cfg_.miss_budget) {
                    enter_state(GovernorState::kFallback, k, now);
                    estimator_.reset_to_prior();
                } else {
                    enter_state(GovernorState::kDegraded, k, now);
                    estimator_.decay_toward_prior(cfg_.outage_decay);
                }
            } else if (recovery_left_ <= 1) {
                enter_state(GovernorState::kNormal, k, now);
                rearm_windows_ = cfg_.recovery_windows;
            } else {
                --recovery_left_;
            }
            break;
    }

    const std::size_t raw = estimator_.bound();
    switch (state_) {
        case GovernorState::kFallback:
            published_ = prior_bound();
            candidate_bound_ = published_;
            candidate_streak_ = 0;
            break;
        case GovernorState::kDegraded:
            // Track the decaying estimate directly; hysteresis would only
            // delay the retreat to the safer prior.
            published_ = raw;
            candidate_bound_ = raw;
            candidate_streak_ = 0;
            break;
        case GovernorState::kRecovering:
            // Slew-limited ramp: at most max_step per window back toward
            // whatever the re-fed estimator now says.
            if (raw > published_) {
                published_ = std::min(raw, published_ + cfg_.max_step);
            } else if (raw < published_) {
                published_ = std::max(
                    raw, published_ > cfg_.max_step ? published_ - cfg_.max_step
                                                    : std::size_t{1});
            }
            candidate_bound_ = published_;
            candidate_streak_ = 0;
            break;
        case GovernorState::kNormal:
            if (raw == published_) {
                candidate_bound_ = raw;
                candidate_streak_ = 0;
            } else {
                if (raw == candidate_bound_) {
                    ++candidate_streak_;
                } else {
                    candidate_bound_ = raw;
                    candidate_streak_ = 1;
                }
                if (candidate_streak_ >= cfg_.hysteresis_windows) {
                    published_ = raw;
                    candidate_streak_ = 0;
                }
            }
            break;
    }

    ++report_.windows_in_state[static_cast<std::size_t>(state_)];
    ++current_dwell_;
    report_.longest_dwell[static_cast<std::size_t>(state_)] =
        std::max(report_.longest_dwell[static_cast<std::size_t>(state_)],
                 current_dwell_);
    return published_;
}

std::optional<AckRejectReason> AdaptationGovernor::admit_ack(
    std::size_t window, std::uint64_t seq, sim::SimTime now) {
    std::optional<AckRejectReason> reason;
    if (!started_ || window > current_window_ ||
        (window == current_window_ && !stream_closed_)) {
        // A window's ACK departs only after the next window has started, so
        // an ACK claiming the current (or a later, or an un-started) window
        // can only be a corrupted-but-plausible header — except the final
        // window's own ACK, which arrives after the clock stops
        // (close_stream()).
        reason = AckRejectReason::kFuture;
    } else if (last_ack_window_.has_value() && window == *last_ack_window_) {
        reason = AckRejectReason::kDuplicate;
    } else if (last_ack_window_.has_value() && window < *last_ack_window_) {
        reason = AckRejectReason::kStale;
    }
    if (!reason.has_value()) {
        last_ack_window_ = window;
        fresh_feedback_ = true;
        return std::nullopt;
    }
    switch (*reason) {
        case AckRejectReason::kDuplicate: ++report_.acks_rejected_duplicate; break;
        case AckRejectReason::kStale: ++report_.acks_rejected_stale; break;
        case AckRejectReason::kFuture: ++report_.acks_rejected_future; break;
    }
    if (trace_ != nullptr) {
        obs::TraceEvent e;
        e.time = now;
        e.type = obs::EventType::kGovernorAckReject;
        e.actor = obs::Actor::kServer;
        e.window = current_window_;
        e.seq = seq;
        e.arg = static_cast<std::int64_t>(*reason);
        e.v0 = static_cast<double>(window);
        trace_->record(e);
    }
    return reason;
}

void AdaptationGovernor::on_observation(std::size_t observed_max_burst,
                                        sim::SimTime now) {
    const std::size_t before = estimator_.bound();
    const std::size_t applied =
        estimator_.guarded_update(observed_max_burst, cfg_.max_step);
    const std::size_t plain_clamp =
        std::min(observed_max_burst, estimator_.window());
    if (applied != plain_clamp) {
        ++report_.observations_clamped;
        if (trace_ != nullptr) {
            obs::TraceEvent e;
            e.time = now;
            e.type = obs::EventType::kGovernorClamp;
            e.actor = obs::Actor::kServer;
            e.window = current_window_;
            e.arg = static_cast<std::int64_t>(observed_max_burst);
            e.v0 = static_cast<double>(applied);
            e.v1 = static_cast<double>(before);
            trace_->record(e);
        }
    }
}

}  // namespace espread::proto
