// Byte-level wire codec for the protocol records (DataPacket header,
// WindowTrailer, Feedback).
//
// The simulator moves records as in-memory structs (payload bits are
// accounted, not materialized), but a deployment needs real headers; this
// codec defines them: fixed-width big-endian fields, a one-byte type tag,
// a trailing CRC-16 (wire_checksum in wire.hpp) sealing every record, and
// bounds-checked decoding that rejects truncated or corrupt input instead
// of reading past the buffer.  The codec is canonical: decode accepts a
// byte string iff re-encoding the decoded record reproduces it exactly —
// the property the deterministic fuzz harness (tests/test_codec_fuzz) and
// the optional libFuzzer target (fuzz_codec) drive.  kPacketHeaderBits in
// session.cpp budgets 256 header bits per packet; encoded_size() of a
// DataPacket is asserted (in tests) to fit that budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "protocol/wire.hpp"
#include "sim/contracts.hpp"

namespace espread::proto {

/// Wire type tags (first byte of every record); the tag values are owned
/// by the contract registry (sim/contracts.hpp) and enforced by lint C2.
enum class WireType : std::uint8_t {
    kData = contracts::kWireTagData,
    kTrailer = contracts::kWireTagTrailer,
    kFeedback = contracts::kWireTagFeedback,
    kRepair = contracts::kWireTagRepair,
    kNack = contracts::kWireTagNack,
};

/// Serialized bytes of each record type.
std::vector<std::uint8_t> encode(const DataPacket& p);
std::vector<std::uint8_t> encode(const WindowTrailer& t);
std::vector<std::uint8_t> encode(const Feedback& f);
std::vector<std::uint8_t> encode(const RepairPacket& r);
std::vector<std::uint8_t> encode(const NackRequest& n);

/// Peeks the type tag; nullopt on empty input or unknown tag.
std::optional<WireType> peek_type(const std::vector<std::uint8_t>& bytes);

/// Decoders return nullopt on any malformed input (short buffer, wrong
/// tag, inconsistent counts) — never throw, never read out of bounds.
std::optional<DataPacket> decode_data(const std::vector<std::uint8_t>& bytes);
std::optional<WindowTrailer> decode_trailer(const std::vector<std::uint8_t>& bytes);
std::optional<Feedback> decode_feedback(const std::vector<std::uint8_t>& bytes);
std::optional<RepairPacket> decode_repair(const std::vector<std::uint8_t>& bytes);
std::optional<NackRequest> decode_nack(const std::vector<std::uint8_t>& bytes);

/// Exact encoded size in bytes of a DataPacket header (fixed).
std::size_t data_packet_header_bytes() noexcept;

/// Exact encoded size in bytes of a RepairPacket header (fixed).
std::size_t repair_packet_header_bytes() noexcept;

/// Exact encoded size in bytes of a NackRequest record (fixed).
std::size_t nack_request_header_bytes() noexcept;

}  // namespace espread::proto
