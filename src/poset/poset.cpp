#include "poset/poset.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace espread::poset {

Poset::Poset(std::size_t n) : n_(n), prereqs_(n) {}

void Poset::check_element(Element x) const {
    if (x >= n_) throw std::out_of_range("Poset: element out of range");
}

void Poset::add_dependency(Element dependent, Element prerequisite) {
    check_element(dependent);
    check_element(prerequisite);
    if (dependent == prerequisite) {
        throw std::invalid_argument("Poset: self-dependency");
    }
    auto& v = prereqs_[dependent];
    const auto it = std::lower_bound(v.begin(), v.end(), prerequisite);
    if (it == v.end() || *it != prerequisite) v.insert(it, prerequisite);
    closure_valid_ = false;
}

void Poset::ensure_closure() const {
    if (closure_valid_) return;
    closure_.assign(n_, std::vector<bool>(n_, false));
    // Topological propagation; also detects cycles.
    std::vector<std::size_t> outstanding(n_, 0);  // unprocessed prerequisites
    std::vector<std::vector<Element>> dependents(n_);
    for (Element x = 0; x < n_; ++x) {
        outstanding[x] = prereqs_[x].size();
        for (const Element p : prereqs_[x]) dependents[p].push_back(x);
    }
    std::queue<Element> ready;
    for (Element x = 0; x < n_; ++x) {
        if (outstanding[x] == 0) ready.push(x);
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const Element p = ready.front();
        ready.pop();
        ++processed;
        for (const Element x : dependents[p]) {
            closure_[x][p] = true;
            for (Element y = 0; y < n_; ++y) {
                if (closure_[p][y]) closure_[x][y] = true;
            }
            if (--outstanding[x] == 0) ready.push(x);
        }
    }
    if (processed != n_) {
        throw std::invalid_argument("Poset: dependency cycle");
    }
    closure_valid_ = true;
}

bool Poset::depends_on(Element x, Element y) const {
    check_element(x);
    check_element(y);
    ensure_closure();
    return closure_[x][y];
}

bool Poset::comparable(Element x, Element y) const {
    return leq(x, y) || leq(y, x);
}

bool Poset::covers(Element y, Element x) const {
    if (!depends_on(y, x)) return false;
    for (Element z = 0; z < n_; ++z) {
        if (z != x && z != y && depends_on(y, z) && depends_on(z, x)) return false;
    }
    return true;
}

bool Poset::is_anchor(Element x) const {
    check_element(x);
    ensure_closure();
    for (Element y = 0; y < n_; ++y) {
        if (y != x && closure_[y][x]) return true;
    }
    return false;
}

std::vector<Element> Poset::anchors() const {
    std::vector<Element> out;
    for (Element x = 0; x < n_; ++x) {
        if (is_anchor(x)) out.push_back(x);
    }
    return out;
}

std::vector<Element> Poset::non_anchors() const {
    std::vector<Element> out;
    for (Element x = 0; x < n_; ++x) {
        if (!is_anchor(x)) out.push_back(x);
    }
    return out;
}

std::vector<Element> Poset::minimal_elements() const {
    ensure_closure();
    std::vector<Element> out;
    for (Element x = 0; x < n_; ++x) {
        if (prereqs_[x].empty()) out.push_back(x);
    }
    return out;
}

const std::vector<Element>& Poset::direct_prerequisites(Element x) const {
    check_element(x);
    return prereqs_[x];
}

bool Poset::is_antichain(const std::vector<Element>& set) const {
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (std::size_t j = i + 1; j < set.size(); ++j) {
            if (set[i] == set[j] || comparable(set[i], set[j])) return false;
        }
    }
    return true;
}

bool Poset::is_chain(const std::vector<Element>& chain) const {
    for (std::size_t i = 0; i < chain.size(); ++i) {
        for (std::size_t j = i + 1; j < chain.size(); ++j) {
            if (!comparable(chain[i], chain[j])) return false;
        }
    }
    return true;
}

std::size_t Poset::height(Element x) const {
    check_element(x);
    ensure_closure();
    // height = 1 + max height among direct prerequisites; memoized per call
    // chain via the closure (prerequisite heights computed first is
    // guaranteed because the closure build already proved acyclicity).
    std::vector<std::size_t> h(n_, 0);
    std::vector<Element> order = linear_extension();
    for (const Element e : order) {
        for (const Element p : prereqs_[e]) h[e] = std::max(h[e], h[p] + 1);
    }
    return h[x];
}

std::vector<std::vector<Element>> Poset::antichain_decomposition() const {
    ensure_closure();
    std::vector<std::size_t> h(n_, 0);
    std::size_t max_h = 0;
    for (const Element e : linear_extension()) {
        for (const Element p : prereqs_[e]) h[e] = std::max(h[e], h[p] + 1);
        max_h = std::max(max_h, h[e]);
    }
    std::vector<std::vector<Element>> layers(n_ == 0 ? 0 : max_h + 1);
    for (Element x = 0; x < n_; ++x) layers[h[x]].push_back(x);
    return layers;
}

std::size_t Poset::longest_chain_length() const {
    if (n_ == 0) return 0;
    return antichain_decomposition().size();
}

std::vector<Element> Poset::longest_chain() const {
    if (n_ == 0) return {};
    ensure_closure();
    std::vector<std::size_t> h(n_, 0);
    std::vector<Element> best_pred(n_, n_);
    Element top = 0;
    for (const Element e : linear_extension()) {
        for (const Element p : prereqs_[e]) {
            if (h[p] + 1 > h[e]) {
                h[e] = h[p] + 1;
                best_pred[e] = p;
            }
        }
        if (h[e] > h[top]) top = e;
    }
    std::vector<Element> chain;
    for (Element e = top;; e = best_pred[e]) {
        chain.push_back(e);
        if (best_pred[e] == n_) break;
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

bool Poset::is_ranked() const {
    ensure_closure();
    std::vector<std::size_t> h(n_, 0);
    for (const Element e : linear_extension()) {
        for (const Element p : prereqs_[e]) h[e] = std::max(h[e], h[p] + 1);
    }
    for (Element y = 0; y < n_; ++y) {
        for (Element x = 0; x < n_; ++x) {
            if (y != x && covers(y, x) && h[y] != h[x] + 1) return false;
        }
    }
    return true;
}

std::vector<Element> Poset::linear_extension() const {
    ensure_closure();  // guarantees acyclicity
    std::vector<std::size_t> outstanding(n_, 0);
    std::vector<std::vector<Element>> dependents(n_);
    for (Element x = 0; x < n_; ++x) {
        outstanding[x] = prereqs_[x].size();
        for (const Element p : prereqs_[x]) dependents[p].push_back(x);
    }
    std::priority_queue<Element, std::vector<Element>, std::greater<>> ready;
    for (Element x = 0; x < n_; ++x) {
        if (outstanding[x] == 0) ready.push(x);
    }
    std::vector<Element> order;
    order.reserve(n_);
    while (!ready.empty()) {
        const Element p = ready.top();
        ready.pop();
        order.push_back(p);
        for (const Element x : dependents[p]) {
            if (--outstanding[x] == 0) ready.push(x);
        }
    }
    return order;
}

bool Poset::is_linear_extension(const std::vector<Element>& order) const {
    if (order.size() != n_) return false;
    std::vector<std::size_t> position(n_, n_);
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] >= n_ || position[order[i]] != n_) return false;
        position[order[i]] = i;
    }
    for (Element x = 0; x < n_; ++x) {
        for (const Element p : prereqs_[x]) {
            if (position[p] > position[x]) return false;
        }
    }
    return true;
}

}  // namespace espread::poset
