#include "poset/layered.hpp"

#include <algorithm>

namespace espread::poset {

std::vector<Element> LayerPlan::transmission() const {
    std::vector<Element> out;
    out.reserve(members.size());
    for (std::size_t slot = 0; slot < perm.size(); ++slot) {
        out.push_back(members[perm[slot]]);
    }
    return out;
}

std::vector<Element> LayeredPlan::flattened() const {
    std::vector<Element> out;
    for (const LayerPlan& layer : layers) {
        const std::vector<Element> tx = layer.transmission();
        out.insert(out.end(), tx.begin(), tx.end());
    }
    return out;
}

std::size_t LayeredPlan::num_critical() const {
    return static_cast<std::size_t>(
        std::count_if(layers.begin(), layers.end(),
                      [](const LayerPlan& l) { return l.critical; }));
}

std::vector<std::vector<Element>> layer_members(const Poset& poset) {
    const std::size_t n = poset.size();
    if (n == 0) return {};
    // Height of each element, restricted to chains of anchors (a non-anchor
    // never appears below another element, so anchor heights are unaffected
    // by non-anchors).
    std::vector<bool> anchor(n, false);
    for (const Element a : poset.anchors()) anchor[a] = true;

    std::vector<std::size_t> h(n, 0);
    std::size_t max_anchor_h = 0;
    bool any_anchor = false;
    for (const Element e : poset.linear_extension()) {
        for (const Element p : poset.direct_prerequisites(e)) {
            h[e] = std::max(h[e], h[p] + 1);
        }
        if (anchor[e]) {
            max_anchor_h = std::max(max_anchor_h, h[e]);
            any_anchor = true;
        }
    }

    std::vector<std::vector<Element>> layers(any_anchor ? max_anchor_h + 2 : 1);
    for (Element x = 0; x < n; ++x) {
        if (anchor[x]) {
            layers[h[x]].push_back(x);
        } else {
            layers.back().push_back(x);
        }
    }
    // Drop empty anchor layers (possible when anchors skip a height level).
    std::erase_if(layers, [](const std::vector<Element>& l) { return l.empty(); });
    return layers;
}

LayeredPlan build_layered_plan(const Poset& poset, std::size_t noncritical_bound) {
    LayeredPlan plan;
    std::vector<bool> anchor(poset.size(), false);
    for (const Element a : poset.anchors()) anchor[a] = true;

    for (const std::vector<Element>& members : layer_members(poset)) {
        LayerPlan layer;
        layer.members = members;
        layer.critical =
            !members.empty() && std::all_of(members.begin(), members.end(),
                                            [&](Element e) { return anchor[e]; });
        const std::size_t sz = members.size();
        layer.bound = layer.critical ? (sz + 1) / 2
                                     : std::min(noncritical_bound, sz);
        const CpoResult r = calculate_permutation(sz, layer.bound);
        layer.clf_guarantee = r.clf;
        layer.perm = r.perm;
        plan.layers.push_back(std::move(layer));
    }
    return plan;
}

}  // namespace espread::poset
