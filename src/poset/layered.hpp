// Layered Permutation Transmission Order (paper §3.2–§3.3, Fig. 3).
//
// Given a buffer window whose inter-frame dependencies form a poset, the
// permutable sets are exactly the antichains.  The window is decomposed
// into layers (an antichain decomposition) transmitted critical-layers
// first:
//   * layer h (h = 0, 1, ...) holds the *anchor* frames of height h — for
//     MPEG with W GOPs buffered these are the I frames, then the first P
//     frames of each GOP, then the second P frames, etc.;
//   * all non-anchor frames (MPEG B frames) form the final, non-critical
//     layer(s).
// Each layer is internally scrambled with calculatePermutation.  Critical
// layers use a fixed bound (they are additionally protected by
// retransmission/FEC at the protocol level); the non-critical layer uses
// the adaptive bound learned from client feedback.
//
// The resulting flattened order is a linear extension of the poset — a
// frame is never sent before the frames it depends on — so truncating the
// tail (when retransmissions eat transmission slots) always drops the most
// expendable frames first.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cpo.hpp"
#include "core/permutation.hpp"
#include "poset/poset.hpp"

namespace espread::poset {

/// One transmission layer of a buffer window.
struct LayerPlan {
    std::vector<Element> members;  ///< playback indices, ascending
    Permutation perm;              ///< within-layer scrambling (size == members.size())
    std::size_t clf_guarantee = 0; ///< exact worst-case CLF of `perm` under its bound
    std::size_t bound = 0;         ///< burst bound the permutation was built for
    bool critical = false;         ///< contains anchor frames

    /// Members in transmission order: transmission()[i] = members[perm[i]].
    std::vector<Element> transmission() const;
};

/// Complete layered plan for one buffer window.
struct LayeredPlan {
    std::vector<LayerPlan> layers;  ///< transmission order: layers[0] first

    /// All playback indices in wire order.
    std::vector<Element> flattened() const;

    std::size_t num_critical() const;

    /// Size of the antichain decomposition (paper's theta).
    std::size_t layer_count() const { return layers.size(); }
};

/// The layering alone (no permutations): anchors grouped by height,
/// non-anchors last.  Every returned set is an antichain; prerequisites of
/// any frame lie in a strictly earlier set; the number of sets equals the
/// poset's longest chain length (a minimal antichain decomposition).
std::vector<std::vector<Element>> layer_members(const Poset& poset);

/// Builds the full layered permutation transmission order.
///
/// `noncritical_bound` is the adaptive burst bound b (from the estimator)
/// used for non-critical layers.  Critical layers use the fixed bound
/// ceil(|layer| / 2) — the "average case" the server assumes when no
/// feedback applies (the paper keeps critical-layer permutations fixed so
/// that retransmission scheduling stays deterministic; the exact constant
/// is reconstructed from the OCR-garbled text).  Bounds are clamped to the
/// layer size.
LayeredPlan build_layered_plan(const Poset& poset, std::size_t noncritical_bound);

}  // namespace espread::poset
