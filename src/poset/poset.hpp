// Partially ordered sets modelling inter-frame dependency (paper §3.1).
//
// Elements are frame indices 0..n-1 of a buffer window.  The order relation
// follows the paper: x ⊑ y iff frame x depends (directly or transitively)
// on frame y — an MPEG B-frame is *below* the anchors it references.  A
// frame that some other frame depends on is an *anchor* frame.  Antichains
// are exactly the sets that may be freely permuted before transmission; the
// minimal antichain decomposition (Mirsky: its size equals the longest
// chain) yields the layers of the Layered Permutation Transmission Order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace espread::poset {

using Element = std::size_t;

/// Finite poset given by direct dependencies, with precomputed transitive
/// closure.  Mutations (add_dependency) invalidate and lazily rebuild the
/// closure.  Cycles are rejected at closure time (throws std::invalid_argument),
/// since a dependency cycle cannot be decoded at all.
class Poset {
public:
    /// Poset of n pairwise-incomparable elements (an antichain).
    explicit Poset(std::size_t n);

    std::size_t size() const noexcept { return n_; }

    /// Declares that `dependent` directly depends on `prerequisite`
    /// (dependent ⊏ prerequisite in the paper's orientation).
    /// Self-dependencies throw std::invalid_argument.
    void add_dependency(Element dependent, Element prerequisite);

    /// x strictly below y: x transitively depends on y.
    bool depends_on(Element x, Element y) const;

    /// x ⊑ y: x == y or x depends on y.
    bool leq(Element x, Element y) const { return x == y || depends_on(x, y); }

    /// Comparable: x ⊑ y or y ⊑ x.
    bool comparable(Element x, Element y) const;

    /// y covers x: x ⊏ y with no element strictly between.
    bool covers(Element y, Element x) const;

    /// Anchor: some other element depends on it (paper §3.2).
    bool is_anchor(Element x) const;
    std::vector<Element> anchors() const;

    /// Elements nothing depends on (maximal in "importance": the B frames).
    std::vector<Element> non_anchors() const;

    /// Minimal elements: depend on nothing (the I frames).
    std::vector<Element> minimal_elements() const;

    /// Direct prerequisites declared for x (deduplicated, sorted).
    const std::vector<Element>& direct_prerequisites(Element x) const;

    /// Every pair in `set` is incomparable.
    bool is_antichain(const std::vector<Element>& set) const;

    /// Every consecutive pair in `chain` is comparable (so, by transitivity,
    /// all pairs are) — i.e. the sequence lies on one chain of the poset.
    bool is_chain(const std::vector<Element>& chain) const;

    /// Length (number of elements) of the longest chain.
    std::size_t longest_chain_length() const;

    /// A witness longest chain, listed from most-required (I frame end) to
    /// most-dependent.
    std::vector<Element> longest_chain() const;

    /// Height of x: length of the longest chain of elements strictly above
    /// x in dependency direction (its prerequisites).  Elements with no
    /// prerequisites have height 0.
    std::size_t height(Element x) const;

    /// Minimal antichain decomposition by height: layer h holds all
    /// elements of height h.  Prerequisites of any element always sit in an
    /// earlier layer; the number of layers equals longest_chain_length().
    std::vector<std::vector<Element>> antichain_decomposition() const;

    /// Ranked in the strict order-theoretic sense: for every covering pair
    /// y covers x (y depends on x), height(y) == height(x) + 1.  MPEG open
    /// GOPs are NOT strictly ranked (a B frame covers anchors of differing
    /// height); the layering above does not require rankedness.
    bool is_ranked() const;

    /// Deterministic linear extension listing prerequisites before
    /// dependents (Kahn's algorithm, lowest index first among ready
    /// elements) — a valid transmission order.
    std::vector<Element> linear_extension() const;

    /// Checks that `order` is a permutation of all elements in which every
    /// element appears after all of its prerequisites.
    bool is_linear_extension(const std::vector<Element>& order) const;

private:
    void ensure_closure() const;
    void check_element(Element x) const;

    std::size_t n_;
    std::vector<std::vector<Element>> prereqs_;  // direct, sorted, deduped
    mutable std::vector<std::vector<bool>> closure_;  // closure_[x][y]: x depends on y
    mutable bool closure_valid_ = false;
};

}  // namespace espread::poset
