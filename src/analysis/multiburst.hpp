// Beyond Theorem 1: permutation quality under MULTIPLE bursts per window.
//
// The paper's model (and Theorem 1) assumes at most one burst of length <=
// b per n-LDU window.  A real Gilbert channel emits several shorter bursts
// per window, and orderings that are optimal for one burst can be fragile
// against two: e.g. residue_class_order(n, 2) guarantees CLF 1 for any
// single burst up to n/2, yet two short bursts — one landing on the odd
// class, one on the even class near the same playback region — produce
// adjacent losses immediately.  This module provides
//   * the exact worst case under two disjoint bursts,
//   * adjacency exposure, a cheap spectrum summarizing how hard it is for
//     k bursts to create a playback run,
//   * Monte-Carlo CLF under the actual Gilbert process,
// and is used by bench_multiburst to compare orderings (k-CPO, IBO, block,
// random) in the regime the paper's theory does not cover.
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics.hpp"
#include "core/permutation.hpp"
#include "net/gilbert.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace espread::analysis {

/// Exact worst-case playback CLF when the channel may drop up to TWO
/// disjoint runs of transmissions, each of length <= b, within the window.
/// O(n^3) in the worst case — intended for window sizes up to a few
/// hundred.  With b == 0 returns 0; a single burst (the second empty) is
/// included, so this is >= worst_case_clf(perm, b).
std::size_t worst_case_clf_two_bursts(const Permutation& perm, std::size_t b);

/// Adjacency exposure at wire distance d: the number of playback-adjacent
/// pairs (x, x+1) whose transmission slots are exactly d apart.  A single
/// burst of length b can only join x and x+1 if their slots are < b apart,
/// so exposure at small d is what a one-burst adversary exploits; two
/// bursts can exploit any distance, which is why the full profile matters.
/// Returns a vector e of size n where e[d] is the count at distance d.
std::vector<std::size_t> adjacency_exposure(const Permutation& perm);

/// Smallest wire distance between any playback-adjacent pair — the largest
/// single burst the order tolerates with CLF 1.
std::size_t min_adjacent_distance(const Permutation& perm);

/// Monte-Carlo continuity of an ordering under the Gilbert loss process:
/// `trials` windows are drawn, each LDU passing through the chain once (an
/// LDU-granularity approximation of the packet process).  Returns the
/// per-window CLF statistics and the aggregate loss rate.
struct GilbertClfResult {
    sim::RunningStats clf;   ///< per-window playback CLF
    double alf = 0.0;        ///< fraction of LDUs lost overall
};
GilbertClfResult gilbert_clf(const Permutation& perm,
                             const net::GilbertParams& params,
                             std::size_t trials, sim::Rng rng);

}  // namespace espread::analysis
