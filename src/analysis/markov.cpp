#include "analysis/markov.hpp"

#include <algorithm>
#include <stdexcept>

namespace espread::analysis {

namespace {

/// Drop probability while the chain sits in the given state.
double emission(const net::GilbertParams& p, bool bad) {
    return bad ? p.loss_bad : p.loss_good;
}

}  // namespace

std::vector<double> clf_distribution_in_order(const net::GilbertParams& params,
                                              std::size_t n,
                                              double initial_p_good) {
    const auto valid = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!valid(params.p_good) || !valid(params.p_bad) ||
        !valid(params.loss_good) || !valid(params.loss_bad) ||
        !valid(initial_p_good)) {
        throw std::invalid_argument("clf_distribution: probabilities in [0,1]");
    }
    // prob[s][c][m]: chain in state s (0 good, 1 bad), current loss run c,
    // max run so far m.  Packets experience the current state, then the
    // chain transitions (matching GilbertLoss::drop_next()).
    const std::size_t width = n + 1;
    const auto idx = [width](std::size_t c, std::size_t m) {
        return c * width + m;
    };
    std::vector<double> prob[2] = {std::vector<double>(width * width, 0.0),
                                   std::vector<double>(width * width, 0.0)};
    std::vector<double> next[2] = {std::vector<double>(width * width, 0.0),
                                   std::vector<double>(width * width, 0.0)};
    prob[0][idx(0, 0)] = initial_p_good;
    prob[1][idx(0, 0)] = 1.0 - initial_p_good;

    for (std::size_t packet = 0; packet < n; ++packet) {
        next[0].assign(width * width, 0.0);
        next[1].assign(width * width, 0.0);
        for (int s = 0; s < 2; ++s) {
            const double h = emission(params, s == 1);
            const double stay = s == 0 ? params.p_good : params.p_bad;
            for (std::size_t c = 0; c <= packet; ++c) {
                for (std::size_t m = c; m <= packet; ++m) {
                    const double p = prob[s][idx(c, m)];
                    if (p == 0.0) continue;
                    // outcome: lost with prob h
                    const struct {
                        double weight;
                        std::size_t c2;
                        std::size_t m2;
                    } outcomes[2] = {
                        {p * h, c + 1, std::max(m, c + 1)},
                        {p * (1.0 - h), 0, m},
                    };
                    for (const auto& o : outcomes) {
                        if (o.weight == 0.0) continue;
                        next[s][idx(o.c2, o.m2)] += o.weight * stay;
                        next[1 - s][idx(o.c2, o.m2)] += o.weight * (1.0 - stay);
                    }
                }
            }
        }
        prob[0].swap(next[0]);
        prob[1].swap(next[1]);
    }

    std::vector<double> dist(n + 1, 0.0);
    for (int s = 0; s < 2; ++s) {
        for (std::size_t c = 0; c <= n; ++c) {
            for (std::size_t m = c; m <= n; ++m) {
                dist[m] += prob[s][idx(c, m)];
            }
        }
    }
    return dist;
}

double expected_clf_in_order(const net::GilbertParams& params, std::size_t n,
                             double initial_p_good) {
    const auto dist = clf_distribution_in_order(params, n, initial_p_good);
    double mean = 0.0;
    for (std::size_t m = 0; m < dist.size(); ++m) {
        mean += static_cast<double>(m) * dist[m];
    }
    return mean;
}

double stationary_p_good(const net::GilbertParams& params) {
    const double to_bad = 1.0 - params.p_good;
    const double to_good = 1.0 - params.p_bad;
    if (to_bad + to_good == 0.0) return 1.0;  // both absorbing; starts GOOD
    return to_good / (to_bad + to_good);
}

double loss_probability_at(const net::GilbertParams& params, std::size_t index,
                           double initial_p_good) {
    double p_good = initial_p_good;
    for (std::size_t k = 0; k < index; ++k) {
        p_good = p_good * params.p_good + (1.0 - p_good) * (1.0 - params.p_bad);
    }
    return p_good * params.loss_good + (1.0 - p_good) * params.loss_bad;
}

double expected_losses_in_order(const net::GilbertParams& params, std::size_t n,
                                double initial_p_good) {
    double p_good = initial_p_good;
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += p_good * params.loss_good + (1.0 - p_good) * params.loss_bad;
        p_good = p_good * params.p_good + (1.0 - p_good) * (1.0 - params.p_bad);
    }
    return total;
}

}  // namespace espread::analysis
