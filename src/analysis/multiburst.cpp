#include "analysis/multiburst.hpp"

#include <algorithm>

#include "core/burst.hpp"
#include "sim/contracts.hpp"

namespace espread::analysis {

std::size_t worst_case_clf_two_bursts(const Permutation& perm, std::size_t b) {
    const std::size_t n = perm.size();
    if (n == 0 || b == 0) return 0;
    const std::size_t len = std::min(b, n);

    // Single burst is a special case (second burst empty).
    std::size_t worst = espread::worst_case_clf(perm, b);

    // For every first-burst position, overlay every disjoint second burst.
    // Bursts of exactly `len` dominate shorter ones at the same positions.
    for (std::size_t s1 = 0; s1 + len <= n; ++s1) {
        LossMask base = espread::burst_loss_mask(perm, s1, len);
        for (std::size_t s2 = s1 + len; s2 + len <= n; ++s2) {
            LossMask mask = base;
            for (std::size_t slot = s2; slot < s2 + len; ++slot) {
                mask[perm[slot]] = false;
            }
            worst = std::max(worst, espread::consecutive_loss(mask));
            if (worst == n) return worst;
        }
    }
    return worst;
}

std::vector<std::size_t> adjacency_exposure(const Permutation& perm) {
    const std::size_t n = perm.size();
    std::vector<std::size_t> exposure(n, 0);
    if (n < 2) return exposure;
    const Permutation inv = perm.inverse();
    for (std::size_t x = 0; x + 1 < n; ++x) {
        const std::size_t a = inv[x];
        const std::size_t b = inv[x + 1];
        const std::size_t d = a > b ? a - b : b - a;
        ++exposure[d];
    }
    return exposure;
}

std::size_t min_adjacent_distance(const Permutation& perm) {
    const auto exposure = adjacency_exposure(perm);
    for (std::size_t d = 0; d < exposure.size(); ++d) {
        if (exposure[d] > 0) return d;
    }
    return perm.size();  // no adjacent pairs at all (n < 2)
}

GilbertClfResult gilbert_clf(const Permutation& perm,
                             const net::GilbertParams& params,
                             std::size_t trials, sim::Rng rng) {
    const std::size_t n = perm.size();
    GilbertClfResult result;
    if (n == 0 || trials == 0) return result;

    net::GilbertLoss chain{params,
                           rng.split(contracts::kAnalysisLaneGilbertChain)};
    std::size_t lost_total = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        LossMask playback(n, true);
        for (std::size_t slot = 0; slot < n; ++slot) {
            if (chain.drop_next()) {
                playback[perm[slot]] = false;
                ++lost_total;
            }
        }
        result.clf.add(static_cast<double>(espread::consecutive_loss(playback)));
    }
    result.alf = static_cast<double>(lost_total) /
                 static_cast<double>(n * trials);
    return result;
}

}  // namespace espread::analysis
