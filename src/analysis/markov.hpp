// Closed-form analysis of the Gilbert loss process over one buffer window.
//
// For in-order transmission the playback loss pattern IS the chain's loss
// pattern, so the distribution of the per-window CLF (longest loss run)
// can be computed exactly by dynamic programming over
// (slot, chain state, current run, max run).  This gives the simulator an
// independent ground truth: the Monte-Carlo and protocol pipelines must
// reproduce these numbers (they do — see test_markov.cpp), and benches can
// quote exact baselines instead of sampled ones.
//
// For permuted transmission the playback run structure depends on the
// whole permutation and no comparable small-state DP exists; use
// analysis::gilbert_clf (Monte Carlo) there.
#pragma once

#include <cstddef>
#include <vector>

#include "net/gilbert.hpp"

namespace espread::analysis {

/// Exact distribution of the longest loss run (CLF of in-order
/// transmission) over a window of `n` packets of the Gilbert chain.
/// `initial_p_good` is the probability the chain starts the window in
/// GOOD: 1.0 models the paper's fresh-start window; stationary_p_good()
/// models a window deep inside a continuous stream (which is what
/// analysis::gilbert_clf and the protocol sessions measure after the
/// first window).  Element k of the result is P(CLF == k); the vector has
/// n + 1 entries and sums to 1.
std::vector<double> clf_distribution_in_order(const net::GilbertParams& params,
                                              std::size_t n,
                                              double initial_p_good = 1.0);

/// Mean of clf_distribution_in_order.
double expected_clf_in_order(const net::GilbertParams& params, std::size_t n,
                             double initial_p_good = 1.0);

/// Long-run probability of the GOOD state.
double stationary_p_good(const net::GilbertParams& params);

/// Exact probability that a specific packet (0-based) is lost, starting
/// from GOOD with probability `initial_p_good` — converges to
/// stationary_loss as index grows.
double loss_probability_at(const net::GilbertParams& params, std::size_t index,
                           double initial_p_good = 1.0);

/// Exact expected number of losses in a window of n (sum of the above).
double expected_losses_in_order(const net::GilbertParams& params, std::size_t n,
                                double initial_p_good = 1.0);

}  // namespace espread::analysis
