// Minimal discrete-event simulation engine.
//
// The transmission-protocol simulation (src/protocol) is event-driven:
// packet departures, packet arrivals after link delay, ACK arrivals and
// playout deadlines are all events scheduled on one EventQueue.  Time is
// kept in integer nanoseconds so that runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace espread::sim {

/// Simulated time in integer nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosPerSecond = 1'000'000'000;

/// Converts seconds (double) to SimTime, rounding to nearest nanosecond.
constexpr SimTime from_seconds(double s) noexcept {
    return static_cast<SimTime>(s * static_cast<double>(kNanosPerSecond) + 0.5);
}

/// Converts SimTime to seconds.
constexpr double to_seconds(SimTime t) noexcept {
    return static_cast<double>(t) / static_cast<double>(kNanosPerSecond);
}

/// Converts milliseconds to SimTime.
constexpr SimTime from_millis(double ms) noexcept { return from_seconds(ms / 1e3); }

/// Priority queue of timestamped callbacks with deterministic FIFO
/// tie-breaking for events scheduled at the same instant.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Current simulated time.  Starts at 0 and only moves forward.
    SimTime now() const noexcept { return now_; }

    /// Schedules `cb` to run at absolute time `when` (>= now()).
    /// Scheduling in the past is clamped to now() — the event still runs,
    /// immediately, preserving causality.
    void schedule_at(SimTime when, Callback cb);

    /// Schedules `cb` to run `delay` after the current time.
    void schedule_after(SimTime delay, Callback cb);

    /// Runs the earliest pending event; returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty or the next event is after
    /// `deadline`; leaves now() at min(deadline, last event time).
    void run_until(SimTime deadline);

    /// Runs all pending events (including ones scheduled by other events).
    /// `max_events` guards against runaway self-scheduling loops.
    void run(std::uint64_t max_events = 100'000'000);

    bool empty() const noexcept { return heap_.empty(); }
    std::size_t pending() const noexcept { return heap_.size(); }

private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;  // FIFO order among equal timestamps
        Callback cb;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace espread::sim
