#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace espread::sim {

void EventQueue::schedule_at(SimTime when, Callback cb) {
    if (!cb) throw std::invalid_argument("EventQueue: null callback");
    heap_.push(Entry{std::max(when, now_), next_seq_++, std::move(cb)});
}

void EventQueue::schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(cb));
}

bool EventQueue::step() {
    if (heap_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (shared ownership via std::function copy).
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.cb();
    return true;
}

void EventQueue::run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.top().when <= deadline) step();
    now_ = std::max(now_, deadline);
}

void EventQueue::run(std::uint64_t max_events) {
    std::uint64_t n = 0;
    while (step()) {
        if (++n >= max_events) {
            throw std::runtime_error("EventQueue::run: event budget exhausted (livelock?)");
        }
    }
}

}  // namespace espread::sim
