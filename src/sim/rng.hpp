// Deterministic random-number generation for all espread simulations.
//
// Every source of randomness in the library flows through sim::Rng so that
// a (seed) pair fully determines a simulation run, independent of the
// standard-library implementation (std::uniform_real_distribution et al. are
// not bit-portable across stdlibs).  The generator is xoshiro256**, seeded
// via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace espread::sim {

/// Deterministic, splittable pseudo-random generator (xoshiro256**).
///
/// Not cryptographically secure; intended for simulation workloads.
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// handed to standard algorithms (e.g. std::shuffle) when bit-portability
/// of the *consumer* does not matter.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit words of state from `seed` using SplitMix64,
    /// which guarantees a non-zero, well-mixed state for any seed value.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit value.
    result_type operator()() noexcept { return next_u64(); }

    /// Next raw 64-bit value.
    std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() noexcept;

    /// Uniform double in [lo, hi).  Requires lo <= hi.
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in the inclusive range [lo, hi].  Requires lo <= hi.
    /// Uses rejection sampling, so the result is exactly uniform.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

    /// Bernoulli trial: true with probability p (clamped to [0, 1]).
    bool bernoulli(double p) noexcept;

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean) noexcept;

    /// Normally distributed value (Box–Muller; consumes two uniforms).
    double normal(double mean, double stddev) noexcept;

    /// Lognormally distributed value; mu/sigma are the parameters of the
    /// underlying normal (i.e. log X ~ N(mu, sigma^2)).
    double lognormal(double mu, double sigma) noexcept;

    /// Geometric distribution: number of failures before the first success
    /// with success probability p in (0, 1].  Returns values in {0, 1, ...}.
    std::uint64_t geometric(double p) noexcept;

    /// Derives an independent child generator.  Children produced by
    /// distinct calls (or distinct stream ids) are statistically
    /// independent streams; used to give each simulated component its own
    /// randomness without cross-coupling.
    Rng split(std::uint64_t stream_id) noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
};

/// The `index`-th element of the SplitMix64 stream anchored at `base`
/// (0-based), computed by random access rather than iteration.  Used to
/// derive per-trial seeds for Monte-Carlo experiments: the mapping depends
/// only on (base, index), so a trial's seed — and therefore its entire
/// simulation — is identical no matter which thread runs it or in what
/// order trials are scheduled.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace espread::sim
