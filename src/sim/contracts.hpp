// Cross-TU contract registry (DESIGN.md §14).
//
// Every invariant that keeps the experiments bit-reproducible but lives in
// MORE than one translation unit is declared here exactly once, as a named
// constant or a name table, and `espread_lint --contracts` (rules C1-C5)
// proves the rest of the tree agrees with it:
//
//   * RNG split lanes.  Each independent consumer of a root Rng owns one
//     lane per root family; a duplicated lane silently correlates two
//     processes that every figure assumes are independent.  Lane constants
//     are named k<Family>Lane<Name>; the family names the root the lane is
//     split from (C1: no magic `.split(<int>)` anywhere in src/ or bench/,
//     no value collision within a family).
//   * Wire-format type tags.  One byte on the wire, one constant here;
//     protocol/codec.hpp's WireType enumerators must take their values
//     from these (C2: declared exactly once, canonical decode coverage in
//     src/protocol/codec.cpp, structure-aware fuzz-corpus coverage).
//   * Metric / trace / SLO / telemetry name tables.  Producer call sites
//     (`add_counter("...")`, series writers) and consumers (espread_report
//     loaders, SLO signal parsing, Prometheus exposition) are checked
//     against these tables (C3), and entries nothing produces are dead
//     (C5).
//   * Bench claim-gate keys.  tools/perf_gate and the CI workflow gate on
//     top-level BENCH_*.json keys; the keys they consume must stay a
//     subset of what the benches emit (C4).
//
// To add a lane, tag, metric, or gate key: declare it here first, then use
// it at the producing/consuming sites.  The lint target fails until both
// sides agree — that is the point.
#pragma once

#include <cstdint>
#include <string_view>

namespace espread::contracts {

// ---- RNG split lanes -------------------------------------------------------
//
// Family "Session": lanes split from proto::Session's per-session root
// (src/protocol).  A lane that is only split when its feature is enabled
// (RLC, recovery) keeps feature-off runs byte-identical.
inline constexpr std::uint64_t kSessionLaneDataChannel = 1;
inline constexpr std::uint64_t kSessionLaneFeedbackChannel = 2;
inline constexpr std::uint64_t kSessionLaneMediaTrace = 3;
inline constexpr std::uint64_t kSessionLaneDataImpairment = 4;
inline constexpr std::uint64_t kSessionLaneFeedbackImpairment = 5;
inline constexpr std::uint64_t kSessionLaneRlcCoefficients = 6;
inline constexpr std::uint64_t kSessionLaneNackJitter = 7;

// Family "Engine": lanes split from the data-oriented engine's per-session
// root (src/engine).  The scalar reference model deliberately reuses the
// pool's chain lanes — reference.cpp predicting pool.cpp bit-for-bit is
// the shard-invariance contract, not a collision.
inline constexpr std::uint64_t kEngineLaneDataChain = 1;
inline constexpr std::uint64_t kEngineLaneFeedbackChain = 2;
inline constexpr std::uint64_t kEngineLaneChurn = 3;

// Family "Analysis": lanes split from the analysis/validation tools' local
// roots (src/analysis, bench/bench_validation).
inline constexpr std::uint64_t kAnalysisLaneGilbertChain = 1;

// ---- wire-format type tags -------------------------------------------------
//
// First byte of every encoded record (src/protocol/codec.hpp WireType).
inline constexpr std::uint8_t kWireTagData = 1;
inline constexpr std::uint8_t kWireTagTrailer = 2;
inline constexpr std::uint8_t kWireTagFeedback = 3;
inline constexpr std::uint8_t kWireTagRepair = 4;
inline constexpr std::uint8_t kWireTagNack = 5;

// ---- session metric names --------------------------------------------------
//
// Counter and histogram names registered by proto::Session
// (src/protocol/session.cpp) into obs::MetricsRegistry.  Gated metric
// groups (impairment, rlc, governor, recovery) only appear when their
// feature ran, but the names still live here.
inline constexpr std::string_view kSessionMetricNames[] = {
    "acks_applied",
    "acks_sent",
    "acks_stale",
    "bound_used",
    "data_bits_sent",
    "data_packets_corrupt_rejected",
    "data_packets_delivered",
    "data_packets_dropped",
    "data_packets_duplicated",
    "data_packets_forced_dropped",
    "data_packets_reordered",
    "data_packets_sent",
    "data_sideband_bits",
    "data_sideband_sent",
    "feedback_corrupt_rejected",
    "feedback_forced_dropped",
    "feedback_packets_dropped",
    "feedback_packets_sent",
    "frames_deadline_dropped",
    "frames_undecodable",
    "governor_acks_rejected",
    "governor_acks_rejected_duplicate",
    "governor_acks_rejected_future",
    "governor_acks_rejected_stale",
    "governor_bound",
    "governor_entries_degraded",
    "governor_entries_fallback",
    "governor_entries_normal",
    "governor_entries_recovering",
    "governor_fallbacks",
    "governor_longest_dwell_degraded",
    "governor_longest_dwell_fallback",
    "governor_longest_dwell_normal",
    "governor_longest_dwell_recovering",
    "governor_observations_clamped",
    "governor_recoveries",
    "governor_state",
    "governor_transitions",
    "governor_windows_degraded",
    "governor_windows_fallback",
    "governor_windows_normal",
    "governor_windows_recovering",
    "loss_run_length",
    "nack_credits_expired",
    "nack_forged_rejected",
    "nack_repairs_sent",
    "nack_requests_received",
    "nack_requests_sent",
    "nack_requests_serviced",
    "nack_retx_bits",
    "nack_retx_packets",
    "nack_retx_skipped_deadline",
    "nack_suppressed_budget",
    "playout_misses",
    "recovery_jobs_expired",
    "recovery_jobs_shed",
    "recovery_nacks_admitted",
    "recovery_nacks_duplicate",
    "recovery_nacks_invalid",
    "recovery_watchdog_timeouts",
    "recovery_windows_proactive",
    "recovery_windows_reactive",
    "recovery_windows_suspended",
    "recv_duplicates_dropped",
    "recv_mismatch_dropped",
    "recv_stale_dropped",
    "retransmissions",
    "retransmit_latency_ms",
    "rlc_decode_delay_ms",
    "rlc_in_order_delay_ms",
    "rlc_packets_recovered",
    "rlc_packets_unrecovered",
    "rlc_rank",
    "rlc_repair_bits_sent",
    "rlc_repairs_lost",
    "rlc_repairs_redundant",
    "rlc_repairs_sent",
    "window_clf",
    "window_packet_burst",
};

// Engine-lite counterparts registered by engine::SessionPool
// (src/engine/pool.cpp); the `engine/` prefix keeps them mergeable next to
// per-object session registries without aliasing.
inline constexpr std::string_view kEngineMetricNames[] = {
    "engine/acks_delivered",
    "engine/acks_lost",
    "engine/bound_used",
    "engine/fec_repair_packets",
    "engine/fec_windows_recovered",
    "engine/fec_windows_unrecovered",
    "engine/governor_transitions",
    "engine/governor_windows_degraded",
    "engine/governor_windows_fallback",
    "engine/governor_windows_normal",
    "engine/governor_windows_recovering",
    "engine/idle_windows",
    "engine/nack_credits_expired",
    "engine/nack_repair_packets",
    "engine/nack_requests_lost",
    "engine/nack_requests_sent",
    "engine/nack_windows_proactive",
    "engine/sessions_completed",
    "engine/sessions_spawned",
    "engine/unit_losses",
    "engine/window_clf",
    "engine/windows",
};

// Top-level keys of engine::summary_json (src/engine/engine.cpp), consumed
// by bench_scale artifacts and the engine tests.
inline constexpr std::string_view kEngineSummaryKeys[] = {
    "acks_delivered",
    "acks_lost",
    "active_sessions",
    "alf",
    "bins",
    "bound_histogram",
    "clf_dev",
    "clf_histogram",
    "clf_max",
    "clf_mean",
    "clf_p50",
    "clf_p90",
    "clf_p99",
    "clf_p999",
    "fec_repair_packets",
    "fec_windows_recovered",
    "fec_windows_unrecovered",
    "governor_transitions",
    "governor_windows",
    "idle_windows",
    "metrics",
    "nack_credits_expired",
    "nack_repair_packets",
    "nack_requests_lost",
    "nack_requests_sent",
    "nack_windows_proactive",
    "sessions",
    "sessions_completed",
    "sessions_spawned",
    "slots",
    "total",
    "unit_losses",
    "windows",
};

// Keys of the telemetry snapshot-series JSON written by
// src/obs/telemetry/snapshot.cpp and read back by tools/espread_report
// (the report tool may consume a subset, never a superset).
inline constexpr std::string_view kTelemetrySeriesKeys[] = {
    "acks_delivered",
    "acks_lost",
    "bound",
    "bound_delta",
    "buckets",
    "clf",
    "clf_delta",
    "delta",
    "epoch",
    "epoch_steps",
    "epochs",
    "format",
    "governor_dwell",
    "governor_dwell_delta",
    "governor_windows",
    "idle_windows",
    "loss_run",
    "loss_run_delta",
    "loss_windows",
    "max",
    "p50",
    "p90",
    "p99",
    "p999",
    "sessions_completed",
    "sessions_spawned",
    "snapshots",
    "step",
    "total",
    "totals",
    "unit_losses",
    "windows",
};

// The four fleet telemetry signals: SLO objective signal names
// (obs::telemetry::SloSignal), snapshot-series histogram keys, and the
// Prometheus histogram exposition all use exactly these names.
inline constexpr std::string_view kTelemetrySignalNames[] = {
    "clf",
    "loss_run",
    "bound",
    "governor_dwell",
};

// SLO health states (obs::telemetry::SloHealth), in severity order.
inline constexpr std::string_view kSloHealthNames[] = {
    "ok",
    "burning",
    "breached",
};

// Governor state labels, in proto::GovernorState enumerator order; shared
// by the Prometheus exposition and the report tool's occupancy line.
inline constexpr std::string_view kGovernorStateNames[] = {
    "normal",
    "degraded",
    "fallback",
    "recovering",
};

// Trace event kind labels (obs::event_name), in obs::EventType order.
inline constexpr std::string_view kTraceEventNames[] = {
    "PacketSent",
    "PacketLost",
    "Retransmit",
    "FrameDeadlineDrop",
    "AckSent",
    "AckApplied",
    "AckStale",
    "EstimatorUpdate",
    "WindowFinalized",
    "PlayoutMiss",
    "FrameComplete",
    "CorruptRejected",
    "Reordered",
    "DupDropped",
    "StaleDropped",
    "GovernorState",
    "GovernorAckReject",
    "GovernorClamp",
    "SloHealth",
    "RepairSent",
    "FecRecovered",
    "NackSent",
    "NackServed",
    "RepairTimeout",
    "RepairShed",
};

// Trace actor labels (obs::actor_name), in obs::Actor order.
inline constexpr std::string_view kTraceActorNames[] = {
    "server",
    "data channel",
    "feedback channel",
    "client",
    "gateway",
};

// Top-level BENCH_*.json keys that CI claim gates consume: tools/perf_gate
// greps the first by default, and .github/workflows/ci.yml names the rest
// via --key=.  Every key here must be emitted by at least one gated bench.
inline constexpr std::string_view kBenchGateKeys[] = {
    "windows_per_second",
    "gf256_mul_mbytes_per_second",
};

}  // namespace espread::contracts
