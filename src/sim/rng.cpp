#include "sim/rng.hpp"

#include <cmath>

namespace espread::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // Top 53 bits scaled into [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo;  // inclusive width - 1
    if (range == max()) return next_u64();
    const std::uint64_t span = range + 1;
    // Rejection sampling over the largest multiple of `span` that fits.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + v % span;
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
    // uniform() can return exactly 0; use 1 - u in (0, 1].
    return -mean * std::log1p(-uniform());
}

double Rng::normal(double mean, double stddev) noexcept {
    double u1 = uniform();
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    std::uint64_t n = 0;
    while (!bernoulli(p)) ++n;
    return n;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
    // splitmix64 advances its state by the golden-ratio constant per draw,
    // so the index-th output is the finalizer applied to
    // base + (index + 1) * GOLDEN — random access into the same stream the
    // iterative form produces.
    std::uint64_t s = base + index * 0x9E3779B97F4A7C15ULL;
    return splitmix64(s);
}

Rng Rng::split(std::uint64_t stream_id) noexcept {
    // Mix the current state with the stream id through SplitMix64 to derive
    // a decorrelated child seed.
    std::uint64_t s = state_[0] ^ rotl(state_[2], 29) ^ (stream_id * 0xD1342543DE82EF95ULL);
    return Rng{splitmix64(s)};
}

}  // namespace espread::sim
