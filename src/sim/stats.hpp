// Streaming statistics used throughout the benchmarks and the protocol's
// per-window CLF reporting (mean / deviation rows of Figure 8 et al.).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace espread::sim {

/// Single-pass running mean / variance / extrema (Welford's algorithm).
///
/// `deviation()` reports the *population* standard deviation, matching how
/// the paper reports "Dev" over its 100 buffer windows.
class RunningStats {
public:
    void add(double x) noexcept;

    /// Merges another accumulator into this one (parallel Welford merge).
    void merge(const RunningStats& other) noexcept;

    std::size_t count() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    /// Mean of the samples; 0 if empty.
    double mean() const noexcept { return mean_; }

    /// Population variance; 0 if fewer than 2 samples.
    double variance() const noexcept;

    /// Population standard deviation.
    double deviation() const noexcept;

    /// Unbiased (n-1) sample variance; 0 if fewer than 2 samples.
    double sample_variance() const noexcept;

    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    double sum() const noexcept { return mean_ * static_cast<double>(count_); }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Ordered series of (x, y) observations, e.g. CLF per buffer-window number.
/// Keeps insertion order; provides summary statistics over the y values.
class TimeSeries {
public:
    void add(double x, double y);

    std::size_t size() const noexcept { return xs_.size(); }
    bool empty() const noexcept { return xs_.empty(); }
    const std::vector<double>& xs() const noexcept { return xs_; }
    const std::vector<double>& ys() const noexcept { return ys_; }

    RunningStats y_stats() const;

private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/// Counts of integer-valued observations (e.g. burst-length histogram).
class Histogram {
public:
    void add(std::int64_t value) noexcept;

    /// Adds `count` observations of `value` at once (bulk merge).
    void add(std::int64_t value, std::size_t count) noexcept;

    /// Merges another histogram's bins into this one.
    void merge(const Histogram& other) noexcept;

    std::size_t total() const noexcept { return total_; }
    std::size_t count(std::int64_t value) const noexcept;
    /// Fraction of observations equal to `value`; 0 if no observations.
    double fraction(std::int64_t value) const noexcept;
    std::int64_t min() const noexcept;
    std::int64_t max() const noexcept;
    double mean() const noexcept;
    /// Nearest-rank quantile: the smallest binned value whose cumulative
    /// count reaches ceil(q * total).  Exact — bins hold exact values,
    /// not ranges.  q outside [0, 1] is clamped; 0 if no observations.
    /// Monotone in q; quantile(0) == min(), quantile(1) == max().
    std::int64_t quantile(double q) const noexcept;
    const std::map<std::int64_t, std::size_t>& bins() const noexcept { return bins_; }

private:
    std::map<std::int64_t, std::size_t> bins_;
    std::size_t total_ = 0;
};

/// Formats `x` with `digits` digits after the decimal point (bench output).
std::string format_fixed(double x, int digits);

}  // namespace espread::sim
