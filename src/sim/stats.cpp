#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace espread::sim {

void RunningStats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    // n == 0 and n == 1 have no spread by definition; catastrophic
    // cancellation in add()/merge() can also leave m2_ a hair below zero,
    // which must read as 0 variance, never a NaN deviation.
    if (count_ < 2) return 0.0;
    return std::max(m2_, 0.0) / static_cast<double>(count_);
}

double RunningStats::deviation() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_variance() const noexcept {
    if (count_ < 2) return 0.0;
    return std::max(m2_, 0.0) / static_cast<double>(count_ - 1);
}

void TimeSeries::add(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
}

RunningStats TimeSeries::y_stats() const {
    RunningStats s;
    for (double y : ys_) s.add(y);
    return s;
}

void Histogram::add(std::int64_t value) noexcept {
    ++bins_[value];
    ++total_;
}

void Histogram::add(std::int64_t value, std::size_t count) noexcept {
    if (count == 0) return;
    bins_[value] += count;
    total_ += count;
}

void Histogram::merge(const Histogram& other) noexcept {
    for (const auto& [value, count] : other.bins_) add(value, count);
}

std::size_t Histogram::count(std::int64_t value) const noexcept {
    const auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t value) const noexcept {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::int64_t Histogram::min() const noexcept {
    return bins_.empty() ? 0 : bins_.begin()->first;
}

std::int64_t Histogram::max() const noexcept {
    return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::int64_t Histogram::quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(total_)));
    if (rank == 0) rank = 1;
    if (rank > total_) rank = total_;
    std::size_t cum = 0;
    for (const auto& [value, count] : bins_) {
        cum += count;
        if (cum >= rank) return value;
    }
    return bins_.rbegin()->first;
}

double Histogram::mean() const noexcept {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (const auto& [v, c] : bins_) sum += static_cast<double>(v) * static_cast<double>(c);
    return sum / static_cast<double>(total_);
}

std::string format_fixed(double x, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
    return buf;
}

}  // namespace espread::sim
