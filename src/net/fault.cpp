#include "net/fault.hpp"

#include <stdexcept>
#include <string>

namespace espread::net {

bool ImpairmentConfig::active() const noexcept {
    if (reorder_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
        jitter_rate > 0.0) {
        return true;
    }
    for (const Blackout& b : blackouts) {
        if (b.to > b.from) return true;
    }
    for (const ForcedBurst& b : bursts) {
        if (b.length > 0) return true;
    }
    return false;
}

void ImpairmentConfig::validate() const {
    const auto check_rate = [](double rate, const char* what) {
        if (rate < 0.0 || rate > 1.0) {
            throw std::invalid_argument(std::string("ImpairmentConfig: ") +
                                        what + " must be in [0, 1]");
        }
    };
    check_rate(reorder_rate, "reorder_rate");
    check_rate(duplicate_rate, "duplicate_rate");
    check_rate(corrupt_rate, "corrupt_rate");
    check_rate(jitter_rate, "jitter_rate");
    if (reorder_rate > 0.0 && reorder_max_displacement == 0) {
        throw std::invalid_argument(
            "ImpairmentConfig: reorder_max_displacement must be >= 1");
    }
    if (corrupt_rate > 0.0 && corrupt_max_bit_flips == 0) {
        throw std::invalid_argument(
            "ImpairmentConfig: corrupt_max_bit_flips must be >= 1");
    }
    if (duplicate_delay < 0) {
        throw std::invalid_argument(
            "ImpairmentConfig: duplicate_delay must be non-negative");
    }
    if (jitter_max < 0) {
        throw std::invalid_argument(
            "ImpairmentConfig: jitter_max must be non-negative");
    }
    for (const Blackout& b : blackouts) {
        if (b.to < b.from) {
            throw std::invalid_argument(
                "ImpairmentConfig: blackout interval must have to >= from");
        }
    }
}

}  // namespace espread::net
