// Frame packetization (paper §5.1: "Frames are broken up into packets of
// size 2 Kbytes" — 16384 bits, the packetSize of Fig. 8).
//
// A frame of s bits becomes ceil(s / mtu) packets; the final packet carries
// the remainder.  A frame is usable only if every one of its packets
// arrives (no partial-frame decoding), which is how a burst of packet
// losses maps onto frame-level unit losses.
#pragma once

#include <cstddef>
#include <vector>

namespace espread::net {

/// Paper's packet size: 2 KB = 16384 bits.
constexpr std::size_t kDefaultPacketBits = 16384;

/// Number of packets needed for a frame of `frame_bits`.
/// Zero-size frames still occupy one (header-only) packet.
/// Throws std::invalid_argument when mtu_bits == 0.
std::size_t packet_count(std::size_t frame_bits, std::size_t mtu_bits);

/// Sizes (bits) of each packet of the frame, in order; the last packet
/// holds the remainder.  sum(result) == max(frame_bits, 1)... precisely:
/// sum == frame_bits except that a zero-size frame yields one 1-bit packet.
std::vector<std::size_t> fragment_sizes(std::size_t frame_bits, std::size_t mtu_bits);

/// fragment_sizes() into a caller-owned buffer (cleared first): the
/// Session hot path reuses one scratch vector per window instead of
/// allocating a fresh vector per frame.
void fragment_sizes_into(std::size_t frame_bits, std::size_t mtu_bits,
                         std::vector<std::size_t>& out);

}  // namespace espread::net
