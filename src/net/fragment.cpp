#include "net/fragment.hpp"

#include <stdexcept>

namespace espread::net {

std::size_t packet_count(std::size_t frame_bits, std::size_t mtu_bits) {
    if (mtu_bits == 0) throw std::invalid_argument("packet_count: mtu must be positive");
    if (frame_bits == 0) return 1;
    return (frame_bits + mtu_bits - 1) / mtu_bits;
}

std::vector<std::size_t> fragment_sizes(std::size_t frame_bits, std::size_t mtu_bits) {
    std::vector<std::size_t> sizes;
    fragment_sizes_into(frame_bits, mtu_bits, sizes);
    return sizes;
}

void fragment_sizes_into(std::size_t frame_bits, std::size_t mtu_bits,
                         std::vector<std::size_t>& out) {
    const std::size_t count = packet_count(frame_bits, mtu_bits);
    out.clear();
    out.reserve(count);
    if (frame_bits == 0) {
        out.push_back(1);
        return;
    }
    std::size_t remaining = frame_bits;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t take = remaining < mtu_bits ? remaining : mtu_bits;
        out.push_back(take);
        remaining -= take;
    }
}

}  // namespace espread::net
